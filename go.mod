module joinpebble

go 1.22
