// Package joinpebble is the public facade of the joinpebble library — a
// faithful reproduction of "On the Complexity of Join Predicates"
// (Cai, Chakaravarthy, Kaushik, Naughton; PODS 2001).
//
// The paper models join computation as a two-pebble game on the join
// graph: one vertex per tuple, one edge per joining pair, and a scheme of
// pebble moves that deletes every edge. The library provides:
//
//   - the pebble game itself (configurations, schemes, cost π̂ and
//     effective cost π, a simulator that referees every solver);
//   - join-graph construction for the paper's three predicate classes —
//     equality, set containment, spatial overlap — plus executable join
//     algorithms whose emission orders are scored in the model;
//   - solvers: the linear-time perfect pebbler for equijoin graphs
//     (Theorems 3.2/4.1), the 1.25-approximation of Theorem 3.1, exact
//     solvers via the line-graph TSP(1,2) correspondence of §2.2, and
//     heuristic baselines;
//   - the hard instances (the G_n family of Theorem 3.3, realizable as
//     both set-containment and spatial joins) and the Section 4
//     L-reductions.
//
// Quick start:
//
//	b := joinpebble.EquijoinGraph([]int64{1, 2, 2}, []int64{2, 2, 3})
//	scheme, cost, _ := joinpebble.Pebble(b)
//	fmt.Println(cost, joinpebble.IsPerfect(b, scheme))
//
// The subpackages under internal/ hold the implementation; everything a
// typical caller needs is re-exported here.
package joinpebble

import (
	"joinpebble/internal/core"
	"joinpebble/internal/family"
	"joinpebble/internal/graph"
	"joinpebble/internal/join"
	"joinpebble/internal/pages"
	"joinpebble/internal/partition"
	"joinpebble/internal/sets"
	"joinpebble/internal/solver"
	"joinpebble/internal/spatial"
)

// Re-exported core types.
type (
	// Graph is a general undirected graph (vertices 0..N-1).
	Graph = graph.Graph
	// Bipartite is a join graph: left vertices are R tuples, right
	// vertices are S tuples.
	Bipartite = graph.Bipartite
	// Scheme is a pebbling scheme (Definition 2.1).
	Scheme = core.Scheme
	// Config is one pebbling configuration.
	Config = core.Config
	// Solver produces pebbling schemes.
	Solver = solver.Solver
	// Set is a set-valued attribute (§3.2).
	Set = sets.Set
	// Rect is a rectangle attribute (§3.3).
	Rect = spatial.Rect
	// Pair is a join result pair of tuple indices.
	Pair = join.Pair
	// Audit scores a join algorithm's emission order in the model.
	Audit = join.Audit
)

// NewGraph returns an empty graph on n vertices.
func NewGraph(n int) *Graph { return graph.New(n) }

// NewBipartite returns an empty join graph with the given side sizes.
func NewBipartite(nLeft, nRight int) *Bipartite { return graph.NewBipartite(nLeft, nRight) }

// EquijoinGraph builds the join graph of an integer equijoin (§3.1).
func EquijoinGraph(ls, rs []int64) *Bipartite { return join.EquiGraph(ls, rs) }

// ContainmentGraph builds the join graph of a set-containment join
// (§3.2): (l, r) joins iff l ⊆ r.
func ContainmentGraph(ls, rs []Set) *Bipartite {
	return join.Graph(ls, rs, join.Contains)
}

// OverlapGraph builds the join graph of a rectangle-overlap join (§3.3).
func OverlapGraph(ls, rs []Rect) *Bipartite {
	return join.Graph(ls, rs, join.Overlaps)
}

// Pebble solves the join graph with the automatic solver: the linear-time
// perfect pebbler on equijoin graphs, exact search when the instance is
// small enough, the Theorem 3.1 approximation otherwise. The returned
// cost is π̂ (Definition 2.1), verified by simulation.
func Pebble(b *Bipartite) (Scheme, int, error) {
	return solver.SolveAndVerify(solver.Auto{}, b.Graph())
}

// PebbleWith solves with a specific solver, verifying the scheme.
func PebbleWith(s Solver, b *Bipartite) (Scheme, int, error) {
	return solver.SolveAndVerify(s, b.Graph())
}

// OptimalCost returns π̂(G) exactly; exponential beyond small instances
// (PEBBLE(D) is NP-complete, Theorem 4.2).
func OptimalCost(b *Bipartite) (int, error) { return solver.OptimalCost(b.Graph()) }

// EffectiveCost returns π(P) = π̂(P) − β₀ for a scheme on b.
func EffectiveCost(b *Bipartite, s Scheme) int { return s.EffectiveCost(b.Graph()) }

// IsPerfect reports whether s is a perfect pebbling of b: valid,
// complete, and π = m (Definition 2.3).
func IsPerfect(b *Bipartite, s Scheme) bool { return core.Perfect(b.Graph(), s) }

// Bounds returns Lemma 2.1's universal bounds m+β₀ <= π̂ <= 2m.
func Bounds(b *Bipartite) (lo, hi int) {
	return core.LowerBound(b.Graph()), core.UpperBound(b.Graph())
}

// Solvers returns the named solver lineup: "naive", "greedy",
// "greedy+2opt", "path-cover", "approx-1.25", "exact", plus "equijoin"
// and "auto".
func Solvers() []Solver {
	return append(solver.All(), solver.Equijoin{}, solver.Auto{})
}

// HardFamily returns G_n of Theorem 3.3 (Figure 1a): the bipartite graph
// whose optimal pebbling needs 1.25m − 1 moves.
func HardFamily(n int) *Bipartite { return family.Spider(n) }

// HardFamilyOptimal returns the exact optimal effective cost π(G_n).
func HardFamilyOptimal(n int) int { return family.SpiderOptimalEffectiveCost(n) }

// AsContainmentJoin realizes any bipartite graph as a set-containment
// instance (Lemma 3.3), returning the two set relations.
func AsContainmentJoin(b *Bipartite) (r, s []Set) {
	inst := sets.RealizeBipartite(b)
	return inst.R, inst.S
}

// AsSpatialJoin realizes the hard family G_n as a rectangle-overlap
// instance (Lemma 3.4).
func AsSpatialJoin(n int) (r, s []Rect) {
	inst := spatial.RealizeSpider(n)
	return inst.R, inst.S
}

// AuditEmission scores the emission order of a join algorithm's result
// pairs against the join graph, per the §2 model.
func AuditEmission(b *Bipartite, pairs []Pair) (*Audit, error) {
	return join.AuditPairs(b, pairs)
}

// Decide answers PEBBLE(D) of Definition 4.1: is π(G) <= K? Fast paths
// use the paper's bounds; the worst case is exponential (Theorem 4.2).
func Decide(b *Bipartite, k int) (bool, error) { return solver.Decide(b.Graph(), k) }

// ApproxWithin solves Definition 4.1's ε-approximation problem: a scheme
// with effective cost within factor 1+ε of optimal, via the §4 solver
// ladder (1.25 in linear time, cycle cover below that, exact for small ε
// — the MAX-SNP barrier of Theorem 4.4 makes that unavoidable).
func ApproxWithin(b *Bipartite, eps float64) (Scheme, error) {
	return solver.ApproxWithin(b.Graph(), eps)
}

// PlanPageFetches schedules the page I/O of a join under a tuple layout
// (the [6] model of §2's related work): it quotients the join graph to
// pages and pebbles it. capacity is tuples per page; the returned
// schedule carries the verified fetch count and its lower bound.
func PlanPageFetches(b *Bipartite, capacity int) (*pages.Schedule, error) {
	layout := pages.Sequential(b.NLeft(), b.NRight(), capacity)
	return pages.Plan(b, layout, nil)
}

// PartitionWork evaluates a tuple-to-partition assignment for the §5
// partitioned-join problem, returning the active sub-join count and the
// total read work against its lower bound.
func PartitionWork(b *Bipartite, a *partition.Assignment) (*partition.Stats, error) {
	return partition.Evaluate(b, a)
}

// NewSet builds a set value.
func NewSet(elems ...uint32) Set { return sets.New(elems...) }

// NewRect builds a rectangle from two corners.
func NewRect(x1, y1, x2, y2 float64) Rect { return spatial.NewRect(x1, y1, x2, y2) }
