package main

import (
	"strings"
	"testing"

	"joinpebble/internal/engine/cmdutil"
	"joinpebble/internal/graph"
)

// cfg returns the flag defaults scaled down for tests, mirroring the
// defaults registered in main.
func cfg(kind, out string, n int) config {
	return config{
		kind: kind, out: out, seed: 1,
		left: 20, right: 20, domain: 5, skew: 0,
		universe: 100, leftMax: 3, rightMax: 8, correlated: true,
		span: 50, extent: 5, clusters: 0, n: n,
	}
}

func gen(t *testing.T, kind, out string, n int) string {
	t.Helper()
	var sb strings.Builder
	if err := run(&sb, cfg(kind, out, n)); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestGenerateSpiderGraph(t *testing.T) {
	out := gen(t, "spider", "graph", 4)
	b, err := graph.ReadBipartite(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if b.M() != 8 || b.NLeft() != 5 || b.NRight() != 4 {
		t.Fatalf("spider output wrong: %v", b)
	}
}

func TestGenerateEquijoinGraphParses(t *testing.T) {
	out := gen(t, "equijoin", "graph", 0)
	b, err := graph.ReadBipartite(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if b.NLeft() != 20 || b.NRight() != 20 {
		t.Fatalf("sides %dx%d", b.NLeft(), b.NRight())
	}
}

func TestGenerateRelationsOutput(t *testing.T) {
	out := gen(t, "containment", "relations", 0)
	if !strings.Contains(out, "relation R set") || !strings.Contains(out, "relation S set") {
		t.Fatalf("relations output missing headers:\n%s", out)
	}
}

func TestGenerateSpatialGraph(t *testing.T) {
	out := gen(t, "spatial", "graph", 0)
	if _, err := graph.ReadBipartite(strings.NewReader(out)); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratePlanOutput(t *testing.T) {
	out := gen(t, "equijoin", "plan", 0)
	for _, want := range []string{"family     equijoin", "route      perfect", "solver     equijoin", "complete-bipartite"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in plan output:\n%s", want, out)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	var sb strings.Builder
	for name, c := range map[string]config{
		"unknown kind":        cfg("bogus", "graph", 3),
		"spider relations":    cfg("spider", "relations", 3),
		"unknown output kind": cfg("equijoin", "bogus", 3),
	} {
		err := run(&sb, c)
		if err == nil {
			t.Fatalf("%s must fail", name)
		}
		if !cmdutil.IsUsage(err) {
			t.Fatalf("%s: want usage error, got %v", name, err)
		}
	}
}

func TestGenerateDOT(t *testing.T) {
	out := gen(t, "spider", "dot", 3)
	for _, want := range []string{"graph JoinGraph {", "r0 -- s0;", "rankdir=LR"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in DOT output:\n%s", want, out)
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	if gen(t, "equijoin", "graph", 0) != gen(t, "equijoin", "graph", 0) {
		t.Fatal("same flags and seed must reproduce output")
	}
}
