package main

import (
	"strings"
	"testing"

	"joinpebble/internal/graph"
)

func gen(t *testing.T, kind, out string, n int) string {
	t.Helper()
	var sb strings.Builder
	err := run(&sb, kind, out, 1, 20, 20, 5, 0, 100, 3, 8, true, 50, 5, 0, n)
	if err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestGenerateSpiderGraph(t *testing.T) {
	out := gen(t, "spider", "graph", 4)
	b, err := graph.ReadBipartite(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if b.M() != 8 || b.NLeft() != 5 || b.NRight() != 4 {
		t.Fatalf("spider output wrong: %v", b)
	}
}

func TestGenerateEquijoinGraphParses(t *testing.T) {
	out := gen(t, "equijoin", "graph", 0)
	b, err := graph.ReadBipartite(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if b.NLeft() != 20 || b.NRight() != 20 {
		t.Fatalf("sides %dx%d", b.NLeft(), b.NRight())
	}
}

func TestGenerateRelationsOutput(t *testing.T) {
	out := gen(t, "containment", "relations", 0)
	if !strings.Contains(out, "relation R set") || !strings.Contains(out, "relation S set") {
		t.Fatalf("relations output missing headers:\n%s", out)
	}
}

func TestGenerateSpatialGraph(t *testing.T) {
	out := gen(t, "spatial", "graph", 0)
	if _, err := graph.ReadBipartite(strings.NewReader(out)); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "bogus", "graph", 1, 5, 5, 5, 0, 10, 2, 4, false, 10, 2, 0, 3); err == nil {
		t.Fatal("unknown kind must fail")
	}
	if err := run(&sb, "spider", "relations", 1, 5, 5, 5, 0, 10, 2, 4, false, 10, 2, 0, 3); err == nil {
		t.Fatal("spider has no relations output")
	}
	if err := run(&sb, "equijoin", "bogus", 1, 5, 5, 5, 0, 10, 2, 4, false, 10, 2, 0, 3); err == nil {
		t.Fatal("unknown output must fail")
	}
}

func TestGenerateDOT(t *testing.T) {
	out := gen(t, "spider", "dot", 3)
	for _, want := range []string{"graph JoinGraph {", "r0 -- s0;", "rankdir=LR"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in DOT output:\n%s", want, out)
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	if gen(t, "equijoin", "graph", 0) != gen(t, "equijoin", "graph", 0) {
		t.Fatal("same flags and seed must reproduce output")
	}
}
