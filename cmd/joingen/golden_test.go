package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"testing"

	"joinpebble/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// joingenBin is the compiled command under test; see cmd/pebble's golden
// tests for the pattern.
var joingenBin string

func TestMain(m *testing.M) {
	flag.Parse()
	dir, err := os.MkdirTemp("", "joingen-golden")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	joingenBin = filepath.Join(dir, "joingen")
	if out, err := exec.Command("go", "build", "-o", joingenBin, ".").CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "building joingen: %v\n%s", err, out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("output differs from %s (run with -update to accept):\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// small keeps golden workloads tiny so the files stay reviewable.
var small = []string{"-left", "6", "-right", "6", "-seed", "1"}

func TestGoldenEquijoinGraph(t *testing.T) {
	out, err := exec.Command(joingenBin, append([]string{"-kind", "equijoin", "-domain", "3"}, small...)...).Output()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "equijoin_graph", out)
}

func TestGoldenEquijoinPlan(t *testing.T) {
	out, err := exec.Command(joingenBin, append([]string{"-kind", "equijoin", "-domain", "3", "-out", "plan"}, small...)...).Output()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "equijoin_plan", out)
}

func TestGoldenSpatialPlan(t *testing.T) {
	out, err := exec.Command(joingenBin, append([]string{"-kind", "spatial", "-span", "10", "-out", "plan"}, small...)...).Output()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "spatial_plan", out)
}

func TestGoldenContainmentRelations(t *testing.T) {
	out, err := exec.Command(joingenBin, append([]string{"-kind", "containment", "-universe", "12", "-out", "relations"}, small...)...).Output()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "containment_relations", out)
}

func TestGoldenSpiderDOT(t *testing.T) {
	out, err := exec.Command(joingenBin, "-kind", "spider", "-n", "3", "-out", "dot").Output()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "spider_dot", out)
}

func TestGoldenMetricsJSON(t *testing.T) {
	mpath := filepath.Join(t.TempDir(), "m.json")
	args := append([]string{"-kind", "equijoin", "-metrics", mpath}, small...)
	if out, err := exec.Command(joingenBin, args...).CombinedOutput(); err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	raw, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("-metrics output is not a snapshot: %v\n%s", err, raw)
	}
	names := make([]string, 0, len(snap.Counters))
	for n := range snap.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	var buf bytes.Buffer
	for _, n := range names {
		fmt.Fprintf(&buf, "counter %s\n", n)
	}
	checkGolden(t, "metrics_names", buf.Bytes())
}

// TestGoldenSpiderSolve: -out solve runs the engine pipeline end to end
// on a generated instance (Spider G_3 routes exact and stays on it).
func TestGoldenSpiderSolve(t *testing.T) {
	out, err := exec.Command(joingenBin, "-kind", "spider", "-n", "3", "-out", "solve").Output()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "spider_solve", out)
}

// TestGoldenSpiderSolveDegraded: Spider G_12 has 24 edges in one
// component — past the exact budget — so forcing the exact solver
// degrades deterministically to the approximation rung, exit 0.
func TestGoldenSpiderSolveDegraded(t *testing.T) {
	out, err := exec.Command(joingenBin, "-kind", "spider", "-n", "12", "-out", "solve", "-solver", "exact").Output()
	if err != nil {
		t.Fatalf("degraded run must exit 0: %v", err)
	}
	checkGolden(t, "spider_solve_degraded", out)
}

// TestStrictSolveExitsNonZero: the same budget trip under -strict is a
// runtime failure carrying the solver sentinel.
func TestStrictSolveExitsNonZero(t *testing.T) {
	var stderr bytes.Buffer
	cmd := exec.Command(joingenBin, "-kind", "spider", "-n", "12", "-out", "solve", "-solver", "exact", "-strict")
	cmd.Stderr = &stderr
	err := cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("want exit error, got %v", err)
	}
	if ee.ExitCode() != 1 {
		t.Fatalf("exit code %d, want 1 (stderr: %s)", ee.ExitCode(), stderr.String())
	}
	if !bytes.Contains(stderr.Bytes(), []byte("search budget exceeded")) {
		t.Fatalf("stderr must carry the budget sentinel: %q", stderr.String())
	}
}

// TestUsageErrorsExitTwo pins the shared CLI error contract for joingen.
func TestUsageErrorsExitTwo(t *testing.T) {
	for name, args := range map[string][]string{
		"unknown kind":   {"-kind", "bogus"},
		"unknown output": {"-kind", "equijoin", "-out", "bogus"},
		"extra args":     {"-kind", "equijoin", "extra"},
	} {
		t.Run(name, func(t *testing.T) {
			var stderr bytes.Buffer
			cmd := exec.Command(joingenBin, args...)
			cmd.Stderr = &stderr
			err := cmd.Run()
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("want exit error, got %v", err)
			}
			if ee.ExitCode() != 2 {
				t.Fatalf("exit code %d, want 2 (stderr: %s)", ee.ExitCode(), stderr.String())
			}
			if !bytes.HasPrefix(stderr.Bytes(), []byte("joingen: ")) {
				t.Fatalf("stderr must name the command: %q", stderr.String())
			}
		})
	}
}
