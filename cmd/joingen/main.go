// Command joingen generates join workloads and their join graphs.
//
// Usage:
//
//	joingen -kind equijoin    [-left 100 -right 100 -domain 20 -skew 0.5] [-seed 1] [-out graph|relations]
//	joingen -kind containment [-left 50 -right 50 -universe 200 -leftmax 3 -rightmax 8 -correlated]
//	joingen -kind spatial     [-left 100 -right 100 -span 100 -extent 5 -clusters 0]
//	joingen -kind spider      [-n 5]
//
// With -out graph (default) it writes the join graph in the text format
// cmd/pebble reads; with -out relations it writes the two relations.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"joinpebble/internal/family"
	"joinpebble/internal/graph"
	"joinpebble/internal/join"
	"joinpebble/internal/obs"
	"joinpebble/internal/relation"
	"joinpebble/internal/workload"
)

func main() {
	var (
		kind       = flag.String("kind", "equijoin", "workload: equijoin, containment, spatial, spider")
		out        = flag.String("out", "graph", "output: graph (join graph), relations, or dot (Graphviz)")
		seed       = flag.Int64("seed", 1, "generator seed")
		left       = flag.Int("left", 100, "left relation size")
		right      = flag.Int("right", 100, "right relation size")
		domain     = flag.Int64("domain", 20, "equijoin: distinct values")
		skew       = flag.Float64("skew", 0, "equijoin: zipf skew (0 = uniform)")
		universe   = flag.Int("universe", 200, "containment: element universe")
		leftMax    = flag.Int("leftmax", 3, "containment: max probe-set size")
		rightMax   = flag.Int("rightmax", 8, "containment: max stored-set size")
		correlated = flag.Bool("correlated", true, "containment: draw probes as subsets of stored sets")
		span       = flag.Float64("span", 100, "spatial: universe side length")
		extent     = flag.Float64("extent", 5, "spatial: max rectangle side")
		clusters   = flag.Int("clusters", 0, "spatial: cluster count (0 = uniform)")
		n          = flag.Int("n", 5, "spider: family parameter")
		metrics    = flag.String("metrics", "", "write the metrics snapshot as JSON to this file")
	)
	flag.Parse()
	err := run(os.Stdout, *kind, *out, *seed, *left, *right, *domain, *skew,
		*universe, *leftMax, *rightMax, *correlated, *span, *extent, *clusters, *n)
	if err == nil && *metrics != "" {
		err = obs.Default.WriteJSONFile(*metrics)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "joingen:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, kind, out string, seed int64, left, right int, domain int64, skew float64,
	universe, leftMax, rightMax int, correlated bool, span, extent float64, clusters, n int) error {

	var l, r *relation.Relation
	var b *graph.Bipartite
	switch kind {
	case "equijoin":
		wl := workload.Equijoin{LeftSize: left, RightSize: right, Domain: domain, Skew: skew}
		l, r = wl.Generate(seed)
		b = join.EquiGraph(l.Ints(), r.Ints())
	case "containment":
		wl := workload.SetContainment{LeftSize: left, RightSize: right, Universe: universe,
			LeftMax: leftMax, RightMax: rightMax, Correlated: correlated}
		l, r = wl.Generate(seed)
		b = join.Graph(l.Sets(), r.Sets(), join.Contains)
	case "spatial":
		wl := workload.Spatial{LeftSize: left, RightSize: right, Span: span,
			MaxExtent: extent, Clusters: clusters}
		l, r = wl.Generate(seed)
		b = join.Graph(l.Rects(), r.Rects(), join.Overlaps)
	case "spider":
		b = family.Spider(n)
	default:
		return fmt.Errorf("unknown kind %q", kind)
	}

	switch out {
	case "graph":
		return graph.WriteBipartite(w, b)
	case "dot":
		return graph.WriteDOTBipartite(w, b, "JoinGraph")
	case "relations":
		if l == nil {
			return fmt.Errorf("kind %q has no relation output; use -out graph", kind)
		}
		if err := l.Write(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
		return r.Write(w)
	}
	return fmt.Errorf("unknown output %q", out)
}
