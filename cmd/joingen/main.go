// Command joingen generates join workloads and their join graphs
// through the engine's workload → instance pipeline.
//
// Usage:
//
//	joingen -kind equijoin    [-left 100 -right 100 -domain 20 -skew 0.5] [-seed 1] [-out graph|relations|dot|plan]
//	joingen -kind containment [-left 50 -right 50 -universe 200 -leftmax 3 -rightmax 8 -correlated]
//	joingen -kind spatial     [-left 100 -right 100 -span 100 -extent 5 -clusters 0]
//	joingen -kind spider      [-n 5]
//
// With -out graph (default) it writes the join graph in the text format
// cmd/pebble reads; -out relations writes the two relations; -out dot
// writes Graphviz; -out plan prints the engine planner's routing
// decision for the instance without solving it; -out solve runs the
// full engine pipeline on the generated instance ( -solver overrides
// the routing) and prints the same summary as cmd/pebble — including
// the DEGRADED provenance line when the ladder engaged, suppressed by
// -strict in favor of a non-zero exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"joinpebble/internal/engine"
	"joinpebble/internal/engine/cmdutil"
	"joinpebble/internal/family"
	"joinpebble/internal/graph"
	"joinpebble/internal/solver"
	"joinpebble/internal/workload"
)

// config carries the parsed flags; one field per workload knob.
type config struct {
	kind, out  string
	seed       int64
	left       int
	right      int
	domain     int64
	skew       float64
	universe   int
	leftMax    int
	rightMax   int
	correlated bool
	span       float64
	extent     float64
	clusters   int
	n          int
	solver     string
	strict     bool
}

func main() {
	var c config
	flag.StringVar(&c.kind, "kind", "equijoin", "workload: equijoin, containment, spatial, spider")
	flag.StringVar(&c.out, "out", "graph", "output: graph (join graph), relations, dot (Graphviz), plan (engine routing), or solve (run the engine)")
	flag.StringVar(&c.solver, "solver", "auto", "with -out solve: override the engine routing")
	flag.Int64Var(&c.seed, "seed", 1, "generator seed")
	flag.IntVar(&c.left, "left", 100, "left relation size")
	flag.IntVar(&c.right, "right", 100, "right relation size")
	flag.Int64Var(&c.domain, "domain", 20, "equijoin: distinct values")
	flag.Float64Var(&c.skew, "skew", 0, "equijoin: zipf skew (0 = uniform)")
	flag.IntVar(&c.universe, "universe", 200, "containment: element universe")
	flag.IntVar(&c.leftMax, "leftmax", 3, "containment: max probe-set size")
	flag.IntVar(&c.rightMax, "rightmax", 8, "containment: max stored-set size")
	flag.BoolVar(&c.correlated, "correlated", true, "containment: draw probes as subsets of stored sets")
	flag.Float64Var(&c.span, "span", 100, "spatial: universe side length")
	flag.Float64Var(&c.extent, "extent", 5, "spatial: max rectangle side")
	flag.IntVar(&c.clusters, "clusters", 0, "spatial: cluster count (0 = uniform)")
	flag.IntVar(&c.n, "n", 5, "spider: family parameter")
	strict := cmdutil.BindStrict(flag.CommandLine)
	obsFlags := cmdutil.BindFlags(flag.CommandLine, "joingen", false)
	flag.Parse()
	c.strict = *strict

	if err := obsFlags.Start(); err != nil {
		cmdutil.Exit("joingen", err)
	}
	if flag.NArg() > 0 {
		cmdutil.Exit("joingen", cmdutil.Usagef("unexpected arguments %v", flag.Args()))
	}
	err := run(os.Stdout, c)
	if err == nil {
		err = obsFlags.Finish()
	}
	cmdutil.Exit("joingen", err)
}

// instance builds the engine instance the flags describe. The workload
// structs carry their own family names, so the engine resolves the
// predicate and builds the join graph — no per-predicate graph plumbing
// here.
func (c config) instance() (*engine.Instance, error) {
	var w engine.Workload
	switch c.kind {
	case "equijoin":
		w = workload.Equijoin{LeftSize: c.left, RightSize: c.right, Domain: c.domain, Skew: c.skew}
	case "containment":
		w = workload.SetContainment{LeftSize: c.left, RightSize: c.right, Universe: c.universe,
			LeftMax: c.leftMax, RightMax: c.rightMax, Correlated: c.correlated}
	case "spatial":
		w = workload.Spatial{LeftSize: c.left, RightSize: c.right, Span: c.span,
			MaxExtent: c.extent, Clusters: c.clusters}
	case "spider":
		return engine.FromBipartite("spider", family.Spider(c.n)), nil
	default:
		return nil, cmdutil.Usagef("unknown kind %q", c.kind)
	}
	return engine.Generate(w, c.seed)
}

func run(w io.Writer, c config) error {
	inst, err := c.instance()
	if err != nil {
		return err
	}
	switch c.out {
	case "graph":
		return graph.WriteBipartite(w, inst.Bip)
	case "dot":
		return graph.WriteDOTBipartite(w, inst.Bip, "JoinGraph")
	case "relations":
		if inst.Left == nil {
			return cmdutil.Usagef("kind %q has no relation output; use -out graph", c.kind)
		}
		if err := inst.Left.Write(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
		return inst.Right.Write(w)
	case "plan":
		planner := engine.Planner{}
		plan := planner.Plan(inst)
		g := inst.Graph()
		fmt.Fprintf(w, "family     %s\n", inst.Family)
		fmt.Fprintf(w, "size       %d vertices, %d edges\n", g.N(), g.M())
		fmt.Fprintf(w, "route      %s\n", plan.Route)
		fmt.Fprintf(w, "solver     %s\n", plan.Solver.Name())
		fmt.Fprintf(w, "reason     %s\n", plan.Reason)
		return nil
	case "solve":
		planner := engine.Planner{Degrade: cmdutil.Degrade(c.strict)}
		if c.solver != "auto" {
			s, err := solver.ByName(c.solver)
			if err != nil {
				return cmdutil.Usagef("%v", err)
			}
			planner.Solver = s
		}
		res, err := planner.Run(context.Background(), inst)
		if err != nil {
			return err
		}
		cmdutil.WriteResult(w, res, false)
		return nil
	}
	return cmdutil.Usagef("unknown output %q", c.out)
}
