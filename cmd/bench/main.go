// Command bench runs the pinned performance suite (internal/bench
// PerfSuite), writes the measurements to BENCH_<date>.json, and compares
// them against the most recent previous report, exiting non-zero when any
// series regressed beyond the tolerance.
//
// Usage:
//
//	bench                      # run, write BENCH_<today>.json, compare
//	bench -legacy              # measure the pre-optimization code paths
//	bench -baseline FILE.json  # compare against a specific report
//	bench -tolerance 1.30      # fail when cur/base ns exceeds 1.30
//	bench -run approx125       # only series whose name contains the string
//	bench -benchtime 1x        # smoke mode: one iteration per series (CI)
//	bench -smoke               # reduced-size kernel suite (claw scan,
//	                           #   approx-1.25); implies -nocompare
//
// The -legacy arm writes BENCH_<date>-legacy.json and is never chosen as
// an automatic baseline; diffing it against the same-day normal report is
// the before/after evidence for the compact-index optimizations.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"

	"joinpebble/internal/bench"
	"joinpebble/internal/engine/cmdutil"
	"joinpebble/internal/obs"
)

func main() {
	testing.Init() // registers test.benchtime et al. on flag.CommandLine
	legacy := flag.Bool("legacy", false, "measure pre-optimization code paths (map lookups, materialized line graphs, sequential solve)")
	out := flag.String("out", "", "output JSON path (default BENCH_<date>[-legacy].json)")
	baseline := flag.String("baseline", "", "report to compare against (default: latest non-legacy BENCH_*.json)")
	tolerance := flag.Float64("tolerance", 1.30, "regression threshold on ns/op ratio")
	runFilter := flag.String("run", "", "only run series whose name contains this substring")
	benchtime := flag.String("benchtime", "", "per-series time budget, e.g. 2s or 1x (default: testing's 1s)")
	noCompare := flag.Bool("nocompare", false, "skip the baseline comparison")
	smoke := flag.Bool("smoke", false, "run the reduced-size kernel smoke suite instead of the pinned suite (implies -nocompare)")
	obsFlags := cmdutil.BindFlags(flag.CommandLine, "bench", true)
	flag.Parse()

	if err := obsFlags.Start(); err != nil {
		cmdutil.Exit("bench", err)
	}
	if flag.NArg() > 0 {
		cmdutil.Exit("bench", cmdutil.Usagef("unexpected arguments %v", flag.Args()))
	}

	if *benchtime != "" {
		if err := flag.CommandLine.Lookup("test.benchtime").Value.Set(*benchtime); err != nil {
			cmdutil.Exit("bench", cmdutil.Usagef("bad -benchtime: %v", err))
		}
	}

	date := obs.Now().Format("2006-01-02")
	path := *out
	if path == "" {
		if *smoke {
			// Keep smoke reports away from the BENCH_<date>.json names
			// LatestReport scans for baselines.
			path = fmt.Sprintf("BENCH_%s-smoke.json", date)
		} else if *legacy {
			path = fmt.Sprintf("BENCH_%s-legacy.json", date)
		} else {
			path = fmt.Sprintf("BENCH_%s.json", date)
		}
	}

	report := &bench.Report{
		Schema:     bench.SchemaVersion,
		Date:       date,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Legacy:     *legacy,
		Smoke:      *smoke,
	}

	suite := bench.PerfSuite(*legacy)
	if *smoke {
		// Smoke series use distinct names on purpose; comparing them
		// against a pinned baseline would report every series as gone.
		suite = bench.SmokeSuite()
		*noCompare = true
	}
	for _, pc := range suite {
		if *runFilter != "" && !strings.Contains(pc.Name, *runFilter) {
			continue
		}
		r := testing.Benchmark(pc.Run)
		s := bench.Series{
			Name:        pc.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Extra:       pc.Extra,
		}
		report.Series = append(report.Series, s)
		fmt.Printf("%-44s %12.0f ns/op %10d allocs/op %6d iters\n", s.Name, s.NsPerOp, s.AllocsPerOp, s.Iterations)
	}
	if len(report.Series) == 0 {
		cmdutil.Exit("bench", cmdutil.Usagef("-run matched no series"))
	}
	// The suite has run by now, so the snapshot carries every counter the
	// measured code paths bumped — the report records work done, not just
	// time taken.
	report.Metrics = obs.Default.Snapshot()

	if err := bench.WriteReport(path, report); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("wrote", path)

	if err := obsFlags.Finish(); err != nil {
		cmdutil.Exit("bench", err)
	}

	if *noCompare || *legacy {
		return // a legacy arm is a "before" measurement, not a candidate
	}

	basePath, base := *baseline, (*bench.Report)(nil)
	var err error
	if basePath != "" {
		base, err = bench.LoadReport(basePath)
	} else {
		basePath, base, err = bench.LatestReport(".", path)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if base == nil {
		fmt.Println("no previous report to compare against")
		return
	}

	cmp := bench.Compare(base, report)
	fmt.Printf("\ncompared against %s (tolerance %.2fx):\n", basePath, *tolerance)
	fmt.Print(bench.FormatComparison(cmp, *tolerance))
	if msg := cmp.FailureMessage(*tolerance); msg != "" {
		fmt.Fprintln(os.Stderr, "bench:", msg)
		os.Exit(1)
	}
	if len(cmp.Gone) > 0 {
		fmt.Fprintf(os.Stderr, "bench: %d series disappeared from the suite\n", len(cmp.Gone))
		os.Exit(1)
	}
	fmt.Println("no regressions")
}
