// Command pebbled is the joinpebble service: a long-running HTTP+JSON
// daemon exposing the engine pipeline over three endpoints:
//
//	POST /v1/solve   solve an instance through the planner ladder
//	POST /v1/plan    route an instance without solving it
//	POST /v1/audit   score an emission order in the pebble game
//
// plus /healthz (liveness), /readyz (readiness; 503 once draining) and
// the debug surface (/debug/vars, the scope flight recorder, and the
// scheme-cache report) on the same port.
//
// Requests pass admission control — a bounded-concurrency semaphore
// with a bounded wait queue; past capacity the server answers 429 with
// Retry-After instead of queuing unboundedly — and run under a
// per-request deadline carved into the engine's degradation ladder, so
// a slow solve degrades (exact → approx-1.25 → naive) inside its
// budget. SIGINT/SIGTERM drain gracefully: readiness flips, the
// listener closes, in-flight solves finish under -drain-timeout, then
// the observability artifacts are flushed.
//
// All solves share the process-wide scheme cache (-cache-size /
// -cache-off), so repeated shapes are answered from cache across
// requests.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"joinpebble/internal/engine/cmdutil"
	"joinpebble/internal/serve"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "listen address")
	maxConcurrent := flag.Int("max-concurrent", 0, "max simultaneous solves (0 = GOMAXPROCS)")
	maxQueue := flag.Int("max-queue", 0, "max callers waiting for a solve slot (0 = 4x max-concurrent)")
	queueTimeout := flag.Duration("queue-timeout", time.Second, "max wait for a solve slot before 429")
	requestTimeout := flag.Duration("request-timeout", 5*time.Second, "per-request solve deadline cap")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "max wait for in-flight solves on shutdown")
	rungFraction := flag.Float64("rung-fraction", 0, "share of the remaining deadline a non-final ladder rung may spend (0 = engine default)")
	exactLimit := flag.Int("exact-limit", 0, "exact-rung per-component edge cap (0 = solver default)")
	obsFlags := cmdutil.BindFlags(flag.CommandLine, "pebbled", true)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pebbled [flags]\nserves the joinpebble /v1 API until SIGINT/SIGTERM, then drains\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if err := obsFlags.Start(); err != nil {
		cmdutil.Exit("pebbled", err)
	}
	if flag.NArg() != 0 {
		cmdutil.Exit("pebbled", cmdutil.Usagef("unexpected arguments %v", flag.Args()))
	}

	srv, err := serve.Start(serve.Config{
		Addr:           *addr,
		MaxConcurrent:  *maxConcurrent,
		MaxQueue:       *maxQueue,
		QueueTimeout:   *queueTimeout,
		RequestTimeout: *requestTimeout,
		DrainTimeout:   *drainTimeout,
		RungFraction:   *rungFraction,
		ExactLimit:     *exactLimit,
	})
	if err != nil {
		cmdutil.Exit("pebbled", err)
	}
	fmt.Fprintf(os.Stderr, "pebbled: serving on http://%s\n", srv.Addr())

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	sig := <-sigs
	fmt.Fprintf(os.Stderr, "pebbled: %s, draining (%d in flight)\n", sig, srv.InFlight())

	err = srv.Shutdown(context.Background())
	if ferr := obsFlags.Finish(); err == nil {
		err = ferr
	}
	if err == nil {
		fmt.Fprintln(os.Stderr, "pebbled: drained")
	}
	cmdutil.Exit("pebbled", err)
}
