// Command pebble solves the PEBBLE problem (Definition 4.1) for a graph
// read from a file or stdin in the text format of internal/graph:
//
//	bipartite <nLeft> <nRight>   (or: graph <n>)
//	e <u> <v>                    (one per edge)
//
// Usage:
//
//	pebble [-solver auto] [-scheme] [file]
//
// It prints the verified pebbling cost π̂, the effective cost π, the
// Lemma 2.1 bounds, and whether the scheme is perfect; -scheme also
// prints the configuration sequence.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"joinpebble/internal/core"
	"joinpebble/internal/graph"
	"joinpebble/internal/obs"
	"joinpebble/internal/solver"
)

func main() {
	solverName := flag.String("solver", "auto", "solver: auto, exact, exact-bnb, approx-1.25, cycle-cover, greedy, greedy+2opt, path-cover, naive, equijoin, matching")
	showScheme := flag.Bool("scheme", false, "print the full configuration sequence")
	decideK := flag.Int("decide", -1, "answer PEBBLE(D): is π(G) <= K? (-1 disables)")
	metricsPath := flag.String("metrics", "", "write the metrics snapshot as JSON to this file")
	tracePath := flag.String("trace", "", "write the span trace as JSONL to this file")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pebble [flags] [file]\nreads the graph from stdin when no file is given\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *tracePath != "" {
		obs.SetTracer(obs.NewTracer())
	}
	err := run(os.Stdout, *solverName, *showScheme, *decideK, flag.Arg(0))
	if err == nil && *metricsPath != "" {
		err = obs.Default.WriteJSONFile(*metricsPath)
	}
	if err == nil && *tracePath != "" {
		err = writeTrace(*tracePath)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pebble:", err)
		os.Exit(1)
	}
}

func writeTrace(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.ActiveTracer().WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func run(w io.Writer, solverName string, showScheme bool, decideK int, path string) error {
	var in io.Reader = os.Stdin
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	v, err := graph.Read(in)
	if err != nil {
		return err
	}
	var g *graph.Graph
	switch t := v.(type) {
	case *graph.Graph:
		g = t
	case *graph.Bipartite:
		g = t.Graph()
	}

	if decideK >= 0 {
		ok, err := solver.Decide(g, decideK)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "PEBBLE(D): π(G) <= %d is %v\n", decideK, ok)
		return nil
	}

	s, err := pickSolver(solverName)
	if err != nil {
		return err
	}
	scheme, cost, err := solver.SolveAndVerify(s, g)
	if err != nil {
		return err
	}
	lo, hi := core.LowerBound(g), core.UpperBound(g)
	eff := scheme.EffectiveCost(g)
	fmt.Fprintf(w, "vertices        %d\n", g.N())
	fmt.Fprintf(w, "edges (m)       %d\n", g.M())
	fmt.Fprintf(w, "components (β₀) %d\n", core.Betti0(g))
	fmt.Fprintf(w, "solver          %s\n", s.Name())
	fmt.Fprintf(w, "cost π̂          %d   (bounds: %d..%d)\n", cost, lo, hi)
	fmt.Fprintf(w, "effective π     %d   (m = %d)\n", eff, g.M())
	fmt.Fprintf(w, "perfect         %v\n", eff == g.M())
	if showScheme {
		fmt.Fprintln(w, "scheme:")
		for i, c := range scheme {
			fmt.Fprintf(w, "  %4d  %v\n", i+1, c)
		}
	}
	return nil
}

func pickSolver(name string) (solver.Solver, error) {
	all := append(solver.All(),
		solver.Equijoin{}, solver.MatchingSolver{}, solver.ExactBnB{}, solver.Auto{})
	for _, s := range all {
		if s.Name() == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("unknown solver %q", name)
}
