// Command pebble solves the PEBBLE problem (Definition 4.1) for a graph
// read from a file or stdin in the text format of internal/graph:
//
//	bipartite <nLeft> <nRight>   (or: graph <n>)
//	e <u> <v>                    (one per edge)
//
// Usage:
//
//	pebble [-solver auto] [-scheme] [file]
//
// The instance flows through the engine pipeline: it is ingested as an
// engine.Instance and routed by the Planner (perfect pebbler on
// complete-bipartite components, exact under budget, 1.25-approximation
// otherwise); -solver overrides the routing. The output reports the
// verified pebbling cost π̂, the effective cost π, the Lemma 2.1 bounds,
// the route taken, and whether the scheme is perfect; -scheme also
// prints the configuration sequence.
//
// When the planned solver fails recoverably (search budget, deadline,
// recovered panic) the engine degrades to the Theorem 3.1 approximation
// or the Lemma 2.1 naive scheme: the run still exits 0 and the output
// carries a "DEGRADED (exact→approx-1.25: <reason>)" provenance line.
// -strict disables the ladder: the failure surfaces on stderr with its
// solver sentinel text and a non-zero exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"joinpebble/internal/engine"
	"joinpebble/internal/engine/cmdutil"
	"joinpebble/internal/graph"
	"joinpebble/internal/solver"
)

func main() {
	solverName := flag.String("solver", "auto", "solver: auto routes via the engine planner; see -solver help for names")
	showScheme := flag.Bool("scheme", false, "print the full configuration sequence")
	decideK := flag.Int("decide", -1, "answer PEBBLE(D): is π(G) <= K? (-1 disables)")
	strict := cmdutil.BindStrict(flag.CommandLine)
	obsFlags := cmdutil.BindFlags(flag.CommandLine, "pebble", false)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pebble [flags] [file]\nreads the graph from stdin when no file is given\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if err := obsFlags.Start(); err != nil {
		cmdutil.Exit("pebble", err)
	}
	if flag.NArg() > 1 {
		cmdutil.Exit("pebble", cmdutil.Usagef("at most one input file, got %d args", flag.NArg()))
	}
	err := run(os.Stdout, *solverName, *showScheme, *strict, *decideK, flag.Arg(0))
	if err == nil {
		err = obsFlags.Finish()
	}
	cmdutil.Exit("pebble", err)
}

func run(w io.Writer, solverName string, showScheme, strict bool, decideK int, path string) error {
	in, err := readInstance(path)
	if err != nil {
		return err
	}

	planner := engine.Planner{Degrade: cmdutil.Degrade(strict)}
	if solverName != "auto" {
		s, err := solver.ByName(solverName)
		if err != nil {
			return cmdutil.Usagef("%v", err)
		}
		planner.Solver = s
	}

	if decideK >= 0 {
		ok, err := planner.Decide(context.Background(), in, decideK)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "PEBBLE(D): π(G) <= %d is %v\n", decideK, ok)
		return nil
	}

	res, err := planner.Run(context.Background(), in)
	if err != nil {
		return err
	}
	cmdutil.WriteResult(w, res, showScheme)
	return nil
}

// readInstance ingests the graph from path (stdin when empty) as an
// engine instance: bipartite inputs keep their join-graph structure,
// general graphs flow in unguaranteed.
func readInstance(path string) (*engine.Instance, error) {
	var in io.Reader = os.Stdin
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		in = f
	}
	v, err := graph.Read(in)
	if err != nil {
		return nil, err
	}
	switch t := v.(type) {
	case *graph.Bipartite:
		return engine.FromBipartite("bipartite", t), nil
	case *graph.Graph:
		return engine.FromGraph(t), nil
	}
	return nil, fmt.Errorf("pebble: unsupported input type %T", v)
}
