package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"joinpebble/internal/engine/cmdutil"
	"joinpebble/internal/solver"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "graph.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunOnSpiderFile(t *testing.T) {
	// Spider G_3: π̂ should be 8 (π = 7 = m + 1).
	path := writeTemp(t, "bipartite 4 3\ne 0 0\ne 1 0\ne 0 1\ne 2 1\ne 0 2\ne 3 2\n")
	var sb strings.Builder
	if err := run(&sb, "exact", true, false, -1, path); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"edges (m)       6", "cost π̂          8", "perfect         false", "scheme:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestRunGeneralGraph(t *testing.T) {
	path := writeTemp(t, "graph 4\ne 0 1\ne 1 2\ne 2 3\n")
	var sb strings.Builder
	if err := run(&sb, "auto", false, false, -1, path); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "perfect         true") {
		t.Fatalf("path should pebble perfectly:\n%s", sb.String())
	}
}

func TestRunUnknownSolver(t *testing.T) {
	path := writeTemp(t, "graph 2\ne 0 1\n")
	var sb strings.Builder
	err := run(&sb, "bogus", false, false, -1, path)
	if err == nil {
		t.Fatal("unknown solver must error")
	}
	if !cmdutil.IsUsage(err) {
		t.Fatalf("unknown solver should be a usage error, got %v", err)
	}
}

func TestRunMissingFile(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "auto", false, false, -1, "/nonexistent/graph.txt"); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestRunEquijoinSolverRejectsHardGraph(t *testing.T) {
	path := writeTemp(t, "bipartite 4 3\ne 0 0\ne 1 0\ne 0 1\ne 2 1\ne 0 2\ne 3 2\n")
	var sb strings.Builder
	if err := run(&sb, "equijoin", false, true, -1, path); err == nil {
		t.Fatal("strict equijoin solver must reject the spider")
	}
	// Without -strict, the structure rejection is a degradable cause: the
	// run completes on a lower rung and says so.
	sb.Reset()
	if err := run(&sb, "equijoin", false, false, -1, path); err != nil {
		t.Fatalf("non-strict run must degrade, got %v", err)
	}
	if !strings.Contains(sb.String(), "DEGRADED (equijoin→") {
		t.Fatalf("missing degradation provenance:\n%s", sb.String())
	}
}

func TestNamedSolversResolve(t *testing.T) {
	for _, name := range []string{"auto", "exact", "exact-bnb", "approx-1.25", "greedy", "cycle-cover", "equijoin", "matching", "naive"} {
		if _, err := solver.ByName(name); err != nil {
			t.Errorf("solver %q not found: %v", name, err)
		}
	}
}

func TestRunReportsRoute(t *testing.T) {
	// A path graph is not complete bipartite, fits the exact budget.
	path := writeTemp(t, "graph 4\ne 0 1\ne 1 2\ne 2 3\n")
	var sb strings.Builder
	if err := run(&sb, "auto", false, false, -1, path); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "route           exact") {
		t.Fatalf("missing route line:\n%s", sb.String())
	}
}

func TestRunDecideMode(t *testing.T) {
	// Spider G_3 has π = 7.
	path := writeTemp(t, "bipartite 4 3\ne 0 0\ne 1 0\ne 0 1\ne 2 1\ne 0 2\ne 3 2\n")
	var sb strings.Builder
	if err := run(&sb, "auto", false, false, 6, path); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "<= 6 is false") {
		t.Fatalf("decide output: %s", sb.String())
	}
	sb.Reset()
	if err := run(&sb, "auto", false, false, 7, path); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "<= 7 is true") {
		t.Fatalf("decide output: %s", sb.String())
	}
}
