package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"testing"

	"joinpebble/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// pebbleBin is the compiled command under test; golden tests exercise the
// real binary so flag parsing, exit codes and -metrics output are covered
// end to end.
var pebbleBin string

func TestMain(m *testing.M) {
	flag.Parse()
	dir, err := os.MkdirTemp("", "pebble-golden")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	pebbleBin = filepath.Join(dir, "pebble")
	if out, err := exec.Command("go", "build", "-o", pebbleBin, ".").CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "building pebble: %v\n%s", err, out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// checkGolden compares got against testdata/<name>.golden, rewriting the
// file under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("output differs from %s (run with -update to accept):\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// normalizeMetrics reduces a -metrics JSON snapshot to its sorted metric
// names: values are timing- and iteration-dependent, the instrument set is
// the stable contract.
func normalizeMetrics(t *testing.T, raw []byte) []byte {
	t.Helper()
	var snap obs.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("-metrics output is not a snapshot: %v\n%s", err, raw)
	}
	var buf bytes.Buffer
	section := func(kind string, names []string) {
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(&buf, "%s %s\n", kind, n)
		}
	}
	counters := make([]string, 0, len(snap.Counters))
	for n := range snap.Counters {
		counters = append(counters, n)
	}
	timers := make([]string, 0, len(snap.Timers))
	for n := range snap.Timers {
		timers = append(timers, n)
	}
	histograms := make([]string, 0, len(snap.Histograms))
	for n := range snap.Histograms {
		histograms = append(histograms, n)
	}
	section("counter", counters)
	section("timer", timers)
	section("histogram", histograms)
	return buf.Bytes()
}

// normalizeTrace reduces a Chrome trace to its structure — span id,
// parentage, track, name, and integer attributes. Timestamps and
// durations vary per run; the span forest of a fixed sequential solve
// does not.
func normalizeTrace(t *testing.T, raw []byte) []byte {
	t.Helper()
	var doc obs.ChromeTrace
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace-out file is not chrome trace JSON: %v\n%s", err, raw)
	}
	var buf bytes.Buffer
	for _, ev := range doc.TraceEvents {
		fmt.Fprintf(&buf, "id=%d parent=%d tid=%d %s", ev.Args["id"], ev.Args["parent"], ev.Tid, ev.Name)
		keys := make([]string, 0, len(ev.Args))
		for k := range ev.Args {
			if k != "id" && k != "parent" {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&buf, " %s=%d", k, ev.Args[k])
		}
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// TestGoldenTraceOut pins the span forest a fixed solve emits through
// -trace-out: one Chrome trace per solve scope plus the flight recorder
// dump, with stable structure across runs.
func TestGoldenTraceOut(t *testing.T) {
	dir := t.TempDir()
	if out, err := exec.Command(pebbleBin, "-solver", "exact", "-trace-out", dir, "testdata/spider3.txt").CombinedOutput(); err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "scope-*.trace.json"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("scope traces = %v (err %v), want exactly one", matches, err)
	}
	raw, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "trace_spider", normalizeTrace(t, raw))

	frRaw, err := os.ReadFile(filepath.Join(dir, "flightrecorder.json"))
	if err != nil {
		t.Fatalf("flight recorder dump missing: %v", err)
	}
	var snap obs.FlightRecorderSnapshot
	if err := json.Unmarshal(frRaw, &snap); err != nil {
		t.Fatalf("flightrecorder.json is not a snapshot: %v", err)
	}
	if snap.Total != 1 || len(snap.Recent) != 1 || snap.Recent[0].Name != "engine/solve" {
		t.Fatalf("flight recorder = %+v, want the one solve", snap)
	}
}

func TestGoldenSolveSpider(t *testing.T) {
	out, err := exec.Command(pebbleBin, "-solver", "exact", "-scheme", "testdata/spider3.txt").Output()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "solve_spider", out)
}

func TestGoldenSolvePathAuto(t *testing.T) {
	out, err := exec.Command(pebbleBin, "testdata/path4.txt").Output()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "solve_path_auto", out)
}

func TestGoldenDecide(t *testing.T) {
	out, err := exec.Command(pebbleBin, "-decide", "7", "testdata/spider3.txt").Output()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "decide_spider", out)
}

func TestGoldenMetricsJSON(t *testing.T) {
	mpath := filepath.Join(t.TempDir(), "m.json")
	if out, err := exec.Command(pebbleBin, "-metrics", mpath, "testdata/spider3.txt").CombinedOutput(); err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	raw, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics_names", normalizeMetrics(t, raw))
}

// TestGoldenDegraded: forcing the exact solver onto a 40-edge component
// trips the Held–Karp budget deterministically; without -strict the run
// completes on the approximation rung, exits 0, and prints the DEGRADED
// provenance line.
func TestGoldenDegraded(t *testing.T) {
	out, err := exec.Command(pebbleBin, "-solver", "exact", "testdata/path41.txt").Output()
	if err != nil {
		t.Fatalf("degraded run must exit 0: %v", err)
	}
	checkGolden(t, "solve_degraded", out)
}

// TestStrictExitsNonZero: -strict turns the same budget trip into a
// non-zero exit with the solver sentinel text on stderr, matchable by
// scripts that must not accept weaker bounds.
func TestStrictExitsNonZero(t *testing.T) {
	var stderr bytes.Buffer
	cmd := exec.Command(pebbleBin, "-strict", "-solver", "exact", "testdata/path41.txt")
	cmd.Stderr = &stderr
	err := cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("want exit error, got %v", err)
	}
	if ee.ExitCode() != 1 {
		t.Fatalf("exit code %d, want 1", ee.ExitCode())
	}
	if !bytes.Contains(stderr.Bytes(), []byte("search budget exceeded")) {
		t.Fatalf("stderr must carry the budget sentinel: %q", stderr.String())
	}
}

// TestUsageErrorsExitTwo pins the CLI error contract: usage errors exit 2
// with a message on stderr, runtime errors exit 1.
func TestUsageErrorsExitTwo(t *testing.T) {
	for name, tc := range map[string]struct {
		args []string
		code int
	}{
		"unknown solver": {[]string{"-solver", "bogus", "testdata/spider3.txt"}, 2},
		"extra args":     {[]string{"testdata/spider3.txt", "extra"}, 2},
		"missing file":   {[]string{"/nonexistent/graph.txt"}, 1},
	} {
		t.Run(name, func(t *testing.T) {
			var stderr bytes.Buffer
			cmd := exec.Command(pebbleBin, tc.args...)
			cmd.Stderr = &stderr
			err := cmd.Run()
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("want exit error, got %v", err)
			}
			if ee.ExitCode() != tc.code {
				t.Fatalf("exit code %d, want %d (stderr: %s)", ee.ExitCode(), tc.code, stderr.String())
			}
			if !bytes.HasPrefix(stderr.Bytes(), []byte("pebble: ")) {
				t.Fatalf("stderr must name the command: %q", stderr.String())
			}
		})
	}
}
