// Command obsreport renders joinpebble observability artifacts as text:
// metric snapshots (-metrics files, flight recorder dumps embed the same
// shape) as aligned tables, span traces (Chrome trace_event JSON from
// -trace-out, or JSONL from -trace) as indented trees, and pairs of
// snapshots or BENCH_*.json reports as before/after diffs that apply the
// same noise-floor significance rules as the bench regression comparator.
//
// Usage:
//
//	obsreport snapshot <metrics.json>
//	obsreport trace <trace.json | trace.jsonl>
//	obsreport diff [-tolerance 1.30] [-check] <base.json> <cur.json>
//
// diff auto-detects its inputs: a BENCH_*.json report (diffed series plus
// embedded metrics) or a bare metrics snapshot. With -check, diff exits 1
// when any timer or series regressed beyond the tolerance.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"joinpebble/internal/bench"
	"joinpebble/internal/engine/cmdutil"
	"joinpebble/internal/obs"
)

func main() {
	cmdutil.Exit("obsreport", run(os.Args[1:], os.Stdout))
}

func run(args []string, w io.Writer) error {
	if len(args) == 0 {
		return cmdutil.Usagef("usage: obsreport <snapshot|trace|diff> [flags] <file...>")
	}
	switch args[0] {
	case "snapshot":
		if len(args) != 2 {
			return cmdutil.Usagef("usage: obsreport snapshot <metrics.json>")
		}
		return runSnapshot(args[1], w)
	case "trace":
		if len(args) != 2 {
			return cmdutil.Usagef("usage: obsreport trace <trace.json|trace.jsonl>")
		}
		return runTrace(args[1], w)
	case "diff":
		return runDiff(args[1:], w)
	default:
		return cmdutil.Usagef("unknown subcommand %q (want snapshot, trace, or diff)", args[0])
	}
}

// loadSnapshot reads either a bare obs.Snapshot or a BENCH_*.json report
// (returned too, so diff can also compare series). Exactly one of the
// returns is non-nil on success.
func loadSnapshot(path string) (*obs.Snapshot, *bench.Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var probe struct {
		Schema   *int             `json:"schema"`
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if probe.Schema != nil {
		r, err := bench.LoadReport(path)
		if err != nil {
			return nil, nil, err
		}
		return nil, r, nil
	}
	var s obs.Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return &s, nil, nil
}

// sortedKeys returns m's keys ascending, the row order of every table.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func nameWidth(names []string, min int) int {
	w := min
	for _, n := range names {
		if len(n) > w {
			w = len(n)
		}
	}
	return w
}

func runSnapshot(path string, w io.Writer) error {
	snap, report, err := loadSnapshot(path)
	if err != nil {
		return err
	}
	if report != nil {
		fmt.Fprintf(w, "bench report %s (%s, GOMAXPROCS=%d, %d series)\n\n",
			report.Date, report.GoVersion, report.GOMAXPROCS, len(report.Series))
		if report.Metrics == nil {
			fmt.Fprintln(w, "no embedded metrics snapshot")
			return nil
		}
		snap = report.Metrics
	}
	writeSnapshot(w, snap)
	return nil
}

func writeSnapshot(w io.Writer, s *obs.Snapshot) {
	cw := nameWidth(sortedKeys(s.Counters), 20)
	fmt.Fprintf(w, "counters (%d)\n", len(s.Counters))
	for _, n := range sortedKeys(s.Counters) {
		fmt.Fprintf(w, "  %-*s %14d\n", cw, n, s.Counters[n])
	}
	tw := nameWidth(sortedKeys(s.Timers), 20)
	fmt.Fprintf(w, "\ntimers (%d)\n", len(s.Timers))
	fmt.Fprintf(w, "  %-*s %10s %14s %12s %12s %12s %12s\n",
		tw, "name", "count", "total_ns", "avg_ns", "p50_ns", "p99_ns", "max_ns")
	for _, n := range sortedKeys(s.Timers) {
		t := s.Timers[n]
		fmt.Fprintf(w, "  %-*s %10d %14d %12.0f %12.0f %12.0f %12d\n",
			tw, n, t.Count, t.TotalNs, t.AvgNs, t.Quantile(0.50), t.Quantile(0.99), t.MaxNs)
	}
	hw := nameWidth(sortedKeys(s.Histograms), 20)
	fmt.Fprintf(w, "\nhistograms (%d)\n", len(s.Histograms))
	fmt.Fprintf(w, "  %-*s %10s %14s %12s %12s %12s %12s\n",
		hw, "name", "count", "sum", "min", "p50", "p99", "max")
	for _, n := range sortedKeys(s.Histograms) {
		h := s.Histograms[n]
		fmt.Fprintf(w, "  %-*s %10d %14d %12d %12.0f %12.0f %12d\n",
			hw, n, h.Count, h.Sum, h.Min, h.Quantile(0.50), h.Quantile(0.99), h.Max)
	}
}

// loadSpans parses path as Chrome trace_event JSON (object with a
// traceEvents array; span tree recovered from the id/parent args) or as
// a JSONL span stream (one SpanRecord per line).
func loadSpans(path string) ([]obs.SpanRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	trimmed := strings.TrimSpace(string(data))
	if trimmed == "" {
		return nil, nil
	}
	var doc obs.ChromeTrace
	if err := json.Unmarshal(data, &doc); err == nil && doc.TraceEvents != nil {
		recs := make([]obs.SpanRecord, 0, len(doc.TraceEvents))
		for _, ev := range doc.TraceEvents {
			rec := obs.SpanRecord{
				Name:    ev.Name,
				StartNs: int64(ev.Ts * 1e3),
				DurNs:   int64(ev.Dur * 1e3),
			}
			for k, v := range ev.Args {
				switch k {
				case "id":
					rec.ID = int(v)
				case "parent":
					rec.Parent = int(v)
				default:
					if rec.Attrs == nil {
						rec.Attrs = make(map[string]int64)
					}
					rec.Attrs[k] = v
				}
			}
			recs = append(recs, rec)
		}
		sort.SliceStable(recs, func(i, j int) bool { return recs[i].ID < recs[j].ID })
		return recs, nil
	}
	var recs []obs.SpanRecord
	sc := bufio.NewScanner(strings.NewReader(trimmed))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec obs.SpanRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			return nil, fmt.Errorf("parse %s: %w", path, err)
		}
		recs = append(recs, rec)
	}
	return recs, sc.Err()
}

func runTrace(path string, w io.Writer) error {
	recs, err := loadSpans(path)
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		fmt.Fprintln(w, "empty trace")
		return nil
	}
	// Depth from the parent chain: parents always precede children in id
	// order, which both writers guarantee.
	depth := make(map[int]int, len(recs))
	for _, r := range recs {
		d := 0
		if r.Parent > 0 {
			d = depth[r.Parent] + 1
		}
		depth[r.ID] = d
	}
	fmt.Fprintf(w, "%d spans\n", len(recs))
	for _, r := range recs {
		dur := fmt.Sprintf("%d ns", r.DurNs)
		if r.DurNs < 0 {
			dur = "unended"
		}
		var attrs string
		if len(r.Attrs) > 0 {
			parts := make([]string, 0, len(r.Attrs))
			for _, k := range sortedKeys(r.Attrs) {
				parts = append(parts, fmt.Sprintf("%s=%d", k, r.Attrs[k]))
			}
			attrs = "  {" + strings.Join(parts, " ") + "}"
		}
		fmt.Fprintf(w, "%s%s  %s%s\n", strings.Repeat("  ", depth[r.ID]+1), r.Name, dur, attrs)
	}
	return nil
}

// regressError marks a -check diff that found regressions; it exits 1,
// not 2, because the inputs were fine — the code got slower.
type regressError struct{ n int }

func (e *regressError) Error() string {
	return fmt.Sprintf("%d regression(s) beyond tolerance", e.n)
}

func runDiff(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("obsreport diff", flag.ContinueOnError)
	tolerance := fs.Float64("tolerance", 1.30, "ratio beyond which a slowdown counts as a regression")
	check := fs.Bool("check", false, "exit 1 when anything regressed beyond the tolerance")
	if err := fs.Parse(args); err != nil {
		return cmdutil.Usagef("%v", err)
	}
	if fs.NArg() != 2 {
		return cmdutil.Usagef("usage: obsreport diff [-tolerance 1.30] [-check] <base.json> <cur.json>")
	}
	baseSnap, baseRep, err := loadSnapshot(fs.Arg(0))
	if err != nil {
		return err
	}
	curSnap, curRep, err := loadSnapshot(fs.Arg(1))
	if err != nil {
		return err
	}
	if (baseRep == nil) != (curRep == nil) {
		return cmdutil.Usagef("cannot diff a bench report against a bare snapshot")
	}
	regressions := 0
	if baseRep != nil {
		c := bench.Compare(baseRep, curRep)
		fmt.Fprintf(w, "series: %s -> %s\n", baseRep.Date, curRep.Date)
		fmt.Fprint(w, bench.FormatComparison(c, *tolerance))
		regressions += len(c.Regressions(*tolerance))
		baseSnap, curSnap = baseRep.Metrics, curRep.Metrics
		if baseSnap == nil || curSnap == nil {
			fmt.Fprintln(w, "\nmetrics: not embedded in both reports")
			baseSnap, curSnap = nil, nil
		} else {
			fmt.Fprintln(w)
		}
	}
	if baseSnap != nil {
		regressions += diffSnapshots(w, baseSnap, curSnap, *tolerance)
	}
	if *check && regressions > 0 {
		return &regressError{n: regressions}
	}
	return nil
}

// diffSnapshots renders counter deltas and timer/histogram timing shifts.
// A timer counts as regressed under exactly the bench comparator's rule:
// avg ratio beyond tolerance AND an absolute shift above the shared
// noise floor (bench.NoiseFloorNs). Returns the regression count.
func diffSnapshots(w io.Writer, base, cur *obs.Snapshot, tolerance float64) int {
	regressions := 0
	union := func(a, b []string) []string {
		seen := make(map[string]bool, len(a)+len(b))
		var out []string
		for _, n := range append(append([]string{}, a...), b...) {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
		sort.Strings(out)
		return out
	}

	counters := union(sortedKeys(base.Counters), sortedKeys(cur.Counters))
	cw := nameWidth(counters, 20)
	fmt.Fprintf(w, "counters (%d)\n", len(counters))
	fmt.Fprintf(w, "  %-*s %14s %14s %14s\n", cw, "name", "base", "cur", "delta")
	for _, n := range counters {
		b, inB := base.Counters[n]
		c, inC := cur.Counters[n]
		note := ""
		switch {
		case !inB:
			note = "  new"
		case !inC:
			note = "  MISSING"
		}
		fmt.Fprintf(w, "  %-*s %14d %14d %+14d%s\n", cw, n, b, c, c-b, note)
	}

	timers := union(sortedKeys(base.Timers), sortedKeys(cur.Timers))
	tw := nameWidth(timers, 20)
	fmt.Fprintf(w, "\ntimers (%d)\n", len(timers))
	fmt.Fprintf(w, "  %-*s %12s %12s %8s\n", tw, "name", "base avg_ns", "cur avg_ns", "ratio")
	for _, n := range timers {
		b, inB := base.Timers[n]
		c, inC := cur.Timers[n]
		switch {
		case !inB:
			fmt.Fprintf(w, "  %-*s %12s %12.0f %8s  new\n", tw, n, "-", c.AvgNs, "-")
			continue
		case !inC:
			fmt.Fprintf(w, "  %-*s %12.0f %12s %8s  MISSING\n", tw, n, b.AvgNs, "-", "-")
			continue
		}
		// Reuse the bench Delta so Regressed is literally the same code.
		d := bench.Delta{
			Base: bench.Series{NsPerOp: b.AvgNs},
			Cur:  bench.Series{NsPerOp: c.AvgNs},
		}
		if b.AvgNs > 0 {
			d.Ratio = c.AvgNs / b.AvgNs
		}
		flag := ""
		if d.Regressed(tolerance) {
			flag = "  REGRESSION"
			regressions++
		} else if d.Ratio > 0 && d.Ratio < 1/tolerance && b.AvgNs-c.AvgNs > bench.NoiseFloorNs {
			flag = "  improved"
		}
		fmt.Fprintf(w, "  %-*s %12.0f %12.0f %7.2fx%s\n", tw, n, b.AvgNs, c.AvgNs, d.Ratio, flag)
	}

	hists := union(sortedKeys(base.Histograms), sortedKeys(cur.Histograms))
	hw := nameWidth(hists, 20)
	fmt.Fprintf(w, "\nhistograms (%d)\n", len(hists))
	fmt.Fprintf(w, "  %-*s %12s %12s %12s %12s\n", hw, "name", "base p50", "cur p50", "base p99", "cur p99")
	for _, n := range hists {
		b, inB := base.Histograms[n]
		c, inC := cur.Histograms[n]
		switch {
		case !inB:
			fmt.Fprintf(w, "  %-*s %12s %12.0f %12s %12.0f  new\n", hw, n, "-", c.Quantile(0.50), "-", c.Quantile(0.99))
		case !inC:
			fmt.Fprintf(w, "  %-*s %12.0f %12s %12.0f %12s  MISSING\n", hw, n, b.Quantile(0.50), "-", b.Quantile(0.99), "-")
		default:
			fmt.Fprintf(w, "  %-*s %12.0f %12.0f %12.0f %12.0f\n",
				hw, n, b.Quantile(0.50), c.Quantile(0.50), b.Quantile(0.99), c.Quantile(0.99))
		}
	}
	return regressions
}
