package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"joinpebble/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// obsreportBin is the compiled command under test; like cmd/pebble's
// golden tests, exercising the real binary covers flag parsing and the
// exit-code contract end to end.
var obsreportBin string

func TestMain(m *testing.M) {
	flag.Parse()
	dir, err := os.MkdirTemp("", "obsreport-golden")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	obsreportBin = filepath.Join(dir, "obsreport")
	if out, err := exec.Command("go", "build", "-o", obsreportBin, ".").CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "building obsreport: %v\n%s", err, out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("output differs from %s (run with -update to accept):\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

func TestGoldenSnapshot(t *testing.T) {
	out, err := exec.Command(obsreportBin, "snapshot", "testdata/snapshot.json").Output()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "snapshot", out)
}

func TestGoldenTraceJSONL(t *testing.T) {
	out, err := exec.Command(obsreportBin, "trace", "testdata/trace.jsonl").Output()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "trace_jsonl", out)
}

func TestGoldenTraceChrome(t *testing.T) {
	out, err := exec.Command(obsreportBin, "trace", "testdata/chrome.trace.json").Output()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "trace_chrome", out)
}

// TestGoldenDiffBenchReports pins the acceptance-path diff: the two
// committed BENCH_2026-08-09 reports (legacy vs current), series table
// plus embedded-metrics diff, byte-stable because every input is a
// committed file.
func TestGoldenDiffBenchReports(t *testing.T) {
	out, err := exec.Command(obsreportBin, "diff",
		"../../BENCH_2026-08-09-legacy.json", "../../BENCH_2026-08-09.json").Output()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "diff_bench", out)
}

// writeSnap marshals an obs.Snapshot into dir and returns its path.
func writeSnap(t *testing.T, dir, name string, s obs.Snapshot) string {
	t.Helper()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestDiffCheckExitCode: -check turns a timer slowdown beyond both the
// ratio tolerance and the bench noise floor into exit 1; within the
// noise floor it stays 0 even at a huge ratio — the comparator rule.
func TestDiffCheckExitCode(t *testing.T) {
	dir := t.TempDir()
	base := writeSnap(t, dir, "base.json", obs.Snapshot{
		Timers: map[string]obs.TimerSnapshot{
			"engine/run": {Count: 1, TotalNs: 100, AvgNs: 100, MinNs: 100, MaxNs: 100},
		},
	})
	slow := writeSnap(t, dir, "slow.json", obs.Snapshot{
		Timers: map[string]obs.TimerSnapshot{
			"engine/run": {Count: 1, TotalNs: 300, AvgNs: 300, MinNs: 300, MaxNs: 300},
		},
	})
	cmd := exec.Command(obsreportBin, "diff", "-check", base, slow)
	err := cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("regressed -check diff: err = %v, want exit 1", err)
	}

	// A 3x ratio on a sub-noise-floor timer is host jitter, not a
	// regression: 1ns -> 3ns stays exit 0.
	tiny := writeSnap(t, dir, "tiny.json", obs.Snapshot{
		Timers: map[string]obs.TimerSnapshot{
			"engine/run": {Count: 1, TotalNs: 1, AvgNs: 1, MinNs: 1, MaxNs: 1},
		},
	})
	tiny3 := writeSnap(t, dir, "tiny3.json", obs.Snapshot{
		Timers: map[string]obs.TimerSnapshot{
			"engine/run": {Count: 1, TotalNs: 3, AvgNs: 3, MinNs: 3, MaxNs: 3},
		},
	})
	if out, err := exec.Command(obsreportBin, "diff", "-check", tiny, tiny3).CombinedOutput(); err != nil {
		t.Fatalf("sub-noise-floor diff must exit 0: %v\n%s", err, out)
	}
}

func TestUsageErrorsExitTwo(t *testing.T) {
	for name, args := range map[string][]string{
		"no subcommand":    {},
		"unknown":          {"bogus"},
		"diff mixed kinds": {"diff", "testdata/snapshot.json", "../../BENCH_2026-08-09.json"},
		"snapshot arity":   {"snapshot"},
	} {
		t.Run(name, func(t *testing.T) {
			var stderr bytes.Buffer
			cmd := exec.Command(obsreportBin, args...)
			cmd.Stderr = &stderr
			err := cmd.Run()
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("want exit error, got %v", err)
			}
			if ee.ExitCode() != 2 {
				t.Fatalf("exit code %d, want 2 (stderr: %s)", ee.ExitCode(), stderr.String())
			}
			if !bytes.HasPrefix(stderr.Bytes(), []byte("obsreport: ")) {
				t.Fatalf("stderr must name the command: %q", stderr.String())
			}
		})
	}
}
