// Package clean follows every invariant; the golden test asserts
// joinlint exits 0 and prints nothing on it.
package clean

import (
	"errors"
	"fmt"
	"time"

	"joinpebble/internal/faultinject"
	"joinpebble/internal/obs"
	"joinpebble/internal/solver"
)

// ErrClean is a sentinel, wrapped and compared the sanctioned way.
var ErrClean = errors.New("clean: failure")

// SiteClean names a registered fault site.
const SiteClean = "engine/rung"

var cOps = obs.Default.Counter("clean/ops")

func fire() error {
	return faultinject.Fire(SiteClean)
}

func wrap(n int) error {
	return fmt.Errorf("step %d: %w", n, ErrClean)
}

func check(err error) bool {
	return errors.Is(err, ErrClean) || errors.Is(err, solver.ErrBudgetExceeded)
}

func elapsed() time.Duration {
	start := obs.Now()
	cOps.Inc()
	return obs.Since(start)
}

// hotStore honors the hot-path contract.
//
//joinpebble:hotpath
func hotStore(dst []int, k, v int) {
	dst[k] = v
}
