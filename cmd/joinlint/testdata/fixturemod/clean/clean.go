// Package clean follows every invariant; the golden test asserts
// joinlint exits 0 and prints nothing on it.
package clean

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"joinpebble/internal/faultinject"
	"joinpebble/internal/obs"
	"joinpebble/internal/solver"
)

// ErrClean is a sentinel, wrapped and compared the sanctioned way.
var ErrClean = errors.New("clean: failure")

// SiteClean names a registered fault site.
const SiteClean = "engine/rung"

var cOps = obs.Default.Counter("clean/ops")

func fire() error {
	return faultinject.Fire(SiteClean)
}

func wrap(n int) error {
	return fmt.Errorf("step %d: %w", n, ErrClean)
}

func check(err error) bool {
	return errors.Is(err, ErrClean) || errors.Is(err, solver.ErrBudgetExceeded)
}

func elapsed() time.Duration {
	start := obs.Now()
	cOps.Inc()
	return obs.Since(start)
}

// hotStore honors the hot-path contract.
//
//joinpebble:hotpath
func hotStore(dst []int, k, v int) {
	dst[k] = v
}

// spawnJoined bounds the goroutine with a WaitGroup join.
func spawnJoined() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		cOps.Inc()
	}()
	wg.Wait()
}

// first/second are always acquired in declaration order, and the
// lockrank directives make the hierarchy explicit.
type first struct {
	//joinlint:lockrank clean-first 10
	mu sync.Mutex
}

type second struct {
	//joinlint:lockrank clean-second 20
	mu sync.Mutex
}

var (
	f1 first
	s2 second
)

func orderedLocks() {
	f1.mu.Lock()
	s2.mu.Lock()
	s2.mu.Unlock()
	f1.mu.Unlock()
}

// gauge uses a typed atomic exclusively through its methods.
type gauge struct {
	v atomic.Int64
}

func (g *gauge) set(x int64) {
	g.v.Store(x)
}

func (g *gauge) get() int64 {
	return g.v.Load()
}
