module joinpebble/fixturemod

go 1.22

require joinpebble v0.0.0

replace joinpebble => ../../../..
