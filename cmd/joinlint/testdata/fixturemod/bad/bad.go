// Package bad violates one invariant per analyzer (ctxloop aside,
// which is path-scoped to the real search packages and covered by its
// analysistest fixtures). The golden test asserts joinlint reports
// exactly these findings and exits 1.
package bad

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"joinpebble/internal/faultinject"
	"joinpebble/internal/obs"
	"joinpebble/internal/solver"
)

// ErrBad is a sentinel by the repo convention.
var ErrBad = errors.New("bad: failure")

func dynamicMetric(alg string) *obs.Counter {
	return obs.Default.Counter("bad/" + alg + "/ops")
}

func fireInline() error {
	return faultinject.Fire("bad/inline-site")
}

func compareSentinel(err error) bool {
	return err == ErrBad
}

func wrapWrong(err error) error {
	if errors.Is(err, solver.ErrBudgetExceeded) {
		return fmt.Errorf("bad: %v", solver.ErrBudgetExceeded)
	}
	return err
}

func bareClock() time.Duration {
	start := time.Now()
	return time.Since(start)
}

// hotAppend claims the hot-path contract and breaks it.
//
//joinpebble:hotpath
func hotAppend(dst []int, v int) []int {
	return append(dst, v)
}

// hotSpawn breaks two invariants on one line: spawning inside a hot
// path allocates (hotalloc), and nothing bounds the goroutine's
// lifetime (golife). The golden file pins that same-position
// diagnostics sort by analyzer name.
//
//joinpebble:hotpath
func hotSpawn() {
	go spin()
}

func spin() {
	for {
		continue
	}
}

// lockA/lockB are acquired in both orders across the two functions
// below: a textbook lock-order cycle.
type lockA struct{ mu sync.Mutex }

type lockB struct{ mu sync.Mutex }

var (
	la lockA
	lb lockB
)

func abOrder() {
	la.mu.Lock()
	lb.mu.Lock()
	lb.mu.Unlock()
	la.mu.Unlock()
}

func baOrder() {
	lb.mu.Lock()
	la.mu.Lock()
	la.mu.Unlock()
	lb.mu.Unlock()
}

// counter mixes atomic and plain access to the same field with no
// guarding lock anywhere.
type counter struct {
	pad int64
	n   int64
}

func (c *counter) bump() {
	atomic.AddInt64(&c.n, 1)
}

func (c *counter) peek() int64 {
	return c.n
}
