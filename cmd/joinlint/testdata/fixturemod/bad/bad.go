// Package bad violates one invariant per analyzer (ctxloop aside,
// which is path-scoped to the real search packages and covered by its
// analysistest fixtures). The golden test asserts joinlint reports
// exactly these findings and exits 1.
package bad

import (
	"errors"
	"fmt"
	"time"

	"joinpebble/internal/faultinject"
	"joinpebble/internal/obs"
	"joinpebble/internal/solver"
)

// ErrBad is a sentinel by the repo convention.
var ErrBad = errors.New("bad: failure")

func dynamicMetric(alg string) *obs.Counter {
	return obs.Default.Counter("bad/" + alg + "/ops")
}

func fireInline() error {
	return faultinject.Fire("bad/inline-site")
}

func compareSentinel(err error) bool {
	return err == ErrBad
}

func wrapWrong(err error) error {
	if errors.Is(err, solver.ErrBudgetExceeded) {
		return fmt.Errorf("bad: %v", solver.ErrBudgetExceeded)
	}
	return err
}

func bareClock() time.Duration {
	start := time.Now()
	return time.Since(start)
}

// hotAppend claims the hot-path contract and breaks it.
//
//joinpebble:hotpath
func hotAppend(dst []int, v int) []int {
	return append(dst, v)
}
