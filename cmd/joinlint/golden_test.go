package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// joinlintBin is the compiled command under test; the golden tests run
// the real binary against a self-contained fixture module so loading,
// diagnostics formatting, and exit codes are covered end to end.
var joinlintBin string

func TestMain(m *testing.M) {
	flag.Parse()
	dir, err := os.MkdirTemp("", "joinlint-golden")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	joinlintBin = filepath.Join(dir, "joinlint")
	if out, err := exec.Command("go", "build", "-o", joinlintBin, ".").CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "building joinlint: %v\n%s", err, out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// checkGolden compares got against testdata/<name>.golden, rewriting
// the file under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("output differs from %s (run with -update to accept):\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// runJoinlint executes the binary inside the fixture module and returns
// its stdout, stderr, and exit code.
func runJoinlint(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	cmd := exec.Command(joinlintBin, args...)
	cmd.Dir = filepath.Join("testdata", "fixturemod")
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	err := cmd.Run()
	code = 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("running joinlint: %v", err)
		}
		code = ee.ExitCode()
	}
	return out.String(), errb.String(), code
}

// TestGoldenFindings lints the deliberately broken fixture package and
// pins the exact diagnostics and the findings exit code.
func TestGoldenFindings(t *testing.T) {
	stdout, stderr, code := runJoinlint(t, "./...")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (findings)\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stderr != "" {
		t.Errorf("unexpected stderr:\n%s", stderr)
	}
	checkGolden(t, "findings", []byte(stdout))
}

// TestCleanExitsZero lints only the compliant package: no output,
// exit 0.
func TestCleanExitsZero(t *testing.T) {
	stdout, stderr, code := runJoinlint(t, "./clean")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("expected no diagnostics, got:\n%s", stdout)
	}
}

// TestBadPatternExitsTwo asserts the usage-error contract: an
// unloadable pattern exits 2.
func TestBadPatternExitsTwo(t *testing.T) {
	_, stderr, code := runJoinlint(t, "./no/such/package")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2 (usage)\nstderr:\n%s", code, stderr)
	}
}

// TestGensitesMatchesCommitted regenerates the site registry from the
// repo's DESIGN.md into a scratch file and requires it to match the
// committed registry_gen.go — the same pin TestRegistryGenerated
// enforces from the sitereg side, here exercised through the CLI.
func TestGensitesMatchesCommitted(t *testing.T) {
	root := filepath.Join("..", "..")
	out := filepath.Join(t.TempDir(), "registry_gen.go")
	cmd := exec.Command(joinlintBin,
		"-gensites",
		"-design", filepath.Join(root, "DESIGN.md"),
		"-genout", out,
	)
	if b, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("joinlint -gensites: %v\n%s", err, b)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join(root, "internal", "analysis", "passes", "sitereg", "registry_gen.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("-gensites output differs from committed registry_gen.go:\n--- generated ---\n%s--- committed ---\n%s", got, want)
	}
}
