// Command joinlint runs the repo's first-party static analyzers
// (internal/analysis/passes/...) over Go package patterns and reports
// violations of invariants no generic linter knows: the hot-path
// allocation contract, constant obs names, the fault-site registry,
// sentinel wrapping, search-loop cancellation cadence, and the
// forbidden ambient globals.
//
// Usage:
//
//	joinlint [packages]            lint (default ./...)
//	joinlint -gensites             regenerate sitereg's registry_gen.go
//	                               from DESIGN.md's site table
//
// Exit codes follow the cmdutil convention: 0 clean, 1 findings or
// runtime failure, 2 usage errors (bad patterns, unloadable packages).
package main

import (
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"

	"joinpebble/internal/analysis"
	"joinpebble/internal/analysis/load"
	"joinpebble/internal/analysis/passes/atomicmix"
	"joinpebble/internal/analysis/passes/ctxloop"
	"joinpebble/internal/analysis/passes/forbidden"
	"joinpebble/internal/analysis/passes/golife"
	"joinpebble/internal/analysis/passes/hotalloc"
	"joinpebble/internal/analysis/passes/lockorder"
	"joinpebble/internal/analysis/passes/obsnames"
	"joinpebble/internal/analysis/passes/sitereg"
	"joinpebble/internal/analysis/passes/wraperr"
	"joinpebble/internal/engine/cmdutil"
)

// analyzers is the full suite, in the order diagnostics credit them.
var analyzers = []*analysis.Analyzer{
	atomicmix.Analyzer,
	ctxloop.Analyzer,
	forbidden.Analyzer,
	golife.Analyzer,
	hotalloc.Analyzer,
	lockorder.Analyzer,
	obsnames.Analyzer,
	sitereg.Analyzer,
	wraperr.Analyzer,
}

func main() {
	var (
		gensites = flag.Bool("gensites", false, "regenerate the sitereg registry from -design and exit")
		design   = flag.String("design", "DESIGN.md", "path to DESIGN.md (for -gensites)")
		genout   = flag.String("genout", filepath.Join("internal", "analysis", "passes", "sitereg", "registry_gen.go"), "output path for -gensites")
	)
	flag.Parse()

	if *gensites {
		cmdutil.Exit("joinlint", runGensites(*design, *genout))
		return
	}

	found, err := runLint(flag.Args())
	cmdutil.Exit("joinlint", err)
	if found {
		os.Exit(1)
	}
}

// runLint loads the patterns, runs every analyzer, prints diagnostics
// as "path:line:col: message (analyzer)", and reports whether any were
// found.
func runLint(patterns []string) (bool, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	fset := token.NewFileSet()
	pkgs, err := load.Load(".", fset, patterns)
	if err != nil {
		return false, cmdutil.Usagef("loading packages: %v", err)
	}
	units := make([]analysis.Unit, 0, len(pkgs))
	for _, p := range pkgs {
		units = append(units, analysis.Unit{Files: p.Files, Pkg: p.Pkg, Info: p.Info})
	}
	diags, err := analysis.Run(fset, units, analyzers)
	if err != nil {
		return false, err
	}
	cwd, _ := os.Getwd()
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		name := pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil {
				name = rel
			}
		}
		fmt.Printf("%s:%d:%d: %s (%s)\n", name, pos.Line, pos.Column, d.Message, d.Analyzer)
	}
	return len(diags) > 0, nil
}

// runGensites rewrites sitereg's generated registry from the DESIGN.md
// site table, keeping the compiled-in list and the docs in lockstep.
func runGensites(design, out string) error {
	sites, err := sitereg.ParseDesign(design)
	if err != nil {
		return cmdutil.Usagef("%v", err)
	}
	if err := os.WriteFile(out, sitereg.GenSource(sites), 0o644); err != nil {
		return err
	}
	fmt.Printf("joinlint: wrote %d sites to %s\n", len(sites), out)
	return nil
}
