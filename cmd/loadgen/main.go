// Command loadgen drives a running pebbled with open-loop load: Poisson
// arrivals at a fixed rate, a weighted mix of predicate families with
// heavy-tailed (bounded Pareto) instance sizes, every request issued
// through the shared retrying client (capped exponential backoff with
// jitter, honoring the server's Retry-After). Arrivals never wait for
// responses, so a saturated server sees genuine queue pressure and the
// 429 path is exercised for real.
//
// The run prints latency quantiles (p50/p99/p999 of successful
// requests), throughput, and the degraded/cached/rejected outcome
// fractions; -report writes the same numbers as a BENCH_<date>-serve
// style report (bench schema, Serve flag set, so kernel regression runs
// never pick it as a baseline).
//
// Everything derives from -seed, so a run is replayable bit-for-bit on
// the generator side.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"joinpebble/internal/bench"
	"joinpebble/internal/engine/cmdutil"
	"joinpebble/internal/obs"
	"joinpebble/internal/serve"
)

func main() {
	base := flag.String("base", "http://localhost:8080", "pebbled base URL")
	rate := flag.Float64("rate", 50, "arrival rate in requests/second")
	duration := flag.Duration("duration", 5*time.Second, "how long to generate arrivals")
	seed := flag.Int64("seed", 1, "seed for arrivals, sizes, families, and workload seeds")
	budgetMS := flag.Int64("budget-ms", 0, "per-request solve budget in milliseconds (0 = server cap)")
	minSize := flag.Int("min-size", 8, "minimum per-side relation size")
	maxSize := flag.Int("max-size", 512, "maximum per-side relation size (Pareto tail cap)")
	alpha := flag.Float64("alpha", 1.5, "Pareto tail index for instance sizes")
	report := flag.String("report", "", "write a serve-flavored bench report (JSON) to this file")
	obsFlags := cmdutil.BindFlags(flag.CommandLine, "loadgen", false)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: loadgen [flags]\ngenerates open-loop load against a running pebbled\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if err := obsFlags.Start(); err != nil {
		cmdutil.Exit("loadgen", err)
	}
	if flag.NArg() != 0 {
		cmdutil.Exit("loadgen", cmdutil.Usagef("unexpected arguments %v", flag.Args()))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	err := run(ctx, os.Stdout, serve.LoadConfig{
		Base:     *base,
		Rate:     *rate,
		Duration: *duration,
		Seed:     *seed,
		BudgetMS: *budgetMS,
		MinSize:  *minSize,
		MaxSize:  *maxSize,
		Alpha:    *alpha,
	}, *report)
	if err == nil {
		err = obsFlags.Finish()
	}
	cmdutil.Exit("loadgen", err)
}

func run(ctx context.Context, w *os.File, cfg serve.LoadConfig, reportPath string) error {
	rep, err := serve.RunLoad(ctx, cfg)
	if rep == nil {
		return err
	}
	// An interrupted run still reports what it measured.
	frac := func(n int64) float64 {
		if rep.Requests == 0 {
			return 0
		}
		return float64(n) / float64(rep.Requests)
	}
	ms := func(ns float64) float64 { return ns / 1e6 }
	fmt.Fprintf(w, "requests   %d in %.2fs (rate %.1f/s asked)\n", rep.Requests, time.Duration(rep.ElapsedNS).Seconds(), cfg.Rate)
	fmt.Fprintf(w, "ok         %d (%.1f/s completed)\n", rep.OK, rep.ThroughputRPS)
	fmt.Fprintf(w, "degraded   %d (%.1f%%)\n", rep.Degraded, 100*frac(rep.Degraded))
	fmt.Fprintf(w, "cached     %d (%.1f%%)\n", rep.Cached, 100*frac(rep.Cached))
	fmt.Fprintf(w, "rejected   %d (%.1f%%), %d retries spent\n", rep.Rejected, 100*frac(rep.Rejected), rep.Retries)
	fmt.Fprintf(w, "canceled   %d, errors %d\n", rep.Canceled, rep.Errors)
	fmt.Fprintf(w, "latency    p50 %.2fms  p99 %.2fms  p999 %.2fms  mean %.2fms\n",
		ms(rep.P50NS), ms(rep.P99NS), ms(rep.P999NS), ms(rep.MeanNS))

	if rep.Errors > 0 && err == nil {
		err = fmt.Errorf("loadgen: %d requests failed with non-retryable errors", rep.Errors)
	}
	if reportPath == "" {
		return err
	}
	br := &bench.Report{
		Schema:     bench.SchemaVersion,
		Date:       obs.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Serve:      true,
		Series: []bench.Series{{
			Name:       "serve/solve",
			Iterations: int(rep.OK),
			NsPerOp:    rep.MeanNS,
			Extra: map[string]float64{
				"p50_ns":            rep.P50NS,
				"p99_ns":            rep.P99NS,
				"p999_ns":           rep.P999NS,
				"throughput_rps":    rep.ThroughputRPS,
				"degraded_fraction": frac(rep.Degraded),
				"cached_fraction":   frac(rep.Cached),
				"rejected_fraction": frac(rep.Rejected),
				"canceled":          float64(rep.Canceled),
				"errors":            float64(rep.Errors),
				"retries":           float64(rep.Retries),
				"rate_rps":          cfg.Rate,
			},
		}},
		Metrics: obs.Default.Snapshot(),
	}
	if werr := bench.WriteReport(reportPath, br); werr != nil {
		if err == nil {
			err = werr
		}
		return err
	}
	fmt.Fprintf(os.Stderr, "loadgen: wrote report to %s\n", reportPath)
	return err
}
