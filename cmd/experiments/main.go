// Command experiments regenerates the per-claim verification tables
// recorded in EXPERIMENTS.md — one experiment per theorem/lemma/figure
// of the paper (E1..E19; see DESIGN.md for the index).
//
// Experiments are independent, so they run on a bounded worker pool
// (-j, default GOMAXPROCS) while tables are printed strictly in registry
// order — stdout is byte-identical to a sequential run. A per-experiment
// wall-time/allocation table and a per-phase instrumentation table go to
// stderr afterwards (suppress with -timing=false), so piping -markdown
// output into EXPERIMENTS.md stays clean.
//
// Usage:
//
//	experiments                  # run everything, aligned-text tables
//	experiments -run E7,E11      # a subset
//	experiments -markdown        # GitHub-flavored markdown (EXPERIMENTS.md body)
//	experiments -j 4             # at most 4 experiments in flight
//	experiments -metrics m.json  # dump the metrics snapshot after the run
//	experiments -trace t.jsonl   # record the solver span tree
//	experiments -pprof :6060     # serve /debug/pprof and /debug/vars
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"joinpebble/internal/bench"
	"joinpebble/internal/engine/cmdutil"
	"joinpebble/internal/obs"
)

type outcome struct {
	table  *bench.Table
	err    error
	wall   time.Duration
	allocs uint64 // heap bytes allocated during the run (approximate under -j > 1)
}

func main() {
	runList := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	markdown := flag.Bool("markdown", false, "emit markdown tables")
	csv := flag.Bool("csv", false, "emit CSV (one table after another)")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "experiments to run concurrently")
	timing := flag.Bool("timing", true, "print per-experiment and per-phase tables to stderr")
	obsFlags := cmdutil.BindFlags(flag.CommandLine, "experiments", true)
	flag.Parse()

	if err := obsFlags.Start(); err != nil {
		cmdutil.Exit("experiments", err)
	}
	if flag.NArg() > 0 {
		cmdutil.Exit("experiments", cmdutil.Usagef("unexpected arguments %v", flag.Args()))
	}

	var selected []bench.Experiment
	if *runList == "" {
		selected = bench.All()
	} else {
		for _, id := range strings.Split(*runList, ",") {
			e, ok := bench.Find(strings.TrimSpace(id))
			if !ok {
				cmdutil.Exit("experiments", cmdutil.Usagef("unknown id %q", id))
			}
			selected = append(selected, e)
		}
	}

	results := run(selected, *jobs)

	failed := 0
	for i, e := range selected {
		r := results[i]
		if r.err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s failed: %v\n", e.ID, r.err)
			failed++
			continue
		}
		var renderErr error
		switch {
		case *markdown:
			renderErr = r.table.Markdown(os.Stdout)
		case *csv:
			renderErr = r.table.CSV(os.Stdout)
		default:
			renderErr = r.table.Render(os.Stdout)
		}
		if renderErr != nil {
			fmt.Fprintln(os.Stderr, "experiments:", renderErr)
			os.Exit(1)
		}
	}
	if *timing {
		printTiming(selected, results, *jobs)
		printPhases()
	}
	if err := obsFlags.Finish(); err != nil {
		cmdutil.Exit("experiments", err)
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// printTiming renders the per-experiment wall-time/allocation table.
// Alloc figures are deltas of runtime.MemStats.TotalAlloc around each
// run, so with -j > 1 concurrent experiments bleed into each other's
// numbers; the wall column is always exact.
func printTiming(selected []bench.Experiment, results []outcome, jobs int) {
	tt := &bench.Table{
		ID:     "timing",
		Title:  fmt.Sprintf("per-experiment wall time and allocations (-j %d)", jobs),
		Header: []string{"experiment", "title", "wall", "alloc"},
	}
	if jobs > 1 {
		tt.Notes = append(tt.Notes, "alloc is a TotalAlloc delta; concurrent experiments overlap, treat as indicative")
	}
	var total time.Duration
	var totalAllocs uint64
	for i, e := range selected {
		tt.AddRow(e.ID, e.Title, results[i].wall.Round(time.Microsecond).String(), formatBytes(results[i].allocs))
		total += results[i].wall
		totalAllocs += results[i].allocs
	}
	tt.AddRow("total", "(cpu-serial)", total.Round(time.Microsecond).String(), formatBytes(totalAllocs))
	if err := tt.Render(os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
	}
}

// printPhases renders the instrumented per-phase timers (solver phases,
// claw detection, ...) accumulated across every experiment that ran.
func printPhases() {
	snap := obs.Default.Snapshot()
	names := make([]string, 0, len(snap.Timers))
	for name := range snap.Timers {
		names = append(names, name)
	}
	if len(names) == 0 {
		return
	}
	sort.Strings(names)
	pt := &bench.Table{
		ID:     "phases",
		Title:  "per-phase instrumented time (all experiments)",
		Header: []string{"phase", "count", "total", "avg"},
	}
	for _, name := range names {
		ts := snap.Timers[name]
		if ts.Count == 0 {
			continue
		}
		pt.AddRow(name,
			fmt.Sprint(ts.Count),
			time.Duration(ts.TotalNs).Round(time.Microsecond).String(),
			time.Duration(int64(ts.AvgNs)).Round(time.Microsecond).String())
	}
	if err := pt.Render(os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
	}
}

func formatBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}

// run executes the selected experiments on at most j workers and returns
// their outcomes indexed like the input.
func run(selected []bench.Experiment, j int) []outcome {
	results := make([]outcome, len(selected))
	if j < 1 {
		j = 1
	}
	if j > len(selected) {
		j = len(selected)
	}
	if j <= 1 {
		for i, e := range selected {
			results[i] = runOne(e)
		}
		return results
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for k := 0; k < j; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = runOne(selected[i])
			}
		}()
	}
	for i := range selected {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

func runOne(e bench.Experiment) outcome {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := obs.Now()
	table, err := e.Run()
	wall := obs.Since(start)
	runtime.ReadMemStats(&after)
	return outcome{table: table, err: err, wall: wall, allocs: after.TotalAlloc - before.TotalAlloc}
}
