// Command experiments regenerates the per-claim verification tables
// recorded in EXPERIMENTS.md — one experiment per theorem/lemma/figure
// of the paper (E1..E15; see DESIGN.md for the index).
//
// Usage:
//
//	experiments               # run everything, aligned-text tables
//	experiments -run E7,E11   # a subset
//	experiments -markdown     # GitHub-flavored markdown (EXPERIMENTS.md body)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"joinpebble/internal/bench"
)

func main() {
	runList := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	markdown := flag.Bool("markdown", false, "emit markdown tables")
	csv := flag.Bool("csv", false, "emit CSV (one table after another)")
	flag.Parse()

	var selected []bench.Experiment
	if *runList == "" {
		selected = bench.All()
	} else {
		for _, id := range strings.Split(*runList, ",") {
			e, ok := bench.Find(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown id %q\n", id)
				os.Exit(1)
			}
			selected = append(selected, e)
		}
	}

	failed := 0
	for _, e := range selected {
		table, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s failed: %v\n", e.ID, err)
			failed++
			continue
		}
		var renderErr error
		switch {
		case *markdown:
			renderErr = table.Markdown(os.Stdout)
		case *csv:
			renderErr = table.CSV(os.Stdout)
		default:
			renderErr = table.Render(os.Stdout)
		}
		if renderErr != nil {
			fmt.Fprintln(os.Stderr, "experiments:", renderErr)
			os.Exit(1)
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
