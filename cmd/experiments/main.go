// Command experiments regenerates the per-claim verification tables
// recorded in EXPERIMENTS.md — one experiment per theorem/lemma/figure
// of the paper (E1..E19; see DESIGN.md for the index).
//
// Experiments are independent, so they run on a bounded worker pool
// (-j, default GOMAXPROCS) while tables are printed strictly in registry
// order — stdout is byte-identical to a sequential run. A per-experiment
// wall-time table goes to stderr afterwards (suppress with -timing=false),
// so piping -markdown output into EXPERIMENTS.md stays clean.
//
// Usage:
//
//	experiments               # run everything, aligned-text tables
//	experiments -run E7,E11   # a subset
//	experiments -markdown     # GitHub-flavored markdown (EXPERIMENTS.md body)
//	experiments -j 4          # at most 4 experiments in flight
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"joinpebble/internal/bench"
)

type outcome struct {
	table *bench.Table
	err   error
	wall  time.Duration
}

func main() {
	runList := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	markdown := flag.Bool("markdown", false, "emit markdown tables")
	csv := flag.Bool("csv", false, "emit CSV (one table after another)")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "experiments to run concurrently")
	timing := flag.Bool("timing", true, "print per-experiment wall-time table to stderr")
	flag.Parse()

	var selected []bench.Experiment
	if *runList == "" {
		selected = bench.All()
	} else {
		for _, id := range strings.Split(*runList, ",") {
			e, ok := bench.Find(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown id %q\n", id)
				os.Exit(1)
			}
			selected = append(selected, e)
		}
	}

	results := run(selected, *jobs)

	failed := 0
	for i, e := range selected {
		r := results[i]
		if r.err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s failed: %v\n", e.ID, r.err)
			failed++
			continue
		}
		var renderErr error
		switch {
		case *markdown:
			renderErr = r.table.Markdown(os.Stdout)
		case *csv:
			renderErr = r.table.CSV(os.Stdout)
		default:
			renderErr = r.table.Render(os.Stdout)
		}
		if renderErr != nil {
			fmt.Fprintln(os.Stderr, "experiments:", renderErr)
			os.Exit(1)
		}
	}
	if *timing {
		tt := &bench.Table{
			ID:     "timing",
			Title:  fmt.Sprintf("per-experiment wall time (-j %d)", *jobs),
			Header: []string{"experiment", "wall"},
		}
		var total time.Duration
		for i, e := range selected {
			tt.AddRow(e.ID, results[i].wall.Round(time.Microsecond).String())
			total += results[i].wall
		}
		tt.AddRow("total (cpu-serial)", total.Round(time.Microsecond).String())
		if err := tt.Render(os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// run executes the selected experiments on at most j workers and returns
// their outcomes indexed like the input.
func run(selected []bench.Experiment, j int) []outcome {
	results := make([]outcome, len(selected))
	if j < 1 {
		j = 1
	}
	if j > len(selected) {
		j = len(selected)
	}
	if j <= 1 {
		for i, e := range selected {
			results[i] = runOne(e)
		}
		return results
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for k := 0; k < j; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = runOne(selected[i])
			}
		}()
	}
	for i := range selected {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

func runOne(e bench.Experiment) outcome {
	start := time.Now()
	table, err := e.Run()
	return outcome{table: table, err: err, wall: time.Since(start)}
}
