package joinpebble

// End-to-end integration tests driving the whole pipeline the way a
// downstream user would: generate workloads for each of the paper's
// three predicate classes, run every applicable join algorithm, audit
// the emission orders in the pebble model, solve the pebbling problem
// itself, and cross-check all the invariants the paper proves.

import (
	"math/rand"
	"testing"

	"joinpebble/internal/core"
	"joinpebble/internal/graph"
	"joinpebble/internal/join"
	"joinpebble/internal/pages"
	"joinpebble/internal/partition"
	"joinpebble/internal/solver"
	"joinpebble/internal/workload"
)

func TestEndToEndEquijoin(t *testing.T) {
	w := workload.Equijoin{LeftSize: 150, RightSize: 170, Domain: 25, Skew: 0.7}
	l, r := w.Generate(100)
	ls, rs := l.Ints(), r.Ints()
	b := EquijoinGraph(ls, rs)
	if b.M() == 0 {
		t.Fatal("workload produced no joining pairs")
	}

	// Every algorithm computes the same result set.
	want := join.NestedLoop(ls, rs, join.EqInt)
	for _, algo := range []struct {
		name  string
		pairs []Pair
	}{
		{"hash", join.HashJoin(ls, rs)},
		{"sort-merge", join.SortMerge(ls, rs)},
		{"zigzag", join.SortMergeZigzag(ls, rs)},
	} {
		if len(algo.pairs) != len(want) {
			t.Fatalf("%s produced %d pairs, want %d", algo.name, len(algo.pairs), len(want))
		}
		audit, err := AuditEmission(b, algo.pairs)
		if err != nil {
			t.Fatalf("%s: %v", algo.name, err)
		}
		if algo.name == "zigzag" && !audit.Perfect {
			t.Fatal("zigzag merge must be a perfect pebbling")
		}
	}

	// The solver agrees the graph pebbles perfectly.
	scheme, cost, err := Pebble(b)
	if err != nil {
		t.Fatal(err)
	}
	if !IsPerfect(b, scheme) {
		t.Fatal("equijoin graph must pebble perfectly")
	}
	g, _ := b.Graph().WithoutIsolated()
	if cost != g.M()+core.Betti0(g) {
		t.Fatalf("π̂=%d want m+β₀=%d", cost, g.M()+core.Betti0(g))
	}

	// Page scheduling and partitioning sit on top consistently.
	sched, err := PlanPageFetches(b, 10)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Fetches < sched.LowerBound {
		t.Fatal("fetches below lower bound")
	}
	st, err := PartitionWork(b, partition.HashEquijoin(ls, rs, 16))
	if err != nil {
		t.Fatal(err)
	}
	if st.Work < st.ReadLowerBound {
		t.Fatal("partition work below lower bound")
	}
}

func TestEndToEndContainment(t *testing.T) {
	w := workload.SetContainment{LeftSize: 60, RightSize: 70, Universe: 300,
		LeftMax: 3, RightMax: 8, Correlated: true}
	l, r := w.Generate(200)
	ls, rs := l.Sets(), r.Sets()
	b := ContainmentGraph(ls, rs)
	if b.M() == 0 {
		t.Fatal("no joining pairs")
	}
	want := join.NestedLoop(ls, rs, join.Contains)
	for _, pairs := range [][]Pair{
		join.SignatureNestedLoop(ls, rs),
		join.InvertedIndexJoin(ls, rs),
		join.PartitionedSetJoin(ls, rs, 8),
	} {
		if len(pairs) != len(want) {
			t.Fatalf("containment algorithms disagree: %d vs %d", len(pairs), len(want))
		}
	}

	// Pebbling cost respects the universal bounds; the approximation
	// respects Theorem 3.1's bound.
	g, _ := b.Graph().WithoutIsolated()
	_, cost, err := PebbleWith(solver.Approx125{}, b)
	if err != nil {
		t.Fatal(err)
	}
	if cost < core.LowerBound(b.Graph()) || cost > solver.ApproxCostBound(g) {
		t.Fatalf("approx cost %d outside [%d, %d]", cost, core.LowerBound(b.Graph()), solver.ApproxCostBound(g))
	}
}

func TestEndToEndSpatial(t *testing.T) {
	w := workload.Spatial{LeftSize: 100, RightSize: 110, Span: 80, MaxExtent: 6, Clusters: 2}
	l, r := w.Generate(300)
	ls, rs := l.Rects(), r.Rects()
	b := OverlapGraph(ls, rs)
	if b.M() == 0 {
		t.Fatal("no overlapping pairs")
	}
	want := join.NestedLoop(ls, rs, join.Overlaps)
	if got := join.SweepJoin(ls, rs); len(got) != len(want) {
		t.Fatalf("sweep found %d pairs want %d", len(got), len(want))
	}
	if got := join.RTreeJoin(ls, rs, 8); len(got) != len(want) {
		t.Fatalf("r-tree found %d pairs want %d", len(got), len(want))
	}
	if _, _, err := PebbleWith(solver.Approx125{}, b); err != nil {
		t.Fatal(err)
	}
}

func TestEndToEndHardFamilyAcrossRealizations(t *testing.T) {
	// The same combinatorial object — G_n — reached three ways: directly,
	// as a containment join, as a spatial join. All must agree on the
	// optimal cost.
	n := 5
	direct := HardFamily(n)
	cs, ss := AsContainmentJoin(direct)
	viaSets := ContainmentGraph(cs, ss)
	rr, sr := AsSpatialJoin(n)
	viaRects := OverlapGraph(rr, sr)

	c1, err := OptimalCost(direct)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := OptimalCost(viaSets)
	if err != nil {
		t.Fatal(err)
	}
	c3, err := OptimalCost(viaRects)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 || c1 != c3 {
		t.Fatalf("realizations disagree: direct=%d sets=%d rects=%d", c1, c2, c3)
	}
	if c1-1 != HardFamilyOptimal(n) {
		t.Fatalf("optimal %d, closed form %d", c1-1, HardFamilyOptimal(n))
	}
}

func TestEndToEndAllSolversConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	b := graph.RandomConnectedBipartite(rng, 4, 4, 12)
	var exactCost int
	for _, s := range Solvers() {
		if s.Name() == "equijoin" {
			continue // random graph is not an equijoin graph
		}
		scheme, cost, err := PebbleWith(s, b)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if got, err := core.Verify(b.Graph(), scheme); err != nil || got != cost {
			t.Fatalf("%s: reverify gave %d/%v", s.Name(), got, err)
		}
		if s.Name() == "exact" {
			exactCost = cost
		}
	}
	if exactCost == 0 {
		t.Fatal("exact solver missing from lineup")
	}
	pg, err := pages.PageGraph(b, pages.Sequential(b.NLeft(), b.NRight(), 2))
	if err != nil {
		t.Fatal(err)
	}
	if pg.M() > b.M() {
		t.Fatal("page graph cannot have more edges than the join graph")
	}
}
