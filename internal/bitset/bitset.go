package bitset

import "math/bits"

// Bitset is a dense bitset over a fixed universe 0..n-1, stored as
// uint64 words. It is the word-parallel primitive behind the claw-scan
// kernel (internal/graph): the "three pairwise non-adjacent neighbors"
// test of Theorem 3.1's precondition becomes a chain of AndNot
// intersections over adjacency rows instead of per-pair binary searches.
//
// A Bitset is just its word slice: callers that know the word layout
// (bit i lives in word i>>6 at position i&63) may index it directly.
// All binary operations require operands of equal word length; they
// write into the receiver so hot loops never allocate.
type Bitset []uint64

// words returns the number of words needed for n bits.
func words(n int) int { return (n + 63) >> 6 }

// New returns a zeroed bitset able to hold bits 0..n-1.
func New(n int) Bitset {
	if n < 0 {
		panic("bitset: negative bitset size")
	}
	return make(Bitset, words(n))
}

// Set sets bit i.
//
//joinpebble:hotpath
func (b Bitset) Set(i int) { b[i>>6] |= 1 << uint(i&63) }

// Clear clears bit i.
//
//joinpebble:hotpath
func (b Bitset) Clear(i int) { b[i>>6] &^= 1 << uint(i&63) }

// Test reports whether bit i is set.
//
//joinpebble:hotpath
func (b Bitset) Test(i int) bool { return b[i>>6]&(1<<uint(i&63)) != 0 }

// ClearAll zeroes every word.
//
//joinpebble:hotpath
func (b Bitset) ClearAll() {
	for w := range b {
		b[w] = 0
	}
}

// Copy overwrites b with src. The lengths must match.
//
//joinpebble:hotpath
func (b Bitset) Copy(src Bitset) {
	for w := range b {
		b[w] = src[w]
	}
}

// And sets b = x & y. The lengths must match.
//
//joinpebble:hotpath
func (b Bitset) And(x, y Bitset) {
	for w := range b {
		b[w] = x[w] & y[w]
	}
}

// AndNot sets b = x &^ y — the complement intersection the claw kernel
// runs per neighbor: "in x but not adjacent per row y". The lengths must
// match.
//
//joinpebble:hotpath
func (b Bitset) AndNot(x, y Bitset) {
	for w := range b {
		b[w] = x[w] &^ y[w]
	}
}

// Or sets b = x | y. The lengths must match.
//
//joinpebble:hotpath
func (b Bitset) Or(x, y Bitset) {
	for w := range b {
		b[w] = x[w] | y[w]
	}
}

// ClearThrough clears bits 0..i inclusive — the "only candidates above
// the current neighbor" restriction of the claw kernel's ordered triple
// enumeration.
//
//joinpebble:hotpath
func (b Bitset) ClearThrough(i int) {
	wi := i >> 6
	for w := 0; w < wi && w < len(b); w++ {
		b[w] = 0
	}
	if wi < len(b) {
		b[wi] &^= ^uint64(0) >> uint(63-i&63)
	}
}

// Count returns the number of set bits (population count).
//
//joinpebble:hotpath
func (b Bitset) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Any reports whether any bit is set.
//
//joinpebble:hotpath
func (b Bitset) Any() bool {
	for _, w := range b {
		if w != 0 {
			return true
		}
	}
	return false
}

// NextSet returns the lowest set bit >= from, or -1 if none. Iterating
// a bitset is `for i := b.NextSet(0); i >= 0; i = b.NextSet(i + 1)`.
//
//joinpebble:hotpath
func (b Bitset) NextSet(from int) int {
	if from < 0 {
		from = 0
	}
	wi := from >> 6
	if wi >= len(b) {
		return -1
	}
	// Mask off bits below `from` in its own word, then walk whole words.
	w := b[wi] &^ ((1 << uint(from&63)) - 1)
	for {
		if w != 0 {
			return wi<<6 + bits.TrailingZeros64(w)
		}
		wi++
		if wi >= len(b) {
			return -1
		}
		w = b[wi]
	}
}
