package bitset

import (
	"math/rand"
	"testing"
)

func TestBitsetBasics(t *testing.T) {
	b := New(200)
	if got := len(b); got != 4 {
		t.Fatalf("200 bits should need 4 words, got %d", got)
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 199} {
		if b.Test(i) {
			t.Fatalf("fresh bitset has bit %d set", i)
		}
		b.Set(i)
		if !b.Test(i) {
			t.Fatalf("Set(%d) did not stick", i)
		}
	}
	if got := b.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	b.Clear(64)
	if b.Test(64) || b.Count() != 7 {
		t.Fatalf("Clear(64) failed: test=%v count=%d", b.Test(64), b.Count())
	}
	if !b.Any() {
		t.Fatal("Any should be true")
	}
	b.ClearAll()
	if b.Any() || b.Count() != 0 {
		t.Fatal("ClearAll left bits set")
	}
}

func TestBitsetNextSet(t *testing.T) {
	b := New(300)
	want := []int{3, 63, 64, 130, 299}
	for _, i := range want {
		b.Set(i)
	}
	var got []int
	for i := b.NextSet(0); i >= 0; i = b.NextSet(i + 1) {
		got = append(got, i)
	}
	if len(got) != len(want) {
		t.Fatalf("iterated %v, want %v", got, want)
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("iterated %v, want %v", got, want)
		}
	}
	if b.NextSet(300) != -1 {
		t.Fatal("NextSet past the end should be -1")
	}
	if b.NextSet(-5) != 3 {
		t.Fatal("NextSet clamps negative from to 0")
	}
	if b.NextSet(131) != 299 {
		t.Fatalf("NextSet(131) = %d, want 299", b.NextSet(131))
	}
}

func TestBitsetWordOps(t *testing.T) {
	const n = 500
	rng := rand.New(rand.NewSource(11))
	x, y := New(n), New(n)
	xm, ym := map[int]bool{}, map[int]bool{}
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			x.Set(i)
			xm[i] = true
		}
		if rng.Intn(3) == 0 {
			y.Set(i)
			ym[i] = true
		}
	}
	check := func(name string, got Bitset, pred func(i int) bool) {
		t.Helper()
		for i := 0; i < n; i++ {
			if got.Test(i) != pred(i) {
				t.Fatalf("%s: bit %d = %v, want %v", name, i, got.Test(i), pred(i))
			}
		}
	}
	dst := New(n)
	dst.And(x, y)
	check("And", dst, func(i int) bool { return xm[i] && ym[i] })
	dst.AndNot(x, y)
	check("AndNot", dst, func(i int) bool { return xm[i] && !ym[i] })
	dst.Or(x, y)
	check("Or", dst, func(i int) bool { return xm[i] || ym[i] })
	dst.Copy(x)
	check("Copy", dst, func(i int) bool { return xm[i] })
	if dst.Count() != len(xm) {
		t.Fatalf("Count = %d, want %d", dst.Count(), len(xm))
	}
}

func TestBitsetZeroSize(t *testing.T) {
	b := New(0)
	if b.Any() || b.Count() != 0 || b.NextSet(0) != -1 {
		t.Fatal("empty bitset misbehaves")
	}
	b.ClearAll() // must not panic
}

func TestBitsetNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) should panic")
		}
	}()
	New(-1)
}

func TestBitsetClearThrough(t *testing.T) {
	const n = 260
	for _, thr := range []int{0, 1, 62, 63, 64, 65, 127, 128, 200, 259} {
		b := New(n)
		for i := 0; i < n; i++ {
			b.Set(i)
		}
		b.ClearThrough(thr)
		for i := 0; i < n; i++ {
			want := i > thr
			if b.Test(i) != want {
				t.Fatalf("ClearThrough(%d): bit %d = %v, want %v", thr, i, b.Test(i), want)
			}
		}
	}
}
