package workload

import (
	"testing"

	"joinpebble/internal/join"
	"joinpebble/internal/relation"
)

func TestEquijoinDeterministic(t *testing.T) {
	w := Equijoin{LeftSize: 50, RightSize: 60, Domain: 10, Skew: 0}
	l1, r1 := w.Generate(42)
	l2, r2 := w.Generate(42)
	if l1.Len() != 50 || r1.Len() != 60 {
		t.Fatal("sizes")
	}
	for i := range l1.Tuples {
		if l1.Tuples[i].Int != l2.Tuples[i].Int {
			t.Fatal("same seed must reproduce the left relation")
		}
	}
	for i := range r1.Tuples {
		if r1.Tuples[i].Int != r2.Tuples[i].Int {
			t.Fatal("same seed must reproduce the right relation")
		}
	}
	l3, _ := w.Generate(43)
	same := true
	for i := range l1.Tuples {
		if l1.Tuples[i].Int != l3.Tuples[i].Int {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should (overwhelmingly) differ")
	}
}

func TestEquijoinDomainRespected(t *testing.T) {
	for _, skew := range []float64{0, 0.5, 1.5} {
		w := Equijoin{LeftSize: 300, RightSize: 300, Domain: 7, Skew: skew}
		l, r := w.Generate(1)
		for _, v := range append(l.Ints(), r.Ints()...) {
			if v < 0 || v >= 7 {
				t.Fatalf("skew %v: value %d outside domain", skew, v)
			}
		}
	}
}

func TestEquijoinSkewConcentrates(t *testing.T) {
	uniform := Equijoin{LeftSize: 2000, RightSize: 0, Domain: 100, Skew: 0}
	skewed := Equijoin{LeftSize: 2000, RightSize: 0, Domain: 100, Skew: 2.0}
	lu, _ := uniform.Generate(7)
	ls, _ := skewed.Generate(7)
	topShare := func(r *relation.Relation) float64 {
		counts := map[int64]int{}
		for _, v := range r.Ints() {
			counts[v]++
		}
		max := 0
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		return float64(max) / float64(r.Len())
	}
	if topShare(ls) <= 2*topShare(lu) {
		t.Fatalf("zipf skew did not concentrate: uniform top=%.3f skewed top=%.3f",
			topShare(lu), topShare(ls))
	}
}

func TestSetContainmentCorrelatedProducesOutput(t *testing.T) {
	w := SetContainment{
		LeftSize: 40, RightSize: 40, Universe: 1000,
		LeftMax: 3, RightMax: 10, Correlated: true,
	}
	l, r := w.Generate(11)
	pairs := join.NestedLoop(l.Sets(), r.Sets(), join.Contains)
	if len(pairs) < 40 {
		t.Fatalf("correlated workload produced only %d result pairs", len(pairs))
	}
	// Uncorrelated over a huge universe should produce almost nothing.
	w.Correlated = false
	l, r = w.Generate(11)
	pairs = join.NestedLoop(l.Sets(), r.Sets(), join.Contains)
	if len(pairs) > 100 {
		t.Fatalf("uncorrelated workload unexpectedly dense: %d pairs", len(pairs))
	}
}

func TestSetCardinalityBounds(t *testing.T) {
	w := SetContainment{LeftSize: 100, RightSize: 100, Universe: 50, LeftMax: 4, RightMax: 9}
	l, r := w.Generate(3)
	for _, s := range l.Sets() {
		if s.Len() < 1 || s.Len() > 4 {
			t.Fatalf("left set cardinality %d outside [1,4]", s.Len())
		}
	}
	for _, s := range r.Sets() {
		if s.Len() < 1 || s.Len() > 9 {
			t.Fatalf("right set cardinality %d outside [1,9]", s.Len())
		}
	}
}

func TestSpatialUniformVsClustered(t *testing.T) {
	uni := Spatial{LeftSize: 200, RightSize: 200, Span: 100, MaxExtent: 2, Clusters: 0}
	clu := Spatial{LeftSize: 200, RightSize: 200, Span: 100, MaxExtent: 2, Clusters: 3}
	lu, ru := uni.Generate(5)
	lc, rc := clu.Generate(5)
	pu := join.NestedLoop(lu.Rects(), ru.Rects(), join.Overlaps)
	pc := join.NestedLoop(lc.Rects(), rc.Rects(), join.Overlaps)
	// Clustering concentrates rectangles, so the join output should grow
	// substantially.
	if len(pc) <= len(pu) {
		t.Fatalf("clustered output %d not denser than uniform %d", len(pc), len(pu))
	}
	for _, r := range append(lu.Rects(), ru.Rects()...) {
		if !r.Valid() {
			t.Fatal("generated invalid rectangle")
		}
	}
}

func TestSpatialDeterministic(t *testing.T) {
	w := Spatial{LeftSize: 30, RightSize: 30, Span: 50, MaxExtent: 5, Clusters: 2}
	l1, _ := w.Generate(9)
	l2, _ := w.Generate(9)
	for i := range l1.Tuples {
		if l1.Tuples[i].Rect != l2.Tuples[i].Rect {
			t.Fatal("same seed must reproduce rectangles")
		}
	}
}
