// Package workload generates the synthetic relation workloads the
// experiments run on: zipf-skewed integer columns for equijoins,
// random element sets for containment joins, and uniform or clustered
// rectangles for spatial joins. All generators are deterministic given
// the seed, so every experiment in EXPERIMENTS.md is reproducible.
package workload

import (
	"math"
	"math/rand"

	"joinpebble/internal/relation"
	"joinpebble/internal/sets"
	"joinpebble/internal/spatial"
)

// Equijoin describes a pair of integer relations.
type Equijoin struct {
	// Tuples per relation.
	LeftSize, RightSize int
	// Domain is the number of distinct join values.
	Domain int64
	// Skew is the zipf s parameter; 0 means uniform.
	Skew float64
}

// Family names the predicate family this workload generates for; it is
// the engine registry key, so engine.Generate can route any workload
// without a per-kind switch.
func (Equijoin) Family() string { return "equijoin" }

// Generate builds the two relations.
func (w Equijoin) Generate(seed int64) (l, r *relation.Relation) {
	rng := rand.New(rand.NewSource(seed))
	draw := w.drawer(rng)
	lv := make([]int64, w.LeftSize)
	for i := range lv {
		lv[i] = draw()
	}
	rv := make([]int64, w.RightSize)
	for i := range rv {
		rv[i] = draw()
	}
	return relation.FromInts("R", lv), relation.FromInts("S", rv)
}

func (w Equijoin) drawer(rng *rand.Rand) func() int64 {
	if w.Skew <= 0 {
		return func() int64 { return rng.Int63n(w.Domain) }
	}
	// rand.Zipf requires s > 1; clamp below that to uniform-ish skew via
	// an exponent-weighted inverse transform for 0 < s <= 1.
	if w.Skew > 1 {
		z := rand.NewZipf(rng, w.Skew, 1, uint64(w.Domain-1))
		return func() int64 { return int64(z.Uint64()) }
	}
	return func() int64 {
		// Low-skew power law: value ~ floor(D · u^(1+3s)) biases toward
		// small values as s grows.
		u := rng.Float64()
		v := int64(float64(w.Domain) * math.Pow(u, 1.0+w.Skew*3))
		if v >= w.Domain {
			v = w.Domain - 1
		}
		return v
	}
}

// SetContainment describes a pair of set relations where left sets are
// (typically smaller) probe sets and right sets are larger storage sets,
// mirroring the subset-probe workloads of [5] and [14].
type SetContainment struct {
	LeftSize, RightSize int
	// Universe is the element domain size.
	Universe int
	// LeftMax and RightMax bound the set cardinalities.
	LeftMax, RightMax int
	// Correlated, when true, draws left sets as subsets of random right
	// sets so the join produces output (pure random sets rarely join).
	Correlated bool
}

// Family names the predicate family this workload generates for.
func (SetContainment) Family() string { return "containment" }

// Generate builds the two relations.
func (w SetContainment) Generate(seed int64) (l, r *relation.Relation) {
	rng := rand.New(rand.NewSource(seed))
	rv := make([]sets.Set, w.RightSize)
	for i := range rv {
		rv[i] = randomSet(rng, w.RightMax, w.Universe)
	}
	lv := make([]sets.Set, w.LeftSize)
	for i := range lv {
		if w.Correlated && len(rv) > 0 {
			base := rv[rng.Intn(len(rv))]
			lv[i] = subsetOf(rng, base, w.LeftMax)
		} else {
			lv[i] = randomSet(rng, w.LeftMax, w.Universe)
		}
	}
	return relation.FromSets("R", lv), relation.FromSets("S", rv)
}

func randomSet(rng *rand.Rand, maxLen, universe int) sets.Set {
	n := 1 + rng.Intn(maxLen)
	es := make([]uint32, n)
	for i := range es {
		es[i] = uint32(rng.Intn(universe))
	}
	return sets.New(es...)
}

func subsetOf(rng *rand.Rand, base sets.Set, maxLen int) sets.Set {
	elems := base.Elems()
	if len(elems) == 0 {
		return sets.New()
	}
	n := 1 + rng.Intn(maxLen)
	if n > len(elems) {
		n = len(elems)
	}
	perm := rng.Perm(len(elems))
	out := make([]uint32, n)
	for i := 0; i < n; i++ {
		out[i] = elems[perm[i]]
	}
	return sets.New(out...)
}

// Spatial describes a pair of rectangle relations.
type Spatial struct {
	LeftSize, RightSize int
	// Span is the side length of the square universe.
	Span float64
	// MaxExtent bounds rectangle side lengths.
	MaxExtent float64
	// Clusters > 0 concentrates rectangles around that many cluster
	// centers (skewed spatial data); 0 means uniform.
	Clusters int
}

// Family names the predicate family this workload generates for.
func (Spatial) Family() string { return "spatial" }

// Generate builds the two relations.
func (w Spatial) Generate(seed int64) (l, r *relation.Relation) {
	rng := rand.New(rand.NewSource(seed))
	var centers []spatial.Point
	for i := 0; i < w.Clusters; i++ {
		centers = append(centers, spatial.Point{X: rng.Float64() * w.Span, Y: rng.Float64() * w.Span})
	}
	gen := func(n int) []spatial.Rect {
		out := make([]spatial.Rect, n)
		for i := range out {
			var x, y float64
			if len(centers) > 0 {
				c := centers[rng.Intn(len(centers))]
				x = c.X + (rng.Float64()-0.5)*w.Span/10
				y = c.Y + (rng.Float64()-0.5)*w.Span/10
			} else {
				x = rng.Float64() * w.Span
				y = rng.Float64() * w.Span
			}
			out[i] = spatial.NewRect(x, y, x+rng.Float64()*w.MaxExtent, y+rng.Float64()*w.MaxExtent)
		}
		return out
	}
	return relation.FromRects("R", gen(w.LeftSize)), relation.FromRects("S", gen(w.RightSize))
}
