package join

import (
	"cmp"
	"sort"

	"joinpebble/internal/graph"
)

var (
	mHashJoin        = newAlgMetrics("join/hash/tuples_compared", "join/hash/pairs_emitted")
	mSortMerge       = newAlgMetrics("join/sort_merge/tuples_compared", "join/sort_merge/pairs_emitted")
	mSortMergeZigzag = newAlgMetrics("join/sort_merge_zigzag/tuples_compared", "join/sort_merge_zigzag/pairs_emitted")
)

// HashJoin is the classic build/probe hash equijoin over a comparable
// key: build a hash table on the right input, probe with each left tuple.
// Emission order is left-major (all matches of l_0, then l_1, ...), with
// right matches in right-input order.
func HashJoin[K comparable](ls, rs []K) []Pair {
	table := make(map[K][]int, len(rs))
	for j, r := range rs {
		table[r] = append(table[r], j)
	}
	var out []Pair
	for i, l := range ls {
		for _, j := range table[l] {
			out = append(out, Pair{L: i, R: j})
		}
	}
	mHashJoin.flush(int64(len(ls)), int64(len(out))) // one probe per left tuple
	return out
}

// SortMerge is the classic sort-merge equijoin: sort both inputs, advance
// two cursors, and for each group of equal values emit the cross product
// by rescanning the right group for every left tuple (the textbook
// "rewind" merge). Emission within a group is left-major with the right
// side always scanned in the same direction, so consecutive left tuples
// cost a pebbling jump — compare SortMergeZigzag. Works over any ordered
// key domain (§3.1's "character strings or some flavor of numeric type").
func SortMerge[K cmp.Ordered](ls, rs []K) []Pair {
	li, ri := sortedIndex(ls), sortedIndex(rs)
	var out []Pair
	var compared int64
	i, j := 0, 0
	for i < len(li) && j < len(ri) {
		lv, rv := ls[li[i]], rs[ri[j]]
		compared++
		switch {
		case lv < rv:
			i++
		case lv > rv:
			j++
		default:
			// Group boundaries.
			iEnd := i
			for iEnd < len(li) && ls[li[iEnd]] == lv {
				iEnd++
			}
			jEnd := j
			for jEnd < len(ri) && rs[ri[jEnd]] == rv {
				jEnd++
			}
			for a := i; a < iEnd; a++ {
				for b := j; b < jEnd; b++ { // rewind: always forward
					out = append(out, Pair{L: li[a], R: ri[b]})
				}
			}
			i, j = iEnd, jEnd
		}
	}
	mSortMerge.flush(compared, int64(len(out)))
	return out
}

// SortMergeZigzag is SortMerge with the right group scanned boustrophedon
// (forward for the first left tuple, backward for the next, ...), which
// is exactly Lemma 3.2's perfect pebbling of the group's complete
// bipartite join graph. With this emission order the merge phase achieves
// π = m — the construction Theorem 4.1 observes "is similar to the merge
// phase of sort-merge join".
func SortMergeZigzag[K cmp.Ordered](ls, rs []K) []Pair {
	li, ri := sortedIndex(ls), sortedIndex(rs)
	var out []Pair
	var compared int64
	i, j := 0, 0
	for i < len(li) && j < len(ri) {
		lv, rv := ls[li[i]], rs[ri[j]]
		compared++
		switch {
		case lv < rv:
			i++
		case lv > rv:
			j++
		default:
			iEnd := i
			for iEnd < len(li) && ls[li[iEnd]] == lv {
				iEnd++
			}
			jEnd := j
			for jEnd < len(ri) && rs[ri[jEnd]] == rv {
				jEnd++
			}
			for a := i; a < iEnd; a++ {
				if (a-i)%2 == 0 {
					for b := j; b < jEnd; b++ {
						out = append(out, Pair{L: li[a], R: ri[b]})
					}
				} else {
					for b := jEnd - 1; b >= j; b-- {
						out = append(out, Pair{L: li[a], R: ri[b]})
					}
				}
			}
			i, j = iEnd, jEnd
		}
	}
	mSortMergeZigzag.flush(compared, int64(len(out)))
	return out
}

// EquiGraph builds the equijoin join graph by grouping tuples on their
// value — O(|L| + |R| + m) instead of the cross-product scan of Graph.
// The result is identical to Graph(ls, rs, EqInt).
func EquiGraph(ls, rs []int64) *graph.Bipartite {
	groups := make(map[int64][]int, len(rs))
	for j, v := range rs {
		groups[v] = append(groups[v], j)
	}
	b := graph.NewBipartite(len(ls), len(rs))
	for i, v := range ls {
		for _, j := range groups[v] {
			b.AddEdge(i, j)
		}
	}
	return b
}

// sortedIndex returns the indices of vs in ascending value order (stable,
// so ties keep input order).
func sortedIndex[K cmp.Ordered](vs []K) []int {
	idx := make([]int, len(vs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return vs[idx[a]] < vs[idx[b]] })
	return idx
}
