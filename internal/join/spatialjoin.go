package join

import "joinpebble/internal/spatial"

var (
	mRTreeJoin = newAlgMetrics("join/rtree/tuples_compared", "join/rtree/pairs_emitted")
	mSweepJoin = newAlgMetrics("join/sweep/tuples_compared", "join/sweep/pairs_emitted")
	mPolygonNL = newAlgMetrics("join/polygon_nested_loop/tuples_compared", "join/polygon_nested_loop/pairs_emitted")
)

// RTreeJoin is the index-nested-loop spatial join: build an R-tree on the
// right rectangles, probe it with each left rectangle. Emission is
// left-major with right matches in ascending index order.
func RTreeJoin(ls, rs []spatial.Rect, fanout int) []Pair {
	tree := spatial.NewRTree(fanout)
	for j, r := range rs {
		tree.Insert(r, j)
	}
	var out []Pair
	for i, l := range ls {
		for _, j := range tree.Search(l) {
			out = append(out, Pair{L: i, R: j})
		}
	}
	mRTreeJoin.flush(int64(len(ls)), int64(len(out))) // one tree probe per left rect
	return out
}

// SweepJoin is the plane-sweep spatial join: both inputs are sorted into
// one x-ordered event stream and pairs are emitted as the sweep
// discovers them — the emission order studied in the E15 experiment.
func SweepJoin(ls, rs []spatial.Rect) []Pair {
	raw := spatial.IntersectingPairs(ls, rs)
	out := make([]Pair, len(raw))
	for k, p := range raw {
		out[k] = Pair{L: p[0], R: p[1]}
	}
	mSweepJoin.flush(int64(len(raw)), int64(len(out)))
	return out
}

// PolygonNestedLoop joins convex polygons by the SAT overlap test,
// with an optional bounding-box prefilter (the standard filter/refine
// split in spatial query processing).
func PolygonNestedLoop(ls, rs []spatial.Polygon, prefilter bool) []Pair {
	var lb, rb []spatial.Rect
	if prefilter {
		lb = make([]spatial.Rect, len(ls))
		for i, p := range ls {
			lb[i] = p.Bounds()
		}
		rb = make([]spatial.Rect, len(rs))
		for j, p := range rs {
			rb[j] = p.Bounds()
		}
	}
	var out []Pair
	var compared int64 // SAT tests the bounding-box prefilter let through
	for i, l := range ls {
		for j, r := range rs {
			if prefilter && !lb[i].Overlaps(rb[j]) {
				continue
			}
			compared++
			if l.Overlaps(r) {
				out = append(out, Pair{L: i, R: j})
			}
		}
	}
	mPolygonNL.flush(compared, int64(len(out)))
	return out
}
