package join

import (
	"math/rand"
	"testing"
	"testing/quick"

	"joinpebble/internal/sets"
	"joinpebble/internal/spatial"
)

func TestGraphBuildsJoinGraph(t *testing.T) {
	ls := []int64{1, 2, 2}
	rs := []int64{2, 3}
	b := Graph(ls, rs, EqInt)
	if b.M() != 2 || !b.HasEdge(1, 0) || !b.HasEdge(2, 0) {
		t.Fatalf("join graph %v", b)
	}
}

func TestNestedLoopMatchesGraph(t *testing.T) {
	ls := []int64{1, 2, 3, 2}
	rs := []int64{2, 2, 4}
	pairs := NestedLoop(ls, rs, EqInt)
	b := Graph(ls, rs, EqInt)
	if len(pairs) != b.M() {
		t.Fatalf("%d pairs vs %d edges", len(pairs), b.M())
	}
	for _, p := range pairs {
		if !b.HasEdge(p.L, p.R) {
			t.Fatalf("pair %v not an edge", p)
		}
	}
}

func TestHashJoinEqualsNestedLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ls := randInts(r, 20, 6)
		rs := randInts(r, 25, 6)
		return equalPairs(HashJoin(ls, rs), NestedLoop(ls, rs, EqInt))
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSortMergeVariantsEqualNestedLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 40; trial++ {
		ls := randInts(rng, 15, 5)
		rs := randInts(rng, 18, 5)
		want := NestedLoop(ls, rs, EqInt)
		if !equalPairs(SortMerge(ls, rs), want) {
			t.Fatalf("trial %d: SortMerge result differs", trial)
		}
		if !equalPairs(SortMergeZigzag(ls, rs), want) {
			t.Fatalf("trial %d: SortMergeZigzag result differs", trial)
		}
	}
}

func TestSortMergeZigzagIsPerfect(t *testing.T) {
	// The zigzag merge realizes Lemma 3.2's perfect pebbling: π = m on
	// every equijoin workload.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		ls := randInts(rng, 2+rng.Intn(30), 4)
		rs := randInts(rng, 2+rng.Intn(30), 4)
		pairs := SortMergeZigzag(ls, rs)
		if len(pairs) == 0 {
			continue
		}
		b := Graph(ls, rs, EqInt)
		audit, err := AuditPairs(b, pairs)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !audit.Perfect {
			t.Fatalf("trial %d: zigzag merge not perfect: %+v", trial, audit)
		}
	}
}

func TestSortMergeRewindCostsJumps(t *testing.T) {
	// The textbook rewind merge pays a jump per left-tuple switch within
	// a value group (for groups with >= 2 right tuples), so it is NOT a
	// perfect pebbling in general — the asymmetry the E15 experiment
	// quantifies.
	ls := []int64{7, 7, 7}
	rs := []int64{7, 7, 7}
	pairsRewind := SortMerge(ls, rs)
	pairsZig := SortMergeZigzag(ls, rs)
	b := Graph(ls, rs, EqInt)
	ar, err := AuditPairs(b, pairsRewind)
	if err != nil {
		t.Fatal(err)
	}
	az, err := AuditPairs(b, pairsZig)
	if err != nil {
		t.Fatal(err)
	}
	if ar.Jumps != 2 { // two left-switches, each a rewind jump
		t.Fatalf("rewind jumps=%d want 2", ar.Jumps)
	}
	if az.Jumps != 0 || !az.Perfect {
		t.Fatalf("zigzag should be jump-free: %+v", az)
	}
	if ar.Cost <= az.Cost {
		t.Fatal("rewind must cost strictly more than zigzag here")
	}
}

func TestAuditPairsValidation(t *testing.T) {
	ls := []int64{1, 2}
	rs := []int64{1, 2}
	b := Graph(ls, rs, EqInt)
	if _, err := AuditPairs(b, []Pair{{0, 0}}); err == nil {
		t.Fatal("missing pairs must fail")
	}
	if _, err := AuditPairs(b, []Pair{{0, 0}, {0, 1}}); err == nil {
		t.Fatal("non-edge pair must fail")
	}
	if _, err := AuditPairs(b, []Pair{{0, 0}, {0, 0}}); err == nil {
		t.Fatal("duplicate pair must fail")
	}
	audit, err := AuditPairs(b, []Pair{{0, 0}, {1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if audit.Cost != 4 || audit.Jumps != 1 || audit.EffectiveCost != 2 || !audit.Perfect {
		t.Fatalf("audit %+v", audit)
	}
}

func TestContainmentJoinsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		ls := randSets(rng, 15, 4, 8)
		rs := randSets(rng, 20, 8, 8)
		want := NestedLoop(ls, rs, Contains)
		if got := SignatureNestedLoop(ls, rs); !equalPairs(got, want) {
			t.Fatalf("trial %d: signature join differs", trial)
		}
		if got := InvertedIndexJoin(ls, rs); !equalPairs(got, want) {
			t.Fatalf("trial %d: inverted index join differs", trial)
		}
		for _, parts := range []int{1, 3, 7} {
			if got := PartitionedSetJoin(ls, rs, parts); !equalPairs(got, want) {
				t.Fatalf("trial %d: partitioned join (%d parts) differs", trial, parts)
			}
		}
	}
}

func TestContainmentJoinEmptyProbe(t *testing.T) {
	ls := []sets.Set{sets.New()} // empty set joins everything
	rs := []sets.Set{sets.New(1), sets.New(2, 3), sets.New()}
	want := NestedLoop(ls, rs, Contains)
	if len(want) != 3 {
		t.Fatalf("empty set should join all %d right tuples", len(rs))
	}
	if got := InvertedIndexJoin(ls, rs); !equalPairs(got, want) {
		t.Fatal("inverted index join mishandles empty probe")
	}
	if got := PartitionedSetJoin(ls, rs, 4); !equalPairs(got, want) {
		t.Fatal("partitioned join mishandles empty probe")
	}
	if got := SignatureNestedLoop(ls, rs); !equalPairs(got, want) {
		t.Fatal("signature join mishandles empty probe")
	}
}

func TestSpatialJoinsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		ls := randRects(rng, 30, 40)
		rs := randRects(rng, 35, 40)
		want := NestedLoop(ls, rs, Overlaps)
		if got := RTreeJoin(ls, rs, 8); !equalPairs(got, want) {
			t.Fatalf("trial %d: R-tree join differs", trial)
		}
		if got := SweepJoin(ls, rs); !equalPairs(got, want) {
			t.Fatalf("trial %d: sweep join differs", trial)
		}
	}
}

func TestPolygonJoinPrefilterAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 10; trial++ {
		ls := randTriangles(rng, 20, 30)
		rs := randTriangles(rng, 20, 30)
		want := PolygonNestedLoop(ls, rs, false)
		if got := PolygonNestedLoop(ls, rs, true); !equalPairs(got, want) {
			t.Fatalf("trial %d: prefilter changed polygon join results", trial)
		}
	}
}

func TestSortMergeOverStrings(t *testing.T) {
	// §3.1: equijoin domains include character strings; the generic
	// merge must behave identically there, including the zigzag's
	// perfect pebbling.
	ls := []string{"apple", "banana", "banana", "cherry"}
	rs := []string{"banana", "banana", "cherry", "date"}
	want := NestedLoop(ls, rs, EqString)
	if !equalPairs(SortMerge(ls, rs), want) {
		t.Fatal("string sort-merge differs from nested loop")
	}
	zig := SortMergeZigzag(ls, rs)
	if !equalPairs(zig, want) {
		t.Fatal("string zigzag merge differs from nested loop")
	}
	b := Graph(ls, rs, EqString)
	audit, err := AuditPairs(b, zig)
	if err != nil {
		t.Fatal(err)
	}
	if !audit.Perfect {
		t.Fatalf("string zigzag merge should be a perfect pebbling: %+v", audit)
	}
}

func TestEquiGraphMatchesGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 30; trial++ {
		ls := randInts(rng, 25, 6)
		rs := randInts(rng, 30, 6)
		want := Graph(ls, rs, EqInt)
		got := EquiGraph(ls, rs)
		if !got.Equal(want) {
			t.Fatalf("trial %d: grouped equijoin graph differs", trial)
		}
	}
}

func TestGraphFromPairsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ls := randInts(rng, 10, 3)
	rs := randInts(rng, 10, 3)
	b := Graph(ls, rs, EqInt)
	pairs := NestedLoop(ls, rs, EqInt)
	b2 := GraphFromPairs(len(ls), len(rs), pairs)
	if !b.Equal(b2) {
		t.Fatal("graph from pairs differs from direct graph")
	}
}

func randInts(rng *rand.Rand, n int, domain int64) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = rng.Int63n(domain)
	}
	return out
}

func randSets(rng *rand.Rand, n, maxLen, universe int) []sets.Set {
	out := make([]sets.Set, n)
	for i := range out {
		k := rng.Intn(maxLen + 1)
		es := make([]uint32, k)
		for j := range es {
			es[j] = uint32(rng.Intn(universe))
		}
		out[i] = sets.New(es...)
	}
	return out
}

func randRects(rng *rand.Rand, n int, span float64) []spatial.Rect {
	out := make([]spatial.Rect, n)
	for i := range out {
		x, y := rng.Float64()*span, rng.Float64()*span
		out[i] = spatial.NewRect(x, y, x+rng.Float64()*6, y+rng.Float64()*6)
	}
	return out
}

func randTriangles(rng *rand.Rand, n int, span float64) []spatial.Polygon {
	out := make([]spatial.Polygon, n)
	for i := range out {
		x, y := rng.Float64()*span, rng.Float64()*span
		p, err := spatial.NewPolygon(
			spatial.Point{X: x, Y: y},
			spatial.Point{X: x + 2 + rng.Float64()*3, Y: y},
			spatial.Point{X: x, Y: y + 2 + rng.Float64()*3},
		)
		if err != nil {
			panic(err)
		}
		out[i] = p
	}
	return out
}
