package join

import "joinpebble/internal/sets"

var (
	mSignatureNL     = newAlgMetrics("join/signature_nested_loop/tuples_compared", "join/signature_nested_loop/pairs_emitted")
	mInvertedIndex   = newAlgMetrics("join/inverted_index/tuples_compared", "join/inverted_index/pairs_emitted")
	mPartitionedSets = newAlgMetrics("join/partitioned_set/tuples_compared", "join/partitioned_set/pairs_emitted")
)

// SignatureNestedLoop is the signature-filtered nested-loop containment
// join of Helmer & Moerkotte ([5] in the paper): precompute 64-bit
// superimposed signatures, compare sets only when the signature test
// passes. Same emission order as NestedLoop, fewer set comparisons.
func SignatureNestedLoop(ls, rs []sets.Set) []Pair {
	lsig := make([]sets.Signature, len(ls))
	for i, s := range ls {
		lsig[i] = sets.SignatureOf(s)
	}
	rsig := make([]sets.Signature, len(rs))
	for j, s := range rs {
		rsig[j] = sets.SignatureOf(s)
	}
	var out []Pair
	var compared int64 // full subset tests the signature filter let through
	for i, l := range ls {
		for j, r := range rs {
			if lsig[i].MaySubset(rsig[j]) {
				compared++
				if l.SubsetOf(r) {
					out = append(out, Pair{L: i, R: j})
				}
			}
		}
	}
	mSignatureNL.flush(compared, int64(len(out)))
	return out
}

// InvertedIndexJoin builds an inverted index on the right (superset) side
// and probes it with each left set, intersecting posting lists. Empty
// left sets match every right tuple. Emission is left-major with right
// matches in ascending index order.
func InvertedIndexJoin(ls, rs []sets.Set) []Pair {
	idx := sets.BuildInvertedIndex(rs)
	var out []Pair
	for i, l := range ls {
		for _, j := range idx.Supersets(l) {
			out = append(out, Pair{L: i, R: j})
		}
	}
	mInvertedIndex.flush(int64(len(ls)), int64(len(out))) // one index probe per left set
	return out
}

// PartitionedSetJoin is a main-memory analogue of the partitioned set
// joins of Ramasamy et al. ([14] in the paper): right sets are hashed
// into partitions by every element they contain, left sets probe only
// the partition of their smallest element — any superset of l contains
// that element, so it is replicated into the probed partition. Left sets
// that are empty match everything. Each candidate is verified with the
// real subset test; probing a single partition per left set keeps the
// output duplicate-free even though right sets are replicated.
func PartitionedSetJoin(ls, rs []sets.Set, partitions int) []Pair {
	if partitions < 1 {
		partitions = 1
	}
	part := make([][]int, partitions)
	for j, r := range rs {
		seen := make(map[int]bool)
		for _, e := range r.Elems() {
			p := int(e) % partitions
			if !seen[p] {
				part[p] = append(part[p], j)
				seen[p] = true
			}
		}
	}
	var out []Pair
	var compared int64
	for i, l := range ls {
		if l.Empty() {
			for j := range rs {
				out = append(out, Pair{L: i, R: j})
			}
			continue
		}
		p := int(l.Elems()[0]) % partitions
		compared += int64(len(part[p]))
		for _, j := range part[p] {
			if l.SubsetOf(rs[j]) {
				out = append(out, Pair{L: i, R: j})
			}
		}
	}
	mPartitionedSets.flush(compared, int64(len(out)))
	return out
}
