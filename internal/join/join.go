// Package join connects the paper's abstract model (§2) to executable
// join processing. It builds join graphs — one left vertex per R-tuple,
// one right vertex per S-tuple, an edge per joining pair — and implements
// real join algorithms for the three predicate classes the paper studies
// (equality, set containment, spatial overlap). Every algorithm emits its
// result pairs in a defined order, and the pebbling instrumentation
// (Cost, Audit) measures that emission order in the pebble game, which is
// exactly how §2 relates algorithms to the model.
package join

import (
	"fmt"
	"sort"

	"joinpebble/internal/core"
	"joinpebble/internal/graph"
	"joinpebble/internal/obs"
	"joinpebble/internal/sets"
	"joinpebble/internal/spatial"
)

// Per-algorithm work accounting. "Compared" counts the predicate (or
// key/probe) evaluations the algorithm actually performs — the quantity
// the filter-style algorithms exist to shrink — and "emitted" the result
// pairs. Both are accumulated in locals and flushed once per call so the
// inner loops carry no atomic traffic.
type algMetrics struct {
	compared *obs.Counter
	emitted  *obs.Counter
}

// newAlgMetrics takes the two full metric names (always literal
// "join/<algorithm>/tuples_compared" / "join/<algorithm>/pairs_emitted"
// pairs) so every name in the metric surface is a greppable constant —
// the obsnames analyzer validates them at each call site.
func newAlgMetrics(compared, emitted string) algMetrics {
	return algMetrics{
		compared: obs.Default.Counter(compared),
		emitted:  obs.Default.Counter(emitted),
	}
}

func (m algMetrics) flush(compared, emitted int64) {
	m.compared.Add(compared)
	m.emitted.Add(emitted)
}

var (
	mNestedLoop = newAlgMetrics("join/nested_loop/tuples_compared", "join/nested_loop/pairs_emitted")

	// Audit accounting: the emission-order pebbling cost of every audited
	// run lands in one histogram, so a -metrics snapshot carries the π̂
	// distribution of everything an experiment executed. The histogram's
	// sum equals the total of the per-run costs the experiment tables
	// print — the consistency the E15 acceptance check pins.
	cAuditRuns    = obs.Default.Counter("join/audit/runs")
	cAuditPairs   = obs.Default.Counter("join/audit/pairs")
	cAuditJumps   = obs.Default.Counter("join/audit/jumps")
	cAuditPerfect = obs.Default.Counter("join/audit/perfect")
	hAuditCost    = obs.Default.Histogram("join/audit/cost", obs.Pow2Buckets(24))
)

// Pair is a join result: indices into the two input relations.
type Pair struct {
	L, R int
}

// Graph builds the join graph of two tuple slices under pred, evaluating
// the predicate on the full cross product — the reference semantics of
// §2. Quadratic by design; algorithms are checked against it.
func Graph[L, R any](ls []L, rs []R, pred func(L, R) bool) *graph.Bipartite {
	b := graph.NewBipartite(len(ls), len(rs))
	for i, l := range ls {
		for j, r := range rs {
			if pred(l, r) {
				b.AddEdge(i, j)
			}
		}
	}
	return b
}

// GraphFromPairs builds a join graph directly from result pairs.
func GraphFromPairs(nLeft, nRight int, pairs []Pair) *graph.Bipartite {
	b := graph.NewBipartite(nLeft, nRight)
	for _, p := range pairs {
		b.AddEdge(p.L, p.R)
	}
	return b
}

// NestedLoop is the universal baseline: evaluate pred over the cross
// product, emitting pairs in row-major order.
func NestedLoop[L, R any](ls []L, rs []R, pred func(L, R) bool) []Pair {
	var out []Pair
	for i, l := range ls {
		for j, r := range rs {
			if pred(l, r) {
				out = append(out, Pair{L: i, R: j})
			}
		}
	}
	mNestedLoop.flush(int64(len(ls))*int64(len(rs)), int64(len(out)))
	return out
}

// Audit holds the pebbling-model accounting of one algorithm run: how the
// emission order scores in the pebble game of §2.
type Audit struct {
	// Pairs is the number of results (m, the paper's input size).
	Pairs int
	// Cost is π̂ of the emission order: placements + moves + jumps.
	Cost int
	// EffectiveCost is Cost − β₀ of the join graph (Definition 2.2).
	EffectiveCost int
	// Jumps counts emission steps between pairs sharing no tuple.
	Jumps int
	// Perfect reports whether the emission order realizes π = m
	// (Definition 2.3).
	Perfect bool
}

// AuditPairs scores an emission order against its join graph. The pairs
// must be exactly the edge set of b (any order, no duplicates).
func AuditPairs(b *graph.Bipartite, pairs []Pair) (*Audit, error) {
	g := b.Graph()
	if len(pairs) != g.M() {
		return nil, fmt.Errorf("join: %d pairs, join graph has %d edges", len(pairs), g.M())
	}
	order := make([]int, len(pairs))
	seen := make([]bool, g.M())
	for k, p := range pairs {
		idx, ok := g.EdgeIndex(b.LeftVertex(p.L), b.RightVertex(p.R))
		if !ok {
			return nil, fmt.Errorf("join: pair %v is not in the join graph", p)
		}
		if seen[idx] {
			return nil, fmt.Errorf("join: pair %v emitted twice", p)
		}
		seen[idx] = true
		order[k] = idx
	}
	cost := core.EdgeOrderCost(g, order)
	jumps := 0
	for k := 1; k < len(order); k++ {
		if !g.EdgeAt(order[k-1]).SharesEndpoint(g.EdgeAt(order[k])) {
			jumps++
		}
	}
	eff := cost - core.Betti0(g)
	cAuditRuns.Inc()
	cAuditPairs.Add(int64(len(pairs)))
	cAuditJumps.Add(int64(jumps))
	if eff == g.M() {
		cAuditPerfect.Inc()
	}
	hAuditCost.Observe(int64(cost))
	return &Audit{
		Pairs:         len(pairs),
		Cost:          cost,
		EffectiveCost: eff,
		Jumps:         jumps,
		Perfect:       eff == g.M(),
	}, nil
}

// equalPairs reports whether two pair sets are equal regardless of order.
func equalPairs(a, b []Pair) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]Pair(nil), a...)
	bs := append([]Pair(nil), b...)
	less := func(p, q Pair) bool { return p.L < q.L || (p.L == q.L && p.R < q.R) }
	sort.Slice(as, func(i, j int) bool { return less(as[i], as[j]) })
	sort.Slice(bs, func(i, j int) bool { return less(bs[i], bs[j]) })
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// Predicates for the three join classes of §3.

// EqInt is the equijoin predicate over integers.
func EqInt(l, r int64) bool { return l == r }

// EqString is the equijoin predicate over strings.
func EqString(l, r string) bool { return l == r }

// Contains is the set-containment predicate r.A ⊆ s.B of §3.2.
func Contains(l, r sets.Set) bool { return l.SubsetOf(r) }

// Overlaps is the spatial-overlap predicate of §3.3 on rectangles.
func Overlaps(l, r spatial.Rect) bool { return l.Overlaps(r) }

// OverlapsPoly is the spatial-overlap predicate on convex polygons.
func OverlapsPoly(l, r spatial.Polygon) bool { return l.Overlaps(r) }
