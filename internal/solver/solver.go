// Package solver provides pebbling-scheme solvers for the PEBBLE problem
// of Definition 4.1: given a graph, produce a (low-cost or optimal)
// pebbling scheme. Solvers reduce per connected component — justified by
// the additivity lemma (Lemma 2.2): π̂(G ⊔ H) = π̂(G) + π̂(H) — and express
// each component's scheme as an edge deletion order, i.e. a TSP(1,2) tour
// of the component's line graph (Propositions 2.1 and 2.2).
package solver

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"joinpebble/internal/core"
	"joinpebble/internal/graph"
	"joinpebble/internal/obs"
)

// ErrBudgetExceeded marks failures where an instance is structurally fine
// but too large for the requested solver's search budget (exact edge
// limits, branch-and-bound node caps, decision budgets). Callers that
// want to degrade to an approximation match it with errors.Is.
var ErrBudgetExceeded = errors.New("solver: search budget exceeded")

// ErrStructure marks failures where a specialized solver rejected the
// graph because it lacks the structure the solver requires (equijoin
// components that are not complete bipartite, matchings with degree > 1).
var ErrStructure = errors.New("solver: graph lacks required structure")

// Observability: every Solve is a span tree (solver name -> phases ->
// per-component solves) on the active tracer, and the per-phase timers
// and counters below aggregate across solves for the -metrics snapshot.
// Hot loops are untouched — timing wraps whole phases, counters flush
// once per solve — so instrumentation stays invisible next to the solve
// itself (the bench regression harness keeps that claim honest).
var (
	cSolves           = obs.Default.Counter("solver/solves")
	cComponentsSolved = obs.Default.Counter("solver/components_solved")
	cWorkersUsed      = obs.Default.Counter("solver/workers_used")
	tSplit            = obs.Default.Timer("solver/phase/component_split")
	tComponentSolve   = obs.Default.Timer("solver/phase/component_solve")
	tSchemeBuild      = obs.Default.Timer("solver/phase/scheme_build")
)

// Parallelism bounds the worker pool that solvePerComponent fans
// connected components out over. Zero (the default) means
// runtime.GOMAXPROCS(0); one forces the sequential path. Components are
// solved independently — justified by the additivity lemma (Lemma 2.2) —
// and merged back in component order, so the produced scheme is
// byte-identical to the sequential one at any setting (verified by
// TestParallelSolveMatchesSequential).
var Parallelism = 0

func workerCount(jobs int) int {
	w := Parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > jobs {
		w = jobs
	}
	return w
}

// Solver produces a pebbling scheme for an arbitrary graph. Solve must
// return a scheme that Verify accepts; cost guarantees differ per solver.
type Solver interface {
	// Name identifies the solver in experiment tables.
	Name() string
	// Solve returns a complete pebbling scheme for g.
	Solve(g *graph.Graph) (core.Scheme, error)
}

// ContextSolver is a Solver whose solve honors context cancellation.
// Every per-component solver in this package implements it; cancellation
// is observed at component granularity in the parallel pool, so a
// canceled solve returns promptly without tearing down mid-component
// state.
type ContextSolver interface {
	Solver
	// SolveContext is Solve bounded by ctx. It returns ctx.Err() (wrapped
	// or bare — match with errors.Is(err, context.Canceled) /
	// context.DeadlineExceeded) when canceled before completion.
	SolveContext(ctx context.Context, g *graph.Graph) (core.Scheme, error)
}

// SolveContext runs s under ctx when s supports cancellation, falling
// back to a plain Solve (with one up-front cancellation check) otherwise.
func SolveContext(ctx context.Context, s Solver, g *graph.Graph) (core.Scheme, error) {
	if cs, ok := s.(ContextSolver); ok {
		return cs.SolveContext(ctx, g)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.Solve(g)
}

// connectedOrderFunc computes an edge-visit order for one connected
// component, given the component's subgraph. The order is in
// component-local edge indices. sp is the component's trace span (nil
// when tracing is off); solvers hang their phase spans off it.
type connectedOrderFunc func(cg *graph.Graph, sp *obs.Span) ([]int, error)

// solvePerComponent decomposes g into connected components, applies fn to
// each edge-bearing component, stitches the local orders back into a
// global edge order, and converts it to a scheme. Component boundaries
// cost one extra move each, matching the β₀ term of Definition 2.2.
//
// Components are embarrassingly parallel (Lemma 2.2): fn runs on a
// bounded worker pool (see Parallelism) and the local orders are merged
// back in component order, so the result is independent of scheduling.
//
// Cancellation is checked between components: once ctx is done no new
// component solve starts and the call returns ctx.Err(), so even an
// exponential multi-component solve unwinds at the next component
// boundary.
func solvePerComponent(ctx context.Context, g *graph.Graph, name string, fn connectedOrderFunc) (core.Scheme, error) {
	if g.M() == 0 {
		return core.Scheme{}, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cSolves.Inc()
	root := obs.StartSpan(name)
	defer root.End()
	root.SetInt("edges", int64(g.M()))

	splitStart := time.Now()
	splitSpan := root.Start("component_split")
	g.Optimize() // one compact-index build serves every lookup below
	comps := g.Components()

	// Fast path: a single component spanning every vertex is already its
	// own dense-id subgraph; skip the copy.
	if len(comps) == 1 {
		splitSpan.End()
		tSplit.ObserveSince(splitStart)
		cComponentsSolved.Inc()
		cWorkersUsed.Inc()
		solveStart := time.Now()
		compSpan := root.Start("component_solve")
		compSpan.SetInt("edges", int64(g.M()))
		order, err := fn(g, compSpan)
		compSpan.End()
		tComponentSolve.Observe(time.Since(solveStart))
		if err != nil {
			return nil, err
		}
		if len(order) != g.M() {
			return nil, fmt.Errorf("solver: component order covers %d of %d edges", len(order), g.M())
		}
		return schemeFromOrderTimed(root, g, order)
	}

	// Bucket vertices and edges by component in one pass each; anything
	// per-component beyond that would make graphs with many components
	// (every equijoin graph) quadratic.
	compID := make([]int, g.N())
	for ci, comp := range comps {
		for _, v := range comp {
			compID[v] = ci
		}
	}
	edgesByComp := make([][]int, len(comps))
	for gi, e := range g.Edges() {
		ci := compID[e.U]
		edgesByComp[ci] = append(edgesByComp[ci], gi)
	}

	// Build every component subgraph up front (deterministic local ids:
	// the k-th local edge is edgesByComp[ci][k]), then fan the solves out.
	type job struct {
		ci int
		cg *graph.Graph
	}
	var jobs []job
	local := make([]int, g.N())
	for ci, comp := range comps {
		if len(comp) < 2 {
			continue // isolated vertex: nothing to pebble (§2)
		}
		for li, v := range comp {
			local[v] = li
		}
		cg := graph.New(len(comp))
		for _, gi := range edgesByComp[ci] {
			e := g.EdgeAt(gi)
			cg.AddEdge(local[e.U], local[e.V])
		}
		jobs = append(jobs, job{ci: ci, cg: cg})
	}
	splitSpan.End()
	tSplit.ObserveSince(splitStart)
	cComponentsSolved.Add(int64(len(jobs)))

	orders := make([][]int, len(jobs))
	errs := make([]error, len(jobs))
	solveJob := func(ji int) {
		if err := ctx.Err(); err != nil {
			errs[ji] = err
			return
		}
		start := time.Now()
		compSpan := root.Start("component_solve")
		compSpan.SetInt("component", int64(jobs[ji].ci))
		compSpan.SetInt("edges", int64(jobs[ji].cg.M()))
		orders[ji], errs[ji] = fn(jobs[ji].cg, compSpan)
		compSpan.End()
		tComponentSolve.Observe(time.Since(start))
	}
	w := workerCount(len(jobs))
	cWorkersUsed.Add(int64(w))
	if w <= 1 {
		for ji := range jobs {
			if ctx.Err() != nil {
				break
			}
			solveJob(ji)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for k := 0; k < w; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ji := range idx {
					solveJob(ji)
				}
			}()
		}
	feed:
		for ji := range jobs {
			select {
			case idx <- ji:
			case <-ctx.Done():
				break feed
			}
		}
		close(idx)
		wg.Wait()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	var globalOrder []int
	for ji, jb := range jobs {
		if errs[ji] != nil {
			return nil, errs[ji]
		}
		if len(orders[ji]) != jb.cg.M() {
			return nil, fmt.Errorf("solver: component order covers %d of %d edges", len(orders[ji]), jb.cg.M())
		}
		for _, li := range orders[ji] {
			globalOrder = append(globalOrder, edgesByComp[jb.ci][li])
		}
	}
	return schemeFromOrderTimed(root, g, globalOrder)
}

// schemeFromOrderTimed is core.SchemeFromEdgeOrder wrapped in the
// scheme_build phase accounting.
func schemeFromOrderTimed(root *obs.Span, g *graph.Graph, order []int) (core.Scheme, error) {
	start := time.Now()
	sp := root.Start("scheme_build")
	scheme, err := core.SchemeFromEdgeOrder(g, order)
	sp.End()
	tSchemeBuild.Observe(time.Since(start))
	return scheme, err
}

// Naive is the baseline solver realizing Lemma 2.1's 2m upper bound: it
// visits edges in insertion order, paying for whatever jumps that incurs.
type Naive struct{}

// Name implements Solver.
func (Naive) Name() string { return "naive" }

// Solve implements Solver.
func (Naive) Solve(g *graph.Graph) (core.Scheme, error) {
	return core.NaiveScheme(g), nil
}

// SolveAndVerify runs s on g and checks the scheme against the simulator,
// returning the scheme and its verified cost π̂.
func SolveAndVerify(s Solver, g *graph.Graph) (core.Scheme, int, error) {
	return SolveAndVerifyContext(context.Background(), s, g)
}

// SolveAndVerifyContext is SolveAndVerify bounded by ctx (see
// ContextSolver for the cancellation granularity).
func SolveAndVerifyContext(ctx context.Context, s Solver, g *graph.Graph) (core.Scheme, int, error) {
	scheme, err := SolveContext(ctx, s, g)
	if err != nil {
		return nil, 0, fmt.Errorf("solver %s: %w", s.Name(), err)
	}
	cost, err := core.Verify(g, scheme)
	if err != nil {
		return nil, 0, fmt.Errorf("solver %s produced invalid scheme: %w", s.Name(), err)
	}
	return scheme, cost, nil
}
