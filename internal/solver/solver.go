// Package solver provides pebbling-scheme solvers for the PEBBLE problem
// of Definition 4.1: given a graph, produce a (low-cost or optimal)
// pebbling scheme. Solvers reduce per connected component — justified by
// the additivity lemma (Lemma 2.2): π̂(G ⊔ H) = π̂(G) + π̂(H) — and express
// each component's scheme as an edge deletion order, i.e. a TSP(1,2) tour
// of the component's line graph (Propositions 2.1 and 2.2).
package solver

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"joinpebble/internal/core"
	"joinpebble/internal/faultinject"
	"joinpebble/internal/graph"
	"joinpebble/internal/obs"
)

// ErrBudgetExceeded marks failures where an instance is structurally fine
// but too large for the requested solver's search budget (exact edge
// limits, branch-and-bound node caps, decision budgets). Callers that
// want to degrade to an approximation match it with errors.Is.
var ErrBudgetExceeded = errors.New("solver: search budget exceeded")

// ErrStructure marks failures where a specialized solver rejected the
// graph because it lacks the structure the solver requires (equijoin
// components that are not complete bipartite, matchings with degree > 1).
var ErrStructure = errors.New("solver: graph lacks required structure")

// ErrPanic marks a panic recovered inside a component solve and converted
// to an error, so one poisoned component degrades the run instead of
// crashing the process. Match with errors.Is; the concrete *PanicError
// carries the panic value and stack.
var ErrPanic = errors.New("solver: panic in component solve")

// PanicError is the error a recovered component-solve panic is converted
// to. It wraps ErrPanic for errors.Is matching and preserves the panic
// value plus the goroutine stack captured at recovery, so the failure is
// fully diagnosable after the run has degraded past it.
type PanicError struct {
	// Solver names the solver whose component function panicked.
	Solver string
	// Value is the value passed to panic().
	Value any
	// Stack is the debug.Stack() capture from the recovery point.
	Stack []byte
}

// Error implements error. The stack is included so a logged degradation
// provenance pinpoints the crash site without re-running.
func (e *PanicError) Error() string {
	return fmt.Sprintf("solver: panic in %s component solve: %v\n%s", e.Solver, e.Value, e.Stack)
}

// Unwrap makes errors.Is(err, ErrPanic) match.
func (e *PanicError) Unwrap() error { return ErrPanic }

// Fault-injection sites fired in this package's hot paths (registry in
// DESIGN.md). Disarmed cost is one atomic load per component solve —
// nothing in a per-edge loop.
const (
	// SiteComponent fires at the start of every component solve, in both
	// the sequential and pooled paths: inject an error to fail one
	// component, a panic to exercise the recovery path, or a delay to
	// hold a worker mid-flight.
	SiteComponent = "solver/component"
	// SiteExactBudget fires before the exact solver's per-component edge
	// budget check: inject a wrapped ErrBudgetExceeded to force the
	// budget rung to fail on an instance of any size.
	SiteExactBudget = "solver/exact/budget"
)

// Observability: every Solve is a span tree (solver name -> phases ->
// per-component solves) on the active tracer, and the per-phase timers
// and counters below aggregate across solves for the -metrics snapshot.
// Hot loops are untouched — timing wraps whole phases, counters flush
// once per solve — so instrumentation stays invisible next to the solve
// itself (the bench regression harness keeps that claim honest).
var (
	cSolves           = obs.ScopedCounter("solver/solves")
	cComponentsSolved = obs.ScopedCounter("solver/components_solved")
	cWorkersUsed      = obs.ScopedCounter("solver/workers_used")
	tSplit            = obs.ScopedTimer("solver/phase/component_split")
	tComponentSolve   = obs.ScopedTimer("solver/phase/component_solve")
	tSchemeBuild      = obs.ScopedTimer("solver/phase/scheme_build")
)

// Parallelism bounds the worker pool that solvePerComponent fans
// connected components out over. Zero (the default) means
// runtime.GOMAXPROCS(0); one forces the sequential path. Components are
// solved independently — justified by the additivity lemma (Lemma 2.2) —
// and merged back in component order, so the produced scheme is
// byte-identical to the sequential one at any setting (verified by
// TestParallelSolveMatchesSequential).
var Parallelism = 0

// The claw-scan kernel honors the same knob: internal/graph cannot
// import the solver layer, so the worker count crosses the boundary
// through this hook. Zero and one mean what they mean here (GOMAXPROCS
// resp. sequential); the kernel's first-claw result is deterministic at
// any setting.
func init() {
	graph.ClawScanWorkers = func() int { return Parallelism }
}

func workerCount(jobs int) int {
	w := Parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > jobs {
		w = jobs
	}
	return w
}

// Solver produces a pebbling scheme for an arbitrary graph. Solve must
// return a scheme that Verify accepts; cost guarantees differ per solver.
type Solver interface {
	// Name identifies the solver in experiment tables.
	Name() string
	// Solve returns a complete pebbling scheme for g.
	Solve(g *graph.Graph) (core.Scheme, error)
}

// ContextSolver is a Solver whose solve honors context cancellation.
// Every per-component solver in this package implements it; cancellation
// is observed at component granularity in the parallel pool, so a
// canceled solve returns promptly without tearing down mid-component
// state.
type ContextSolver interface {
	Solver
	// SolveContext is Solve bounded by ctx. It returns ctx.Err() (wrapped
	// or bare — match with errors.Is(err, context.Canceled) /
	// context.DeadlineExceeded) when canceled before completion.
	SolveContext(ctx context.Context, g *graph.Graph) (core.Scheme, error)
}

// SolveContext runs s under ctx when s supports cancellation, falling
// back to a plain Solve (with one up-front cancellation check) otherwise.
func SolveContext(ctx context.Context, s Solver, g *graph.Graph) (core.Scheme, error) {
	if cs, ok := s.(ContextSolver); ok {
		return cs.SolveContext(ctx, g)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.Solve(g)
}

// connectedOrderFunc computes an edge-visit order for one connected
// component, given the component's subgraph. The order is in
// component-local edge indices. ctx bounds the component solve — solvers
// with interruptible inner loops (exact search) thread it down so a
// deadline unwinds mid-component, not just at component boundaries. sp
// is the component's trace span (nil when tracing is off); solvers hang
// their phase spans off it.
type connectedOrderFunc func(ctx context.Context, cg *graph.Graph, sp *obs.Span) ([]int, error)

// runComponentOrder invokes fn on one component with the failure
// containment every call site needs: the SiteComponent fault hook fires
// first, and a panic anywhere under fn is recovered into a *PanicError
// carrying the stack, so one poisoned component surfaces as an ordinary
// error the engine can degrade on instead of crashing the process.
func runComponentOrder(ctx context.Context, name string, cg *graph.Graph, sp *obs.Span, fn connectedOrderFunc) (order []int, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Solver: name, Value: r, Stack: debug.Stack()}
		}
	}()
	if err := faultinject.Fire(SiteComponent); err != nil {
		return nil, err
	}
	return fn(ctx, cg, sp)
}

// solvePerComponent decomposes g into connected components, applies fn to
// each edge-bearing component, stitches the local orders back into a
// global edge order, and converts it to a scheme. Component boundaries
// cost one extra move each, matching the β₀ term of Definition 2.2.
//
// Components are embarrassingly parallel (Lemma 2.2): fn runs on a
// bounded worker pool (see Parallelism) and the local orders are merged
// back in component order, so the result is independent of scheduling.
//
// Cancellation is observed at two granularities: between components
// (once ctx is done no new component solve starts) and — for solvers
// whose component functions thread ctx into their inner loops, like the
// exact search — inside a component, so even one huge component unwinds
// promptly. A component failure (error or recovered panic) cancels the
// pool's context so in-flight siblings drain at their next checkpoint
// and queued ones never start; the first failure in component order
// among the components that actually ran is the one reported.
func solvePerComponent(ctx context.Context, g *graph.Graph, name string, fn connectedOrderFunc) (core.Scheme, error) {
	if g.M() == 0 {
		return core.Scheme{}, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cSolves.Inc(ctx)
	root := obs.StartSpanCtx(ctx, name)
	defer root.End()
	root.SetInt("edges", int64(g.M()))

	splitStart := obs.Now()
	splitSpan := root.Start("component_split")
	g.Optimize() // one compact-index build serves every lookup below
	comps := g.Components()

	// Fast path: a single component spanning every vertex is already its
	// own dense-id subgraph; skip the copy.
	if len(comps) == 1 {
		splitSpan.End()
		tSplit.ObserveSince(ctx, splitStart)
		cComponentsSolved.Inc(ctx)
		cWorkersUsed.Inc(ctx)
		solveStart := obs.Now()
		compSpan := root.Start("component_solve")
		compSpan.SetInt("edges", int64(g.M()))
		order, err := runComponentOrder(ctx, name, g, compSpan, fn)
		compSpan.End()
		tComponentSolve.Observe(ctx, obs.Since(solveStart))
		if err != nil {
			return nil, err
		}
		if len(order) != g.M() {
			return nil, fmt.Errorf("solver: component order covers %d of %d edges", len(order), g.M())
		}
		return schemeFromOrderTimed(ctx, root, g, order)
	}

	// Bucket vertices and edges by component in one pass each; anything
	// per-component beyond that would make graphs with many components
	// (every equijoin graph) quadratic.
	compID := make([]int, g.N())
	for ci, comp := range comps {
		for _, v := range comp {
			compID[v] = ci
		}
	}
	edgesByComp := make([][]int, len(comps))
	for gi, e := range g.Edges() {
		ci := compID[e.U]
		edgesByComp[ci] = append(edgesByComp[ci], gi)
	}

	// Build every component subgraph up front (deterministic local ids:
	// the k-th local edge is edgesByComp[ci][k]), then fan the solves out.
	type job struct {
		ci int
		cg *graph.Graph
	}
	var jobs []job
	local := make([]int, g.N())
	for ci, comp := range comps {
		if len(comp) < 2 {
			continue // isolated vertex: nothing to pebble (§2)
		}
		for li, v := range comp {
			local[v] = li
		}
		cg := graph.New(len(comp))
		for _, gi := range edgesByComp[ci] {
			e := g.EdgeAt(gi)
			cg.AddEdge(local[e.U], local[e.V])
		}
		jobs = append(jobs, job{ci: ci, cg: cg})
	}
	splitSpan.End()
	tSplit.ObserveSince(ctx, splitStart)
	cComponentsSolved.Add(ctx, int64(len(jobs)))

	orders := make([][]int, len(jobs))
	errs := make([]error, len(jobs))
	// poolCtx lets the first failing component drain the whole pool:
	// siblings with interruptible inner loops unwind at their next
	// checkpoint, queued jobs never start.
	poolCtx, cancelPool := context.WithCancel(ctx)
	defer cancelPool()
	// The pool's component timer resolves once, outside the workers: the
	// scope (when present) is the same for every job, and resolving here
	// keeps the per-job cost at one atomic add.
	compTimer := tComponentSolve.In(ctx)
	solveJob := func(ji int) {
		if err := poolCtx.Err(); err != nil {
			errs[ji] = err
			return
		}
		start := obs.Now()
		compSpan := root.Start("component_solve")
		compSpan.SetInt("component", int64(jobs[ji].ci))
		compSpan.SetInt("edges", int64(jobs[ji].cg.M()))
		orders[ji], errs[ji] = runComponentOrder(poolCtx, name, jobs[ji].cg, compSpan, fn)
		compSpan.End()
		compTimer.Observe(obs.Since(start))
		if errs[ji] != nil {
			cancelPool()
		}
	}
	w := workerCount(len(jobs))
	cWorkersUsed.Add(ctx, int64(w))
	if w <= 1 {
		for ji := range jobs {
			if poolCtx.Err() != nil {
				break
			}
			solveJob(ji)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for k := 0; k < w; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ji := range idx {
					solveJob(ji)
				}
			}()
		}
	feed:
		for ji := range jobs {
			select {
			case idx <- ji:
			case <-poolCtx.Done():
				break feed
			}
		}
		close(idx)
		wg.Wait()
	}
	// Report the failure that drained the pool, not the context.Canceled
	// errors the drain induced in its siblings — unless the caller's own
	// cancellation caused the drain, which outranks everything. A
	// cancellation that arrived only after every component completed is
	// deliberately ignored: anytime component solves (ExactBnB.Anytime)
	// may hand back a finished incumbent right as a soft deadline
	// expires, and a complete verified solve beats a discarded one.
	if err := firstRealError(errs); err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		for ji, jb := range jobs {
			if len(orders[ji]) != jb.cg.M() {
				return nil, err // canceled before this component ran
			}
		}
	}

	var globalOrder []int
	for ji, jb := range jobs {
		if len(orders[ji]) != jb.cg.M() {
			return nil, fmt.Errorf("solver: component order covers %d of %d edges", len(orders[ji]), jb.cg.M())
		}
		for _, li := range orders[ji] {
			globalOrder = append(globalOrder, edgesByComp[jb.ci][li])
		}
	}
	return schemeFromOrderTimed(ctx, root, g, globalOrder)
}

// firstRealError returns the first error in component order that is not
// a pool-drain context.Canceled, falling back to the first error of any
// kind (all-canceled can only happen when the caller canceled, which the
// caller-context check above already owns).
func firstRealError(errs []error) error {
	var fallback error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, context.Canceled) {
			return err
		}
		if fallback == nil {
			fallback = err
		}
	}
	return fallback
}

// schemeFromOrderTimed is core.SchemeFromEdgeOrder wrapped in the
// scheme_build phase accounting.
func schemeFromOrderTimed(ctx context.Context, root *obs.Span, g *graph.Graph, order []int) (core.Scheme, error) {
	start := obs.Now()
	sp := root.Start("scheme_build")
	scheme, err := core.SchemeFromEdgeOrder(g, order)
	sp.End()
	tSchemeBuild.Observe(ctx, obs.Since(start))
	return scheme, err
}

// Naive is the baseline solver realizing Lemma 2.1's 2m upper bound: it
// visits edges in insertion order, paying for whatever jumps that incurs.
type Naive struct{}

// Name implements Solver.
func (Naive) Name() string { return "naive" }

// Solve implements Solver.
func (Naive) Solve(g *graph.Graph) (core.Scheme, error) {
	return core.NaiveScheme(g), nil
}

// SolveAndVerify runs s on g and checks the scheme against the simulator,
// returning the scheme and its verified cost π̂.
func SolveAndVerify(s Solver, g *graph.Graph) (core.Scheme, int, error) {
	return SolveAndVerifyContext(context.Background(), s, g)
}

// SolveAndVerifyContext is SolveAndVerify bounded by ctx (see
// ContextSolver for the cancellation granularity).
func SolveAndVerifyContext(ctx context.Context, s Solver, g *graph.Graph) (core.Scheme, int, error) {
	scheme, err := SolveContext(ctx, s, g)
	if err != nil {
		return nil, 0, fmt.Errorf("solver %s: %w", s.Name(), err)
	}
	cost, err := core.VerifyContext(ctx, g, scheme)
	if err != nil {
		return nil, 0, fmt.Errorf("solver %s produced invalid scheme: %w", s.Name(), err)
	}
	return scheme, cost, nil
}
