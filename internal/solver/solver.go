// Package solver provides pebbling-scheme solvers for the PEBBLE problem
// of Definition 4.1: given a graph, produce a (low-cost or optimal)
// pebbling scheme. Solvers reduce per connected component — justified by
// the additivity lemma (Lemma 2.2): π̂(G ⊔ H) = π̂(G) + π̂(H) — and express
// each component's scheme as an edge deletion order, i.e. a TSP(1,2) tour
// of the component's line graph (Propositions 2.1 and 2.2).
package solver

import (
	"fmt"
	"runtime"
	"sync"

	"joinpebble/internal/core"
	"joinpebble/internal/graph"
)

// Parallelism bounds the worker pool that solvePerComponent fans
// connected components out over. Zero (the default) means
// runtime.GOMAXPROCS(0); one forces the sequential path. Components are
// solved independently — justified by the additivity lemma (Lemma 2.2) —
// and merged back in component order, so the produced scheme is
// byte-identical to the sequential one at any setting (verified by
// TestParallelSolveMatchesSequential).
var Parallelism = 0

func workerCount(jobs int) int {
	w := Parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > jobs {
		w = jobs
	}
	return w
}

// Solver produces a pebbling scheme for an arbitrary graph. Solve must
// return a scheme that Verify accepts; cost guarantees differ per solver.
type Solver interface {
	// Name identifies the solver in experiment tables.
	Name() string
	// Solve returns a complete pebbling scheme for g.
	Solve(g *graph.Graph) (core.Scheme, error)
}

// connectedOrderFunc computes an edge-visit order for one connected
// component, given the component's subgraph. The order is in
// component-local edge indices.
type connectedOrderFunc func(cg *graph.Graph) ([]int, error)

// solvePerComponent decomposes g into connected components, applies fn to
// each edge-bearing component, stitches the local orders back into a
// global edge order, and converts it to a scheme. Component boundaries
// cost one extra move each, matching the β₀ term of Definition 2.2.
//
// Components are embarrassingly parallel (Lemma 2.2): fn runs on a
// bounded worker pool (see Parallelism) and the local orders are merged
// back in component order, so the result is independent of scheduling.
func solvePerComponent(g *graph.Graph, fn connectedOrderFunc) (core.Scheme, error) {
	if g.M() == 0 {
		return core.Scheme{}, nil
	}
	g.Optimize() // one compact-index build serves every lookup below
	comps := g.Components()

	// Fast path: a single component spanning every vertex is already its
	// own dense-id subgraph; skip the copy.
	if len(comps) == 1 {
		order, err := fn(g)
		if err != nil {
			return nil, err
		}
		if len(order) != g.M() {
			return nil, fmt.Errorf("solver: component order covers %d of %d edges", len(order), g.M())
		}
		return core.SchemeFromEdgeOrder(g, order)
	}

	// Bucket vertices and edges by component in one pass each; anything
	// per-component beyond that would make graphs with many components
	// (every equijoin graph) quadratic.
	compID := make([]int, g.N())
	for ci, comp := range comps {
		for _, v := range comp {
			compID[v] = ci
		}
	}
	edgesByComp := make([][]int, len(comps))
	for gi, e := range g.Edges() {
		ci := compID[e.U]
		edgesByComp[ci] = append(edgesByComp[ci], gi)
	}

	// Build every component subgraph up front (deterministic local ids:
	// the k-th local edge is edgesByComp[ci][k]), then fan the solves out.
	type job struct {
		ci int
		cg *graph.Graph
	}
	var jobs []job
	local := make([]int, g.N())
	for ci, comp := range comps {
		if len(comp) < 2 {
			continue // isolated vertex: nothing to pebble (§2)
		}
		for li, v := range comp {
			local[v] = li
		}
		cg := graph.New(len(comp))
		for _, gi := range edgesByComp[ci] {
			e := g.EdgeAt(gi)
			cg.AddEdge(local[e.U], local[e.V])
		}
		jobs = append(jobs, job{ci: ci, cg: cg})
	}

	orders := make([][]int, len(jobs))
	errs := make([]error, len(jobs))
	if w := workerCount(len(jobs)); w <= 1 {
		for ji := range jobs {
			orders[ji], errs[ji] = fn(jobs[ji].cg)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for k := 0; k < w; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ji := range idx {
					orders[ji], errs[ji] = fn(jobs[ji].cg)
				}
			}()
		}
		for ji := range jobs {
			idx <- ji
		}
		close(idx)
		wg.Wait()
	}

	var globalOrder []int
	for ji, jb := range jobs {
		if errs[ji] != nil {
			return nil, errs[ji]
		}
		if len(orders[ji]) != jb.cg.M() {
			return nil, fmt.Errorf("solver: component order covers %d of %d edges", len(orders[ji]), jb.cg.M())
		}
		for _, li := range orders[ji] {
			globalOrder = append(globalOrder, edgesByComp[jb.ci][li])
		}
	}
	return core.SchemeFromEdgeOrder(g, globalOrder)
}

// Naive is the baseline solver realizing Lemma 2.1's 2m upper bound: it
// visits edges in insertion order, paying for whatever jumps that incurs.
type Naive struct{}

// Name implements Solver.
func (Naive) Name() string { return "naive" }

// Solve implements Solver.
func (Naive) Solve(g *graph.Graph) (core.Scheme, error) {
	return core.NaiveScheme(g), nil
}

// SolveAndVerify runs s on g and checks the scheme against the simulator,
// returning the scheme and its verified cost π̂.
func SolveAndVerify(s Solver, g *graph.Graph) (core.Scheme, int, error) {
	scheme, err := s.Solve(g)
	if err != nil {
		return nil, 0, fmt.Errorf("solver %s: %w", s.Name(), err)
	}
	cost, err := core.Verify(g, scheme)
	if err != nil {
		return nil, 0, fmt.Errorf("solver %s produced invalid scheme: %w", s.Name(), err)
	}
	return scheme, cost, nil
}
