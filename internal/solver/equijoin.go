package solver

import (
	"context"
	"fmt"

	"joinpebble/internal/core"
	"joinpebble/internal/graph"
	"joinpebble/internal/obs"
)

// Equijoin is the linear-time perfect pebbler of Theorems 3.2 and 4.1.
// It requires every connected component of the input to be a complete
// bipartite graph — the defining structure of equijoin join graphs
// (§3.1: all R-tuples with value v join all S-tuples with value v) — and
// produces a perfect scheme (π(G) = m) by pebbling each component in the
// boustrophedon order of Lemma 3.2:
//
//	(u1,v1) (u1,v2) ... (u1,vl) (u2,vl) (u2,v(l-1)) ... (u2,v1) (u3,v1) ...
//
// This is the pebbling-model shadow of the merge phase of sort-merge
// join, as §4 remarks. Solve returns an error if a component is not
// complete bipartite.
type Equijoin struct{}

// Name implements Solver.
func (Equijoin) Name() string { return "equijoin" }

// Solve implements Solver.
func (Equijoin) Solve(g *graph.Graph) (core.Scheme, error) {
	return Equijoin{}.SolveContext(context.Background(), g)
}

// SolveContext implements ContextSolver.
func (Equijoin) SolveContext(ctx context.Context, g *graph.Graph) (core.Scheme, error) {
	return solvePerComponent(ctx, g, "equijoin", equijoinComponentOrder)
}

func equijoinComponentOrder(_ context.Context, cg *graph.Graph, sp *obs.Span) ([]int, error) {
	zz := sp.Start("zigzag_order")
	defer zz.End()
	left, right, err := completeBipartiteSides(cg)
	if err != nil {
		return nil, err
	}
	order := make([]int, cg.M())
	zigzagEmit(cg, left, right, order)
	return order, nil
}

// zigzagEmit writes the boustrophedon edge order of Lemma 3.2 into out,
// which the caller preallocates to cg.M() = |left|·|right| — the kernel
// itself only indexes, so the emission loop stays allocation-free no
// matter how large the component is.
//
//joinpebble:hotpath
func zigzagEmit(cg *graph.Graph, left, right, out []int) {
	k := 0
	for i, u := range left {
		if i%2 == 0 {
			for j := 0; j < len(right); j++ {
				idx, _ := cg.EdgeIndex(u, right[j])
				out[k] = idx
				k++
			}
		} else {
			for j := len(right) - 1; j >= 0; j-- {
				idx, _ := cg.EdgeIndex(u, right[j])
				out[k] = idx
				k++
			}
		}
	}
}

// completeBipartiteSides verifies cg is a complete bipartite graph and
// returns its two sides. Linear in the size of cg: it 2-colors the graph
// and then checks m == |L|·|R| — which for a simple bipartite graph
// forces completeness.
func completeBipartiteSides(cg *graph.Graph) (left, right []int, err error) {
	side, ok := graph.IsBipartition(cg)
	if !ok {
		return nil, nil, fmt.Errorf("%w: component is not bipartite", ErrStructure)
	}
	for v := 0; v < cg.N(); v++ {
		if side[v] {
			left = append(left, v)
		} else {
			right = append(right, v)
		}
	}
	if cg.M() != len(left)*len(right) {
		return nil, nil, fmt.Errorf("%w: component is not complete bipartite (m=%d, sides %dx%d)",
			ErrStructure, cg.M(), len(left), len(right))
	}
	return left, right, nil
}

// IsEquijoinGraph reports whether every edge-bearing component of g is a
// complete bipartite graph, i.e. whether g could be the join graph of an
// equijoin (§3.1). Linear: 2-color once, then per component compare the
// edge count against the product of the side sizes.
func IsEquijoinGraph(g *graph.Graph) bool {
	side, ok := graph.IsBipartition(g)
	if !ok {
		return false
	}
	comps := g.Components()
	compID := make([]int, g.N())
	left := make([]int, len(comps))
	right := make([]int, len(comps))
	edges := make([]int, len(comps))
	for ci, comp := range comps {
		for _, v := range comp {
			compID[v] = ci
			if side[v] {
				left[ci]++
			} else {
				right[ci]++
			}
		}
	}
	for _, e := range g.Edges() {
		edges[compID[e.U]]++
	}
	for ci, comp := range comps {
		if len(comp) < 2 {
			continue
		}
		if edges[ci] != left[ci]*right[ci] {
			return false
		}
	}
	return true
}

// MatchingSolver pebbles a perfect matching at the Lemma 2.4 cost
// π̂ = 2m: one configuration per edge, jumping between all of them. It
// rejects graphs with any vertex of degree > 1.
type MatchingSolver struct{}

// Name implements Solver.
func (MatchingSolver) Name() string { return "matching" }

// Solve implements Solver.
func (MatchingSolver) Solve(g *graph.Graph) (core.Scheme, error) {
	if g.MaxDegree() > 1 {
		return nil, fmt.Errorf("%w: graph is not a matching (max degree %d)", ErrStructure, g.MaxDegree())
	}
	order := make([]int, g.M())
	for i := range order {
		order[i] = i
	}
	return core.SchemeFromEdgeOrder(g, order)
}
