package solver

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"joinpebble/internal/core"
	"joinpebble/internal/faultinject"
	"joinpebble/internal/graph"
)

// pathGraph returns the path on n vertices: n-1 edges, one component.
func pathGraph(n int) *graph.Graph {
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(v-1, v)
	}
	return g
}

// manyComponents returns k disjoint 4-cycles: k components, 4k edges.
func manyComponents(k int) *graph.Graph {
	out := graph.New(0)
	for i := 0; i < k; i++ {
		c := graph.New(4)
		c.AddEdge(0, 1)
		c.AddEdge(1, 2)
		c.AddEdge(2, 3)
		c.AddEdge(3, 0)
		out = graph.DisjointUnion(out, c)
	}
	return out
}

// TestComponentPanicRecovered: a panic inside a component solve comes
// back as a *PanicError wrapping ErrPanic with the stack attached — the
// process survives and the caller can degrade.
func TestComponentPanicRecovered(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Arm(SiteComponent, faultinject.Fault{Panic: "kaboom"})
	_, err := Approx125{}.Solve(pathGraph(6))
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("err = %v, want ErrPanic", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err %T does not unwrap to *PanicError", err)
	}
	if pe.Value != "kaboom" {
		t.Fatalf("panic value %v, want kaboom", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("PanicError carries no stack")
	}
	if pe.Solver != "approx-1.25" {
		t.Fatalf("PanicError.Solver = %q", pe.Solver)
	}
}

// TestComponentPanicDrainsPool: after one worker panics, the pool stops
// handing out components — nowhere near all 60 components get solved —
// and the recovered panic is the error reported, not the cancellations
// the drain induced in sibling workers.
func TestComponentPanicDrainsPool(t *testing.T) {
	defer faultinject.Reset()
	prev := Parallelism
	Parallelism = 4
	defer func() { Parallelism = prev }()

	faultinject.Arm(SiteComponent, faultinject.Fault{Panic: "kaboom", Times: 1})
	_, err := Greedy{}.Solve(manyComponents(60))
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("err = %v, want ErrPanic", err)
	}
	// The first hit panicked; only in-flight workers may still have fired
	// the site before observing the drain.
	if h := faultinject.Hits(SiteComponent); h > 16 {
		t.Fatalf("site hit %d times after the drain, pool did not stop", h)
	}
}

// TestComponentPanicRecoveredSequential covers the Parallelism=1 path
// and the single-component fast path.
func TestComponentPanicRecoveredSequential(t *testing.T) {
	defer faultinject.Reset()
	prev := Parallelism
	Parallelism = 1
	defer func() { Parallelism = prev }()

	faultinject.Arm(SiteComponent, faultinject.Fault{Panic: 42, Times: 1})
	_, err := Greedy{}.Solve(manyComponents(3))
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("multi-component sequential: err = %v, want ErrPanic", err)
	}
	faultinject.Arm(SiteComponent, faultinject.Fault{Panic: 42, Times: 1})
	_, err = Greedy{}.Solve(pathGraph(5))
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("single-component fast path: err = %v, want ErrPanic", err)
	}
}

// TestInjectedBudgetExhaustion: the exact rung's budget site forces an
// ErrBudgetExceeded on an instance of any size — the lever the engine
// degradation tests pull.
func TestInjectedBudgetExhaustion(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Arm(SiteExactBudget, faultinject.Fault{
		Err: fmt.Errorf("%w: injected for test", ErrBudgetExceeded),
	})
	_, err := Exact{}.Solve(pathGraph(5))
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
}

// TestExactDeadlineMidComponent is the regression test for the
// cancellation gap this PR closes: tsp.Exact used to run uninterruptible
// once a component started, so a deadline expiring inside one big
// component was only noticed at the (nonexistent) next component
// boundary. Now the Held–Karp subset loop checks ctx at checkpoints: the
// solve must return the deadline error in bounded wall time, far below
// the multi-second full search on a 22-edge component.
func TestExactDeadlineMidComponent(t *testing.T) {
	g := pathGraph(23) // 22 edges, one component: 2^22-subset search
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := Exact{}.SolveContext(ctx, g)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("mid-component cancellation took %v, want bounded unwind", elapsed)
	}
}

// TestExactBnBAnytime: with Anytime set, a node cap that stops the
// search yields the verified incumbent instead of ErrBudgetExceeded; the
// strict configuration still errors.
func TestExactBnBAnytime(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.RandomConnectedGraph(rng, 14, 26, 0)

	if _, err := (ExactBnB{MaxNodes: 10}).Solve(g.Clone()); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("strict cap: err = %v, want ErrBudgetExceeded", err)
	}

	scheme, cost, err := SolveAndVerify(ExactBnB{MaxNodes: 10, Anytime: true}, g.Clone())
	if err != nil {
		t.Fatalf("anytime cap: %v", err)
	}
	if len(scheme) == 0 {
		t.Fatal("anytime cap returned an empty scheme")
	}
	if ub := core.UpperBound(g); cost > ub {
		t.Fatalf("anytime cost %d exceeds the universal bound %d", cost, ub)
	}
}

// TestExactBnBPreCanceled: an already-canceled context aborts before any
// component starts, anytime or not.
func TestExactBnBPreCanceled(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graph.RandomConnectedGraph(rng, 16, 30, 0)
	canceled, cancelNow := context.WithCancel(context.Background())
	cancelNow()
	if _, err := (ExactBnB{Anytime: true}).SolveContext(canceled, g); !errors.Is(err, context.Canceled) {
		t.Fatalf("explicit cancel: err = %v, want context.Canceled", err)
	}
}

// TestDisarmedSitesChangeNothing: with no faults armed, a solve through
// every instrumented path is byte-identical to the pre-injection
// behavior — the sites are pure pass-throughs.
func TestDisarmedSitesChangeNothing(t *testing.T) {
	g := manyComponents(5)
	s1, c1, err := SolveAndVerify(Approx125{}, g.Clone())
	if err != nil {
		t.Fatal(err)
	}
	s2, c2, err := SolveAndVerify(Approx125{}, g.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 || fmt.Sprint(s1) != fmt.Sprint(s2) {
		t.Fatal("disarmed sites perturbed the solve")
	}
}
