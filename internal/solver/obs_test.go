package solver

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"

	"joinpebble/internal/graph"
	"joinpebble/internal/obs"
)

// spanLine mirrors the JSONL record trace.WriteJSONL emits.
type spanLine struct {
	ID     int64            `json:"id"`
	Parent int64            `json:"parent"`
	Depth  int              `json:"depth"`
	Name   string           `json:"name"`
	DurNs  int64            `json:"dur_ns"`
	Attrs  map[string]int64 `json:"attrs"`
}

func readSpans(t *testing.T, tr *obs.Tracer) []spanLine {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	var out []spanLine
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var s spanLine
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		out = append(out, s)
	}
	return out
}

// TestSolveInstrumentation pins the observable surface of one solve: the
// counters a -metrics snapshot reports and the span tree a -trace run
// records, for a graph with two edge-bearing components plus an isolated
// vertex.
func TestSolveInstrumentation(t *testing.T) {
	tr := obs.NewTracer()
	obs.SetTracer(tr)
	defer obs.SetTracer(nil)

	g := graph.New(7)
	g.AddEdge(0, 1) // component A: a path
	g.AddEdge(1, 2)
	g.AddEdge(3, 4) // component B: a triangle
	g.AddEdge(4, 5)
	g.AddEdge(3, 5)
	// vertex 6 is isolated: split must skip it, not count it as solved.

	before := obs.Default.Snapshot()
	if _, _, err := SolveAndVerify(Greedy{}, g); err != nil {
		t.Fatal(err)
	}
	after := obs.Default.Snapshot()

	delta := func(name string) int64 { return after.Counters[name] - before.Counters[name] }
	if got := delta("solver/solves"); got != 1 {
		t.Errorf("solver/solves delta = %d, want 1", got)
	}
	if got := delta("solver/components_solved"); got != 2 {
		t.Errorf("solver/components_solved delta = %d, want 2", got)
	}
	if got := delta("solver/workers_used"); got < 1 || got > 2 {
		t.Errorf("solver/workers_used delta = %d, want 1..2", got)
	}

	spans := readSpans(t, tr)
	byName := make(map[string][]spanLine)
	for _, s := range spans {
		byName[s.Name] = append(byName[s.Name], s)
	}
	roots := byName["greedy"]
	if len(roots) != 1 {
		t.Fatalf("got %d root spans named greedy, want 1: %+v", len(roots), spans)
	}
	root := roots[0]
	if root.Depth != 0 || root.Parent != 0 {
		t.Errorf("root span depth=%d parent=%d, want 0/0", root.Depth, root.Parent)
	}
	if root.Attrs["edges"] != int64(g.M()) {
		t.Errorf("root edges attr = %d, want %d", root.Attrs["edges"], g.M())
	}
	if root.DurNs < 0 {
		t.Errorf("root span not ended: dur_ns = %d", root.DurNs)
	}
	for _, phase := range []string{"component_split", "scheme_build"} {
		ps := byName[phase]
		if len(ps) != 1 {
			t.Fatalf("got %d %s spans, want 1", len(ps), phase)
		}
		if ps[0].Parent != root.ID || ps[0].Depth != 1 {
			t.Errorf("%s span parent=%d depth=%d, want parent=%d depth=1",
				phase, ps[0].Parent, ps[0].Depth, root.ID)
		}
	}
	solves := byName["component_solve"]
	if len(solves) != 2 {
		t.Fatalf("got %d component_solve spans, want 2", len(solves))
	}
	var edgeCounts []int64
	for _, s := range solves {
		if s.Parent != root.ID {
			t.Errorf("component_solve parent = %d, want %d", s.Parent, root.ID)
		}
		edgeCounts = append(edgeCounts, s.Attrs["edges"])
	}
	if a, b := edgeCounts[0], edgeCounts[1]; a+b != int64(g.M()) || (a != 2 && a != 3) {
		t.Errorf("component_solve edge attrs = %v, want {2,3}", edgeCounts)
	}
	// The nearest_neighbor phase spans hang off each component's span.
	if nn := byName["nearest_neighbor"]; len(nn) != 2 {
		t.Errorf("got %d nearest_neighbor spans, want 2", len(nn))
	}
}

// TestSolveUntracedNoSpans confirms solving without an active tracer
// records nothing (and, with the nil-receiver span API, does not panic).
func TestSolveUntracedNoSpans(t *testing.T) {
	obs.SetTracer(nil)
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if _, _, err := SolveAndVerify(Approx125{}, g); err != nil {
		t.Fatal(err)
	}
	if tr := obs.ActiveTracer(); tr != nil {
		t.Fatalf("active tracer is %v, want nil", tr)
	}
}

// TestDecideCounters checks the decision ladder accounts for its
// outcomes: a K below the m lower bound must settle on the first rung.
func TestDecideCounters(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)

	before := obs.Default.Snapshot()
	ok, err := Decide(g, g.M()-1)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("Decide(g, m-1) = true, want false (Lemma 2.3: π >= m)")
	}
	after := obs.Default.Snapshot()
	if d := after.Counters["solver/decide/calls"] - before.Counters["solver/decide/calls"]; d != 1 {
		t.Errorf("solver/decide/calls delta = %d, want 1", d)
	}
	if d := after.Counters["solver/decide/by_lower_bound"] - before.Counters["solver/decide/by_lower_bound"]; d != 1 {
		t.Errorf("solver/decide/by_lower_bound delta = %d, want 1", d)
	}
}

// TestSpanNamesAreStable pins the phase-span vocabulary: renames break
// trace consumers the same way metric renames break dashboards.
func TestSpanNamesAreStable(t *testing.T) {
	tr := obs.NewTracer()
	obs.SetTracer(tr)
	defer obs.SetTracer(nil)

	// K_{2,2}: complete bipartite, so the equijoin solver accepts it too.
	g := graph.New(4)
	for _, e := range [][2]int{{0, 2}, {0, 3}, {1, 2}, {1, 3}} {
		g.AddEdge(e[0], e[1])
	}
	for _, s := range []Solver{Approx125{}, Exact{}, Equijoin{}} {
		if _, err := s.Solve(g); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
	}
	got := make(map[string]bool)
	for _, s := range readSpans(t, tr) {
		got[s.Name] = true
	}
	for _, want := range []string{
		"approx-1.25", "exact", "equijoin",
		"component_split", "component_solve", "scheme_build",
		"line_graph", "path_partition", "held_karp", "zigzag_order",
	} {
		if !got[want] {
			t.Errorf("span %q missing from trace; got %v", want, got)
		}
	}
}
