package solver

import (
	"math/rand"
	"reflect"
	"testing"

	"joinpebble/internal/core"
	"joinpebble/internal/graph"
)

// multiComponentGraph builds k random connected components glued into one
// graph, shuffling edge insertion so component edges interleave globally.
func multiComponentGraph(rng *rand.Rand, k int) *graph.Graph {
	type edge struct{ u, v int }
	var edges []edge
	base := 0
	for c := 0; c < k; c++ {
		n := 3 + rng.Intn(10)
		m := n - 1 + rng.Intn(n)
		if max := n * (n - 1) / 2; m > max {
			m = max
		}
		cg := graph.RandomConnectedGraph(rng, n, m, 0)
		for _, e := range cg.Edges() {
			edges = append(edges, edge{base + e.U, base + e.V})
		}
		base += n
	}
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	g := graph.New(base)
	for _, e := range edges {
		g.AddEdge(e.u, e.v)
	}
	return g
}

// TestParallelSolveMatchesSequential locks in the determinism contract of
// solvePerComponent: any Parallelism setting yields the exact same scheme.
func TestParallelSolveMatchesSequential(t *testing.T) {
	defer func(p int) { Parallelism = p }(Parallelism)
	rng := rand.New(rand.NewSource(23))
	solvers := []Solver{Naive{}, Greedy{}, Approx125{}}
	for trial := 0; trial < 6; trial++ {
		g := multiComponentGraph(rng, 2+trial)
		for _, s := range solvers {
			var want core.Scheme
			for _, par := range []int{1, 2, 7, 0} {
				Parallelism = par
				got, cost, err := SolveAndVerify(s, g.Clone())
				if err != nil {
					t.Fatalf("trial %d %s parallelism=%d: %v", trial, s.Name(), par, err)
				}
				if par == 1 {
					want = got
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d %s: parallelism=%d scheme differs from sequential", trial, s.Name(), par)
				}
				_ = cost
			}
		}
	}
}

// TestMaterializedMatchesView checks the legacy materialized arm and the
// implicit-view default both produce valid schemes within the Theorem 3.1
// bound on the same inputs. (Exact cost equality is not required — the
// two adjacency representations enumerate neighbors in different orders,
// so the DFS may strip different, equally bounded path partitions.)
func TestMaterializedMatchesView(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 5; trial++ {
		g := multiComponentGraph(rng, 1+trial)
		m := g.M()
		beta := core.Betti0(g)
		bound := m + (m-1)/4 + beta // Σ per-component 1.25m bounds is ≤ this
		for _, s := range []Solver{Approx125{}, Approx125{Materialize: true}} {
			name := "view"
			if s.(Approx125).Materialize {
				name = "materialized"
			}
			_, cost, err := SolveAndVerify(s, g.Clone())
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, name, err)
			}
			if cost > bound {
				t.Fatalf("trial %d %s: cost %d exceeds 1.25-bound %d (m=%d, β₀=%d)", trial, name, cost, bound, m, beta)
			}
		}
	}
}
