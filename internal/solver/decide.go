package solver

import (
	"context"
	"fmt"

	"joinpebble/internal/core"
	"joinpebble/internal/graph"
	"joinpebble/internal/obs"
	"joinpebble/internal/tsp"
)

// Decide outcome counters: how often each rung of the decision ladder
// settles a PEBBLE(D) query without paying for the rungs below it.
var (
	cDecideCalls       = obs.ScopedCounter("solver/decide/calls")
	cDecideLowerBound  = obs.ScopedCounter("solver/decide/by_lower_bound")
	cDecideUpperBound  = obs.ScopedCounter("solver/decide/by_upper_bound")
	cDecideCertificate = obs.ScopedCounter("solver/decide/by_certificate")
	cDecideExact       = obs.ScopedCounter("solver/decide/by_exact")
)

// Decide answers PEBBLE(D) of Definition 4.1: given G and an integer K,
// is π(G) <= K? It short-circuits with the combinatorial bounds of
// Lemma 2.3 (yes when K >= the Theorem 3.1 bound, no when K < m) and the
// cheap upper bounds from the approximation before falling back to the
// exact solver, so many instances never pay the exponential cost — but
// the worst case is still exponential, as Theorem 4.2 says it must be
// unless P = NP.
func Decide(g *graph.Graph, k int) (bool, error) {
	return DecideContext(context.Background(), g, k)
}

// CertificateLadder returns the polynomial solvers Decide tries, in
// order, as cheap upper-bound certificates before paying for exact
// search. The engine planner consults the same ladder, so planner
// routing and the Decide rungs can never diverge.
func CertificateLadder() []Solver {
	return []Solver{Greedy{}, Approx125{}, GreedyImproved{}}
}

// DecideContext is Decide bounded by ctx: cancellation is observed
// between ladder rungs and inside each rung's component pool.
func DecideContext(ctx context.Context, g *graph.Graph, k int) (bool, error) {
	cDecideCalls.Inc(ctx)
	sp := obs.StartSpanCtx(ctx, "decide")
	defer sp.End()
	m := g.M()
	if m == 0 {
		return k >= 0, nil
	}
	// Lemma 2.3 lower bound: π >= m always.
	if k < m {
		cDecideLowerBound.Inc(ctx)
		return false, nil
	}
	// Theorem 3.1 upper bound: π <= sum of m_i + floor((m_i-1)/4).
	if k >= ApproxCostBound(g)-core.Betti0(g) {
		cDecideUpperBound.Inc(ctx)
		return true, nil
	}
	// A cheap certificate: if any polynomial solver achieves <= K we are
	// done without exact search.
	for _, s := range CertificateLadder() {
		scheme, err := SolveContext(ctx, s, g)
		if err != nil {
			return false, err
		}
		if scheme.EffectiveCost(g) <= k {
			cDecideCertificate.Inc(ctx)
			return true, nil
		}
	}
	cDecideExact.Inc(ctx)
	scheme, err := SolveContext(ctx, Exact{}, g)
	if err != nil {
		return false, err
	}
	cost, err := core.VerifyContext(ctx, g, scheme)
	if err != nil {
		return false, err
	}
	return cost-core.Betti0(g) <= k, nil
}

// ApproxWithin solves the ε-approximation problem of Definition 4.1:
// find a scheme within factor 1+ε of optimal effective cost. The solver
// ladder mirrors the paper's approximability landscape (§4):
//
//	ε >= 1     — any scheme works (Lemma 2.1's factor-2 is universal);
//	ε >= 0.25  — Lemma 3.1's linear-time 1.25 approximation;
//	ε >= 1/6   — the cycle-cover solver in the Papadimitriou–Yannakakis
//	             regime ([12]), guarded by a certificate check;
//	ε < 1/6    — exact search: per the MAX-SNP-completeness of PEBBLE
//	             (Theorem 4.4) some ε₀ admits no polynomial algorithm
//	             unless P = NP, so small ε legitimately costs
//	             exponential time here.
//
// Every returned scheme carries a certificate: its effective cost is
// checked against the m lower bound, so the promised factor holds
// unconditionally.
func ApproxWithin(g *graph.Graph, eps float64) (core.Scheme, error) {
	if eps < 0 {
		return nil, fmt.Errorf("solver: negative epsilon %v", eps)
	}
	m := g.M()
	if m == 0 {
		return core.Scheme{}, nil
	}
	try := func(s Solver) (core.Scheme, bool, error) {
		scheme, err := s.Solve(g)
		if err != nil {
			return nil, false, err
		}
		// Certificate: effective cost within (1+eps)*m guarantees the
		// factor against any optimum (π* >= m by Lemma 2.3).
		if float64(scheme.EffectiveCost(g)) <= (1+eps)*float64(m) {
			return scheme, true, nil
		}
		return nil, false, nil
	}
	ladder := []Solver{}
	switch {
	case eps >= 1:
		ladder = append(ladder, Naive{}, Greedy{})
	case eps >= 0.25:
		ladder = append(ladder, Approx125{}, Greedy{})
	case eps >= 1.0/6.0:
		ladder = append(ladder, CycleCover{}, GreedyImproved{}, Approx125{})
	}
	for _, s := range ladder {
		scheme, ok, err := try(s)
		if err != nil {
			return nil, err
		}
		if ok {
			return scheme, nil
		}
	}
	// Either eps is below the heuristic regime or no certificate
	// materialized (the m-based check is conservative); fall back to
	// exact, which trivially satisfies any eps.
	return Exact{}.Solve(g)
}

// HamiltonianLineGraphDecision decides Proposition 2.1's special case
// π(G) = m by searching L(G) for a Hamiltonian path per component —
// the K = m instance of PEBBLE(D).
func HamiltonianLineGraphDecision(g *graph.Graph) (bool, error) {
	for _, comp := range g.Components() {
		if len(comp) < 2 {
			continue
		}
		cg, _ := g.InducedSubgraph(comp)
		if cg.M() > tsp.MaxExactCities {
			return false, fmt.Errorf("%w: component with %d edges exceeds decision budget", ErrBudgetExceeded, cg.M())
		}
		if _, ok := graph.HamiltonianPath(graph.LineGraph(cg)); !ok {
			return false, nil
		}
	}
	return true, nil
}
