package solver

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"joinpebble/internal/core"
	"joinpebble/internal/graph"
	"joinpebble/internal/obs"
	"joinpebble/internal/tsp"
)

// Auto route counters: which specialized solver the facade's default
// solver actually dispatched to.
var (
	cAutoEquijoin = obs.ScopedCounter("solver/auto/equijoin")
	cAutoExact    = obs.ScopedCounter("solver/auto/exact")
	cAutoApprox   = obs.ScopedCounter("solver/auto/approx")
)

// Greedy runs the nearest-neighbour TSP heuristic on each component's
// line graph. No approximation guarantee beyond the universal factor 2,
// but fast and a useful baseline for the E14 ratio experiment.
type Greedy struct{}

// Name implements Solver.
func (Greedy) Name() string { return "greedy" }

// Solve implements Solver.
func (Greedy) Solve(g *graph.Graph) (core.Scheme, error) {
	return Greedy{}.SolveContext(context.Background(), g)
}

// SolveContext implements ContextSolver.
func (Greedy) SolveContext(ctx context.Context, g *graph.Graph) (core.Scheme, error) {
	return solvePerComponent(ctx, g, "greedy", func(_ context.Context, cg *graph.Graph, sp *obs.Span) ([]int, error) {
		in := tsp.NewInstance(graph.LineGraph(cg))
		ts := sp.Start("nearest_neighbor")
		tour, _ := tsp.NearestNeighbor(in)
		ts.End()
		return []int(tour), nil
	})
}

// GreedyImproved runs nearest-neighbour followed by 2-opt/Or-opt local
// search on each component's line graph.
type GreedyImproved struct{}

// Name implements Solver.
func (GreedyImproved) Name() string { return "greedy+2opt" }

// Solve implements Solver.
func (GreedyImproved) Solve(g *graph.Graph) (core.Scheme, error) {
	return GreedyImproved{}.SolveContext(context.Background(), g)
}

// SolveContext implements ContextSolver.
func (GreedyImproved) SolveContext(ctx context.Context, g *graph.Graph) (core.Scheme, error) {
	return solvePerComponent(ctx, g, "greedy+2opt", func(_ context.Context, cg *graph.Graph, sp *obs.Span) ([]int, error) {
		in := tsp.NewInstance(graph.LineGraph(cg))
		ts := sp.Start("nearest_neighbor")
		tour, _ := tsp.NearestNeighbor(in)
		ts.End()
		ts = sp.Start("two_opt")
		tour, _ = tsp.TwoOptImprove(in, tour)
		ts.End()
		return []int(tour), nil
	})
}

// PathCover chains the GreedyPathCover heuristic per component.
type PathCover struct{}

// Name implements Solver.
func (PathCover) Name() string { return "path-cover" }

// Solve implements Solver.
func (PathCover) Solve(g *graph.Graph) (core.Scheme, error) {
	return PathCover{}.SolveContext(context.Background(), g)
}

// SolveContext implements ContextSolver.
func (PathCover) SolveContext(ctx context.Context, g *graph.Graph) (core.Scheme, error) {
	return solvePerComponent(ctx, g, "path-cover", func(_ context.Context, cg *graph.Graph, sp *obs.Span) ([]int, error) {
		in := tsp.NewInstance(graph.LineGraph(cg))
		ts := sp.Start("path_cover")
		tour, _ := tsp.GreedyPathCover(in)
		ts.End()
		return []int(tour), nil
	})
}

// CycleCover is the Papadimitriou–Yannakakis-style solver the paper's
// 7/6 remark points at (§4, citing [12]): per component, a minimum-weight
// cycle cover of the line graph (via the Hungarian assignment) is broken
// into paths and stitched into a tour.
type CycleCover struct{}

// Name implements Solver.
func (CycleCover) Name() string { return "cycle-cover" }

// Solve implements Solver.
func (CycleCover) Solve(g *graph.Graph) (core.Scheme, error) {
	return CycleCover{}.SolveContext(context.Background(), g)
}

// SolveContext implements ContextSolver.
func (CycleCover) SolveContext(ctx context.Context, g *graph.Graph) (core.Scheme, error) {
	return solvePerComponent(ctx, g, "cycle-cover", func(_ context.Context, cg *graph.Graph, sp *obs.Span) ([]int, error) {
		in := tsp.NewInstance(graph.LineGraph(cg))
		ts := sp.Start("cycle_cover")
		tour, _, err := tsp.CycleCoverTour(in)
		ts.End()
		if err != nil {
			return nil, err
		}
		return []int(tour), nil
	})
}

// ExactBnB is an exact solver using branch-and-bound instead of
// Held–Karp: slower in the worst case but without the 2^m memory, so it
// reaches somewhat larger sparse components. MaxNodes caps the search
// per component (0 = unlimited); hitting the cap is an error, not a
// silent approximation — unless Anytime is set.
type ExactBnB struct {
	MaxNodes int64
	// Anytime accepts the search's best-so-far incumbent tour when the
	// node cap or the context deadline stops it before exhaustion. The
	// scheme is still simulator-verified and within the universal 2m
	// bound (the incumbent is seeded with a full nearest-neighbour
	// tour); only the optimality proof is given up.
	Anytime bool
}

// Name implements Solver.
func (ExactBnB) Name() string { return "exact-bnb" }

// Solve implements Solver.
func (e ExactBnB) Solve(g *graph.Graph) (core.Scheme, error) {
	return e.SolveContext(context.Background(), g)
}

// SolveContext implements ContextSolver.
func (e ExactBnB) SolveContext(ctx context.Context, g *graph.Graph) (core.Scheme, error) {
	return solvePerComponent(ctx, g, "exact-bnb", func(ctx context.Context, cg *graph.Graph, sp *obs.Span) ([]int, error) {
		in := tsp.NewInstance(graph.LineGraph(cg))
		ts := sp.Start("branch_and_bound")
		tour, _, exhausted := tsp.BranchAndBoundContext(ctx, in, e.MaxNodes)
		ts.End()
		if !exhausted {
			cause := ctx.Err()
			switch {
			case e.Anytime && (cause == nil || errors.Is(cause, context.DeadlineExceeded)):
				// Node cap or soft deadline with Anytime set: keep the
				// incumbent; only the optimality proof is given up. An
				// explicit cancel still aborts below — the caller is
				// abandoning the work, not trading quality for time.
			case cause != nil:
				return nil, cause
			default:
				return nil, fmt.Errorf("%w: branch-and-bound node cap %d hit on component with %d edges", ErrBudgetExceeded, e.MaxNodes, cg.M())
			}
		}
		return []int(tour), nil
	})
}

// Route identifies a rung of the automatic solver ladder: the structural
// fact about an instance that determines which solver handles it. The
// engine planner and the Auto solver share this classification, so
// engine-routed solves and direct Auto solves can never disagree.
type Route int

// Ladder rungs, in the order PlanRoute tries them.
const (
	// RoutePerfect: every component is complete bipartite — the defining
	// structure of equijoin graphs (§3.1) — so the linear-time perfect
	// pebbler of Theorems 3.2/4.1 applies and π = m is achieved.
	RoutePerfect Route = iota
	// RouteExact: every component's edge count fits the exponential
	// search budget, so the Held–Karp exact solver is affordable.
	RouteExact
	// RouteApprox: fall back to the Theorem 3.1 1.25-approximation,
	// polynomial on any input.
	RouteApprox
)

// String names the route for tables and plan output.
func (r Route) String() string {
	switch r {
	case RoutePerfect:
		return "perfect"
	case RouteExact:
		return "exact"
	case RouteApprox:
		return "approx"
	}
	return fmt.Sprintf("route(%d)", int(r))
}

// PlanRoute classifies g onto the ladder by walking RouteTable in
// order. exactLimit caps the exact rung's per-component edge count;
// zero means tsp.MaxExactCities. The classification is purely
// structural (no solving happens), costing one bipartition check plus
// one component scan.
func PlanRoute(g *graph.Graph, exactLimit int) Route {
	exactLimit = normalizeExactLimit(exactLimit)
	table := RouteTable()
	for _, spec := range table {
		if spec.Applies(g, exactLimit) {
			return spec.Route
		}
	}
	return table[len(table)-1].Route
}

// RouteSolver returns the solver implementing a ladder rung, from the
// same table PlanRoute classifies with.
func RouteSolver(r Route, exactLimit int) Solver {
	return routeSpec(r).New(normalizeExactLimit(exactLimit))
}

// Auto picks the best applicable solver: the linear-time perfect pebbler
// when the graph is an equijoin graph (Theorem 4.1), the exact solver
// when every component fits the exponential budget, and the Theorem 3.1
// approximation otherwise. This is the solver the public facade exposes
// by default.
type Auto struct {
	// ExactLimit caps the exact solver's per-component edge count; zero
	// means tsp.MaxExactCities.
	ExactLimit int
}

// Name implements Solver.
func (Auto) Name() string { return "auto" }

// Solve implements Solver.
func (a Auto) Solve(g *graph.Graph) (core.Scheme, error) {
	return a.SolveContext(context.Background(), g)
}

// SolveContext implements ContextSolver.
func (a Auto) SolveContext(ctx context.Context, g *graph.Graph) (core.Scheme, error) {
	route := PlanRoute(g, a.ExactLimit)
	switch route {
	case RoutePerfect:
		cAutoEquijoin.Inc(ctx)
	case RouteExact:
		cAutoExact.Inc(ctx)
	default:
		cAutoApprox.Inc(ctx)
	}
	return SolveContext(ctx, RouteSolver(route, a.ExactLimit), g)
}

// All returns the solver lineup used by comparative experiments.
func All() []Solver {
	return []Solver{Naive{}, Greedy{}, GreedyImproved{}, PathCover{}, CycleCover{}, Approx125{}, Exact{}}
}

// Named returns the full named solver lineup — All plus the structural
// specialists and the auto router — the single source the CLIs resolve
// -solver flags against.
func Named() []Solver {
	return append(All(), Equijoin{}, MatchingSolver{}, ExactBnB{}, Auto{})
}

// ByName resolves a solver by its Name. The error lists the known names
// so CLI usage messages stay accurate as the lineup grows.
func ByName(name string) (Solver, error) {
	all := Named()
	for _, s := range all {
		if s.Name() == name {
			return s, nil
		}
	}
	names := make([]string, len(all))
	for i, s := range all {
		names[i] = s.Name()
	}
	return nil, fmt.Errorf("solver: unknown solver %q (known: %s)", name, strings.Join(names, ", "))
}
