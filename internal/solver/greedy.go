package solver

import (
	"fmt"

	"joinpebble/internal/core"
	"joinpebble/internal/graph"
	"joinpebble/internal/obs"
	"joinpebble/internal/tsp"
)

// Auto route counters: which specialized solver the facade's default
// solver actually dispatched to.
var (
	cAutoEquijoin = obs.Default.Counter("solver/auto/equijoin")
	cAutoExact    = obs.Default.Counter("solver/auto/exact")
	cAutoApprox   = obs.Default.Counter("solver/auto/approx")
)

// Greedy runs the nearest-neighbour TSP heuristic on each component's
// line graph. No approximation guarantee beyond the universal factor 2,
// but fast and a useful baseline for the E14 ratio experiment.
type Greedy struct{}

// Name implements Solver.
func (Greedy) Name() string { return "greedy" }

// Solve implements Solver.
func (Greedy) Solve(g *graph.Graph) (core.Scheme, error) {
	return solvePerComponent(g, "greedy", func(cg *graph.Graph, sp *obs.Span) ([]int, error) {
		in := tsp.NewInstance(graph.LineGraph(cg))
		ts := sp.Start("nearest_neighbor")
		tour, _ := tsp.NearestNeighbor(in)
		ts.End()
		return []int(tour), nil
	})
}

// GreedyImproved runs nearest-neighbour followed by 2-opt/Or-opt local
// search on each component's line graph.
type GreedyImproved struct{}

// Name implements Solver.
func (GreedyImproved) Name() string { return "greedy+2opt" }

// Solve implements Solver.
func (GreedyImproved) Solve(g *graph.Graph) (core.Scheme, error) {
	return solvePerComponent(g, "greedy+2opt", func(cg *graph.Graph, sp *obs.Span) ([]int, error) {
		in := tsp.NewInstance(graph.LineGraph(cg))
		ts := sp.Start("nearest_neighbor")
		tour, _ := tsp.NearestNeighbor(in)
		ts.End()
		ts = sp.Start("two_opt")
		tour, _ = tsp.TwoOptImprove(in, tour)
		ts.End()
		return []int(tour), nil
	})
}

// PathCover chains the GreedyPathCover heuristic per component.
type PathCover struct{}

// Name implements Solver.
func (PathCover) Name() string { return "path-cover" }

// Solve implements Solver.
func (PathCover) Solve(g *graph.Graph) (core.Scheme, error) {
	return solvePerComponent(g, "path-cover", func(cg *graph.Graph, sp *obs.Span) ([]int, error) {
		in := tsp.NewInstance(graph.LineGraph(cg))
		ts := sp.Start("path_cover")
		tour, _ := tsp.GreedyPathCover(in)
		ts.End()
		return []int(tour), nil
	})
}

// CycleCover is the Papadimitriou–Yannakakis-style solver the paper's
// 7/6 remark points at (§4, citing [12]): per component, a minimum-weight
// cycle cover of the line graph (via the Hungarian assignment) is broken
// into paths and stitched into a tour.
type CycleCover struct{}

// Name implements Solver.
func (CycleCover) Name() string { return "cycle-cover" }

// Solve implements Solver.
func (CycleCover) Solve(g *graph.Graph) (core.Scheme, error) {
	return solvePerComponent(g, "cycle-cover", func(cg *graph.Graph, sp *obs.Span) ([]int, error) {
		in := tsp.NewInstance(graph.LineGraph(cg))
		ts := sp.Start("cycle_cover")
		tour, _, err := tsp.CycleCoverTour(in)
		ts.End()
		if err != nil {
			return nil, err
		}
		return []int(tour), nil
	})
}

// ExactBnB is an exact solver using branch-and-bound instead of
// Held–Karp: slower in the worst case but without the 2^m memory, so it
// reaches somewhat larger sparse components. MaxNodes caps the search
// per component (0 = unlimited); hitting the cap is an error, not a
// silent approximation.
type ExactBnB struct {
	MaxNodes int64
}

// Name implements Solver.
func (ExactBnB) Name() string { return "exact-bnb" }

// Solve implements Solver.
func (e ExactBnB) Solve(g *graph.Graph) (core.Scheme, error) {
	return solvePerComponent(g, "exact-bnb", func(cg *graph.Graph, sp *obs.Span) ([]int, error) {
		in := tsp.NewInstance(graph.LineGraph(cg))
		ts := sp.Start("branch_and_bound")
		tour, _, exhausted := tsp.BranchAndBound(in, e.MaxNodes)
		ts.End()
		if !exhausted {
			return nil, fmt.Errorf("solver: branch-and-bound node cap %d hit on component with %d edges", e.MaxNodes, cg.M())
		}
		return []int(tour), nil
	})
}

// Auto picks the best applicable solver: the linear-time perfect pebbler
// when the graph is an equijoin graph (Theorem 4.1), the exact solver
// when every component fits the exponential budget, and the Theorem 3.1
// approximation otherwise. This is the solver the public facade exposes
// by default.
type Auto struct {
	// ExactLimit caps the exact solver's per-component edge count; zero
	// means tsp.MaxExactCities.
	ExactLimit int
}

// Name implements Solver.
func (Auto) Name() string { return "auto" }

// Solve implements Solver.
func (a Auto) Solve(g *graph.Graph) (core.Scheme, error) {
	if IsEquijoinGraph(g) {
		cAutoEquijoin.Inc()
		return Equijoin{}.Solve(g)
	}
	limit := a.ExactLimit
	if limit == 0 {
		limit = tsp.MaxExactCities
	}
	fits := true
	for _, m := range componentEdgeCounts(g) {
		if m > limit {
			fits = false
			break
		}
	}
	if fits {
		cAutoExact.Inc()
		return Exact{MaxEdges: limit}.Solve(g)
	}
	cAutoApprox.Inc()
	return Approx125{}.Solve(g)
}

// All returns the solver lineup used by comparative experiments.
func All() []Solver {
	return []Solver{Naive{}, Greedy{}, GreedyImproved{}, PathCover{}, CycleCover{}, Approx125{}, Exact{}}
}
