package solver

import (
	"math/rand"
	"testing"

	"joinpebble/internal/core"
	"joinpebble/internal/family"
	"joinpebble/internal/graph"
)

func TestDecideAgainstExact(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		g := randomConnectedBip(rng)
		eff, err := OptimalEffectiveCost(g)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{eff - 1, eff, eff + 1, g.M() - 1, 2 * g.M()} {
			got, err := Decide(g, k)
			if err != nil {
				t.Fatal(err)
			}
			if got != (eff <= k) {
				t.Fatalf("trial %d: Decide(K=%d)=%v, π=%d", trial, k, got, eff)
			}
		}
	}
}

func TestDecideShortCircuits(t *testing.T) {
	// K below m must answer false without exact search even on huge
	// graphs; K above the Theorem 3.1 bound must answer true likewise.
	g := graph.RandomConnectedBipartite(rand.New(rand.NewSource(42)), 40, 40, 400).Graph()
	if ok, err := Decide(g, g.M()-1); err != nil || ok {
		t.Fatalf("K<m must be false: %v %v", ok, err)
	}
	if ok, err := Decide(g, 2*g.M()); err != nil || !ok {
		t.Fatalf("K=2m must be true: %v %v", ok, err)
	}
	// K at the approximation bound: certified by a polynomial solver.
	if ok, err := Decide(g, ApproxCostBound(g)); err != nil || !ok {
		t.Fatalf("K=approx bound must be true: %v %v", ok, err)
	}
}

func TestDecideEmptyGraph(t *testing.T) {
	g := graph.New(3)
	if ok, err := Decide(g, 0); err != nil || !ok {
		t.Fatal("edgeless graph pebbles in 0")
	}
	if ok, err := Decide(g, -1); err != nil || ok {
		t.Fatal("negative K with nothing to do")
	}
}

func TestApproxWithinLadder(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 15; trial++ {
		g := randomConnectedBip(rng)
		eff, err := OptimalEffectiveCost(g)
		if err != nil {
			t.Fatal(err)
		}
		for _, eps := range []float64{1.5, 1, 0.3, 0.25, 0.2, 0.1, 0} {
			scheme, err := ApproxWithin(g, eps)
			if err != nil {
				t.Fatalf("trial %d eps=%v: %v", trial, eps, err)
			}
			if _, err := core.Verify(g, scheme); err != nil {
				t.Fatalf("trial %d eps=%v: invalid scheme: %v", trial, eps, err)
			}
			if got := float64(scheme.EffectiveCost(g)); got > (1+eps)*float64(eff)+1e-9 {
				t.Fatalf("trial %d: eps=%v promised %.2f, got π=%v (opt %d)",
					trial, eps, (1+eps)*float64(eff), got, eff)
			}
		}
	}
}

func TestApproxWithinRejectsNegativeEps(t *testing.T) {
	if _, err := ApproxWithin(graph.Matching(2).Graph(), -0.5); err == nil {
		t.Fatal("negative epsilon must error")
	}
}

func TestApproxWithinEmpty(t *testing.T) {
	scheme, err := ApproxWithin(graph.New(4), 0.1)
	if err != nil || len(scheme) != 0 {
		t.Fatal("edgeless graph needs no scheme")
	}
}

func TestHamiltonianLineGraphDecision(t *testing.T) {
	ok, err := HamiltonianLineGraphDecision(graph.CompleteBipartite(3, 3).Graph())
	if err != nil || !ok {
		t.Fatalf("K33 pebbles perfectly: %v %v", ok, err)
	}
	ok, err = HamiltonianLineGraphDecision(family.Spider(3).Graph())
	if err != nil || ok {
		t.Fatalf("spider-3 does not: %v %v", ok, err)
	}
	// Agreement with the cost-based predicate on random instances.
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 15; trial++ {
		g := randomConnectedBip(rng)
		viaHam, err := HamiltonianLineGraphDecision(g)
		if err != nil {
			t.Fatal(err)
		}
		viaCost, err := HasPerfectScheme(g)
		if err != nil {
			t.Fatal(err)
		}
		if viaHam != viaCost {
			t.Fatalf("trial %d: Prop 2.1 predicates disagree", trial)
		}
	}
}
