package solver

import (
	"context"
	"fmt"

	"joinpebble/internal/core"
	"joinpebble/internal/faultinject"
	"joinpebble/internal/graph"
	"joinpebble/internal/obs"
	"joinpebble/internal/tsp"
)

// Exact computes an optimal pebbling scheme via Proposition 2.2: per
// connected component, solve TSP(1,2) on the line graph exactly and
// translate the tour back into a pebbling. Exponential in the component's
// edge count (PEBBLE(D) is NP-complete, Theorem 4.2); components above
// MaxEdges are rejected.
type Exact struct {
	// MaxEdges caps the per-component edge count (the TSP city count).
	// Zero means tsp.MaxExactCities.
	MaxEdges int
}

// Name implements Solver.
func (Exact) Name() string { return "exact" }

// Solve implements Solver.
func (e Exact) Solve(g *graph.Graph) (core.Scheme, error) {
	return e.SolveContext(context.Background(), g)
}

// SolveContext implements ContextSolver.
func (e Exact) SolveContext(ctx context.Context, g *graph.Graph) (core.Scheme, error) {
	limit := e.MaxEdges
	if limit == 0 {
		limit = tsp.MaxExactCities
	}
	return solvePerComponent(ctx, g, "exact", func(ctx context.Context, cg *graph.Graph, sp *obs.Span) ([]int, error) {
		if err := faultinject.Fire(SiteExactBudget); err != nil {
			return nil, err
		}
		if cg.M() > limit {
			return nil, fmt.Errorf("%w: component with %d edges exceeds exact limit %d", ErrBudgetExceeded, cg.M(), limit)
		}
		in := tsp.NewInstance(graph.LineGraph(cg))
		ts := sp.Start("held_karp")
		tour, _, err := tsp.ExactContext(ctx, in)
		ts.End()
		if err != nil {
			return nil, err
		}
		return []int(tour), nil
	})
}

// OptimalCost returns π̂(G), the optimal pebbling cost, by solving each
// component exactly. It is the ground truth the experiments compare
// against.
func OptimalCost(g *graph.Graph) (int, error) {
	scheme, err := Exact{}.Solve(g)
	if err != nil {
		return 0, err
	}
	return core.Verify(g, scheme)
}

// OptimalEffectiveCost returns π(G) = π̂(G) − β₀(G).
func OptimalEffectiveCost(g *graph.Graph) (int, error) {
	c, err := OptimalCost(g)
	if err != nil {
		return 0, err
	}
	return c - core.Betti0(g), nil
}

// HasPerfectScheme decides Definition 2.3 exactly: whether π(G) = m. By
// Proposition 2.1 this holds iff every component's line graph has a
// Hamiltonian path.
func HasPerfectScheme(g *graph.Graph) (bool, error) {
	eff, err := OptimalEffectiveCost(g)
	if err != nil {
		return false, err
	}
	return eff == g.M(), nil
}
