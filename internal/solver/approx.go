package solver

import (
	"context"
	"fmt"

	"joinpebble/internal/core"
	"joinpebble/internal/graph"
	"joinpebble/internal/obs"
)

var (
	tPathPartition = obs.Default.Timer("solver/phase/path_partition")
	cPathPieces    = obs.Default.Counter("solver/approx/path_pieces")
)

// Approx125 implements the constructive proof of Theorem 3.1 / Lemma 3.1:
// for a connected component with m edges it finds a pebbling scheme of
// effective cost at most m + floor((m−1)/4) — the paper's 1.25m bound
// (exactly 1.25m−1 when 4 divides m). Per component it partitions the
// vertices of the (claw-free) line graph into vertex-disjoint paths, all
// but the last of size at least 4, by repeatedly:
//
//  1. building a DFS tree of the remaining line graph (every node has at
//     most two children, else three pairwise non-adjacent children would
//     form a claw with their parent);
//  2. eliminating "twins" (two leaf children of one parent) by the
//     re-hanging argument in the paper: claw-freeness forces one twin to
//     be adjacent to the grandparent, so the subtree can be re-hung into
//     a chain;
//  3. stripping the subtree rooted at the lowest node with >= 4
//     descendants — after twin elimination that subtree is a path — and
//     observing that the rest of the tree still spans the remainder, so
//     the remaining line graph stays connected.
//
// The concatenated paths form a TSP tour with at most one jump per
// stripped piece, giving J <= floor((m−1)/4). The implementation
// recomputes the DFS tree after each strip (O(m·|E(L)|) overall) instead
// of the paper's linear-time bookkeeping; the produced schemes are the
// same quality.
type Approx125 struct {
	// SkipTwinElimination disables step 2 — an ablation knob for the E19
	// experiment. Without twin elimination the stripped subtree need not
	// be a path and the construction legitimately fails on some inputs
	// (Solve returns an error); never set it outside experiments.
	SkipTwinElimination bool

	// Materialize makes the construction run over an explicitly built
	// map-backed line graph (graph.LineGraphReference) instead of the
	// implicit graph.LineGraphView. The view is strictly cheaper — it
	// avoids the O(Σ deg²) line-graph edge set entirely — so this knob
	// exists only for differential tests and the legacy arm of
	// cmd/bench's before/after measurements.
	Materialize bool
}

// The two display names, as constants so they can double as root span
// names (the obsnames analyzer requires constant span names).
const (
	nameApprox       = "approx-1.25"
	nameApproxNoTwin = "approx-1.25(no-twin-elim)"
)

// Name implements Solver.
func (a Approx125) Name() string {
	if a.SkipTwinElimination {
		return nameApproxNoTwin
	}
	return nameApprox
}

// Solve implements Solver.
func (a Approx125) Solve(g *graph.Graph) (core.Scheme, error) {
	return a.SolveContext(context.Background(), g)
}

// SolveContext implements ContextSolver.
func (a Approx125) SolveContext(ctx context.Context, g *graph.Graph) (core.Scheme, error) {
	fn := func(_ context.Context, cg *graph.Graph, sp *obs.Span) ([]int, error) {
		return approxComponentOrder(cg, sp, a.SkipTwinElimination, a.Materialize)
	}
	// Two literal call sites so the span name stays a compile-time
	// constant either way.
	if a.SkipTwinElimination {
		return solvePerComponent(ctx, g, nameApproxNoTwin, fn)
	}
	return solvePerComponent(ctx, g, nameApprox, fn)
}

func approxComponentOrder(cg *graph.Graph, sp *obs.Span, skipTwins, materialize bool) ([]int, error) {
	lgSpan := sp.Start("line_graph")
	var lg graph.Adjacency
	if materialize {
		lg = graph.LineGraphReference(cg)
	} else {
		lg = graph.NewLineGraphView(cg)
	}
	lgSpan.End()
	partStart := obs.Now()
	partSpan := sp.Start("path_partition")
	pieces, err := pathPartition(lg, skipTwins)
	partSpan.End()
	tPathPartition.Observe(obs.Since(partStart))
	if err != nil {
		return nil, err
	}
	cPathPieces.Add(int64(len(pieces)))
	partSpan.SetInt("pieces", int64(len(pieces)))
	var order []int
	for _, p := range pieces {
		order = append(order, p...)
	}
	// Bound check: the construction promises all but the final piece have
	// >= 4 vertices. Surface a violation as an error rather than a silent
	// quality regression.
	for i, p := range pieces {
		if len(p) < 4 && i != len(pieces)-1 {
			return nil, fmt.Errorf("solver: internal piece %d has %d < 4 vertices", i, len(p))
		}
	}
	return order, nil
}

// pathPartition splits the vertices of a connected claw-free graph lg
// into vertex-disjoint paths, all of size >= 4 except possibly the last.
func pathPartition(lg graph.Adjacency, skipTwins bool) ([][]int, error) {
	alive := make([]bool, lg.N())
	aliveCount := lg.N()
	var root int
	for v := range alive {
		alive[v] = true
	}
	var pieces [][]int
	var arena []int // reused neighbor scratch across tree rebuilds
	for aliveCount > 0 {
		// Locate any alive vertex to root the DFS.
		root = -1
		for v := 0; v < lg.N(); v++ {
			if alive[v] {
				root = v
				break
			}
		}
		if aliveCount < 4 {
			path, ok := hamPathSmall(lg, alive, aliveCount, root)
			if !ok {
				return nil, fmt.Errorf("solver: connected remainder of size %d has no Hamiltonian path", aliveCount)
			}
			pieces = append(pieces, path)
			break
		}
		var t *spanningTree
		t, arena = newSpanningTree(lg, alive, root, arena)
		if !skipTwins {
			if err := t.eliminateTwins(); err != nil {
				return nil, err
			}
		}
		r := t.lowestBigSubtree(4)
		path, err := t.subtreeAsPath(r)
		if err != nil {
			return nil, err
		}
		for _, v := range path {
			alive[v] = false
			aliveCount--
		}
		pieces = append(pieces, path)
	}
	return pieces, nil
}

// spanningTree is a rooted spanning tree over the alive vertices of lg,
// mutable by the twin-elimination re-hanging.
type spanningTree struct {
	lg       graph.Adjacency
	root     int
	parent   []int   // -1 root, -2 not in tree
	children [][]int // child lists
}

// newSpanningTree runs DFS over alive vertices from root. Neighborhoods
// are enumerated through the Adjacency interface into an arena that
// follows the DFS stack discipline (a frame's span is truncated on pop),
// so walking an implicit line-graph view allocates no per-frame slices.
// The arena is returned for reuse by the next rebuild.
func newSpanningTree(lg graph.Adjacency, alive []bool, root int, arena []int) (*spanningTree, []int) {
	t := &spanningTree{
		lg:       lg,
		root:     root,
		parent:   make([]int, lg.N()),
		children: make([][]int, lg.N()),
	}
	for i := range t.parent {
		t.parent[i] = -2
	}
	t.parent[root] = -1
	type frame struct{ v, base, end, next int }
	arena = lg.AppendNeighbors(arena[:0], root)
	stack := []frame{{v: root, base: 0, end: len(arena), next: 0}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		advanced := false
		for f.next < f.end {
			w := arena[f.next]
			f.next++
			if alive[w] && t.parent[w] == -2 {
				t.parent[w] = f.v
				t.children[f.v] = append(t.children[f.v], w)
				base := len(arena)
				arena = lg.AppendNeighbors(arena, w)
				stack = append(stack, frame{v: w, base: base, end: len(arena), next: base})
				advanced = true
				break
			}
		}
		if !advanced {
			arena = arena[:f.base]
			stack = stack[:len(stack)-1]
		}
	}
	return t, arena
}

func (t *spanningTree) inTree(v int) bool { return t.parent[v] != -2 }
func (t *spanningTree) isLeaf(v int) bool { return t.inTree(v) && len(t.children[v]) == 0 }

// removeChild detaches c from p's child list.
func (t *spanningTree) removeChild(p, c int) {
	ch := t.children[p]
	for i, x := range ch {
		if x == c {
			t.children[p] = append(ch[:i], ch[i+1:]...)
			return
		}
	}
	panic("solver: removeChild: not a child")
}

// eliminateTwins repeatedly resolves pairs of leaf siblings. Each
// resolution re-hangs one twin (or the parent) along an edge of lg whose
// existence claw-freeness guarantees, strictly decreasing the number of
// parents with two leaf children; the loop terminates in O(n) steps.
func (t *spanningTree) eliminateTwins() error {
	for {
		p, l1, l2, found := t.findTwins()
		if !found {
			return nil
		}
		switch {
		case t.lg.HasEdge(l1, l2):
			// Chain the twins: p — l1 — l2.
			t.removeChild(p, l2)
			t.parent[l2] = l1
			t.children[l1] = append(t.children[l1], l2)
		default:
			g := t.parent[p]
			if g < 0 {
				// p is the root with two non-adjacent leaf children and at
				// most two children total: the tree would have 3 vertices,
				// but callers only build trees over >= 4.
				return fmt.Errorf("solver: twin elimination hit root twins on a tree of size >= 4")
			}
			// Claw-freeness at p: {l1, l2, g} ⊆ N(p) cannot be pairwise
			// non-adjacent; l1-l2 was just ruled out, so one twin sees g.
			if !t.lg.HasEdge(l1, g) {
				l1, l2 = l2, l1
			}
			if !t.lg.HasEdge(l1, g) {
				return fmt.Errorf("solver: claw-free invariant violated at parent %d", p)
			}
			// Re-hang: g — l1 — p — l2 (the paper's Figure-free rewiring:
			// remove tree edge (g,p), add (g,l1)).
			t.removeChild(g, p)
			t.removeChild(p, l1)
			t.parent[l1] = g
			t.children[g] = append(t.children[g], l1)
			t.parent[p] = l1
			t.children[l1] = append(t.children[l1], p)
		}
	}
}

// findTwins returns a parent with two leaf children, if any.
func (t *spanningTree) findTwins() (p, l1, l2 int, found bool) {
	for v := 0; v < len(t.parent); v++ {
		if !t.inTree(v) {
			continue
		}
		var leaves []int
		for _, c := range t.children[v] {
			if t.isLeaf(c) {
				leaves = append(leaves, c)
			}
		}
		if len(leaves) >= 2 {
			return v, leaves[0], leaves[1], true
		}
	}
	return 0, 0, 0, false
}

// subtreeSizes computes subtree sizes over the current tree. The tree can
// be deep (line graphs of paths), so it accumulates over an explicit
// preorder instead of recursing.
func (t *spanningTree) subtreeSizes() []int {
	size := make([]int, len(t.parent))
	order := []int{t.root}
	for i := 0; i < len(order); i++ {
		order = append(order, t.children[order[i]]...)
	}
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		size[v]++
		if p := t.parent[v]; p >= 0 {
			size[p] += size[v]
		}
	}
	return size
}

// lowestBigSubtree returns a node with subtree size >= k all of whose
// children have subtree size < k. The root always qualifies as a
// fallback, so one exists whenever the tree has >= k vertices.
func (t *spanningTree) lowestBigSubtree(k int) int {
	size := t.subtreeSizes()
	v := t.root
	for {
		descended := false
		for _, c := range t.children[v] {
			if size[c] >= k {
				v = c
				descended = true
				break
			}
		}
		if !descended {
			return v
		}
	}
}

// subtreeAsPath linearizes the subtree rooted at r, which after twin
// elimination is a path-shaped tree: r has at most two children and each
// child subtree is a downward chain (a 3-node chain is the largest
// possible, since r is the lowest node with >= 4 descendants). The
// returned vertex sequence is a path in lg.
func (t *spanningTree) subtreeAsPath(r int) ([]int, error) {
	chain := func(start int) ([]int, error) {
		var out []int
		v := start
		for {
			out = append(out, v)
			switch len(t.children[v]) {
			case 0:
				return out, nil
			case 1:
				v = t.children[v][0]
			default:
				return nil, fmt.Errorf("solver: child subtree at %d is not a chain", v)
			}
		}
	}
	switch len(t.children[r]) {
	case 0:
		return []int{r}, nil
	case 1:
		down, err := chain(t.children[r][0])
		if err != nil {
			return nil, err
		}
		return append([]int{r}, down...), nil
	case 2:
		a, err := chain(t.children[r][0])
		if err != nil {
			return nil, err
		}
		b, err := chain(t.children[r][1])
		if err != nil {
			return nil, err
		}
		// Reverse a, then r, then b: leaf_a ... child_a r child_b ... leaf_b.
		out := make([]int, 0, len(a)+1+len(b))
		for i := len(a) - 1; i >= 0; i-- {
			out = append(out, a[i])
		}
		out = append(out, r)
		out = append(out, b...)
		return out, nil
	default:
		return nil, fmt.Errorf("solver: node %d has %d > 2 children in claw-free DFS tree", r, len(t.children[r]))
	}
}

// hamPathSmall finds a Hamiltonian path over the <= 3 alive vertices
// (any connected graph on at most 3 vertices has one), starting the
// search at root's component.
func hamPathSmall(lg graph.Adjacency, alive []bool, count, root int) ([]int, bool) {
	var verts []int
	for v := 0; v < lg.N(); v++ {
		if alive[v] {
			verts = append(verts, v)
		}
	}
	if len(verts) != count {
		return nil, false
	}
	switch count {
	case 0:
		return nil, true
	case 1:
		return verts, true
	}
	// Brute force over the tiny vertex set.
	perm := make([]int, len(verts))
	copy(perm, verts)
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == len(perm) {
			return true
		}
		for i := k; i < len(perm); i++ {
			perm[k], perm[i] = perm[i], perm[k]
			if lg.HasEdge(perm[k-1], perm[k]) && rec(k+1) {
				return true
			}
			perm[k], perm[i] = perm[i], perm[k]
		}
		return false
	}
	for i := 0; i < len(perm); i++ {
		perm[0], perm[i] = perm[i], perm[0]
		if rec(1) {
			return perm, true
		}
		perm[0], perm[i] = perm[i], perm[0]
	}
	return nil, false
}

// ApproxCostBound returns the Theorem 3.1 guarantee for g:
// sum over components of m_i + floor((m_i − 1)/4), plus β₀ startups.
func ApproxCostBound(g *graph.Graph) int {
	bound := 0
	for _, m := range componentEdgeCounts(g) {
		if m > 0 {
			bound += m + (m-1)/4 + 1
		}
	}
	return bound
}

// componentEdgeCounts returns the edge count of each component in one
// pass over the edge list.
func componentEdgeCounts(g *graph.Graph) []int {
	comps := g.Components()
	compID := make([]int, g.N())
	for ci, comp := range comps {
		for _, v := range comp {
			compID[v] = ci
		}
	}
	counts := make([]int, len(comps))
	for _, e := range g.Edges() {
		counts[compID[e.U]]++
	}
	return counts
}
