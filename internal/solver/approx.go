package solver

import (
	"context"
	"fmt"

	"joinpebble/internal/bitset"
	"joinpebble/internal/core"
	"joinpebble/internal/graph"
	"joinpebble/internal/obs"
)

var (
	tPathPartition = obs.ScopedTimer("solver/phase/path_partition")
	cPathPieces    = obs.ScopedCounter("solver/approx/path_pieces")
)

// Approx125 implements the constructive proof of Theorem 3.1 / Lemma 3.1:
// for a connected component with m edges it finds a pebbling scheme of
// effective cost at most m + floor((m−1)/4) — the paper's 1.25m bound
// (exactly 1.25m−1 when 4 divides m). Per component it partitions the
// vertices of the (claw-free) line graph into vertex-disjoint paths, all
// but the last of size at least 4, by repeatedly:
//
//  1. building a DFS tree of the remaining line graph (every node has at
//     most two children, else three pairwise non-adjacent children would
//     form a claw with their parent);
//  2. eliminating "twins" (two leaf children of one parent) by the
//     re-hanging argument in the paper: claw-freeness forces one twin to
//     be adjacent to the grandparent, so the subtree can be re-hung into
//     a chain;
//  3. stripping the subtree rooted at the lowest node with >= 4
//     descendants — after twin elimination that subtree is a path — and
//     observing that the rest of the tree still spans the remainder, so
//     the remaining line graph stays connected.
//
// The concatenated paths form a TSP tour with at most one jump per
// stripped piece, giving J <= floor((m−1)/4). The implementation
// recomputes the DFS tree after each strip (O(m·|E(L)|) overall) instead
// of the paper's linear-time bookkeeping; the produced schemes are the
// same quality.
type Approx125 struct {
	// SkipTwinElimination disables step 2 — an ablation knob for the E19
	// experiment. Without twin elimination the stripped subtree need not
	// be a path and the construction legitimately fails on some inputs
	// (Solve returns an error); never set it outside experiments.
	SkipTwinElimination bool

	// Materialize makes the construction run over an explicitly built
	// map-backed line graph (graph.LineGraphReference) instead of the
	// implicit graph.LineGraphView. The view is strictly cheaper — it
	// avoids the O(Σ deg²) line-graph edge set entirely — so this knob
	// exists only for differential tests and the legacy arm of
	// cmd/bench's before/after measurements.
	Materialize bool
}

// The two display names, as constants so they can double as root span
// names (the obsnames analyzer requires constant span names).
const (
	nameApprox       = "approx-1.25"
	nameApproxNoTwin = "approx-1.25(no-twin-elim)"
)

// Name implements Solver.
func (a Approx125) Name() string {
	if a.SkipTwinElimination {
		return nameApproxNoTwin
	}
	return nameApprox
}

// Solve implements Solver.
func (a Approx125) Solve(g *graph.Graph) (core.Scheme, error) {
	return a.SolveContext(context.Background(), g)
}

// SolveContext implements ContextSolver.
func (a Approx125) SolveContext(ctx context.Context, g *graph.Graph) (core.Scheme, error) {
	fn := func(ctx context.Context, cg *graph.Graph, sp *obs.Span) ([]int, error) {
		return approxComponentOrder(ctx, cg, sp, a.SkipTwinElimination, a.Materialize)
	}
	// Two literal call sites so the span name stays a compile-time
	// constant either way.
	if a.SkipTwinElimination {
		return solvePerComponent(ctx, g, nameApproxNoTwin, fn)
	}
	return solvePerComponent(ctx, g, nameApprox, fn)
}

func approxComponentOrder(ctx context.Context, cg *graph.Graph, sp *obs.Span, skipTwins, materialize bool) ([]int, error) {
	lgSpan := sp.Start("line_graph")
	var lg graph.Adjacency
	if materialize {
		lg = graph.LineGraphReference(cg)
	} else {
		lg = graph.NewLineGraphView(cg)
	}
	lgSpan.End()
	partStart := obs.Now()
	partSpan := sp.Start("path_partition")
	pieces, err := pathPartition(lg, skipTwins)
	partSpan.End()
	tPathPartition.Observe(ctx, obs.Since(partStart))
	if err != nil {
		return nil, err
	}
	cPathPieces.Add(ctx, int64(len(pieces)))
	partSpan.SetInt("pieces", int64(len(pieces)))
	var order []int
	for _, p := range pieces {
		order = append(order, p...)
	}
	// Bound check: the construction promises all but the final piece have
	// >= 4 vertices. Surface a violation as an error rather than a silent
	// quality regression.
	for i, p := range pieces {
		if len(p) < 4 && i != len(pieces)-1 {
			return nil, fmt.Errorf("solver: internal piece %d has %d < 4 vertices", i, len(p))
		}
	}
	return order, nil
}

// pathPartition splits the vertices of a connected claw-free graph lg
// into vertex-disjoint paths, all of size >= 4 except possibly the last.
//
// All working state — parent links, child arrays, subtree sizes, the
// alive set, DFS frames, and neighbor scratch — lives in one
// approxArena allocated here and reused across every spanning-tree
// rebuild, so the ~m/4 strip iterations allocate only the output
// pieces themselves.
func pathPartition(lg graph.Adjacency, skipTwins bool) ([][]int, error) {
	n := lg.N()
	ar := newApproxArena(n)
	aliveCount := n
	for v := 0; v < n; v++ {
		ar.alive.Set(v)
	}
	t := spanningTree{lg: lg, ar: ar}
	var pieces [][]int
	for aliveCount > 0 {
		// Root the DFS at the lowest alive vertex.
		root := ar.alive.NextSet(0)
		if root < 0 {
			return nil, fmt.Errorf("solver: alive count %d but no alive vertex", aliveCount)
		}
		if aliveCount < 4 {
			path, ok := hamPathSmall(lg, ar.alive, aliveCount, root)
			if !ok {
				return nil, fmt.Errorf("solver: connected remainder of size %d has no Hamiltonian path", aliveCount)
			}
			pieces = append(pieces, path)
			break
		}
		if err := t.rebuild(root); err != nil {
			return nil, err
		}
		if !skipTwins {
			if err := t.eliminateTwins(); err != nil {
				return nil, err
			}
		}
		r := t.lowestBigSubtree(4)
		path, err := t.subtreeAsPath(r)
		if err != nil {
			return nil, err
		}
		for _, v := range path {
			ar.alive.Clear(v)
			aliveCount--
		}
		pieces = append(pieces, path)
	}
	return pieces, nil
}

// dfsFrame is one spanning-tree DFS stack entry: vertex v with its
// neighbor span [base, end) in the arena's nb scratch, next being the
// scan cursor within the span.
type dfsFrame struct{ v, base, end, next int }

// approxArena is the per-component scratch for pathPartition. Every
// slice is sized to the component's line-graph order n once and reused
// across all spanning-tree rebuilds, twin eliminations, and subtree-size
// passes of that component; nothing in it escapes a partition call.
//
// Child lists exploit the claw-free DFS-tree invariant that no node ever
// has more than two children (three children are pairwise non-adjacent
// in a DFS tree and would form a claw with their parent; twin
// elimination's re-hangings only move children to leaves, preserving the
// bound), so they are fixed [2]int32 slots plus a fill count instead of
// per-node slices.
type approxArena struct {
	parent []int      // -1 root, -2 not in tree
	kids   [][2]int32 // child slots, in insertion order
	nkid   []uint8    // filled child slots per node
	size   []int      // subtree sizes, valid after subtreeSizes
	order  []int      // preorder scratch for subtreeSizes
	stack  []dfsFrame // DFS frames for rebuild
	alive  bitset.Bitset
	nb     []int // DFS neighbor scratch, stack-disciplined spans
}

func newApproxArena(n int) *approxArena {
	return &approxArena{
		parent: make([]int, n),
		kids:   make([][2]int32, n),
		nkid:   make([]uint8, n),
		size:   make([]int, n),
		order:  make([]int, n),
		stack:  make([]dfsFrame, n),
		alive:  bitset.New(n),
	}
}

// spanningTree is a rooted spanning tree over the alive vertices of lg,
// stored in the arena and mutable by the twin-elimination re-hanging.
type spanningTree struct {
	lg   graph.Adjacency
	root int
	ar   *approxArena
}

// rebuild runs DFS over the arena's alive vertices from root, replacing
// the previous tree. Neighborhoods are enumerated through the Adjacency
// interface into the arena's nb scratch, which follows the DFS stack
// discipline (a frame's span is truncated on pop), so walking an
// implicit line-graph view allocates no per-frame slices. The only
// possible allocation is nb growth inside AppendNeighbors, which stops
// once nb reaches the component's maximum stacked-neighborhood size.
func (t *spanningTree) rebuild(root int) error {
	ar := t.ar
	t.root = root
	for i := range ar.parent {
		ar.parent[i] = -2
		ar.nkid[i] = 0
	}
	ar.parent[root] = -1
	ar.nb = t.lg.AppendNeighbors(ar.nb[:0], root)
	ar.stack[0] = dfsFrame{v: root, base: 0, end: len(ar.nb), next: 0}
	sp := 1
	for sp > 0 {
		f := &ar.stack[sp-1]
		advanced := false
		for f.next < f.end {
			w := ar.nb[f.next]
			f.next++
			if ar.alive.Test(w) && ar.parent[w] == -2 {
				ar.parent[w] = f.v
				if !t.addChild(f.v, w) {
					return fmt.Errorf("solver: node %d has > 2 children in claw-free DFS tree", f.v)
				}
				base := len(ar.nb)
				ar.nb = t.lg.AppendNeighbors(ar.nb, w)
				ar.stack[sp] = dfsFrame{v: w, base: base, end: len(ar.nb), next: base}
				sp++
				advanced = true
				break
			}
		}
		if !advanced {
			ar.nb = ar.nb[:f.base]
			sp--
		}
	}
	return nil
}

func (t *spanningTree) inTree(v int) bool { return t.ar.parent[v] != -2 }
func (t *spanningTree) isLeaf(v int) bool { return t.inTree(v) && t.ar.nkid[v] == 0 }

// addChild appends c to p's child slots, reporting false on overflow
// (impossible while lg is claw-free — see approxArena).
//
//joinpebble:hotpath
func (t *spanningTree) addChild(p, c int) bool {
	ar := t.ar
	if ar.nkid[p] >= 2 {
		return false
	}
	ar.kids[p][ar.nkid[p]] = int32(c)
	ar.nkid[p]++
	return true
}

// removeChild detaches c from p's child slots, preserving slot order.
//
//joinpebble:hotpath
func (t *spanningTree) removeChild(p, c int) {
	ar := t.ar
	switch {
	case ar.nkid[p] >= 1 && ar.kids[p][0] == int32(c):
		ar.kids[p][0] = ar.kids[p][1]
		ar.nkid[p]--
	case ar.nkid[p] == 2 && ar.kids[p][1] == int32(c):
		ar.nkid[p]--
	default:
		panic("solver: removeChild: not a child")
	}
}

// eliminateTwins repeatedly resolves pairs of leaf siblings. Each
// resolution re-hangs one twin (or the parent) along an edge of lg whose
// existence claw-freeness guarantees, strictly decreasing the number of
// parents with two leaf children; the loop terminates in O(n) steps.
func (t *spanningTree) eliminateTwins() error {
	for {
		p, l1, l2, found := t.findTwins()
		if !found {
			return nil
		}
		switch {
		case t.lg.HasEdge(l1, l2):
			// Chain the twins: p — l1 — l2. The addChild targets are a
			// leaf (l1) and nodes that just lost a child, so the two-slot
			// bound cannot overflow here or in the re-hang below.
			t.removeChild(p, l2)
			t.ar.parent[l2] = l1
			t.addChild(l1, l2)
		default:
			g := t.ar.parent[p]
			if g < 0 {
				// p is the root with two non-adjacent leaf children and at
				// most two children total: the tree would have 3 vertices,
				// but callers only build trees over >= 4.
				return fmt.Errorf("solver: twin elimination hit root twins on a tree of size >= 4")
			}
			// Claw-freeness at p: {l1, l2, g} ⊆ N(p) cannot be pairwise
			// non-adjacent; l1-l2 was just ruled out, so one twin sees g.
			if !t.lg.HasEdge(l1, g) {
				l1, l2 = l2, l1
			}
			if !t.lg.HasEdge(l1, g) {
				return fmt.Errorf("solver: claw-free invariant violated at parent %d", p)
			}
			// Re-hang: g — l1 — p — l2 (the paper's Figure-free rewiring:
			// remove tree edge (g,p), add (g,l1)).
			t.removeChild(g, p)
			t.removeChild(p, l1)
			t.ar.parent[l1] = g
			t.addChild(g, l1)
			t.ar.parent[p] = l1
			t.addChild(l1, p)
		}
	}
}

// findTwins returns a parent with two leaf children, if any. Children
// are inspected in slot order, so the pair returned is the same pair the
// child-list representation produced.
//
//joinpebble:hotpath
func (t *spanningTree) findTwins() (p, l1, l2 int, found bool) {
	ar := t.ar
	for v := 0; v < len(ar.parent); v++ {
		if ar.parent[v] == -2 {
			continue
		}
		first := -1
		for c := 0; c < int(ar.nkid[v]); c++ {
			w := int(ar.kids[v][c])
			if ar.nkid[w] != 0 { // children are in the tree, so leaf ⇔ no kids
				continue
			}
			if first < 0 {
				first = w
			} else {
				return v, first, w, true
			}
		}
	}
	return 0, 0, 0, false
}

// subtreeSizes fills the arena's size table over the current tree and
// returns it. The tree can be deep (line graphs of paths), so it
// accumulates over an explicit preorder — written into the arena's
// order scratch by index — instead of recursing.
//
//joinpebble:hotpath
func (t *spanningTree) subtreeSizes() []int {
	ar := t.ar
	size := ar.size
	for i := range size {
		size[i] = 0
	}
	order := ar.order
	order[0] = t.root
	cnt := 1
	for i := 0; i < cnt; i++ {
		v := order[i]
		for c := 0; c < int(ar.nkid[v]); c++ {
			order[cnt] = int(ar.kids[v][c])
			cnt++
		}
	}
	for i := cnt - 1; i >= 0; i-- {
		v := order[i]
		size[v]++
		if p := ar.parent[v]; p >= 0 {
			size[p] += size[v]
		}
	}
	return size
}

// lowestBigSubtree returns a node with subtree size >= k all of whose
// children have subtree size < k. The root always qualifies as a
// fallback, so one exists whenever the tree has >= k vertices. The size
// table it computes stays valid in the arena until the next rebuild or
// re-hang; subtreeAsPath reads it to size its output exactly.
//
//joinpebble:hotpath
func (t *spanningTree) lowestBigSubtree(k int) int {
	size := t.subtreeSizes()
	ar := t.ar
	v := t.root
	for {
		descended := false
		for c := 0; c < int(ar.nkid[v]); c++ {
			if w := int(ar.kids[v][c]); size[w] >= k {
				v = w
				descended = true
				break
			}
		}
		if !descended {
			return v
		}
	}
}

// subtreeAsPath linearizes the subtree rooted at r, which after twin
// elimination is a path-shaped tree: r has at most two children and each
// child subtree is a downward chain (a 3-node chain is the largest
// possible, since r is the lowest node with >= 4 descendants). The
// returned vertex sequence is a path in lg. It is the output of a strip,
// so it is the one slice the partition loop allocates per iteration —
// sized exactly from the arena's still-valid subtree-size table.
func (t *spanningTree) subtreeAsPath(r int) ([]int, error) {
	ar := t.ar
	out := make([]int, 0, ar.size[r])
	// chain walks the downward chain from start, appending to out; the
	// exact capacity above means the appends never reallocate.
	chain := func(start int) ([]int, error) {
		v := start
		for {
			out = append(out, v)
			switch ar.nkid[v] {
			case 0:
				return out, nil
			case 1:
				v = int(ar.kids[v][0])
			default:
				return nil, fmt.Errorf("solver: child subtree at %d is not a chain", v)
			}
		}
	}
	switch ar.nkid[r] {
	case 0:
		return append(out, r), nil
	case 1:
		out = append(out, r)
		return chain(int(ar.kids[r][0]))
	default:
		var err error
		out, err = chain(int(ar.kids[r][0]))
		if err != nil {
			return nil, err
		}
		// Reverse a, then r, then b: leaf_a ... child_a r child_b ... leaf_b.
		for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
			out[i], out[j] = out[j], out[i]
		}
		out = append(out, r)
		return chain(int(ar.kids[r][1]))
	}
}

// hamPathSmall finds a Hamiltonian path over the <= 3 alive vertices
// (any connected graph on at most 3 vertices has one), starting the
// search at root's component.
func hamPathSmall(lg graph.Adjacency, alive bitset.Bitset, count, root int) ([]int, bool) {
	var verts []int
	for v := 0; v < lg.N(); v++ {
		if alive.Test(v) {
			verts = append(verts, v)
		}
	}
	if len(verts) != count {
		return nil, false
	}
	switch count {
	case 0:
		return nil, true
	case 1:
		return verts, true
	}
	// Brute force over the tiny vertex set.
	perm := make([]int, len(verts))
	copy(perm, verts)
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == len(perm) {
			return true
		}
		for i := k; i < len(perm); i++ {
			perm[k], perm[i] = perm[i], perm[k]
			if lg.HasEdge(perm[k-1], perm[k]) && rec(k+1) {
				return true
			}
			perm[k], perm[i] = perm[i], perm[k]
		}
		return false
	}
	for i := 0; i < len(perm); i++ {
		perm[0], perm[i] = perm[i], perm[0]
		if rec(1) {
			return perm, true
		}
		perm[0], perm[i] = perm[i], perm[0]
	}
	return nil, false
}

// ApproxCostBound returns the Theorem 3.1 guarantee for g:
// sum over components of m_i + floor((m_i − 1)/4), plus β₀ startups.
func ApproxCostBound(g *graph.Graph) int {
	bound := 0
	for _, m := range componentEdgeCounts(g) {
		if m > 0 {
			bound += m + (m-1)/4 + 1
		}
	}
	return bound
}

// componentEdgeCounts returns the edge count of each component in one
// pass over the edge list.
func componentEdgeCounts(g *graph.Graph) []int {
	comps := g.Components()
	compID := make([]int, g.N())
	for ci, comp := range comps {
		for _, v := range comp {
			compID[v] = ci
		}
	}
	counts := make([]int, len(comps))
	for _, e := range g.Edges() {
		counts[compID[e.U]]++
	}
	return counts
}
