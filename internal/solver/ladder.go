package solver

import (
	"context"
	"errors"
	"fmt"
	"time"

	"joinpebble/internal/core"
	"joinpebble/internal/graph"
	"joinpebble/internal/obs"
	"joinpebble/internal/tsp"
)

// This file is the ladder-as-data core shared by the engine planner and
// the routing layer. A solve ladder is an ordered slice of Rung
// descriptors; WalkLadder owns the mechanics every caller used to
// hand-roll — per-rung soft deadlines, absorbable-failure
// classification, and the single record hook through which attempt
// provenance is reported — so rung policy lives in exactly one place
// and callers only describe *what* the rungs are.

// Rung is one step of a solve ladder as data: a provenance name and the
// attempt that tries to produce a verified scheme.
type Rung struct {
	// Name labels the rung in attempt records, scope events, and
	// profiling labels ("exact", "approx-1.25", "cached", ...).
	Name string
	// Optional marks a rung whose failure is absorbed unconditionally
	// and silently: the walk falls through without counting a
	// degradation, whatever the error. The scheme-cache rung is
	// optional — a miss is not a failure of the run.
	Optional bool
	// Attempt runs the rung under ctx and returns a verified scheme
	// with its cost.
	Attempt func(ctx context.Context) (core.Scheme, int, error)
}

// DegradeCause classifies why a rung failure was (or was not)
// absorbable by the ladder.
type DegradeCause int

const (
	// CauseNone: the rung did not fail.
	CauseNone DegradeCause = iota
	// CauseBudget: the search budget tripped (ErrBudgetExceeded).
	CauseBudget
	// CauseDeadline: a per-rung soft deadline expired while the
	// caller's own context was still live.
	CauseDeadline
	// CausePanic: a recovered component panic (ErrPanic).
	CausePanic
	// CauseStructure: a structural rejection (ErrStructure).
	CauseStructure
	// CauseFatal: a failure the ladder never absorbs — the caller's own
	// cancellation or an error outside the absorbable sentinels.
	CauseFatal
)

// ClassifyDegrade maps a rung failure to its cause. The caller's own
// cancellation or expired deadline is always CauseFatal: lower rungs
// would inherit a dead context, and the caller asked to stop.
func ClassifyDegrade(ctx context.Context, err error) DegradeCause {
	if ctx.Err() != nil {
		return CauseFatal
	}
	switch {
	case errors.Is(err, ErrBudgetExceeded):
		return CauseBudget
	case errors.Is(err, context.DeadlineExceeded):
		return CauseDeadline
	case errors.Is(err, ErrPanic):
		return CausePanic
	case errors.Is(err, ErrStructure):
		return CauseStructure
	default:
		return CauseFatal
	}
}

// RungOutcome is what WalkLadder reports to the record hook, once per
// attempted rung — the one place attempt provenance is emitted.
type RungOutcome struct {
	// Name and Index identify the rung; Optional copies its flag.
	Name     string
	Index    int
	Optional bool
	// Err is nil on success; Cause classifies a failure.
	Err   error
	Cause DegradeCause
	// Absorbed reports that the walk continued past this failure (an
	// optional skip or a counted degradation).
	Absorbed bool
	// Elapsed is the rung's wall time.
	Elapsed time.Duration
}

// LadderPolicy configures how WalkLadder responds to rung failures. The
// zero value degrades down the ladder, giving each non-final rung half
// the remaining deadline.
type LadderPolicy struct {
	// Off disables degradation: the first non-optional failure is the
	// walk's failure.
	Off bool
	// RungFraction is the share of the caller's remaining deadline a
	// non-final rung may spend before falling through (0 means 0.5).
	// The final rung always gets everything left; callers without a
	// deadline run every rung unbounded.
	RungFraction float64
}

// RungError is the failure WalkLadder returns: the rung that ended the
// walk and its error, unwrapped for sentinel matching.
type RungError struct {
	Rung string
	Err  error
}

func (e *RungError) Error() string { return fmt.Sprintf("rung %s: %v", e.Rung, e.Err) }
func (e *RungError) Unwrap() error { return e.Err }

// WalkResult is a successful ladder walk: the verified scheme, the rung
// that produced it, and how many non-optional rungs failed on the way
// down (zero means the walk did not degrade).
type WalkResult struct {
	Scheme core.Scheme
	Cost   int
	Rung   string
	// Degraded counts the absorbed non-optional failures before
	// success.
	Degraded int
}

// WalkLadder tries rungs in order until one produces a scheme. Every
// attempted rung is reported to record (when non-nil) exactly once. A
// non-optional failure ends the walk when the policy is Off, the rung
// is last, or the cause is fatal; otherwise it is absorbed and the walk
// falls through. Optional-rung failures are always absorbed unless the
// caller's own context is dead.
func WalkLadder(ctx context.Context, rungs []Rung, pol LadderPolicy, record func(RungOutcome)) (WalkResult, error) {
	if len(rungs) == 0 {
		return WalkResult{}, errors.New("solver: empty ladder")
	}
	degraded := 0
	for i, r := range rungs {
		final := i == len(rungs)-1
		rctx, cancel := rungDeadline(ctx, pol, final || r.Optional)
		start := obs.Now()
		scheme, cost, err := r.Attempt(rctx)
		cancel()
		elapsed := obs.Since(start)
		if err == nil {
			if record != nil {
				record(RungOutcome{Name: r.Name, Index: i, Optional: r.Optional, Elapsed: elapsed})
			}
			return WalkResult{Scheme: scheme, Cost: cost, Rung: r.Name, Degraded: degraded}, nil
		}
		cause := ClassifyDegrade(ctx, err)
		absorbed := !final && (r.Optional || (!pol.Off && cause != CauseFatal))
		if record != nil {
			record(RungOutcome{Name: r.Name, Index: i, Optional: r.Optional, Err: err, Cause: cause, Absorbed: absorbed, Elapsed: elapsed})
		}
		if !absorbed {
			return WalkResult{}, &RungError{Rung: r.Name, Err: err}
		}
		if !r.Optional {
			degraded++
		}
	}
	// Unreachable while the last rung is non-optional (the engine always
	// ends with an unconditional rung); a fully optional ladder that
	// drains reports the exhaustion explicitly.
	return WalkResult{}, errors.New("solver: ladder exhausted without a scheme")
}

// rungDeadline carves a non-final rung's soft deadline out of the
// caller's remaining budget: RungFraction (default half) of the time
// left, so every lower rung keeps a share and the final rung gets
// whatever remains.
func rungDeadline(ctx context.Context, pol LadderPolicy, unbounded bool) (context.Context, context.CancelFunc) {
	if unbounded || pol.Off {
		return ctx, func() {}
	}
	dl, ok := ctx.Deadline()
	if !ok {
		return ctx, func() {}
	}
	remaining := obs.Until(dl)
	if remaining <= 0 {
		return ctx, func() {}
	}
	frac := pol.RungFraction
	if frac <= 0 || frac >= 1 {
		frac = 0.5
	}
	return context.WithDeadline(ctx, obs.Now().Add(time.Duration(float64(remaining)*frac)))
}

// RouteSpec describes one rung of the routing ladder as data: the
// structural predicate that admits an instance, the solver implementing
// the rung, and the human-readable justification plan output carries.
// PlanRoute, RouteSolver and RouteReason all read the same table, so
// the classification, the implementation, and the explanation cannot
// drift apart.
type RouteSpec struct {
	Route  Route
	Reason string
	// Applies reports whether the rung handles g; the table's last
	// entry must apply to everything.
	Applies func(g *graph.Graph, exactLimit int) bool
	// New builds the implementing solver.
	New func(exactLimit int) Solver
}

// RouteTable returns the routing ladder in the order PlanRoute tries
// it: perfect (Theorems 3.2/4.1), exact under the search budget, and
// the universal Theorem 3.1 approximation.
func RouteTable() []RouteSpec {
	return []RouteSpec{
		{
			Route:   RoutePerfect,
			Reason:  "all components complete bipartite (Thm 4.1)",
			Applies: func(g *graph.Graph, _ int) bool { return IsEquijoinGraph(g) },
			New:     func(int) Solver { return Equijoin{} },
		},
		{
			Route:  RouteExact,
			Reason: "every component within the exact search budget",
			Applies: func(g *graph.Graph, exactLimit int) bool {
				for _, m := range componentEdgeCounts(g) {
					if m > exactLimit {
						return false
					}
				}
				return true
			},
			New: func(exactLimit int) Solver { return Exact{MaxEdges: exactLimit} },
		},
		{
			Route:   RouteApprox,
			Reason:  "1.25-approximation (Thm 3.1)",
			Applies: func(*graph.Graph, int) bool { return true },
			New:     func(int) Solver { return Approx125{} },
		},
	}
}

// routeSpec returns the table row for r (the last row when r is not a
// table route, mirroring RouteSolver's historical default).
func routeSpec(r Route) RouteSpec {
	table := RouteTable()
	for _, spec := range table {
		if spec.Route == r {
			return spec
		}
	}
	return table[len(table)-1]
}

// RouteReason returns the routing justification for r, from the same
// table PlanRoute classifies with.
func RouteReason(r Route) string { return routeSpec(r).Reason }

func normalizeExactLimit(exactLimit int) int {
	if exactLimit == 0 {
		return tsp.MaxExactCities
	}
	return exactLimit
}
