package solver

import (
	"math/rand"
	"testing"
	"testing/quick"

	"joinpebble/internal/core"
	"joinpebble/internal/family"
	"joinpebble/internal/graph"
)

// randomConnectedBip returns a random connected bipartite graph with a
// feasible random edge count, small enough for the exact solver.
func randomConnectedBip(r *rand.Rand) *graph.Graph {
	nl, nr := 2+r.Intn(3), 2+r.Intn(3)
	minM, maxM := nl+nr-1, nl*nr
	m := minM + r.Intn(maxM-minM+1)
	if m > 14 {
		m = 14
	}
	if m < minM {
		m = minM
	}
	return graph.RandomConnectedBipartite(r, nl, nr, m).Graph()
}

func TestExactOnKnownGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int // optimal π̂
	}{
		{"single edge", graph.Matching(1).Graph(), 2},
		{"matching-3", graph.Matching(3).Graph(), 6},      // Lemma 2.4: 2m
		{"path-4", graph.PathBipartite(4).Graph(), 5},     // perfect: m+1
		{"K23", graph.CompleteBipartite(2, 3).Graph(), 7}, // perfect: m+1
		{"cycle-6", graph.CycleBipartite(6).Graph(), 7},   // perfect: m+1
		{"spider-4", family.Spider(4).Graph(), family.SpiderOptimalEffectiveCost(4) + 1},
	}
	for _, c := range cases {
		scheme, cost, err := SolveAndVerify(Exact{}, c.g)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if cost != c.want {
			t.Fatalf("%s: π̂=%d want %d", c.name, cost, c.want)
		}
		if len(scheme) == 0 {
			t.Fatalf("%s: empty scheme", c.name)
		}
	}
}

func TestExactIsOptimalAgainstBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := &quick.Config{MaxCount: 40, Rand: rng}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomConnectedBip(r)
		_, cost, err := SolveAndVerify(Exact{}, g)
		if err != nil {
			return false
		}
		return cost >= core.LowerBound(g) && cost <= core.UpperBound(g)
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

func TestNoSolverBeatsExact(t *testing.T) {
	// The exact solver is ground truth: every other solver's verified
	// cost must be >= exact on the same graph.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		g := randomConnectedBip(rng)
		_, optimal, err := SolveAndVerify(Exact{}, g)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range []Solver{Naive{}, Greedy{}, GreedyImproved{}, PathCover{}, CycleCover{}, Approx125{}} {
			_, cost, err := SolveAndVerify(s, g)
			if err != nil {
				t.Fatalf("trial %d: %s: %v", trial, s.Name(), err)
			}
			if cost < optimal {
				t.Fatalf("trial %d: %s cost %d beats exact %d on %v", trial, s.Name(), cost, optimal, g)
			}
		}
	}
}

func TestExactAdditivity(t *testing.T) {
	// Lemma 2.2 observed computationally: π̂(G ⊔ H) = π̂(G) + π̂(H).
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 15; trial++ {
		g := graph.RandomConnectedBipartite(rng, 2, 3, 5).Graph()
		h := graph.RandomConnectedBipartite(rng, 3, 2, 6).Graph()
		u := graph.DisjointUnion(g, h)
		cg, err1 := OptimalCost(g)
		ch, err2 := OptimalCost(h)
		cu, err3 := OptimalCost(u)
		if err1 != nil || err2 != nil || err3 != nil {
			t.Fatal(err1, err2, err3)
		}
		if cu != cg+ch {
			t.Fatalf("trial %d: π̂(G⊔H)=%d, π̂(G)+π̂(H)=%d", trial, cu, cg+ch)
		}
	}
}

func TestEquijoinPerfectOnCompleteBipartite(t *testing.T) {
	// Lemma 3.2 / Theorem 3.2: complete bipartite graphs pebble
	// perfectly via the boustrophedon order.
	for _, kl := range [][2]int{{1, 1}, {1, 5}, {2, 2}, {3, 4}, {5, 5}, {7, 3}} {
		g := graph.CompleteBipartite(kl[0], kl[1]).Graph()
		scheme, cost, err := SolveAndVerify(Equijoin{}, g)
		if err != nil {
			t.Fatalf("K_{%d,%d}: %v", kl[0], kl[1], err)
		}
		if cost != g.M()+1 {
			t.Fatalf("K_{%d,%d}: π̂=%d want m+1=%d", kl[0], kl[1], cost, g.M()+1)
		}
		if !core.Perfect(g, scheme) {
			t.Fatalf("K_{%d,%d}: scheme not perfect", kl[0], kl[1])
		}
	}
}

func TestEquijoinOnUnionOfCompleteBipartite(t *testing.T) {
	// An equijoin graph: disjoint union of complete bipartite components
	// (one per join value). Theorem 3.2: pebbled perfectly overall.
	u := graph.DisjointUnion(
		graph.CompleteBipartite(2, 3).Graph(),
		graph.DisjointUnion(graph.CompleteBipartite(1, 4).Graph(), graph.CompleteBipartite(3, 3).Graph()),
	)
	scheme, cost, err := SolveAndVerify(Equijoin{}, u)
	if err != nil {
		t.Fatal(err)
	}
	if !core.Perfect(u, scheme) {
		t.Fatal("equijoin union should pebble perfectly")
	}
	if want := u.M() + core.Betti0(u); cost != want {
		t.Fatalf("π̂=%d want m+β₀=%d", cost, want)
	}
}

func TestEquijoinRejectsNonCompleteBipartite(t *testing.T) {
	g := graph.PathBipartite(3).Graph() // path of 3 edges is not complete bipartite
	if _, err := (Equijoin{}).Solve(g); err == nil {
		t.Fatal("path must be rejected by the equijoin solver")
	}
	tri := graph.New(3)
	tri.AddEdge(0, 1)
	tri.AddEdge(1, 2)
	tri.AddEdge(2, 0)
	if _, err := (Equijoin{}).Solve(tri); err == nil {
		t.Fatal("triangle must be rejected")
	}
}

func TestEquijoinMatchesExact(t *testing.T) {
	// On equijoin graphs, the linear-time pebbler must equal the
	// exponential exact solver (Theorem 4.1).
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		g := graph.CompleteBipartite(1+rng.Intn(3), 1+rng.Intn(4)).Graph()
		_, ce, err := SolveAndVerify(Exact{}, g)
		if err != nil {
			t.Fatal(err)
		}
		_, cq, err := SolveAndVerify(Equijoin{}, g)
		if err != nil {
			t.Fatal(err)
		}
		if ce != cq {
			t.Fatalf("trial %d: equijoin=%d exact=%d", trial, cq, ce)
		}
	}
}

func TestIsEquijoinGraph(t *testing.T) {
	if !IsEquijoinGraph(graph.CompleteBipartite(3, 4).Graph()) {
		t.Fatal("K_{3,4} is an equijoin graph")
	}
	if !IsEquijoinGraph(graph.Matching(4).Graph()) {
		t.Fatal("a matching is an equijoin graph (K_{1,1} components)")
	}
	if IsEquijoinGraph(graph.PathBipartite(3).Graph()) {
		t.Fatal("P4 is not an equijoin graph")
	}
	if IsEquijoinGraph(family.Spider(3).Graph()) {
		t.Fatal("the spider is not an equijoin graph")
	}
}

func TestMatchingSolverLemma24(t *testing.T) {
	for _, m := range []int{1, 2, 5, 16} {
		g := graph.Matching(m).Graph()
		scheme, cost, err := SolveAndVerify(MatchingSolver{}, g)
		if err != nil {
			t.Fatal(err)
		}
		if cost != 2*m {
			t.Fatalf("m=%d: π̂=%d want 2m (Lemma 2.4)", m, cost)
		}
		if eff := scheme.EffectiveCost(g); eff != m {
			t.Fatalf("m=%d: π=%d want m", m, eff)
		}
	}
	if _, err := (MatchingSolver{}).Solve(graph.PathBipartite(2).Graph()); err == nil {
		t.Fatal("non-matching must be rejected")
	}
}

func TestApprox125Bound(t *testing.T) {
	// Theorem 3.1: the DFS-partition scheme costs at most
	// m + floor((m-1)/4) + 1 per connected component.
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 60; trial++ {
		g := randomConnectedBip(rng)
		_, cost, err := SolveAndVerify(Approx125{}, g)
		if err != nil {
			t.Fatalf("trial %d on %v: %v", trial, g, err)
		}
		if bound := ApproxCostBound(g); cost > bound {
			t.Fatalf("trial %d: cost %d exceeds Theorem 3.1 bound %d on %v", trial, cost, bound, g)
		}
	}
}

func TestApprox125OnSpiders(t *testing.T) {
	// The hard family: approximation must stay within the bound and above
	// the known optimum.
	for n := 1; n <= 40; n++ {
		g := family.Spider(n).Graph()
		_, cost, err := SolveAndVerify(Approx125{}, g)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if cost > ApproxCostBound(g) {
			t.Fatalf("n=%d: cost %d exceeds bound %d", n, cost, ApproxCostBound(g))
		}
		if opt := family.SpiderOptimalEffectiveCost(n) + 1; cost < opt {
			t.Fatalf("n=%d: cost %d below optimal %d — impossible", n, cost, opt)
		}
	}
}

func TestApprox125RatioAgainstExact(t *testing.T) {
	// Effective-cost ratio π_approx/π_opt <= 1.25 (both >= m; approx <=
	// m + (m-1)/4).
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		g := randomConnectedBip(rng)
		_, ca, err := SolveAndVerify(Approx125{}, g)
		if err != nil {
			t.Fatal(err)
		}
		_, ce, err := SolveAndVerify(Exact{}, g)
		if err != nil {
			t.Fatal(err)
		}
		if 4*(ca-1) > 5*(ce-1) { // π_a <= 1.25 π_e using π = π̂-1 for connected
			t.Fatalf("trial %d: approx π=%d vs exact π=%d exceeds 1.25 ratio", trial, ca-1, ce-1)
		}
	}
}

func TestApprox125LargeGraphs(t *testing.T) {
	// The construction must hold far beyond exact-solver reach.
	rng := rand.New(rand.NewSource(8))
	sizes := [][3]int{{20, 20, 60}, {40, 30, 200}, {25, 25, 600}}
	for _, sz := range sizes {
		g := graph.RandomConnectedBipartite(rng, sz[0], sz[1], sz[2]).Graph()
		_, cost, err := SolveAndVerify(Approx125{}, g)
		if err != nil {
			t.Fatalf("size %v: %v", sz, err)
		}
		if bound := ApproxCostBound(g); cost > bound {
			t.Fatalf("size %v: cost %d exceeds bound %d", sz, cost, bound)
		}
	}
}

func TestApprox125OnFamilies(t *testing.T) {
	for _, name := range family.All() {
		for _, size := range []int{2, 5, 9} {
			b, err := family.Build(name, size)
			if err != nil {
				t.Fatal(err)
			}
			g, _ := b.Graph().WithoutIsolated()
			_, cost, err := SolveAndVerify(Approx125{}, g)
			if err != nil {
				t.Fatalf("%s(%d): %v", name, size, err)
			}
			if bound := ApproxCostBound(g); cost > bound {
				t.Fatalf("%s(%d): cost %d exceeds bound %d", name, size, cost, bound)
			}
		}
	}
}

func TestGreedySolversProduceValidSchemes(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		g := randomConnectedBip(rng)
		for _, s := range []Solver{Greedy{}, GreedyImproved{}, PathCover{}, CycleCover{}, Naive{}} {
			if _, _, err := SolveAndVerify(s, g); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
	}
}

func TestExactBnBMatchesHeldKarp(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 15; trial++ {
		g := randomConnectedBip(rng)
		_, hk, err := SolveAndVerify(Exact{}, g)
		if err != nil {
			t.Fatal(err)
		}
		_, bb, err := SolveAndVerify(ExactBnB{}, g)
		if err != nil {
			t.Fatal(err)
		}
		if hk != bb {
			t.Fatalf("trial %d: held-karp=%d bnb=%d", trial, hk, bb)
		}
	}
}

func TestExactBnBNodeCapErrors(t *testing.T) {
	g := family.Spider(6).Graph()
	if _, err := (ExactBnB{MaxNodes: 5}).Solve(g); err == nil {
		t.Fatal("tiny node cap must surface an error, not a silent approximation")
	}
}

func TestCycleCoverNearOptimal(t *testing.T) {
	// The §4 remark cites a 7/6 approximation; require the cycle-cover
	// solver's effective cost within 7/6 of optimal plus one move of
	// slack on these exact-solvable instances.
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		g := randomConnectedBip(rng)
		_, opt, err := SolveAndVerify(Exact{}, g)
		if err != nil {
			t.Fatal(err)
		}
		_, got, err := SolveAndVerify(CycleCover{}, g)
		if err != nil {
			t.Fatal(err)
		}
		if 6*(got-1) > 7*(opt-1)+6 {
			t.Fatalf("trial %d: cycle-cover π=%d vs optimal %d breaks 7/6+1", trial, got-1, opt-1)
		}
	}
}

func TestAutoSelectsEquijoinPath(t *testing.T) {
	g := graph.CompleteBipartite(30, 30).Graph() // 900 edges: far beyond exact
	scheme, cost, err := SolveAndVerify(Auto{}, g)
	if err != nil {
		t.Fatal(err)
	}
	if !core.Perfect(g, scheme) {
		t.Fatal("auto must pebble equijoin graphs perfectly")
	}
	if cost != g.M()+1 {
		t.Fatalf("π̂=%d want m+1", cost)
	}
}

func TestAutoFallsBackToApprox(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	g := graph.RandomConnectedBipartite(rng, 15, 15, 80).Graph() // not equijoin, too big for exact
	_, cost, err := SolveAndVerify(Auto{}, g)
	if err != nil {
		t.Fatal(err)
	}
	if cost > ApproxCostBound(g) {
		t.Fatalf("auto fallback exceeded approx bound: %d > %d", cost, ApproxCostBound(g))
	}
}

func TestAutoUsesExactOnSmallHardGraphs(t *testing.T) {
	g := family.Spider(4).Graph()
	_, cost, err := SolveAndVerify(Auto{}, g)
	if err != nil {
		t.Fatal(err)
	}
	if want := family.SpiderOptimalEffectiveCost(4) + 1; cost != want {
		t.Fatalf("auto on spider-4: π̂=%d want optimal %d", cost, want)
	}
}

func TestOptimalCostInvariantUnderRelabeling(t *testing.T) {
	// π̂ is a graph invariant: permuting vertex labels must not change
	// the exact solver's answer.
	rng := rand.New(rand.NewSource(29))
	cfg := &quick.Config{MaxCount: 20, Rand: rng}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomConnectedBip(r)
		perm := r.Perm(g.N())
		h := graph.New(g.N())
		for _, e := range g.Edges() {
			h.AddEdge(perm[e.U], perm[e.V])
		}
		c1, err1 := OptimalCost(g)
		c2, err2 := OptimalCost(h)
		return err1 == nil && err2 == nil && c1 == c2
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

func TestOptimalCostInvariantUnderEdgeOrder(t *testing.T) {
	// Inserting the same edges in a different order must not change π̂.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		g := randomConnectedBip(rng)
		edges := g.Edges()
		h := graph.New(g.N())
		for _, k := range rng.Perm(len(edges)) {
			h.AddEdge(edges[k].U, edges[k].V)
		}
		c1, err1 := OptimalCost(g)
		c2, err2 := OptimalCost(h)
		if err1 != nil || err2 != nil || c1 != c2 {
			t.Fatalf("trial %d: %d vs %d (%v %v)", trial, c1, c2, err1, err2)
		}
	}
}

func TestHasPerfectScheme(t *testing.T) {
	ok, err := HasPerfectScheme(graph.CompleteBipartite(3, 3).Graph())
	if err != nil || !ok {
		t.Fatalf("K_{3,3} pebbles perfectly: ok=%v err=%v", ok, err)
	}
	ok, err = HasPerfectScheme(family.Spider(3).Graph())
	if err != nil || ok {
		t.Fatalf("spider-3 cannot pebble perfectly: ok=%v err=%v", ok, err)
	}
}

func TestExactRejectsOversizedComponent(t *testing.T) {
	g := graph.RandomConnectedBipartite(rand.New(rand.NewSource(11)), 10, 10, 40).Graph()
	if _, err := (Exact{MaxEdges: 10}).Solve(g); err == nil {
		t.Fatal("oversized component must be rejected")
	}
}

func TestSolverlessEmptyGraph(t *testing.T) {
	g := graph.New(5)
	for _, s := range All() {
		scheme, err := s.Solve(g)
		if err != nil {
			t.Fatalf("%s on edgeless graph: %v", s.Name(), err)
		}
		if len(scheme) != 0 {
			t.Fatalf("%s produced nonempty scheme for edgeless graph", s.Name())
		}
	}
}

func TestOptimalEffectiveCostConnected(t *testing.T) {
	g := graph.PathBipartite(5).Graph()
	eff, err := OptimalEffectiveCost(g)
	if err != nil {
		t.Fatal(err)
	}
	if eff != 5 {
		t.Fatalf("π(P6)=%d want m=5", eff)
	}
}
