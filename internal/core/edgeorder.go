package core

import (
	"fmt"

	"joinpebble/internal/graph"
)

// EdgeOrderCost returns the π̂ cost of visiting the given edges in order:
// m + J + β₀-style startup, computed directly from the sequence. Each run
// of consecutive edges that share an endpoint costs one move per edge;
// switching between edges with no common endpoint costs one extra move
// (a jump, §2.2); the first edge of the whole sequence costs two
// placements. This is the pebbling-side view of the TSP tour cost
// m−1+J of Proposition 2.2.
func EdgeOrderCost(g *graph.Graph, order []int) int {
	if len(order) == 0 {
		return 0
	}
	cost := 2 // place both pebbles on the first edge
	for i := 1; i < len(order); i++ {
		prev, cur := g.EdgeAt(order[i-1]), g.EdgeAt(order[i])
		if prev.SharesEndpoint(cur) {
			cost++
		} else {
			cost += 2
		}
	}
	return cost
}

// SchemeFromEdgeOrder converts a deletion order over all edges of g into
// an explicit pebbling scheme (Proposition 2.2's translation from a TSP
// tour of the line graph back to a pebbling). Consecutive edges sharing an
// endpoint keep one pebble fixed; disjoint consecutive edges insert one
// intermediate configuration. The order must visit every edge of g
// exactly once.
func SchemeFromEdgeOrder(g *graph.Graph, order []int) (Scheme, error) {
	if len(order) != g.M() {
		return nil, fmt.Errorf("core: order visits %d edges, graph has %d", len(order), g.M())
	}
	seen := make([]bool, g.M())
	for _, idx := range order {
		if idx < 0 || idx >= g.M() {
			return nil, fmt.Errorf("core: edge index %d out of range", idx)
		}
		if seen[idx] {
			return nil, fmt.Errorf("core: edge %d visited twice", idx)
		}
		seen[idx] = true
	}
	if len(order) == 0 {
		return nil, nil
	}

	first := g.EdgeAt(order[0])
	s := Scheme{{A: first.U, B: first.V}}
	for i := 1; i < len(order); i++ {
		cur := g.EdgeAt(order[i])
		last := s[len(s)-1]
		switch {
		case last.Covers(cur):
			// Degenerate: same unordered pair cannot repeat (order is
			// duplicate-free and edges are deduplicated), so this means
			// the intermediate below already covered it; unreachable.
			return nil, fmt.Errorf("core: duplicate configuration for edge %d", order[i])
		case last.A == cur.U:
			s = append(s, Config{A: last.A, B: cur.V})
		case last.A == cur.V:
			s = append(s, Config{A: last.A, B: cur.U})
		case last.B == cur.U:
			s = append(s, Config{A: cur.V, B: last.B})
		case last.B == cur.V:
			s = append(s, Config{A: cur.U, B: last.B})
		default:
			// Jump: move pebble A to cur.U, then pebble B to cur.V.
			s = append(s, Config{A: cur.U, B: last.B}, Config{A: cur.U, B: cur.V})
		}
	}
	return s, nil
}

// EdgeOrderFromScheme extracts the deletion order of a complete scheme.
func EdgeOrderFromScheme(g *graph.Graph, s Scheme) ([]int, error) {
	res, err := Simulate(g, s)
	if err != nil {
		return nil, err
	}
	if !res.Complete() {
		return nil, fmt.Errorf("core: scheme incomplete: %d of %d edges", res.DeletedCount, g.M())
	}
	return res.EdgeOrder, nil
}

// Compact removes removable waste from a valid complete scheme: any
// configuration that deletes no new edge and whose neighbors are within
// one pebble move of each other is dropped. The result is a valid
// complete scheme of equal or lower cost — never higher. It runs to a
// fixpoint; each pass is linear in the scheme length.
func Compact(g *graph.Graph, s Scheme) (Scheme, error) {
	cur := append(Scheme(nil), s...)
	if _, err := Verify(g, cur); err != nil {
		return nil, err
	}
	for {
		// Mark which configs delete a new edge under replay.
		deletes := make([]bool, len(cur))
		seen := make([]bool, g.M())
		for i, c := range cur {
			if idx, ok := g.EdgeIndex(c.A, c.B); ok && !seen[idx] {
				seen[idx] = true
				deletes[i] = true
			}
		}
		dropped := false
		out := cur[:0:0]
		for i := 0; i < len(cur); i++ {
			if deletes[i] {
				out = append(out, cur[i])
				continue
			}
			// Wasted config: droppable if the bridge stays a legal move.
			prevOK := len(out) == 0
			var succ *Config
			if i+1 < len(cur) {
				succ = &cur[i+1]
			}
			if !prevOK && (succ == nil || succ.MovesFrom(out[len(out)-1]) == 1) {
				dropped = true
				continue
			}
			if prevOK && succ != nil {
				// Leading waste: the successor simply becomes first.
				dropped = true
				continue
			}
			if succ == nil && len(out) > 0 {
				// Trailing waste: always droppable.
				dropped = true
				continue
			}
			out = append(out, cur[i])
		}
		cur = out
		if !dropped {
			break
		}
	}
	if _, err := Verify(g, cur); err != nil {
		return nil, fmt.Errorf("core: compaction broke the scheme: %w", err)
	}
	return cur, nil
}

// Concat joins schemes for disjoint parts of a graph into one scheme for
// the whole. The additivity lemma (Lemma 2.2) guarantees the result is
// optimal when the parts are the connected components and each part's
// scheme is optimal: π̂(G ⊔ H) = π̂(G) + π̂(H). Bridging from one part to
// the next costs two moves, exactly the +1-per-extra-component that π̂
// carries over π.
func Concat(parts ...Scheme) Scheme {
	var out Scheme
	for _, p := range parts {
		if len(p) == 0 {
			continue
		}
		if len(out) == 0 {
			out = append(out, p...)
			continue
		}
		last := out[len(out)-1]
		switch p[0].MovesFrom(last) {
		case 0:
			// Same configuration; drop the duplicate.
			out = append(out, p[1:]...)
		case 1:
			out = append(out, p...)
		default:
			// Two-move bridge: move pebble A into the new part first.
			out = append(out, Config{A: p[0].A, B: last.B})
			out = append(out, p...)
		}
	}
	return out
}
