package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"joinpebble/internal/graph"
)

func TestEdgeOrderCostRuns(t *testing.T) {
	g := graph.New(5)
	g.AddEdge(0, 1) // edge 0
	g.AddEdge(1, 2) // edge 1
	g.AddEdge(3, 4) // edge 2
	if got := EdgeOrderCost(g, []int{0, 1, 2}); got != 5 {
		t.Fatalf("cost=%d want 2+1+2", got)
	}
	if got := EdgeOrderCost(g, []int{2, 0, 1}); got != 5 {
		t.Fatalf("cost=%d want 2+2+1", got)
	}
	if EdgeOrderCost(g, nil) != 0 {
		t.Fatal("empty order costs 0")
	}
}

func TestSchemeFromEdgeOrderMatchesCost(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := graph.RandomBipartite(r, 2+r.Intn(4), 2+r.Intn(4), 0.5)
		g := b.Graph()
		if g.M() == 0 {
			return true
		}
		order := r.Perm(g.M())
		s, err := SchemeFromEdgeOrder(g, order)
		if err != nil {
			return false
		}
		cost, err := Verify(g, s)
		if err != nil {
			return false
		}
		// The explicit scheme can only be cheaper than the order's nominal
		// cost (an intermediate config may land on an edge and delete it
		// early, shortening nothing here but never lengthening).
		return cost == EdgeOrderCost(g, order)
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSchemeFromEdgeOrderValidation(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if _, err := SchemeFromEdgeOrder(g, []int{0}); err == nil {
		t.Fatal("short order must fail")
	}
	if _, err := SchemeFromEdgeOrder(g, []int{0, 0}); err == nil {
		t.Fatal("duplicate edge must fail")
	}
	if _, err := SchemeFromEdgeOrder(g, []int{0, 7}); err == nil {
		t.Fatal("out-of-range edge must fail")
	}
}

func TestEdgeOrderRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 30; trial++ {
		b := graph.RandomConnectedBipartite(rng, 3, 4, 8)
		g := b.Graph()
		order := rng.Perm(g.M())
		s, err := SchemeFromEdgeOrder(g, order)
		if err != nil {
			t.Fatal(err)
		}
		back, err := EdgeOrderFromScheme(g, s)
		if err != nil {
			t.Fatal(err)
		}
		if len(back) != len(order) {
			t.Fatalf("trial %d: round trip length %d want %d", trial, len(back), len(order))
		}
		// Intermediate jump configs may delete a later edge early, so the
		// orders need not be identical — but both must be permutations.
		seen := make(map[int]bool)
		for _, e := range back {
			if seen[e] {
				t.Fatalf("trial %d: duplicate edge in extracted order", trial)
			}
			seen[e] = true
		}
	}
}

func TestCompactRemovesWaste(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	// Wasteful detour: (0,1) delete, (0,2) waste, (1,2) delete.
	s := Scheme{{0, 1}, {0, 2}, {1, 2}}
	compacted, err := Compact(g, s)
	if err != nil {
		t.Fatal(err)
	}
	if compacted.Cost() >= s.Cost() {
		t.Fatalf("compaction did not help: %d vs %d", compacted.Cost(), s.Cost())
	}
	if !Perfect(g, compacted) {
		t.Fatal("compacted scheme should be perfect here")
	}
}

func TestCompactKeepsNecessaryBridges(t *testing.T) {
	// Matching: the intermediate jump configs are wasted but necessary
	// (neighbors are two moves apart), so compaction must keep them.
	g := graph.Matching(3).Graph()
	s := NaiveScheme(g)
	compacted, err := Compact(g, s)
	if err != nil {
		t.Fatal(err)
	}
	if compacted.Cost() != 2*g.M() {
		t.Fatalf("matching cost must stay 2m, got %d", compacted.Cost())
	}
}

func TestCompactNeverIncreasesCost(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := graph.RandomBipartite(r, 2+r.Intn(4), 2+r.Intn(4), 0.5)
		g := b.Graph()
		if g.M() == 0 {
			return true
		}
		s := NaiveScheme(g)
		compacted, err := Compact(g, s)
		if err != nil {
			return false
		}
		cost, err := Verify(g, compacted)
		return err == nil && cost <= s.Cost()
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

func TestCompactRejectsInvalidScheme(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if _, err := Compact(g, Scheme{{0, 1}}); err == nil {
		t.Fatal("incomplete scheme must be rejected")
	}
}

func TestConcatAdditivity(t *testing.T) {
	// Lemma 2.2: π̂(G ⊔ H) = π̂(G) + π̂(H), realized by Concat.
	g := graph.New(2)
	g.AddEdge(0, 1)
	h := graph.New(3)
	h.AddEdge(0, 1)
	h.AddEdge(1, 2)

	sg := Scheme{{0, 1}}
	sh := Scheme{{0, 1}, {2, 1}}
	u := graph.DisjointUnion(g, h)
	// Shift h's scheme into union numbering.
	shShifted := make(Scheme, len(sh))
	for i, c := range sh {
		shShifted[i] = Config{A: c.A + g.N(), B: c.B + g.N()}
	}
	combined := Concat(sg, shShifted)
	cost, err := Verify(u, combined)
	if err != nil {
		t.Fatal(err)
	}
	if want := sg.Cost() + sh.Cost(); cost != want {
		t.Fatalf("concat cost=%d want %d", cost, want)
	}
}

func TestConcatSkipsEmpty(t *testing.T) {
	s := Scheme{{0, 1}}
	out := Concat(nil, s, Scheme{})
	if len(out) != 1 {
		t.Fatalf("concat with empties: %v", out)
	}
}

func TestConcatManyComponents(t *testing.T) {
	// A matching pebbled component by component must cost exactly 2m.
	m := 6
	b := graph.Matching(m)
	g := b.Graph()
	parts := make([]Scheme, m)
	for i := 0; i < m; i++ {
		parts[i] = Scheme{{A: b.LeftVertex(i), B: b.RightVertex(i)}}
	}
	s := Concat(parts...)
	cost, err := Verify(g, s)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 2*m {
		t.Fatalf("matching cost=%d want %d (Lemma 2.4)", cost, 2*m)
	}
	if s.EffectiveCost(g) != m {
		t.Fatalf("effective=%d want m=%d", s.EffectiveCost(g), m)
	}
}
