package core

import "joinpebble/internal/graph"

// LowerBound returns the universal lower bound on π̂(G): every edge needs
// at least one configuration and every edge-bearing component needs one
// startup move, so π̂(G) >= m + β₀(G) (Lemma 2.1 plus additivity). For a
// connected graph this is m+1, i.e. π(G) >= m.
func LowerBound(g *graph.Graph) int {
	if g.M() == 0 {
		return 0
	}
	return g.M() + Betti0(g)
}

// UpperBound returns Lemma 2.1's universal upper bound π̂(G) <= 2m: an
// optimal scheme never spends more than two moves per edge.
func UpperBound(g *graph.Graph) int {
	return 2 * g.M()
}

// EffectiveBounds returns Lemma 2.3's bounds on the effective cost:
// m <= π(G) <= (2m−1 per component), i.e. 2m−β₀ overall.
func EffectiveBounds(g *graph.Graph) (lo, hi int) {
	if g.M() == 0 {
		return 0, 0
	}
	return g.M(), 2*g.M() - Betti0(g)
}

// Perfect reports whether the scheme is a perfect pebbling of g
// (Definition 2.3): valid, complete and with effective cost exactly m.
func Perfect(g *graph.Graph, s Scheme) bool {
	if _, err := Verify(g, s); err != nil {
		return false
	}
	return s.EffectiveCost(g) == g.M()
}

// NaiveScheme returns the trivially valid scheme that pays two moves per
// edge: visit the edges of each component in discovery order, always
// jumping. It realizes the 2m upper bound and is the baseline every
// solver must beat or match.
func NaiveScheme(g *graph.Graph) Scheme {
	order := make([]int, g.M())
	for i := range order {
		order[i] = i
	}
	// SchemeFromEdgeOrder merges adjacent edges for free, so the result
	// is usually better than 2m; the bound is what matters.
	s, err := SchemeFromEdgeOrder(g, order)
	if err != nil {
		panic("core: naive scheme construction failed: " + err.Error())
	}
	return s
}
