package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"joinpebble/internal/graph"
)

func TestConfigCovers(t *testing.T) {
	e := graph.Edge{U: 1, V: 2}
	if !(Config{A: 1, B: 2}).Covers(e) || !(Config{A: 2, B: 1}).Covers(e) {
		t.Fatal("both orientations must cover")
	}
	if (Config{A: 1, B: 3}).Covers(e) {
		t.Fatal("non-matching config covers")
	}
}

func TestConfigMovesFrom(t *testing.T) {
	cases := []struct {
		a, b Config
		want int
	}{
		{Config{1, 2}, Config{1, 2}, 0},
		{Config{1, 2}, Config{2, 1}, 0},
		{Config{1, 2}, Config{1, 3}, 1},
		{Config{1, 2}, Config{3, 2}, 1},
		{Config{1, 2}, Config{2, 3}, 1}, // shares vertex 2 across pebbles
		{Config{1, 2}, Config{3, 4}, 2},
	}
	for _, c := range cases {
		if got := c.b.MovesFrom(c.a); got != c.want {
			t.Errorf("MovesFrom(%v -> %v) = %d want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestSchemeCost(t *testing.T) {
	if (Scheme{}).Cost() != 0 {
		t.Fatal("empty scheme costs 0")
	}
	s := Scheme{{0, 1}, {0, 2}, {3, 2}}
	if s.Cost() != 4 {
		t.Fatalf("cost=%d want k+1=4", s.Cost())
	}
}

func TestSimulateDeletesEdges(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	s := Scheme{{0, 1}, {2, 1}, {2, 3}}
	res, err := Simulate(g, s)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete() || res.WastedConfigs != 0 {
		t.Fatalf("result: %+v", res)
	}
	if cost, err := Verify(g, s); err != nil || cost != 4 {
		t.Fatalf("verify: cost=%d err=%v", cost, err)
	}
	if s.EffectiveCost(g) != 3 {
		t.Fatalf("effective cost=%d want m=3", s.EffectiveCost(g))
	}
}

func TestSimulateRejectsDoubleMove(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	if _, err := Simulate(g, Scheme{{0, 1}, {2, 3}}); err == nil {
		t.Fatal("jump without intermediate config must be rejected")
	}
}

func TestSimulateRejectsOutOfRange(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1)
	if _, err := Simulate(g, Scheme{{0, 5}}); err == nil {
		t.Fatal("out-of-range pebble must be rejected")
	}
}

func TestVerifyRejectsIncomplete(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if _, err := Verify(g, Scheme{{0, 1}}); err == nil {
		t.Fatal("incomplete scheme must fail verification")
	}
}

func TestWastedConfigCounting(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	// Jump with intermediate config (2,1): wasted unless it happens to be
	// an edge (it is not here).
	s := Scheme{{0, 1}, {2, 1}, {2, 3}}
	res, err := Simulate(g, s)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete() || res.WastedConfigs != 1 {
		t.Fatalf("wasted=%d complete=%v", res.WastedConfigs, res.Complete())
	}
	if s.Cost() != 4 { // 2m for the 2-edge matching: Lemma 2.4
		t.Fatalf("matching cost=%d want 4", s.Cost())
	}
}

func TestBetti0IgnoresIsolated(t *testing.T) {
	g := graph.New(5)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3) // vertex 4 isolated
	if Betti0(g) != 2 {
		t.Fatalf("betti0=%d want 2", Betti0(g))
	}
}

func TestBoundsLemma21(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	if LowerBound(g) != 4 { // m+1 for connected
		t.Fatalf("lower=%d", LowerBound(g))
	}
	if UpperBound(g) != 6 {
		t.Fatalf("upper=%d", UpperBound(g))
	}
	lo, hi := EffectiveBounds(g)
	if lo != 3 || hi != 5 {
		t.Fatalf("effective bounds=(%d,%d) want (3,5)", lo, hi)
	}
}

func TestBoundsEmptyGraph(t *testing.T) {
	g := graph.New(3)
	if LowerBound(g) != 0 || UpperBound(g) != 0 {
		t.Fatal("edgeless graph bounds must be 0")
	}
}

func TestNaiveSchemeAlwaysValidWithinUpperBound(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := graph.RandomBipartite(r, 2+r.Intn(5), 2+r.Intn(5), 0.4)
		g := b.Graph()
		if g.M() == 0 {
			return len(NaiveScheme(g)) == 0
		}
		s := NaiveScheme(g)
		cost, err := Verify(g, s)
		return err == nil && cost <= UpperBound(g) && cost >= LowerBound(g)
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

func TestPerfectDetection(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	perfect := Scheme{{0, 1}, {2, 1}}
	if !Perfect(g, perfect) {
		t.Fatal("two adjacent edges pebble perfectly")
	}
	wasteful := Scheme{{0, 1}, {0, 2}, {1, 2}} // wasted middle config
	if Perfect(g, wasteful) {
		t.Fatal("wasteful scheme is not perfect")
	}
}
