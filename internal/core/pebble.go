// Package core implements the paper's primary contribution: the two-pebble
// game on join graphs (§2) that abstracts join computation independently
// of any particular algorithm.
//
// An instance of a join problem is a graph G; each edge is a joining tuple
// pair that the algorithm must "touch". Two pebbles live on vertices of G.
// When the pebbles sit on the two endpoints of an edge, that edge is
// deleted. A pebbling scheme is a sequence of configurations, consecutive
// ones differing by moving exactly one pebble, that deletes every edge.
// Its cost π̂ is the number of pebble moves: k+1 for k configurations
// (Definition 2.1; the +1 pays for placing the second initial pebble).
// The effective cost is π(P) = π̂(P) − β₀(G) (Definition 2.2), discounting
// the per-component startup.
package core

import (
	"context"
	"fmt"

	"joinpebble/internal/graph"
	"joinpebble/internal/obs"
)

// Pebble-game accounting, flushed once per simulated run (the per-config
// loop stays counter-free): acquisitions are the π̂ moves that put a
// pebble on a vertex — the paper's central cost — and releases are the
// moves that vacated one (every move after the two initial placements).
// The bindings are scope-aware (obs.Scope): callers that thread a scoped
// context through SimulateContext/VerifyContext account the run to their
// request; the plain Simulate/Verify record globally as before.
var (
	cSimulateRuns   = obs.ScopedCounter("core/simulate/runs")
	cSimulateConfig = obs.ScopedCounter("core/simulate/configs")
	cSimulateWasted = obs.ScopedCounter("core/simulate/wasted_configs")
	cEdgesDeleted   = obs.ScopedCounter("core/simulate/edges_deleted")
	cPebbleAcquire  = obs.ScopedCounter("core/pebble/acquisitions")
	cPebbleRelease  = obs.ScopedCounter("core/pebble/releases")
)

// Config is a pebbling configuration: the positions of the two pebbles.
// Pebbles are interchangeable for edge deletion, but a single move changes
// exactly one of the two positions.
type Config struct {
	A, B int
}

// Covers reports whether the configuration's pebbles sit on the endpoints
// of edge e.
func (c Config) Covers(e graph.Edge) bool {
	return (c.A == e.U && c.B == e.V) || (c.A == e.V && c.B == e.U)
}

// MovesFrom returns the number of single-pebble moves needed to reach c
// from prev: 0 if identical, 1 if they share a pebble position, 2
// otherwise. This matches the key observation in Lemma 2.2's proof that
// disjoint configurations are two moves apart.
func (c Config) MovesFrom(prev Config) int {
	switch {
	case c == prev || (c.A == prev.B && c.B == prev.A):
		return 0
	case c.A == prev.A || c.B == prev.B || c.A == prev.B || c.B == prev.A:
		return 1
	default:
		return 2
	}
}

func (c Config) String() string { return fmt.Sprintf("(%d,%d)", c.A, c.B) }

// Scheme is a pebbling scheme: the sequence of configurations
// p_1, ..., p_k of Definition 2.1.
type Scheme []Config

// Cost returns π̂(P) = k+1 for a k-configuration scheme, or 0 for the
// empty scheme (an edgeless graph needs no pebbles).
func (s Scheme) Cost() int {
	if len(s) == 0 {
		return 0
	}
	return len(s) + 1
}

// EffectiveCost returns π(P) = π̂(P) − β₀(G) per Definition 2.2.
func (s Scheme) EffectiveCost(g *graph.Graph) int {
	return s.Cost() - nonTrivialComponents(g)
}

// Result reports what a scheme did to a graph when simulated.
type Result struct {
	// Deleted[i] is true if edge i of the graph was deleted.
	Deleted []bool
	// DeletedCount is the number of deleted edges.
	DeletedCount int
	// EdgeOrder lists edge indices in deletion order.
	EdgeOrder []int
	// WastedConfigs counts configurations that deleted no edge.
	WastedConfigs int
}

// Complete reports whether every edge was deleted.
func (r *Result) Complete() bool { return r.DeletedCount == len(r.Deleted) }

// Simulate runs the scheme against g and reports which edges it deletes.
// It returns an error if the scheme is structurally invalid: a pebble
// outside the vertex range, or a transition that moves both pebbles (the
// game allows one pebble move at a time).
//
// The inner loop is one EdgeIndex probe per configuration; on a frozen
// (or Optimize'd) graph that probe is an allocation-free binary search
// instead of a map lookup, so callers simulating long schemes should
// freeze the graph first.
func Simulate(g *graph.Graph, s Scheme) (*Result, error) {
	return SimulateContext(context.Background(), g, s)
}

// SimulateContext is Simulate with request-scoped accounting: the flush
// lands in the obs.Scope carried by ctx, if any. The simulation itself
// is not interruptible — it is a linear referee pass, fast relative to
// the searches that produce schemes.
func SimulateContext(ctx context.Context, g *graph.Graph, s Scheme) (*Result, error) {
	res := &Result{
		Deleted:   make([]bool, g.M()),
		EdgeOrder: make([]int, 0, g.M()),
	}
	for i, c := range s {
		if c.A < 0 || c.A >= g.N() || c.B < 0 || c.B >= g.N() {
			return nil, fmt.Errorf("core: config %d %v out of vertex range [0,%d)", i, c, g.N())
		}
		if i > 0 {
			if mv := c.MovesFrom(s[i-1]); mv != 1 {
				return nil, fmt.Errorf("core: transition %d: %v -> %v moves %d pebbles, want 1", i, s[i-1], c, mv)
			}
		}
		if idx, ok := g.EdgeIndex(c.A, c.B); ok && !res.Deleted[idx] {
			res.Deleted[idx] = true
			res.DeletedCount++
			res.EdgeOrder = append(res.EdgeOrder, idx)
		} else {
			res.WastedConfigs++
		}
	}
	cSimulateRuns.Inc(ctx)
	cSimulateConfig.Add(ctx, int64(len(s)))
	cSimulateWasted.Add(ctx, int64(res.WastedConfigs))
	cEdgesDeleted.Add(ctx, int64(res.DeletedCount))
	if cost := s.Cost(); cost > 0 {
		cPebbleAcquire.Add(ctx, int64(cost))
		cPebbleRelease.Add(ctx, int64(cost-2))
	}
	return res, nil
}

// Verify checks that s is a valid, complete pebbling scheme for g and
// returns its cost π̂. It is the referee used by tests and benchmarks: a
// solver's claimed cost must match what simulation observes.
func Verify(g *graph.Graph, s Scheme) (int, error) {
	return VerifyContext(context.Background(), g, s)
}

// VerifyContext is Verify with request-scoped accounting (see
// SimulateContext).
func VerifyContext(ctx context.Context, g *graph.Graph, s Scheme) (int, error) {
	res, err := SimulateContext(ctx, g, s)
	if err != nil {
		return 0, err
	}
	if !res.Complete() {
		return 0, fmt.Errorf("core: scheme deletes %d of %d edges", res.DeletedCount, g.M())
	}
	return s.Cost(), nil
}

// nonTrivialComponents counts components that contain at least one edge.
// Definition 2.2's β₀ is stated for graphs with isolated vertices already
// removed (§2); counting only edge-bearing components keeps π(G)
// well-defined when callers pass graphs that still have singletons.
func nonTrivialComponents(g *graph.Graph) int {
	count := 0
	for _, comp := range g.Components() {
		if len(comp) > 1 {
			count++
		}
	}
	return count
}

// Betti0 returns β₀(G) as used by the effective cost: the number of
// connected components containing at least one edge.
func Betti0(g *graph.Graph) int { return nonTrivialComponents(g) }
