package core

import (
	"math/rand"
	"testing"

	"joinpebble/internal/graph"
)

func TestSimulateKBasic(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	s := &KScheme{K: 2, Moves: []KMove{
		{Pebble: 0, To: 0}, {Pebble: 1, To: 1}, {Pebble: 0, To: 2},
	}}
	cost, err := VerifyK(g, s)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 3 {
		t.Fatalf("cost=%d want 3", cost)
	}
}

func TestSimulateKValidation(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1)
	if _, err := SimulateK(g, &KScheme{K: 1}); err == nil {
		t.Fatal("k=1 must be rejected")
	}
	if _, err := SimulateK(g, &KScheme{K: 2, Moves: []KMove{{Pebble: 5, To: 0}}}); err == nil {
		t.Fatal("bad pebble index must be rejected")
	}
	if _, err := SimulateK(g, &KScheme{K: 2, Moves: []KMove{{Pebble: 0, To: 9}}}); err == nil {
		t.Fatal("bad vertex must be rejected")
	}
	if _, err := VerifyK(g, &KScheme{K: 2}); err == nil {
		t.Fatal("incomplete scheme must fail verification")
	}
}

func TestFromSchemeMatchesTwoPebbleCost(t *testing.T) {
	// A valid two-pebble Scheme converts to a KScheme with identical
	// cost: π̂ counts k+1 "moves" and the conversion emits exactly one
	// move per transition plus two placements.
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	s := Scheme{{0, 1}, {2, 1}, {2, 3}}
	ks := FromScheme(s)
	cost, err := VerifyK(g, ks)
	if err != nil {
		t.Fatal(err)
	}
	if cost != s.Cost() {
		t.Fatalf("k-cost %d vs two-pebble π̂ %d", cost, s.Cost())
	}
}

func TestFromSchemeEmpty(t *testing.T) {
	ks := FromScheme(Scheme{})
	if ks.Cost() != 0 || ks.K != 2 {
		t.Fatal("empty scheme conversion")
	}
}

func TestGreedyKCompletesRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		b := graph.RandomBipartite(rng, 3+rng.Intn(4), 3+rng.Intn(4), 0.4)
		g := b.Graph()
		for _, k := range []int{2, 3, 5} {
			s, err := GreedyK(g, k)
			if err != nil {
				t.Fatal(err)
			}
			if g.M() == 0 {
				if s.Cost() != 0 {
					t.Fatal("edgeless graph needs no moves")
				}
				continue
			}
			if _, err := VerifyK(g, s); err != nil {
				t.Fatalf("trial %d k=%d: %v", trial, k, err)
			}
		}
	}
}

func TestGreedyKMorePebblesNeverRequired(t *testing.T) {
	// Universal bounds: any complete k-scheme needs at least one move
	// per... at least max over components of (m edges need both
	// endpoints covered): cost >= number of distinct vertices / ... use
	// the simple floor: cost >= 2 when m > 0, and cost <= 2m (the
	// two-pebble bound applies since extra pebbles are optional).
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 15; trial++ {
		g := graph.RandomConnectedBipartite(rng, 3, 3, 6).Graph()
		s2, err := GreedyK(g, 2)
		if err != nil {
			t.Fatal(err)
		}
		s4, err := GreedyK(g, 4)
		if err != nil {
			t.Fatal(err)
		}
		if s2.Cost() > 2*g.M() || s4.Cost() > 2*g.M() {
			t.Fatalf("greedy exceeded the universal 2m bound")
		}
	}
}

func TestThreePebblesDissolveSpiderLowerBound(t *testing.T) {
	// The headline of the extension: with k=3, the Theorem 3.3 family
	// costs only m+1 moves — the explicit strategy and the greedy solver
	// both beat the two-pebble optimum 1.25m−1.
	for _, n := range []int{4, 8, 16} {
		g := spiderGraph(n)
		m := g.M()

		// Explicit strategy: center parked, middles walked, leaves swept.
		s := &KScheme{K: 3}
		s.Moves = append(s.Moves, KMove{Pebble: 0, To: 0}) // center (left vertex 0)
		for i := 0; i < n; i++ {
			middle := n + 1 + i // right vertex i in underlying numbering
			leaf := 1 + i
			s.Moves = append(s.Moves,
				KMove{Pebble: 1, To: middle},
				KMove{Pebble: 2, To: leaf})
		}
		cost, err := VerifyK(g, s)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if cost != KSpiderMoves(n) {
			t.Fatalf("n=%d: explicit strategy cost %d want %d", n, cost, KSpiderMoves(n))
		}
		twoPebbleOpt := 2*n + (n-1)/2 + 1 // π̂ = closed form + 1
		if cost >= twoPebbleOpt && n > 2 {
			t.Fatalf("n=%d: three pebbles (%d) should beat two (%d)", n, cost, twoPebbleOpt)
		}

		// Greedy with k=3 should find something no worse than m+1 too.
		gs, err := GreedyK(g, 3)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := VerifyK(g, gs); err != nil {
			t.Fatal(err)
		}
		if gs.Cost() > m+1 {
			t.Logf("n=%d: greedy k=3 cost %d (explicit strategy achieves %d)", n, gs.Cost(), m+1)
		}
	}
}

// spiderGraph mirrors family.Spider's underlying graph without importing
// family (which would not cycle, but core stays dependency-light).
func spiderGraph(n int) *graph.Graph {
	b := graph.NewBipartite(n+1, n)
	for i := 0; i < n; i++ {
		b.AddEdge(0, i)
		b.AddEdge(1+i, i)
	}
	return b.Graph()
}

func TestGreedyKRejectsBadK(t *testing.T) {
	if _, err := GreedyK(graph.New(2), 1); err == nil {
		t.Fatal("k=1 must be rejected")
	}
}
