package core

import (
	"fmt"

	"joinpebble/internal/graph"
)

// The k-pebble game generalizes §2's two-pebble game: k pebbles sit on
// vertices, one moves per step, and an edge is deleted as soon as both
// endpoints carry pebbles. In the [6] page-fetch reading, k is the
// buffer-pool size. The paper fixes k = 2; this extension quantifies how
// much of the hardness is specific to that choice — one extra pebble
// already dissolves the Theorem 3.3 lower bound (see the E18 experiment
// and KSpiderScheme).

// KConfig is a k-pebble configuration: the position of each pebble. A
// pebble may be parked off-graph as Unplaced before its first move.
type KConfig []int

// Unplaced marks a pebble not yet on the graph.
const Unplaced = -1

// KScheme is a sequence of single-pebble moves. Move i places or moves
// pebble Pebble[i] to vertex To[i].
type KScheme struct {
	K     int
	Moves []KMove
}

// KMove moves one pebble to a vertex.
type KMove struct {
	Pebble int
	To     int
}

// Cost returns the number of moves — the direct analogue of π̂ (initial
// placements count as moves, matching Definition 2.1's accounting).
func (s *KScheme) Cost() int { return len(s.Moves) }

// SimulateK replays a k-pebble scheme and reports the edges deleted.
func SimulateK(g *graph.Graph, s *KScheme) (*Result, error) {
	if s.K < 2 {
		return nil, fmt.Errorf("core: k-pebble game needs k >= 2, got %d", s.K)
	}
	pos := make(KConfig, s.K)
	for i := range pos {
		pos[i] = Unplaced
	}
	// occupied[v] counts pebbles on v.
	occupied := make([]int, g.N())
	res := &Result{Deleted: make([]bool, g.M())}
	deleteCovered := func(v int) {
		for _, ei := range g.IncidentEdges(v) {
			if res.Deleted[ei] {
				continue
			}
			e := g.EdgeAt(ei)
			if occupied[e.U] > 0 && occupied[e.V] > 0 {
				res.Deleted[ei] = true
				res.DeletedCount++
				res.EdgeOrder = append(res.EdgeOrder, ei)
			}
		}
	}
	for i, mv := range s.Moves {
		if mv.Pebble < 0 || mv.Pebble >= s.K {
			return nil, fmt.Errorf("core: move %d: pebble %d outside [0,%d)", i, mv.Pebble, s.K)
		}
		if mv.To < 0 || mv.To >= g.N() {
			return nil, fmt.Errorf("core: move %d: vertex %d out of range", i, mv.To)
		}
		if old := pos[mv.Pebble]; old != Unplaced {
			occupied[old]--
		}
		pos[mv.Pebble] = mv.To
		occupied[mv.To]++
		before := res.DeletedCount
		deleteCovered(mv.To)
		if res.DeletedCount == before {
			res.WastedConfigs++
		}
	}
	return res, nil
}

// VerifyK checks completeness and returns the move count.
func VerifyK(g *graph.Graph, s *KScheme) (int, error) {
	res, err := SimulateK(g, s)
	if err != nil {
		return 0, err
	}
	if !res.Complete() {
		return 0, fmt.Errorf("core: k-scheme deletes %d of %d edges", res.DeletedCount, g.M())
	}
	return s.Cost(), nil
}

// FromScheme converts a two-pebble Scheme into the equivalent KScheme
// with k = 2, preserving the cost accounting (π̂ = moves).
func FromScheme(s Scheme) *KScheme {
	ks := &KScheme{K: 2}
	if len(s) == 0 {
		return ks
	}
	ks.Moves = append(ks.Moves,
		KMove{Pebble: 0, To: s[0].A},
		KMove{Pebble: 1, To: s[0].B})
	for i := 1; i < len(s); i++ {
		prev, cur := s[i-1], s[i]
		switch {
		case cur.A == prev.A:
			ks.Moves = append(ks.Moves, KMove{Pebble: 1, To: cur.B})
		case cur.B == prev.B:
			ks.Moves = append(ks.Moves, KMove{Pebble: 0, To: cur.A})
		case cur.A == prev.B:
			ks.Moves = append(ks.Moves, KMove{Pebble: 0, To: cur.B})
		case cur.B == prev.A:
			ks.Moves = append(ks.Moves, KMove{Pebble: 1, To: cur.A})
		default:
			// Scheme transitions move exactly one pebble, so one of the
			// cases above always fires for valid schemes.
			ks.Moves = append(ks.Moves, KMove{Pebble: 0, To: cur.A}, KMove{Pebble: 1, To: cur.B})
		}
	}
	return ks
}

// GreedyK builds a k-pebble scheme greedily: repeatedly make the move
// that deletes the most remaining edges, breaking ties by lowest vertex;
// when no single move deletes anything, seed the two pebbles with the
// endpoints of the lowest-indexed remaining edge. Completeness is
// guaranteed (the fallback always makes progress); optimality is not.
func GreedyK(g *graph.Graph, k int) (*KScheme, error) {
	if k < 2 {
		return nil, fmt.Errorf("core: k-pebble game needs k >= 2, got %d", k)
	}
	s := &KScheme{K: k}
	pos := make(KConfig, k)
	for i := range pos {
		pos[i] = Unplaced
	}
	occupied := make([]int, g.N())
	deleted := make([]bool, g.M())
	remaining := g.M()

	countGain := func(pebble, v int) int {
		// Edges newly covered if pebble moves to v.
		old := pos[pebble]
		gain := 0
		for _, ei := range g.IncidentEdges(v) {
			if deleted[ei] {
				continue
			}
			e := g.EdgeAt(ei)
			u := e.Other(v)
			occ := occupied[u]
			if u == old {
				occ-- // the moving pebble no longer covers u
			}
			if occ > 0 {
				gain++
			}
		}
		return gain
	}
	apply := func(pebble, v int) {
		if old := pos[pebble]; old != Unplaced {
			occupied[old]--
		}
		pos[pebble] = v
		occupied[v]++
		s.Moves = append(s.Moves, KMove{Pebble: pebble, To: v})
		for _, ei := range g.IncidentEdges(v) {
			if deleted[ei] {
				continue
			}
			e := g.EdgeAt(ei)
			if occupied[e.U] > 0 && occupied[e.V] > 0 {
				deleted[ei] = true
				remaining--
			}
		}
	}

	// usefulness counts remaining edges at a pebble's position — moving
	// or reseeding the least useful pebble preserves parked hubs.
	usefulness := func(p int) int {
		if pos[p] == Unplaced {
			return -1 // always prefer placing a fresh pebble
		}
		u := 0
		for _, ei := range g.IncidentEdges(pos[p]) {
			if !deleted[ei] {
				u++
			}
		}
		return u
	}

	for remaining > 0 {
		bestPebble, bestVertex, bestGain, bestUse := -1, -1, 0, 0
		for p := 0; p < k; p++ {
			use := usefulness(p)
			for v := 0; v < g.N(); v++ {
				if occupied[v] > 0 && pos[p] != v {
					// Stacking pebbles never helps.
					continue
				}
				gain := countGain(p, v)
				if gain > bestGain || (gain == bestGain && gain > 0 && use < bestUse) {
					bestPebble, bestVertex, bestGain, bestUse = p, v, gain, use
				}
			}
		}
		if bestGain > 0 {
			apply(bestPebble, bestVertex)
			continue
		}
		// Seed the two least useful pebbles on the next remaining edge.
		p1, p2 := leastUsefulPair(k, usefulness)
		for ei := 0; ei < g.M(); ei++ {
			if !deleted[ei] {
				e := g.EdgeAt(ei)
				apply(p1, e.U)
				apply(p2, e.V)
				break
			}
		}
	}
	return s, nil
}

// leastUsefulPair returns the two pebbles with the lowest usefulness.
func leastUsefulPair(k int, usefulness func(int) int) (int, int) {
	p1, p2 := 0, 1
	u1, u2 := usefulness(0), usefulness(1)
	if u2 < u1 {
		p1, p2, u1, u2 = p2, p1, u2, u1
	}
	for p := 2; p < k; p++ {
		u := usefulness(p)
		switch {
		case u < u1:
			p2, u2 = p1, u1
			p1, u1 = p, u
		case u < u2:
			p2, u2 = p, u
		}
	}
	return p1, p2
}

// KSpiderMoves returns the number of moves the 3-pebble strategy needs
// on the spider G_n: park one pebble on the center forever, walk a
// second along the middles, and let the third collect the leaves —
// 1 + 2n = m + 1 moves, the same as a perfect two-pebble scheme on an
// easy graph. The Theorem 3.3 lower bound (π = 1.25m − 1 with two
// pebbles) is therefore a strictly two-pebble phenomenon.
func KSpiderMoves(n int) int { return 2*n + 1 }
