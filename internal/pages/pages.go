// Package pages implements the page-fetch scheduling model of Merrett,
// Kambayashi and Yasuura ([6] in the paper), which §2's related-work
// discussion credits with the original pebbling game and whose
// NP-completeness Theorem 4.2 inherits. Tuples live on fixed-capacity
// disk pages; producing a joining pair requires both pages resident, and
// with one memory frame per relation the I/O schedule is exactly the
// two-pebble game played on the page graph — the quotient of the join
// graph under the tuple-to-page assignment. The pebbling cost is the
// number of page fetches.
package pages

import (
	"fmt"
	"sort"

	"joinpebble/internal/core"
	"joinpebble/internal/graph"
	"joinpebble/internal/obs"
	"joinpebble/internal/solver"
)

// Page-model accounting: fetches is the [6]-model I/O cost (π̂ on the
// page graph), page_pairs the quotient graph's edge count. The fetch
// histogram makes layout comparisons (sequential vs value-clustered)
// readable straight off a -metrics snapshot.
var (
	cPlans       = obs.Default.Counter("pages/plans")
	cFetches     = obs.Default.Counter("pages/fetches")
	cPagePairs   = obs.Default.Counter("pages/page_pairs")
	hFetchCounts = obs.Default.Histogram("pages/fetches_per_plan", obs.Pow2Buckets(24))
)

// Layout assigns every tuple of each relation to a page.
type Layout struct {
	// RPage[i] is the page of left tuple i; SPage[j] of right tuple j.
	RPage, SPage []int
	// NRPages and NSPages are the page counts.
	NRPages, NSPages int
}

// Validate checks page indices are dense and in range.
func (l *Layout) Validate() error {
	if l.NRPages < 0 || l.NSPages < 0 {
		return fmt.Errorf("pages: negative page count")
	}
	for i, p := range l.RPage {
		if p < 0 || p >= l.NRPages {
			return fmt.Errorf("pages: RPage[%d]=%d outside [0,%d)", i, p, l.NRPages)
		}
	}
	for j, p := range l.SPage {
		if p < 0 || p >= l.NSPages {
			return fmt.Errorf("pages: SPage[%d]=%d outside [0,%d)", j, p, l.NSPages)
		}
	}
	return nil
}

// Sequential paginates tuples in input order, capacity tuples per page —
// the layout a heap file gives you.
func Sequential(nLeft, nRight, capacity int) *Layout {
	if capacity < 1 {
		panic("pages: capacity must be >= 1")
	}
	l := &Layout{RPage: make([]int, nLeft), SPage: make([]int, nRight)}
	for i := range l.RPage {
		l.RPage[i] = i / capacity
	}
	for j := range l.SPage {
		l.SPage[j] = j / capacity
	}
	l.NRPages = pagesFor(nLeft, capacity)
	l.NSPages = pagesFor(nRight, capacity)
	return l
}

// ValueClustered sorts integer columns by value before paginating — the
// layout a clustered index gives an equijoin. Joining tuples concentrate
// on few page pairs, so the page graph stays sparse and cheap to pebble.
func ValueClustered(ls, rs []int64, capacity int) *Layout {
	if capacity < 1 {
		panic("pages: capacity must be >= 1")
	}
	l := &Layout{RPage: make([]int, len(ls)), SPage: make([]int, len(rs))}
	for rank, i := range sortedIdx(ls) {
		l.RPage[i] = rank / capacity
	}
	for rank, j := range sortedIdx(rs) {
		l.SPage[j] = rank / capacity
	}
	l.NRPages = pagesFor(len(ls), capacity)
	l.NSPages = pagesFor(len(rs), capacity)
	return l
}

func sortedIdx(vs []int64) []int {
	idx := make([]int, len(vs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return vs[idx[a]] < vs[idx[b]] })
	return idx
}

func pagesFor(n, capacity int) int {
	if n == 0 {
		return 0
	}
	return (n + capacity - 1) / capacity
}

// PageGraph returns the quotient join graph over pages: page P of R is
// joined to page Q of S iff some tuple pair spanning them joins. This is
// the graph [6]'s game is played on.
func PageGraph(b *graph.Bipartite, l *Layout) (*graph.Bipartite, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	if len(l.RPage) != b.NLeft() || len(l.SPage) != b.NRight() {
		return nil, fmt.Errorf("pages: layout covers %dx%d tuples, join graph has %dx%d",
			len(l.RPage), len(l.SPage), b.NLeft(), b.NRight())
	}
	pg := graph.NewBipartite(l.NRPages, l.NSPages)
	for e := 0; e < b.M(); e++ {
		i, j := b.EdgeAt(e)
		pg.AddEdge(l.RPage[i], l.SPage[j])
	}
	return pg, nil
}

// Schedule is a page-fetch plan: the pebbling scheme on the page graph
// plus its I/O accounting.
type Schedule struct {
	// Scheme is the verified pebbling scheme over page vertices.
	Scheme core.Scheme
	// Fetches is π̂ of the scheme: total page reads, counting the two
	// initial loads.
	Fetches int
	// PagePairs is the number of page-graph edges — the joins that must
	// be co-resident at least once.
	PagePairs int
	// LowerBound is the universal floor m_pages + β₀ on fetches.
	LowerBound int
}

// Plan computes a page-fetch schedule for join graph b under layout l
// using the given pebbling solver (nil means solver.Auto).
func Plan(b *graph.Bipartite, l *Layout, s solver.Solver) (*Schedule, error) {
	if s == nil {
		s = solver.Auto{}
	}
	pg, err := PageGraph(b, l)
	if err != nil {
		return nil, err
	}
	g := pg.Graph()
	scheme, cost, err := solver.SolveAndVerify(s, g)
	if err != nil {
		return nil, err
	}
	cPlans.Inc()
	cFetches.Add(int64(cost))
	cPagePairs.Add(int64(g.M()))
	hFetchCounts.Observe(int64(cost))
	return &Schedule{
		Scheme:     scheme,
		Fetches:    cost,
		PagePairs:  g.M(),
		LowerBound: core.LowerBound(g),
	}, nil
}
