package pages

import (
	"testing"

	"joinpebble/internal/graph"
	"joinpebble/internal/join"
	"joinpebble/internal/solver"
	"joinpebble/internal/workload"
)

func TestSequentialLayout(t *testing.T) {
	l := Sequential(7, 5, 3)
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if l.NRPages != 3 || l.NSPages != 2 {
		t.Fatalf("pages %d,%d", l.NRPages, l.NSPages)
	}
	if l.RPage[0] != 0 || l.RPage[2] != 0 || l.RPage[3] != 1 || l.RPage[6] != 2 {
		t.Fatalf("RPage=%v", l.RPage)
	}
}

func TestSequentialRejectsZeroCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capacity 0 must panic")
		}
	}()
	Sequential(3, 3, 0)
}

func TestValueClusteredGroupsValues(t *testing.T) {
	ls := []int64{9, 1, 9, 1}
	rs := []int64{1, 9}
	l := ValueClustered(ls, rs, 2)
	// The two 1s share a page, the two 9s share the other.
	if l.RPage[1] != l.RPage[3] || l.RPage[0] != l.RPage[2] || l.RPage[0] == l.RPage[1] {
		t.Fatalf("RPage=%v", l.RPage)
	}
}

func TestPageGraphQuotient(t *testing.T) {
	// 4x4 identity equijoin, capacity 2: page graph is a 2x2 matching.
	ls := []int64{0, 0, 1, 1}
	rs := []int64{0, 0, 1, 1}
	b := join.EquiGraph(ls, rs)
	pg, err := PageGraph(b, Sequential(4, 4, 2))
	if err != nil {
		t.Fatal(err)
	}
	if pg.NLeft() != 2 || pg.NRight() != 2 || pg.M() != 2 {
		t.Fatalf("page graph %v", pg)
	}
	if !pg.HasEdge(0, 0) || !pg.HasEdge(1, 1) || pg.HasEdge(0, 1) {
		t.Fatal("quotient edges wrong")
	}
}

func TestPageGraphSizeMismatch(t *testing.T) {
	b := graph.NewBipartite(3, 3)
	if _, err := PageGraph(b, Sequential(2, 3, 1)); err == nil {
		t.Fatal("layout/tuple mismatch must fail")
	}
}

func TestPlanBounds(t *testing.T) {
	w := workload.Equijoin{LeftSize: 40, RightSize: 40, Domain: 8, Skew: 0}
	l, r := w.Generate(3)
	b := join.EquiGraph(l.Ints(), r.Ints())
	sched, err := Plan(b, Sequential(40, 40, 5), nil)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Fetches < sched.LowerBound {
		t.Fatalf("fetches %d below lower bound %d", sched.Fetches, sched.LowerBound)
	}
	if sched.Fetches > 2*sched.PagePairs {
		t.Fatalf("fetches %d above the 2m page bound", sched.Fetches)
	}
}

func TestClusteredLayoutBeatsSequentialOnEquijoin(t *testing.T) {
	// The point of [6]-style scheduling: a value-clustered layout makes
	// the page graph sparse (few page pairs to co-load), so the fetch
	// schedule is cheaper than for an arbitrary sequential layout of the
	// same data. Use shuffled inputs so "sequential" really is arbitrary.
	w := workload.Equijoin{LeftSize: 120, RightSize: 120, Domain: 12, Skew: 0}
	l, r := w.Generate(9)
	ls, rs := l.Ints(), r.Ints()
	b := join.EquiGraph(ls, rs)
	const capacity = 10

	seq, err := Plan(b, Sequential(len(ls), len(rs), capacity), solver.Approx125{})
	if err != nil {
		t.Fatal(err)
	}
	clu, err := Plan(b, ValueClustered(ls, rs, capacity), solver.Approx125{})
	if err != nil {
		t.Fatal(err)
	}
	if clu.PagePairs >= seq.PagePairs {
		t.Fatalf("clustering should shrink the page graph: %d vs %d", clu.PagePairs, seq.PagePairs)
	}
	if clu.Fetches >= seq.Fetches {
		t.Fatalf("clustering should reduce fetches: %d vs %d", clu.Fetches, seq.Fetches)
	}
}

func TestCapacityOneIsTupleGame(t *testing.T) {
	// With one tuple per page the page graph IS the join graph, so the
	// [6] model degenerates to the paper's tuple-level game.
	ls := []int64{1, 2, 3}
	rs := []int64{2, 3, 3}
	b := join.EquiGraph(ls, rs)
	pg, err := PageGraph(b, Sequential(3, 3, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !pg.Equal(b) {
		t.Fatal("capacity-1 page graph must equal the join graph")
	}
}

func TestPlanEmptyJoin(t *testing.T) {
	b := graph.NewBipartite(4, 4)
	sched, err := Plan(b, Sequential(4, 4, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Fetches != 0 || sched.PagePairs != 0 {
		t.Fatalf("empty join should need no fetches: %+v", sched)
	}
}
