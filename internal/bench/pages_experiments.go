package bench

import (
	"fmt"

	"joinpebble/internal/join"
	"joinpebble/internal/pages"
	"joinpebble/internal/solver"
	"joinpebble/internal/workload"
)

// E17Pages reproduces the lineage of the pebbling model (§2's related
// work, [6] Merrett–Kambayashi–Yasuura): played on pages instead of
// tuples, the game prices the I/O of scheduling page fetches for a join.
// Measured: for the same equijoin data, a value-clustered layout shrinks
// the page graph and therefore the fetch schedule, while an arbitrary
// sequential layout pays for scattered values; capacity 1 degenerates to
// the paper's tuple-level game.
func E17Pages() (*Table, error) {
	t := &Table{
		ID:     "E17",
		Title:  "page-fetch scheduling ([6], §2 related work)",
		Claim:  "the pebble game on the page graph prices join I/O; clustered layouts shrink it",
		Header: []string{"|R|=|S|", "capacity", "layout", "page pairs", "fetches", "lower bound", "fetches/pair"},
	}
	for _, sz := range []int{120, 600} {
		w := workload.Equijoin{LeftSize: sz, RightSize: sz, Domain: int64(sz / 10), Skew: 0}
		l, r := w.Generate(17)
		ls, rs := l.Ints(), r.Ints()
		b := join.EquiGraph(ls, rs)
		for _, capacity := range []int{1, 10} {
			layouts := []struct {
				name string
				l    *pages.Layout
			}{
				{"sequential", pages.Sequential(len(ls), len(rs), capacity)},
				{"value-clustered", pages.ValueClustered(ls, rs, capacity)},
			}
			for _, lay := range layouts {
				sched, err := pages.Plan(b, lay.l, solver.Approx125{})
				if err != nil {
					return nil, err
				}
				perPair := "n/a"
				if sched.PagePairs > 0 {
					perPair = fmt.Sprintf("%.3f", float64(sched.Fetches)/float64(sched.PagePairs))
				}
				t.AddRow(sz, capacity, lay.name, sched.PagePairs, sched.Fetches, sched.LowerBound, perPair)
			}
		}
	}
	t.Notes = append(t.Notes,
		"capacity 1 makes the page graph equal the join graph — the tuple game of §2; fetches/pair approaching 1 means near-perfect scheduling")
	return t, nil
}
