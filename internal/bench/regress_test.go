package bench

import (
	"os"
	"path/filepath"
	"testing"
)

func sampleReport(date string, legacy bool, ns ...float64) *Report {
	r := &Report{Schema: SchemaVersion, Date: date, GoVersion: "go1.x", GOMAXPROCS: 1, Legacy: legacy}
	for i, v := range ns {
		r.Series = append(r.Series, Series{
			Name:        []string{"a/one", "b/two", "c/three"}[i],
			Iterations:  100,
			NsPerOp:     v,
			AllocsPerOp: int64(i),
			Extra:       map[string]float64{"cost_ratio": 1.25},
		})
	}
	return r
}

func TestReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_2026-01-02.json")
	want := sampleReport("2026-01-02", false, 100, 200, 300)
	if err := WriteReport(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Date != want.Date || got.Legacy != want.Legacy || len(got.Series) != len(want.Series) {
		t.Fatalf("round trip mangled header: %+v", got)
	}
	for i := range want.Series {
		g, w := got.Series[i], want.Series[i]
		if g.Name != w.Name || g.Iterations != w.Iterations || g.NsPerOp != w.NsPerOp ||
			g.AllocsPerOp != w.AllocsPerOp || g.BytesPerOp != w.BytesPerOp {
			t.Fatalf("series %d mangled: got %+v, want %+v", i, g, w)
		}
		if g.Extra["cost_ratio"] != 1.25 {
			t.Fatalf("series %d lost Extra: %+v", i, g)
		}
	}
}

func TestLoadReportRejectsWrongSchema(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_x.json")
	data := `{"schema": 999, "date": "2026-01-02", "series": []}`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadReport(path); err == nil {
		t.Fatal("LoadReport accepted wrong schema")
	}
}

// TestLatestReportSkipsLegacyAndSelf pins the baseline auto-pick rules:
// newest first, never a -legacy report, never the file being written.
func TestLatestReportSkipsLegacyAndSelf(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, r *Report) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := WriteReport(p, r); err != nil {
			t.Fatal(err)
		}
		return p
	}
	old := write("BENCH_2026-01-01.json", sampleReport("2026-01-01", false, 100))
	write("BENCH_2026-01-02-legacy.json", sampleReport("2026-01-02", true, 500))
	cur := write("BENCH_2026-01-03.json", sampleReport("2026-01-03", false, 90))

	path, r, err := LatestReport(dir, cur)
	if err != nil {
		t.Fatal(err)
	}
	if path != old || r == nil || r.Date != "2026-01-01" {
		t.Fatalf("LatestReport picked %q (%+v), want %q", path, r, old)
	}

	// With no usable candidates: not an error, just absent.
	empty := t.TempDir()
	path, r, err = LatestReport(empty, "")
	if err != nil || path != "" || r != nil {
		t.Fatalf("empty dir: got %q,%v,%v", path, r, err)
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	base := sampleReport("2026-01-01", false, 100, 200, 300)
	cur := sampleReport("2026-01-02", false, 150, 190, 300) // a/one +50%
	cur.Series[2].Name = "d/renamed"                        // c/three vanished, d appeared

	c := Compare(base, cur)
	if len(c.Deltas) != 2 {
		t.Fatalf("got %d deltas, want 2", len(c.Deltas))
	}
	reg := c.Regressions(1.30)
	if len(reg) != 1 || reg[0].Name != "a/one" {
		t.Fatalf("regressions = %+v, want just a/one", reg)
	}
	if reg[0].Ratio < 1.49 || reg[0].Ratio > 1.51 {
		t.Fatalf("a/one ratio = %v, want 1.5", reg[0].Ratio)
	}
	if len(c.Regressions(1.60)) != 0 {
		t.Fatal("tolerance 1.60 should absorb a +50% slowdown")
	}
	// Sub-noise-floor absolute deltas never regress, whatever the ratio:
	// a 0.6 -> 0.9 ns swing is host frequency, not code.
	nano := Compare(sampleReport("2026-01-01", false, 0.6), sampleReport("2026-01-02", false, 0.9))
	if reg := nano.Regressions(1.30); len(reg) != 0 {
		t.Fatalf("sub-floor delta flagged as regression: %+v", reg)
	}
	if len(c.Gone) != 1 || c.Gone[0] != "c/three" {
		t.Fatalf("Gone = %v, want [c/three]", c.Gone)
	}
	if len(c.Added) != 1 || c.Added[0] != "d/renamed" {
		t.Fatalf("Added = %v, want [d/renamed]", c.Added)
	}
	if out := FormatComparison(c, 1.30); out == "" {
		t.Fatal("FormatComparison returned nothing")
	}
}

// TestPerfSuiteShape guards the regression harness itself: both arms must
// expose the same, sufficiently large, duplicate-free series name set —
// otherwise before/after JSONs silently stop being comparable.
func TestPerfSuiteShape(t *testing.T) {
	names := func(legacy bool) map[string]bool {
		out := map[string]bool{}
		for _, pc := range PerfSuite(legacy) {
			if pc.Name == "" || out[pc.Name] {
				t.Fatalf("empty or duplicate series name %q (legacy=%v)", pc.Name, legacy)
			}
			if pc.Run == nil {
				t.Fatalf("series %q has no Run", pc.Name)
			}
			out[pc.Name] = true
		}
		return out
	}
	cur := names(false)
	leg := names(true)
	if len(cur) < 6 {
		t.Fatalf("suite has %d series, want >= 6", len(cur))
	}
	if len(cur) != len(leg) {
		t.Fatalf("arm sizes differ: %d vs %d", len(cur), len(leg))
	}
	for n := range cur {
		if !leg[n] {
			t.Fatalf("series %q missing from legacy arm", n)
		}
	}
}
