package bench

import (
	"fmt"
	"math/rand"

	"joinpebble/internal/engine"
	"joinpebble/internal/graph"
	"joinpebble/internal/join"
	"joinpebble/internal/sets"
	"joinpebble/internal/spatial"
	"joinpebble/internal/workload"
)

// E8Universality verifies Lemma 3.3: every bipartite graph is the join
// graph of a set-containment instance (round trip through the
// construction is exact).
func E8Universality() (*Table, error) {
	t := &Table{
		ID:     "E8",
		Title:  "set-containment universality",
		Claim:  "every bipartite G is a containment join graph (Lemma 3.3)",
		Header: []string{"|R|x|S|", "m", "max |s_j|", "round trip exact"},
	}
	rng := rand.New(rand.NewSource(808))
	for _, sz := range [][3]int{{3, 3, 6}, {4, 5, 12}, {6, 6, 20}, {8, 8, 40}, {12, 10, 80}} {
		b := graph.RandomConnectedBipartite(rng, sz[0], sz[1], sz[2])
		inst := sets.RealizeBipartite(b)
		back := inst.JoinGraph()
		maxCard := 0
		for _, s := range inst.S {
			if s.Len() > maxCard {
				maxCard = s.Len()
			}
		}
		t.AddRow(fmt.Sprintf("%dx%d", sz[0], sz[1]), b.M(), maxCard, back.Equal(b))
	}
	return t, nil
}

// E9Spatial verifies Lemma 3.4: rectangle instances realizing the G_n
// family, agreed on by all three spatial join algorithms.
func E9Spatial() (*Table, error) {
	t := &Table{
		ID:     "E9",
		Title:  "spatial realization of G_n",
		Claim:  "rectangle-overlap instances realize the Fig 1a family (Lemma 3.4)",
		Header: []string{"n", "pairs want", "nested loop", "sweep", "R-tree", "polygons (SAT)", "graph = G_n"},
	}
	for _, n := range []int{2, 4, 8, 16, 64} {
		inst := spatial.RealizeSpider(n)
		nl := join.NestedLoop(inst.R, inst.S, join.Overlaps)
		sw := join.SweepJoin(inst.R, inst.S)
		rt := join.RTreeJoin(inst.R, inst.S, 8)
		poly := spatial.RealizeSpiderPolygons(n)
		pp := join.PolygonNestedLoop(poly.R, poly.S, true)
		b := join.GraphFromPairs(len(inst.R), len(inst.S), nl)
		pb := graph.NewBipartite(len(poly.R), len(poly.S))
		for _, p := range pp {
			pb.AddEdge(p.L, p.R)
		}
		// The expected join graph is exactly the spider's edge set.
		want := graph.NewBipartite(n+1, n)
		for i := 0; i < n; i++ {
			want.AddEdge(0, i)
			want.AddEdge(1+i, i)
		}
		t.AddRow(n, 2*n, len(nl), len(sw), len(rt), len(pp), b.Equal(want) && pb.Equal(want))
	}
	t.Notes = append(t.Notes,
		"the polygon column uses a chamfered-octagon realization with the SAT overlap test — Lemma 3.4 is stated for polygons; rectangles are its special case")
	return t, nil
}

// E15Algorithms measures the pebbling cost of real join algorithms'
// emission orders — the narrative claim of §1/§5 that equijoins admit
// satisfying algorithms (the zigzag merge is a perfect pebbling) while
// set-containment and spatial algorithms pay jumps.
func E15Algorithms() (*Table, error) {
	t := &Table{
		ID:     "E15",
		Title:  "pebbling cost of real join algorithms",
		Claim:  "equijoin algorithms realize (near-)perfect pebblings; spatial and containment algorithms pay jumps (§1, §5)",
		Header: []string{"workload", "algorithm", "m", "π̂ emitted", "π emitted", "jumps", "perfect"},
	}
	// Each workload flows through the engine pipeline: Generate builds the
	// instance (relations + join graph + guarantees), AuditPairs scores an
	// algorithm's emission order against it — no per-predicate graph
	// plumbing here.
	audit := func(in *engine.Instance, algo string, pairs []join.Pair) error {
		if len(pairs) == 0 {
			return nil
		}
		a, err := in.AuditPairs(pairs)
		if err != nil {
			return err
		}
		t.AddRow(in.Family, algo, a.Pairs, a.Cost, a.EffectiveCost, a.Jumps, a.Perfect)
		return nil
	}

	// Equijoin workload.
	eqIn, err := engine.Generate(workload.Equijoin{LeftSize: 300, RightSize: 300, Domain: 40, Skew: 0.8}, 15)
	if err != nil {
		return nil, err
	}
	le, re := eqIn.Left.Ints(), eqIn.Right.Ints()
	if err := audit(eqIn, "sort-merge (zigzag)", join.SortMergeZigzag(le, re)); err != nil {
		return nil, err
	}
	if err := audit(eqIn, "sort-merge (rewind)", join.SortMerge(le, re)); err != nil {
		return nil, err
	}
	if err := audit(eqIn, "hash join", join.HashJoin(le, re)); err != nil {
		return nil, err
	}

	// Set-containment workload.
	scIn, err := engine.Generate(workload.SetContainment{LeftSize: 120, RightSize: 120, Universe: 400,
		LeftMax: 3, RightMax: 9, Correlated: true}, 16)
	if err != nil {
		return nil, err
	}
	ls, rs := scIn.Left.Sets(), scIn.Right.Sets()
	if err := audit(scIn, "nested loop", join.NestedLoop(ls, rs, join.Contains)); err != nil {
		return nil, err
	}
	if err := audit(scIn, "signature NL", join.SignatureNestedLoop(ls, rs)); err != nil {
		return nil, err
	}
	if err := audit(scIn, "inverted index", join.InvertedIndexJoin(ls, rs)); err != nil {
		return nil, err
	}
	if err := audit(scIn, "partitioned", join.PartitionedSetJoin(ls, rs, 8)); err != nil {
		return nil, err
	}

	// Spatial workload.
	spIn, err := engine.Generate(workload.Spatial{LeftSize: 150, RightSize: 150, Span: 60, MaxExtent: 6, Clusters: 0}, 17)
	if err != nil {
		return nil, err
	}
	lr, rr := spIn.Left.Rects(), spIn.Right.Rects()
	if err := audit(spIn, "nested loop", join.NestedLoop(lr, rr, join.Overlaps)); err != nil {
		return nil, err
	}
	if err := audit(spIn, "plane sweep", join.SweepJoin(lr, rr)); err != nil {
		return nil, err
	}
	if err := audit(spIn, "R-tree probe", join.RTreeJoin(lr, rr, 8)); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"π = m means the algorithm's own emission order is already an optimal pebbling (Definition 2.3)")
	return t, nil
}
