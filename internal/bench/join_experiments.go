package bench

import (
	"fmt"
	"math/rand"

	"joinpebble/internal/graph"
	"joinpebble/internal/join"
	"joinpebble/internal/sets"
	"joinpebble/internal/spatial"
	"joinpebble/internal/workload"
)

// E8Universality verifies Lemma 3.3: every bipartite graph is the join
// graph of a set-containment instance (round trip through the
// construction is exact).
func E8Universality() (*Table, error) {
	t := &Table{
		ID:     "E8",
		Title:  "set-containment universality",
		Claim:  "every bipartite G is a containment join graph (Lemma 3.3)",
		Header: []string{"|R|x|S|", "m", "max |s_j|", "round trip exact"},
	}
	rng := rand.New(rand.NewSource(808))
	for _, sz := range [][3]int{{3, 3, 6}, {4, 5, 12}, {6, 6, 20}, {8, 8, 40}, {12, 10, 80}} {
		b := graph.RandomConnectedBipartite(rng, sz[0], sz[1], sz[2])
		inst := sets.RealizeBipartite(b)
		back := inst.JoinGraph()
		maxCard := 0
		for _, s := range inst.S {
			if s.Len() > maxCard {
				maxCard = s.Len()
			}
		}
		t.AddRow(fmt.Sprintf("%dx%d", sz[0], sz[1]), b.M(), maxCard, back.Equal(b))
	}
	return t, nil
}

// E9Spatial verifies Lemma 3.4: rectangle instances realizing the G_n
// family, agreed on by all three spatial join algorithms.
func E9Spatial() (*Table, error) {
	t := &Table{
		ID:     "E9",
		Title:  "spatial realization of G_n",
		Claim:  "rectangle-overlap instances realize the Fig 1a family (Lemma 3.4)",
		Header: []string{"n", "pairs want", "nested loop", "sweep", "R-tree", "polygons (SAT)", "graph = G_n"},
	}
	for _, n := range []int{2, 4, 8, 16, 64} {
		inst := spatial.RealizeSpider(n)
		nl := join.NestedLoop(inst.R, inst.S, join.Overlaps)
		sw := join.SweepJoin(inst.R, inst.S)
		rt := join.RTreeJoin(inst.R, inst.S, 8)
		poly := spatial.RealizeSpiderPolygons(n)
		pp := join.PolygonNestedLoop(poly.R, poly.S, true)
		b := join.GraphFromPairs(len(inst.R), len(inst.S), nl)
		pb := graph.NewBipartite(len(poly.R), len(poly.S))
		for _, p := range pp {
			pb.AddEdge(p.L, p.R)
		}
		// The expected join graph is exactly the spider's edge set.
		want := graph.NewBipartite(n+1, n)
		for i := 0; i < n; i++ {
			want.AddEdge(0, i)
			want.AddEdge(1+i, i)
		}
		t.AddRow(n, 2*n, len(nl), len(sw), len(rt), len(pp), b.Equal(want) && pb.Equal(want))
	}
	t.Notes = append(t.Notes,
		"the polygon column uses a chamfered-octagon realization with the SAT overlap test — Lemma 3.4 is stated for polygons; rectangles are its special case")
	return t, nil
}

// E15Algorithms measures the pebbling cost of real join algorithms'
// emission orders — the narrative claim of §1/§5 that equijoins admit
// satisfying algorithms (the zigzag merge is a perfect pebbling) while
// set-containment and spatial algorithms pay jumps.
func E15Algorithms() (*Table, error) {
	t := &Table{
		ID:     "E15",
		Title:  "pebbling cost of real join algorithms",
		Claim:  "equijoin algorithms realize (near-)perfect pebblings; spatial and containment algorithms pay jumps (§1, §5)",
		Header: []string{"workload", "algorithm", "m", "π̂ emitted", "π emitted", "jumps", "perfect"},
	}
	audit := func(workloadName, algo string, b *graph.Bipartite, pairs []join.Pair) error {
		if len(pairs) == 0 {
			return nil
		}
		a, err := join.AuditPairs(b, pairs)
		if err != nil {
			return err
		}
		t.AddRow(workloadName, algo, a.Pairs, a.Cost, a.EffectiveCost, a.Jumps, a.Perfect)
		return nil
	}

	// Equijoin workload.
	eq := workload.Equijoin{LeftSize: 300, RightSize: 300, Domain: 40, Skew: 0.8}
	le, re := eq.Generate(15)
	bEq := join.Graph(le.Ints(), re.Ints(), join.EqInt)
	if err := audit("equijoin", "sort-merge (zigzag)", bEq, join.SortMergeZigzag(le.Ints(), re.Ints())); err != nil {
		return nil, err
	}
	if err := audit("equijoin", "sort-merge (rewind)", bEq, join.SortMerge(le.Ints(), re.Ints())); err != nil {
		return nil, err
	}
	if err := audit("equijoin", "hash join", bEq, join.HashJoin(le.Ints(), re.Ints())); err != nil {
		return nil, err
	}

	// Set-containment workload.
	sc := workload.SetContainment{LeftSize: 120, RightSize: 120, Universe: 400,
		LeftMax: 3, RightMax: 9, Correlated: true}
	ls, rs := sc.Generate(16)
	bSc := join.Graph(ls.Sets(), rs.Sets(), join.Contains)
	if err := audit("containment", "nested loop", bSc, join.NestedLoop(ls.Sets(), rs.Sets(), join.Contains)); err != nil {
		return nil, err
	}
	if err := audit("containment", "signature NL", bSc, join.SignatureNestedLoop(ls.Sets(), rs.Sets())); err != nil {
		return nil, err
	}
	if err := audit("containment", "inverted index", bSc, join.InvertedIndexJoin(ls.Sets(), rs.Sets())); err != nil {
		return nil, err
	}
	if err := audit("containment", "partitioned", bSc, join.PartitionedSetJoin(ls.Sets(), rs.Sets(), 8)); err != nil {
		return nil, err
	}

	// Spatial workload.
	sp := workload.Spatial{LeftSize: 150, RightSize: 150, Span: 60, MaxExtent: 6, Clusters: 0}
	lr, rr := sp.Generate(17)
	bSp := join.Graph(lr.Rects(), rr.Rects(), join.Overlaps)
	if err := audit("spatial", "nested loop", bSp, join.NestedLoop(lr.Rects(), rr.Rects(), join.Overlaps)); err != nil {
		return nil, err
	}
	if err := audit("spatial", "plane sweep", bSp, join.SweepJoin(lr.Rects(), rr.Rects())); err != nil {
		return nil, err
	}
	if err := audit("spatial", "R-tree probe", bSp, join.RTreeJoin(lr.Rects(), rr.Rects(), 8)); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"π = m means the algorithm's own emission order is already an optimal pebbling (Definition 2.3)")
	return t, nil
}
