package bench

import (
	"fmt"
	"math/rand"

	"joinpebble/internal/core"
	"joinpebble/internal/family"
	"joinpebble/internal/graph"
	"joinpebble/internal/solver"
)

// E18KPebbles measures the extension the model invites: the same game
// with k pebbles (a k-frame buffer pool in the [6] reading). Headline:
// one extra pebble dissolves the Theorem 3.3 lower bound — G_n costs
// m + 1 moves with three pebbles (one parked on the hub) versus
// 1.25m − 1 with two — so the separation between equijoins and
// spatial/containment joins is specifically a two-pebble phenomenon.
func E18KPebbles() (*Table, error) {
	t := &Table{
		ID:     "E18",
		Title:  "the k-pebble extension",
		Claim:  "G_n needs 1.25m−1 moves with 2 pebbles but only m+1 with 3 (extension of §2's model)",
		Header: []string{"graph", "m", "2-pebble optimum", "3-pebble strategy", "greedy k=2", "greedy k=3", "greedy k=4"},
	}
	for _, n := range []int{4, 8, 16, 32} {
		g := family.Spider(n).Graph()
		m := g.M()
		twoOpt := family.SpiderOptimalEffectiveCost(n) + 1 // π̂

		// Explicit 3-pebble strategy (verified).
		s := &core.KScheme{K: 3}
		s.Moves = append(s.Moves, core.KMove{Pebble: 0, To: 0})
		for i := 0; i < n; i++ {
			s.Moves = append(s.Moves,
				core.KMove{Pebble: 1, To: n + 1 + i},
				core.KMove{Pebble: 2, To: 1 + i})
		}
		threeCost, err := core.VerifyK(g, s)
		if err != nil {
			return nil, err
		}
		row := []any{fmt.Sprintf("spider-%d", n), m, twoOpt, threeCost}
		for _, k := range []int{2, 3, 4} {
			gs, err := core.GreedyK(g, k)
			if err != nil {
				return nil, err
			}
			if _, err := core.VerifyK(g, gs); err != nil {
				return nil, err
			}
			row = append(row, gs.Cost())
		}
		t.AddRow(row...)
	}
	// A random control: extra pebbles help less on graphs without a hub
	// structure to park on.
	rng := rand.New(rand.NewSource(1818))
	g := graph.RandomConnectedBipartite(rng, 6, 6, 20).Graph()
	_, twoOpt, err := solver.SolveAndVerify(solver.Exact{}, g)
	if err != nil {
		return nil, err
	}
	row := []any{"random (6x6, m=20)", g.M(), twoOpt, "n/a"}
	for _, k := range []int{2, 3, 4} {
		gs, err := core.GreedyK(g, k)
		if err != nil {
			return nil, err
		}
		if _, err := core.VerifyK(g, gs); err != nil {
			return nil, err
		}
		row = append(row, gs.Cost())
	}
	t.AddRow(row...)
	t.Notes = append(t.Notes,
		"the 3-pebble spider strategy parks one pebble on the center: m+1 moves, matching what a perfect 2-pebble scheme achieves on easy graphs")
	return t, nil
}
