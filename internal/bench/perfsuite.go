package bench

// PerfSuite pins the hot-path benchmarks that cmd/bench measures and
// regression-checks. Every case exists in two arms selected by the legacy
// flag: the "new" arm exercises the compact-index code paths (frozen CSR
// lookups, implicit line-graph views, parallel component solving) and the
// "legacy" arm the pre-optimization ones (map lookups, materialized
// map-backed line graphs, sequential solving). Series names are identical
// across arms so a legacy BENCH_*-legacy.json diffs cleanly against a
// current one — that pair is the before/after evidence for the rewrite.
//
// Workloads are deterministic (fixed seeds, fixed families) so ns/op is
// the only thing that varies between runs.

import (
	"context"
	"math/rand"
	"testing"

	"joinpebble/internal/core"
	"joinpebble/internal/engine"
	"joinpebble/internal/family"
	"joinpebble/internal/faultinject"
	"joinpebble/internal/graph"
	"joinpebble/internal/schemecache"
	"joinpebble/internal/solver"
)

// PerfCase is one pinned benchmark.
type PerfCase struct {
	// Name is the stable series identifier, "<operation>/<workload>".
	Name string
	// Run is the benchmark body.
	Run func(b *testing.B)
	// Extra holds workload-derived scalars recorded alongside the timing
	// (solver cost ratios etc.); computed once at suite construction.
	Extra map[string]float64
}

// seed for the random workloads. Changing it invalidates comparisons
// against existing BENCH_*.json files, so don't.
const perfSeed = 7

// SiteBenchDisarmed is the never-armed fault site the
// faultinject/disarmed-fire series measures (DESIGN.md site registry).
const SiteBenchDisarmed = "bench/disarmed-site"

func perfBipartite(nl, nr, m int) *graph.Graph {
	rng := rand.New(rand.NewSource(perfSeed))
	return graph.RandomConnectedBipartite(rng, nl, nr, m).Graph()
}

// multiComponent returns k disjoint copies of a random connected graph
// with n vertices and m edges each.
func multiComponent(k, n, m int) *graph.Graph {
	rng := rand.New(rand.NewSource(perfSeed))
	out := graph.New(0)
	for i := 0; i < k; i++ {
		out = graph.DisjointUnion(out, graph.RandomConnectedGraph(rng, n, m, 0))
	}
	return out
}

// solveArm configures the solver arm: sequential + materialized line
// graphs for legacy, parallel + implicit views otherwise. It returns a
// restore func for the package-level Parallelism knob.
func solveArm(legacy bool) (solver.Approx125, func()) {
	prev := solver.Parallelism
	if legacy {
		solver.Parallelism = 1
	} else {
		solver.Parallelism = 0
	}
	return solver.Approx125{Materialize: legacy}, func() { solver.Parallelism = prev }
}

// costRatio runs s once on g and returns π̂/m — recorded as a series Extra
// so the perf arms are provably solving equally well, not just fast.
func costRatio(s solver.Solver, g *graph.Graph) float64 {
	_, cost, err := solver.SolveAndVerify(s, g.Clone())
	if err != nil {
		panic("bench: perf workload solver failed: " + err.Error())
	}
	return float64(cost) / float64(g.M())
}

// SmokeSuite returns reduced-size kernel benchmarks for CI smoke runs:
// the bitset claw scan (sequential and parallel) and the arena-backed
// approx-1.25 at a fraction of the pinned workload sizes. Series names
// carry a smoke- prefix so they never match — and never stand in for —
// the pinned regression series; the point is catching kernel rot
// (panics, wrong answers, fallback misfires) in seconds, not timing.
func SmokeSuite() []PerfCase {
	spider := family.Spider(200).Graph()  // m = 400
	spiderP := family.Spider(300).Graph() // m = 600: line graph n >= parallel floor
	return []PerfCase{
		{
			Name: "smoke-clawfree-linegraph/spider-200-m400",
			Run: func(b *testing.B) {
				scratch := graph.NewClawScratch()
				for i := 0; i < b.N; i++ {
					if !graph.ClawFreeLineGraphScratch(spider.Clone(), scratch) {
						b.Fatal("spider line graph must be claw-free")
					}
				}
			},
		},
		{
			Name: "smoke-clawfree-parallel/spider-300-m600",
			Run: func(b *testing.B) {
				prev := solver.Parallelism
				solver.Parallelism = 4 // engage the parallel claw scan
				defer func() { solver.Parallelism = prev }()
				scratch := graph.NewClawScratch()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if !graph.ClawFreeLineGraphScratch(spiderP.Clone(), scratch) {
						b.Fatal("spider line graph must be claw-free")
					}
				}
			},
		},
		{
			Name: "smoke-canon-fingerprint/spider-200-m400",
			Run: func(b *testing.B) {
				sc := graph.NewCanonScratch()
				for i := 0; i < b.N; i++ {
					graph.Canonicalize(spider.Clone(), sc)
				}
			},
		},
		{
			Name: "smoke-schemecache/hit-spider-200",
			Run: func(b *testing.B) {
				p := engine.Planner{Cache: schemecache.New(1<<24, 0)}
				in := engine.FromBipartite("spider", family.Spider(200))
				ctx := context.Background()
				if _, err := p.Run(ctx, in); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := p.Run(ctx, in)
					if err != nil {
						b.Fatal(err)
					}
					if res.Solver != engine.CachedSolverName {
						b.Fatal("warm run missed the cache")
					}
				}
			},
		},
		{
			Name: "smoke-approx125/spider-200-m400",
			Run: func(b *testing.B) {
				s, restore := solveArm(false)
				defer restore()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := s.Solve(spider.Clone()); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
	}
}

// PerfSuite returns the pinned benchmark cases for one arm.
func PerfSuite(legacy bool) []PerfCase {
	spider := family.Spider(1000).Graph() // m = 2000, claw-free line graph
	bip := perfBipartite(60, 40, 2400)    // dense bipartite, m = 2400
	wide := perfBipartite(100, 100, 3000) // sparser bipartite, m = 3000
	multi := multiComponent(8, 120, 300)  // 8 components, m = 2400 total
	equi := func() *graph.Graph {         // 12 complete-bipartite islands, m = 4800
		out := graph.New(0)
		for i := 0; i < 12; i++ {
			out = graph.DisjointUnion(out, graph.CompleteBipartite(10, 40).Graph())
		}
		return out
	}()

	approxSpider, restore := solveArm(legacy)
	ratioSpider := costRatio(approxSpider, spider)
	ratioBip := costRatio(approxSpider, bip)
	ratioEqui := costRatio(solver.Equijoin{}, equi)
	restore()

	// A long valid scheme for the simulate workload, fixed per arm.
	simScheme, _, err := solver.SolveAndVerify(solver.Naive{}, bip.Clone())
	if err != nil {
		panic("bench: naive scheme failed: " + err.Error())
	}

	cases := []PerfCase{
		{
			Name: "linegraph/spider-1000-m2000",
			Run: func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					g := spider.Clone()
					if legacy {
						graph.LineGraphReference(g)
					} else {
						graph.LineGraph(g)
					}
				}
			},
		},
		{
			Name: "linegraph/bip-60x40-m2400",
			Run: func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					g := bip.Clone()
					if legacy {
						graph.LineGraphReference(g)
					} else {
						graph.LineGraph(g)
					}
				}
			},
		},
		{
			Name: "clawfree-linegraph/spider-1000-m2000",
			Run: func(b *testing.B) {
				// The legacy arm pins the scalar HasEdge-probe kernel over a
				// materialized map-backed line graph; the new arm runs the
				// bitset kernel over the implicit view with scratch reused
				// across scans, as the solver ladder does.
				scratch := graph.NewClawScratch()
				for i := 0; i < b.N; i++ {
					g := spider.Clone()
					var free bool
					if legacy {
						lg := graph.LineGraphReference(g)
						lg.Freeze()
						_, _, claw := graph.FindClawScalar(lg, nil)
						free = !claw
					} else {
						free = graph.ClawFreeLineGraphScratch(g, scratch)
					}
					if !free {
						b.Fatal("spider line graph must be claw-free")
					}
				}
			},
		},
		{
			Name:  "approx125/spider-1000-m2000",
			Extra: map[string]float64{"cost_ratio": ratioSpider},
			Run: func(b *testing.B) {
				s, restore := solveArm(legacy)
				defer restore()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := s.Solve(spider.Clone()); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
		{
			Name:  "approx125/bip-60x40-m2400",
			Extra: map[string]float64{"cost_ratio": ratioBip},
			Run: func(b *testing.B) {
				s, restore := solveArm(legacy)
				defer restore()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := s.Solve(bip.Clone()); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
		{
			Name:  "solve-multicomponent/approx125-8x300",
			Extra: map[string]float64{"components": 8},
			Run: func(b *testing.B) {
				s, restore := solveArm(legacy)
				defer restore()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := s.Solve(multi.Clone()); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
		{
			Name:  "equijoin/islands-12xK10-40-m4800",
			Extra: map[string]float64{"cost_ratio": ratioEqui},
			Run: func(b *testing.B) {
				_, restore := solveArm(legacy)
				defer restore()
				s := solver.Equijoin{}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := s.Solve(equi.Clone()); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
		{
			Name: "simulate/bip-60x40-m2400",
			Run: func(b *testing.B) {
				// Preparation differs by design: frozen CSR vs plain map
				// graph. Simulating is the repeated operation, so only it
				// is timed.
				g := bip.Clone()
				if !legacy {
					g.Freeze()
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := core.Simulate(g, simScheme)
					if err != nil {
						b.Fatal(err)
					}
					if !res.Complete() {
						b.Fatal("scheme must delete every edge")
					}
				}
			},
		},
		{
			// The disarmed fault-injection fast path: one atomic load, no
			// branches taken. This series pins the claim that shipping the
			// sites in hot loops (Held–Karp checkpoints, component solves)
			// is free when nothing is armed; the solver series above prove
			// it end to end against the pre-injection baseline.
			Name: "faultinject/disarmed-fire",
			Run: func(b *testing.B) {
				faultinject.Reset()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := faultinject.Fire(SiteBenchDisarmed); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
		{
			Name: "canon-fingerprint/spider-1000-m2000",
			Run: func(b *testing.B) {
				sc := graph.NewCanonScratch()
				g := spider.Clone()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					graph.Canonicalize(g, sc)
				}
			},
		},
		{
			Name: "canon-fingerprint/bip-60x40-m2400",
			Run: func(b *testing.B) {
				sc := graph.NewCanonScratch()
				g := bip.Clone()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					graph.Canonicalize(g, sc)
				}
			},
		},
		{
			// Warm-cache planner run on the spider workload: fingerprint,
			// shard lookup, translate, re-verify. Compare against the cold
			// approx125/spider-1000-m2000 series above — the gap is the
			// latency the scheme cache buys on repeated instances.
			Name: "schemecache/hit",
			Run: func(b *testing.B) {
				p := engine.Planner{Cache: schemecache.New(1<<26, 0)}
				in := engine.FromBipartite("spider", family.Spider(1000))
				ctx := context.Background()
				if _, err := p.Run(ctx, in); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := p.Run(ctx, in)
					if err != nil {
						b.Fatal(err)
					}
					if res.Solver != engine.CachedSolverName {
						b.Fatal("warm run missed the cache")
					}
				}
			},
		},
		{
			// Cold cache-on planner run: miss, full solve, canonical insert.
			// Against approx125/spider-1000-m2000 this prices the cache's
			// overhead on a solve that gains nothing from it.
			Name: "schemecache/miss",
			Run: func(b *testing.B) {
				in := engine.FromBipartite("spider", family.Spider(1000))
				ctx := context.Background()
				var p engine.Planner
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					p.Cache = schemecache.New(1<<26, 0)
					res, err := p.Run(ctx, in)
					if err != nil {
						b.Fatal(err)
					}
					if res.Solver == engine.CachedSolverName {
						b.Fatal("cold run cannot hit")
					}
				}
			},
		},
		{
			Name: "hasedge/bip-100x100-m3000",
			Run: func(b *testing.B) {
				g := wide.Clone()
				if !legacy {
					g.Freeze()
				}
				n := g.N()
				b.ResetTimer()
				hits := 0
				for i := 0; i < b.N; i++ {
					if g.HasEdge(i%n, (i*31+7)%n) {
						hits++
					}
				}
				_ = hits
			},
		},
	}
	return cases
}
