package bench

import (
	"math/rand"
	"strconv"

	"joinpebble/internal/graph"
	"joinpebble/internal/join"
	"joinpebble/internal/partition"
	"joinpebble/internal/workload"
)

// E16Partition explores the paper's closing open problem (§5): how hard
// is finding the optimal mapping of R and S into partitions R_i, S_j?
// The paper states the problem is NP-complete for all three predicate
// classes and conjectures equijoins admit good approximations. Measured
// here: exhaustive optima on tiny instances against the heuristics, and
// at realistic sizes the work of hash (equijoin), grid (spatial) and
// min-element (containment) partitioning against random assignment and
// the read lower bound.
func E16Partition() (*Table, error) {
	t := &Table{
		ID:     "E16",
		Title:  "partitioned-join mapping problem",
		Claim:  "equijoin partitioning is near-optimal by hashing; spatial/containment pay replication (§5 open problem)",
		Header: []string{"workload", "heuristic", "K,L", "active pairs", "work", "lower bound", "work/bound"},
	}
	rng := rand.New(rand.NewSource(1616))

	row := func(workloadName, heuristic string, b *graph.Bipartite, a *partition.Assignment) error {
		st, err := partition.Evaluate(b, a)
		if err != nil {
			return err
		}
		ratio := float64(st.Work) / float64(st.ReadLowerBound)
		t.AddRow(workloadName, heuristic, formatKL(a.K, a.L), st.ActivePairs, st.Work, st.ReadLowerBound, ratio)
		return nil
	}

	// Equijoin: hash vs greedy-graph vs random.
	eq := workload.Equijoin{LeftSize: 200, RightSize: 200, Domain: 30, Skew: 0.5}
	le, re := eq.Generate(21)
	bEq := join.EquiGraph(le.Ints(), re.Ints())
	if err := row("equijoin", "hash(value)", bEq, partition.HashEquijoin(le.Ints(), re.Ints(), 32)); err != nil {
		return nil, err
	}
	if err := row("equijoin", "greedy-graph", bEq, partition.GreedyGraph(bEq, 32, 32)); err != nil {
		return nil, err
	}
	if err := row("equijoin", "random", bEq, partition.Random(rng, 200, 200, 32, 32)); err != nil {
		return nil, err
	}

	// Spatial: grid vs random on clustered data.
	sp := workload.Spatial{LeftSize: 150, RightSize: 150, Span: 100, MaxExtent: 6, Clusters: 4}
	lr, rr := sp.Generate(22)
	bSp := join.Graph(lr.Rects(), rr.Rects(), join.Overlaps)
	if err := row("spatial", "grid(4x4)", bSp, partition.GridSpatial(lr.Rects(), rr.Rects(), 4)); err != nil {
		return nil, err
	}
	if err := row("spatial", "greedy-graph", bSp, partition.GreedyGraph(bSp, 16, 16)); err != nil {
		return nil, err
	}
	if err := row("spatial", "random", bSp, partition.Random(rng, 150, 150, 16, 16)); err != nil {
		return nil, err
	}

	// Containment: min-element vs random on correlated sets.
	sc := workload.SetContainment{LeftSize: 150, RightSize: 150, Universe: 400,
		LeftMax: 3, RightMax: 9, Correlated: true}
	ls, rs := sc.Generate(23)
	bSc := join.Graph(ls.Sets(), rs.Sets(), join.Contains)
	if err := row("containment", "min-element", bSc, partition.MinElementSet(ls.Sets(), rs.Sets(), 16)); err != nil {
		return nil, err
	}
	if err := row("containment", "greedy-graph", bSc, partition.GreedyGraph(bSc, 16, 16)); err != nil {
		return nil, err
	}
	if err := row("containment", "random", bSc, partition.Random(rng, 150, 150, 16, 16)); err != nil {
		return nil, err
	}

	// Ground truth on a tiny instance: exhaustive optimum vs heuristics.
	tiny := graph.RandomConnectedBipartite(rng, 4, 4, 8)
	_, optStats, err := partition.Optimal(tiny, 2, 2, 0)
	if err != nil {
		return nil, err
	}
	t.AddRow("tiny 4x4 ground truth", "exhaustive optimum", "2,2",
		optStats.ActivePairs, optStats.Work, optStats.ReadLowerBound,
		float64(optStats.Work)/float64(optStats.ReadLowerBound))
	if err := row("tiny 4x4 ground truth", "greedy-graph", tiny, partition.GreedyGraph(tiny, 2, 2)); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"the paper asserts the mapping problem is NP-complete for all three classes (no proof given; Optimal here is exhaustive) and conjectures equijoins approximate well — the hash row supports the conjecture")
	return t, nil
}

func formatKL(k, l int) string {
	if k == l {
		return strconv.Itoa(k)
	}
	return strconv.Itoa(k) + "," + strconv.Itoa(l)
}
