package bench

import (
	"fmt"
	"math/rand"

	"joinpebble/internal/family"
	"joinpebble/internal/graph"
	"joinpebble/internal/join"
	"joinpebble/internal/obs"
	"joinpebble/internal/solver"
	"joinpebble/internal/workload"
)

// E5Approx verifies Theorem 3.1 / Lemma 3.1: the DFS-partition scheme
// stays within m + floor((m−1)/4) per component, compared against exact
// optima where feasible.
func E5Approx() (*Table, error) {
	t := &Table{
		ID:     "E5",
		Title:  "1.25 approximation",
		Claim:  "π(approx) <= m + floor((m−1)/4) (Thm 3.1, Lemma 3.1)",
		Header: []string{"graph", "m", "approx π̂", "bound", "exact π̂", "ratio", "within bound"},
	}
	rng := rand.New(rand.NewSource(505))
	type c struct {
		name string
		g    *graph.Graph
	}
	var cases []c
	for i, sz := range [][3]int{{3, 3, 8}, {3, 4, 10}, {4, 4, 13}, {4, 4, 15}} {
		g := graph.RandomConnectedBipartite(rng, sz[0], sz[1], sz[2]).Graph()
		cases = append(cases, c{fmt.Sprintf("random-%d (m=%d)", i, g.M()), g})
	}
	cases = append(cases,
		c{"spider-7", family.Spider(7).Graph()},
		c{"grid-4x4", graph.GridBipartite(4, 4).Graph()},
		c{"random-large", graph.RandomConnectedBipartite(rng, 20, 20, 120).Graph()},
	)
	for _, cs := range cases {
		_, approx, err := solver.SolveAndVerify(solver.Approx125{}, cs.g)
		if err != nil {
			return nil, err
		}
		bound := solver.ApproxCostBound(cs.g)
		exact := "n/a"
		ratio := "n/a"
		if cs.g.M() <= 16 {
			ec, err := solver.OptimalCost(cs.g)
			if err != nil {
				return nil, err
			}
			exact = fmt.Sprint(ec)
			ratio = fmt.Sprintf("%.3f", float64(approx-1)/float64(ec-1))
		}
		t.AddRow(cs.name, cs.g.M(), approx, bound, exact, ratio, approx <= bound)
	}
	return t, nil
}

// E6Equijoin verifies Theorems 3.2 and 4.1: equijoin join graphs pebble
// perfectly, found in time linear in m (wall-clock per edge reported
// across three orders of magnitude).
func E6Equijoin() (*Table, error) {
	t := &Table{
		ID:     "E6",
		Title:  "equijoins pebble perfectly in linear time",
		Claim:  "π(equijoin graph) = m, found in O(m) (Thm 3.2, Thm 4.1)",
		Header: []string{"|R|=|S|", "domain", "skew", "m", "π̂", "m+β₀", "perfect", "ns/edge"},
	}
	for _, sz := range []int{100, 1000, 5000} {
		for _, skew := range []float64{0, 1.2} {
			w := workload.Equijoin{LeftSize: sz, RightSize: sz, Domain: int64(sz / 10), Skew: skew}
			l, r := w.Generate(66)
			b := join.EquiGraph(l.Ints(), r.Ints())
			g, _ := b.Graph().WithoutIsolated()
			if g.M() == 0 {
				continue
			}
			start := obs.Now()
			scheme, cost, err := solver.SolveAndVerify(solver.Equijoin{}, g)
			if err != nil {
				return nil, err
			}
			elapsed := obs.Since(start)
			perfect := scheme.EffectiveCost(g) == g.M()
			t.AddRow(sz, sz/10, skew, g.M(), cost, g.M()+schemeBetti(g), perfect,
				elapsed.Nanoseconds()/int64(g.M()))
		}
	}
	t.Notes = append(t.Notes,
		"ns/edge staying flat across m spanning 100x demonstrates the linear-time claim; the solve includes scheme verification")
	return t, nil
}

func schemeBetti(g *graph.Graph) int {
	// local alias to keep call sites tabular
	n := 0
	for _, comp := range g.Components() {
		if len(comp) > 1 {
			n++
		}
	}
	return n
}

// E7HardFamily verifies Theorem 3.3 / Figure 1: the spider family G_n
// reaches π = 1.25m − 1 (exactly at even n), with exact solver
// confirmation for small n and the jump lower bound at scale.
func E7HardFamily() (*Table, error) {
	t := &Table{
		ID:     "E7",
		Title:  "the hard family G_n",
		Claim:  "π(G_n) = 1.25m − 1 for the Fig 1a family (Thm 3.3)",
		Header: []string{"n", "m", "π closed form", "exact π", "1.25m−1", "approx π̂−1", "J lower bound"},
	}
	for _, n := range []int{2, 3, 4, 5, 6, 7, 8, 16, 32, 64} {
		b := family.Spider(n)
		g := b.Graph()
		m := g.M()
		closed := family.SpiderOptimalEffectiveCost(n)
		exact := "n/a"
		if n <= 9 {
			ec, err := solver.OptimalEffectiveCost(g)
			if err != nil {
				return nil, err
			}
			if ec != closed {
				return nil, fmt.Errorf("E7: closed form %d != exact %d at n=%d", closed, ec, n)
			}
			exact = fmt.Sprint(ec)
		}
		_, approx, err := solver.SolveAndVerify(solver.Approx125{}, g)
		if err != nil {
			return nil, err
		}
		paperBound := fmt.Sprintf("%.2f", 1.25*float64(m)-1)
		t.AddRow(n, m, closed, exact, paperBound, approx-1, (m/2-2+1)/2)
	}
	t.Notes = append(t.Notes,
		"closed form = m + floor((n−1)/2); equals 1.25m−1 exactly when n is even (the theorem is asymptotic)")
	return t, nil
}
