package bench

// Regression harness: a small schema for persisting benchmark results as
// BENCH_<date>.json files plus a comparator that flags slowdowns against
// the previous report. cmd/bench is the driver; EXPERIMENTS tables (the
// rest of this package) verify *claims*, this file verifies *speed*.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"joinpebble/internal/obs"
)

// SchemaVersion identifies the BENCH_*.json layout. Bump on incompatible
// changes so Compare can refuse to diff across schemas.
const SchemaVersion = 1

// Series is one pinned benchmark's measurement. Names are stable
// identifiers of the form "<operation>/<workload>" — comparisons match on
// them, so renaming a series silently drops its regression coverage.
type Series struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// Extra carries workload-derived scalars that should stay constant
	// across runs — e.g. a solver's cost ratio π̂/m — so a perf win that
	// quietly worsens solution quality is visible in the same file.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Report is the on-disk BENCH_<date>.json document.
type Report struct {
	Schema     int    `json:"schema"`
	Date       string `json:"date"` // YYYY-MM-DD
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Legacy marks a report produced with the pre-optimization code paths
	// (map-backed line graphs, unfrozen lookups, sequential solving).
	// Legacy reports are never auto-picked as baselines; they exist as the
	// "before" arm of a before/after pair.
	Legacy bool `json:"legacy,omitempty"`
	// Smoke marks a reduced-size kernel smoke run (cmd/bench -smoke).
	// Smoke reports use distinct series names and are never auto-picked
	// as baselines.
	Smoke bool `json:"smoke,omitempty"`
	// Serve marks a service-level load-generator report (cmd/loadgen):
	// end-to-end HTTP latencies and outcome fractions, not kernel
	// timings. Serve reports are never auto-picked as baselines.
	Serve  bool     `json:"serve,omitempty"`
	Series []Series `json:"series"`
	// Metrics is the instrumentation snapshot taken after the suite ran —
	// counters like pebble acquisitions and claw checks alongside the
	// timings, so a report records what the suite did, not just how fast.
	// Optional; omitted by readers of older reports. Its presence does not
	// bump SchemaVersion because consumers ignore unknown fields.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
}

// Find returns the named series, if present.
func (r *Report) Find(name string) (Series, bool) {
	for _, s := range r.Series {
		if s.Name == name {
			return s, true
		}
	}
	return Series{}, false
}

// WriteReport writes r as indented JSON to path. The write is atomic
// (temp file + rename), so an interrupted run can never leave a truncated
// BENCH_*.json that a later run would pick as its baseline and fail to
// parse.
func WriteReport(path string, r *Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: marshal report: %w", err)
	}
	data = append(data, '\n')
	if err := obs.AtomicWriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("bench: write report: %w", err)
	}
	return nil
}

// LoadReport reads a BENCH_*.json file.
func LoadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench: read report: %w", err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	if r.Schema != SchemaVersion {
		return nil, fmt.Errorf("bench: %s has schema %d, want %d", path, r.Schema, SchemaVersion)
	}
	return &r, nil
}

// LatestReport finds the most recent non-legacy, non-smoke, non-serve
// BENCH_*.json
// in dir,
// excluding the file named skip (the report about to be written). File
// names sort chronologically because the date is zero-padded ISO. It
// returns ("", nil, nil) when no prior report exists — the first run of a
// fresh checkout has nothing to compare against, which is not an error.
func LatestReport(dir, skip string) (string, *Report, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", nil, err
	}
	sort.Sort(sort.Reverse(sort.StringSlice(matches)))
	for _, path := range matches {
		if filepath.Clean(path) == filepath.Clean(skip) {
			continue
		}
		r, err := LoadReport(path)
		if err != nil {
			return "", nil, err
		}
		if r.Legacy || r.Smoke || r.Serve {
			continue
		}
		return path, r, nil
	}
	return "", nil, nil
}

// Delta is one series' before/after comparison.
type Delta struct {
	Name  string
	Base  Series
	Cur   Series
	Ratio float64 // cur ns / base ns; > 1 means slower
}

// noiseFloorNs is the absolute slowdown a series must show, on top of
// the ratio tolerance, before it counts as a regression. Sub-10ns
// series (a disarmed fault-site Fire, a frozen HasEdge probe) swing
// ±30% with host CPU frequency alone; a pure ratio gate on a 0.6ns
// measurement detects the machine's mood, not the code. Algorithmic
// regressions on series that fast still surface through their callers
// (every solver and scan series runs these ops millions of times).
const noiseFloorNs = 5.0

// NoiseFloorNs exports the comparator's absolute noise floor so other
// diff tools (cmd/obsreport) apply the identical significance rule
// instead of inventing a second definition of "regressed".
const NoiseFloorNs = noiseFloorNs

// Regressed reports whether the series slowed down beyond tolerance
// (e.g. tolerance 1.30 allows up to +30% before failing) by more than
// the absolute noise floor.
func (d Delta) Regressed(tolerance float64) bool {
	return d.Ratio > tolerance && d.Cur.NsPerOp-d.Base.NsPerOp > noiseFloorNs
}

// Comparison is the outcome of diffing a current report against a base.
type Comparison struct {
	Deltas []Delta  // series present in both, base order
	Added  []string // series only in cur (new coverage, not a failure)
	Gone   []string // series only in base (lost coverage — suspicious)
}

// Regressions returns the deltas exceeding tolerance, slowest first.
func (c *Comparison) Regressions(tolerance float64) []Delta {
	var out []Delta
	for _, d := range c.Deltas {
		if d.Regressed(tolerance) {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Ratio > out[j].Ratio })
	return out
}

// FailureMessage summarizes every series that regressed beyond tolerance
// in one message, slowest first, so a failing run names all offenders at
// once instead of making the caller re-run after each fix. Returns ""
// when nothing regressed.
func (c *Comparison) FailureMessage(tolerance float64) string {
	reg := c.Regressions(tolerance)
	if len(reg) == 0 {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d series regressed beyond %.2fx:", len(reg), tolerance)
	for _, d := range reg {
		fmt.Fprintf(&sb, "\n  %s: %.0f -> %.0f ns/op (%.2fx > %.2fx)",
			d.Name, d.Base.NsPerOp, d.Cur.NsPerOp, d.Ratio, tolerance)
	}
	return sb.String()
}

// Compare diffs cur against base by series name.
func Compare(base, cur *Report) *Comparison {
	c := &Comparison{}
	inCur := make(map[string]bool, len(cur.Series))
	for _, s := range cur.Series {
		inCur[s.Name] = true
	}
	for _, bs := range base.Series {
		cs, ok := cur.Find(bs.Name)
		if !ok {
			c.Gone = append(c.Gone, bs.Name)
			continue
		}
		ratio := 0.0
		if bs.NsPerOp > 0 {
			ratio = cs.NsPerOp / bs.NsPerOp
		}
		c.Deltas = append(c.Deltas, Delta{Name: bs.Name, Base: bs, Cur: cs, Ratio: ratio})
	}
	inBase := make(map[string]bool, len(base.Series))
	for _, s := range base.Series {
		inBase[s.Name] = true
	}
	for _, s := range cur.Series {
		if !inBase[s.Name] {
			c.Added = append(c.Added, s.Name)
		}
	}
	return c
}

// FormatComparison renders a fixed-width before/after table.
func FormatComparison(c *Comparison, tolerance float64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-40s %14s %14s %8s\n", "series", "base ns/op", "cur ns/op", "ratio")
	for _, d := range c.Deltas {
		flag := ""
		if d.Regressed(tolerance) {
			flag = "  REGRESSION"
		} else if d.Ratio > 0 && d.Ratio < 1/tolerance {
			flag = "  improved"
		}
		fmt.Fprintf(&sb, "%-40s %14.0f %14.0f %7.2fx%s\n", d.Name, d.Base.NsPerOp, d.Cur.NsPerOp, d.Ratio, flag)
	}
	for _, name := range c.Added {
		fmt.Fprintf(&sb, "%-40s %14s %14s %8s  new\n", name, "-", "-", "-")
	}
	for _, name := range c.Gone {
		fmt.Fprintf(&sb, "%-40s %14s %14s %8s  MISSING\n", name, "-", "-", "-")
	}
	return sb.String()
}
