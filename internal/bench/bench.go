// Package bench defines the experiment registry behind EXPERIMENTS.md:
// one experiment per paper claim (E1–E18), each emitting a table that
// cmd/experiments renders. The paper is a theory paper — its "figures"
// are Fig 1 (the G_n family and its line graph) and Fig 2 (the diamond
// gadget) and its results are lemmas and theorems — so each experiment
// verifies one claim empirically: exact solvers referee on small
// instances, bound checks take over at scale.
package bench

import (
	"fmt"
	"io"
	"strings"
	"unicode/utf8"
)

// Table is an experiment result: a titled grid of strings.
type Table struct {
	ID     string
	Title  string
	Claim  string
	Header []string
	Rows   [][]string
	// Notes are printed under the table.
	Notes []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case bool:
			if v {
				row[i] = "yes"
			} else {
				row[i] = "no"
			}
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title); err != nil {
		return err
	}
	if t.Claim != "" {
		if _, err := fmt.Fprintf(w, "claim: %s\n", t.Claim); err != nil {
			return err
		}
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = utf8.RuneCountInString(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if n := utf8.RuneCountInString(c); i < len(widths) && n > widths[i] {
				widths[i] = n
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		return strings.Join(parts, "  ")
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	rule := make([]string, len(t.Header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, strings.Join(rule, "  ")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t *Table) Markdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "### %s — %s\n\n", t.ID, t.Title); err != nil {
		return err
	}
	if t.Claim != "" {
		if _, err := fmt.Fprintf(w, "*Claim:* %s\n\n", t.Claim); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(t.Header, " | ")); err != nil {
		return err
	}
	rule := make([]string, len(t.Header))
	for i := range rule {
		rule[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(rule, " | ")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | ")); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "\n*Note:* %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// CSV renders the table as comma-separated values (header first). Cells
// containing commas or quotes are quoted.
func (t *Table) CSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		for i, c := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := writeRow(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// pad right-fills s to w columns. Width is counted in runes, not bytes —
// headers like "π̂ emitted" are multi-byte but single-column per rune, and
// byte-based padding skewed every column after them.
func pad(s string, w int) string {
	n := utf8.RuneCountInString(s)
	if n >= w {
		return s
	}
	return s + strings.Repeat(" ", w-n)
}

// Experiment is one registered paper-claim verification.
type Experiment struct {
	ID    string
	Title string
	Run   func() (*Table, error)
}

// All returns the experiment registry in order.
func All() []Experiment {
	return []Experiment{
		{"E1", "pebbling cost bounds (Lemma 2.1/2.3, Cor 2.1)", E1Bounds},
		{"E2", "additivity over disjoint union (Lemma 2.2)", E2Additivity},
		{"E3", "matchings cost 2m (Lemma 2.4)", E3Matching},
		{"E4", "perfect pebbling = Hamiltonian line graph (Prop 2.1/2.2)", E4LineGraph},
		{"E5", "1.25 approximation (Thm 3.1 / Lemma 3.1)", E5Approx},
		{"E6", "equijoins pebble perfectly in linear time (Thm 3.2/4.1)", E6Equijoin},
		{"E7", "the hard family G_n (Thm 3.3, Fig 1)", E7HardFamily},
		{"E8", "set-containment universality (Lemma 3.3)", E8Universality},
		{"E9", "spatial realization of G_n (Lemma 3.4)", E9Spatial},
		{"E10", "exponential vs linear solving (Thm 4.2)", E10Hardness},
		{"E11", "diamond L-reduction TSP-4 to TSP-3 (Thm 4.3, Fig 2)", E11Diamond},
		{"E12", "incidence L-reduction TSP-3 to PEBBLE (Thm 4.4)", E12Incidence},
		{"E13", "diamond gadget properties (Fig 2)", E13Gadget},
		{"E14", "solver approximation ratios (§4 approximability)", E14Ratios},
		{"E15", "pebbling cost of real join algorithms (§1/§5)", E15Algorithms},
		{"E16", "partitioned-join mapping problem (§5 open problem)", E16Partition},
		{"E17", "page-fetch scheduling ([6], §2 related work)", E17Pages},
		{"E18", "the k-pebble extension (model generalization)", E18KPebbles},
		{"E19", "ablation: twin elimination in Thm 3.1 (design choice)", E19Ablation},
	}
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
