package bench

import (
	"math/rand"
	"strconv"

	"joinpebble/internal/graph"
	"joinpebble/internal/solver"
)

// E19Ablation removes the twin-elimination step from Theorem 3.1's
// construction and measures what breaks: without re-hanging leaf twins,
// the stripped "lowest subtree with >= 4 descendants" is not always a
// path, so the algorithm fails outright on a measurable fraction of
// random instances — the ablation evidence that the proof's step 2 is
// load-bearing, not cosmetic.
func E19Ablation() (*Table, error) {
	t := &Table{
		ID:     "E19",
		Title:  "ablation: twin elimination in Theorem 3.1's construction",
		Claim:  "without twin elimination the stripped subtree need not be a path; the construction fails on a measurable fraction of instances",
		Header: []string{"instances", "m range", "full: failures", "full: bound violations", "ablated: failures"},
	}
	rng := rand.New(rand.NewSource(1919))
	const trials = 200
	fullFail, fullViolate, ablatedFail := 0, 0, 0
	minM, maxM := 1<<30, 0
	for trial := 0; trial < trials; trial++ {
		nl, nr := 3+rng.Intn(4), 3+rng.Intn(4)
		low := nl + nr - 1
		m := low + rng.Intn(nl*nr-low+1)
		g := graph.RandomConnectedBipartite(rng, nl, nr, m).Graph()
		if g.M() < minM {
			minM = g.M()
		}
		if g.M() > maxM {
			maxM = g.M()
		}
		if _, cost, err := solver.SolveAndVerify(solver.Approx125{}, g); err != nil {
			fullFail++
		} else if cost > solver.ApproxCostBound(g) {
			fullViolate++
		}
		if _, _, err := solver.SolveAndVerify(solver.Approx125{SkipTwinElimination: true}, g); err != nil {
			ablatedFail++
		}
	}
	t.AddRow(trials, rangeStr(minM, maxM), fullFail, fullViolate, ablatedFail)
	t.Notes = append(t.Notes,
		"a failure means the construction could not produce a valid partition (non-path subtree or an internal piece below 4 vertices); the full algorithm must show zero failures and zero violations")
	if fullFail != 0 || fullViolate != 0 {
		t.Notes = append(t.Notes, "WARNING: the full algorithm failed — investigate")
	}
	if ablatedFail == 0 {
		t.Notes = append(t.Notes,
			"note: on this sample the ablated variant happened to survive; rerun with more trials to expose the failure mode")
	}
	return t, nil
}

func rangeStr(lo, hi int) string {
	return strconv.Itoa(lo) + ".." + strconv.Itoa(hi)
}
