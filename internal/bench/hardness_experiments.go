package bench

import (
	"fmt"
	"math/rand"
	"time"

	"joinpebble/internal/core"
	"joinpebble/internal/family"
	"joinpebble/internal/graph"
	"joinpebble/internal/obs"
	"joinpebble/internal/reduction"
	"joinpebble/internal/solver"
	"joinpebble/internal/tsp"
)

// E10Hardness contrasts solver scaling: the exact solver's time explodes
// on the hard family while the equijoin pebbler stays linear — the
// computational shadow of Theorem 4.2's NP-completeness next to Theorem
// 4.1's linear time.
func E10Hardness() (*Table, error) {
	t := &Table{
		ID:     "E10",
		Title:  "exponential vs linear solving",
		Claim:  "PEBBLE(D) is NP-complete in general but linear for equijoin graphs (Thm 4.2 vs Thm 4.1)",
		Header: []string{"family", "m", "solver", "time", "π̂"},
	}
	for _, n := range []int{5, 7, 9} {
		g := family.Spider(n).Graph()
		start := obs.Now()
		cost, err := solver.OptimalCost(g)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("spider-%d", n), g.M(), "exact (Held-Karp)", obs.Since(start).Round(time.Microsecond).String(), cost)
	}
	for _, k := range []int{40, 400, 1200} {
		g := graph.CompleteBipartite(k, k/4).Graph()
		start := obs.Now()
		_, cost, err := solver.SolveAndVerify(solver.Equijoin{}, g)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("K(%d,%d)", k, k/4), g.M(), "equijoin (linear)", obs.Since(start).Round(time.Microsecond).String(), cost)
	}
	t.Notes = append(t.Notes,
		"exact time grows exponentially in m (Held–Karp over line-graph subsets); the equijoin solver handles 100x more edges in comparable time")
	return t, nil
}

// E11Diamond verifies the Theorem 4.3 L-reduction empirically: alpha
// stays below the gadget size and beta = 1 holds over sampled tours.
func E11Diamond() (*Table, error) {
	t := &Table{
		ID:     "E11",
		Title:  "diamond L-reduction TSP-4(1,2) to TSP-3(1,2)",
		Claim:  "f,g form an L-reduction: OPT(H) <= alpha*OPT(G), quality preserved with beta=1 (Thm 4.3, Fig 2)",
		Header: []string{"n(G)", "m(G)", "n(H)", "OPT(G)", "OPT(H)", "alpha", "beta violation", "samples"},
	}
	rng := rand.New(rand.NewSource(111))
	for trial := 0; trial < 5; trial++ {
		g := degree4Instance(rng, 6+trial%3)
		r, err := reduction.NewDegree4To3(g)
		if err != nil {
			return nil, err
		}
		if r.H.N() > tsp.MaxExactCities {
			continue
		}
		var tours []tsp.Tour
		for k := 0; k < 6; k++ {
			tours = append(tours, tsp.Tour(rng.Perm(r.H.N())))
		}
		check, err := reduction.CheckDegree4To3(r, tours)
		if err != nil {
			return nil, err
		}
		t.AddRow(g.N(), g.M(), r.H.N(), check.OptA, check.OptB,
			check.Alpha, check.MaxBetaViolation, check.Samples)
	}
	t.Notes = append(t.Notes,
		"gadget: 10-node verified diamond (Fig 2's exact drawing is not in the text); alpha bound 10, paper's gadget gives 11")
	return t, nil
}

// degree4Instance returns a connected max-degree-4 graph guaranteed to
// contain a degree-4 vertex, so the reduction actually deploys a gadget.
func degree4Instance(rng *rand.Rand, n int) *graph.Graph {
	for {
		g := graph.New(n)
		// Vertex 0 starts as the center of a 4-star.
		for v := 1; v <= 4; v++ {
			g.AddEdge(0, v)
		}
		// Keep the other vertices below degree 4 so exactly one gadget is
		// deployed and H stays inside the exact solver's reach.
		for tries := 0; tries < 40 && g.M() < n+2; tries++ {
			u, v := 1+rng.Intn(n-1), 1+rng.Intn(n-1)
			if u != v && !g.HasEdge(u, v) && g.Degree(u) < 3 && g.Degree(v) < 3 {
				g.AddEdge(u, v)
			}
		}
		if g.Connected() && g.Degree(0) == 4 {
			return g
		}
	}
}

// E12Incidence verifies the Theorem 4.4 L-reduction: the incidence-graph
// pebbling optimum equals 2m + J* + 1 predicted from the TSP optimum.
func E12Incidence() (*Table, error) {
	t := &Table{
		ID:     "E12",
		Title:  "incidence L-reduction TSP-3(1,2) to PEBBLE",
		Claim:  "π̂(B) = 2m + J* + 1; alpha=3, beta=1 (Thm 4.4)",
		Header: []string{"n(G)", "m(G)", "OPT tour", "π̂(B)", "predicted", "alpha", "beta violation"},
	}
	rng := rand.New(rand.NewSource(222))
	for trial := 0; trial < 5; trial++ {
		n := 5 + trial%2
		maxM := 3 * n / 2
		m := n - 1 + rng.Intn(maxM-(n-1)+1)
		g := graph.RandomConnectedGraph(rng, n, m, 3)
		if 2*g.M() > tsp.MaxExactCities {
			continue
		}
		r, err := reduction.NewTSPToPebble(g)
		if err != nil {
			return nil, err
		}
		var extras []core.Scheme
		for k := 0; k < 4; k++ {
			s, err := r.ForwardScheme(tsp.Tour(rng.Perm(g.N())))
			if err != nil {
				return nil, err
			}
			extras = append(extras, s)
		}
		check, err := reduction.CheckIncidence(r, extras)
		if err != nil {
			return nil, err
		}
		t.AddRow(g.N(), g.M(), check.OptA, check.OptB,
			r.PebbleCostFromTourCost(check.OptA), check.Alpha, check.MaxBetaViolation)
	}
	return t, nil
}

// E13Gadget reports the exhaustively verified diamond-gadget properties
// of Figure 2.
func E13Gadget() (*Table, error) {
	t := &Table{
		ID:     "E13",
		Title:  "diamond gadget properties",
		Claim:  "Ham paths exist between all corner pairs; no Ham path ends at a rim vertex (Fig 2)",
		Header: []string{"property", "value"},
	}
	g := reduction.NewGadget()
	paths := graph.AllHamiltonianPaths(g)
	pairs := map[[2]int]bool{}
	rimEnd, hubEnd := 0, 0
	for _, p := range paths {
		a, b := p[0], p[len(p)-1]
		if a > b {
			a, b = b, a
		}
		pairs[[2]int{a, b}] = true
		for _, v := range []int{a, b} {
			switch {
			case v >= 4 && v <= 7:
				rimEnd++
			case v >= 8:
				hubEnd++
			}
		}
	}
	cornerPairs := 0
	for p := range pairs {
		if p[0] < 4 && p[1] < 4 {
			cornerPairs++
		}
	}
	t.AddRow("vertices", reduction.GadgetSize)
	t.AddRow("max degree", g.MaxDegree())
	t.AddRow("corner degree", g.Degree(reduction.CornerA))
	t.AddRow("Hamiltonian paths (directed)", len(paths))
	t.AddRow("corner endpoint pairs (want 6)", cornerPairs)
	t.AddRow("rim-vertex endpoints (want 0)", rimEnd)
	t.AddRow("hub-vertex endpoints (documented deviation)", hubEnd)
	return t, nil
}

// E14Ratios compares every solver's effective cost to the exact optimum
// over random instances — the approximability landscape of §4 (1.25 by
// Lemma 3.1, 7/6 via Papadimitriou–Yannakakis, no PTAS by Thm 4.4).
func E14Ratios() (*Table, error) {
	t := &Table{
		ID:     "E14",
		Title:  "solver approximation ratios",
		Claim:  "approx-1.25 stays within 1.25 of optimal; no solver beats exact (§4)",
		Header: []string{"solver", "mean ratio", "max ratio", "perfect found", "instances"},
	}
	rng := rand.New(rand.NewSource(333))
	type stat struct {
		sum     float64
		max     float64
		perfect int
		count   int
	}
	statsFor := map[string]*stat{}
	lineup := []solver.Solver{
		solver.Naive{}, solver.Greedy{}, solver.GreedyImproved{},
		solver.PathCover{}, solver.CycleCover{}, solver.Approx125{},
		solver.ExactBnB{},
	}
	for _, s := range lineup {
		statsFor[s.Name()] = &stat{}
	}
	const trials = 25
	for trial := 0; trial < trials; trial++ {
		nl, nr := 3+rng.Intn(2), 3+rng.Intn(2)
		minM := nl + nr - 1
		m := minM + rng.Intn(nl*nr-minM+1)
		if m > 14 {
			m = 14
		}
		g := graph.RandomConnectedBipartite(rng, nl, nr, m).Graph()
		opt, err := solver.OptimalCost(g)
		if err != nil {
			return nil, err
		}
		optEff := opt - 1
		for _, s := range lineup {
			_, cost, err := solver.SolveAndVerify(s, g)
			if err != nil {
				return nil, err
			}
			eff := cost - 1
			ratio := float64(eff) / float64(optEff)
			st := statsFor[s.Name()]
			st.sum += ratio
			if ratio > st.max {
				st.max = ratio
			}
			if eff == g.M() {
				st.perfect++
			}
			st.count++
		}
	}
	for _, s := range lineup {
		st := statsFor[s.Name()]
		t.AddRow(s.Name(), st.sum/float64(st.count), st.max, st.perfect, st.count)
	}
	return t, nil
}
