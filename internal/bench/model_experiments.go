package bench

import (
	"fmt"
	"math/rand"

	"joinpebble/internal/core"
	"joinpebble/internal/family"
	"joinpebble/internal/graph"
	"joinpebble/internal/solver"
	"joinpebble/internal/tsp"
)

// E1Bounds verifies Lemma 2.1 / Lemma 2.3 / Corollary 2.1: for every
// instance, m + β₀ <= π̂(G) <= 2m, i.e. m <= π(G) <= 2m−1 per component.
func E1Bounds() (*Table, error) {
	t := &Table{
		ID:     "E1",
		Title:  "pebbling cost bounds",
		Claim:  "m + β₀ <= π̂(G) <= 2m (Lemma 2.1, Lemma 2.3, Cor 2.1)",
		Header: []string{"graph", "m", "β₀", "π̂ (exact)", "π", "lower", "upper", "within"},
	}
	rng := rand.New(rand.NewSource(101))
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"matching-6", graph.Matching(6).Graph()},
		{"path-8", graph.PathBipartite(8).Graph()},
		{"cycle-8", graph.CycleBipartite(8).Graph()},
		{"K(3,4)", graph.CompleteBipartite(3, 4).Graph()},
		{"spider-5", family.Spider(5).Graph()},
		{"grid-3x3", graph.GridBipartite(3, 3).Graph()},
	}
	for i := 0; i < 4; i++ {
		g := graph.RandomConnectedBipartite(rng, 3, 4, 8+i).Graph()
		cases = append(cases, struct {
			name string
			g    *graph.Graph
		}{fmt.Sprintf("random-%d", i), g})
	}
	for _, c := range cases {
		cost, err := solver.OptimalCost(c.g)
		if err != nil {
			return nil, err
		}
		lo, hi := core.LowerBound(c.g), core.UpperBound(c.g)
		t.AddRow(c.name, c.g.M(), core.Betti0(c.g), cost, cost-core.Betti0(c.g), lo, hi,
			cost >= lo && cost <= hi)
	}
	return t, nil
}

// E2Additivity verifies Lemma 2.2 computationally: π̂(G ⊔ H) equals
// π̂(G) + π̂(H) on exact instances.
func E2Additivity() (*Table, error) {
	t := &Table{
		ID:     "E2",
		Title:  "additivity over disjoint union",
		Claim:  "π̂(G ⊔ H) = π̂(G) + π̂(H) (Lemma 2.2)",
		Header: []string{"G", "H", "π̂(G)", "π̂(H)", "π̂(G⊔H)", "additive"},
	}
	rng := rand.New(rand.NewSource(202))
	parts := []struct {
		name string
		g    *graph.Graph
	}{
		{"K(2,3)", graph.CompleteBipartite(2, 3).Graph()},
		{"spider-3", family.Spider(3).Graph()},
		{"path-5", graph.PathBipartite(5).Graph()},
		{"random", graph.RandomConnectedBipartite(rng, 3, 3, 7).Graph()},
	}
	for i := 0; i < len(parts); i++ {
		for j := i + 1; j < len(parts); j++ {
			cg, err := solver.OptimalCost(parts[i].g)
			if err != nil {
				return nil, err
			}
			ch, err := solver.OptimalCost(parts[j].g)
			if err != nil {
				return nil, err
			}
			u := graph.DisjointUnion(parts[i].g, parts[j].g)
			cu, err := solver.OptimalCost(u)
			if err != nil {
				return nil, err
			}
			t.AddRow(parts[i].name, parts[j].name, cg, ch, cu, cu == cg+ch)
		}
	}
	return t, nil
}

// E3Matching verifies Lemma 2.4: a perfect matching of m edges has
// π̂ = 2m and π = m, at sizes far beyond the exact solver (the formula is
// checked exactly where the solver reaches and by the matching pebbler's
// verified cost beyond).
func E3Matching() (*Table, error) {
	t := &Table{
		ID:     "E3",
		Title:  "matchings cost 2m",
		Claim:  "π̂(matching_m) = 2m, π = m (Lemma 2.4)",
		Header: []string{"m", "π̂ (verified)", "2m", "π", "exact agrees"},
	}
	for _, m := range []int{1, 2, 4, 8, 16, 64, 256, 1024} {
		g := graph.Matching(m).Graph()
		scheme, cost, err := solver.SolveAndVerify(solver.MatchingSolver{}, g)
		if err != nil {
			return nil, err
		}
		exactNote := "n/a (too large)"
		if m <= 8 {
			ec, err := solver.OptimalCost(g)
			if err != nil {
				return nil, err
			}
			exactNote = fmt.Sprint(ec == cost)
		}
		t.AddRow(m, cost, 2*m, scheme.EffectiveCost(g), exactNote)
	}
	return t, nil
}

// E4LineGraph verifies Propositions 2.1 and 2.2: π(G) = m iff L(G) has a
// Hamiltonian path, and the optimal TSP tour of L(G) costs π(G) − 1.
func E4LineGraph() (*Table, error) {
	t := &Table{
		ID:     "E4",
		Title:  "perfect pebbling = Hamiltonian line graph",
		Claim:  "π(G)=m ⇔ L(G) has a Ham path; TSP(L(G)) = π(G)−1 (Prop 2.1/2.2)",
		Header: []string{"graph", "m", "π", "perfect", "L(G) Ham path", "TSP(L(G))", "= π−1"},
	}
	rng := rand.New(rand.NewSource(404))
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"K(3,3)", graph.CompleteBipartite(3, 3).Graph()},
		{"path-6", graph.PathBipartite(6).Graph()},
		{"spider-3", family.Spider(3).Graph()},
		{"spider-4", family.Spider(4).Graph()},
		{"cycle-6", graph.CycleBipartite(6).Graph()},
	}
	for i := 0; i < 3; i++ {
		g := graph.RandomConnectedBipartite(rng, 3, 3, 7+i).Graph()
		cases = append(cases, struct {
			name string
			g    *graph.Graph
		}{fmt.Sprintf("random-%d", i), g})
	}
	for _, c := range cases {
		eff, err := solver.OptimalEffectiveCost(c.g)
		if err != nil {
			return nil, err
		}
		lg := graph.LineGraph(c.g)
		_, ham := graph.HamiltonianPath(lg)
		_, tspCost, err := tsp.Exact(tsp.NewInstance(lg))
		if err != nil {
			return nil, err
		}
		perfect := eff == c.g.M()
		if perfect != ham {
			return nil, fmt.Errorf("E4: Prop 2.1 violated on %s", c.name)
		}
		t.AddRow(c.name, c.g.M(), eff, perfect, ham, tspCost, tspCost == eff-1)
	}
	return t, nil
}
