package bench

import (
	"strconv"
	"testing"

	"joinpebble/internal/obs"
)

// TestE15AuditHistogramConsistency cross-checks the two places a join
// algorithm's pebbling cost is reported: the π̂ column E15's table prints
// (from AuditPairs results) and the join/audit/cost histogram the same
// AuditPairs calls feed. The deltas the experiment produces must agree
// exactly — one audited run per table row, the histogram's sum equal to
// the column total — or a -metrics snapshot would disagree with the
// experiment tables shipped in EXPERIMENTS.md.
func TestE15AuditHistogramConsistency(t *testing.T) {
	before := obs.Default.Snapshot()
	table, err := E15Algorithms()
	if err != nil {
		t.Fatal(err)
	}
	after := obs.Default.Snapshot()

	var wantSum, wantRuns int64
	const costCol = 3 // the "π̂ emitted" column
	for _, row := range table.Rows {
		c, err := strconv.ParseInt(row[costCol], 10, 64)
		if err != nil {
			t.Fatalf("row %v: column %d is not a cost: %v", row, costCol, err)
		}
		wantSum += c
		wantRuns++
	}
	if wantRuns == 0 {
		t.Fatal("E15 produced no rows")
	}

	h0 := before.Histograms["join/audit/cost"] // zero value if first run
	h1, ok := after.Histograms["join/audit/cost"]
	if !ok {
		t.Fatal("join/audit/cost histogram missing from snapshot")
	}
	if got := h1.Sum - h0.Sum; got != wantSum {
		t.Errorf("join/audit/cost sum delta = %d, want %d (the table's π̂ total)", got, wantSum)
	}
	if got := h1.Count - h0.Count; got != wantRuns {
		t.Errorf("join/audit/cost count delta = %d, want %d (one per table row)", got, wantRuns)
	}
	if got := after.Counters["join/audit/runs"] - before.Counters["join/audit/runs"]; got != wantRuns {
		t.Errorf("join/audit/runs delta = %d, want %d", got, wantRuns)
	}
}

// TestReportMetricsRoundTrip checks a Report carrying a metrics snapshot
// survives the write/load cycle without a schema bump.
func TestReportMetricsRoundTrip(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("x/y").Add(7)
	r := &Report{
		Schema: SchemaVersion,
		Date:   "2026-08-06",
		Series: []Series{{Name: "op/w", NsPerOp: 1}},
	}
	r.Metrics = reg.Snapshot()

	path := t.TempDir() + "/BENCH_2026-08-06.json"
	if err := WriteReport(path, r); err != nil {
		t.Fatal(err)
	}
	back, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Metrics == nil || back.Metrics.Counters["x/y"] != 7 {
		t.Fatalf("metrics did not round-trip: %+v", back.Metrics)
	}

	// A report without metrics must load too (older files).
	r.Metrics = nil
	if err := WriteReport(path, r); err != nil {
		t.Fatal(err)
	}
	back, err = LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Metrics != nil {
		t.Fatalf("expected nil metrics, got %+v", back.Metrics)
	}
}

// TestFailureMessageListsAllRegressions pins the one-shot failure report:
// every offender in one message, slowest first, tolerance included.
func TestFailureMessageListsAllRegressions(t *testing.T) {
	base := &Report{Schema: SchemaVersion, Series: []Series{
		{Name: "a/fast", NsPerOp: 100},
		{Name: "b/slow", NsPerOp: 100},
		{Name: "c/worse", NsPerOp: 100},
	}}
	cur := &Report{Schema: SchemaVersion, Series: []Series{
		{Name: "a/fast", NsPerOp: 90},
		{Name: "b/slow", NsPerOp: 150},
		{Name: "c/worse", NsPerOp: 200},
	}}
	c := Compare(base, cur)
	msg := c.FailureMessage(1.30)
	if msg == "" {
		t.Fatal("FailureMessage empty, want two regressions reported")
	}
	for _, want := range []string{"2 series regressed beyond 1.30x", "b/slow", "c/worse", "2.00x", "1.50x"} {
		if !containsStr(msg, want) {
			t.Errorf("failure message missing %q:\n%s", want, msg)
		}
	}
	if containsStr(msg, "a/fast") {
		t.Errorf("failure message names non-regressing series a/fast:\n%s", msg)
	}
	// Slowest first.
	if idxOf(msg, "c/worse") > idxOf(msg, "b/slow") {
		t.Errorf("regressions not sorted slowest-first:\n%s", msg)
	}
	if got := c.FailureMessage(3.0); got != "" {
		t.Errorf("FailureMessage with loose tolerance = %q, want empty", got)
	}
}

func containsStr(s, sub string) bool { return idxOf(s, sub) >= 0 }

func idxOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
