package bench

import (
	"strings"
	"sync"
	"testing"
)

// runCached memoizes experiment runs so the structural and verdict tests
// do not pay for each experiment twice.
var (
	cacheMu    sync.Mutex
	tableCache = map[string]*Table{}
	errCache   = map[string]error{}
)

func runCached(e Experiment) (*Table, error) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if tbl, ok := tableCache[e.ID]; ok {
		return tbl, errCache[e.ID]
	}
	tbl, err := e.Run()
	tableCache[e.ID] = tbl
	errCache[e.ID] = err
	return tbl, err
}

func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are integration-sized")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			table, err := runCached(e)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if table.ID != e.ID {
				t.Fatalf("table id %q for experiment %q", table.ID, e.ID)
			}
			if len(table.Rows) == 0 {
				t.Fatalf("%s produced no rows", e.ID)
			}
			for i, row := range table.Rows {
				if len(row) != len(table.Header) {
					t.Fatalf("%s row %d has %d cells, header has %d", e.ID, i, len(row), len(table.Header))
				}
			}
			var sb strings.Builder
			if err := table.Render(&sb); err != nil {
				t.Fatal(err)
			}
			if err := table.Markdown(&sb); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestExperimentClaimsHold(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are integration-sized")
	}
	// Spot-check the boolean verdict columns: every row that carries a
	// yes/no verdict must say yes.
	verdictColumn := map[string]string{
		"E1": "within",
		"E2": "additive",
		"E4": "= π−1",
		"E5": "within bound",
		"E6": "perfect",
		"E8": "round trip exact",
		"E9": "graph = G_n",
	}
	for _, e := range All() {
		col, ok := verdictColumn[e.ID]
		if !ok {
			continue
		}
		table, err := runCached(e)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		idx := -1
		for i, h := range table.Header {
			if h == col {
				idx = i
			}
		}
		if idx < 0 {
			t.Fatalf("%s: verdict column %q missing", e.ID, col)
		}
		for r, row := range table.Rows {
			if row[idx] != "yes" {
				t.Fatalf("%s row %d: verdict %q = %q", e.ID, r, col, row[idx])
			}
		}
	}
}

func TestFind(t *testing.T) {
	if _, ok := Find("E7"); !ok {
		t.Fatal("E7 must exist")
	}
	if _, ok := Find("E99"); ok {
		t.Fatal("E99 must not exist")
	}
}

func TestTableRendering(t *testing.T) {
	table := &Table{
		ID:     "T",
		Title:  "demo",
		Claim:  "c",
		Header: []string{"a", "bb"},
	}
	table.AddRow(1, true)
	table.AddRow("xyz", 2.5)
	var sb strings.Builder
	if err := table.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"T — demo", "claim: c", "xyz", "yes", "2.500"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render output missing %q:\n%s", want, out)
		}
	}
	sb.Reset()
	if err := table.Markdown(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "| a | bb |") {
		t.Fatalf("markdown header missing:\n%s", sb.String())
	}
}

func TestE13GadgetVerdicts(t *testing.T) {
	if testing.Short() {
		t.Skip("gadget enumeration is integration-sized")
	}
	table, err := runCached(Experiment{ID: "E13", Run: E13Gadget})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]string{}
	for _, row := range table.Rows {
		byName[row[0]] = row[1]
	}
	if byName["corner endpoint pairs (want 6)"] != "6" {
		t.Fatalf("corner pairs: %v", byName)
	}
	if byName["rim-vertex endpoints (want 0)"] != "0" {
		t.Fatalf("rim endpoints: %v", byName)
	}
	if byName["max degree"] != "3" {
		t.Fatalf("max degree: %v", byName)
	}
}
