package engine

import (
	"os"
	"testing"

	"joinpebble/internal/testutil/leakcheck"
)

// TestMain gates the suite on goroutine hygiene: solver worker pools
// spawned through the planner ladder must all be joined by the time the
// tests finish (the dynamic side of the golife analyzer's static rule).
func TestMain(m *testing.M) {
	os.Exit(leakcheck.Main(m))
}
