package engine

import (
	"context"
	"strings"
	"sync"
	"testing"

	"joinpebble/internal/faultinject"
	"joinpebble/internal/obs"
	"joinpebble/internal/solver"
)

// TestDifferentialConcurrentScopes is the scope isolation differential:
// two Planner.Run calls racing under distinct scopes must keep fully
// disjoint per-request counters, and after both scopes close the global
// registry's delta must equal their sum. (The TestDifferential prefix
// keeps it inside the CI race-detector differential step.)
func TestDifferentialConcurrentScopes(t *testing.T) {
	globalRuns := obs.Default.Counter("engine/runs")
	globalSolves := obs.Default.Counter("solver/solves")
	runsBefore := globalRuns.Value()
	solvesBefore := globalSolves.Value()

	scopes := [2]*obs.Scope{}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		sc := obs.NewScope("engine/solve")
		sc.SetRecorder(nil)
		scopes[i] = sc
		wg.Add(1)
		go func() {
			defer wg.Done()
			var p Planner
			if _, err := p.Run(obs.WithScope(context.Background(), sc), spiderInstance()); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	var scopedSolves int64
	for i, sc := range scopes {
		if got := sc.Registry().Counter("engine/runs").Value(); got != 1 {
			t.Fatalf("scope %d engine/runs = %d, want exactly its own run", i, got)
		}
		s := sc.Registry().Counter("solver/solves").Value()
		if s == 0 {
			t.Fatalf("scope %d recorded no solver work", i)
		}
		scopedSolves += s
		if got := sc.Tracer().Len(); got == 0 {
			t.Fatalf("scope %d collected no spans", i)
		}
	}
	// Nothing leaked to the global registry while the scopes were open.
	if got := globalRuns.Value(); got != runsBefore {
		t.Fatalf("global engine/runs moved to %d before rollup, want %d", got, runsBefore)
	}
	for _, sc := range scopes {
		sc.Close()
	}
	if got, want := globalRuns.Value(), runsBefore+2; got != want {
		t.Fatalf("global engine/runs after rollup = %d, want %d", got, want)
	}
	if got, want := globalSolves.Value(), solvesBefore+scopedSolves; got != want {
		t.Fatalf("global solver/solves = %d, want %d (sum of scopes)", got, want)
	}
}

// TestDifferentialConcurrentScopesParallelSolver re-runs the isolation
// differential with the component pool fanning out, so scope recording
// from worker goroutines is exercised under -race in CI.
func TestDifferentialConcurrentScopesParallelSolver(t *testing.T) {
	prev := solver.Parallelism
	solver.Parallelism = 4
	defer func() { solver.Parallelism = prev }()
	TestDifferentialConcurrentScopes(t)
}

// TestRunAutoScope: an unscoped Run opens its own scope and closes it
// before returning, so the flight recorder sees one summary per request
// and the global registry still accounts the run.
func TestRunAutoScope(t *testing.T) {
	globalRuns := obs.Default.Counter("engine/runs")
	before := globalRuns.Value()
	frBefore := obs.DefaultRecorder.Snapshot().Total

	p := Planner{Snapshot: true}
	res, err := p.Run(context.Background(), spiderInstance())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := globalRuns.Value(), before+1; got != want {
		t.Fatalf("global engine/runs = %d, want %d (rollup before return)", got, want)
	}
	if res.Metrics == nil || res.Metrics.Counters["engine/runs"] != before+1 {
		t.Fatalf("Snapshot metrics must include the rolled-up run: %+v", res.Metrics)
	}
	after := obs.DefaultRecorder.Snapshot()
	if after.Total != frBefore+1 {
		t.Fatalf("flight recorder total = %d, want %d", after.Total, frBefore+1)
	}
	sum := after.Recent[len(after.Recent)-1]
	if sum.Name != "engine/solve" || len(sum.Events) == 0 {
		t.Fatalf("recorded summary = %+v, want the solve with provenance events", sum)
	}
}

// TestDegradedRunLandsInFlightRecorder is the flight-recorder acceptance
// path: a fault-injected budget trip degrades the solve, the scope closes
// flagged, and the recorder retains the full record — degraded and fault
// flags, per-rung attempt provenance (the failed rung's error verbatim),
// and the span forest of the whole request.
func TestDegradedRunLandsInFlightRecorder(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Arm(SiteRung, budgetFault(1))

	fr := obs.NewFlightRecorder(4, 4)
	sc := obs.NewScope("engine/solve")
	sc.SetRecorder(fr)
	var p Planner
	res, err := p.Run(obs.WithScope(context.Background(), sc), spiderInstance())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Fatal("run did not degrade")
	}
	sum := sc.Close()

	flags := strings.Join(sum.Flags, ",")
	if !strings.Contains(flags, obs.FlagDegraded) || !strings.Contains(flags, obs.FlagFault) {
		t.Fatalf("flags = %v, want degraded and fault", sum.Flags)
	}
	if len(sum.Events) != 2 {
		t.Fatalf("events = %+v, want one per attempted rung", sum.Events)
	}
	if sum.Events[0].Name != "rung/exact" || !strings.Contains(sum.Events[0].Err, "injected for test") {
		t.Fatalf("failed rung event = %+v, want the injected error verbatim", sum.Events[0])
	}
	if sum.Events[1].Name != "rung/approx-1.25" || sum.Events[1].Err != "" {
		t.Fatalf("winning rung event = %+v", sum.Events[1])
	}

	snap := fr.Snapshot()
	if snap.FlaggedTotal != 1 || len(snap.Flagged) != 1 {
		t.Fatalf("flagged records = %d/%d, want exactly one", snap.FlaggedTotal, len(snap.Flagged))
	}
	rec := snap.Flagged[0]
	if len(rec.Spans) == 0 || rec.Spans[0].Name != "engine/solve" {
		t.Fatalf("flagged record spans = %+v, want the request's span forest", rec.Spans)
	}
	if rec.Summary.Metrics == nil || rec.Summary.Metrics.Counters["engine/plan/degraded_budget"] != 1 {
		t.Fatalf("flagged record metrics = %+v, want the request's own counters", rec.Summary.Metrics)
	}
}
