package cmdutil

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"joinpebble/internal/obs"
)

func TestUsageErrorClassification(t *testing.T) {
	usage := Usagef("bad flag %q", "x")
	if !IsUsage(usage) {
		t.Fatal("Usagef result must classify as usage")
	}
	if !IsUsage(fmt.Errorf("outer: %w", usage)) {
		t.Fatal("IsUsage must see through %w wrapping")
	}
	if IsUsage(errors.New("runtime failure")) {
		t.Fatal("plain errors are not usage errors")
	}
	if usage.Error() != `bad flag "x"` {
		t.Fatalf("message = %q", usage.Error())
	}
}

func TestExitCodePolicy(t *testing.T) {
	for _, tc := range []struct {
		err  error
		want int
	}{
		{nil, 0},
		{Usagef("bad"), 2},
		{fmt.Errorf("wrap: %w", Usagef("bad")), 2},
		{errors.New("boom"), 1},
	} {
		if got := ExitCode(tc.err); got != tc.want {
			t.Errorf("ExitCode(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}

func TestExitNilIsNoOp(t *testing.T) {
	called := false
	osExit = func(int) { called = true }
	defer func() { osExit = os.Exit }()
	Exit("test", nil)
	if called {
		t.Fatal("Exit(nil) must not exit")
	}
}

func TestBindFlagsAndFinish(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	o := BindFlags(fs, "test", false)
	if fs.Lookup("metrics") == nil || fs.Lookup("trace") == nil {
		t.Fatal("metrics/trace flags not registered")
	}
	if fs.Lookup("pprof") != nil {
		t.Fatal("pprof must be opt-in")
	}
	mpath := filepath.Join(t.TempDir(), "m.json")
	if err := fs.Parse([]string{"-metrics", mpath}); err != nil {
		t.Fatal(err)
	}
	if err := o.Start(); err != nil {
		t.Fatal(err)
	}
	if err := o.Finish(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("-metrics file is not a snapshot: %v", err)
	}
}

func TestFinishTraceWithoutTracer(t *testing.T) {
	o := &Obs{cmd: "test", Trace: filepath.Join(t.TempDir(), "t.jsonl")}
	// Start was never called, so no tracer is active (unless another test
	// installed one globally — reset to be sure).
	obs.SetTracer(nil)
	if err := o.Finish(); err == nil {
		t.Fatal("Finish with -trace but no tracer must error")
	}
}
