// Package cmdutil holds the plumbing every joinpebble command shares:
// usage-error classification with consistent exit codes, the
// -metrics/-trace/-trace-out/-pprof observability flags with their
// write-out logic, and the -cache-size/-cache-off scheme-cache knobs.
// Keeping it beside the engine makes the four CLIs thin adapters over
// the engine pipeline instead of four diverging copies of the same glue.
package cmdutil

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"joinpebble/internal/engine"
	"joinpebble/internal/obs"
	"joinpebble/internal/obs/obshttp"
	"joinpebble/internal/schemecache"
)

// UsageError marks a command-line usage mistake (unknown flag value,
// bad positional argument) as opposed to a runtime failure. Commands
// exit 2 for usage errors — matching package flag's own convention —
// and 1 for everything else; Exit applies that policy.
type UsageError struct {
	msg string
}

// Error implements error.
func (e *UsageError) Error() string { return e.msg }

// Usagef builds a UsageError.
func Usagef(format string, args ...any) error {
	return &UsageError{msg: fmt.Sprintf(format, args...)}
}

// IsUsage reports whether err is (or wraps) a UsageError.
func IsUsage(err error) bool {
	var ue *UsageError
	return errors.As(err, &ue)
}

// ExitCode returns the exit code Exit would use for err: 0 for nil,
// 2 for usage errors, 1 otherwise. Split out so tests can assert the
// policy without exiting.
func ExitCode(err error) int {
	switch {
	case err == nil:
		return 0
	case IsUsage(err):
		return 2
	default:
		return 1
	}
}

// Exit prints a non-nil err as "<cmd>: <err>" on stderr and exits with
// ExitCode(err). A nil err is a no-op, so commands can end with
// cmdutil.Exit(name, run()) unconditionally.
func Exit(cmd string, err error) {
	if err == nil {
		return
	}
	fmt.Fprintf(os.Stderr, "%s: %v\n", cmd, err)
	osExit(ExitCode(err))
}

// osExit is swapped out by tests.
var osExit = os.Exit

// Obs bundles the observability flags shared by the commands and writes
// the artifacts out after a run. Zero value = all outputs disabled.
type Obs struct {
	cmd       string
	Metrics   string // -metrics: JSON snapshot path
	Trace     string // -trace: JSONL span-tree path
	TraceOut  string // -trace-out: per-scope Chrome traces + flight recorder dir
	PProf     string // -pprof: expvar/pprof listen address
	CacheSize string // -cache-size: scheme cache capacity (byte-size string)
	CacheOff  bool   // -cache-off: disable the scheme cache

	pprofSrv *obshttp.Server // live debug server; drained in Finish
}

// DefaultCacheSize is the scheme cache capacity the CLIs run with
// unless -cache-size overrides it.
const DefaultCacheSize = "64MiB"

// BindFlags registers the shared observability and scheme-cache flags
// on fs. pprof is only offered to the long-running commands
// (experiments, bench); the one-shot commands pass withPProf=false.
func BindFlags(fs *flag.FlagSet, cmd string, withPProf bool) *Obs {
	o := &Obs{cmd: cmd}
	fs.StringVar(&o.Metrics, "metrics", "", "write the metrics snapshot as JSON to this file")
	fs.StringVar(&o.Trace, "trace", "", "write the span trace as JSONL to this file")
	fs.StringVar(&o.TraceOut, "trace-out", "", "write per-solve Chrome traces and flightrecorder.json into this directory")
	fs.StringVar(&o.CacheSize, "cache-size", DefaultCacheSize, "scheme cache capacity in bytes (KB/MB/GB or KiB/MiB/GiB suffixes)")
	fs.BoolVar(&o.CacheOff, "cache-off", false, "disable the scheme cache (every solve runs cold)")
	if withPProf {
		fs.StringVar(&o.PProf, "pprof", "", "serve net/http/pprof and expvar on this address")
	}
	return o
}

// ParseByteSize parses a human byte-size string: a non-negative number
// with an optional KB/MB/GB (decimal) or KiB/MiB/GiB (binary) suffix,
// or a bare byte count. Case-insensitive; "B" is accepted as bytes.
func ParseByteSize(s string) (int64, error) {
	t := strings.TrimSpace(s)
	mult := int64(1)
	upper := strings.ToUpper(t)
	for _, u := range []struct {
		suffix string
		mult   int64
	}{
		{"KIB", 1 << 10}, {"MIB", 1 << 20}, {"GIB", 1 << 30},
		{"KB", 1e3}, {"MB", 1e6}, {"GB", 1e9}, {"B", 1},
	} {
		if strings.HasSuffix(upper, u.suffix) {
			mult = u.mult
			t = strings.TrimSpace(t[:len(t)-len(u.suffix)])
			break
		}
	}
	n, err := strconv.ParseInt(t, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("invalid byte size %q", s)
	}
	return n * mult, nil
}

// installCache installs (or clears) the process-wide scheme cache the
// engine's planners fall back to, per the parsed cache flags.
func (o *Obs) installCache() error {
	if o.CacheOff {
		engine.SetSharedCache(nil)
		return nil
	}
	size, err := ParseByteSize(o.CacheSize)
	if err != nil {
		return Usagef("-cache-size: %v", err)
	}
	if size == 0 {
		engine.SetSharedCache(nil)
		return nil
	}
	engine.SetSharedCache(schemecache.New(size, 0))
	return nil
}

// Start installs the scheme cache, tracer, and pprof server the parsed
// flags ask for. Call it right after flag parsing, before any
// instrumented work.
func (o *Obs) Start() error {
	if err := o.installCache(); err != nil {
		return err
	}
	if o.PProf != "" {
		srv, err := obshttp.Start(o.PProf)
		if err != nil {
			return fmt.Errorf("pprof: %w", err)
		}
		o.pprofSrv = srv
		fmt.Fprintf(os.Stderr, "%s: pprof/expvar on http://%s/debug/\n", o.cmd, srv.Addr())
	}
	if o.Trace != "" {
		obs.SetTracer(obs.NewTracer())
	}
	if o.TraceOut != "" {
		if err := os.MkdirAll(o.TraceOut, 0o755); err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
		obs.SetScopeTraceDir(o.TraceOut)
	}
	return nil
}

// Finish writes the metrics snapshot and span trace the flags asked
// for, then drains the debug server so an in-flight scrape is not cut
// off mid-response. It logs each written path to stderr so stdout stays
// pipeable.
func (o *Obs) Finish() error {
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		o.pprofSrv.Shutdown(ctx) //nolint:errcheck // best-effort drain at exit
	}()
	if o.Metrics != "" {
		if err := obs.Default.WriteJSONFile(o.Metrics); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "%s: wrote metrics to %s\n", o.cmd, o.Metrics)
	}
	if o.Trace != "" {
		if err := writeTrace(o.Trace); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "%s: wrote trace to %s\n", o.cmd, o.Trace)
	}
	if o.TraceOut != "" {
		path := filepath.Join(o.TraceOut, "flightrecorder.json")
		if err := obs.DefaultRecorder.WriteJSONFile(path); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "%s: wrote flight recorder to %s\n", o.cmd, path)
	}
	return nil
}

func writeTrace(path string) error {
	tr := obs.ActiveTracer()
	if tr == nil {
		return fmt.Errorf("no active tracer")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
