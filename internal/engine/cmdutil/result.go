package cmdutil

import (
	"flag"
	"fmt"
	"io"
	"strings"

	"joinpebble/internal/engine"
)

// BindStrict registers the shared -strict flag: degradation off, so a
// failed rung fails the command with a matchable sentinel instead of
// quietly completing on a weaker bound. The default (strict off) prints
// a DEGRADED provenance line and exits 0 — scripts that must not accept
// weaker bounds opt in to -strict and match on the non-zero exit.
func BindStrict(fs *flag.FlagSet) *bool {
	return fs.Bool("strict", false,
		"fail instead of degrading when the planned solver runs out of budget or deadline")
}

// Degrade translates the parsed -strict flag into the engine policy.
func Degrade(strict bool) engine.DegradePolicy {
	return engine.DegradePolicy{Off: strict}
}

// DegradeNotice formats the one-line degradation provenance the solve
// commands print for a run that completed on a lower rung: the rung
// chain actually attempted and the failure behind each fall, e.g.
//
//	DEGRADED (exact→approx-1.25: solver: search budget exceeded: ...)
//
// Empty for runs that completed on the planned rung.
func DegradeNotice(res *engine.Result) string {
	if !res.Degraded {
		return ""
	}
	names := make([]string, len(res.Attempts))
	var reasons []string
	for i, a := range res.Attempts {
		names[i] = a.Solver
		if a.Err != "" {
			reasons = append(reasons, a.Err)
		}
	}
	return fmt.Sprintf("DEGRADED (%s: %s)", strings.Join(names, "→"), strings.Join(reasons, "; "))
}

// WriteResult prints the engine run summary the solve-mode commands
// share — one "key value" line per fact, the DEGRADED provenance line
// when the ladder engaged, and optionally the full scheme.
func WriteResult(w io.Writer, res *engine.Result, showScheme bool) {
	fmt.Fprintf(w, "vertices        %d\n", res.Vertices)
	fmt.Fprintf(w, "edges (m)       %d\n", res.Edges)
	fmt.Fprintf(w, "components (β₀) %d\n", res.Components)
	fmt.Fprintf(w, "family          %s\n", res.Family)
	fmt.Fprintf(w, "solver          %s\n", res.Solver)
	fmt.Fprintf(w, "route           %s   (%s)\n", res.Route, res.Reason)
	fmt.Fprintf(w, "quality         %s\n", res.Quality)
	fmt.Fprintf(w, "cost π̂          %d   (bounds: %d..%d)\n", res.Cost, res.LowerBound, res.UpperBound)
	fmt.Fprintf(w, "effective π     %d   (m = %d)\n", res.EffectiveCost, res.Edges)
	fmt.Fprintf(w, "perfect         %v\n", res.Perfect)
	if notice := DegradeNotice(res); notice != "" {
		fmt.Fprintln(w, notice)
	}
	if showScheme {
		fmt.Fprintln(w, "scheme:")
		for i, c := range res.Scheme {
			fmt.Fprintf(w, "  %4d  %v\n", i+1, c)
		}
	}
}
