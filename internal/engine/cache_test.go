package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"joinpebble/internal/core"
	"joinpebble/internal/family"
	"joinpebble/internal/faultinject"
	"joinpebble/internal/graph"
	"joinpebble/internal/schemecache"
	"joinpebble/internal/solver"
	"joinpebble/internal/workload"
)

func testCache() *schemecache.Cache { return schemecache.New(1<<22, 4) }

// cacheSweep is the generator sweep the differential tests run the
// cache rung over: every predicate family (via seeded workloads), the
// structural families, and line graphs — the shapes the cache is built
// to amortize.
func cacheSweep(t *testing.T) map[string]*Instance {
	t.Helper()
	instances := map[string]*Instance{}
	for seed := int64(1); seed <= 2; seed++ {
		for _, w := range []Workload{
			workload.Equijoin{LeftSize: 20, RightSize: 20, Domain: 5, Skew: 0.4},
			workload.SetContainment{LeftSize: 12, RightSize: 12, Universe: 30, LeftMax: 2, RightMax: 6, Correlated: true},
			workload.Spatial{LeftSize: 15, RightSize: 15, Span: 20, MaxExtent: 5},
		} {
			in, err := Generate(w, seed)
			if err != nil {
				t.Fatal(err)
			}
			instances[fmt.Sprintf("%s/seed%d", in.Family, seed)] = in
		}
	}
	for _, name := range family.All() {
		for _, size := range []int{3, 6} {
			b, err := family.Build(name, size)
			if err != nil {
				t.Fatal(err)
			}
			instances[fmt.Sprintf("%s/%d", name, size)] = FromBipartite(string(name), b)
		}
	}
	for _, k := range []int{4, 7} {
		lg := graph.LineGraph(family.Spider(k).Graph())
		instances[fmt.Sprintf("line-spider/%d", k)] = FromGraph(lg)
	}
	return instances
}

// TestCacheWarmSolveByteIdentical: a repeated solve of the same
// instance is served from the cache, carries "cached" provenance in
// Attempts, and the translated scheme is byte-identical to the cold
// solve's.
func TestCacheWarmSolveByteIdentical(t *testing.T) {
	for name, in := range cacheSweep(t) {
		t.Run(name, func(t *testing.T) {
			p := Planner{Cache: testCache()}
			cold, err := p.Run(context.Background(), in)
			if err != nil {
				t.Fatal(err)
			}
			if cold.Solver == CachedSolverName {
				t.Fatal("cold solve cannot be a cache hit")
			}
			warm, err := p.Run(context.Background(), in)
			if err != nil {
				t.Fatal(err)
			}
			if warm.Solver != CachedSolverName {
				t.Fatalf("warm solve used %q, want %q (attempts: %+v)", warm.Solver, CachedSolverName, warm.Attempts)
			}
			if len(warm.Attempts) != 1 || warm.Attempts[0].Solver != CachedSolverName || warm.Attempts[0].Err != "" {
				t.Fatalf("warm attempts %+v, want exactly one clean %q attempt", warm.Attempts, CachedSolverName)
			}
			if !reflect.DeepEqual(warm.Scheme, cold.Scheme) {
				t.Fatalf("cached scheme diverges from fresh solve:\nwarm: %v\ncold: %v", warm.Scheme, cold.Scheme)
			}
			if warm.Cost != cold.Cost || warm.EffectiveCost != cold.EffectiveCost {
				t.Fatalf("cached costs (%d,%d) != fresh (%d,%d)", warm.Cost, warm.EffectiveCost, cold.Cost, cold.EffectiveCost)
			}
			if warm.Degraded {
				t.Fatal("cache hit marked degraded")
			}
			st := p.Cache.Stats()
			if st.Hits != 1 || st.Inserts != 1 {
				t.Fatalf("stats %+v, want 1 hit / 1 insert", st)
			}
		})
	}
}

// TestCachePermutedDuplicates: a relabeled copy of a structural-family
// instance fingerprints identically, hits the cache, and the translated
// scheme verifies at exactly the fresh solve's cost on the permuted
// labeling.
func TestCachePermutedDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, name := range family.All() {
		if name == family.NameGrid {
			// Outside the canonicalizer's completeness contract (see
			// graph.Canonicalize): permuted grids may fingerprint apart,
			// which is a safe miss, not a correctness bug.
			continue
		}
		t.Run(string(name), func(t *testing.T) {
			b, err := family.Build(name, 5)
			if err != nil {
				t.Fatal(err)
			}
			g := b.Graph()
			pi := rng.Perm(g.N())
			h := graph.New(g.N())
			for _, i := range rng.Perm(g.M()) {
				e := g.EdgeAt(i)
				h.AddEdge(pi[e.U], pi[e.V])
			}
			// Ingest both as raw graphs under the same label so the
			// cache key depends only on structure.
			p := Planner{Cache: testCache()}
			cold, err := p.Run(context.Background(), FromGraph(g))
			if err != nil {
				t.Fatal(err)
			}
			warm, err := p.Run(context.Background(), FromGraph(h))
			if err != nil {
				t.Fatal(err)
			}
			if warm.Solver != CachedSolverName {
				t.Fatalf("permuted duplicate used %q, want cache hit", warm.Solver)
			}
			if warm.Cost != cold.Cost {
				t.Fatalf("permuted duplicate verified cost %d != original %d", warm.Cost, cold.Cost)
			}
			// The hit was verified inside the rung; re-verify here to
			// keep the test independent of engine internals.
			if cost, err := core.Verify(h, warm.Scheme); err != nil || cost != warm.Cost {
				t.Fatalf("translated scheme invalid on permuted labeling: cost=%d err=%v", cost, err)
			}
		})
	}
}

// TestCacheKeySeparatesFamiliesAndSolvers: the same graph under a
// different family label or a different planned solver must not share a
// cache entry.
func TestCacheKeySeparatesFamiliesAndSolvers(t *testing.T) {
	b := family.Spider(5)
	p := Planner{Cache: testCache()}
	if _, err := p.Run(context.Background(), FromBipartite("spider", b)); err != nil {
		t.Fatal(err)
	}
	other, err := p.Run(context.Background(), FromBipartite("weblike", b))
	if err != nil {
		t.Fatal(err)
	}
	if other.Solver == CachedSolverName {
		t.Fatal("different family label must miss")
	}
	strict := Planner{Cache: p.Cache, Solver: solver.Naive{}}
	viaNaive, err := strict.Run(context.Background(), FromBipartite("spider", b))
	if err != nil {
		t.Fatal(err)
	}
	if viaNaive.Solver == CachedSolverName {
		t.Fatal("different planned solver must miss")
	}
}

// TestCacheParallelRuns hammers one shared cache from concurrent
// planners with the parallel component pool enabled — the -race
// configuration CI runs. Every warm result must byte-match its own
// fresh solve.
func TestCacheParallelRuns(t *testing.T) {
	prev := solver.Parallelism
	solver.Parallelism = 4
	defer func() { solver.Parallelism = prev }()

	cache := testCache()
	sweep := cacheSweep(t)
	var wg sync.WaitGroup
	errs := make(chan error, len(sweep)*3)
	for name, in := range sweep {
		wg.Add(1)
		go func(name string, in *Instance) {
			defer wg.Done()
			p := Planner{Cache: cache}
			var first *Result
			for round := 0; round < 3; round++ {
				res, err := p.Run(context.Background(), in)
				if err != nil {
					errs <- fmt.Errorf("%s round %d: %w", name, round, err)
					return
				}
				if first == nil {
					first = res
					continue
				}
				if res.Cost != first.Cost || !reflect.DeepEqual(res.Scheme, first.Scheme) {
					errs <- fmt.Errorf("%s round %d: scheme/cost drifted under concurrency", name, round)
					return
				}
			}
		}(name, in)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := cache.Stats()
	if st.Hits == 0 {
		t.Fatal("parallel sweep never hit the cache")
	}
}

// TestCacheLookupFaultForcesColdPath: with the lookup site armed, a
// warm instance still solves — through the planned rung, not the cache.
func TestCacheLookupFaultForcesColdPath(t *testing.T) {
	defer faultinject.Reset()
	in := FromBipartite("spider", family.Spider(4))
	p := Planner{Cache: testCache()}
	if _, err := p.Run(context.Background(), in); err != nil {
		t.Fatal(err)
	}
	faultinject.Arm(schemecache.SiteLookup, faultinject.Fault{Err: errors.New("injected")})
	res, err := p.Run(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Solver == CachedSolverName {
		t.Fatal("forced miss still served from cache")
	}
	if res.Degraded {
		t.Fatal("forced cache miss must not count as degradation")
	}
}

// TestCacheCorruptEntryCaughtByVerify: with the corrupt site armed, the
// cache returns a damaged scheme; the rung's re-verification must
// reject it and the run must fall through to a correct fresh solve.
func TestCacheCorruptEntryCaughtByVerify(t *testing.T) {
	defer faultinject.Reset()
	in := FromBipartite("spider", family.Spider(4))
	p := Planner{Cache: testCache()}
	cold, err := p.Run(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Arm(schemecache.SiteCorrupt, faultinject.Fault{Err: errors.New("injected")})
	res, err := p.Run(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Solver == CachedSolverName {
		t.Fatal("corrupt entry served as a hit")
	}
	if res.Cost != cold.Cost {
		t.Fatalf("fresh fallback cost %d != original %d", res.Cost, cold.Cost)
	}
	if res.Degraded {
		t.Fatal("a rejected cache entry must not count as degradation")
	}
}

// TestCacheDegradedSolvesNotInserted: a run that fell down the ladder
// must not poison the cache with the planned rung's key.
func TestCacheDegradedSolvesNotInserted(t *testing.T) {
	defer faultinject.Reset()
	in := FromBipartite("spider", family.Spider(4))
	p := Planner{Cache: testCache()}
	// Fail the planned rung once; skip is 0 so the first solver attempt
	// degrades to approx-1.25.
	faultinject.Arm(SiteRung, faultinject.Fault{
		Err:   fmt.Errorf("%w: injected", solver.ErrBudgetExceeded),
		Times: 1,
	})
	res, err := p.Run(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Fatal("test setup: run did not degrade")
	}
	if st := p.Cache.Stats(); st.Inserts != 0 {
		t.Fatalf("degraded solve inserted into cache: %+v", st)
	}
	faultinject.Reset()
	// The next run must be a clean miss + fresh planned-rung solve.
	res2, err := p.Run(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Solver == CachedSolverName {
		t.Fatal("cache served an entry that was never inserted")
	}
	if res2.Degraded {
		t.Fatal("second run degraded unexpectedly")
	}
}

// TestCacheQualityProvenance: a hit's Quality names both the cache and
// the producing solver's bound.
func TestCacheQualityProvenance(t *testing.T) {
	in := FromBipartite("spider", family.Spider(4))
	p := Planner{Cache: testCache()}
	cold, err := p.Run(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := p.Run(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	want := "cached: " + qualityFor(cold.Solver)
	if warm.Quality != want {
		t.Fatalf("warm quality %q, want %q", warm.Quality, want)
	}
}

// TestNoCacheMeansNoCacheRung: a zero-value Planner with no shared
// cache installed never reports cached provenance and never pays the
// fingerprint.
func TestNoCacheMeansNoCacheRung(t *testing.T) {
	var p Planner
	in := FromBipartite("spider", family.Spider(4))
	for i := 0; i < 2; i++ {
		res, err := p.Run(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		if res.Solver == CachedSolverName {
			t.Fatal("cache-free planner produced cached provenance")
		}
		for _, a := range res.Attempts {
			if a.Solver == CachedSolverName {
				t.Fatal("cache-free planner recorded a cache attempt")
			}
		}
	}
}

// TestSharedCacheFallback: a zero-value Planner picks up the installed
// process-wide cache, and SetSharedCache(nil) removes it.
func TestSharedCacheFallback(t *testing.T) {
	defer SetSharedCache(nil)
	SetSharedCache(testCache())
	var p Planner
	in := FromBipartite("spider", family.Spider(4))
	if _, err := p.Run(context.Background(), in); err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Solver != CachedSolverName {
		t.Fatalf("shared cache not consulted: solver %q", res.Solver)
	}
	SetSharedCache(nil)
	res, err = p.Run(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Solver == CachedSolverName {
		t.Fatal("cleared shared cache still serving hits")
	}
}

// TestCacheStrictRuns: -strict (Degrade.Off) runs still use the cache —
// a hit is a verified planned-quality scheme — and a miss leaves strict
// failure semantics intact.
func TestCacheStrictRuns(t *testing.T) {
	in := FromBipartite("spider", family.Spider(4))
	p := Planner{Cache: testCache(), Degrade: DegradePolicy{Off: true}}
	cold, err := p.Run(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := p.Run(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Solver != CachedSolverName {
		t.Fatalf("strict warm run used %q, want cache hit", warm.Solver)
	}
	if !reflect.DeepEqual(warm.Scheme, cold.Scheme) {
		t.Fatal("strict cached scheme diverges from fresh solve")
	}
}
