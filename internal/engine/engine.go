// Package engine is the unified pipeline from workload to verified
// pebbling scheme: workload → Instance → Planner → solver → audit.
//
// The paper's central point is that one model — the two-pebble game on a
// join graph — covers equality, set-containment and spatial-overlap
// predicates uniformly (§3–§4). The engine is that uniformity as an
// architectural seam: every predicate family is a Predicate registered
// under its name, every concrete input is an Instance (relations plus
// join graph plus the family's structural guarantees), and one Planner
// routes any instance down the solver ladder — the linear-time perfect
// pebbler when components are complete bipartite (Theorems 3.2/4.1),
// exact search under a size budget, the Theorem 3.1 approximation
// otherwise — returning a single verified Result.
//
// The CLIs (pebble, joingen, experiments, bench) and the experiment
// registry consume this layer instead of hand-rolled per-predicate
// switches, and a future serving daemon batches Instances through the
// same Planner. Solves honor context.Context cancellation down through
// the solver's parallel component pool.
package engine

import (
	"errors"
	"fmt"

	"joinpebble/internal/graph"
	"joinpebble/internal/join"
	"joinpebble/internal/relation"
)

// ErrUnknownFamily reports a family name with no registered Predicate.
// Match with errors.Is.
var ErrUnknownFamily = errors.New("engine: unknown predicate family")

// ErrKindMismatch reports relations whose attribute domains do not match
// the predicate family they were paired with. Match with errors.Is.
var ErrKindMismatch = errors.New("engine: relation kind mismatch")

// Guarantees names the structural facts a predicate family promises
// about every join graph it can produce. The planner consumes them to
// route without re-deriving structure, and tests assert they hold.
type Guarantees struct {
	// CompleteBipartite: every connected component of the join graph is
	// complete bipartite — the defining structure of equijoin graphs
	// (§3.1: all R-tuples with value v join all S-tuples with value v).
	// Implies the linear-time perfect pebbler applies and π = m.
	CompleteBipartite bool
	// Universal: the family can realize *any* bipartite graph as a join
	// graph (set containment by Lemma 3.3, spatial overlap by Lemma 3.4),
	// so its instances inherit the full hardness of PEBBLE.
	Universal bool
}

// Instance is one concrete join problem: the relations (when the
// instance came from data rather than a raw graph), the join graph, and
// the structural guarantees inherited from its family.
type Instance struct {
	// Family is the registered predicate family name, or a free-form
	// label ("graph", "spider") for instances ingested as raw graphs.
	Family string
	// Left and Right are the input relations; nil when the instance was
	// ingested directly as a graph.
	Left, Right *relation.Relation
	// Bip is the join graph; nil only for FromGraph instances.
	Bip *graph.Bipartite
	// Guarantees are the family's structural promises (zero value for
	// raw-graph instances: nothing is promised, the planner inspects).
	Guarantees Guarantees

	g *graph.Graph // cached underlying graph
}

// NewInstance builds an instance from two relations under a predicate
// family: it checks the attribute domains, builds the join graph through
// the family's builder, and attaches the family guarantees.
func NewInstance(p Predicate, l, r *relation.Relation) (*Instance, error) {
	lk, rk := p.Kinds()
	if l.Kind != lk || r.Kind != rk {
		return nil, fmt.Errorf("%w: family %s wants %v⋈%v, got %v⋈%v",
			ErrKindMismatch, p.Name(), lk, rk, l.Kind, r.Kind)
	}
	b, err := p.Build(l, r)
	if err != nil {
		return nil, fmt.Errorf("engine: build %s join graph: %w", p.Name(), err)
	}
	return &Instance{
		Family:     p.Name(),
		Left:       l,
		Right:      r,
		Bip:        b,
		Guarantees: p.Guarantees(),
	}, nil
}

// FromRelations is NewInstance with the family resolved by name.
func FromRelations(family string, l, r *relation.Relation) (*Instance, error) {
	p, ok := Lookup(family)
	if !ok {
		return nil, fmt.Errorf("%w: %q (known: %v)", ErrUnknownFamily, family, Families())
	}
	return NewInstance(p, l, r)
}

// FromBipartite ingests an existing join graph under a family label. If
// the label names a registered family the family's guarantees are
// attached (the caller asserts the graph really came from that family —
// differential tests keep that honest); otherwise no guarantees are
// assumed and the planner falls back to structural inspection.
func FromBipartite(family string, b *graph.Bipartite) *Instance {
	in := &Instance{Family: family, Bip: b}
	if p, ok := Lookup(family); ok {
		in.Guarantees = p.Guarantees()
	}
	return in
}

// FromGraph ingests a general graph (the cmd/pebble "graph n" format).
// No bipartite structure or guarantees are assumed.
func FromGraph(g *graph.Graph) *Instance {
	return &Instance{Family: "graph", g: g}
}

// Graph returns the underlying graph the solvers run on, building and
// caching it on first use.
func (in *Instance) Graph() *graph.Graph {
	if in.g == nil {
		in.g = in.Bip.Graph()
	}
	return in.g
}

// AuditPairs scores a join algorithm's emission order against this
// instance's join graph in the pebble game of §2 — the audit stage of
// the pipeline. The instance must carry a join graph.
func (in *Instance) AuditPairs(pairs []join.Pair) (*join.Audit, error) {
	if in.Bip == nil {
		return nil, fmt.Errorf("engine: instance %q has no join graph to audit against", in.Family)
	}
	return join.AuditPairs(in.Bip, pairs)
}

// Workload generates relation pairs for a predicate family — the
// entry stage of the pipeline. The internal/workload generators satisfy
// it; anything else (a daemon's request decoder, a fuzzer) can too.
type Workload interface {
	// Family names the predicate family the generated relations join
	// under; it must be registered.
	Family() string
	// Generate builds the two relations deterministically from seed.
	Generate(seed int64) (l, r *relation.Relation)
}

// Generate runs a workload and wraps the result in an Instance of the
// workload's family.
func Generate(w Workload, seed int64) (*Instance, error) {
	p, ok := Lookup(w.Family())
	if !ok {
		return nil, fmt.Errorf("%w: workload family %q (known: %v)", ErrUnknownFamily, w.Family(), Families())
	}
	l, r := w.Generate(seed)
	return NewInstance(p, l, r)
}
