package engine

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"joinpebble/internal/family"
	"joinpebble/internal/faultinject"
	"joinpebble/internal/solver"
)

// spiderInstance is the standing non-equijoin test instance: Spider G_3
// is not complete bipartite (so it routes exact, not perfect) and small
// enough that every rung is fast.
func spiderInstance() *Instance {
	return FromBipartite("spider", family.Spider(3))
}

// budgetFault is the deterministic lever the degradation tests pull: a
// wrapped budget sentinel injected at the engine's rung site, so the
// planned rung fails exactly the way a real Held–Karp budget trip does.
func budgetFault(times int) faultinject.Fault {
	return faultinject.Fault{
		Err:   fmt.Errorf("%w: injected for test", solver.ErrBudgetExceeded),
		Times: times,
	}
}

// TestDegradeOnBudget is the core ladder test: the exact rung trips its
// budget, the run completes on the approximation rung, and the Result
// carries the full provenance — both attempts, the failed rung's error
// verbatim, the Degraded flag, and the winning rung's quality bound.
func TestDegradeOnBudget(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Arm(SiteRung, budgetFault(1))

	var p Planner
	res, err := p.Run(context.Background(), spiderInstance())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Fatal("Degraded not set after a rung fall")
	}
	if res.Solver != "approx-1.25" {
		t.Fatalf("winning solver = %q, want approx-1.25", res.Solver)
	}
	if res.Route != solver.RouteExact {
		t.Fatalf("Route must stay the planned rung, got %v", res.Route)
	}
	if len(res.Attempts) != 2 {
		t.Fatalf("Attempts = %+v, want exactly 2 entries", res.Attempts)
	}
	first := res.Attempts[0]
	if first.Solver != "exact" {
		t.Fatalf("first attempt solver = %q, want exact", first.Solver)
	}
	if want := fmt.Sprintf("%v: injected for test", solver.ErrBudgetExceeded); first.Err != want {
		t.Fatalf("first attempt error %q, want the rung failure verbatim: %q", first.Err, want)
	}
	last := res.Attempts[1]
	if last.Solver != res.Solver || last.Err != "" {
		t.Fatalf("last attempt %+v must be the clean winning rung", last)
	}
	if !strings.Contains(res.Quality, "1.25") {
		t.Fatalf("Quality = %q, want the Theorem 3.1 bound", res.Quality)
	}
}

// TestDegradedSchemeMatchesDirectApprox is the differential provenance
// test: the scheme a degraded run produces must be byte-identical to
// solving the same graph with the approximation solver directly — the
// ladder changes who solves, never what the fallback solver computes.
func TestDegradedSchemeMatchesDirectApprox(t *testing.T) {
	defer faultinject.Reset()
	in := spiderInstance()

	want, _, err := solver.SolveAndVerify(solver.Approx125{}, in.Graph())
	if err != nil {
		t.Fatal(err)
	}

	faultinject.Arm(SiteRung, budgetFault(1))
	var p Planner
	res, err := p.Run(context.Background(), spiderInstance())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || res.Solver != "approx-1.25" {
		t.Fatalf("run did not degrade to approx: %+v", res.Attempts)
	}
	if !reflect.DeepEqual(res.Scheme, want) {
		t.Fatalf("degraded scheme differs from direct approx solve:\n got %v\nwant %v", res.Scheme, want)
	}
}

// TestStrictModeSurfacesTheError: with Degrade.Off the planned rung's
// failure is the run's failure, still matchable via the solver sentinel.
func TestStrictModeSurfacesTheError(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Arm(SiteRung, budgetFault(1))

	p := Planner{Degrade: DegradePolicy{Off: true}}
	_, err := p.Run(context.Background(), spiderInstance())
	if !errors.Is(err, solver.ErrBudgetExceeded) {
		t.Fatalf("strict run err = %v, want ErrBudgetExceeded", err)
	}
}

// TestDegradeOnPanic: a recovered component panic on the planned rung is
// a degradable cause; the run survives on a lower rung and the attempt
// records the panic error (with its solver name) verbatim.
func TestDegradeOnPanic(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Arm(solver.SiteComponent, faultinject.Fault{Panic: "induced", Times: 1})

	var p Planner
	res, err := p.Run(context.Background(), spiderInstance())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || res.Solver != "approx-1.25" {
		t.Fatalf("panic did not degrade to approx: %+v", res.Attempts)
	}
	if !strings.Contains(res.Attempts[0].Err, "induced") {
		t.Fatalf("attempt lost the panic value: %q", res.Attempts[0].Err)
	}
}

// TestDegradeExhaustsLadderToNaive: when both the planned rung and the
// approximation fail, the naive Lemma 2.1 rung still lands the run.
func TestDegradeExhaustsLadderToNaive(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Arm(SiteRung, budgetFault(2))

	var p Planner
	res, err := p.Run(context.Background(), spiderInstance())
	if err != nil {
		t.Fatal(err)
	}
	if res.Solver != "naive" || len(res.Attempts) != 3 {
		t.Fatalf("ladder did not bottom out on naive: %+v", res.Attempts)
	}
	g := spiderInstance().Graph()
	if res.Cost > 2*g.M() {
		t.Fatalf("naive rung cost %d exceeds the Lemma 2.1 bound %d", res.Cost, 2*g.M())
	}
}

// TestFinalRungFailureIsFatal: a failure on the last rung has nowhere to
// fall — the run errors even with degradation on.
func TestFinalRungFailureIsFatal(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Arm(SiteRung, budgetFault(0)) // every rung

	var p Planner
	_, err := p.Run(context.Background(), spiderInstance())
	if !errors.Is(err, solver.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded from the final rung", err)
	}
}

// TestCallerCancellationOutranksDegradation: the ladder absorbs rung
// deadlines, never the caller's own cancellation.
func TestCallerCancellationOutranksDegradation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var p Planner
	if _, err := p.Run(ctx, spiderInstance()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRungSoftDeadlineDegrades: a non-final rung that burns through its
// RungFraction share of the caller's deadline falls to the next rung
// while the caller's context is still live. The delay is injected at the
// rung site, so the timing is deterministic: the 300ms stall dwarfs the
// 100ms rung share and is dwarfed by the 10s caller budget.
func TestRungSoftDeadlineDegrades(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Arm(SiteRung, faultinject.Fault{Delay: 300 * time.Millisecond, Times: 1})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	p := Planner{Degrade: DegradePolicy{RungFraction: 0.01}}
	res, err := p.Run(ctx, spiderInstance())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Fatalf("rung soft deadline did not degrade: %+v", res.Attempts)
	}
	if !strings.Contains(res.Attempts[0].Err, context.DeadlineExceeded.Error()) {
		t.Fatalf("attempt error %q, want a deadline cause", res.Attempts[0].Err)
	}
}

// TestCleanRunProvenance: no faults, no degradation — one attempt, no
// Degraded flag, quality matching the planned rung.
func TestCleanRunProvenance(t *testing.T) {
	var p Planner
	res, err := p.Run(context.Background(), spiderInstance())
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded || len(res.Attempts) != 1 || res.Attempts[0].Err != "" {
		t.Fatalf("clean run provenance wrong: degraded=%v attempts=%+v", res.Degraded, res.Attempts)
	}
	if res.Quality != "optimal (exact search)" {
		t.Fatalf("Quality = %q for the exact rung", res.Quality)
	}
}

// TestExplicitSolverStillDegrades: a Planner.Solver override changes the
// top rung, not the safety net underneath it.
func TestExplicitSolverStillDegrades(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Arm(SiteRung, budgetFault(1))

	p := Planner{Solver: solver.ExactBnB{}}
	res, err := p.Run(context.Background(), spiderInstance())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || res.Attempts[0].Solver != "exact-bnb" {
		t.Fatalf("override rung provenance wrong: %+v", res.Attempts)
	}
}
