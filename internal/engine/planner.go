package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	"time"

	"joinpebble/internal/core"
	"joinpebble/internal/faultinject"
	"joinpebble/internal/graph"
	"joinpebble/internal/obs"
	"joinpebble/internal/solver"
)

// Planner routing counters: which ladder rung handled each instance, how
// often a family guarantee let the planner skip structural inspection
// entirely, and — when the degradation ladder engages — why each fall
// happened (engine/plan/degraded_* by cause, _runs for runs that
// completed on a lower rung than planned). All bindings are scope-aware:
// a Run whose context carries an obs.Scope records into that scope (and
// the totals reach the global registry when the scope closes), so two
// concurrent solves keep disjoint per-request counters.
var (
	cPlanPerfect    = obs.ScopedCounter("engine/plan/perfect")
	cPlanExact      = obs.ScopedCounter("engine/plan/exact")
	cPlanApprox     = obs.ScopedCounter("engine/plan/approx")
	cPlanOverride   = obs.ScopedCounter("engine/plan/override")
	cPlanGuaranteed = obs.ScopedCounter("engine/plan/by_guarantee")
	cRuns           = obs.ScopedCounter("engine/runs")
	tRun            = obs.ScopedTimer("engine/run")

	cDegradedRuns      = obs.ScopedCounter("engine/plan/degraded_runs")
	cDegradedBudget    = obs.ScopedCounter("engine/plan/degraded_budget")
	cDegradedDeadline  = obs.ScopedCounter("engine/plan/degraded_deadline")
	cDegradedPanic     = obs.ScopedCounter("engine/plan/degraded_panic")
	cDegradedStructure = obs.ScopedCounter("engine/plan/degraded_structure")
)

// SiteRung is the fault-injection site fired before every rung attempt
// in Run (registry in DESIGN.md): inject a wrapped solver sentinel to
// force any rung to fail without constructing a pathological instance.
const SiteRung = "engine/rung"

// DegradePolicy configures how Run responds when a ladder rung fails.
// The zero value degrades: Theorem 3.1 guarantees a 1.25-approximation
// is always available and Lemma 2.1 a 2m scheme for free, so erroring
// out when a lower rung still works is a policy choice, not a necessity
// — strict callers (the CLIs' -strict flag, tests pinning exact
// behavior) opt out with Off.
type DegradePolicy struct {
	// Off disables degradation: the planned rung's failure is the run's
	// failure, matchable via the solver sentinels it wraps.
	Off bool
	// RungFraction is the share of the caller's remaining deadline a
	// non-final rung may spend before the run falls through to the next
	// rung (a soft deadline carved from ctx). 0 means 0.5; the final
	// rung always gets everything left. Ignored when the caller's ctx
	// has no deadline.
	RungFraction float64
}

// Attempt is one rung try in a Run: the solver, how long it ran, and —
// for failed rungs — the error that pushed the run down the ladder,
// verbatim. The last attempt of a successful Run has Err == "".
type Attempt struct {
	Solver  string        `json:"solver"`
	Err     string        `json:"err,omitempty"`
	Elapsed time.Duration `json:"elapsed"`
}

// Planner inspects instances and routes them down the solver ladder.
// The zero value is ready to use and routes exactly like solver.Auto, so
// engine-routed solves are byte-identical to direct Auto solves.
type Planner struct {
	// ExactLimit caps the exact rung's per-component edge count; zero
	// means tsp.MaxExactCities.
	ExactLimit int
	// Solver, when non-nil, overrides routing: every instance goes to
	// this solver regardless of structure (the CLI -solver flag).
	// Degradation still applies unless Degrade.Off is set: an explicit
	// solver that trips its budget falls down the ladder like a routed
	// one.
	Solver solver.Solver
	// Snapshot attaches a metrics-registry snapshot to each Result.
	Snapshot bool
	// Degrade is the degradation policy Run applies when a rung fails
	// with a budget, deadline, panic, or structure error. The zero
	// value degrades down the ladder (exact → approx → naive).
	Degrade DegradePolicy
}

// Plan is a routing decision: the rung, the solver implementing it, and
// a human-readable justification for plan output and traces.
type Plan struct {
	Route  solver.Route
	Solver solver.Solver
	Reason string
}

// Plan routes an instance without solving it. A family guarantee of
// complete-bipartite components short-circuits to the perfect rung with
// no graph scan; otherwise the route comes from the same structural
// classification solver.Auto uses, so the two can never disagree.
// Routing counters land in the global registry; Run plans through the
// scoped path so a request's plan decision stays with its scope.
func (p *Planner) Plan(in *Instance) Plan { return p.plan(context.Background(), in) }

func (p *Planner) plan(ctx context.Context, in *Instance) Plan {
	if p.Solver != nil {
		cPlanOverride.Inc(ctx)
		return Plan{
			Route:  solver.PlanRoute(in.Graph(), p.ExactLimit),
			Solver: p.Solver,
			Reason: fmt.Sprintf("explicit solver %s", p.Solver.Name()),
		}
	}
	if in.Guarantees.CompleteBipartite {
		cPlanGuaranteed.Inc(ctx)
		cPlanPerfect.Inc(ctx)
		return Plan{
			Route:  solver.RoutePerfect,
			Solver: solver.RouteSolver(solver.RoutePerfect, p.ExactLimit),
			Reason: fmt.Sprintf("family %s guarantees complete-bipartite components (Thm 3.2)", in.Family),
		}
	}
	route := solver.PlanRoute(in.Graph(), p.ExactLimit)
	switch route {
	case solver.RoutePerfect:
		cPlanPerfect.Inc(ctx)
	case solver.RouteExact:
		cPlanExact.Inc(ctx)
	default:
		cPlanApprox.Inc(ctx)
	}
	return Plan{
		Route:  route,
		Solver: solver.RouteSolver(route, p.ExactLimit),
		Reason: routeReason(route),
	}
}

func routeReason(r solver.Route) string {
	switch r {
	case solver.RoutePerfect:
		return "all components complete bipartite (Thm 4.1)"
	case solver.RouteExact:
		return "every component within the exact search budget"
	default:
		return "1.25-approximation (Thm 3.1)"
	}
}

// Result is the single output of an engine-routed solve: the verified
// scheme with its costs and bounds, how it was routed, and (optionally)
// the metrics snapshot taken right after the solve.
type Result struct {
	// Family and Route record the pipeline provenance. Route is the
	// *planned* rung; when Degraded is set the scheme actually came from
	// a lower one (see Solver and Attempts).
	Family string
	Route  solver.Route
	// Solver is the name of the solver that produced the scheme — the
	// last entry of Attempts, not necessarily the planned rung.
	Solver string
	// Reason is the planner's routing justification.
	Reason string

	// Degraded reports that the planned rung failed and the scheme came
	// from a fallback; Attempts is the full rung-by-rung provenance
	// (every failed rung with its error verbatim, then the rung that
	// produced the scheme). Quality names the bound the final rung
	// guarantees — the degradation ladder never leaves the Lemma 2.1
	// 2m envelope, and every scheme is still simulator-verified.
	Degraded bool
	Attempts []Attempt
	Quality  string

	// Scheme is the pebbling scheme; Cost is its simulator-verified π̂
	// and EffectiveCost the π = π̂ − β₀ of Definition 2.2.
	Scheme        core.Scheme
	Cost          int
	EffectiveCost int

	// LowerBound and UpperBound are Lemma 2.1's universal bounds on π̂;
	// Perfect reports π = m (Definition 2.3).
	LowerBound, UpperBound int
	Perfect                bool

	// Vertices, Edges and Components describe the solved graph.
	Vertices, Edges, Components int

	// Elapsed is the wall time of plan + solve + verify.
	Elapsed time.Duration

	// Metrics is the obs registry snapshot after the solve, attached
	// when Planner.Snapshot is set (nil otherwise).
	Metrics *obs.Snapshot
}

// Run routes the instance, solves it under ctx, verifies the scheme
// against the pebble-game simulator, and assembles the Result. The
// solver layer's spans and counters fire underneath the engine/solve
// span, into the request's obs.Scope: if ctx carries one the caller
// owns it (close it to roll up and read per-request metrics back);
// otherwise Run opens and closes one itself, so every solve reports to
// the flight recorder either way. Each rung attempt runs under pprof
// labels (phase/family/rung), and the scope accumulates the attempt
// provenance as events plus degraded/panic/fault/error flags.
//
// Unless Degrade.Off is set, a rung failure the ladder can absorb — a
// search budget trip (solver.ErrBudgetExceeded), a per-rung soft
// deadline (context.DeadlineExceeded while the caller's own ctx is
// still live), a recovered component panic (solver.ErrPanic), or a
// structure rejection (solver.ErrStructure) — pushes the run down to
// the next rung instead of failing it: exact → approx → naive, with
// every attempt recorded in Result.Attempts. The caller's own
// cancellation always aborts the run.
func (p *Planner) Run(ctx context.Context, in *Instance) (*Result, error) {
	sc := obs.ScopeFrom(ctx)
	owned := sc == nil
	if owned {
		// Unscoped callers (the CLIs, tests) get a per-run scope for free
		// so every solve feeds the flight recorder; callers that made
		// their own scope keep ownership and close it themselves.
		sc = obs.NewScope("engine/solve")
		ctx = obs.WithScope(ctx, sc)
	}
	res, err := p.run(ctx, in, sc)
	if owned {
		sc.Close()
	}
	if err != nil {
		return nil, err
	}
	if p.Snapshot {
		// Taken after the owned scope's rollup, so the snapshot already
		// includes this run's own metrics.
		res.Metrics = obs.Default.Snapshot()
	}
	return res, nil
}

// run is the scope-carrying body of Run: ctx always holds sc here.
func (p *Planner) run(ctx context.Context, in *Instance, sc *obs.Scope) (*Result, error) {
	cRuns.Inc(ctx)
	start := obs.Now()
	sp := obs.StartSpanCtx(ctx, "engine/solve")
	defer sp.End()
	sc.Note("family", in.Family)

	plan := p.plan(ctx, in)
	g := in.Graph()
	sp.SetInt("edges", int64(g.M()))
	sp.SetInt("route", int64(plan.Route))

	ladder := p.ladder(plan)
	var attempts []Attempt
	for i, s := range ladder {
		final := i == len(ladder)-1
		rungCtx, cancel := p.rungContext(ctx, final)
		rungStart := obs.Now()
		var scheme core.Scheme
		var cost int
		var err error
		// Profiling labels per rung: a CPU profile taken during a solve
		// attributes samples to the phase/family/rung that burned them.
		pprof.Do(rungCtx, pprof.Labels("phase", "solve", "family", in.Family, "rung", s.Name()), func(ctx context.Context) {
			scheme, cost, err = attemptRung(ctx, s, g)
		})
		cancel()
		if err == nil {
			attempts = append(attempts, Attempt{Solver: s.Name(), Elapsed: obs.Since(rungStart)})
			sc.Event("rung/"+s.Name(), "", obs.Since(rungStart))
			res := p.assemble(ctx, in, plan, g, s.Name(), scheme, cost, start)
			res.Attempts = attempts
			res.Degraded = i > 0
			if res.Degraded {
				cDegradedRuns.Inc(ctx)
				sc.Flag(obs.FlagDegraded)
			}
			return res, nil
		}
		attempts = append(attempts, Attempt{Solver: s.Name(), Err: err.Error(), Elapsed: obs.Since(rungStart)})
		sc.Event("rung/"+s.Name(), err.Error(), obs.Since(rungStart))
		if errors.Is(err, solver.ErrPanic) {
			sc.Flag(obs.FlagPanic)
		}
		if p.Degrade.Off || final || !countDegradation(ctx, err) {
			sc.Flag(obs.FlagError)
			sc.Note("error", err.Error())
			return nil, fmt.Errorf("engine: %s via %s: %w", in.Family, s.Name(), err)
		}
		sp.SetInt("degraded", int64(i+1))
	}
	panic("engine: empty solver ladder") // ladder always has >= 1 rung
}

// attemptRung is one ladder rung: the SiteRung fault hook, then the
// solve + simulator verification.
func attemptRung(ctx context.Context, s solver.Solver, g *graph.Graph) (core.Scheme, int, error) {
	if err := faultinject.Fire(SiteRung); err != nil {
		return nil, 0, err
	}
	return solver.SolveAndVerifyContext(ctx, s, g)
}

// ladder returns the rungs Run tries in order: the planned (or
// explicitly chosen) solver, then the Theorem 3.1 approximation, then
// the Lemma 2.1 naive scheme — each guaranteed to exist for any graph,
// so a non-strict run can always complete.
func (p *Planner) ladder(plan Plan) []solver.Solver {
	out := []solver.Solver{plan.Solver}
	if p.Degrade.Off {
		return out
	}
	for _, fb := range []solver.Solver{solver.Approx125{}, solver.Naive{}} {
		if fb.Name() != plan.Solver.Name() {
			out = append(out, fb)
		}
	}
	return out
}

// rungContext carves a non-final rung's soft deadline out of the
// caller's remaining budget: RungFraction (default half) of the time
// left, so every lower rung keeps a share and the final rung gets
// whatever remains. Callers without a deadline run each rung unbounded.
func (p *Planner) rungContext(ctx context.Context, final bool) (context.Context, context.CancelFunc) {
	if final || p.Degrade.Off {
		return ctx, func() {}
	}
	dl, ok := ctx.Deadline()
	if !ok {
		return ctx, func() {}
	}
	remaining := obs.Until(dl)
	if remaining <= 0 {
		return ctx, func() {}
	}
	frac := p.Degrade.RungFraction
	if frac <= 0 || frac >= 1 {
		frac = 0.5
	}
	return context.WithDeadline(ctx, obs.Now().Add(time.Duration(float64(remaining)*frac)))
}

// countDegradation reports whether err is a failure the ladder absorbs,
// bumping the matching engine/plan/degraded_* counter. The caller's own
// cancellation or expired deadline is never absorbed: lower rungs would
// inherit a dead context, and the caller asked to stop.
func countDegradation(ctx context.Context, err error) bool {
	if ctx.Err() != nil {
		return false
	}
	switch {
	case errors.Is(err, solver.ErrBudgetExceeded):
		cDegradedBudget.Inc(ctx)
	case errors.Is(err, context.DeadlineExceeded):
		cDegradedDeadline.Inc(ctx) // a rung soft deadline, caller still live
	case errors.Is(err, solver.ErrPanic):
		cDegradedPanic.Inc(ctx)
	case errors.Is(err, solver.ErrStructure):
		cDegradedStructure.Inc(ctx)
	default:
		return false
	}
	return true
}

// assemble builds the Result for the rung that produced the scheme.
func (p *Planner) assemble(ctx context.Context, in *Instance, plan Plan, g *graph.Graph, solverName string, scheme core.Scheme, cost int, start time.Time) *Result {
	eff := scheme.EffectiveCost(g)
	res := &Result{
		Family:        in.Family,
		Route:         plan.Route,
		Solver:        solverName,
		Reason:        plan.Reason,
		Quality:       qualityFor(solverName),
		Scheme:        scheme,
		Cost:          cost,
		EffectiveCost: eff,
		LowerBound:    core.LowerBound(g),
		UpperBound:    core.UpperBound(g),
		Perfect:       eff == g.M(),
		Vertices:      g.N(),
		Edges:         g.M(),
		Components:    core.Betti0(g),
		Elapsed:       obs.Since(start),
	}
	tRun.Observe(ctx, res.Elapsed)
	return res
}

// qualityFor names the bound the producing solver's scheme carries —
// the "how much did degradation cost us" part of the provenance.
func qualityFor(name string) string {
	switch name {
	case "equijoin":
		return "perfect: π = m (Thm 4.1)"
	case "exact", "exact-bnb":
		return "optimal (exact search)"
	case "approx-1.25":
		return "π ≤ 1.25m (Thm 3.1)"
	case "naive":
		return "π̂ ≤ 2m (Lemma 2.1)"
	default:
		return "π̂ ≤ 2m (Lemma 2.1, universal)"
	}
}

// Decide answers PEBBLE(D) of Definition 4.1 — is π ≤ K? — through the
// decision ladder (bounds, CertificateLadder certificates, exact). It is
// the engine's decision-problem entry point, sharing the certificate
// rung with the planner's solver ladder.
func (p *Planner) Decide(ctx context.Context, in *Instance, k int) (bool, error) {
	return solver.DecideContext(ctx, in.Graph(), k)
}
