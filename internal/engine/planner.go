package engine

import (
	"context"
	"fmt"
	"time"

	"joinpebble/internal/core"
	"joinpebble/internal/obs"
	"joinpebble/internal/solver"
)

// Planner routing counters: which ladder rung handled each instance, and
// how often a family guarantee let the planner skip structural
// inspection entirely.
var (
	cPlanPerfect    = obs.Default.Counter("engine/plan/perfect")
	cPlanExact      = obs.Default.Counter("engine/plan/exact")
	cPlanApprox     = obs.Default.Counter("engine/plan/approx")
	cPlanOverride   = obs.Default.Counter("engine/plan/override")
	cPlanGuaranteed = obs.Default.Counter("engine/plan/by_guarantee")
	cRuns           = obs.Default.Counter("engine/runs")
	tRun            = obs.Default.Timer("engine/run")
)

// Planner inspects instances and routes them down the solver ladder.
// The zero value is ready to use and routes exactly like solver.Auto, so
// engine-routed solves are byte-identical to direct Auto solves.
type Planner struct {
	// ExactLimit caps the exact rung's per-component edge count; zero
	// means tsp.MaxExactCities.
	ExactLimit int
	// Solver, when non-nil, overrides routing: every instance goes to
	// this solver regardless of structure (the CLI -solver flag).
	Solver solver.Solver
	// Snapshot attaches a metrics-registry snapshot to each Result.
	Snapshot bool
}

// Plan is a routing decision: the rung, the solver implementing it, and
// a human-readable justification for plan output and traces.
type Plan struct {
	Route  solver.Route
	Solver solver.Solver
	Reason string
}

// Plan routes an instance without solving it. A family guarantee of
// complete-bipartite components short-circuits to the perfect rung with
// no graph scan; otherwise the route comes from the same structural
// classification solver.Auto uses, so the two can never disagree.
func (p *Planner) Plan(in *Instance) Plan {
	if p.Solver != nil {
		cPlanOverride.Inc()
		return Plan{
			Route:  solver.PlanRoute(in.Graph(), p.ExactLimit),
			Solver: p.Solver,
			Reason: fmt.Sprintf("explicit solver %s", p.Solver.Name()),
		}
	}
	if in.Guarantees.CompleteBipartite {
		cPlanGuaranteed.Inc()
		cPlanPerfect.Inc()
		return Plan{
			Route:  solver.RoutePerfect,
			Solver: solver.RouteSolver(solver.RoutePerfect, p.ExactLimit),
			Reason: fmt.Sprintf("family %s guarantees complete-bipartite components (Thm 3.2)", in.Family),
		}
	}
	route := solver.PlanRoute(in.Graph(), p.ExactLimit)
	switch route {
	case solver.RoutePerfect:
		cPlanPerfect.Inc()
	case solver.RouteExact:
		cPlanExact.Inc()
	default:
		cPlanApprox.Inc()
	}
	return Plan{
		Route:  route,
		Solver: solver.RouteSolver(route, p.ExactLimit),
		Reason: routeReason(route),
	}
}

func routeReason(r solver.Route) string {
	switch r {
	case solver.RoutePerfect:
		return "all components complete bipartite (Thm 4.1)"
	case solver.RouteExact:
		return "every component within the exact search budget"
	default:
		return "1.25-approximation (Thm 3.1)"
	}
}

// Result is the single output of an engine-routed solve: the verified
// scheme with its costs and bounds, how it was routed, and (optionally)
// the metrics snapshot taken right after the solve.
type Result struct {
	// Family and Route record the pipeline provenance.
	Family string
	Route  solver.Route
	// Solver is the name of the solver that produced the scheme.
	Solver string
	// Reason is the planner's routing justification.
	Reason string

	// Scheme is the pebbling scheme; Cost is its simulator-verified π̂
	// and EffectiveCost the π = π̂ − β₀ of Definition 2.2.
	Scheme        core.Scheme
	Cost          int
	EffectiveCost int

	// LowerBound and UpperBound are Lemma 2.1's universal bounds on π̂;
	// Perfect reports π = m (Definition 2.3).
	LowerBound, UpperBound int
	Perfect                bool

	// Vertices, Edges and Components describe the solved graph.
	Vertices, Edges, Components int

	// Elapsed is the wall time of plan + solve + verify.
	Elapsed time.Duration

	// Metrics is the obs registry snapshot after the solve, attached
	// when Planner.Snapshot is set (nil otherwise).
	Metrics *obs.Snapshot
}

// Run routes the instance, solves it under ctx, verifies the scheme
// against the pebble-game simulator, and assembles the Result. The
// existing obs spans/counters of the solver layer fire unchanged
// underneath the engine/solve span.
func (p *Planner) Run(ctx context.Context, in *Instance) (*Result, error) {
	cRuns.Inc()
	start := time.Now()
	sp := obs.StartSpan("engine/solve")
	defer sp.End()

	plan := p.Plan(in)
	g := in.Graph()
	sp.SetInt("edges", int64(g.M()))
	sp.SetInt("route", int64(plan.Route))

	scheme, cost, err := solver.SolveAndVerifyContext(ctx, plan.Solver, g)
	if err != nil {
		return nil, fmt.Errorf("engine: %s via %s: %w", in.Family, plan.Solver.Name(), err)
	}
	eff := scheme.EffectiveCost(g)
	res := &Result{
		Family:        in.Family,
		Route:         plan.Route,
		Solver:        plan.Solver.Name(),
		Reason:        plan.Reason,
		Scheme:        scheme,
		Cost:          cost,
		EffectiveCost: eff,
		LowerBound:    core.LowerBound(g),
		UpperBound:    core.UpperBound(g),
		Perfect:       eff == g.M(),
		Vertices:      g.N(),
		Edges:         g.M(),
		Components:    core.Betti0(g),
		Elapsed:       time.Since(start),
	}
	tRun.Observe(res.Elapsed)
	if p.Snapshot {
		res.Metrics = obs.Default.Snapshot()
	}
	return res, nil
}

// Decide answers PEBBLE(D) of Definition 4.1 — is π ≤ K? — through the
// decision ladder (bounds, CertificateLadder certificates, exact). It is
// the engine's decision-problem entry point, sharing the certificate
// rung with the planner's solver ladder.
func (p *Planner) Decide(ctx context.Context, in *Instance, k int) (bool, error) {
	return solver.DecideContext(ctx, in.Graph(), k)
}
