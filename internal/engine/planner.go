package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	"time"

	"joinpebble/internal/core"
	"joinpebble/internal/faultinject"
	"joinpebble/internal/graph"
	"joinpebble/internal/obs"
	"joinpebble/internal/schemecache"
	"joinpebble/internal/solver"
)

// Planner routing counters: which ladder rung handled each instance, how
// often a family guarantee let the planner skip structural inspection
// entirely, and — when the degradation ladder engages — why each fall
// happened (engine/plan/degraded_* by cause, _runs for runs that
// completed on a lower rung than planned). All bindings are scope-aware:
// a Run whose context carries an obs.Scope records into that scope (and
// the totals reach the global registry when the scope closes), so two
// concurrent solves keep disjoint per-request counters.
var (
	cPlanPerfect    = obs.ScopedCounter("engine/plan/perfect")
	cPlanExact      = obs.ScopedCounter("engine/plan/exact")
	cPlanApprox     = obs.ScopedCounter("engine/plan/approx")
	cPlanOverride   = obs.ScopedCounter("engine/plan/override")
	cPlanGuaranteed = obs.ScopedCounter("engine/plan/by_guarantee")
	cRuns           = obs.ScopedCounter("engine/runs")
	tRun            = obs.ScopedTimer("engine/run")

	cDegradedRuns      = obs.ScopedCounter("engine/plan/degraded_runs")
	cDegradedBudget    = obs.ScopedCounter("engine/plan/degraded_budget")
	cDegradedDeadline  = obs.ScopedCounter("engine/plan/degraded_deadline")
	cDegradedPanic     = obs.ScopedCounter("engine/plan/degraded_panic")
	cDegradedStructure = obs.ScopedCounter("engine/plan/degraded_structure")
)

// SiteRung is the fault-injection site fired before every rung attempt
// in Run (registry in DESIGN.md): inject a wrapped solver sentinel to
// force any rung to fail without constructing a pathological instance.
const SiteRung = "engine/rung"

// DegradePolicy configures how Run responds when a ladder rung fails.
// The zero value degrades: Theorem 3.1 guarantees a 1.25-approximation
// is always available and Lemma 2.1 a 2m scheme for free, so erroring
// out when a lower rung still works is a policy choice, not a necessity
// — strict callers (the CLIs' -strict flag, tests pinning exact
// behavior) opt out with Off.
type DegradePolicy struct {
	// Off disables degradation: the planned rung's failure is the run's
	// failure, matchable via the solver sentinels it wraps.
	Off bool
	// RungFraction is the share of the caller's remaining deadline a
	// non-final rung may spend before the run falls through to the next
	// rung (a soft deadline carved from ctx). 0 means 0.5; the final
	// rung always gets everything left. Ignored when the caller's ctx
	// has no deadline.
	RungFraction float64
}

// Attempt is one rung try in a Run: the solver, how long it ran, and —
// for failed rungs — the error that pushed the run down the ladder,
// verbatim. The last attempt of a successful Run has Err == "".
type Attempt struct {
	Solver  string        `json:"solver"`
	Err     string        `json:"err,omitempty"`
	Elapsed time.Duration `json:"elapsed"`
}

// Planner inspects instances and routes them down the solver ladder.
// The zero value is ready to use and routes exactly like solver.Auto, so
// engine-routed solves are byte-identical to direct Auto solves.
type Planner struct {
	// ExactLimit caps the exact rung's per-component edge count; zero
	// means tsp.MaxExactCities.
	ExactLimit int
	// Solver, when non-nil, overrides routing: every instance goes to
	// this solver regardless of structure (the CLI -solver flag).
	// Degradation still applies unless Degrade.Off is set: an explicit
	// solver that trips its budget falls down the ladder like a routed
	// one.
	Solver solver.Solver
	// Snapshot attaches a metrics-registry snapshot to each Result.
	Snapshot bool
	// Degrade is the degradation policy Run applies when a rung fails
	// with a budget, deadline, panic, or structure error. The zero
	// value degrades down the ladder (exact → approx → naive).
	Degrade DegradePolicy
	// Cache, when non-nil, is the scheme cache consulted before the
	// planned rung and filled after undegraded solves. When nil, Run
	// falls back to the process-wide cache installed via
	// SetSharedCache; if neither exists, runs are cache-free (the
	// zero-value Planner in a test process stays byte-identical to the
	// pre-cache engine).
	Cache *schemecache.Cache
}

// cacheFor resolves the cache a run uses: the Planner's own, else the
// shared one, else none.
func (p *Planner) cacheFor() *schemecache.Cache {
	if p.Cache != nil {
		return p.Cache
	}
	return SharedCache()
}

// Plan is a routing decision: the rung, the solver implementing it, and
// a human-readable justification for plan output and traces.
type Plan struct {
	Route  solver.Route
	Solver solver.Solver
	Reason string
}

// Plan routes an instance without solving it. A family guarantee of
// complete-bipartite components short-circuits to the perfect rung with
// no graph scan; otherwise the route comes from the same structural
// classification solver.Auto uses, so the two can never disagree.
// Routing counters land in the global registry; Run plans through the
// scoped path so a request's plan decision stays with its scope.
func (p *Planner) Plan(in *Instance) Plan { return p.plan(context.Background(), in) }

func (p *Planner) plan(ctx context.Context, in *Instance) Plan {
	if p.Solver != nil {
		cPlanOverride.Inc(ctx)
		return Plan{
			Route:  solver.PlanRoute(in.Graph(), p.ExactLimit),
			Solver: p.Solver,
			Reason: fmt.Sprintf("explicit solver %s", p.Solver.Name()),
		}
	}
	if in.Guarantees.CompleteBipartite {
		cPlanGuaranteed.Inc(ctx)
		cPlanPerfect.Inc(ctx)
		return Plan{
			Route:  solver.RoutePerfect,
			Solver: solver.RouteSolver(solver.RoutePerfect, p.ExactLimit),
			Reason: fmt.Sprintf("family %s guarantees complete-bipartite components (Thm 3.2)", in.Family),
		}
	}
	route := solver.PlanRoute(in.Graph(), p.ExactLimit)
	switch route {
	case solver.RoutePerfect:
		cPlanPerfect.Inc(ctx)
	case solver.RouteExact:
		cPlanExact.Inc(ctx)
	default:
		cPlanApprox.Inc(ctx)
	}
	return Plan{
		Route:  route,
		Solver: solver.RouteSolver(route, p.ExactLimit),
		Reason: solver.RouteReason(route),
	}
}

// Result is the single output of an engine-routed solve: the verified
// scheme with its costs and bounds, how it was routed, and (optionally)
// the metrics snapshot taken right after the solve.
type Result struct {
	// Family and Route record the pipeline provenance. Route is the
	// *planned* rung; when Degraded is set the scheme actually came from
	// a lower one (see Solver and Attempts).
	Family string
	Route  solver.Route
	// Solver is the name of the solver that produced the scheme — the
	// last entry of Attempts, not necessarily the planned rung.
	Solver string
	// Reason is the planner's routing justification.
	Reason string

	// Degraded reports that the planned rung failed and the scheme came
	// from a fallback; Attempts is the full rung-by-rung provenance
	// (every failed rung with its error verbatim, then the rung that
	// produced the scheme). Quality names the bound the final rung
	// guarantees — the degradation ladder never leaves the Lemma 2.1
	// 2m envelope, and every scheme is still simulator-verified.
	Degraded bool
	Attempts []Attempt
	Quality  string

	// Scheme is the pebbling scheme; Cost is its simulator-verified π̂
	// and EffectiveCost the π = π̂ − β₀ of Definition 2.2.
	Scheme        core.Scheme
	Cost          int
	EffectiveCost int

	// LowerBound and UpperBound are Lemma 2.1's universal bounds on π̂;
	// Perfect reports π = m (Definition 2.3).
	LowerBound, UpperBound int
	Perfect                bool

	// Vertices, Edges and Components describe the solved graph.
	Vertices, Edges, Components int

	// Elapsed is the wall time of plan + solve + verify.
	Elapsed time.Duration

	// Metrics is the obs registry snapshot after the solve, attached
	// when Planner.Snapshot is set (nil otherwise).
	Metrics *obs.Snapshot
}

// Run routes the instance, solves it under ctx, verifies the scheme
// against the pebble-game simulator, and assembles the Result. The
// solver layer's spans and counters fire underneath the engine/solve
// span, into the request's obs.Scope: if ctx carries one the caller
// owns it (close it to roll up and read per-request metrics back);
// otherwise Run opens and closes one itself, so every solve reports to
// the flight recorder either way. Each rung attempt runs under pprof
// labels (phase/family/rung), and the scope accumulates the attempt
// provenance as events plus degraded/panic/fault/error flags.
//
// Unless Degrade.Off is set, a rung failure the ladder can absorb — a
// search budget trip (solver.ErrBudgetExceeded), a per-rung soft
// deadline (context.DeadlineExceeded while the caller's own ctx is
// still live), a recovered component panic (solver.ErrPanic), or a
// structure rejection (solver.ErrStructure) — pushes the run down to
// the next rung instead of failing it: exact → approx → naive, with
// every attempt recorded in Result.Attempts. The caller's own
// cancellation always aborts the run.
func (p *Planner) Run(ctx context.Context, in *Instance) (*Result, error) {
	sc := obs.ScopeFrom(ctx)
	owned := sc == nil
	if owned {
		// Unscoped callers (the CLIs, tests) get a per-run scope for free
		// so every solve feeds the flight recorder; callers that made
		// their own scope keep ownership and close it themselves.
		sc = obs.NewScope("engine/solve")
		ctx = obs.WithScope(ctx, sc)
	}
	res, err := p.run(ctx, in, sc)
	if owned {
		sc.Close()
	}
	if err != nil {
		return nil, err
	}
	if p.Snapshot {
		// Taken after the owned scope's rollup, so the snapshot already
		// includes this run's own metrics.
		res.Metrics = obs.Default.Snapshot()
	}
	return res, nil
}

// run is the scope-carrying body of Run: ctx always holds sc here. The
// ladder is assembled as data — an optional cache rung, the planned
// solver, then the universal fallbacks — and handed to
// solver.WalkLadder, which owns per-rung deadlines and failure
// classification; the record hook below is the single place attempt
// provenance (Result.Attempts, scope events, degradation counters and
// flags) is written.
func (p *Planner) run(ctx context.Context, in *Instance, sc *obs.Scope) (*Result, error) {
	cRuns.Inc(ctx)
	start := obs.Now()
	sp := obs.StartSpanCtx(ctx, "engine/solve")
	defer sp.End()
	sc.Note("family", in.Family)

	plan := p.plan(ctx, in)
	g := in.Graph()
	sp.SetInt("edges", int64(g.M()))
	sp.SetInt("route", int64(plan.Route))

	cs := cacheState{cache: p.cacheFor()}
	rungs := p.ladder(ctx, in, plan, g, &cs)

	var attempts []Attempt
	degraded := 0
	record := func(o solver.RungOutcome) {
		if o.Err == nil {
			attempts = append(attempts, Attempt{Solver: o.Name, Elapsed: o.Elapsed})
			sc.Event("rung/"+o.Name, "", o.Elapsed)
			return
		}
		sc.Event("rung/"+o.Name, o.Err.Error(), o.Elapsed)
		if o.Optional {
			// A cache miss is not an attempt: the run's provenance
			// stays planned-rung-first, and the miss never counts as
			// degradation.
			return
		}
		attempts = append(attempts, Attempt{Solver: o.Name, Err: o.Err.Error(), Elapsed: o.Elapsed})
		if errors.Is(o.Err, solver.ErrPanic) {
			sc.Flag(obs.FlagPanic)
		}
		if !o.Absorbed {
			return
		}
		switch o.Cause {
		case solver.CauseBudget:
			cDegradedBudget.Inc(ctx)
		case solver.CauseDeadline:
			cDegradedDeadline.Inc(ctx) // a rung soft deadline, caller still live
		case solver.CausePanic:
			cDegradedPanic.Inc(ctx)
		case solver.CauseStructure:
			cDegradedStructure.Inc(ctx)
		}
		degraded++
		sp.SetInt("degraded", int64(degraded))
	}

	wr, err := solver.WalkLadder(ctx, rungs, solver.LadderPolicy{Off: p.Degrade.Off, RungFraction: p.Degrade.RungFraction}, record)
	if err != nil {
		sc.Flag(obs.FlagError)
		var re *solver.RungError
		if errors.As(err, &re) {
			sc.Note("error", re.Err.Error())
			return nil, fmt.Errorf("engine: %s via %s: %w", in.Family, re.Rung, re.Err)
		}
		sc.Note("error", err.Error())
		return nil, fmt.Errorf("engine: %s: %w", in.Family, err)
	}

	quality := qualityFor(wr.Rung)
	if wr.Rung == CachedSolverName {
		quality = "cached: " + qualityFor(cs.entry.Solver)
	} else if cs.cache != nil && wr.Degraded == 0 {
		cs.insert(ctx, g, wr.Rung, wr.Scheme, wr.Cost)
	}
	res := p.assemble(ctx, in, plan, g, wr.Rung, quality, wr.Scheme, wr.Cost, start)
	res.Attempts = attempts
	res.Degraded = wr.Degraded > 0
	if res.Degraded {
		cDegradedRuns.Inc(ctx)
		sc.Flag(obs.FlagDegraded)
	}
	return res, nil
}

// ladder assembles the run's rung descriptors: the cache rung (when a
// cache is configured), the planned (or explicitly chosen) solver, and
// — unless degradation is off — the Theorem 3.1 approximation and the
// Lemma 2.1 naive scheme, each guaranteed to exist for any graph, so a
// non-strict run can always complete. Solver rungs fire the SiteRung
// fault hook and run under pprof labels; the cache rung is optional —
// its miss falls through silently.
func (p *Planner) ladder(ctx context.Context, in *Instance, plan Plan, g *graph.Graph, cs *cacheState) []solver.Rung {
	rungs := make([]solver.Rung, 0, 4)
	if cs.cache != nil {
		rungs = append(rungs, solver.Rung{
			Name:     CachedSolverName,
			Optional: true,
			Attempt: func(ctx context.Context) (core.Scheme, int, error) {
				return cs.attempt(ctx, in, plan, g)
			},
		})
	}
	solverRung := func(s solver.Solver) solver.Rung {
		return solver.Rung{
			Name: s.Name(),
			Attempt: func(rctx context.Context) (scheme core.Scheme, cost int, err error) {
				// Profiling labels per rung: a CPU profile taken during
				// a solve attributes samples to the phase/family/rung
				// that burned them.
				pprof.Do(rctx, pprof.Labels("phase", "solve", "family", in.Family, "rung", s.Name()), func(ctx context.Context) {
					scheme, cost, err = attemptRung(ctx, s, g)
				})
				return
			},
		}
	}
	rungs = append(rungs, solverRung(plan.Solver))
	if p.Degrade.Off {
		return rungs
	}
	for _, fb := range []solver.Solver{solver.Approx125{}, solver.Naive{}} {
		if fb.Name() != plan.Solver.Name() {
			rungs = append(rungs, solverRung(fb))
		}
	}
	return rungs
}

// attemptRung is one solver rung: the SiteRung fault hook, then the
// solve + simulator verification. The fault fires under the rung's
// context, so an injected delay is cut short by the rung's soft
// deadline (or the caller's cancellation) like any real slow solve.
func attemptRung(ctx context.Context, s solver.Solver, g *graph.Graph) (core.Scheme, int, error) {
	if err := faultinject.FireContext(ctx, SiteRung); err != nil {
		return nil, 0, err
	}
	return solver.SolveAndVerifyContext(ctx, s, g)
}

// assemble builds the Result for the rung that produced the scheme.
func (p *Planner) assemble(ctx context.Context, in *Instance, plan Plan, g *graph.Graph, solverName, quality string, scheme core.Scheme, cost int, start time.Time) *Result {
	eff := scheme.EffectiveCost(g)
	res := &Result{
		Family:        in.Family,
		Route:         plan.Route,
		Solver:        solverName,
		Reason:        plan.Reason,
		Quality:       quality,
		Scheme:        scheme,
		Cost:          cost,
		EffectiveCost: eff,
		LowerBound:    core.LowerBound(g),
		UpperBound:    core.UpperBound(g),
		Perfect:       eff == g.M(),
		Vertices:      g.N(),
		Edges:         g.M(),
		Components:    core.Betti0(g),
		Elapsed:       obs.Since(start),
	}
	tRun.Observe(ctx, res.Elapsed)
	return res
}

// qualityFor names the bound the producing solver's scheme carries —
// the "how much did degradation cost us" part of the provenance.
func qualityFor(name string) string {
	switch name {
	case "equijoin":
		return "perfect: π = m (Thm 4.1)"
	case "exact", "exact-bnb":
		return "optimal (exact search)"
	case "approx-1.25":
		return "π ≤ 1.25m (Thm 3.1)"
	case "naive":
		return "π̂ ≤ 2m (Lemma 2.1)"
	default:
		return "π̂ ≤ 2m (Lemma 2.1, universal)"
	}
}

// Decide answers PEBBLE(D) of Definition 4.1 — is π ≤ K? — through the
// decision ladder (bounds, CertificateLadder certificates, exact). It is
// the engine's decision-problem entry point, sharing the certificate
// rung with the planner's solver ladder.
func (p *Planner) Decide(ctx context.Context, in *Instance, k int) (bool, error) {
	return solver.DecideContext(ctx, in.Graph(), k)
}
