package engine

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"joinpebble/internal/family"
	"joinpebble/internal/join"
	"joinpebble/internal/relation"
	"joinpebble/internal/solver"
	"joinpebble/internal/workload"
)

func TestFamiliesRegistered(t *testing.T) {
	want := []string{"containment", "equijoin", "spatial"}
	if got := Families(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Families() = %v, want %v", got, want)
	}
	for _, name := range want {
		p, ok := Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) missing", name)
		}
		if p.Name() != name {
			t.Fatalf("Lookup(%q).Name() = %q", name, p.Name())
		}
	}
}

func TestFromRelationsUnknownFamily(t *testing.T) {
	l := relation.FromInts("R", []int64{1})
	_, err := FromRelations("bogus", l, l)
	if !errors.Is(err, ErrUnknownFamily) {
		t.Fatalf("want ErrUnknownFamily, got %v", err)
	}
	if !strings.Contains(err.Error(), "containment") {
		t.Fatalf("error should list known families: %v", err)
	}
}

func TestNewInstanceKindMismatch(t *testing.T) {
	p, _ := Lookup("containment")
	l := relation.FromInts("R", []int64{1})
	if _, err := NewInstance(p, l, l); !errors.Is(err, ErrKindMismatch) {
		t.Fatalf("want ErrKindMismatch, got %v", err)
	}
}

func TestGenerateAttachesGuarantees(t *testing.T) {
	in, err := Generate(workload.Equijoin{LeftSize: 10, RightSize: 10, Domain: 3}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if in.Family != "equijoin" || !in.Guarantees.CompleteBipartite {
		t.Fatalf("equijoin instance lacks its guarantee: %+v", in)
	}
	in, err = Generate(workload.Spatial{LeftSize: 10, RightSize: 10, Span: 20, MaxExtent: 4}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !in.Guarantees.Universal || in.Guarantees.CompleteBipartite {
		t.Fatalf("spatial guarantees wrong: %+v", in.Guarantees)
	}
}

func TestFromBipartiteLabels(t *testing.T) {
	b := family.Spider(3)
	in := FromBipartite("spider", b)
	if in.Guarantees != (Guarantees{}) {
		t.Fatalf("unregistered label must carry no guarantees: %+v", in.Guarantees)
	}
	in = FromBipartite("equijoin", b)
	if !in.Guarantees.CompleteBipartite {
		t.Fatal("registered label must inherit the family guarantee")
	}
}

func TestPlannerRoutesByGuarantee(t *testing.T) {
	in, err := Generate(workload.Equijoin{LeftSize: 15, RightSize: 15, Domain: 4}, 3)
	if err != nil {
		t.Fatal(err)
	}
	var p Planner
	plan := p.Plan(in)
	if plan.Route != solver.RoutePerfect {
		t.Fatalf("equijoin must route perfect, got %v", plan.Route)
	}
	if !strings.Contains(plan.Reason, "complete-bipartite") {
		t.Fatalf("reason should cite the guarantee: %q", plan.Reason)
	}
}

func TestPlannerOverride(t *testing.T) {
	in := FromBipartite("spider", family.Spider(3))
	p := Planner{Solver: solver.Exact{}}
	plan := p.Plan(in)
	if plan.Solver.Name() != (solver.Exact{}).Name() {
		t.Fatalf("override ignored: %v", plan.Solver.Name())
	}
	if !strings.Contains(plan.Reason, "explicit solver") {
		t.Fatalf("override reason: %q", plan.Reason)
	}
}

func TestPlannerRunVerifiesAndBounds(t *testing.T) {
	in := FromBipartite("spider", family.Spider(3))
	var p Planner
	res, err := p.Run(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	// Spider G_3: m = 6, π = 7 (Theorem 4.2's hard family).
	if res.Edges != 6 || res.EffectiveCost != 7 || res.Perfect {
		t.Fatalf("spider result wrong: %+v", res)
	}
	if res.Cost < res.LowerBound || res.Cost > res.UpperBound {
		t.Fatalf("cost %d outside bounds %d..%d", res.Cost, res.LowerBound, res.UpperBound)
	}
	if res.Metrics != nil {
		t.Fatal("Metrics must be nil unless Snapshot is set")
	}
	p.Snapshot = true
	res, err = p.Run(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics == nil || res.Metrics.Counters["engine/runs"] == 0 {
		t.Fatal("Snapshot should attach a populated metrics snapshot")
	}
}

func TestPlannerRunHonorsCancellation(t *testing.T) {
	in, err := Generate(workload.Spatial{LeftSize: 40, RightSize: 40, Span: 30, MaxExtent: 6}, 11)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var p Planner
	if _, err := p.Run(ctx, in); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestInstanceAuditPairs(t *testing.T) {
	ls := []int64{1, 1, 2}
	rs := []int64{1, 2, 2}
	in, err := FromRelations("equijoin", relation.FromInts("R", ls), relation.FromInts("S", rs))
	if err != nil {
		t.Fatal(err)
	}
	audit, err := in.AuditPairs(join.SortMergeZigzag(ls, rs))
	if err != nil {
		t.Fatal(err)
	}
	if !audit.Perfect {
		t.Fatalf("zigzag sort-merge must be perfect on an equijoin: %+v", audit)
	}
	if _, err := FromGraph(in.Graph()).AuditPairs(nil); err == nil {
		t.Fatal("audit without a join graph must error")
	}
}
