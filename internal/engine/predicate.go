package engine

import (
	"fmt"
	"sort"
	"sync"

	"joinpebble/internal/graph"
	"joinpebble/internal/join"
	"joinpebble/internal/relation"
)

// Predicate describes one join-predicate family: how to build the join
// graph from a pair of relations and what structure that graph is
// guaranteed to have. The three families the paper studies (§3) register
// themselves here; additional families (string equality, polygon
// overlap, band joins, ...) plug in the same way.
type Predicate interface {
	// Name is the registry key ("equijoin", "containment", "spatial").
	Name() string
	// Kinds returns the attribute domains the family joins over.
	Kinds() (left, right relation.Kind)
	// Build constructs the join graph of the two relations.
	Build(l, r *relation.Relation) (*graph.Bipartite, error)
	// Guarantees names the structural facts every Build result satisfies.
	Guarantees() Guarantees
}

var (
	//joinlint:lockrank engine-registry 40
	registryMu sync.RWMutex
	registry   = map[string]Predicate{}
)

// Register adds a predicate family to the registry. Registering two
// families under one name is a wiring bug, so it panics.
func Register(p Predicate) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[p.Name()]; dup {
		panic(fmt.Sprintf("engine: duplicate predicate family %q", p.Name()))
	}
	registry[p.Name()] = p
}

// Lookup resolves a family by name.
func Lookup(name string) (Predicate, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	p, ok := registry[name]
	return p, ok
}

// Families lists the registered family names, sorted.
func Families() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// The paper's three predicate families (§3.1–§3.3), registered at init.

type equijoinFamily struct{}

func (equijoinFamily) Name() string { return "equijoin" }
func (equijoinFamily) Kinds() (relation.Kind, relation.Kind) {
	return relation.KindInt, relation.KindInt
}
func (equijoinFamily) Build(l, r *relation.Relation) (*graph.Bipartite, error) {
	return join.EquiGraph(l.Ints(), r.Ints()), nil
}
func (equijoinFamily) Guarantees() Guarantees {
	// §3.1 / Theorem 3.2: value groups make every component complete
	// bipartite, so every equijoin instance pebbles perfectly.
	return Guarantees{CompleteBipartite: true}
}

type containmentFamily struct{}

func (containmentFamily) Name() string { return "containment" }
func (containmentFamily) Kinds() (relation.Kind, relation.Kind) {
	return relation.KindSet, relation.KindSet
}
func (containmentFamily) Build(l, r *relation.Relation) (*graph.Bipartite, error) {
	return join.Graph(l.Sets(), r.Sets(), join.Contains), nil
}
func (containmentFamily) Guarantees() Guarantees {
	// Lemma 3.3: any bipartite graph arises as a containment join graph.
	return Guarantees{Universal: true}
}

type spatialFamily struct{}

func (spatialFamily) Name() string { return "spatial" }
func (spatialFamily) Kinds() (relation.Kind, relation.Kind) {
	return relation.KindRect, relation.KindRect
}
func (spatialFamily) Build(l, r *relation.Relation) (*graph.Bipartite, error) {
	return join.Graph(l.Rects(), r.Rects(), join.Overlaps), nil
}
func (spatialFamily) Guarantees() Guarantees {
	// Lemma 3.4: rectangle overlap realizes the hard family (and any
	// bipartite graph via the construction's generalization).
	return Guarantees{Universal: true}
}

func init() {
	Register(equijoinFamily{})
	Register(containmentFamily{})
	Register(spatialFamily{})
}
