package engine

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"joinpebble/internal/family"
	"joinpebble/internal/solver"
	"joinpebble/internal/workload"
)

// differentialWorkloads is the seeded sweep both differential tests run:
// every predicate family at a few sizes, plus raw-graph instances with no
// guarantees, so each planner rung (perfect, exact, approx) is exercised.
func differentialWorkloads(t *testing.T) map[string]*Instance {
	t.Helper()
	instances := map[string]*Instance{}
	for seed := int64(1); seed <= 4; seed++ {
		for _, w := range []Workload{
			workload.Equijoin{LeftSize: 30, RightSize: 30, Domain: 6, Skew: 0.4},
			workload.Equijoin{LeftSize: 12, RightSize: 18, Domain: 3},
			workload.SetContainment{LeftSize: 15, RightSize: 15, Universe: 40, LeftMax: 2, RightMax: 6, Correlated: true},
			workload.SetContainment{LeftSize: 10, RightSize: 12, Universe: 25, LeftMax: 3, RightMax: 8, Correlated: false},
			workload.Spatial{LeftSize: 20, RightSize: 20, Span: 25, MaxExtent: 6},
			workload.Spatial{LeftSize: 15, RightSize: 15, Span: 12, MaxExtent: 5, Clusters: 3},
		} {
			in, err := Generate(w, seed)
			if err != nil {
				t.Fatal(err)
			}
			instances[fmt.Sprintf("%s/%T/seed%d", in.Family, w, seed)] = in
		}
	}
	for n := 2; n <= 5; n++ {
		instances[fmt.Sprintf("spider/n%d", n)] = FromBipartite("spider", family.Spider(n))
	}
	return instances
}

// TestDifferentialEngineVsDirectSolve pins the refactor's core invariant:
// routing a solve through the engine planner returns a scheme and cost
// byte-identical to calling the solver ladder (solver.Auto) directly.
func TestDifferentialEngineVsDirectSolve(t *testing.T) {
	var p Planner
	for name, in := range differentialWorkloads(t) {
		t.Run(name, func(t *testing.T) {
			res, err := p.Run(context.Background(), in)
			if err != nil {
				t.Fatal(err)
			}
			directScheme, directCost, err := solver.SolveAndVerify(solver.Auto{}, in.Graph())
			if err != nil {
				t.Fatal(err)
			}
			if res.Cost != directCost {
				t.Fatalf("engine cost %d != direct cost %d", res.Cost, directCost)
			}
			if !reflect.DeepEqual(res.Scheme, directScheme) {
				t.Fatalf("engine scheme diverges from direct solve:\nengine: %v\ndirect: %v", res.Scheme, directScheme)
			}
			// The planner's route must be the one solver.Auto takes for the
			// same graph; a guarantee short-circuit may only change *why*.
			if want := solver.PlanRoute(in.Graph(), 0); res.Route != want {
				t.Fatalf("planner route %v, structural route %v", res.Route, want)
			}
		})
	}
}

// TestDifferentialPlannerVsDecideLadder checks the decision side against
// the optimization side: for every instance, Decide must accept the
// effective cost the planner's solve achieved (it is an upper bound on π)
// and, whenever the solve was exact or perfect, reject one less than it.
func TestDifferentialPlannerVsDecideLadder(t *testing.T) {
	var p Planner
	for name, in := range differentialWorkloads(t) {
		t.Run(name, func(t *testing.T) {
			res, err := p.Run(context.Background(), in)
			if err != nil {
				t.Fatal(err)
			}
			ok, err := p.Decide(context.Background(), in, res.EffectiveCost)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("Decide(π=%d) = false, but the planner produced that cost", res.EffectiveCost)
			}
			if res.Route == solver.RouteApprox {
				return // the 1.25-approximate cost need not be optimal
			}
			ok, err = p.Decide(context.Background(), in, res.EffectiveCost-1)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				t.Fatalf("Decide(π=%d) = true, but %d is optimal on the %v route",
					res.EffectiveCost-1, res.EffectiveCost, res.Route)
			}
		})
	}
}
