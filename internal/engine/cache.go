package engine

import (
	"context"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"joinpebble/internal/core"
	"joinpebble/internal/graph"
	"joinpebble/internal/obs"
	"joinpebble/internal/schemecache"
)

// Scheme-cache counters: the cache rung's outcomes (hit/miss), the
// write side (insert, and entries evicted to make room), and how many
// cached schemes were translated back onto a request labeling. The
// fingerprint timer prices the canonicalization the rung pays before
// any lookup.
var (
	cCacheHit       = obs.ScopedCounter("engine/cache/hit")
	cCacheMiss      = obs.ScopedCounter("engine/cache/miss")
	cCacheInsert    = obs.ScopedCounter("engine/cache/insert")
	cCacheEvict     = obs.ScopedCounter("engine/cache/evict")
	cCacheTranslate = obs.ScopedCounter("engine/cache/translate")
	tFingerprint    = obs.ScopedTimer("engine/cache/fingerprint")
)

// CachedSolverName is the provenance label a cache-served scheme
// carries in Result.Solver, Result.Attempts, and scope events.
const CachedSolverName = "cached"

// sharedCache is the process-wide cache the CLIs install via
// cmdutil (-cache-size / -cache-off). Zero-value Planners fall back to
// it, so every command's solves share one cache without plumbing;
// library users and tests that never install one run cache-free.
var sharedCache atomic.Pointer[schemecache.Cache]

// SetSharedCache installs (or, with nil, removes) the process-wide
// scheme cache that Planners without an explicit Cache use.
func SetSharedCache(c *schemecache.Cache) {
	if c == nil {
		sharedCache.Store((*schemecache.Cache)(nil))
		return
	}
	sharedCache.Store(c)
}

// SharedCache returns the installed process-wide cache, or nil.
func SharedCache() *schemecache.Cache {
	return sharedCache.Load()
}

// canonScratch pools fingerprint scratch buffers across concurrent
// runs, the same steady-state-zero-alloc posture as the solver arenas.
var canonScratch = sync.Pool{New: func() any { return graph.NewCanonScratch() }}

// cacheState threads one run's fingerprint work between the cache rung
// and the post-solve insert: the key and labeling are computed once
// (under the fingerprint span) and reused for both directions.
type cacheState struct {
	cache *schemecache.Cache
	fp    graph.Fingerprint
	perm  []int32
	keyed bool
	entry schemecache.Entry // the hit entry, for quality provenance
}

// key computes (once) the instance's cache key: the canonical graph
// fingerprint mixed with the family label, the guarantee bits, and the
// planned solver's name. Mixing the planned solver keeps hits
// quality-faithful — a strict exact run can never be served a scheme
// that was planned as an approximation.
func (cs *cacheState) key(ctx context.Context, in *Instance, plan Plan, g *graph.Graph) {
	if cs.keyed {
		return
	}
	sp := obs.StartSpanCtx(ctx, "engine/cache/fingerprint")
	defer sp.End()
	start := obs.Now()
	sc := canonScratch.Get().(*graph.CanonScratch)
	perm, fp := graph.Canonicalize(g, sc)
	canonScratch.Put(sc)
	cs.fp = fp.Mix(hashString(in.Family), guaranteeBits(in.Guarantees), hashString(plan.Solver.Name()))
	cs.perm = perm
	cs.keyed = true
	tFingerprint.Observe(ctx, obs.Since(start))
}

// attempt is the cache rung: fingerprint, lookup, translate back to the
// request labeling, and re-verify against the simulator. Any failure —
// miss, shape mismatch, corrupt entry, cost drift — is a miss; the
// cache is never trusted over the referee.
func (cs *cacheState) attempt(ctx context.Context, in *Instance, plan Plan, g *graph.Graph) (core.Scheme, int, error) {
	cs.key(ctx, in, plan, g)
	ent, err := cs.cache.Get(cs.fp)
	if err != nil {
		cCacheMiss.Inc(ctx)
		return nil, 0, err
	}
	if ent.N != g.N() || ent.M != g.M() {
		cCacheMiss.Inc(ctx)
		return nil, 0, fmt.Errorf("schemecache: entry shape %dv/%de does not match instance %dv/%de", ent.N, ent.M, g.N(), g.M())
	}
	scheme := schemecache.FromCanonical(ent.Scheme, cs.perm)
	cCacheTranslate.Inc(ctx)
	cost, err := core.VerifyContext(ctx, g, scheme)
	if err != nil {
		cCacheMiss.Inc(ctx)
		return nil, 0, fmt.Errorf("schemecache: cached scheme failed verification: %w", err)
	}
	if cost != ent.Cost {
		cCacheMiss.Inc(ctx)
		return nil, 0, fmt.Errorf("schemecache: cached scheme verified at cost %d, entry says %d", cost, ent.Cost)
	}
	cCacheHit.Inc(ctx)
	cs.entry = ent
	return scheme, cost, nil
}

// insert stores a freshly solved, verified scheme under the run's key,
// in canonical labels. Only undegraded solves are cached: the key
// carries the planned solver, so an entry must hold the quality that
// plan promised, not whatever a fallback rung salvaged.
func (cs *cacheState) insert(ctx context.Context, g *graph.Graph, rung string, scheme core.Scheme, cost int) {
	if !cs.keyed {
		return
	}
	evicted := cs.cache.Insert(cs.fp, schemecache.Entry{
		Scheme: schemecache.ToCanonical(scheme, cs.perm),
		N:      g.N(),
		M:      g.M(),
		Cost:   cost,
		Solver: rung,
	})
	cCacheInsert.Inc(ctx)
	cCacheEvict.Add(ctx, int64(evicted))
}

func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

func guaranteeBits(gu Guarantees) uint64 {
	var bits uint64
	if gu.CompleteBipartite {
		bits |= 1
	}
	if gu.Universal {
		bits |= 2
	}
	return bits
}
