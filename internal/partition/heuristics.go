package partition

import (
	"sort"

	"joinpebble/internal/graph"
	"joinpebble/internal/sets"
	"joinpebble/internal/spatial"
)

// HashEquijoin partitions both relations by hashing the join value into
// k buckets (L = K). For an equijoin this is the classic partitioned hash
// join and is work-optimal whenever every bucket pair is either inactive
// or matches 1:1 — which hashing on the value guarantees: a value's
// tuples land in exactly one (i, i) pair, so W = (non-isolated tuples)
// plus the slack of sharing buckets between values. This supports the
// paper's closing conjecture that the equijoin mapping problem is easy
// to approximate.
func HashEquijoin(ls, rs []int64, k int) *Assignment {
	a := &Assignment{R: make([]int, len(ls)), S: make([]int, len(rs)), K: k, L: k}
	for i, v := range ls {
		a.R[i] = int(hash64(uint64(v)) % uint64(k))
	}
	for j, v := range rs {
		a.S[j] = int(hash64(uint64(v)) % uint64(k))
	}
	return a
}

func hash64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

// GridSpatial partitions rectangles by the grid cell of their center
// over a cells x cells grid covering the data's bounding box (K = L =
// cells²). Rectangles spanning cell borders create cross-partition
// active pairs — the replication cost PBSM-style algorithms ([13]) pay.
func GridSpatial(ls, rs []spatial.Rect, cells int) *Assignment {
	all := append(append([]spatial.Rect(nil), ls...), rs...)
	if len(all) == 0 {
		return &Assignment{K: cells * cells, L: cells * cells}
	}
	bounds := all[0]
	for _, r := range all[1:] {
		bounds = bounds.Union(r)
	}
	cell := func(r spatial.Rect) int {
		cx := gridIndex((r.MinX+r.MaxX)/2, bounds.MinX, bounds.MaxX, cells)
		cy := gridIndex((r.MinY+r.MaxY)/2, bounds.MinY, bounds.MaxY, cells)
		return cy*cells + cx
	}
	a := &Assignment{R: make([]int, len(ls)), S: make([]int, len(rs)), K: cells * cells, L: cells * cells}
	for i, r := range ls {
		a.R[i] = cell(r)
	}
	for j, r := range rs {
		a.S[j] = cell(r)
	}
	return a
}

func gridIndex(x, lo, hi float64, cells int) int {
	if hi <= lo {
		return 0
	}
	i := int(float64(cells) * (x - lo) / (hi - lo))
	if i < 0 {
		i = 0
	}
	if i >= cells {
		i = cells - 1
	}
	return i
}

// MinElementSet partitions set relations by the smallest element modulo
// k — the PSJ-style scheme of [14]: a probe set and any of its supersets
// share the probe's smallest element, but a superset's OWN smallest
// element can differ, so cross-partition pairs remain; this measures
// that replication pressure.
func MinElementSet(ls, rs []sets.Set, k int) *Assignment {
	bucket := func(s sets.Set) int {
		if s.Empty() {
			return 0
		}
		return int(s.Elems()[0]) % k
	}
	a := &Assignment{R: make([]int, len(ls)), S: make([]int, len(rs)), K: k, L: k}
	for i, s := range ls {
		a.R[i] = bucket(s)
	}
	for j, s := range rs {
		a.S[j] = bucket(s)
	}
	return a
}

// GreedyGraph partitions by the join graph itself: connected components
// are sorted by size and packed round-robin into the K (and L) buckets,
// so no component spans partitions. On equijoin graphs this is
// work-optimal for the same reason hash partitioning is; on general
// graphs it is the best structure-aware baseline that needs no domain
// knowledge, at the cost of computing the join graph first.
func GreedyGraph(b *graph.Bipartite, k, l int) *Assignment {
	a := &Assignment{R: make([]int, b.NLeft()), S: make([]int, b.NRight()), K: k, L: l}
	comps := b.Graph().Components()
	// Largest components first, each assigned to the currently
	// least-loaded bucket pair.
	sort.Slice(comps, func(i, j int) bool { return len(comps[i]) > len(comps[j]) })
	loadR := make([]int, k)
	loadS := make([]int, l)
	for _, comp := range comps {
		br := argmin(loadR)
		bs := argmin(loadS)
		for _, v := range comp {
			if b.Side(v) {
				a.R[v] = br
				loadR[br]++
			} else {
				a.S[v-b.NLeft()] = bs
				loadS[bs]++
			}
		}
	}
	return a
}

func argmin(xs []int) int {
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}
