package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"joinpebble/internal/graph"
	"joinpebble/internal/join"
	"joinpebble/internal/sets"
	"joinpebble/internal/workload"
)

func TestValidate(t *testing.T) {
	good := &Assignment{R: []int{0, 1}, S: []int{0}, K: 2, L: 1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Assignment{
		{R: []int{2}, S: []int{0}, K: 2, L: 1}, // R out of range
		{R: []int{0}, S: []int{1}, K: 2, L: 1}, // S out of range
		{R: []int{0}, S: []int{0}, K: 0, L: 1}, // K < 1
	}
	for i, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestEvaluateByHand(t *testing.T) {
	// 2x2 join graph, edges (0,0) and (1,1); split tuples across two
	// partitions so each edge stays inside one pair.
	b := graph.NewBipartite(2, 2)
	b.AddEdge(0, 0)
	b.AddEdge(1, 1)
	a := &Assignment{R: []int{0, 1}, S: []int{0, 1}, K: 2, L: 2}
	st, err := Evaluate(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if st.ActivePairs != 2 || st.Work != 4 || st.ReadLowerBound != 4 {
		t.Fatalf("stats %+v", st)
	}
	// Crossing assignment: both edges span partitions -> 2 active pairs
	// but each reads both R halves... here R[0]=0,R[1]=1, S[0]=1,S[1]=0:
	// active pairs (0,1) and (1,0): work = (1+1)+(1+1) = 4 still;
	// collapse everything into one partition pair instead:
	one := &Assignment{R: []int{0, 0}, S: []int{0, 0}, K: 1, L: 1}
	st1, err := Evaluate(b, one)
	if err != nil {
		t.Fatal(err)
	}
	if st1.ActivePairs != 1 || st1.Work != 4 {
		t.Fatalf("single-pair stats %+v", st1)
	}
}

func TestEvaluateMismatchedSizes(t *testing.T) {
	b := graph.NewBipartite(2, 2)
	if _, err := Evaluate(b, &Assignment{R: []int{0}, S: []int{0, 0}, K: 1, L: 1}); err == nil {
		t.Fatal("size mismatch must fail")
	}
}

func TestWorkNeverBelowLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := graph.RandomBipartite(r, 3+r.Intn(4), 3+r.Intn(4), 0.4)
		if b.M() == 0 {
			return true
		}
		k, l := 1+r.Intn(3), 1+r.Intn(3)
		a := Random(r, b.NLeft(), b.NRight(), k, l)
		st, err := Evaluate(b, a)
		if err != nil {
			return false
		}
		return st.Work >= st.ReadLowerBound
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

func TestOptimalBeatsOrMatchesHeuristics(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		b := graph.RandomBipartite(rng, 4, 4, 0.4)
		if b.M() == 0 {
			continue
		}
		_, optStats, err := Optimal(b, 2, 2, 0)
		if err != nil {
			t.Fatal(err)
		}
		for probe := 0; probe < 5; probe++ {
			a := Random(rng, 4, 4, 2, 2)
			st, err := Evaluate(b, a)
			if err != nil {
				t.Fatal(err)
			}
			if st.Work < optStats.Work {
				t.Fatalf("trial %d: random assignment beat 'optimal' — bug", trial)
			}
		}
		g := GreedyGraph(b, 2, 2)
		st, err := Evaluate(b, g)
		if err != nil {
			t.Fatal(err)
		}
		if st.Work < optStats.Work {
			t.Fatal("greedy beat optimal — bug")
		}
	}
}

func TestOptimalRefusesHugeSearch(t *testing.T) {
	b := graph.RandomBipartite(rand.New(rand.NewSource(3)), 20, 20, 0.3)
	if _, _, err := Optimal(b, 4, 4, 0); err == nil {
		t.Fatal("oversized search must be refused")
	}
}

func TestHashEquijoinIsNearOptimal(t *testing.T) {
	// The §5 conjecture direction: hash partitioning on the join value
	// makes every value's tuples meet in exactly one bucket pair, so the
	// work is the lower bound plus only the slack of values sharing a
	// bucket.
	w := workload.Equijoin{LeftSize: 60, RightSize: 60, Domain: 12, Skew: 0}
	l, r := w.Generate(4)
	ls, rs := l.Ints(), r.Ints()
	b := join.EquiGraph(ls, rs)
	a := HashEquijoin(ls, rs, 16)
	st, err := Evaluate(b, a)
	if err != nil {
		t.Fatal(err)
	}
	// With 16 buckets over 12 values collisions are rare; demand within
	// 2x of the read lower bound (random partitioning is far worse).
	if st.Work > 2*st.ReadLowerBound {
		t.Fatalf("hash partitioning work %d vs lower bound %d", st.Work, st.ReadLowerBound)
	}
	rnd := Random(rand.New(rand.NewSource(5)), len(ls), len(rs), 16, 16)
	rndSt, err := Evaluate(b, rnd)
	if err != nil {
		t.Fatal(err)
	}
	if rndSt.Work <= st.Work {
		t.Fatalf("random (%d) should cost more than hash (%d) on equijoins", rndSt.Work, st.Work)
	}
}

func TestGreedyGraphKeepsComponentsTogether(t *testing.T) {
	b := graph.NewBipartite(4, 4)
	b.AddEdge(0, 0)
	b.AddEdge(1, 0)
	b.AddEdge(2, 2)
	b.AddEdge(3, 3)
	a := GreedyGraph(b, 2, 2)
	st, err := Evaluate(b, a)
	if err != nil {
		t.Fatal(err)
	}
	// No component spans partitions, so every tuple is read exactly once
	// per active pair its bucket participates in; with components packed
	// whole, work is bounded by lower bound plus bucket-sharing slack.
	if st.Work > 2*st.ReadLowerBound {
		t.Fatalf("greedy graph work %d vs lower bound %d", st.Work, st.ReadLowerBound)
	}
}

func TestGridSpatialAssignsInRange(t *testing.T) {
	w := workload.Spatial{LeftSize: 40, RightSize: 40, Span: 50, MaxExtent: 4}
	l, r := w.Generate(6)
	a := GridSpatial(l.Rects(), r.Rects(), 3)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	b := join.Graph(l.Rects(), r.Rects(), join.Overlaps)
	if _, err := Evaluate(b, a); err != nil {
		t.Fatal(err)
	}
}

func TestGridSpatialBeatsRandom(t *testing.T) {
	// Clustered, join-dense geometry: grid partitioning keeps each
	// cluster's tuples in one bucket pair while random scatters every
	// edge across bucket pairs, re-reading tuples per pair.
	w := workload.Spatial{LeftSize: 80, RightSize: 80, Span: 100, MaxExtent: 6, Clusters: 3}
	l, r := w.Generate(7)
	b := join.Graph(l.Rects(), r.Rects(), join.Overlaps)
	if b.M() == 0 {
		t.Skip("no joining pairs")
	}
	grid := GridSpatial(l.Rects(), r.Rects(), 4)
	gst, err := Evaluate(b, grid)
	if err != nil {
		t.Fatal(err)
	}
	rnd := Random(rand.New(rand.NewSource(8)), 80, 80, 16, 16)
	rst, err := Evaluate(b, rnd)
	if err != nil {
		t.Fatal(err)
	}
	if gst.Work >= rst.Work {
		t.Fatalf("grid (%d) should beat random (%d) on clustered geometry", gst.Work, rst.Work)
	}
}

func TestMinElementSetValid(t *testing.T) {
	ls := []sets.Set{sets.New(1, 5), sets.New(), sets.New(3)}
	rs := []sets.Set{sets.New(1, 3, 5), sets.New(2)}
	a := MinElementSet(ls, rs, 4)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	b := join.Graph(ls, rs, join.Contains)
	if _, err := Evaluate(b, a); err != nil {
		t.Fatal(err)
	}
}

func TestGridEmptyInput(t *testing.T) {
	a := GridSpatial(nil, nil, 3)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}
