// Package partition implements the open problem the paper closes with
// (§5): many join algorithms first map R into R_1 ... R_k and S into
// S_1 ... S_l and then join only a subset of the R_i x S_j pairs —
// partitioned hash join, partition-based spatial merge join [13],
// partitioned set joins [14]. The question posed is how hard it is to
// find the optimal mapping; the paper states the problem is NP-complete
// for all three predicate classes and conjectures equijoins admit good
// approximations.
//
// The model here: an Assignment places every R-tuple in one of K
// partitions and every S-tuple in one of L partitions. A partition pair
// (i, j) is active when some joining tuple pair spans it; every active
// pair must be investigated, reading both sides. The cost is
//
//	W(A) = sum over active (i,j) of (|R_i| + |S_j|),
//
// the total tuples read across sub-joins — exactly the "replication of
// data or repeated processing of data" the introduction complains about.
// A tuple processed once contributes once; cross-partition join edges
// force re-reads.
package partition

import (
	"fmt"
	"math/rand"

	"joinpebble/internal/graph"
)

// Assignment maps tuples to partitions: R[i] in [0,K), S[j] in [0,L).
type Assignment struct {
	R, S []int
	K, L int
}

// Validate checks partition indices are in range.
func (a *Assignment) Validate() error {
	if a.K < 1 || a.L < 1 {
		return fmt.Errorf("partition: need K,L >= 1 (got %d,%d)", a.K, a.L)
	}
	for i, p := range a.R {
		if p < 0 || p >= a.K {
			return fmt.Errorf("partition: R[%d]=%d outside [0,%d)", i, p, a.K)
		}
	}
	for j, p := range a.S {
		if p < 0 || p >= a.L {
			return fmt.Errorf("partition: S[%d]=%d outside [0,%d)", j, p, a.L)
		}
	}
	return nil
}

// Stats is the evaluation of an assignment against a join graph.
type Stats struct {
	// ActivePairs is the number of (R_i, S_j) sub-joins that must run.
	ActivePairs int
	// Work is W(A): total tuples read across active sub-joins.
	Work int
	// ReadLowerBound is the floor no assignment can beat: every
	// non-isolated tuple is read at least once.
	ReadLowerBound int
}

// Evaluate computes the cost of assignment a for join graph b. The
// assignment must cover exactly b's tuples.
func Evaluate(b *graph.Bipartite, a *Assignment) (*Stats, error) {
	if a == nil {
		return nil, fmt.Errorf("partition: nil assignment")
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	if len(a.R) != b.NLeft() || len(a.S) != b.NRight() {
		return nil, fmt.Errorf("partition: assignment covers %dx%d, join graph is %dx%d",
			len(a.R), len(a.S), b.NLeft(), b.NRight())
	}
	sizeR := make([]int, a.K)
	for _, p := range a.R {
		sizeR[p]++
	}
	sizeS := make([]int, a.L)
	for _, p := range a.S {
		sizeS[p]++
	}
	active := make(map[[2]int]bool)
	for e := 0; e < b.M(); e++ {
		l, r := b.EdgeAt(e)
		active[[2]int{a.R[l], a.S[r]}] = true
	}
	st := &Stats{ActivePairs: len(active)}
	for p := range active {
		st.Work += sizeR[p[0]] + sizeS[p[1]]
	}
	st.ReadLowerBound = readLowerBound(b)
	return st, nil
}

// readLowerBound counts non-isolated tuples on both sides.
func readLowerBound(b *graph.Bipartite) int {
	g := b.Graph()
	n := 0
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) > 0 {
			n++
		}
	}
	return n
}

// Optimal finds the minimum-work assignment by exhaustive search over
// all K^|R| * L^|S| assignments — exponential, for tiny ground-truth
// instances only (the paper states the problem is NP-complete). It
// returns an error when the search space exceeds maxStates (0 means
// 50 million).
func Optimal(b *graph.Bipartite, k, l int, maxStates int64) (*Assignment, *Stats, error) {
	if maxStates == 0 {
		maxStates = 50_000_000
	}
	states := int64(1)
	for i := 0; i < b.NLeft(); i++ {
		states *= int64(k)
		if states > maxStates {
			return nil, nil, fmt.Errorf("partition: search space exceeds %d states", maxStates)
		}
	}
	for j := 0; j < b.NRight(); j++ {
		states *= int64(l)
		if states > maxStates {
			return nil, nil, fmt.Errorf("partition: search space exceeds %d states", maxStates)
		}
	}

	cur := &Assignment{R: make([]int, b.NLeft()), S: make([]int, b.NRight()), K: k, L: l}
	var best *Assignment
	var bestStats *Stats
	var rec func(pos int) error
	total := b.NLeft() + b.NRight()
	rec = func(pos int) error {
		if pos == total {
			st, err := Evaluate(b, cur)
			if err != nil {
				return err
			}
			if best == nil || st.Work < bestStats.Work {
				cp := &Assignment{R: append([]int(nil), cur.R...), S: append([]int(nil), cur.S...), K: k, L: l}
				best, bestStats = cp, st
			}
			return nil
		}
		limit := k
		if pos >= b.NLeft() {
			limit = l
		}
		for p := 0; p < limit; p++ {
			if pos < b.NLeft() {
				cur.R[pos] = p
			} else {
				cur.S[pos-b.NLeft()] = p
			}
			if err := rec(pos + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return nil, nil, err
	}
	return best, bestStats, nil
}

// Random returns a uniformly random assignment — the baseline heuristics
// are measured against.
func Random(rng *rand.Rand, nLeft, nRight, k, l int) *Assignment {
	a := &Assignment{R: make([]int, nLeft), S: make([]int, nRight), K: k, L: l}
	for i := range a.R {
		a.R[i] = rng.Intn(k)
	}
	for j := range a.S {
		a.S[j] = rng.Intn(l)
	}
	return a
}
