package obs

import (
	"sync"
	"testing"
	"time"
)

// The uniform 1..1024 distribution lands exactly on the power-of-two
// bucket edges, so interpolation gives exact values: rank 512 sits at
// the top of the (256,512] bucket and rank 1013.76 interpolates inside
// (512,1024]. These pins hold for both the timer's fixed layout and a
// histogram over Pow2Buckets.

func TestTimerQuantilePins(t *testing.T) {
	tm := newTimer()
	for d := 1; d <= 1024; d++ {
		tm.Observe(time.Duration(d))
	}
	if got := tm.Quantile(0.50); got != 512 {
		t.Fatalf("p50 = %v, want 512", got)
	}
	if got := tm.Quantile(0.99); got != 1013.76 {
		t.Fatalf("p99 = %v, want 1013.76", got)
	}
	if got := tm.Quantile(0); got != 1 {
		t.Fatalf("p0 = %v, want min 1", got)
	}
	if got := tm.Quantile(1); got != 1024 {
		t.Fatalf("p100 = %v, want max 1024", got)
	}
}

func TestHistogramQuantilePins(t *testing.T) {
	h := newHistogram(Pow2Buckets(11)) // bounds 1..1024
	for v := 1; v <= 1024; v++ {
		h.Observe(int64(v))
	}
	if got := h.Quantile(0.50); got != 512 {
		t.Fatalf("p50 = %v, want 512", got)
	}
	if got := h.Quantile(0.99); got != 1013.76 {
		t.Fatalf("p99 = %v, want 1013.76", got)
	}
}

func TestQuantileSingleValueExact(t *testing.T) {
	tm := newTimer()
	for i := 0; i < 5; i++ {
		tm.Observe(7 * time.Nanosecond)
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
		if got := tm.Quantile(q); got != 7 {
			t.Fatalf("q%.2f of a constant distribution = %v, want 7", q, got)
		}
	}
	h := newHistogram(Pow2Buckets(8))
	h.Observe(100)
	if got := h.Quantile(0.5); got != 100 {
		t.Fatalf("histogram single-value p50 = %v, want 100", got)
	}
}

func TestQuantileEmpty(t *testing.T) {
	if got := newTimer().Quantile(0.5); got != 0 {
		t.Fatalf("empty timer quantile = %v, want 0", got)
	}
	if got := newHistogram(Pow2Buckets(4)).Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
}

func TestQuantileSnapshotMatchesLive(t *testing.T) {
	r := NewRegistry()
	tm := r.Timer("q/latency")
	h := r.Histogram("q/sizes", Pow2Buckets(11))
	for v := 1; v <= 1024; v++ {
		tm.Observe(time.Duration(v))
		h.Observe(int64(v))
	}
	snap := r.Snapshot()
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if live, frozen := tm.Quantile(q), snap.Timers["q/latency"].Quantile(q); live != frozen {
			t.Fatalf("timer q%.2f: live %v != snapshot %v", q, live, frozen)
		}
		if live, frozen := h.Quantile(q), snap.Histograms["q/sizes"].Quantile(q); live != frozen {
			t.Fatalf("histogram q%.2f: live %v != snapshot %v", q, live, frozen)
		}
	}
}

func TestTimerMergePreservesBuckets(t *testing.T) {
	a, b := newTimer(), newTimer()
	for d := 1; d <= 512; d++ {
		a.Observe(time.Duration(d))
	}
	for d := 513; d <= 1024; d++ {
		b.Observe(time.Duration(d))
	}
	a.merge(b)
	if a.Count() != 1024 {
		t.Fatalf("merged count = %d, want 1024", a.Count())
	}
	if got := a.Quantile(0.50); got != 512 {
		t.Fatalf("merged p50 = %v, want 512", got)
	}
	if got := a.Quantile(0.99); got != 1013.76 {
		t.Fatalf("merged p99 = %v, want 1013.76", got)
	}
}

// TestResetSnapshotConsistency pins the Reset/Snapshot interleaving fix:
// Reset takes the write lock, so a snapshot racing a reset sees either
// the full pre-reset state or the full post-reset state. Under the old
// read-lock Reset, counters were zeroed before timers, and a concurrent
// snapshot could report the counter already zeroed next to the timer
// still populated — the mixed state this test rejects. Each round races
// exactly one Reset against one Snapshot with no other writers, so
// all-or-nothing is the only correct outcome.
func TestResetSnapshotConsistency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("rs/ops")
	tm := r.Timer("rs/latency")
	rounds := 2000
	if testing.Short() {
		rounds = 200
	}
	for i := 0; i < rounds; i++ {
		c.Inc()
		tm.Observe(time.Nanosecond)
		var wg sync.WaitGroup
		var snap *Snapshot
		wg.Add(2)
		go func() { defer wg.Done(); r.Reset() }()
		go func() { defer wg.Done(); snap = r.Snapshot() }()
		wg.Wait()
		ops := snap.Counters["rs/ops"]
		lat := snap.Timers["rs/latency"].Count
		pre := ops == 1 && lat == 1
		post := ops == 0 && lat == 0
		if !pre && !post {
			t.Fatalf("round %d: snapshot saw counter=%d timer=%d — a mixed reset state", i, ops, lat)
		}
		r.Reset() // known-zero baseline for the next round
	}
}
