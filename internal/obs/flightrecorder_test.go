package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func summaryN(i int, flags ...string) ScopeSummary {
	return ScopeSummary{ID: int64(i), Name: fmt.Sprintf("rec/%d", i), Flags: flags}
}

func TestFlightRecorderRingWraps(t *testing.T) {
	fr := NewFlightRecorder(4, 2)
	for i := 1; i <= 10; i++ {
		fr.Record(summaryN(i), nil)
	}
	snap := fr.Snapshot()
	if snap.Total != 10 || snap.FlaggedTotal != 0 {
		t.Fatalf("totals = %d/%d, want 10/0", snap.Total, snap.FlaggedTotal)
	}
	if len(snap.Recent) != 4 {
		t.Fatalf("recent len = %d, want 4", len(snap.Recent))
	}
	for i, sum := range snap.Recent {
		if want := int64(7 + i); sum.ID != want {
			t.Fatalf("recent[%d].ID = %d, want %d (oldest first)", i, sum.ID, want)
		}
	}
}

func TestFlightRecorderFlaggedRing(t *testing.T) {
	fr := NewFlightRecorder(8, 2)
	fr.Record(summaryN(1), nil)
	fr.Record(summaryN(2, FlagDegraded), []SpanRecord{{ID: 1, Name: "a"}})
	fr.Record(summaryN(3, FlagPanic), []SpanRecord{{ID: 1, Name: "b"}})
	fr.Record(summaryN(4, FlagFault, FlagError), []SpanRecord{{ID: 1, Name: "c"}})
	snap := fr.Snapshot()
	if snap.FlaggedTotal != 3 {
		t.Fatalf("flagged total = %d, want 3", snap.FlaggedTotal)
	}
	if len(snap.Flagged) != 2 {
		t.Fatalf("flagged ring len = %d, want capacity 2", len(snap.Flagged))
	}
	// Capacity 2 keeps the two most recent flagged records, oldest first.
	if snap.Flagged[0].Summary.ID != 3 || snap.Flagged[1].Summary.ID != 4 {
		t.Fatalf("flagged ids = %d,%d, want 3,4", snap.Flagged[0].Summary.ID, snap.Flagged[1].Summary.ID)
	}
	if len(snap.Flagged[1].Spans) != 1 || snap.Flagged[1].Spans[0].Name != "c" {
		t.Fatalf("flagged spans = %+v", snap.Flagged[1].Spans)
	}
}

func TestFlightRecorderCapacityFloor(t *testing.T) {
	fr := NewFlightRecorder(0, -1)
	fr.Record(summaryN(1, FlagError), nil)
	fr.Record(summaryN(2, FlagError), nil)
	snap := fr.Snapshot()
	if snap.RecentCapacity != 1 || snap.FlaggedCapacity != 1 {
		t.Fatalf("capacities = %d/%d, want 1/1", snap.RecentCapacity, snap.FlaggedCapacity)
	}
	if len(snap.Recent) != 1 || snap.Recent[0].ID != 2 {
		t.Fatalf("recent = %+v, want only the newest", snap.Recent)
	}
}

func TestFlightRecorderJSONRoundTrip(t *testing.T) {
	fr := NewFlightRecorder(4, 2)
	fr.Record(summaryN(1, FlagDegraded), []SpanRecord{{ID: 1, Name: "engine/solve", DurNs: 5}})
	data, err := json.Marshal(fr)
	if err != nil {
		t.Fatal(err)
	}
	var snap FlightRecorderSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Total != 1 || len(snap.Flagged) != 1 || snap.Flagged[0].Spans[0].Name != "engine/solve" {
		t.Fatalf("round-tripped snapshot = %+v", snap)
	}

	path := filepath.Join(t.TempDir(), "fr.json")
	if err := fr.WriteJSONFile(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("written file is not valid JSON: %v", err)
	}
}
