package obs

// Chrome trace_event export. Serializes a span forest as the JSON object
// format chrome://tracing and Perfetto load directly: one complete ("X")
// event per span, timestamps in microseconds. Spans that overlap in time
// without nesting (the solver's parallel component fan-out) are spread
// across tracks (tid values) greedily, keeping every track properly
// nested so the viewers render them as stacked lanes.

import (
	"encoding/json"
	"fmt"
	"io"
)

// ChromeEvent is one trace_event entry. Args carries the span's id,
// parent id, and integer attributes, so the JSONL span tree is fully
// recoverable from the Chrome export (cmd/obsreport leans on that).
type ChromeEvent struct {
	Name string           `json:"name"`
	Ph   string           `json:"ph"`
	Ts   float64          `json:"ts"`  // microseconds since trace start
	Dur  float64          `json:"dur"` // microseconds
	Pid  int              `json:"pid"`
	Tid  int              `json:"tid"`
	Args map[string]int64 `json:"args,omitempty"`
}

// ChromeTrace is the top-level trace_event JSON object.
type ChromeTrace struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// chromeTrack is one tid lane during assignment: a stack of currently
// open (by end time) span intervals, always properly nested.
type chromeTrack struct {
	ends []int64 // open interval end times, outermost first
}

// fits reports whether [start, end) nests under the track's state at
// start, popping intervals that have already closed.
func (tr *chromeTrack) fits(start, end int64) bool {
	for len(tr.ends) > 0 && tr.ends[len(tr.ends)-1] <= start {
		tr.ends = tr.ends[:len(tr.ends)-1]
	}
	return len(tr.ends) == 0 || tr.ends[len(tr.ends)-1] >= end
}

// ChromeEvents converts a span forest (as produced by Tracer.Records:
// ascending start times, parents before children) into trace_event
// entries. Track assignment is greedy and deterministic: a span prefers
// its parent's track, then the lowest track it nests into, else a new
// track — so sequential solves collapse onto tid 0 and parallel
// component spans fan out onto their own lanes.
func ChromeEvents(recs []SpanRecord) []ChromeEvent {
	const never = int64(1) << 62          // unended spans hold their track open
	track := make(map[int]int, len(recs)) // span id -> tid
	var tracks []*chromeTrack
	events := make([]ChromeEvent, 0, len(recs))
	for _, r := range recs {
		start := r.StartNs
		end := never
		dur := int64(0)
		if r.DurNs >= 0 {
			dur = r.DurNs
			end = start + dur
		}
		tid := -1
		if r.Parent > 0 {
			if pt, ok := track[r.Parent]; ok && tracks[pt].fits(start, end) {
				tid = pt
			}
		}
		if tid < 0 {
			for i, tr := range tracks {
				if tr.fits(start, end) {
					tid = i
					break
				}
			}
		}
		if tid < 0 {
			tracks = append(tracks, &chromeTrack{})
			tid = len(tracks) - 1
		}
		tracks[tid].ends = append(tracks[tid].ends, end)
		track[r.ID] = tid

		args := make(map[string]int64, len(r.Attrs)+2)
		args["id"] = int64(r.ID)
		args["parent"] = int64(r.Parent)
		for k, v := range r.Attrs {
			args[k] = v
		}
		events = append(events, ChromeEvent{
			Name: r.Name,
			Ph:   "X",
			Ts:   float64(start) / 1e3,
			Dur:  float64(dur) / 1e3,
			Pid:  1,
			Tid:  tid,
			Args: args,
		})
	}
	return events
}

// WriteChromeTrace writes recs as an indented Chrome trace_event JSON
// document.
func WriteChromeTrace(w io.Writer, recs []SpanRecord) error {
	doc := ChromeTrace{TraceEvents: ChromeEvents(recs), DisplayTimeUnit: "ns"}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshal chrome trace: %w", err)
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteChromeTrace writes the tracer's current spans (absorbed batches
// included) as Chrome trace_event JSON. Nil-safe: a nil tracer writes an
// empty trace.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	return WriteChromeTrace(w, t.Records())
}
