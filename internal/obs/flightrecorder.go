package obs

// The flight recorder: a fixed-size ring buffer of the last N closed
// Scope summaries, plus full span dumps for every scope that closed
// flagged (degraded, panicked, faulted, or errored). Like its aviation
// namesake it is always on and bounded: steady-state traffic costs two
// ring slots of memory per request, and when a solve goes wrong the
// recorder already holds the whole story — attempt provenance, metrics,
// and span forest — without anyone having had to turn tracing on first.
// obshttp serves it at /debug/joinpebble/flightrecorder; cmdutil's
// -trace-out dumps it to flightrecorder.json.

import (
	"encoding/json"
	"fmt"
	"sync"
)

// Default ring depths: recent summaries are cheap (no spans), flagged
// records carry full span forests so the ring is smaller.
const (
	DefaultRecorderRecent  = 64
	DefaultRecorderFlagged = 16
)

// FlightRecord is one retained flagged scope: the summary plus the
// complete span forest it produced.
type FlightRecord struct {
	Summary ScopeSummary `json:"summary"`
	Spans   []SpanRecord `json:"spans,omitempty"`
}

// FlightRecorder retains recent scope summaries in a ring buffer.
// The zero value is not usable; use NewFlightRecorder or the package
// DefaultRecorder.
type FlightRecorder struct {
	//joinlint:lockrank obs-flightrec 35
	mu           sync.Mutex
	recentCap    int
	flaggedCap   int
	total        int64
	flaggedTotal int64
	recent       []ScopeSummary // ring, oldest first after unwrap
	flagged      []FlightRecord
	recentAt     int
	flaggedAt    int
}

// DefaultRecorder is the process-wide flight recorder every Scope
// reports into unless redirected with Scope.SetRecorder.
var DefaultRecorder = NewFlightRecorder(DefaultRecorderRecent, DefaultRecorderFlagged)

// NewFlightRecorder returns a recorder retaining the last recent scope
// summaries and the last flagged full records (minimum 1 each).
func NewFlightRecorder(recent, flagged int) *FlightRecorder {
	if recent < 1 {
		recent = 1
	}
	if flagged < 1 {
		flagged = 1
	}
	return &FlightRecorder{recentCap: recent, flaggedCap: flagged}
}

// Record retains sum in the recent ring; when the scope closed flagged,
// the full record — summary plus span forest — is retained as well.
// Scope.Close is the caller; spans must not be mutated afterwards.
func (fr *FlightRecorder) Record(sum ScopeSummary, spans []SpanRecord) {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	fr.total++
	if len(fr.recent) < fr.recentCap {
		fr.recent = append(fr.recent, sum)
	} else {
		fr.recent[fr.recentAt] = sum
		fr.recentAt = (fr.recentAt + 1) % fr.recentCap
	}
	if len(sum.Flags) == 0 {
		return
	}
	fr.flaggedTotal++
	rec := FlightRecord{Summary: sum, Spans: spans}
	if len(fr.flagged) < fr.flaggedCap {
		fr.flagged = append(fr.flagged, rec)
	} else {
		fr.flagged[fr.flaggedAt] = rec
		fr.flaggedAt = (fr.flaggedAt + 1) % fr.flaggedCap
	}
}

// FlightRecorderSnapshot is the frozen, JSON-shaped state of a recorder.
type FlightRecorderSnapshot struct {
	RecentCapacity  int            `json:"recent_capacity"`
	FlaggedCapacity int            `json:"flagged_capacity"`
	Total           int64          `json:"total"`
	FlaggedTotal    int64          `json:"flagged_total"`
	Recent          []ScopeSummary `json:"recent"`
	Flagged         []FlightRecord `json:"flagged"`
}

// unwrap returns ring's contents oldest-first given the next overwrite
// position at.
func unwrapRing[T any](ring []T, at int) []T {
	out := make([]T, 0, len(ring))
	out = append(out, ring[at:]...)
	return append(out, ring[:at]...)
}

// Snapshot freezes the recorder's current state, oldest entries first.
func (fr *FlightRecorder) Snapshot() *FlightRecorderSnapshot {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	s := &FlightRecorderSnapshot{
		RecentCapacity:  fr.recentCap,
		FlaggedCapacity: fr.flaggedCap,
		Total:           fr.total,
		FlaggedTotal:    fr.flaggedTotal,
	}
	if len(fr.recent) < fr.recentCap {
		s.Recent = append([]ScopeSummary(nil), fr.recent...)
	} else {
		s.Recent = unwrapRing(fr.recent, fr.recentAt)
	}
	if len(fr.flagged) < fr.flaggedCap {
		s.Flagged = append([]FlightRecord(nil), fr.flagged...)
	} else {
		s.Flagged = unwrapRing(fr.flagged, fr.flaggedAt)
	}
	return s
}

// MarshalJSON renders the recorder's current snapshot, making a
// *FlightRecorder directly servable (obshttp does).
func (fr *FlightRecorder) MarshalJSON() ([]byte, error) {
	return json.Marshal(fr.Snapshot())
}

// WriteJSONFile atomically writes the current snapshot as indented JSON.
func (fr *FlightRecorder) WriteJSONFile(path string) error {
	data, err := json.MarshalIndent(fr.Snapshot(), "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshal flight recorder: %w", err)
	}
	return AtomicWriteFile(path, append(data, '\n'), 0o644)
}
