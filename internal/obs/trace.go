package obs

// Hierarchical span tracing. A Tracer collects a forest of timed spans;
// spans nest by creating children from a parent span, and workers on
// other goroutines may create children of the same parent concurrently
// (the solver's per-component fan-out does exactly that).
//
// Tracing is off by default: the active tracer is a nil atomic pointer,
// StartSpan on a nil tracer returns a nil *Span, and every *Span method
// is nil-safe, so an instrumented hot path pays one atomic load plus a
// nil check and allocates nothing (pinned by TestNoopTracerZeroAlloc).

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer records spans against a fixed epoch. Create with NewTracer;
// a nil *Tracer is the disabled tracer and is safe to use.
type Tracer struct {
	//joinlint:lockrank obs-tracer 20
	mu       sync.Mutex
	epoch    time.Time
	spans    []*Span // creation order; parents always precede children
	imported []importBatch
}

// importBatch is a block of span records absorbed from another tracer
// (a closing Scope). Records keep their original 1-based ids; renumbering
// into the host tracer's id space and rebasing start times onto its epoch
// happen at read time, so absorbing is cheap and native spans keep their
// ids.
type importBatch struct {
	recs    []SpanRecord
	deltaNs int64 // source epoch minus host epoch
}

// Span is one timed, named region of work, possibly nested. A nil *Span
// (from a disabled tracer) absorbs all method calls.
type Span struct {
	t      *Tracer
	parent *Span
	id     int // 1-based position in the tracer's span list
	depth  int
	name   string
	start  time.Duration // since tracer epoch
	dur    time.Duration // zero until End
	ended  bool
	attrs  map[string]int64
}

// NewTracer returns an empty tracer whose epoch is now.
func NewTracer() *Tracer { return &Tracer{epoch: time.Now()} }

func (t *Tracer) newSpan(parent *Span, name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &Span{t: t, parent: parent, name: name, start: time.Since(t.epoch)}
	if parent != nil {
		s.depth = parent.depth + 1
	}
	s.id = len(t.spans) + 1
	t.spans = append(t.spans, s)
	return s
}

// Start opens a root span. Nil-safe: a nil tracer returns a nil span.
func (t *Tracer) Start(name string) *Span { return t.newSpan(nil, name) }

// Len returns the number of recorded spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Start opens a child span. Nil-safe.
func (s *Span) Start(name string) *Span {
	if s == nil {
		return nil
	}
	return s.t.newSpan(s, name)
}

// End closes the span, fixing its duration. Nil-safe; a second End is
// ignored so `defer sp.End()` composes with early explicit ends.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	if !s.ended {
		s.dur = time.Since(s.t.epoch) - s.start
		s.ended = true
	}
	s.t.mu.Unlock()
}

// SetInt attaches an integer attribute to the span. Nil-safe.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]int64, 4)
	}
	s.attrs[key] = v
	s.t.mu.Unlock()
}

// SpanRecord is the frozen form of one span and the JSONL line layout:
// ids are 1-based creation order, parent 0 means a root span. An unended
// span has dur_ns -1.
type SpanRecord struct {
	ID      int              `json:"id"`
	Parent  int              `json:"parent"`
	Depth   int              `json:"depth"`
	Name    string           `json:"name"`
	StartNs int64            `json:"start_ns"`
	DurNs   int64            `json:"dur_ns"`
	Attrs   map[string]int64 `json:"attrs,omitempty"`
}

// records freezes every span — native first, then absorbed batches with
// their ids renumbered past the native spans and their start times
// rebased onto t's epoch. Every parent still precedes its children.
// Callers must hold t.mu.
func (t *Tracer) records() []SpanRecord {
	out := make([]SpanRecord, 0, len(t.spans))
	for _, s := range t.spans {
		rec := SpanRecord{
			ID:      s.id,
			Depth:   s.depth,
			Name:    s.name,
			StartNs: int64(s.start),
			DurNs:   int64(s.dur),
		}
		if len(s.attrs) > 0 {
			// Copy under the lock: the span may gain attributes while the
			// records are marshalled by the caller.
			rec.Attrs = make(map[string]int64, len(s.attrs))
			for k, v := range s.attrs {
				rec.Attrs[k] = v
			}
		}
		if s.parent != nil {
			rec.Parent = s.parent.id
		}
		if !s.ended {
			rec.DurNs = -1
		}
		out = append(out, rec)
	}
	offset := len(t.spans)
	for _, b := range t.imported {
		for _, rec := range b.recs {
			rec.ID += offset
			if rec.Parent > 0 {
				rec.Parent += offset
			}
			rec.StartNs += b.deltaNs
			out = append(out, rec)
		}
		offset += len(b.recs)
	}
	return out
}

// Records freezes the tracer's current spans (absorbed batches included,
// renumbered and rebased). Nil-safe: a nil tracer has no records.
func (t *Tracer) Records() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.records()
}

// absorb appends src's records to t as an imported batch. A closing
// Scope uses this to fold its private span forest into the process-wide
// tracer so `-trace` output still carries every solve.
func (t *Tracer) absorb(src *Tracer) {
	if t == nil || src == nil || t == src {
		return
	}
	recs := src.Records()
	if len(recs) == 0 {
		return
	}
	delta := src.epoch.Sub(t.epoch).Nanoseconds()
	t.mu.Lock()
	t.imported = append(t.imported, importBatch{recs: recs, deltaNs: delta})
	t.mu.Unlock()
}

// WriteJSONL writes one JSON object per span, in creation order (a
// topological order of the forest: every parent precedes its children).
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	records := t.records()
	t.mu.Unlock()
	for _, rec := range records {
		line, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("obs: marshal span %d: %w", rec.ID, err)
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// active is the process-wide tracer StartSpan reads. Nil means disabled.
var active atomic.Pointer[Tracer]

// SetTracer installs t as the active tracer; nil disables tracing.
func SetTracer(t *Tracer) { active.Store(t) }

// ActiveTracer returns the current tracer (nil when tracing is off).
func ActiveTracer() *Tracer { return active.Load() }

// StartSpan opens a root span on the active tracer. When tracing is off
// this is one atomic load and a nil return — the single nil-check cost
// hot paths pay for being traceable.
func StartSpan(name string) *Span { return active.Load().Start(name) }
