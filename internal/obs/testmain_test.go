package obs

import (
	"os"
	"testing"

	"joinpebble/internal/testutil/leakcheck"
)

// TestMain gates the suite on goroutine hygiene: scope rollups and
// trace absorption are synchronous by design, so any goroutine left
// after the tests is a regression (the dynamic side of the golife
// analyzer's static rule).
func TestMain(m *testing.M) {
	os.Exit(leakcheck.Main(m))
}
