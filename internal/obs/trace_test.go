package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func parseJSONL(t *testing.T, tr *Tracer) []SpanRecord {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var out []SpanRecord
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var rec SpanRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		out = append(out, rec)
	}
	return out
}

// TestSpanTreeNesting builds a small span tree and checks the JSONL
// output preserves hierarchy, order, attributes, and durations.
func TestSpanTreeNesting(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("solve")
	root.SetInt("edges", 42)
	split := root.Start("component_split")
	split.End()
	comp := root.Start("component_solve")
	inner := comp.Start("path_partition")
	inner.End()
	comp.End()
	open := tr.Start("never_ended")
	_ = open
	root.End()

	recs := parseJSONL(t, tr)
	if len(recs) != 5 {
		t.Fatalf("got %d spans, want 5", len(recs))
	}
	byName := map[string]SpanRecord{}
	for i, rec := range recs {
		if rec.ID != i+1 {
			t.Fatalf("span %d has id %d; creation order should be 1-based and dense", i, rec.ID)
		}
		byName[rec.Name] = rec
	}
	if byName["solve"].Parent != 0 || byName["solve"].Depth != 0 {
		t.Fatalf("root mangled: %+v", byName["solve"])
	}
	for _, child := range []string{"component_split", "component_solve"} {
		if byName[child].Parent != byName["solve"].ID || byName[child].Depth != 1 {
			t.Fatalf("%s not nested under root: %+v", child, byName[child])
		}
	}
	if byName["path_partition"].Parent != byName["component_solve"].ID || byName["path_partition"].Depth != 2 {
		t.Fatalf("grandchild mangled: %+v", byName["path_partition"])
	}
	if byName["solve"].Attrs["edges"] != 42 {
		t.Fatalf("attr lost: %+v", byName["solve"])
	}
	if byName["solve"].DurNs < 0 {
		t.Fatal("ended root span has negative duration")
	}
	if byName["never_ended"].DurNs != -1 {
		t.Fatalf("unended span should report dur -1, got %d", byName["never_ended"].DurNs)
	}
	// Parents precede children in the stream, so a single forward pass
	// can rebuild the tree.
	seen := map[int]bool{0: true}
	for _, rec := range recs {
		if !seen[rec.Parent] {
			t.Fatalf("span %d streamed before its parent %d", rec.ID, rec.Parent)
		}
		seen[rec.ID] = true
	}
}

// TestConcurrentChildren mirrors the solver's fan-out: workers create
// children of one parent concurrently. Run with -race.
func TestConcurrentChildren(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("solve")
	var wg sync.WaitGroup
	const workers, spansPer = 8, 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < spansPer; i++ {
				sp := root.Start("component_solve")
				sp.SetInt("i", int64(i))
				sp.End()
			}
		}()
	}
	wg.Wait()
	root.End()
	if got := tr.Len(); got != 1+workers*spansPer {
		t.Fatalf("tracer has %d spans, want %d", got, 1+workers*spansPer)
	}
	for _, rec := range parseJSONL(t, tr) {
		if rec.Name == "component_solve" && rec.Parent != 1 {
			t.Fatalf("child has parent %d, want 1", rec.Parent)
		}
	}
}

// TestNoopTracerZeroAlloc pins the "free when off" guarantee: with no
// active tracer, a full span lifecycle allocates nothing.
func TestNoopTracerZeroAlloc(t *testing.T) {
	SetTracer(nil)
	allocs := testing.AllocsPerRun(1000, func() {
		sp := StartSpan("hot")
		child := sp.Start("inner")
		child.SetInt("k", 1)
		child.End()
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("no-op tracer allocates %v per span lifecycle, want 0", allocs)
	}
}

// TestActiveTracerSwitch checks SetTracer routing: spans land on the
// installed tracer and stop when it is removed.
func TestActiveTracerSwitch(t *testing.T) {
	tr := NewTracer()
	SetTracer(tr)
	defer SetTracer(nil)
	StartSpan("a").End()
	if ActiveTracer() != tr {
		t.Fatal("ActiveTracer is not the installed tracer")
	}
	SetTracer(nil)
	if sp := StartSpan("b"); sp != nil {
		t.Fatal("StartSpan with tracing off returned a live span")
	}
	if tr.Len() != 1 {
		t.Fatalf("tracer recorded %d spans, want 1", tr.Len())
	}
}
