// Package obs is the dependency-free observability layer of the
// pebble-game stack: atomic counters, fixed-bucket histograms, monotonic
// timers, and a hierarchical span tracer (see trace.go), all collected in
// a Registry that snapshots to JSON.
//
// Design constraints, in order:
//
//  1. Free when off. The tracer is disabled by default and costs one
//     atomic pointer load + nil check per span site. Counters and timers
//     are always on, but instrumentation sites accumulate into locals
//     inside hot loops and flush once per run, so the steady-state cost
//     is a handful of uncontended atomic adds per operation — invisible
//     next to the millisecond-scale solves they account for.
//  2. No dependencies. This package imports only the standard library
//     (and nothing from internal/), so every layer of the stack can
//     import it without cycles. HTTP exposure (expvar, net/http/pprof)
//     lives in the obshttp subpackage to keep binaries that never serve
//     metrics free of net/http.
//  3. Stable names. Metric names are slash-separated paths
//     ("solver/phase/component_split"); snapshots key on them, so
//     renaming a metric silently breaks dashboards and the CI smoke
//     assertions — treat names like the bench series names in regress.go.
package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n may be 0; negative n is allowed but makes the counter a
// gauge — prefer separate counters for up and down).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Histogram counts observations into a fixed bucket layout chosen at
// construction. Bucket i counts observations v with v <= Bounds[i]
// (first i that satisfies it); one implicit overflow bucket catches the
// rest. Sum, Count, Min and Max are tracked exactly, so totals derived
// from a histogram match the individual observations — the property the
// E15 consistency test leans on.
type Histogram struct {
	bounds     []int64
	buckets    []atomic.Int64 // len(bounds)+1; last is overflow
	count, sum atomic.Int64
	min, max   atomic.Int64
}

func newHistogram(bounds []int64) *Histogram {
	b := make([]int64, len(bounds))
	copy(b, bounds)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	h := &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// Pow2Buckets returns the exponential layout [1, 2, 4, ..., 2^(n-1)] —
// the default for count-like quantities (pebbling costs, page fetches).
func Pow2Buckets(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = 1 << i
	}
	return out
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Timer accumulates durations of a repeated operation: count, total, and
// the min/max extremes, all in nanoseconds. Reading the clock is the
// caller's job (start := time.Now(); ...; t.ObserveSince(start)), so a
// Timer itself never syscalls.
type Timer struct {
	count, total, min, max atomic.Int64
}

func newTimer() *Timer {
	t := &Timer{}
	t.min.Store(math.MaxInt64)
	t.max.Store(math.MinInt64)
	return t
}

// Observe records one duration.
func (t *Timer) Observe(d time.Duration) {
	n := int64(d)
	t.count.Add(1)
	t.total.Add(n)
	for {
		cur := t.min.Load()
		if n >= cur || t.min.CompareAndSwap(cur, n) {
			break
		}
	}
	for {
		cur := t.max.Load()
		if n <= cur || t.max.CompareAndSwap(cur, n) {
			break
		}
	}
}

// ObserveSince records the time elapsed since start.
func (t *Timer) ObserveSince(start time.Time) { t.Observe(time.Since(start)) }

// Count returns the number of recorded durations.
func (t *Timer) Count() int64 { return t.count.Load() }

// Total returns the accumulated duration.
func (t *Timer) Total() time.Duration { return time.Duration(t.total.Load()) }

// Registry is a namespace of metrics. The zero value is not usable; use
// NewRegistry or the package-level Default. Lookup methods get-or-create,
// so instrumentation sites bind their metric once in a package var and
// pay no map lookup afterwards.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	hists    map[string]*Histogram
	timers   map[string]*Timer
}

// Default is the process-wide registry every internal package records
// into. The cmd tools snapshot it for -metrics and publish it on expvar
// for -pprof.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
		timers:   make(map[string]*Timer),
	}
}

// Counter returns the named counter, creating it if absent.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds if absent. Bounds of an existing histogram are kept —
// the first registration wins — so call sites should agree on a layout.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h = newHistogram(bounds)
	r.hists[name] = h
	return h
}

// Timer returns the named timer, creating it if absent.
func (r *Registry) Timer(name string) *Timer {
	r.mu.RLock()
	t, ok := r.timers[name]
	r.mu.RUnlock()
	if ok {
		return t
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.timers[name]; ok {
		return t
	}
	t = newTimer()
	r.timers[name] = t
	return t
}

// Reset zeroes every registered metric (buckets and extremes included)
// without unregistering anything. Tests use it to measure deltas; bound
// metric pointers stay valid.
func (r *Registry) Reset() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, h := range r.hists {
		for i := range h.buckets {
			h.buckets[i].Store(0)
		}
		h.count.Store(0)
		h.sum.Store(0)
		h.min.Store(math.MaxInt64)
		h.max.Store(math.MinInt64)
	}
	for _, t := range r.timers {
		t.count.Store(0)
		t.total.Store(0)
		t.min.Store(math.MaxInt64)
		t.max.Store(math.MinInt64)
	}
}

// Bucket is one histogram bucket in a snapshot: N observations with
// value <= LE (the overflow bucket has LE = math.MaxInt64).
type Bucket struct {
	LE int64 `json:"le"`
	N  int64 `json:"n"`
}

// HistogramSnapshot is the frozen state of one histogram.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Min     int64    `json:"min"`
	Max     int64    `json:"max"`
	Buckets []Bucket `json:"buckets"`
}

// TimerSnapshot is the frozen state of one timer, in nanoseconds.
type TimerSnapshot struct {
	Count   int64   `json:"count"`
	TotalNs int64   `json:"total_ns"`
	AvgNs   float64 `json:"avg_ns"`
	MinNs   int64   `json:"min_ns"`
	MaxNs   int64   `json:"max_ns"`
}

// Snapshot is a point-in-time copy of a registry, shaped for JSON: maps
// keyed by metric name (encoding/json emits map keys sorted, so output
// is deterministic given deterministic values).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Timers     map[string]TimerSnapshot     `json:"timers"`
}

// Snapshot captures the current value of every registered metric.
// Individual metrics are read atomically; the snapshot as a whole is not
// a consistent cut if writers are concurrent, which is fine for the
// monotone quantities recorded here.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := &Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
		Timers:     make(map[string]TimerSnapshot, len(r.timers)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Count:   h.count.Load(),
			Sum:     h.sum.Load(),
			Buckets: make([]Bucket, len(h.buckets)),
		}
		if hs.Count > 0 {
			hs.Min = h.min.Load()
			hs.Max = h.max.Load()
		}
		for i := range h.buckets {
			le := int64(math.MaxInt64)
			if i < len(h.bounds) {
				le = h.bounds[i]
			}
			hs.Buckets[i] = Bucket{LE: le, N: h.buckets[i].Load()}
		}
		s.Histograms[name] = hs
	}
	for name, t := range r.timers {
		ts := TimerSnapshot{
			Count:   t.count.Load(),
			TotalNs: t.total.Load(),
		}
		if ts.Count > 0 {
			ts.AvgNs = float64(ts.TotalNs) / float64(ts.Count)
			ts.MinNs = t.min.Load()
			ts.MaxNs = t.max.Load()
		}
		s.Timers[name] = ts
	}
	return s
}

// MarshalJSON renders the registry's current snapshot, which makes a
// *Registry usable directly as an expvar.Func payload.
func (r *Registry) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.Snapshot())
}

// WriteJSONFile atomically writes the current snapshot as indented JSON
// to path (temp file + rename, same guarantee as bench.WriteReport).
func (r *Registry) WriteJSONFile(path string) error {
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshal snapshot: %w", err)
	}
	return AtomicWriteFile(path, append(data, '\n'), 0o644)
}

// AtomicWriteFile writes data to path via a temp file in the same
// directory and an atomic rename, so a crashed or interrupted writer can
// never leave a truncated file at path.
func AtomicWriteFile(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("obs: create temp for %s: %w", path, err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("obs: write %s: %w", tmpName, err)
	}
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close()
		return fmt.Errorf("obs: chmod %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("obs: close %s: %w", tmpName, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("obs: rename %s -> %s: %w", tmpName, path, err)
	}
	return nil
}
