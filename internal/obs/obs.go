// Package obs is the dependency-free observability layer of the
// pebble-game stack: atomic counters, fixed-bucket histograms, monotonic
// timers, and a hierarchical span tracer (see trace.go), all collected in
// a Registry that snapshots to JSON.
//
// Design constraints, in order:
//
//  1. Free when off. The tracer is disabled by default and costs one
//     atomic pointer load + nil check per span site. Counters and timers
//     are always on, but instrumentation sites accumulate into locals
//     inside hot loops and flush once per run, so the steady-state cost
//     is a handful of uncontended atomic adds per operation — invisible
//     next to the millisecond-scale solves they account for.
//  2. No dependencies. This package imports only the standard library
//     (and nothing from internal/), so every layer of the stack can
//     import it without cycles. HTTP exposure (expvar, net/http/pprof)
//     lives in the obshttp subpackage to keep binaries that never serve
//     metrics free of net/http.
//  3. Stable names. Metric names are slash-separated paths
//     ("solver/phase/component_split"); snapshots key on them, so
//     renaming a metric silently breaks dashboards and the CI smoke
//     assertions — treat names like the bench series names in regress.go.
package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"math/bits"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// casMin lowers a to v if v is smaller (CAS loop, lock-free).
func casMin(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v >= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// casMax raises a to v if v is larger (CAS loop, lock-free).
func casMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n may be 0; negative n is allowed but makes the counter a
// gauge — prefer separate counters for up and down).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Histogram counts observations into a fixed bucket layout chosen at
// construction. Bucket i counts observations v with v <= Bounds[i]
// (first i that satisfies it); one implicit overflow bucket catches the
// rest. Sum, Count, Min and Max are tracked exactly, so totals derived
// from a histogram match the individual observations — the property the
// E15 consistency test leans on.
type Histogram struct {
	bounds     []int64
	buckets    []atomic.Int64 // len(bounds)+1; last is overflow
	count, sum atomic.Int64
	min, max   atomic.Int64
}

func newHistogram(bounds []int64) *Histogram {
	b := make([]int64, len(bounds))
	copy(b, bounds)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	h := &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// Pow2Buckets returns the exponential layout [1, 2, 4, ..., 2^(n-1)] —
// the default for count-like quantities (pebbling costs, page fetches).
func Pow2Buckets(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = 1 << i
	}
	return out
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	casMin(&h.min, v)
	casMax(&h.max, v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// bucketList materializes the current bucket counts as a snapshot slice.
func (h *Histogram) bucketList() []Bucket {
	out := make([]Bucket, len(h.buckets))
	for i := range h.buckets {
		le := int64(math.MaxInt64)
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		out[i] = Bucket{LE: le, N: h.buckets[i].Load()}
	}
	return out
}

// Quantile estimates the q-quantile (q in [0, 1]) of the observed values
// by linear interpolation inside the covering bucket, clamped to the
// exact [Min, Max] extremes. With no observations it returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	count := h.count.Load()
	if count == 0 {
		return 0
	}
	return quantileFromBuckets(h.bucketList(), count, h.min.Load(), h.max.Load(), q)
}

// merge folds src into h: bucket-by-bucket when the layouts match, by
// re-binning each source bucket's upper bound otherwise (a bounded-error
// approximation — counts and sums stay exact either way). Scope rollup
// is the caller, so src is quiescent.
func (h *Histogram) merge(src *Histogram) {
	n := src.count.Load()
	if n == 0 {
		return
	}
	sameBounds := len(h.bounds) == len(src.bounds)
	if sameBounds {
		for i := range h.bounds {
			if h.bounds[i] != src.bounds[i] {
				sameBounds = false
				break
			}
		}
	}
	if sameBounds {
		for i := range src.buckets {
			if v := src.buckets[i].Load(); v != 0 {
				h.buckets[i].Add(v)
			}
		}
	} else {
		srcMax := src.max.Load()
		for i := range src.buckets {
			v := src.buckets[i].Load()
			if v == 0 {
				continue
			}
			rep := srcMax
			if i < len(src.bounds) && src.bounds[i] < rep {
				rep = src.bounds[i]
			}
			j := sort.Search(len(h.bounds), func(j int) bool { return rep <= h.bounds[j] })
			h.buckets[j].Add(v)
		}
	}
	h.count.Add(n)
	h.sum.Add(src.sum.Load())
	casMin(&h.min, src.min.Load())
	casMax(&h.max, src.max.Load())
}

// quantileFromBuckets interpolates the q-quantile from cumulative bucket
// counts (shared by live metrics and their snapshots). Buckets must be in
// ascending LE order and complete — zero-count buckets included — so each
// bucket's lower edge is the previous bound. min/max tighten the first
// and last covering buckets and clamp the result, which makes single-value
// distributions exact.
func quantileFromBuckets(buckets []Bucket, count, min, max int64, q float64) float64 {
	if count <= 0 {
		return 0
	}
	if q <= 0 {
		return float64(min)
	}
	if q >= 1 {
		return float64(max)
	}
	rank := q * float64(count)
	var cum int64
	lowEdge := float64(min)
	for _, b := range buckets {
		if b.N > 0 {
			hi := float64(b.LE)
			if float64(max) < hi {
				hi = float64(max)
			}
			if lowEdge > hi {
				lowEdge = hi
			}
			if rank <= float64(cum+b.N) {
				v := lowEdge + (hi-lowEdge)*(rank-float64(cum))/float64(b.N)
				if v < float64(min) {
					v = float64(min)
				}
				if v > float64(max) {
					v = float64(max)
				}
				return v
			}
			cum += b.N
		}
		if e := float64(b.LE); e > lowEdge {
			lowEdge = e
		}
		if lowEdge > float64(max) {
			lowEdge = float64(max)
		}
	}
	return float64(max) // floating-point slack pushed rank past the last bucket
}

// timerBucketCount is the number of finite power-of-two duration buckets
// a Timer keeps: bucket i counts durations d with d <= 2^i nanoseconds,
// and one overflow bucket catches the rest. 2^39 ns ≈ 9.2 minutes, far
// beyond any solve this repo times, so the overflow bucket stays empty in
// practice.
const timerBucketCount = 40

// timerBucketIndex maps a duration in nanoseconds to its bucket: the
// first i with n <= 2^i, computed with one bit-length instruction instead
// of a search (Observe sits on solver flush paths).
func timerBucketIndex(n int64) int {
	if n <= 1 {
		return 0
	}
	i := bits.Len64(uint64(n - 1))
	if i > timerBucketCount {
		return timerBucketCount
	}
	return i
}

// Timer accumulates durations of a repeated operation: count, total, the
// min/max extremes, and a power-of-two bucket distribution (for Quantile),
// all in nanoseconds. Reading the clock is the caller's job
// (start := time.Now(); ...; t.ObserveSince(start)), so a Timer itself
// never syscalls.
type Timer struct {
	count, total, min, max atomic.Int64
	buckets                [timerBucketCount + 1]atomic.Int64
}

func newTimer() *Timer {
	t := &Timer{}
	t.min.Store(math.MaxInt64)
	t.max.Store(math.MinInt64)
	return t
}

// Observe records one duration.
func (t *Timer) Observe(d time.Duration) {
	n := int64(d)
	t.count.Add(1)
	t.total.Add(n)
	t.buckets[timerBucketIndex(n)].Add(1)
	casMin(&t.min, n)
	casMax(&t.max, n)
}

// ObserveSince records the time elapsed since start.
func (t *Timer) ObserveSince(start time.Time) { t.Observe(time.Since(start)) }

// Count returns the number of recorded durations.
func (t *Timer) Count() int64 { return t.count.Load() }

// Total returns the accumulated duration.
func (t *Timer) Total() time.Duration { return time.Duration(t.total.Load()) }

// bucketList materializes the non-empty prefix of the duration buckets
// (zero-count buckets inside the prefix included, so quantile
// interpolation sees every lower edge).
func (t *Timer) bucketList() []Bucket {
	last := -1
	var raw [timerBucketCount + 1]int64
	for i := range t.buckets {
		raw[i] = t.buckets[i].Load()
		if raw[i] != 0 {
			last = i
		}
	}
	if last < 0 {
		return nil
	}
	out := make([]Bucket, last+1)
	for i := 0; i <= last; i++ {
		le := int64(math.MaxInt64)
		if i < timerBucketCount {
			le = int64(1) << i
		}
		out[i] = Bucket{LE: le, N: raw[i]}
	}
	return out
}

// Quantile estimates the q-quantile of the recorded durations in
// nanoseconds, interpolated inside the power-of-two buckets and clamped
// to the exact [min, max] extremes. With no observations it returns 0.
func (t *Timer) Quantile(q float64) float64 {
	count := t.count.Load()
	if count == 0 {
		return 0
	}
	return quantileFromBuckets(t.bucketList(), count, t.min.Load(), t.max.Load(), q)
}

// merge folds src into t (bucket layouts are always identical). Scope
// rollup is the caller, so src is quiescent.
func (t *Timer) merge(src *Timer) {
	n := src.count.Load()
	if n == 0 {
		return
	}
	for i := range src.buckets {
		if v := src.buckets[i].Load(); v != 0 {
			t.buckets[i].Add(v)
		}
	}
	t.count.Add(n)
	t.total.Add(src.total.Load())
	casMin(&t.min, src.min.Load())
	casMax(&t.max, src.max.Load())
}

// Registry is a namespace of metrics. The zero value is not usable; use
// NewRegistry or the package-level Default. Lookup methods get-or-create,
// so instrumentation sites bind their metric once in a package var and
// pay no map lookup afterwards.
type Registry struct {
	//joinlint:lockrank obs-registry 30
	mu       sync.RWMutex
	counters map[string]*Counter
	hists    map[string]*Histogram
	timers   map[string]*Timer
}

// Default is the process-wide registry every internal package records
// into. The cmd tools snapshot it for -metrics and publish it on expvar
// for -pprof.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
		timers:   make(map[string]*Timer),
	}
}

// Counter returns the named counter, creating it if absent.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds if absent. Bounds of an existing histogram are kept —
// the first registration wins — so call sites should agree on a layout.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h = newHistogram(bounds)
	r.hists[name] = h
	return h
}

// Timer returns the named timer, creating it if absent.
func (r *Registry) Timer(name string) *Timer {
	r.mu.RLock()
	t, ok := r.timers[name]
	r.mu.RUnlock()
	if ok {
		return t
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.timers[name]; ok {
		return t
	}
	t = newTimer()
	r.timers[name] = t
	return t
}

// Reset zeroes every registered metric (buckets and extremes included)
// without unregistering anything. Tests use it to measure deltas; bound
// metric pointers stay valid. It takes the write lock so a concurrent
// Snapshot (read lock) observes either the pre-reset or the post-reset
// state, never a mix of the two — under the old read-lock version a
// snapshot could report counters from before a reset next to histograms
// from after it (see TestResetSnapshotConsistency).
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, h := range r.hists {
		for i := range h.buckets {
			h.buckets[i].Store(0)
		}
		h.count.Store(0)
		h.sum.Store(0)
		h.min.Store(math.MaxInt64)
		h.max.Store(math.MinInt64)
	}
	for _, t := range r.timers {
		for i := range t.buckets {
			t.buckets[i].Store(0)
		}
		t.count.Store(0)
		t.total.Store(0)
		t.min.Store(math.MaxInt64)
		t.max.Store(math.MinInt64)
	}
}

// addFrom merges every metric of src into r by addition: counters add
// their values, histograms and timers merge counts, sums, extremes and
// buckets. Scope rollup is the only caller — src is a closed scope's
// quiescent child registry, so reading it metric-by-metric is consistent
// enough.
//
// src's maps are snapshotted under its read lock and merged after the
// lock is released: Counter/Histogram/Timer take r.mu, and r and src
// share the same lock identity (both are Registries), so merging while
// holding src.mu would nest Registry.mu inside Registry.mu — the exact
// self-deadlock shape the lockorder analyzer rejects (and a real one
// whenever a rollup ever targeted the source registry).
func (r *Registry) addFrom(src *Registry) {
	src.mu.RLock()
	counters := make(map[string]*Counter, len(src.counters))
	for name, c := range src.counters {
		counters[name] = c
	}
	hists := make(map[string]*Histogram, len(src.hists))
	for name, h := range src.hists {
		hists[name] = h
	}
	timers := make(map[string]*Timer, len(src.timers))
	for name, t := range src.timers {
		timers[name] = t
	}
	src.mu.RUnlock()

	for name, c := range counters {
		if v := c.Value(); v != 0 {
			r.Counter(name).Add(v)
		}
	}
	for name, h := range hists {
		r.Histogram(name, h.bounds).merge(h)
	}
	for name, t := range timers {
		r.Timer(name).merge(t)
	}
}

// Bucket is one histogram bucket in a snapshot: N observations with
// value <= LE (the overflow bucket has LE = math.MaxInt64).
type Bucket struct {
	LE int64 `json:"le"`
	N  int64 `json:"n"`
}

// HistogramSnapshot is the frozen state of one histogram.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Min     int64    `json:"min"`
	Max     int64    `json:"max"`
	Buckets []Bucket `json:"buckets"`
}

// Quantile estimates the q-quantile of the frozen histogram, with the
// same interpolation as the live Histogram.Quantile.
func (hs HistogramSnapshot) Quantile(q float64) float64 {
	return quantileFromBuckets(hs.Buckets, hs.Count, hs.Min, hs.Max, q)
}

// TimerSnapshot is the frozen state of one timer, in nanoseconds.
// Buckets is the non-empty prefix of the power-of-two duration
// distribution; readers of older snapshots see it absent.
type TimerSnapshot struct {
	Count   int64    `json:"count"`
	TotalNs int64    `json:"total_ns"`
	AvgNs   float64  `json:"avg_ns"`
	MinNs   int64    `json:"min_ns"`
	MaxNs   int64    `json:"max_ns"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Quantile estimates the q-quantile in nanoseconds of the frozen timer.
// Snapshots without buckets (older files) fall back to the average.
func (ts TimerSnapshot) Quantile(q float64) float64 {
	if len(ts.Buckets) == 0 {
		return ts.AvgNs
	}
	return quantileFromBuckets(ts.Buckets, ts.Count, ts.MinNs, ts.MaxNs, q)
}

// Snapshot is a point-in-time copy of a registry, shaped for JSON: maps
// keyed by metric name (encoding/json emits map keys sorted, so output
// is deterministic given deterministic values).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Timers     map[string]TimerSnapshot     `json:"timers"`
}

// Snapshot captures the current value of every registered metric.
// Individual metrics are read atomically; the snapshot as a whole is not
// a consistent cut if writers are concurrent, which is fine for the
// monotone quantities recorded here.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := &Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
		Timers:     make(map[string]TimerSnapshot, len(r.timers)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Count:   h.count.Load(),
			Sum:     h.sum.Load(),
			Buckets: h.bucketList(),
		}
		if hs.Count > 0 {
			hs.Min = h.min.Load()
			hs.Max = h.max.Load()
		}
		s.Histograms[name] = hs
	}
	for name, t := range r.timers {
		ts := TimerSnapshot{
			Count:   t.count.Load(),
			TotalNs: t.total.Load(),
		}
		if ts.Count > 0 {
			ts.AvgNs = float64(ts.TotalNs) / float64(ts.Count)
			ts.MinNs = t.min.Load()
			ts.MaxNs = t.max.Load()
			ts.Buckets = t.bucketList()
		}
		s.Timers[name] = ts
	}
	return s
}

// MarshalJSON renders the registry's current snapshot, which makes a
// *Registry usable directly as an expvar.Func payload.
func (r *Registry) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.Snapshot())
}

// WriteJSONFile atomically writes the current snapshot as indented JSON
// to path (temp file + rename, same guarantee as bench.WriteReport).
func (r *Registry) WriteJSONFile(path string) error {
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshal snapshot: %w", err)
	}
	return AtomicWriteFile(path, append(data, '\n'), 0o644)
}

// AtomicWriteFile writes data to path via a temp file in the same
// directory and an atomic rename, so a crashed or interrupted writer can
// never leave a truncated file at path.
func AtomicWriteFile(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("obs: create temp for %s: %w", path, err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("obs: write %s: %w", tmpName, err)
	}
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close()
		return fmt.Errorf("obs: chmod %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("obs: close %s: %w", tmpName, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("obs: rename %s -> %s: %w", tmpName, path, err)
	}
	return nil
}
