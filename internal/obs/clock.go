// Clock indirection for wall-time reads. Everything outside this
// package (and the flag plumbing in engine/cmdutil) takes timestamps
// through Now/Since/Until instead of package time directly — the
// `forbidden` joinlint analyzer enforces it — so tests can freeze or
// script time without sleeping, and every latency measurement in the
// repo is injectable from one seam.

package obs

import (
	"sync/atomic"
	"time"
)

// clockFunc is the active time source; nil means time.Now.
var clockFunc atomic.Pointer[func() time.Time]

// Now returns the current time from the active clock.
func Now() time.Time {
	if f := clockFunc.Load(); f != nil {
		return (*f)()
	}
	return time.Now()
}

// Since returns the time elapsed since t on the active clock.
func Since(t time.Time) time.Duration { return Now().Sub(t) }

// Until returns the duration until t on the active clock.
func Until(t time.Time) time.Duration { return t.Sub(Now()) }

// SetClock installs f as the process-wide time source and returns a
// restore function. Passing nil restores the real clock directly.
// Intended for tests; restore in a defer.
func SetClock(f func() time.Time) (restore func()) {
	var p *func() time.Time
	if f != nil {
		p = &f
	}
	prev := clockFunc.Swap(p)
	return func() { clockFunc.Store(prev) }
}
