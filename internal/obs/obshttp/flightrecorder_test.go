package obshttp_test

// The flight-recorder endpoint test lives in an external test package so
// it can drive a real engine solve through the default recorder without
// obshttp itself depending on the engine.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"joinpebble/internal/engine"
	"joinpebble/internal/family"
	"joinpebble/internal/faultinject"
	"joinpebble/internal/obs"
	"joinpebble/internal/obs/obshttp"
	"joinpebble/internal/solver"
)

// TestFlightRecorderEndpoint drives a fault-injected degraded solve
// through the default recorder and retrieves it over HTTP: the flagged
// record must arrive with its flags, provenance events, and span forest
// intact.
func TestFlightRecorderEndpoint(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Arm(engine.SiteRung, faultinject.Fault{
		Err:   fmt.Errorf("%w: injected for test", solver.ErrBudgetExceeded),
		Times: 1,
	})
	var p engine.Planner
	res, err := p.Run(context.Background(), engine.FromBipartite("spider", family.Spider(3)))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Fatal("run did not degrade")
	}

	srv, err := obshttp.Start("localhost:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck // test teardown
	}()

	resp, err := http.Get("http://" + srv.Addr().String() + obshttp.FlightRecorderPath)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.FlightRecorderSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("endpoint body is not a recorder snapshot: %v\n%s", err, body)
	}
	if snap.FlaggedTotal == 0 {
		t.Fatal("degraded solve not retained in the flagged ring")
	}
	rec := snap.Flagged[len(snap.Flagged)-1]
	var hasDegraded bool
	for _, f := range rec.Summary.Flags {
		hasDegraded = hasDegraded || f == obs.FlagDegraded
	}
	if !hasDegraded {
		t.Fatalf("flags = %v, want degraded", rec.Summary.Flags)
	}
	if len(rec.Summary.Events) != 2 || rec.Summary.Events[0].Err == "" {
		t.Fatalf("events = %+v, want the full attempt provenance", rec.Summary.Events)
	}
	if len(rec.Spans) == 0 || rec.Spans[0].Name != "engine/solve" {
		t.Fatalf("spans = %+v, want the request's span forest", rec.Spans)
	}
}
