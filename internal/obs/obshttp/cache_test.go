package obshttp

import (
	"encoding/json"
	"net/http/httptest"
	"testing"

	"joinpebble/internal/core"
	"joinpebble/internal/graph"
	"joinpebble/internal/schemecache"
)

func scrapeCache(t *testing.T, get func() *schemecache.Cache) cacheReport {
	t.Helper()
	rec := httptest.NewRecorder()
	CacheHandlerFor(get).ServeHTTP(rec, httptest.NewRequest("GET", CachePath, nil))
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var rep cacheReport
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatalf("decode: %v (body: %s)", err, rec.Body.String())
	}
	return rep
}

func TestCacheHandlerNoCache(t *testing.T) {
	rep := scrapeCache(t, func() *schemecache.Cache { return nil })
	if rep.Installed || rep.Stats != nil {
		t.Errorf("nil cache reported as installed: %+v", rep)
	}
}

func TestCacheHandlerReportsStats(t *testing.T) {
	c := schemecache.New(1<<20, 0)
	var fp graph.Fingerprint
	c.Insert(fp, schemecache.Entry{Scheme: core.Scheme{{A: 0, B: 1}}, N: 2, M: 1, Cost: 2, Solver: "exact"})
	if _, err := c.Get(fp); err != nil {
		t.Fatalf("Get: %v", err)
	}
	c.Get(graph.Fingerprint{Hi: 1}) //nolint:errcheck // a deliberate miss

	rep := scrapeCache(t, func() *schemecache.Cache { return c })
	if !rep.Installed || rep.Stats == nil {
		t.Fatalf("cache not reported: %+v", rep)
	}
	if rep.Stats.Inserts != 1 || rep.Stats.Hits != 1 || rep.Stats.Misses != 1 || rep.Stats.Entries != 1 {
		t.Errorf("stats = %+v, want 1 insert / 1 hit / 1 miss / 1 entry", rep.Stats)
	}
	if rep.Stats.Capacity != 1<<20 || rep.Stats.Shards <= 0 {
		t.Errorf("shape = %+v, want capacity 1MiB and shards > 0", rep.Stats)
	}
	// The engine cache-rung counters ride along (possibly zero in this
	// process); the map itself must be present.
	if rep.Counters == nil {
		t.Error("counters map absent")
	}
}
