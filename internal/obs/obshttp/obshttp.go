// Package obshttp exposes an obs.Registry over HTTP: the registry as an
// expvar variable on /debug/vars, the standard net/http/pprof profiling
// handlers on /debug/pprof/, and the scope flight recorder on
// /debug/joinpebble/flightrecorder. It exists as a subpackage so that
// internal/obs itself stays dependency-free — only binaries that opt in
// (the cmd tools' -pprof flag) link net/http.
package obshttp

import (
	"context"
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"joinpebble/internal/obs"
)

// FlightRecorderPath is the debug endpoint serving the process flight
// recorder: the last N scope summaries plus full span dumps for every
// flagged (degraded/faulted/panicked/errored) solve.
const FlightRecorderPath = "/debug/joinpebble/flightrecorder"

// FlightRecorderHandler serves fr's current snapshot as indented JSON.
func FlightRecorderHandler(fr *obs.FlightRecorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		data, err := json.MarshalIndent(fr.Snapshot(), "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(append(data, '\n')) //nolint:errcheck // best-effort response body
	})
}

var publishOnce sync.Map // name -> struct{}; expvar.Publish panics on duplicates

// Publish registers r under name on expvar, so every /debug/vars scrape
// returns a fresh snapshot. Repeated calls with the same name are no-ops.
func Publish(name string, r *obs.Registry) {
	if _, loaded := publishOnce.LoadOrStore(name, struct{}{}); loaded {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// Server is the debug endpoint: an HTTP server bound to one listener,
// serving /debug/vars and /debug/pprof/ on its own mux (never the
// DefaultServeMux, so a binary embedding other handlers cannot collide
// with or accidentally expose ours). It is hardened against misbehaving
// clients — header, read, and idle timeouts — and shuts down gracefully
// under a caller-supplied context.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Start publishes obs.Default as "joinpebble" and begins serving on addr
// (e.g. "localhost:6060") in the background. The listener is bound
// synchronously so bind errors surface to the caller; the Addr method
// reports the bound address, useful with addr ":0".
//
// Timeout policy: slow-loris protection on headers (5s) and request
// bodies (30s), idle keep-alive connections reaped after 2 minutes. No
// write timeout — /debug/pprof/profile?seconds=N legitimately streams
// for N seconds and must not be cut off mid-profile.
func Start(addr string) (*Server, error) {
	Publish("joinpebble", obs.Default)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle(FlightRecorderPath, FlightRecorderHandler(obs.DefaultRecorder))
	s := &Server{
		ln: ln,
		srv: &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       30 * time.Second,
			IdleTimeout:       2 * time.Minute,
		},
	}
	//joinlint:ignore golife deliberate daemon: the debug accept loop runs until Shutdown; a binary that never calls it keeps the listener for its whole life
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Shutdown; a binary without Shutdown dies with the process
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Shutdown stops accepting connections and waits for in-flight requests
// to drain, up to ctx's deadline; past the deadline remaining
// connections are abandoned and ctx.Err() is returned. Safe to call on
// a nil receiver (no server started).
func (s *Server) Shutdown(ctx context.Context) error {
	if s == nil {
		return nil
	}
	return s.srv.Shutdown(ctx)
}

// Serve is the fire-and-forget form of Start for callers that want the
// debug server to live exactly as long as the process: same hardening,
// no shutdown handle.
func Serve(addr string) (net.Addr, error) {
	s, err := Start(addr)
	if err != nil {
		return nil, err
	}
	return s.Addr(), nil
}
