// Package obshttp exposes an obs.Registry over HTTP: the registry as an
// expvar variable on /debug/vars and the standard net/http/pprof
// profiling handlers on /debug/pprof/. It exists as a subpackage so that
// internal/obs itself stays dependency-free — only binaries that opt in
// (the cmd tools' -pprof flag) link net/http.
package obshttp

import (
	"expvar"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on DefaultServeMux
	"sync"

	"joinpebble/internal/obs"
)

var publishOnce sync.Map // name -> struct{}; expvar.Publish panics on duplicates

// Publish registers r under name on expvar, so every /debug/vars scrape
// returns a fresh snapshot. Repeated calls with the same name are no-ops.
func Publish(name string, r *obs.Registry) {
	if _, loaded := publishOnce.LoadOrStore(name, struct{}{}); loaded {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// Serve publishes obs.Default as "joinpebble" and starts an HTTP server
// on addr (e.g. "localhost:6060") in the background, serving /debug/vars
// and /debug/pprof/. The listener is bound synchronously so bind errors
// surface to the caller; the returned address is useful with addr ":0".
func Serve(addr string) (net.Addr, error) {
	Publish("joinpebble", obs.Default)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go http.Serve(ln, nil) //nolint:errcheck // background server dies with the process
	return ln.Addr(), nil
}
