package obshttp

import (
	"encoding/json"
	"net/http"
	"strings"

	"joinpebble/internal/engine"
	"joinpebble/internal/obs"
	"joinpebble/internal/schemecache"
)

// CachePath is the debug endpoint reporting the process-wide scheme
// cache: shard-aggregated schemecache.Stats plus the engine's cache-rung
// counters (hit/miss/insert/evict/translate and the fingerprint timer),
// so one scrape answers both "how full is the cache" and "is the rung
// earning its keep".
const CachePath = "/debug/joinpebble/cache"

// cacheReport is the CachePath JSON payload.
type cacheReport struct {
	// Installed is false when no process-wide cache is set (the binary
	// ran with -cache-off, or never installed one); Stats is then absent.
	Installed bool                  `json:"installed"`
	Stats     *cacheStats           `json:"stats,omitempty"`
	Counters  map[string]int64      `json:"counters"`
	Timers    map[string]timerBrief `json:"timers,omitempty"`
}

// timerBrief is the compact timer view the report uses (full
// distributions stay on /debug/vars).
type timerBrief struct {
	Count   int64   `json:"count"`
	TotalNs int64   `json:"total_ns"`
	AvgNs   float64 `json:"avg_ns"`
}

type cacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Inserts   int64 `json:"inserts"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	Capacity  int64 `json:"capacity"`
	Shards    int   `json:"shards"`
}

// cacheMetricPrefix selects the engine cache-rung metrics out of the
// default registry snapshot (reading the snapshot, rather than binding
// the counters here, keeps each metric name declared in exactly one
// package).
const cacheMetricPrefix = "engine/cache/"

// CacheHandler serves the CachePath report for the process-wide cache
// (engine.SharedCache) and the default registry's cache-rung metrics.
func CacheHandler() http.Handler {
	return CacheHandlerFor(engine.SharedCache)
}

// CacheHandlerFor is CacheHandler with the cache supplied by a getter,
// so a server running against a private cache (tests) reports that one.
func CacheHandlerFor(get func() *schemecache.Cache) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rep := cacheReport{Counters: map[string]int64{}, Timers: map[string]timerBrief{}}
		if c := get(); c != nil {
			st := c.Stats()
			rep.Installed = true
			rep.Stats = &cacheStats{
				Hits:      st.Hits,
				Misses:    st.Misses,
				Inserts:   st.Inserts,
				Evictions: st.Evictions,
				Entries:   st.Entries,
				Bytes:     st.Bytes,
				Capacity:  st.Capacity,
				Shards:    st.Shards,
			}
		}
		snap := obs.Default.Snapshot()
		for name, v := range snap.Counters {
			if strings.HasPrefix(name, cacheMetricPrefix) {
				rep.Counters[name] = v
			}
		}
		for name, ts := range snap.Timers {
			if strings.HasPrefix(name, cacheMetricPrefix) {
				rep.Timers[name] = timerBrief{Count: ts.Count, TotalNs: ts.TotalNs, AvgNs: ts.AvgNs}
			}
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(append(data, '\n')) //nolint:errcheck // best-effort response body
	})
}
