package obshttp

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"

	"joinpebble/internal/obs"
)

// TestServeExposesRegistry spins up the debug server on an ephemeral
// port and checks /debug/vars carries a live snapshot of obs.Default and
// /debug/pprof/ answers.
func TestServeExposesRegistry(t *testing.T) {
	obs.Default.Counter("obshttp_test/hits").Add(3)
	addr, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot bind a local listener: %v", err)
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/vars", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var vars struct {
		Joinpebble obs.Snapshot `json:"joinpebble"`
	}
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars does not parse: %v\n%s", err, body)
	}
	if vars.Joinpebble.Counters["obshttp_test/hits"] < 3 {
		t.Fatalf("snapshot missing counter: %+v", vars.Joinpebble.Counters)
	}

	pp, err := http.Get(fmt.Sprintf("http://%s/debug/pprof/", addr))
	if err != nil {
		t.Fatal(err)
	}
	pp.Body.Close()
	if pp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ returned %d", pp.StatusCode)
	}

	// Publish with the same name again must not panic (expvar would).
	Publish("joinpebble", obs.Default)
}
