package obshttp

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"testing"
	"time"

	"joinpebble/internal/obs"
)

// TestServeExposesRegistry spins up the debug server on an ephemeral
// port and checks /debug/vars carries a live snapshot of obs.Default and
// /debug/pprof/ answers.
func TestServeExposesRegistry(t *testing.T) {
	obs.Default.Counter("obshttp_test/hits").Add(3)
	addr, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot bind a local listener: %v", err)
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/vars", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var vars struct {
		Joinpebble obs.Snapshot `json:"joinpebble"`
	}
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars does not parse: %v\n%s", err, body)
	}
	if vars.Joinpebble.Counters["obshttp_test/hits"] < 3 {
		t.Fatalf("snapshot missing counter: %+v", vars.Joinpebble.Counters)
	}

	pp, err := http.Get(fmt.Sprintf("http://%s/debug/pprof/", addr))
	if err != nil {
		t.Fatal(err)
	}
	pp.Body.Close()
	if pp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ returned %d", pp.StatusCode)
	}

	// Publish with the same name again must not panic (expvar would).
	Publish("joinpebble", obs.Default)
}

// TestGracefulShutdown: a started server answers, Shutdown drains it
// under the caller's context, and the port stops accepting afterwards.
func TestGracefulShutdown(t *testing.T) {
	srv, err := Start("127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot bind a local listener: %v", err)
	}
	url := fmt.Sprintf("http://%s/debug/vars", srv.Addr())
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	if _, err := net.DialTimeout("tcp", srv.Addr().String(), time.Second); err == nil {
		t.Fatal("listener still accepting after Shutdown")
	}
	// Shutdown on a nil server (pprof flag unset) must be a no-op.
	var none *Server
	if err := none.Shutdown(ctx); err != nil {
		t.Fatalf("nil Shutdown: %v", err)
	}
}

// TestTimeoutsConfigured pins the hardening policy: header/read/idle
// timeouts set, write timeout deliberately absent (pprof profile
// streams for its full ?seconds window).
func TestTimeoutsConfigured(t *testing.T) {
	srv, err := Start("127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot bind a local listener: %v", err)
	}
	defer srv.Shutdown(context.Background())
	if srv.srv.ReadHeaderTimeout <= 0 || srv.srv.ReadTimeout <= 0 || srv.srv.IdleTimeout <= 0 {
		t.Fatalf("timeouts unset: header=%v read=%v idle=%v",
			srv.srv.ReadHeaderTimeout, srv.srv.ReadTimeout, srv.srv.IdleTimeout)
	}
	if srv.srv.WriteTimeout != 0 {
		t.Fatalf("write timeout %v would truncate pprof profile streams", srv.srv.WriteTimeout)
	}
	if srv.srv.Handler == http.DefaultServeMux || srv.srv.Handler == nil {
		t.Fatal("debug server must run on its own mux")
	}
}
