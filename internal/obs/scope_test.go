package obs

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// scopeTestVars binds the metric names this file records through; bound
// once so every test shares the global side of the vars.
var (
	cvScope = ScopedCounter("obstest/scope/ops")
	tvScope = ScopedTimer("obstest/scope/latency")
	hvScope = ScopedHistogram("obstest/scope/sizes", Pow2Buckets(8))
)

func TestScopeDisjointAndRollup(t *testing.T) {
	globalBefore := cvScope.In(context.Background()).Value()

	s1 := NewScope("test/solve")
	s2 := NewScope("test/solve")
	s1.SetRecorder(nil)
	s2.SetRecorder(nil)
	ctx1 := WithScope(context.Background(), s1)
	ctx2 := WithScope(context.Background(), s2)

	cvScope.Add(ctx1, 3)
	cvScope.Add(ctx2, 5)
	tvScope.Observe(ctx1, 10*time.Nanosecond)
	hvScope.Observe(ctx2, 4)

	if got := s1.Registry().Counter("obstest/scope/ops").Value(); got != 3 {
		t.Fatalf("scope1 counter = %d, want 3", got)
	}
	if got := s2.Registry().Counter("obstest/scope/ops").Value(); got != 5 {
		t.Fatalf("scope2 counter = %d, want 5", got)
	}
	if got := s2.Registry().Timer("obstest/scope/latency").Count(); got != 0 {
		t.Fatalf("scope2 timer count = %d, want 0 (disjoint from scope1)", got)
	}
	// Nothing reaches the global registry while the scopes are open.
	if got := cvScope.In(context.Background()).Value(); got != globalBefore {
		t.Fatalf("global counter moved to %d while scopes open, want %d", got, globalBefore)
	}

	s1.Close()
	s2.Close()
	if got, want := cvScope.In(context.Background()).Value(), globalBefore+8; got != want {
		t.Fatalf("global counter after rollup = %d, want %d (sum of scopes)", got, want)
	}
}

func TestScopeRollupMergesTimers(t *testing.T) {
	tm := Default.Timer("obstest/scope/latency")
	before := tm.Count()

	s := NewScope("test/solve")
	s.SetRecorder(nil)
	ctx := WithScope(context.Background(), s)
	for d := 1; d <= 16; d++ {
		tvScope.Observe(ctx, time.Duration(d))
	}
	s.Close()

	if got, want := tm.Count(), before+16; got != want {
		t.Fatalf("global timer count = %d, want %d", got, want)
	}
}

func TestScopeNilSafe(t *testing.T) {
	var s *Scope
	s.Flag(FlagDegraded)
	s.Note("k", "v")
	s.Event("rung/exact", "boom", time.Millisecond)
	s.StartSpan("nil/span").End()
	s.SetRecorder(nil)
	if s.ID() != 0 || s.Name() != "" || s.Registry() != nil || s.Snapshot() != nil {
		t.Fatal("nil scope accessors must return zero values")
	}
	if sum := s.Close(); sum.ID != 0 {
		t.Fatalf("nil scope Close returned %+v", sum)
	}
	if got := ScopeFrom(context.Background()); got != nil {
		t.Fatalf("unscoped context yielded scope %v", got)
	}
	if got := ScopeFrom(nil); got != nil { //nolint:staticcheck // nil ctx is the documented edge case
		t.Fatalf("nil context yielded scope %v", got)
	}
}

func TestScopeCloseIdempotent(t *testing.T) {
	fr := NewFlightRecorder(4, 2)
	s := NewScope("test/idempotent")
	s.SetRecorder(fr)
	first := s.Close()
	if first.ID != s.ID() || first.Name != "test/idempotent" {
		t.Fatalf("first Close returned %+v", first)
	}
	if again := s.Close(); again.ID != 0 {
		t.Fatalf("second Close returned %+v, want zero summary", again)
	}
	if snap := fr.Snapshot(); snap.Total != 1 {
		t.Fatalf("recorder saw %d records, want 1", snap.Total)
	}
}

func TestScopeFlaggedRecordKeepsSpans(t *testing.T) {
	fr := NewFlightRecorder(4, 2)
	s := NewScope("test/degraded")
	s.SetRecorder(fr)
	root := s.StartSpan("engine/solve")
	child := root.Start("rung/exact")
	child.End()
	root.End()
	s.Flag(FlagDegraded)
	s.Flag(FlagDegraded) // dedup
	s.Event("rung/exact", "search budget exceeded", time.Millisecond)
	s.Event("rung/approx-1.25", "", 2*time.Millisecond)
	s.Note("family", "path")
	sum := s.Close()

	if got := sum.Flags; len(got) != 1 || got[0] != FlagDegraded {
		t.Fatalf("flags = %v, want [degraded]", got)
	}
	if sum.SpanCount != 2 {
		t.Fatalf("span count = %d, want 2", sum.SpanCount)
	}
	if len(sum.Events) != 2 || sum.Events[0].Err != "search budget exceeded" {
		t.Fatalf("events = %+v", sum.Events)
	}
	snap := fr.Snapshot()
	if snap.FlaggedTotal != 1 || len(snap.Flagged) != 1 {
		t.Fatalf("flagged ring: total=%d len=%d, want 1/1", snap.FlaggedTotal, len(snap.Flagged))
	}
	rec := snap.Flagged[0]
	if len(rec.Spans) != 2 || rec.Spans[0].Name != "engine/solve" || rec.Spans[1].Parent != rec.Spans[0].ID {
		t.Fatalf("flagged record spans = %+v, want the full forest", rec.Spans)
	}
	if rec.Summary.Notes["family"] != "path" {
		t.Fatalf("notes = %v", rec.Summary.Notes)
	}
}

func TestScopeFaultFlag(t *testing.T) {
	prev := FaultFiredTotal
	defer func() { FaultFiredTotal = prev }()
	var fired int64
	FaultFiredTotal = func() int64 { return fired }

	s := NewScope("test/faulted")
	s.SetRecorder(nil)
	fired = 3 // a site fires while the scope is open
	sum := s.Close()
	if len(sum.Flags) != 1 || sum.Flags[0] != FlagFault {
		t.Fatalf("flags = %v, want [fault]", sum.Flags)
	}

	quiet := NewScope("test/quiet")
	quiet.SetRecorder(nil)
	if sum := quiet.Close(); len(sum.Flags) != 0 {
		t.Fatalf("unfaulted scope flags = %v, want none", sum.Flags)
	}
}

func TestStartSpanCtxRoutesToScope(t *testing.T) {
	s := NewScope("test/spans")
	s.SetRecorder(nil)
	ctx := WithScope(context.Background(), s)
	sp := StartSpanCtx(ctx, "engine/solve")
	sp.End()
	if got := s.Tracer().Len(); got != 1 {
		t.Fatalf("scope tracer has %d spans, want 1", got)
	}
	// Unscoped with tracing off: nil span, no panic.
	StartSpanCtx(context.Background(), "unscoped").End()
	s.Close()
}

func TestScopeCloseAbsorbsIntoActiveTracer(t *testing.T) {
	host := NewTracer()
	SetTracer(host)
	defer SetTracer(nil)

	native := host.Start("native")
	native.End()

	s := NewScope("test/absorb")
	s.SetRecorder(nil)
	sp := s.StartSpan("scoped/root")
	sp.Start("scoped/child").End()
	sp.End()
	s.Close()

	recs := host.Records()
	if len(recs) != 3 {
		t.Fatalf("host tracer has %d records, want 3", len(recs))
	}
	if recs[0].ID != 1 || recs[0].Name != "native" {
		t.Fatalf("native span renumbered: %+v", recs[0])
	}
	if recs[1].ID != 2 || recs[1].Name != "scoped/root" || recs[1].Parent != 0 {
		t.Fatalf("absorbed root: %+v", recs[1])
	}
	if recs[2].ID != 3 || recs[2].Parent != 2 {
		t.Fatalf("absorbed child must re-parent past native ids: %+v", recs[2])
	}
}

func TestScopeTraceDirWritesChromeFile(t *testing.T) {
	dir := t.TempDir()
	SetScopeTraceDir(dir)
	defer SetScopeTraceDir("")

	s := NewScope("engine/solve")
	s.SetRecorder(nil)
	s.StartSpan("rung/exact").End()
	s.Close()

	matches, err := filepath.Glob(filepath.Join(dir, "scope-*-engine-solve.trace.json"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("trace files = %v (err %v), want exactly one", matches, err)
	}
	data, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	var doc ChromeTrace
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace file is not chrome trace JSON: %v", err)
	}
	if len(doc.TraceEvents) != 1 || doc.TraceEvents[0].Name != "rung/exact" {
		t.Fatalf("trace events = %+v", doc.TraceEvents)
	}
}

// TestConcurrentScopesRace exercises concurrent scope creation, recording
// and rollup; run under -race it pins the locking of Registry.addFrom,
// the flight recorder rings, and tracer absorption.
func TestConcurrentScopesRace(t *testing.T) {
	fr := NewFlightRecorder(8, 4)
	global := Default.Counter("obstest/scope/ops")
	before := global.Value()
	const workers = 8
	const perScope = 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := NewScope("test/race")
			s.SetRecorder(fr)
			if w%2 == 0 {
				s.Flag(FlagDegraded)
			}
			ctx := WithScope(context.Background(), s)
			counter := cvScope.In(ctx) // hoisted, as hot paths do
			var inner sync.WaitGroup
			for g := 0; g < 4; g++ {
				inner.Add(1)
				go func() {
					defer inner.Done()
					sp := StartSpanCtx(ctx, "component")
					for i := 0; i < perScope/4; i++ {
						counter.Inc()
					}
					sp.End()
				}()
			}
			inner.Wait()
			if got := s.Registry().Counter("obstest/scope/ops").Value(); got != perScope {
				t.Errorf("scope counter = %d, want %d", got, perScope)
			}
			s.Close()
		}(w)
	}
	wg.Wait()
	if got, want := global.Value(), before+workers*perScope; got != want {
		t.Fatalf("global after concurrent rollup = %d, want %d", got, want)
	}
	snap := fr.Snapshot()
	if snap.Total != workers || snap.FlaggedTotal != workers/2 {
		t.Fatalf("recorder totals = %d/%d, want %d/%d", snap.Total, snap.FlaggedTotal, workers, workers/2)
	}
}
