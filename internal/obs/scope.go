package obs

// Request-scoped observability. A Scope is a per-request child registry
// plus a private span tracer: instrumentation sites that thread a
// context record into the scope carried by it, so two concurrent solves
// keep fully disjoint counters and span forests. On Close the scope
// rolls its registry up into the process-global Default by addition —
// the global registry always equals the sum of every closed scope plus
// whatever ran unscoped — hands its summary to the flight recorder, and
// folds its spans into the process-wide tracer so `-trace` output is
// unchanged.
//
// Hot paths do not pay for scoping: a *CounterVar (or TimerVar /
// HistogramVar) resolves the context once, outside the loop, via In(ctx)
// and then uses the returned plain *Counter — the same single atomic add
// as before, preserving the //joinpebble:hotpath no-alloc invariant.

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// FaultFiredTotal reports the process-wide number of fault-site
// activations. internal/faultinject wires it at init; it stays nil in
// binaries that do not link that package. Scopes sample it at open and
// close to flag any request during which a site fired — process-wide,
// so under concurrent injection a bystander scope may be flagged too,
// which for a flight recorder is the right kind of false positive.
var FaultFiredTotal func() int64

// Scope flag values attached by the engine and by Close itself.
const (
	FlagDegraded = "degraded" // the solve fell down at least one ladder rung
	FlagPanic    = "panic"    // a recovered panic was part of the attempt chain
	FlagFault    = "fault"    // a fault-injection site fired while the scope was open
	FlagError    = "error"    // the request failed outright
)

// Bookkeeping metrics, recorded on the global registry directly (never
// scoped — they describe the scope machinery itself).
var (
	cScopeOpened  = Default.Counter("obs/scope/opened")
	cScopeClosed  = Default.Counter("obs/scope/closed")
	cScopeFlagged = Default.Counter("obs/scope/flagged")
)

var scopeSeq atomic.Int64

// scopeTraceDir, when set, makes every Scope.Close write its span forest
// as a Chrome trace_event JSON file into the directory (the -trace-out
// flag in cmdutil).
var scopeTraceDir atomic.Pointer[string]

// SetScopeTraceDir directs every subsequently closed Scope to dump its
// trace into dir as Chrome trace_event JSON ("" disables). The caller
// is responsible for the directory existing.
func SetScopeTraceDir(dir string) {
	if dir == "" {
		scopeTraceDir.Store(nil)
		return
	}
	scopeTraceDir.Store(&dir)
}

// ScopeEvent is one step of a request's attempt provenance — the engine
// records one per ladder rung, so a degraded solve's summary shows which
// solvers failed, with what error, before one answered.
type ScopeEvent struct {
	Name  string `json:"name"`
	Err   string `json:"err,omitempty"`
	DurNs int64  `json:"dur_ns"`
}

// ScopeSummary is the frozen footprint of a closed scope: identity,
// wall-clock window, flags, attempt provenance, and the request's own
// metric snapshot.
type ScopeSummary struct {
	ID        int64             `json:"id"`
	Name      string            `json:"name"`
	Start     time.Time         `json:"start"`
	DurNs     int64             `json:"dur_ns"`
	Flags     []string          `json:"flags,omitempty"`
	Notes     map[string]string `json:"notes,omitempty"`
	Events    []ScopeEvent      `json:"events,omitempty"`
	SpanCount int               `json:"span_count"`
	Metrics   *Snapshot         `json:"metrics,omitempty"`
}

// Scope is a per-request metric registry and span collector. Create with
// NewScope, thread with WithScope, and Close exactly once when the
// request finishes. All methods are safe for concurrent use (the solver's
// component pool records into the scope from many goroutines) and
// nil-safe, so unscoped code paths cost a context lookup and nothing
// else.
type Scope struct {
	id        int64
	name      string
	reg       *Registry
	tracer    *Tracer
	start     time.Time
	began     time.Time // monotonic anchor for the summary duration
	faultBase int64
	recorder  *FlightRecorder

	//joinlint:lockrank obs-scope 10
	mu     sync.Mutex
	flags  []string
	notes  map[string]string
	events []ScopeEvent
	closed bool
}

// NewScope opens a scope named name (a span-grammar path, e.g.
// "engine/solve"). The scope records into DefaultRecorder on Close;
// tests may swap the recorder with SetRecorder before closing.
func NewScope(name string) *Scope {
	s := &Scope{
		id:       scopeSeq.Add(1),
		name:     name,
		reg:      NewRegistry(),
		tracer:   NewTracer(),
		start:    Now(),
		began:    time.Now(),
		recorder: DefaultRecorder,
	}
	if FaultFiredTotal != nil {
		s.faultBase = FaultFiredTotal()
	}
	cScopeOpened.Inc()
	return s
}

// ID returns the scope's process-unique sequence number.
func (s *Scope) ID() int64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Name returns the scope's name.
func (s *Scope) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Registry returns the scope's private metric registry (nil for a nil
// scope). Prefer the *Var handles for instrumentation; this is for
// reading a request's own metrics back.
func (s *Scope) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.reg
}

// Tracer returns the scope's private tracer (nil — the disabled tracer —
// for a nil scope).
func (s *Scope) Tracer() *Tracer {
	if s == nil {
		return nil
	}
	return s.tracer
}

// StartSpan opens a root span on the scope's tracer. Nil-safe.
func (s *Scope) StartSpan(name string) *Span { return s.Tracer().Start(name) }

// SetRecorder redirects the summary Close hands off (nil drops it).
// Call before Close; tests use it to observe recordings in isolation.
func (s *Scope) SetRecorder(fr *FlightRecorder) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.recorder = fr
	s.mu.Unlock()
}

// Flag marks the scope with one of the Flag* values (deduplicated).
// A flagged scope's full span forest is retained by the flight recorder.
func (s *Scope) Flag(flag string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, f := range s.flags {
		if f == flag {
			return
		}
	}
	s.flags = append(s.flags, flag)
}

// Flags returns a copy of the flags set so far.
func (s *Scope) Flags() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.flags...)
}

// Note attaches a key/value annotation (last write wins).
func (s *Scope) Note(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.notes == nil {
		s.notes = make(map[string]string, 4)
	}
	s.notes[key] = value
	s.mu.Unlock()
}

// Event appends one attempt-provenance step: name identifies the step
// (a solver name, a rung), err is empty on success, d is the elapsed
// time of the step.
func (s *Scope) Event(name, err string, d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.events = append(s.events, ScopeEvent{Name: name, Err: err, DurNs: int64(d)})
	s.mu.Unlock()
}

// Snapshot captures the scope's private registry.
func (s *Scope) Snapshot() *Snapshot {
	if s == nil {
		return nil
	}
	return s.reg.Snapshot()
}

// summary freezes the scope's footprint. Callers must hold s.mu.
func (s *Scope) summaryLocked(spanCount int) ScopeSummary {
	sum := ScopeSummary{
		ID:        s.id,
		Name:      s.name,
		Start:     s.start,
		DurNs:     time.Since(s.began).Nanoseconds(),
		Flags:     append([]string(nil), s.flags...),
		Events:    append([]ScopeEvent(nil), s.events...),
		SpanCount: spanCount,
		Metrics:   s.reg.Snapshot(),
	}
	if len(s.notes) > 0 {
		sum.Notes = make(map[string]string, len(s.notes))
		for k, v := range s.notes {
			sum.Notes[k] = v
		}
	}
	return sum
}

// Close finishes the scope: it flags a fault-site firing, rolls the
// private registry up into the global Default (global = sum of scopes),
// hands the summary — with the full span forest when flagged — to the
// flight recorder, folds the spans into the process-wide tracer, and
// writes a per-request Chrome trace file when SetScopeTraceDir is in
// effect. Idempotent and nil-safe; the first call returns the summary,
// later calls return a zero summary.
func (s *Scope) Close() ScopeSummary {
	if s == nil {
		return ScopeSummary{}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ScopeSummary{}
	}
	s.closed = true
	if FaultFiredTotal != nil && FaultFiredTotal() > s.faultBase {
		s.flags = append(s.flags, FlagFault)
	}
	spans := s.tracer.Records()
	sum := s.summaryLocked(len(spans))
	recorder := s.recorder
	s.mu.Unlock()

	Default.addFrom(s.reg)
	cScopeClosed.Inc()
	if len(sum.Flags) > 0 {
		cScopeFlagged.Inc()
	}
	if recorder != nil {
		recorder.Record(sum, spans)
	}
	ActiveTracer().absorb(s.tracer)
	if dir := scopeTraceDir.Load(); dir != nil {
		// Trace dumps are best-effort: a full disk must not fail the solve
		// that produced the trace.
		_ = s.writeTraceFile(*dir, spans)
	}
	return sum
}

// writeTraceFile dumps spans as Chrome trace_event JSON into dir under a
// name derived from the scope identity.
func (s *Scope) writeTraceFile(dir string, spans []SpanRecord) error {
	var sb strings.Builder
	if err := WriteChromeTrace(&sb, spans); err != nil {
		return err
	}
	name := fmt.Sprintf("scope-%06d-%s.trace.json", s.id, strings.ReplaceAll(s.name, "/", "-"))
	return AtomicWriteFile(dir+"/"+name, []byte(sb.String()), 0o644)
}

// scopeKey is the context key carrying a *Scope.
type scopeKey struct{}

// WithScope returns a context carrying s; instrumentation reached
// through it records into the scope instead of the global registry.
func WithScope(ctx context.Context, s *Scope) context.Context {
	return context.WithValue(ctx, scopeKey{}, s)
}

// ScopeFrom extracts the scope carried by ctx (nil when unscoped — the
// returned nil *Scope absorbs all method calls).
func ScopeFrom(ctx context.Context) *Scope {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(scopeKey{}).(*Scope)
	return s
}

// StartSpanCtx opens a root span on the scope carried by ctx, falling
// back to the process-wide tracer when unscoped. Like StartSpan it is
// free when both are off: a context lookup, a nil check, no allocation.
func StartSpanCtx(ctx context.Context, name string) *Span {
	if s := ScopeFrom(ctx); s != nil {
		return s.tracer.Start(name)
	}
	return active.Load().Start(name)
}

// CounterVar is a scope-aware counter binding: one package-level var per
// instrumentation site, resolving per call to the scope's counter when
// ctx carries one and to the eagerly-registered global counter otherwise.
// Hot loops call In(ctx) once outside the loop and use the plain
// *Counter it returns.
type CounterVar struct {
	name   string
	global *Counter
}

// ScopedCounter binds name on the Default registry and returns the
// scope-aware handle.
func ScopedCounter(name string) *CounterVar {
	return &CounterVar{name: name, global: Default.Counter(name)}
}

// In resolves the counter for ctx: the scope's when present, else the
// global one. The result is a plain *Counter — hoist it out of loops.
func (v *CounterVar) In(ctx context.Context) *Counter {
	if s := ScopeFrom(ctx); s != nil {
		return s.reg.Counter(v.name)
	}
	return v.global
}

// Inc adds 1 to the counter resolved for ctx.
func (v *CounterVar) Inc(ctx context.Context) { v.In(ctx).Inc() }

// Add adds n to the counter resolved for ctx.
func (v *CounterVar) Add(ctx context.Context, n int64) { v.In(ctx).Add(n) }

// TimerVar is the scope-aware analogue of CounterVar for timers.
type TimerVar struct {
	name   string
	global *Timer
}

// ScopedTimer binds name on the Default registry and returns the
// scope-aware handle.
func ScopedTimer(name string) *TimerVar {
	return &TimerVar{name: name, global: Default.Timer(name)}
}

// In resolves the timer for ctx: the scope's when present, else the
// global one.
func (v *TimerVar) In(ctx context.Context) *Timer {
	if s := ScopeFrom(ctx); s != nil {
		return s.reg.Timer(v.name)
	}
	return v.global
}

// Observe records d on the timer resolved for ctx.
func (v *TimerVar) Observe(ctx context.Context, d time.Duration) { v.In(ctx).Observe(d) }

// ObserveSince records the elapsed time since start on the timer
// resolved for ctx.
func (v *TimerVar) ObserveSince(ctx context.Context, start time.Time) {
	v.In(ctx).ObserveSince(start)
}

// HistogramVar is the scope-aware analogue of CounterVar for histograms;
// the bucket layout is fixed at binding time so the scope-side histogram
// always matches the global one (rollup merges bucket-by-bucket).
type HistogramVar struct {
	name   string
	bounds []int64
	global *Histogram
}

// ScopedHistogram binds name with the given bucket bounds on the Default
// registry and returns the scope-aware handle.
func ScopedHistogram(name string, bounds []int64) *HistogramVar {
	b := append([]int64(nil), bounds...)
	return &HistogramVar{name: name, bounds: b, global: Default.Histogram(name, b)}
}

// In resolves the histogram for ctx: the scope's when present, else the
// global one.
func (v *HistogramVar) In(ctx context.Context) *Histogram {
	if s := ScopeFrom(ctx); s != nil {
		return s.reg.Histogram(v.name, v.bounds)
	}
	return v.global
}

// Observe records one value on the histogram resolved for ctx.
func (v *HistogramVar) Observe(ctx context.Context, val int64) { v.In(ctx).Observe(val) }
