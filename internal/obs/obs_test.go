package obs

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCounterConcurrent hammers one counter from many goroutines; run
// with -race this also proves the increment path is data-race free.
func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test/hammer")
	const workers, perWorker = 16, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
}

// TestHistogramConcurrent checks that concurrent observations lose
// nothing: count, sum, extremes, and the bucket totals all agree.
func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test/hist", Pow2Buckets(10))
	const workers, perWorker = 8, 4000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(int64(w*perWorker+i) % 2000)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("count = %d, want %d", got, workers*perWorker)
	}
	// Every worker observes each residue mod 2000 the same number of
	// times, so the sum is workers * perWorker/2000 * sum(0..1999).
	wantSum := int64(workers) * int64(perWorker/2000) * (1999 * 2000 / 2)
	if got := h.Sum(); got != wantSum {
		t.Fatalf("sum = %d, want %d", got, wantSum)
	}
	snap := r.Snapshot().Histograms["test/hist"]
	if snap.Min != 0 || snap.Max != 1999 {
		t.Fatalf("extremes = [%d, %d], want [0, 1999]", snap.Min, snap.Max)
	}
	var bucketTotal int64
	for _, b := range snap.Buckets {
		bucketTotal += b.N
	}
	if bucketTotal != snap.Count {
		t.Fatalf("buckets hold %d observations, count says %d", bucketTotal, snap.Count)
	}
}

// TestHistogramBucketBoundaries pins the "le" semantics: an observation
// lands in the first bucket whose bound it does not exceed.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test/bounds", []int64{1, 2, 4})
	for _, v := range []int64{0, 1, 2, 3, 4, 5, 100} {
		h.Observe(v)
	}
	snap := r.Snapshot().Histograms["test/bounds"]
	want := []int64{2, 1, 2, 2} // le 1: {0,1}; le 2: {2}; le 4: {3,4}; overflow: {5,100}
	for i, n := range want {
		if snap.Buckets[i].N != n {
			t.Fatalf("bucket %d = %d, want %d (snapshot %+v)", i, snap.Buckets[i].N, n, snap)
		}
	}
	if snap.Buckets[3].LE != math.MaxInt64 {
		t.Fatalf("overflow bucket LE = %d, want MaxInt64", snap.Buckets[3].LE)
	}
}

func TestTimer(t *testing.T) {
	r := NewRegistry()
	tm := r.Timer("test/timer")
	tm.Observe(10 * time.Millisecond)
	tm.Observe(30 * time.Millisecond)
	if tm.Count() != 2 || tm.Total() != 40*time.Millisecond {
		t.Fatalf("timer count=%d total=%v", tm.Count(), tm.Total())
	}
	snap := r.Snapshot().Timers["test/timer"]
	if snap.MinNs != int64(10*time.Millisecond) || snap.MaxNs != int64(30*time.Millisecond) {
		t.Fatalf("extremes = [%d, %d]", snap.MinNs, snap.MaxNs)
	}
	if snap.AvgNs != float64(20*time.Millisecond) {
		t.Fatalf("avg = %v", snap.AvgNs)
	}
}

// TestTimerConcurrent exists for the -race run: many goroutines feeding
// one timer.
func TestTimerConcurrent(t *testing.T) {
	r := NewRegistry()
	tm := r.Timer("test/timer-hammer")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				tm.Observe(time.Duration(i))
			}
		}()
	}
	wg.Wait()
	if tm.Count() != 16000 {
		t.Fatalf("count = %d, want 16000", tm.Count())
	}
}

// TestRegistryGetOrCreate checks lookup stability: the same name yields
// the same metric, also under concurrent first access.
func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	ptrs := make([]*Counter, 8)
	var wg sync.WaitGroup
	for i := range ptrs {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			ptrs[i] = r.Counter("test/shared")
		}()
	}
	wg.Wait()
	for i := 1; i < len(ptrs); i++ {
		if ptrs[i] != ptrs[0] {
			t.Fatal("concurrent Counter calls returned distinct counters")
		}
	}
	if r.Histogram("test/h", Pow2Buckets(4)) != r.Histogram("test/h", Pow2Buckets(9)) {
		t.Fatal("Histogram with same name returned distinct histograms")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a/count").Add(7)
	r.Histogram("a/hist", []int64{1, 10}).Observe(5)
	r.Timer("a/time").Observe(time.Second)
	data, err := json.Marshal(r) // Registry marshals its snapshot
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["a/count"] != 7 {
		t.Fatalf("counter lost: %+v", back)
	}
	if h := back.Histograms["a/hist"]; h.Count != 1 || h.Sum != 5 {
		t.Fatalf("histogram lost: %+v", h)
	}
	if tm := back.Timers["a/time"]; tm.Count != 1 || tm.TotalNs != int64(time.Second) {
		t.Fatalf("timer lost: %+v", tm)
	}
}

func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	h := r.Histogram("y", []int64{10})
	tm := r.Timer("z")
	c.Add(5)
	h.Observe(3)
	tm.Observe(time.Millisecond)
	r.Reset()
	if c.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || tm.Count() != 0 {
		t.Fatal("Reset left residue")
	}
	// Metrics stay bound and usable after reset.
	h.Observe(4)
	snap := r.Snapshot().Histograms["y"]
	if snap.Count != 1 || snap.Min != 4 || snap.Max != 4 {
		t.Fatalf("post-reset observe mangled: %+v", snap)
	}
}

func TestWriteJSONFileAtomic(t *testing.T) {
	dir := t.TempDir()
	r := NewRegistry()
	r.Counter("w").Add(3)
	path := filepath.Join(dir, "m.json")
	if err := r.WriteJSONFile(path); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("written snapshot does not parse: %v", err)
	}
	if snap.Counters["w"] != 3 {
		t.Fatalf("snapshot content wrong: %+v", snap)
	}
}
