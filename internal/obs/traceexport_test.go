package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestChromeEventsNestingAndTracks(t *testing.T) {
	// A root with a nested child share a track; a sibling overlapping the
	// root in time must fan out to its own.
	recs := []SpanRecord{
		{ID: 1, Parent: 0, Name: "solve", StartNs: 0, DurNs: 10_000},
		{ID: 2, Parent: 1, Name: "component", StartNs: 1_000, DurNs: 2_000},
		{ID: 3, Parent: 1, Name: "component", StartNs: 1_500, DurNs: 2_000}, // overlaps span 2
		{ID: 4, Parent: 1, Name: "component", StartNs: 4_000, DurNs: 1_000}, // fits back on track 0
	}
	evs := ChromeEvents(recs)
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	if evs[0].Tid != 0 || evs[1].Tid != 0 {
		t.Fatalf("root and first child tracks = %d,%d, want 0,0", evs[0].Tid, evs[1].Tid)
	}
	if evs[2].Tid == evs[1].Tid {
		t.Fatalf("overlapping siblings share track %d", evs[2].Tid)
	}
	if evs[3].Tid != 0 {
		t.Fatalf("non-overlapping child track = %d, want 0 (parent's)", evs[3].Tid)
	}
	if evs[1].Ts != 1.0 || evs[1].Dur != 2.0 {
		t.Fatalf("ts/dur = %v/%v µs, want 1/2", evs[1].Ts, evs[1].Dur)
	}
	if evs[2].Args["id"] != 3 || evs[2].Args["parent"] != 1 {
		t.Fatalf("args = %v, want id/parent preserved", evs[2].Args)
	}
	if evs[0].Ph != "X" || evs[0].Pid != 1 {
		t.Fatalf("event shape = %+v", evs[0])
	}
}

func TestChromeEventsUnendedSpanHoldsTrack(t *testing.T) {
	recs := []SpanRecord{
		{ID: 1, Name: "stuck", StartNs: 0, DurNs: -1},
		{ID: 2, Name: "later", StartNs: 5_000, DurNs: 1_000},
	}
	evs := ChromeEvents(recs)
	if evs[0].Dur != 0 {
		t.Fatalf("unended span dur = %v, want 0", evs[0].Dur)
	}
	// The unended span never closes its interval, so the later span still
	// nests under it — same track, proper nesting preserved.
	if evs[1].Tid != 0 {
		t.Fatalf("span after an unended one got track %d, want 0 (nested under the open span)", evs[1].Tid)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("solve")
	root.Start("child").End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc ChromeTrace
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ns" || len(doc.TraceEvents) != 2 {
		t.Fatalf("doc = %+v", doc)
	}

	var nilTracer *Tracer
	buf.Reset()
	if err := nilTracer.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("nil tracer: %v", err)
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != 0 {
		t.Fatalf("nil tracer events = %+v", doc.TraceEvents)
	}
}
