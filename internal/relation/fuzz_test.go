package relation

import (
	"strings"
	"testing"
)

// FuzzRead checks the relation parser never panics and round-trips what
// it accepts.
func FuzzRead(f *testing.F) {
	f.Add("relation r int\n1\n-2\n")
	f.Add("relation s string\n\"a b\"\n")
	f.Add("relation t set\n{1,2}\n{}\n")
	f.Add("relation q rect\n0 0 1 1\n")
	f.Add("relation broken bogus\n")
	f.Add("relation r int\nnotanumber\n")
	f.Fuzz(func(t *testing.T, input string) {
		rel, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		var sb strings.Builder
		if err := rel.Write(&sb); err != nil {
			t.Fatal(err)
		}
		back, err := Read(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("round trip rejected: %v\noriginal input: %q\nserialized: %q", err, input, sb.String())
		}
		if back.Kind != rel.Kind || back.Len() != rel.Len() {
			t.Fatalf("round trip changed shape: %v/%d vs %v/%d", back.Kind, back.Len(), rel.Kind, rel.Len())
		}
	})
}
