package relation

import (
	"strings"
	"testing"

	"joinpebble/internal/sets"
	"joinpebble/internal/spatial"
)

func TestKindStringRoundTrip(t *testing.T) {
	for _, k := range []Kind{KindInt, KindString, KindSet, KindRect} {
		back, err := ParseKind(k.String())
		if err != nil || back != k {
			t.Fatalf("kind %v round trip: %v %v", k, back, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Fatal("unknown kind must fail")
	}
}

func TestTypedAppendAndExtract(t *testing.T) {
	r := FromInts("r", []int64{3, 1, 3})
	if r.Len() != 3 {
		t.Fatal("len")
	}
	vs := r.Ints()
	if vs[0] != 3 || vs[1] != 1 || vs[2] != 3 {
		t.Fatalf("ints=%v", vs)
	}

	s := FromSets("s", []sets.Set{sets.New(1, 2)})
	if !s.Sets()[0].Equal(sets.New(1, 2)) {
		t.Fatal("sets")
	}

	q := FromRects("q", []spatial.Rect{spatial.NewRect(0, 0, 1, 1)})
	if q.Rects()[0] != spatial.NewRect(0, 0, 1, 1) {
		t.Fatal("rects")
	}

	w := FromStrings("w", []string{"a", "b"})
	if w.Strings()[1] != "b" {
		t.Fatal("strings")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := New("r", KindInt)
	defer func() {
		if recover() == nil {
			t.Fatal("appending a string to an int relation must panic")
		}
	}()
	r.AppendString("nope")
}

func TestWriteReadRoundTripInt(t *testing.T) {
	r := FromInts("nums", []int64{-5, 0, 42})
	roundTrip(t, r)
}

func TestWriteReadRoundTripString(t *testing.T) {
	r := FromStrings("names", []string{"hello world", "with \"quotes\"", ""})
	roundTrip(t, r)
}

func TestWriteReadRoundTripSet(t *testing.T) {
	r := FromSets("tags", []sets.Set{sets.New(), sets.New(3, 1, 4)})
	roundTrip(t, r)
}

func TestWriteReadRoundTripRect(t *testing.T) {
	r := FromRects("boxes", []spatial.Rect{
		spatial.NewRect(0, 0, 1.5, 2.25),
		spatial.NewRect(-3, -4, -1, -2),
	})
	roundTrip(t, r)
}

func roundTrip(t *testing.T, r *Relation) {
	t.Helper()
	var sb strings.Builder
	if err := r.Write(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("read: %v (input %q)", err, sb.String())
	}
	if back.Name != r.Name || back.Kind != r.Kind || back.Len() != r.Len() {
		t.Fatalf("header changed: %s/%v/%d vs %s/%v/%d",
			back.Name, back.Kind, back.Len(), r.Name, r.Kind, r.Len())
	}
	for i := range r.Tuples {
		a, b := r.Tuples[i], back.Tuples[i]
		switch r.Kind {
		case KindInt:
			if a.Int != b.Int {
				t.Fatalf("tuple %d: %d vs %d", i, a.Int, b.Int)
			}
		case KindString:
			if a.Str != b.Str {
				t.Fatalf("tuple %d: %q vs %q", i, a.Str, b.Str)
			}
		case KindSet:
			if !a.Set.Equal(b.Set) {
				t.Fatalf("tuple %d: %v vs %v", i, a.Set, b.Set)
			}
		case KindRect:
			if a.Rect != b.Rect {
				t.Fatalf("tuple %d: %v vs %v", i, a.Rect, b.Rect)
			}
		}
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"",
		"notrelation r int\n",
		"relation r bogus\n",
		"relation r int\nxyz\n",
		"relation r rect\n1 2\n",
		"relation r set\n[1,2]\n",
	}
	for _, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("input %q: want error", in)
		}
	}
}

func TestReadSkipsComments(t *testing.T) {
	in := "# comment\nrelation r int\n\n1\n# more\n2\n"
	r, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("len=%d", r.Len())
	}
}
