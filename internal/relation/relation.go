// Package relation models the paper's single-column relations (§2): a
// named multiset of values over one of the attribute domains the paper
// studies — numeric/string domains for equijoins (§3.1), set-valued
// domains for containment joins (§3.2) and spatial domains for overlap
// joins (§3.3). Values are a tagged union so relations can round-trip
// through the CLI text format.
package relation

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"joinpebble/internal/sets"
	"joinpebble/internal/spatial"
)

// Kind identifies the attribute domain of a column.
type Kind int

// Attribute domains.
const (
	KindInt Kind = iota
	KindString
	KindSet
	KindRect
)

// String names the kind as used in the text format.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindString:
		return "string"
	case KindSet:
		return "set"
	case KindRect:
		return "rect"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// ParseKind inverts Kind.String.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "int":
		return KindInt, nil
	case "string":
		return KindString, nil
	case "set":
		return KindSet, nil
	case "rect":
		return KindRect, nil
	}
	return 0, fmt.Errorf("relation: unknown kind %q", s)
}

// Value is one attribute value; exactly the field matching the owning
// relation's Kind is meaningful.
type Value struct {
	Int  int64
	Str  string
	Set  sets.Set
	Rect spatial.Rect
}

// Relation is a named single-column multiset of values of one Kind.
type Relation struct {
	Name   string
	Kind   Kind
	Tuples []Value
}

// New returns an empty relation.
func New(name string, kind Kind) *Relation {
	return &Relation{Name: name, Kind: kind}
}

// Len returns the number of tuples (multiset cardinality).
func (r *Relation) Len() int { return len(r.Tuples) }

// AppendInt adds an integer tuple; panics if the relation is not KindInt.
func (r *Relation) AppendInt(v int64) {
	r.mustKind(KindInt)
	r.Tuples = append(r.Tuples, Value{Int: v})
}

// AppendString adds a string tuple.
func (r *Relation) AppendString(v string) {
	r.mustKind(KindString)
	r.Tuples = append(r.Tuples, Value{Str: v})
}

// AppendSet adds a set tuple.
func (r *Relation) AppendSet(v sets.Set) {
	r.mustKind(KindSet)
	r.Tuples = append(r.Tuples, Value{Set: v})
}

// AppendRect adds a rectangle tuple.
func (r *Relation) AppendRect(v spatial.Rect) {
	r.mustKind(KindRect)
	r.Tuples = append(r.Tuples, Value{Rect: v})
}

func (r *Relation) mustKind(k Kind) {
	if r.Kind != k {
		panic(fmt.Sprintf("relation: %s has kind %v, not %v", r.Name, r.Kind, k))
	}
}

// Ints returns the integer column; panics unless KindInt.
func (r *Relation) Ints() []int64 {
	r.mustKind(KindInt)
	out := make([]int64, len(r.Tuples))
	for i, t := range r.Tuples {
		out[i] = t.Int
	}
	return out
}

// Strings returns the string column; panics unless KindString.
func (r *Relation) Strings() []string {
	r.mustKind(KindString)
	out := make([]string, len(r.Tuples))
	for i, t := range r.Tuples {
		out[i] = t.Str
	}
	return out
}

// Sets returns the set column; panics unless KindSet.
func (r *Relation) Sets() []sets.Set {
	r.mustKind(KindSet)
	out := make([]sets.Set, len(r.Tuples))
	for i, t := range r.Tuples {
		out[i] = t.Set
	}
	return out
}

// Rects returns the rectangle column; panics unless KindRect.
func (r *Relation) Rects() []spatial.Rect {
	r.mustKind(KindRect)
	out := make([]spatial.Rect, len(r.Tuples))
	for i, t := range r.Tuples {
		out[i] = t.Rect
	}
	return out
}

// FromInts builds an int relation from a slice.
func FromInts(name string, vs []int64) *Relation {
	r := New(name, KindInt)
	for _, v := range vs {
		r.AppendInt(v)
	}
	return r
}

// FromSets builds a set relation from a slice.
func FromSets(name string, vs []sets.Set) *Relation {
	r := New(name, KindSet)
	for _, v := range vs {
		r.AppendSet(v)
	}
	return r
}

// FromRects builds a rect relation from a slice.
func FromRects(name string, vs []spatial.Rect) *Relation {
	r := New(name, KindRect)
	for _, v := range vs {
		r.AppendRect(v)
	}
	return r
}

// FromStrings builds a string relation from a slice.
func FromStrings(name string, vs []string) *Relation {
	r := New(name, KindString)
	for _, v := range vs {
		r.AppendString(v)
	}
	return r
}

// formatValue renders a value in the text format.
func (r *Relation) formatValue(v Value) string {
	switch r.Kind {
	case KindInt:
		return strconv.FormatInt(v.Int, 10)
	case KindString:
		return strconv.Quote(v.Str)
	case KindSet:
		return v.Set.String()
	case KindRect:
		return fmt.Sprintf("%g %g %g %g", v.Rect.MinX, v.Rect.MinY, v.Rect.MaxX, v.Rect.MaxY)
	}
	panic("relation: unknown kind")
}

// Write serializes the relation as:
//
//	relation <name> <kind>
//	<value>        (one line per tuple)
func (r *Relation) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "relation %s %s\n", r.Name, r.Kind); err != nil {
		return err
	}
	for _, t := range r.Tuples {
		if _, err := fmt.Fprintln(w, r.formatValue(t)); err != nil {
			return err
		}
	}
	return nil
}

// Read parses the Write format. Blank lines and '#' comments are skipped.
func Read(rd io.Reader) (*Relation, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var rel *Relation
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if rel == nil {
			fields := strings.Fields(text)
			if len(fields) != 3 || fields[0] != "relation" {
				return nil, fmt.Errorf("relation: line %d: want 'relation <name> <kind>'", line)
			}
			kind, err := ParseKind(fields[2])
			if err != nil {
				return nil, fmt.Errorf("relation: line %d: %w", line, err)
			}
			rel = New(fields[1], kind)
			continue
		}
		if err := rel.appendText(text); err != nil {
			return nil, fmt.Errorf("relation: line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if rel == nil {
		return nil, fmt.Errorf("relation: empty input")
	}
	return rel, nil
}

func (r *Relation) appendText(text string) error {
	switch r.Kind {
	case KindInt:
		v, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return err
		}
		r.AppendInt(v)
	case KindString:
		v, err := strconv.Unquote(text)
		if err != nil {
			return err
		}
		r.AppendString(v)
	case KindSet:
		v, err := sets.Parse(text)
		if err != nil {
			return err
		}
		r.AppendSet(v)
	case KindRect:
		var x1, y1, x2, y2 float64
		if _, err := fmt.Sscanf(text, "%g %g %g %g", &x1, &y1, &x2, &y2); err != nil {
			return err
		}
		r.AppendRect(spatial.NewRect(x1, y1, x2, y2))
	default:
		return fmt.Errorf("unknown kind %v", r.Kind)
	}
	return nil
}
