package tsp

import (
	"context"
	"fmt"
	"math"

	"joinpebble/internal/faultinject"
	"joinpebble/internal/obs"
)

// Exact-search effort counters: the intermediate quantities the solvers'
// exponential bounds talk about, accumulated in locals inside the search
// loops and flushed once per call so the hot loops stay counter-free.
// The bindings are scope-aware: searches invoked with a scoped context
// (an engine solve) flush into their request's obs.Scope; the handle is
// resolved once per search call, never inside the loops.
var (
	cHeldKarpStates = obs.ScopedCounter("tsp/heldkarp/states_expanded")
	cBnBNodes       = obs.ScopedCounter("tsp/bnb/nodes_expanded")
)

// Fault-injection sites (see the registry in DESIGN.md). Both sit at the
// search loops' cancellation checkpoints, so an armed Delay reliably
// pushes a deadline past expiry mid-component — the scenario the engine's
// degradation ladder must survive.
const (
	// SiteExactExpand fires every checkpointMask+1 Held–Karp subset
	// expansions; an injected error aborts the search with that error.
	SiteExactExpand = "tsp/exact/expand"
	// SiteBnBExpand fires every checkpointMask+1 branch-and-bound node
	// expansions; an injected error aborts the search as if canceled,
	// returning the incumbent.
	SiteBnBExpand = "tsp/bnb/expand"
)

// checkpointMask spaces the cancellation checks in both search loops:
// ctx.Err is consulted every checkpointMask+1 expansions, so a canceled
// context unwinds a component within a bounded number of expansions
// instead of only at component boundaries.
const checkpointMask = 0x3FF

// MaxExactCities bounds the Held–Karp solver: the DP table has
// 2^n * n uint16 entries, so 24 cities ≈ 800 MB is the practical ceiling;
// we stop well short of it.
const MaxExactCities = 22

// Exact computes an optimal tour by Held–Karp dynamic programming over
// vertex subsets: dp[S][v] = cheapest path visiting exactly the cities in
// S and ending at v. O(2^n · n²) time, O(2^n · n) space. It returns an
// error for instances above MaxExactCities; callers should fall back to
// BranchAndBound or a heuristic.
func Exact(in *Instance) (Tour, int, error) {
	return ExactContext(context.Background(), in)
}

// ExactContext is Exact bounded by ctx: the subset loop checks ctx at
// every checkpoint (checkpointMask+1 subset expansions), so cancellation
// unwinds promptly even inside one huge component. Held–Karp has no
// usable partial answer — a canceled search returns ctx.Err() and the
// caller is expected to fall down the solver ladder.
func ExactContext(ctx context.Context, in *Instance) (Tour, int, error) {
	n := in.N()
	if n == 0 {
		return Tour{}, 0, nil
	}
	if n == 1 {
		return Tour{0}, 0, nil
	}
	if n > MaxExactCities {
		return nil, 0, fmt.Errorf("tsp: %d cities exceeds exact limit %d", n, MaxExactCities)
	}

	const inf = math.MaxUint16
	size := 1 << n
	dp := make([]uint16, size*n)
	parent := make([]int8, size*n)
	for i := range dp {
		dp[i] = inf
	}
	for v := 0; v < n; v++ {
		dp[(1<<v)*n+v] = 0
		parent[(1<<v)*n+v] = -1
	}

	// Precompute weights into a flat matrix for speed.
	w := make([]uint16, n*n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v {
				w[u*n+v] = uint16(in.Weight(u, v))
			}
		}
	}

	var states int64
	for s := 1; s < size; s++ {
		if s&checkpointMask == 0 {
			if err := faultinject.Fire(SiteExactExpand); err != nil {
				cHeldKarpStates.Add(ctx, states)
				return nil, 0, err
			}
			if err := ctx.Err(); err != nil {
				cHeldKarpStates.Add(ctx, states)
				return nil, 0, err
			}
		}
		base := s * n
		for v := 0; v < n; v++ {
			cur := dp[base+v]
			if cur == inf || s&(1<<v) == 0 {
				continue
			}
			states++
			for u := 0; u < n; u++ {
				if s&(1<<u) != 0 {
					continue
				}
				ns := s | 1<<u
				cand := cur + w[v*n+u]
				if cand < dp[ns*n+u] {
					dp[ns*n+u] = cand
					parent[ns*n+u] = int8(v)
				}
			}
		}
	}

	cHeldKarpStates.Add(ctx, states)

	full := size - 1
	best, bestEnd := uint16(inf), -1
	for v := 0; v < n; v++ {
		if dp[full*n+v] < best {
			best = dp[full*n+v]
			bestEnd = v
		}
	}

	// Reconstruct.
	tour := make(Tour, 0, n)
	s, v := full, bestEnd
	for v != -1 {
		tour = append(tour, v)
		p := int(parent[s*n+v])
		s &^= 1 << v
		v = p
	}
	// Reverse into visit order.
	for i, j := 0, len(tour)-1; i < j; i, j = i+1, j-1 {
		tour[i], tour[j] = tour[j], tour[i]
	}
	return tour, int(best), nil
}

// BranchAndBound computes an optimal tour by depth-first search with
// pruning. It extends Exact's reach for sparse good graphs (where the
// jump lower bound prunes aggressively) but remains exponential in the
// worst case. maxNodes caps the search; 0 means unlimited. If the cap is
// hit it returns the best tour found plus ok=false.
func BranchAndBound(in *Instance, maxNodes int64) (Tour, int, bool) {
	return BranchAndBoundContext(context.Background(), in, maxNodes)
}

// BranchAndBoundContext is BranchAndBound bounded by ctx. The search is
// *anytime*: it seeds an incumbent with nearest neighbour before the
// first expansion, so when ctx expires (checked every checkpointMask+1
// node expansions, well inside one component) it returns the best tour
// found so far with exhausted=false instead of nothing — the caller gets
// a valid, possibly suboptimal tour and can tell optimality was not
// proven. The node cap reports the same way.
func BranchAndBoundContext(ctx context.Context, in *Instance, maxNodes int64) (Tour, int, bool) {
	n := in.N()
	if n == 0 {
		return Tour{}, 0, true
	}
	// Seed the incumbent with nearest neighbour so pruning bites early
	// and a canceled search still has a full tour to hand back.
	bestTour, bestCost := NearestNeighbor(in)
	used := make([]bool, n)
	path := make(Tour, 0, n)
	var nodes int64
	exhausted := true
	stopped := false // cancellation or injected abort; sticky like the cap

	// Remaining-deficit lower bound: each unvisited vertex still needs
	// good incidences; recompute cheaply from static degrees. We use the
	// simple bound remaining-steps >= #unvisited (each costs >= 1).
	var dfs func(v, cost int)
	dfs = func(v, cost int) {
		nodes++
		if stopped {
			return
		}
		if nodes&checkpointMask == 0 {
			if err := faultinject.Fire(SiteBnBExpand); err != nil {
				stopped, exhausted = true, false
				return
			}
			if ctx.Err() != nil {
				stopped, exhausted = true, false
				return
			}
		}
		if maxNodes > 0 && nodes > maxNodes {
			exhausted = false
			return
		}
		if len(path) == n {
			if cost < bestCost {
				bestCost = cost
				bestTour = append(bestTour[:0], path...)
			}
			return
		}
		if cost+(n-len(path)) >= bestCost {
			return // even all-good completion cannot beat the incumbent
		}
		// Try good continuations first; they lead to cheap tours sooner.
		for _, u := range in.Good.Neighbors(v) {
			if !used[u] {
				used[u] = true
				path = append(path, u)
				dfs(u, cost+1)
				path = path[:len(path)-1]
				used[u] = false
			}
		}
		if cost+1+(n-len(path)) >= bestCost {
			return // a jump plus all-good completion is already too costly
		}
		for u := 0; u < n; u++ {
			if !used[u] && !in.Good.HasEdge(v, u) {
				used[u] = true
				path = append(path, u)
				dfs(u, cost+2)
				path = path[:len(path)-1]
				used[u] = false
			}
		}
	}
	for s := 0; s < n && !stopped; s++ {
		used[s] = true
		path = append(path, s)
		dfs(s, 0)
		path = path[:0]
		used[s] = false
	}
	cBnBNodes.Add(ctx, nodes)
	return bestTour, bestCost, exhausted
}

// Solve returns an optimal tour using Exact when the instance fits and
// BranchAndBound (unbounded) otherwise.
func Solve(in *Instance) (Tour, int) {
	if in.N() <= MaxExactCities {
		t, c, err := Exact(in)
		if err == nil {
			return t, c
		}
	}
	t, c, _ := BranchAndBound(in, 0)
	return t, c
}
