package tsp

import (
	"fmt"
	"math"

	"joinpebble/internal/obs"
)

// Exact-search effort counters: the intermediate quantities the solvers'
// exponential bounds talk about, accumulated in locals inside the search
// loops and flushed once per call so the hot loops stay counter-free.
var (
	cHeldKarpStates = obs.Default.Counter("tsp/heldkarp/states_expanded")
	cBnBNodes       = obs.Default.Counter("tsp/bnb/nodes_expanded")
)

// MaxExactCities bounds the Held–Karp solver: the DP table has
// 2^n * n uint16 entries, so 24 cities ≈ 800 MB is the practical ceiling;
// we stop well short of it.
const MaxExactCities = 22

// Exact computes an optimal tour by Held–Karp dynamic programming over
// vertex subsets: dp[S][v] = cheapest path visiting exactly the cities in
// S and ending at v. O(2^n · n²) time, O(2^n · n) space. It returns an
// error for instances above MaxExactCities; callers should fall back to
// BranchAndBound or a heuristic.
func Exact(in *Instance) (Tour, int, error) {
	n := in.N()
	if n == 0 {
		return Tour{}, 0, nil
	}
	if n == 1 {
		return Tour{0}, 0, nil
	}
	if n > MaxExactCities {
		return nil, 0, fmt.Errorf("tsp: %d cities exceeds exact limit %d", n, MaxExactCities)
	}

	const inf = math.MaxUint16
	size := 1 << n
	dp := make([]uint16, size*n)
	parent := make([]int8, size*n)
	for i := range dp {
		dp[i] = inf
	}
	for v := 0; v < n; v++ {
		dp[(1<<v)*n+v] = 0
		parent[(1<<v)*n+v] = -1
	}

	// Precompute weights into a flat matrix for speed.
	w := make([]uint16, n*n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v {
				w[u*n+v] = uint16(in.Weight(u, v))
			}
		}
	}

	var states int64
	for s := 1; s < size; s++ {
		base := s * n
		for v := 0; v < n; v++ {
			cur := dp[base+v]
			if cur == inf || s&(1<<v) == 0 {
				continue
			}
			states++
			for u := 0; u < n; u++ {
				if s&(1<<u) != 0 {
					continue
				}
				ns := s | 1<<u
				cand := cur + w[v*n+u]
				if cand < dp[ns*n+u] {
					dp[ns*n+u] = cand
					parent[ns*n+u] = int8(v)
				}
			}
		}
	}

	cHeldKarpStates.Add(states)

	full := size - 1
	best, bestEnd := uint16(inf), -1
	for v := 0; v < n; v++ {
		if dp[full*n+v] < best {
			best = dp[full*n+v]
			bestEnd = v
		}
	}

	// Reconstruct.
	tour := make(Tour, 0, n)
	s, v := full, bestEnd
	for v != -1 {
		tour = append(tour, v)
		p := int(parent[s*n+v])
		s &^= 1 << v
		v = p
	}
	// Reverse into visit order.
	for i, j := 0, len(tour)-1; i < j; i, j = i+1, j-1 {
		tour[i], tour[j] = tour[j], tour[i]
	}
	return tour, int(best), nil
}

// BranchAndBound computes an optimal tour by depth-first search with
// pruning. It extends Exact's reach for sparse good graphs (where the
// jump lower bound prunes aggressively) but remains exponential in the
// worst case. maxNodes caps the search; 0 means unlimited. If the cap is
// hit it returns the best tour found plus ok=false.
func BranchAndBound(in *Instance, maxNodes int64) (Tour, int, bool) {
	n := in.N()
	if n == 0 {
		return Tour{}, 0, true
	}
	// Seed the incumbent with nearest neighbour so pruning bites early.
	bestTour, bestCost := NearestNeighbor(in)
	used := make([]bool, n)
	path := make(Tour, 0, n)
	var nodes int64
	exhausted := true

	// Remaining-deficit lower bound: each unvisited vertex still needs
	// good incidences; recompute cheaply from static degrees. We use the
	// simple bound remaining-steps >= #unvisited (each costs >= 1).
	var dfs func(v, cost int)
	dfs = func(v, cost int) {
		nodes++
		if maxNodes > 0 && nodes > maxNodes {
			exhausted = false
			return
		}
		if len(path) == n {
			if cost < bestCost {
				bestCost = cost
				bestTour = append(bestTour[:0], path...)
			}
			return
		}
		if cost+(n-len(path)) >= bestCost {
			return // even all-good completion cannot beat the incumbent
		}
		// Try good continuations first; they lead to cheap tours sooner.
		for _, u := range in.Good.Neighbors(v) {
			if !used[u] {
				used[u] = true
				path = append(path, u)
				dfs(u, cost+1)
				path = path[:len(path)-1]
				used[u] = false
			}
		}
		if cost+1+(n-len(path)) >= bestCost {
			return // a jump plus all-good completion is already too costly
		}
		for u := 0; u < n; u++ {
			if !used[u] && !in.Good.HasEdge(v, u) {
				used[u] = true
				path = append(path, u)
				dfs(u, cost+2)
				path = path[:len(path)-1]
				used[u] = false
			}
		}
	}
	for s := 0; s < n; s++ {
		used[s] = true
		path = append(path, s)
		dfs(s, 0)
		path = path[:0]
		used[s] = false
	}
	cBnBNodes.Add(nodes)
	return bestTour, bestCost, exhausted
}

// Solve returns an optimal tour using Exact when the instance fits and
// BranchAndBound (unbounded) otherwise.
func Solve(in *Instance) (Tour, int) {
	if in.N() <= MaxExactCities {
		t, c, err := Exact(in)
		if err == nil {
			return t, c
		}
	}
	t, c, _ := BranchAndBound(in, 0)
	return t, c
}
