package tsp

// NearestNeighbor builds a tour greedily: from the current city, step to
// any unvisited good neighbour if one exists, otherwise jump to the
// lowest-numbered unvisited city. Starting cities are tried from every
// vertex and the best result kept, so the heuristic is deterministic.
// On TSP(1,2) it is never worse than 2x optimal (every step costs at most
// 2) and typically far closer; it seeds BranchAndBound's incumbent.
func NearestNeighbor(in *Instance) (Tour, int) {
	n := in.N()
	if n == 0 {
		return Tour{}, 0
	}
	var bestTour Tour
	bestCost := -1
	used := make([]bool, n)
	for s := 0; s < n; s++ {
		for i := range used {
			used[i] = false
		}
		tour := make(Tour, 1, n)
		tour[0] = s
		used[s] = true
		cost := 0
		for len(tour) < n {
			v := tour[len(tour)-1]
			next := -1
			for _, u := range in.Good.Neighbors(v) {
				if !used[u] {
					next = u
					break
				}
			}
			if next >= 0 {
				cost++
			} else {
				for u := 0; u < n; u++ {
					if !used[u] {
						next = u
						break
					}
				}
				cost += 2
			}
			tour = append(tour, next)
			used[next] = true
		}
		if bestCost < 0 || cost < bestCost {
			bestCost = cost
			bestTour = tour
		}
	}
	return bestTour, bestCost
}

// TwoOptImprove applies 2-opt (segment reversal) and Or-opt (single-city
// relocation) moves until no improving move exists, returning the improved
// tour and its cost. With weights in {1,2} a 2-opt move improves the cost
// iff it converts more jumps into good steps than the reverse.
func TwoOptImprove(in *Instance, t Tour) (Tour, int) {
	n := len(t)
	tour := make(Tour, n)
	copy(tour, t)
	if n < 3 {
		return tour, in.Cost(tour)
	}
	improved := true
	for improved {
		improved = false
		// 2-opt: reverse tour[i..j].
		for i := 0; i < n-1 && !improved; i++ {
			for j := i + 1; j < n && !improved; j++ {
				delta := twoOptDelta(in, tour, i, j)
				if delta < 0 {
					reverse(tour[i : j+1])
					improved = true
				}
			}
		}
		if improved {
			continue
		}
		// Or-opt: move one city elsewhere.
		for i := 0; i < n && !improved; i++ {
			for j := 0; j < n && !improved; j++ {
				if j == i || j == i-1 {
					continue
				}
				cand := relocate(tour, i, j)
				if in.Cost(cand) < in.Cost(tour) {
					copy(tour, cand)
					improved = true
				}
			}
		}
	}
	return tour, in.Cost(tour)
}

// twoOptDelta returns the cost change of reversing tour[i..j].
func twoOptDelta(in *Instance, t Tour, i, j int) int {
	before, after := 0, 0
	if i > 0 {
		before += in.Weight(t[i-1], t[i])
		after += in.Weight(t[i-1], t[j])
	}
	if j < len(t)-1 {
		before += in.Weight(t[j], t[j+1])
		after += in.Weight(t[i], t[j+1])
	}
	return after - before
}

func reverse(a Tour) {
	for i, j := 0, len(a)-1; i < j; i, j = i+1, j-1 {
		a[i], a[j] = a[j], a[i]
	}
}

// relocate returns a copy of t with the city at position i reinserted
// after position j (positions refer to the original tour).
func relocate(t Tour, i, j int) Tour {
	out := make(Tour, 0, len(t))
	city := t[i]
	for k, v := range t {
		if k == i {
			continue
		}
		out = append(out, v)
		if k == j {
			out = append(out, city)
		}
	}
	if len(out) < len(t) { // j was i itself; append at end
		out = append(out, city)
	}
	return out
}

// GreedyPathCover partitions cities into vertex-disjoint good-edge chains
// grown greedily from both ends and concatenates the chains with jumps.
// It is a simple baseline against which the structured Theorem 3.1
// construction is compared in the E14 experiment.
func GreedyPathCover(in *Instance) (Tour, int) {
	n := in.N()
	used := make([]bool, n)
	var tour Tour
	for s := 0; s < n; s++ {
		if used[s] {
			continue
		}
		// Grow a chain from s in both directions along good edges.
		chain := []int{s}
		used[s] = true
		for extended := true; extended; {
			extended = false
			head := chain[0]
			for _, u := range in.Good.Neighbors(head) {
				if !used[u] {
					chain = append([]int{u}, chain...)
					used[u] = true
					extended = true
					break
				}
			}
			tail := chain[len(chain)-1]
			for _, u := range in.Good.Neighbors(tail) {
				if !used[u] {
					chain = append(chain, u)
					used[u] = true
					extended = true
					break
				}
			}
		}
		tour = append(tour, chain...)
	}
	return tour, in.Cost(tour)
}
