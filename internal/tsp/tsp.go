// Package tsp implements the traveling-salesman-with-distances-1-and-2
// machinery of §2.2 and §4. An instance is a complete weighted graph
// described by its weight-1 ("good") edge graph: pairs joined in the
// graph cost 1, all other pairs cost 2. A tour is a visit order over all
// vertices — a Hamiltonian path of the complete graph, measured as the
// paper measures it: the first vertex costs 0, so a tour over n vertices
// costs n−1+J where J is the number of jumps (weight-2 steps).
//
// For a line graph L(G) this is exactly the pebbling problem:
// Proposition 2.2 states the optimal tour of L(G) costs π(G) − 1.
package tsp

import (
	"fmt"

	"joinpebble/internal/graph"
)

// Instance is a TSP(1,2) instance. Good is the weight-1 edge graph; every
// vertex pair absent from Good has weight 2.
type Instance struct {
	Good *graph.Graph
}

// NewInstance wraps a good-edge graph as a TSP(1,2) instance.
func NewInstance(good *graph.Graph) *Instance { return &Instance{Good: good} }

// N returns the number of cities.
func (in *Instance) N() int { return in.Good.N() }

// Weight returns the step cost between u and v: 1 for a good edge, 2
// otherwise.
func (in *Instance) Weight(u, v int) int {
	if in.Good.HasEdge(u, v) {
		return 1
	}
	return 2
}

// MaxGoodDegree returns the largest number of weight-1 edges at any city —
// the k in TSP-k(1,2) (§4).
func (in *Instance) MaxGoodDegree() int { return in.Good.MaxDegree() }

// Tour is a visit order over all cities, each exactly once.
type Tour []int

// Validate checks that t visits every city of in exactly once.
func (in *Instance) Validate(t Tour) error {
	if len(t) != in.N() {
		return fmt.Errorf("tsp: tour visits %d of %d cities", len(t), in.N())
	}
	seen := make([]bool, in.N())
	for _, v := range t {
		if v < 0 || v >= in.N() {
			return fmt.Errorf("tsp: city %d out of range", v)
		}
		if seen[v] {
			return fmt.Errorf("tsp: city %d visited twice", v)
		}
		seen[v] = true
	}
	return nil
}

// Cost returns the tour cost n−1+J (first city free, per §2.2's footnote).
// It panics if t is not a permutation of the cities; use Validate first
// for untrusted input.
func (in *Instance) Cost(t Tour) int {
	if err := in.Validate(t); err != nil {
		panic(err)
	}
	cost := 0
	for i := 1; i < len(t); i++ {
		cost += in.Weight(t[i-1], t[i])
	}
	return cost
}

// Jumps returns J, the number of weight-2 steps in t (§2.2).
func (in *Instance) Jumps(t Tour) int {
	j := 0
	for i := 1; i < len(t); i++ {
		if !in.Good.HasEdge(t[i-1], t[i]) {
			j++
		}
	}
	return j
}

// JumpLowerBound returns a lower bound on J for any tour, generalizing
// the B+/B− counting in Theorem 3.3's proof: a vertex with g good edges
// has at most min(g,2) good tour incidences, internal vertices have two
// incidences and the two endpoints one each, so
//
//	2J >= sum_v max(0, 2−deg(v)) − 2.
func (in *Instance) JumpLowerBound() int {
	deficit := 0
	for v := 0; v < in.N(); v++ {
		if d := in.Good.Degree(v); d < 2 {
			deficit += 2 - d
		}
	}
	deficit -= 2
	lb := 0
	if deficit > 0 {
		lb = (deficit + 1) / 2
	}
	// A tour must also jump between connected components of the good
	// graph at least once per component boundary.
	if c := in.Good.ComponentCount() - 1; c > lb {
		lb = c
	}
	return lb
}

// CostLowerBound returns a lower bound on the optimal tour cost:
// n−1 + JumpLowerBound.
func (in *Instance) CostLowerBound() int {
	if in.N() == 0 {
		return 0
	}
	return in.N() - 1 + in.JumpLowerBound()
}

// CostUpperBound returns the universal upper bound 2(n−1): every step
// costs at most 2.
func (in *Instance) CostUpperBound() int {
	if in.N() == 0 {
		return 0
	}
	return 2 * (in.N() - 1)
}
