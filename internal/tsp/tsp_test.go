package tsp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"joinpebble/internal/graph"
)

// randConn returns a random connected graph on n vertices with a random
// feasible edge count.
func randConn(r *rand.Rand, n int) *graph.Graph {
	maxM := n * (n - 1) / 2
	m := n - 1 + r.Intn(maxM-(n-1)+1)
	return graph.RandomConnectedGraph(r, n, m, 0)
}

func pathInstance(n int) *Instance {
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(v-1, v)
	}
	return NewInstance(g)
}

func TestWeight(t *testing.T) {
	in := pathInstance(3)
	if in.Weight(0, 1) != 1 || in.Weight(0, 2) != 2 {
		t.Fatal("weights wrong")
	}
}

func TestCostAndJumps(t *testing.T) {
	in := pathInstance(4)
	if c := in.Cost(Tour{0, 1, 2, 3}); c != 3 {
		t.Fatalf("all-good tour cost=%d want 3", c)
	}
	if c := in.Cost(Tour{1, 0, 2, 3}); c != 4 {
		t.Fatalf("tour with 1 jump cost=%d want 1+2+1", c)
	}
	if j := in.Jumps(Tour{1, 0, 2, 3}); j != 1 {
		t.Fatalf("jumps=%d want 1", j)
	}
	if j := in.Jumps(Tour{0, 2, 1, 3}); j != 2 {
		t.Fatalf("jumps=%d want 2", j)
	}
}

func TestValidate(t *testing.T) {
	in := pathInstance(3)
	if err := in.Validate(Tour{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Tour{{0, 1}, {0, 1, 1}, {0, 1, 5}} {
		if err := in.Validate(bad); err == nil {
			t.Fatalf("tour %v should be invalid", bad)
		}
	}
}

func TestJumpLowerBoundLeafCounting(t *testing.T) {
	// K_n plus n pendant leaves: the L(G_n) structure from Theorem 3.3.
	// n leaves of degree 1 give 2J >= n - 2.
	n := 6
	g := graph.New(2 * n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	for i := 0; i < n; i++ {
		g.AddEdge(i, n+i)
	}
	in := NewInstance(g)
	if lb := in.JumpLowerBound(); lb != (n-2+1)/2 {
		t.Fatalf("jump lower bound=%d want %d", lb, (n-2+1)/2)
	}
}

func TestJumpLowerBoundComponents(t *testing.T) {
	// Two disjoint triangles: no degree deficit, but one inter-component
	// jump is forced.
	g := graph.New(6)
	for _, tri := range [][3]int{{0, 1, 2}, {3, 4, 5}} {
		g.AddEdge(tri[0], tri[1])
		g.AddEdge(tri[1], tri[2])
		g.AddEdge(tri[2], tri[0])
	}
	in := NewInstance(g)
	if lb := in.JumpLowerBound(); lb != 1 {
		t.Fatalf("component bound=%d want 1", lb)
	}
}

func TestExactOnPath(t *testing.T) {
	in := pathInstance(6)
	tour, cost, err := Exact(in)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 5 {
		t.Fatalf("path optimal cost=%d want n-1", cost)
	}
	if in.Cost(tour) != cost {
		t.Fatal("reported cost disagrees with tour")
	}
}

func TestExactOnMatchingGoodGraph(t *testing.T) {
	// Good graph = 3 disjoint good edges over 6 cities: optimal tour uses
	// all 3 good edges and 2 jumps: cost 3*1 + 2*2 = 7.
	g := graph.New(6)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	g.AddEdge(4, 5)
	in := NewInstance(g)
	_, cost, err := Exact(in)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 7 {
		t.Fatalf("cost=%d want 7", cost)
	}
}

func TestExactMatchesBranchAndBound(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(6)
		m := n - 1 + rng.Intn(n)
		g := graph.RandomConnectedGraph(rng, n, m, 0)
		in := NewInstance(g)
		_, ce, err := Exact(in)
		if err != nil {
			t.Fatal(err)
		}
		_, cb, ok := BranchAndBound(in, 0)
		if !ok {
			t.Fatal("unbounded BnB must exhaust")
		}
		if ce != cb {
			t.Fatalf("trial %d: exact=%d bnb=%d on %v", trial, ce, cb, g)
		}
	}
}

func TestExactRespectsBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	cfg := &quick.Config{MaxCount: 40, Rand: rng}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(7)
		g := randConn(r, n)
		in := NewInstance(g)
		tour, cost, err := Exact(in)
		if err != nil {
			return false
		}
		if in.Validate(tour) != nil {
			return false
		}
		return cost >= in.CostLowerBound() && cost <= in.CostUpperBound()
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

func TestExactRejectsLargeInstance(t *testing.T) {
	g := graph.New(MaxExactCities + 1)
	for v := 1; v < g.N(); v++ {
		g.AddEdge(v-1, v)
	}
	if _, _, err := Exact(NewInstance(g)); err == nil {
		t.Fatal("oversized instance must be rejected")
	}
}

func TestNearestNeighborValidAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(10)
		g := randConn(rng, n)
		in := NewInstance(g)
		tour, cost := NearestNeighbor(in)
		if err := in.Validate(tour); err != nil {
			t.Fatal(err)
		}
		if in.Cost(tour) != cost {
			t.Fatal("cost mismatch")
		}
		if cost > in.CostUpperBound() {
			t.Fatalf("NN cost %d above universal bound %d", cost, in.CostUpperBound())
		}
	}
}

func TestNearestNeighborOptimalOnPath(t *testing.T) {
	in := pathInstance(8)
	_, cost := NearestNeighbor(in)
	if cost != 7 {
		t.Fatalf("NN on path: cost=%d want 7", cost)
	}
}

func TestTwoOptImproves(t *testing.T) {
	in := pathInstance(6)
	bad := Tour{0, 2, 4, 1, 3, 5}
	improved, cost := TwoOptImprove(in, bad)
	if err := in.Validate(improved); err != nil {
		t.Fatal(err)
	}
	if cost > in.Cost(bad) {
		t.Fatal("2-opt made the tour worse")
	}
	if cost != 5 {
		t.Fatalf("2-opt on path should reach optimum 5, got %d", cost)
	}
}

func TestTwoOptNeverWorseThanInput(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	cfg := &quick.Config{MaxCount: 30, Rand: rng}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(6)
		g := randConn(r, n)
		in := NewInstance(g)
		start := Tour(r.Perm(n))
		improved, cost := TwoOptImprove(in, start)
		return in.Validate(improved) == nil && cost <= in.Cost(start)
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

func TestGreedyPathCoverValid(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(8)
		g := randConn(rng, n)
		in := NewInstance(g)
		tour, cost := GreedyPathCover(in)
		if err := in.Validate(tour); err != nil {
			t.Fatal(err)
		}
		if in.Cost(tour) != cost {
			t.Fatal("cost mismatch")
		}
	}
}

func TestSolveSmallAndEmpty(t *testing.T) {
	if tour, cost := Solve(NewInstance(graph.New(0))); len(tour) != 0 || cost != 0 {
		t.Fatal("empty instance")
	}
	if tour, cost := Solve(NewInstance(graph.New(1))); len(tour) != 1 || cost != 0 {
		t.Fatal("single city")
	}
	in := pathInstance(5)
	if _, cost := Solve(in); cost != 4 {
		t.Fatal("solve on path")
	}
}

func TestHeldKarpAgainstBruteForceTiny(t *testing.T) {
	// Exhaustive permutation check on all 4-city instances over a few
	// random good graphs.
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 20; trial++ {
		g := graph.RandomBipartite(rng, 2, 2, 0.5).Graph()
		in := NewInstance(g)
		_, got, err := Exact(in)
		if err != nil {
			t.Fatal(err)
		}
		best := 1 << 30
		perm := []int{0, 1, 2, 3}
		var rec func(k int)
		rec = func(k int) {
			if k == 4 {
				if c := in.Cost(perm); c < best {
					best = c
				}
				return
			}
			for i := k; i < 4; i++ {
				perm[k], perm[i] = perm[i], perm[k]
				rec(k + 1)
				perm[k], perm[i] = perm[i], perm[k]
			}
		}
		rec(0)
		if got != best {
			t.Fatalf("trial %d: held-karp=%d brute=%d", trial, got, best)
		}
	}
}
