package tsp

import (
	"math/rand"
	"testing"

	"joinpebble/internal/graph"
)

func TestHungarianTiny(t *testing.T) {
	cost := [][]int64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	assign, total, err := Hungarian(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != 5 { // 1 + 2 + 2
		t.Fatalf("total=%d want 5 (assign %v)", total, assign)
	}
	seen := make([]bool, 3)
	for _, j := range assign {
		if seen[j] {
			t.Fatal("assignment not a permutation")
		}
		seen[j] = true
	}
}

func TestHungarianAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(5)
		cost := make([][]int64, n)
		for i := range cost {
			cost[i] = make([]int64, n)
			for j := range cost[i] {
				cost[i][j] = int64(rng.Intn(20))
			}
		}
		_, got, err := Hungarian(cost)
		if err != nil {
			t.Fatal(err)
		}
		best := int64(1) << 40
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		var rec func(k int, sum int64)
		rec = func(k int, sum int64) {
			if k == n {
				if sum < best {
					best = sum
				}
				return
			}
			for i := k; i < n; i++ {
				perm[k], perm[i] = perm[i], perm[k]
				rec(k+1, sum+cost[k][perm[k]])
				perm[k], perm[i] = perm[i], perm[k]
			}
		}
		rec(0, 0)
		if got != best {
			t.Fatalf("trial %d: hungarian=%d brute=%d", trial, got, best)
		}
	}
}

func TestHungarianValidation(t *testing.T) {
	if _, _, err := Hungarian([][]int64{{1, 2}}); err == nil {
		t.Fatal("ragged matrix must fail")
	}
	if assign, total, err := Hungarian(nil); err != nil || len(assign) != 0 || total != 0 {
		t.Fatal("empty matrix should be trivially solved")
	}
}

func TestMinCycleCoverOnCycle(t *testing.T) {
	// Good graph = C6: the cycle itself is the min cycle cover, all
	// weight 1.
	g := graph.New(6)
	for v := 0; v < 6; v++ {
		g.AddEdge(v, (v+1)%6)
	}
	cycles, total, err := MinCycleCover(NewInstance(g))
	if err != nil {
		t.Fatal(err)
	}
	if total != 6 {
		t.Fatalf("total=%d want 6", total)
	}
	count := 0
	for _, c := range cycles {
		count += len(c)
	}
	if count != 6 {
		t.Fatalf("cycles cover %d of 6 cities", count)
	}
}

func TestMinCycleCoverCoversAll(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(6)
		g := randConn(rng, n)
		cycles, _, err := MinCycleCover(NewInstance(g))
		if err != nil {
			t.Fatal(err)
		}
		seen := make([]bool, n)
		for _, c := range cycles {
			for _, v := range c {
				if seen[v] {
					t.Fatalf("trial %d: city %d in two cycles", trial, v)
				}
				seen[v] = true
			}
		}
		for v, ok := range seen {
			if !ok {
				t.Fatalf("trial %d: city %d uncovered", trial, v)
			}
		}
	}
}

func TestCycleCoverTourValidAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(7)
		g := randConn(rng, n)
		in := NewInstance(g)
		tour, cost, err := CycleCoverTour(in)
		if err != nil {
			t.Fatal(err)
		}
		if err := in.Validate(tour); err != nil {
			t.Fatal(err)
		}
		if in.Cost(tour) != cost {
			t.Fatal("cost mismatch")
		}
		if cost > in.CostUpperBound() {
			t.Fatalf("cost %d above universal bound", cost)
		}
	}
}

func TestCycleCoverTourNearOptimal(t *testing.T) {
	// The paper cites [12] for a 7/6 approximation; measure the ratio on
	// exact-solvable instances and require it comfortably below 7/6
	// plus the additive slack the path-vs-cycle difference allows.
	rng := rand.New(rand.NewSource(4))
	worst := 0.0
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.Intn(6)
		g := randConn(rng, n)
		in := NewInstance(g)
		_, opt, err := Exact(in)
		if err != nil {
			t.Fatal(err)
		}
		_, got, err := CycleCoverTour(in)
		if err != nil {
			t.Fatal(err)
		}
		if got < opt {
			t.Fatalf("trial %d: approximation beat the optimum — bug", trial)
		}
		if r := float64(got) / float64(opt); r > worst {
			worst = r
		}
	}
	if worst > 7.0/6.0+0.25 {
		t.Fatalf("cycle-cover tour ratio %.3f far above 7/6", worst)
	}
}

func TestCycleCoverTourTrivial(t *testing.T) {
	if tour, cost, err := CycleCoverTour(NewInstance(graph.New(0))); err != nil || len(tour) != 0 || cost != 0 {
		t.Fatal("empty instance")
	}
	if tour, cost, err := CycleCoverTour(NewInstance(graph.New(1))); err != nil || len(tour) != 1 || cost != 0 {
		t.Fatal("single city")
	}
}
