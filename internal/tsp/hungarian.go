package tsp

import "fmt"

// Hungarian solves the n x n assignment problem: given cost[i][j], find a
// permutation p minimizing sum cost[i][p(i)]. Implementation is the
// O(n³) potentials (Jonker–Volgenant style) shortest-augmenting-path
// variant. It is the substrate for the Papadimitriou–Yannakakis cycle
// cover: a minimum-cost assignment with an infinite diagonal is a
// minimum-cost directed cycle cover.
func Hungarian(cost [][]int64) ([]int, int64, error) {
	n := len(cost)
	for i, row := range cost {
		if len(row) != n {
			return nil, 0, fmt.Errorf("tsp: cost row %d has %d entries, want %d", i, len(row), n)
		}
	}
	if n == 0 {
		return nil, 0, nil
	}

	const inf = int64(1) << 60
	// 1-indexed potentials algorithm (the classic u/v/p/way formulation).
	u := make([]int64, n+1)
	v := make([]int64, n+1)
	p := make([]int, n+1)   // p[j] = row assigned to column j (0 = none)
	way := make([]int, n+1) // way[j] = previous column on the augmenting path
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]int64, n+1)
		used := make([]bool, n+1)
		for j := 0; j <= n; j++ {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			if delta == inf {
				return nil, 0, fmt.Errorf("tsp: assignment infeasible (all remaining costs infinite)")
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	assign := make([]int, n)
	var total int64
	for j := 1; j <= n; j++ {
		assign[p[j]-1] = j - 1
		total += cost[p[j]-1][j-1]
	}
	return assign, total, nil
}

// MinCycleCover computes a minimum-weight directed cycle cover of the
// TSP(1,2) instance (every city has one successor, no fixed points) via
// the assignment problem, and returns the cycles.
func MinCycleCover(in *Instance) ([][]int, int, error) {
	n := in.N()
	if n < 2 {
		return nil, 0, fmt.Errorf("tsp: cycle cover needs >= 2 cities")
	}
	const big = int64(1) << 40
	cost := make([][]int64, n)
	for i := range cost {
		cost[i] = make([]int64, n)
		for j := range cost[i] {
			if i == j {
				cost[i][j] = big // forbid fixed points
			} else {
				cost[i][j] = int64(in.Weight(i, j))
			}
		}
	}
	next, total, err := Hungarian(cost)
	if err != nil {
		return nil, 0, err
	}
	seen := make([]bool, n)
	var cycles [][]int
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		var cyc []int
		for v := s; !seen[v]; v = next[v] {
			seen[v] = true
			cyc = append(cyc, v)
		}
		cycles = append(cycles, cyc)
	}
	return cycles, int(total), nil
}

// CycleCoverTour is the Papadimitriou–Yannakakis-style TSP(1,2)
// approximation the paper invokes for its 7/6 remark (§4, citing [12]):
// compute a minimum-weight cycle cover, break each cycle at its most
// expensive step, and stitch the resulting paths together, preferring
// good edges at the seams. The full 7/6 analysis belongs to [12]; the
// E14 experiment measures the achieved ratios against exact optima.
func CycleCoverTour(in *Instance) (Tour, int, error) {
	n := in.N()
	switch n {
	case 0:
		return Tour{}, 0, nil
	case 1:
		return Tour{0}, 0, nil
	}
	cycles, _, err := MinCycleCover(in)
	if err != nil {
		return nil, 0, err
	}
	// Break each cycle at its heaviest step, yielding one path per cycle.
	paths := make([][]int, 0, len(cycles))
	for _, cyc := range cycles {
		if len(cyc) == 1 {
			paths = append(paths, cyc)
			continue
		}
		worst, worstAt := -1, 0
		for k := range cyc {
			w := in.Weight(cyc[k], cyc[(k+1)%len(cyc)])
			if w > worst {
				worst, worstAt = w, k
			}
		}
		// Rotate so the broken step is at the end.
		path := make([]int, 0, len(cyc))
		for k := 1; k <= len(cyc); k++ {
			path = append(path, cyc[(worstAt+k)%len(cyc)])
		}
		paths = append(paths, path)
	}
	// Stitch greedily: keep choosing the unused path whose head is
	// cheapest to reach from the current tail (flipping paths when the
	// reverse orientation is cheaper).
	tour := append(Tour{}, paths[0]...)
	used := make([]bool, len(paths))
	used[0] = true
	for remaining := len(paths) - 1; remaining > 0; remaining-- {
		tail := tour[len(tour)-1]
		best, bestCost, flip := -1, 3, false
		for k, path := range paths {
			if used[k] {
				continue
			}
			if c := in.Weight(tail, path[0]); c < bestCost {
				best, bestCost, flip = k, c, false
			}
			if c := in.Weight(tail, path[len(path)-1]); c < bestCost {
				best, bestCost, flip = k, c, true
			}
		}
		chosen := paths[best]
		if flip {
			for i, j := 0, len(chosen)-1; i < j; i, j = i+1, j-1 {
				chosen[i], chosen[j] = chosen[j], chosen[i]
			}
		}
		tour = append(tour, chosen...)
		used[best] = true
	}
	return tour, in.Cost(tour), nil
}
