package tsp

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"joinpebble/internal/faultinject"
	"joinpebble/internal/graph"
)

// jumpyInstance returns a TSP(1,2) instance with an empty good graph:
// every step costs 2, the jump-based pruning never bites before depth
// n-1, so branch-and-bound reliably expands far more than one checkpoint
// interval of nodes — the deterministic way to reach the mid-search
// cancellation paths without timing assumptions.
func jumpyInstance(n int) *Instance {
	return NewInstance(graph.New(n))
}

// TestExactContextCanceledMidSearch: a canceled context aborts Held–Karp
// at a subset-loop checkpoint, well inside one instance.
func TestExactContextCanceledMidSearch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// 12 cities = 4096 subsets: several checkpoints, still instant.
	_, _, err := ExactContext(ctx, pathInstance(12))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestExactContextUncanceledMatchesExact: threading a live context
// changes nothing about the result.
func TestExactContextUncanceledMatchesExact(t *testing.T) {
	in := pathInstance(14)
	t1, c1, err := Exact(in)
	if err != nil {
		t.Fatal(err)
	}
	t2, c2, err := ExactContext(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatalf("costs diverge: %d vs %d", c1, c2)
	}
	if fmt.Sprint(t1) != fmt.Sprint(t2) {
		t.Fatalf("tours diverge: %v vs %v", t1, t2)
	}
}

// TestExactContextInjectedError: an error armed at the Held–Karp
// checkpoint site surfaces verbatim from the search.
func TestExactContextInjectedError(t *testing.T) {
	defer faultinject.Reset()
	boom := errors.New("injected search failure")
	faultinject.Arm(SiteExactExpand, faultinject.Fault{Err: boom})
	_, _, err := ExactContext(context.Background(), pathInstance(12))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want injected error", err)
	}
	if faultinject.Hits(SiteExactExpand) == 0 {
		t.Fatal("checkpoint site never fired")
	}
}

// TestExactContextInjectedDelayTripsDeadline: a delay armed at the
// checkpoint site pushes the caller's deadline past expiry mid-search —
// the exact scenario the engine degrades on.
func TestExactContextInjectedDelayTripsDeadline(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Arm(SiteExactExpand, faultinject.Fault{Delay: 30 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := ExactContext(ctx, pathInstance(14))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancellation took %v, want prompt unwind", d)
	}
}

// TestBranchAndBoundAnytimeOnCancel: a canceled context stops the search
// at a checkpoint but still returns the nearest-neighbour-seeded
// incumbent — a valid full tour — with exhausted=false.
func TestBranchAndBoundAnytimeOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	in := jumpyInstance(10)
	tour, cost, exhausted := BranchAndBoundContext(ctx, in, 0)
	if exhausted {
		t.Fatal("exhausted=true under a canceled context")
	}
	if err := in.Validate(tour); err != nil {
		t.Fatalf("incumbent tour invalid: %v", err)
	}
	if want := in.Cost(tour); cost != want {
		t.Fatalf("reported cost %d, tour costs %d", cost, want)
	}
}

// TestBranchAndBoundInjectedAbort: an error armed at the node-expansion
// site aborts the search like a cancellation, incumbent intact.
func TestBranchAndBoundInjectedAbort(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Arm(SiteBnBExpand, faultinject.Fault{Err: errors.New("abort")})
	in := jumpyInstance(10)
	tour, _, exhausted := BranchAndBoundContext(context.Background(), in, 0)
	if exhausted {
		t.Fatal("exhausted=true after injected abort")
	}
	if err := in.Validate(tour); err != nil {
		t.Fatalf("incumbent tour invalid: %v", err)
	}
	if faultinject.Fired(SiteBnBExpand) == 0 {
		t.Fatal("abort site never fired")
	}
}

// TestBranchAndBoundContextLiveMatches: a live context changes nothing.
func TestBranchAndBoundContextLiveMatches(t *testing.T) {
	in := pathInstance(9)
	t1, c1, ex1 := BranchAndBound(in, 0)
	t2, c2, ex2 := BranchAndBoundContext(context.Background(), in, 0)
	if c1 != c2 || ex1 != ex2 {
		t.Fatalf("results diverge: (%d,%v) vs (%d,%v)", c1, ex1, c2, ex2)
	}
	if fmt.Sprint(t1) != fmt.Sprint(t2) {
		t.Fatalf("tours diverge: %v vs %v", t1, t2)
	}
}
