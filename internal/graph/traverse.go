package graph

import "sort"

// Components returns the connected components of g as slices of vertex
// ids, each sorted ascending, ordered by their smallest vertex. Isolated
// vertices form singleton components.
func (g *Graph) Components() [][]int {
	seen := make([]bool, g.n)
	var comps [][]int
	for s := 0; s < g.n; s++ {
		if seen[s] {
			continue
		}
		comp := g.bfsFrom(s, seen)
		comps = append(comps, comp)
	}
	return comps
}

// ComponentCount returns β₀(G), the number of connected components — the
// 0th Betti number used in Definition 2.2's effective cost.
func (g *Graph) ComponentCount() int {
	return len(g.Components())
}

// Connected reports whether g is connected. The empty graph and the
// single-vertex graph count as connected.
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	seen := make([]bool, g.n)
	comp := g.bfsFrom(0, seen)
	return len(comp) == g.n
}

func (g *Graph) bfsFrom(s int, seen []bool) []int {
	seen[s] = true
	queue := []int{s}
	comp := []int{s}
	c := g.csr // walk the flat spans when the compact index is built
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		nbs := g.adj[v]
		if c != nil {
			nbs = c.vert[c.start[v]:c.start[v+1]]
		}
		for _, w := range nbs {
			if !seen[w] {
				seen[w] = true
				queue = append(queue, w)
				comp = append(comp, w)
			}
		}
	}
	sort.Ints(comp)
	return comp
}

// DFSTree is a rooted spanning tree of one connected component, produced
// by DFSFrom. Parent[root] == -1; Parent[v] == -2 for vertices outside the
// component. Children lists preserve DFS visit order. Order lists the
// vertices in DFS preorder.
type DFSTree struct {
	Root     int
	Parent   []int
	Children [][]int
	Order    []int
}

// DFSFrom runs an iterative depth-first search from root and returns the
// DFS tree of root's component. In a DFS tree of an undirected graph there
// are no cross edges, so children of a common parent are pairwise
// non-adjacent — the property Theorem 3.1's construction relies on.
func (g *Graph) DFSFrom(root int) *DFSTree {
	g.checkVertex(root)
	t := &DFSTree{
		Root:     root,
		Parent:   make([]int, g.n),
		Children: make([][]int, g.n),
	}
	for i := range t.Parent {
		t.Parent[i] = -2
	}
	t.Parent[root] = -1

	// Iterative DFS with an explicit stack of (vertex, next-neighbor
	// cursor) to avoid recursion depth limits on long paths.
	type frame struct {
		v, next int
	}
	stack := []frame{{v: root}}
	t.Order = append(t.Order, root)
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		advanced := false
		for f.next < len(g.adj[f.v]) {
			w := g.adj[f.v][f.next]
			f.next++
			if t.Parent[w] == -2 {
				t.Parent[w] = f.v
				t.Children[f.v] = append(t.Children[f.v], w)
				t.Order = append(t.Order, w)
				stack = append(stack, frame{v: w})
				advanced = true
				break
			}
		}
		if !advanced {
			stack = stack[:len(stack)-1]
		}
	}
	return t
}

// SubtreeSize returns, for every vertex in the tree's component, the size
// of the subtree rooted at it (counting itself); 0 for vertices outside
// the component.
func (t *DFSTree) SubtreeSize() []int {
	size := make([]int, len(t.Parent))
	// Order is a preorder, so children appear after parents; accumulate in
	// reverse.
	for i := len(t.Order) - 1; i >= 0; i-- {
		v := t.Order[i]
		size[v]++
		if p := t.Parent[v]; p >= 0 {
			size[p] += size[v]
		}
	}
	return size
}

// SubtreeVertices returns the vertices of the subtree rooted at r in
// preorder.
func (t *DFSTree) SubtreeVertices(r int) []int {
	out := []int{r}
	for i := 0; i < len(out); i++ {
		out = append(out, t.Children[out[i]]...)
	}
	return out
}

// BFSDistances returns the BFS distance from s to every vertex (-1 where
// unreachable).
func (g *Graph) BFSDistances(s int) []int {
	g.checkVertex(s)
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[s] = 0
	queue := []int{s}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.adj[v] {
			if dist[w] == -1 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}
