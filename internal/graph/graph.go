// Package graph provides the graph substrate used throughout joinpebble:
// general undirected graphs, bipartite join graphs, traversals, line
// graphs, incidence graphs and the small structural predicates (claw
// detection, Hamiltonian-path search) that the paper's arguments rest on.
//
// Vertices are dense integers 0..N()-1. Edges are unordered pairs,
// deduplicated, and indexed 0..M()-1 in insertion order; the edge index is
// what the line graph and the pebbling machinery key on.
package graph

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Edge is an undirected edge between vertices U and V. Invariant: U <= V
// once stored in a Graph (Normalize enforces it).
type Edge struct {
	U, V int
}

// Normalize returns the edge with endpoints ordered so that U <= V.
func (e Edge) Normalize() Edge {
	if e.U > e.V {
		return Edge{U: e.V, V: e.U}
	}
	return e
}

// Other returns the endpoint of e that is not v. It panics if v is not an
// endpoint of e.
func (e Edge) Other(v int) int {
	switch v {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: vertex %d is not an endpoint of edge %v", v, e))
}

// SharesEndpoint reports whether e and f have a common endpoint.
func (e Edge) SharesEndpoint(f Edge) bool {
	return e.U == f.U || e.U == f.V || e.V == f.U || e.V == f.V
}

// Graph is a simple undirected graph with a fixed vertex count and a
// deduplicated, insertion-ordered edge list. The zero value is an empty
// graph with no vertices; use New to create one with vertices.
//
// Graphs have two representations. The mutable one — adjacency lists plus
// a map[Edge]int — supports AddEdge/AddVertex. Freeze (or, internally,
// Optimize) additionally builds a compact CSR-style index that turns the
// adjacency tests and incident-edge queries on the hot paths (line-graph
// construction, claw search, scheme simulation) into allocation-free
// array reads. A frozen graph rejects mutation and is safe for concurrent
// readers.
type Graph struct {
	n     int
	edges []Edge
	index map[Edge]int // normalized edge -> position in edges; nil for graphs built frozen
	adj   [][]int      // adjacency lists (neighbor vertex ids)

	//joinlint:lockrank graph-csr 70
	csrMu  sync.Mutex // guards lazy construction of csr
	csr    *csr       // compact index; nil until Freeze/Optimize
	frozen bool       // mutation disabled once set
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Graph{
		n:     n,
		index: make(map[Edge]int),
		adj:   make([][]int, n),
	}
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	h := New(g.n)
	for _, e := range g.edges {
		h.AddEdge(e.U, e.V)
	}
	return h
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// AddVertex appends a fresh vertex and returns its id. It panics if the
// graph is frozen.
func (g *Graph) AddVertex() int {
	g.invalidateCSR("AddVertex")
	g.adj = append(g.adj, nil)
	g.n++
	return g.n - 1
}

// AddEdge inserts the undirected edge {u,v} and returns its edge index.
// Inserting an existing edge returns the original index without
// duplicating it. Self-loops are rejected: the pebble game and all join
// graphs in the paper are simple graphs. AddEdge panics if the graph is
// frozen.
func (g *Graph) AddEdge(u, v int) int {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at vertex %d", u))
	}
	g.invalidateCSR("AddEdge")
	g.checkVertex(u)
	g.checkVertex(v)
	e := Edge{U: u, V: v}.Normalize()
	if i, ok := g.index[e]; ok {
		return i
	}
	i := len(g.edges)
	g.edges = append(g.edges, e)
	g.index[e] = i
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
	return i
}

// HasEdge reports whether {u,v} is an edge of g. On a frozen or optimized
// graph this is a binary search over the sorted neighbor span of the
// lower-degree endpoint; otherwise a map lookup.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= g.n || v >= g.n || u == v {
		return false
	}
	if c := g.csr; c != nil {
		_, ok := c.lookup(u, v)
		return ok
	}
	_, ok := g.index[Edge{U: u, V: v}.Normalize()]
	return ok
}

// EdgeIndex returns the index of edge {u,v} and whether it exists. Like
// HasEdge it takes the compact-index path on frozen/optimized graphs.
func (g *Graph) EdgeIndex(u, v int) (int, bool) {
	if u < 0 || v < 0 || u >= g.n || v >= g.n {
		return 0, false
	}
	if c := g.csr; c != nil {
		if u == v {
			return 0, false
		}
		return c.lookup(u, v)
	}
	i, ok := g.index[Edge{U: u, V: v}.Normalize()]
	return i, ok
}

// EdgeAt returns the i-th edge in insertion order.
func (g *Graph) EdgeAt(i int) Edge { return g.edges[i] }

// Edges returns a copy of the edge list in insertion order.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// Neighbors returns the neighbors of v in insertion order. The returned
// slice is owned by the graph and must not be mutated.
func (g *Graph) Neighbors(v int) []int {
	g.checkVertex(v)
	return g.adj[v]
}

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int {
	g.checkVertex(v)
	return len(g.adj[v])
}

// MaxDegree returns the maximum vertex degree, or 0 for an edgeless graph.
func (g *Graph) MaxDegree() int {
	d := 0
	for v := 0; v < g.n; v++ {
		if len(g.adj[v]) > d {
			d = len(g.adj[v])
		}
	}
	return d
}

// IncidentEdges returns the indices of edges incident to v, in increasing
// edge-index order. On a frozen or optimized graph the returned slice is
// a zero-copy view owned by the graph and must not be mutated (it sits
// inside LineGraph's inner loop, where the former per-call allocation
// dominated); otherwise it is freshly allocated.
func (g *Graph) IncidentEdges(v int) []int {
	g.checkVertex(v)
	if c := g.csr; c != nil {
		lo, hi := c.start[v], c.start[v+1]
		return c.edge[lo:hi:hi]
	}
	out := make([]int, 0, len(g.adj[v]))
	for _, u := range g.adj[v] {
		out = append(out, g.index[Edge{U: u, V: v}.Normalize()])
	}
	return out
}

// IsolatedVertices returns the vertices with degree zero. The paper
// removes these a priori (§2): the pebble game only concerns the edge set.
func (g *Graph) IsolatedVertices() []int {
	var out []int
	for v := 0; v < g.n; v++ {
		if len(g.adj[v]) == 0 {
			out = append(out, v)
		}
	}
	return out
}

// WithoutIsolated returns a copy of g with isolated vertices removed and
// the remaining vertices renumbered densely, plus the old->new vertex map
// (entries for dropped vertices are -1). Edge insertion order is preserved,
// so edge indices are stable across the operation.
func (g *Graph) WithoutIsolated() (*Graph, []int) {
	remap := make([]int, g.n)
	next := 0
	for v := 0; v < g.n; v++ {
		if len(g.adj[v]) == 0 {
			remap[v] = -1
			continue
		}
		remap[v] = next
		next++
	}
	h := New(next)
	for _, e := range g.edges {
		h.AddEdge(remap[e.U], remap[e.V])
	}
	return h, remap
}

// InducedSubgraph returns the subgraph induced by the given vertices,
// renumbered 0..len(vs)-1 in the order given, plus the old->new map
// (-1 for excluded vertices). Duplicate entries in vs panic.
func (g *Graph) InducedSubgraph(vs []int) (*Graph, []int) {
	remap := make([]int, g.n)
	for i := range remap {
		remap[i] = -1
	}
	for i, v := range vs {
		g.checkVertex(v)
		if remap[v] != -1 {
			panic(fmt.Sprintf("graph: duplicate vertex %d in induced subgraph", v))
		}
		remap[v] = i
	}
	h := New(len(vs))
	for _, e := range g.edges {
		if remap[e.U] >= 0 && remap[e.V] >= 0 {
			h.AddEdge(remap[e.U], remap[e.V])
		}
	}
	return h, remap
}

// Equal reports whether g and h have the same vertex count and the same
// edge set (insertion order is ignored).
func (g *Graph) Equal(h *Graph) bool {
	if g.n != h.n || len(g.edges) != len(h.edges) {
		return false
	}
	for _, e := range g.edges {
		if !h.HasEdge(e.U, e.V) {
			return false
		}
	}
	return true
}

// DegreeSequence returns the sorted (descending) degree sequence.
func (g *Graph) DegreeSequence() []int {
	ds := make([]int, g.n)
	for v := 0; v < g.n; v++ {
		ds[v] = len(g.adj[v])
	}
	sort.Sort(sort.Reverse(sort.IntSlice(ds)))
	return ds
}

// String renders a compact description, e.g. "graph{n=4 m=3 [0-1 1-2 2-3]}".
func (g *Graph) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "graph{n=%d m=%d [", g.n, len(g.edges))
	for i, e := range g.edges {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%d-%d", e.U, e.V)
	}
	sb.WriteString("]}")
	return sb.String()
}

func (g *Graph) checkVertex(v int) {
	if v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", v, g.n))
	}
}

// DisjointUnion returns the disjoint union of g and h: h's vertices are
// shifted by g.N(). Edge order is g's edges followed by h's.
func DisjointUnion(g, h *Graph) *Graph {
	u := New(g.n + h.n)
	for _, e := range g.edges {
		u.AddEdge(e.U, e.V)
	}
	for _, e := range h.edges {
		u.AddEdge(e.U+g.n, e.V+g.n)
	}
	return u
}
