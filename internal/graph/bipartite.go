package graph

import (
	"fmt"
	"strings"
)

// Bipartite is a bipartite graph G = (R, S, E) in the paper's sense: the
// join graph of two relations. Left vertices model tuples of R, right
// vertices tuples of S. Internally it embeds a Graph where left vertex i
// is vertex i and right vertex j is vertex NLeft()+j, so all Graph
// machinery (components, DFS, line graph) applies directly.
type Bipartite struct {
	g      *Graph
	nLeft  int
	nRight int
}

// NewBipartite returns an empty bipartite graph with the given side sizes.
func NewBipartite(nLeft, nRight int) *Bipartite {
	if nLeft < 0 || nRight < 0 {
		panic("graph: negative side size")
	}
	return &Bipartite{g: New(nLeft + nRight), nLeft: nLeft, nRight: nRight}
}

// NLeft returns the number of left (R-side) vertices.
func (b *Bipartite) NLeft() int { return b.nLeft }

// NRight returns the number of right (S-side) vertices.
func (b *Bipartite) NRight() int { return b.nRight }

// M returns the number of edges — the join's output size, the paper's
// input-size parameter m.
func (b *Bipartite) M() int { return b.g.M() }

// AddEdge inserts the edge between left vertex l and right vertex r and
// returns its edge index.
func (b *Bipartite) AddEdge(l, r int) int {
	b.checkLeft(l)
	b.checkRight(r)
	return b.g.AddEdge(l, b.nLeft+r)
}

// HasEdge reports whether left l and right r are joined.
func (b *Bipartite) HasEdge(l, r int) bool {
	if l < 0 || l >= b.nLeft || r < 0 || r >= b.nRight {
		return false
	}
	return b.g.HasEdge(l, b.nLeft+r)
}

// Graph returns the underlying general graph. Callers must not add edges
// through it that would violate bipartiteness; use AddEdge instead.
func (b *Bipartite) Graph() *Graph { return b.g }

// Side reports which side vertex v (in underlying-graph numbering) lies
// on: true for left.
func (b *Bipartite) Side(v int) bool { return v < b.nLeft }

// LeftVertex converts a left index to underlying-graph numbering.
func (b *Bipartite) LeftVertex(l int) int {
	b.checkLeft(l)
	return l
}

// RightVertex converts a right index to underlying-graph numbering.
func (b *Bipartite) RightVertex(r int) int {
	b.checkRight(r)
	return b.nLeft + r
}

// EdgeAt returns the i-th edge as a (left, right) index pair.
func (b *Bipartite) EdgeAt(i int) (l, r int) {
	e := b.g.EdgeAt(i)
	if e.U < b.nLeft {
		return e.U, e.V - b.nLeft
	}
	return e.V, e.U - b.nLeft
}

// LeftDegree returns the degree of left vertex l.
func (b *Bipartite) LeftDegree(l int) int { return b.g.Degree(b.LeftVertex(l)) }

// RightDegree returns the degree of right vertex r.
func (b *Bipartite) RightDegree(r int) int { return b.g.Degree(b.RightVertex(r)) }

// Equal reports whether b and c have the same side sizes and edge sets.
func (b *Bipartite) Equal(c *Bipartite) bool {
	return b.nLeft == c.nLeft && b.nRight == c.nRight && b.g.Equal(c.g)
}

// Clone returns a deep copy.
func (b *Bipartite) Clone() *Bipartite {
	return &Bipartite{g: b.g.Clone(), nLeft: b.nLeft, nRight: b.nRight}
}

// String renders edges as l-r pairs in (left,right) index space.
func (b *Bipartite) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "bipartite{%dx%d m=%d [", b.nLeft, b.nRight, b.M())
	for i := 0; i < b.M(); i++ {
		l, r := b.EdgeAt(i)
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%d-%d", l, r)
	}
	sb.WriteString("]}")
	return sb.String()
}

func (b *Bipartite) checkLeft(l int) {
	if l < 0 || l >= b.nLeft {
		panic(fmt.Sprintf("graph: left vertex %d out of range [0,%d)", l, b.nLeft))
	}
}

func (b *Bipartite) checkRight(r int) {
	if r < 0 || r >= b.nRight {
		panic(fmt.Sprintf("graph: right vertex %d out of range [0,%d)", r, b.nRight))
	}
}

// IsBipartition verifies by 2-coloring that g is bipartite and, if so,
// returns one valid side assignment (true = left). The second return is
// false when g contains an odd cycle.
func IsBipartition(g *Graph) ([]bool, bool) {
	color := make([]int, g.N()) // 0 unset, 1 left, 2 right
	for s := 0; s < g.N(); s++ {
		if color[s] != 0 {
			continue
		}
		color[s] = 1
		queue := []int{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range g.Neighbors(v) {
				if color[w] == 0 {
					color[w] = 3 - color[v]
					queue = append(queue, w)
				} else if color[w] == color[v] {
					return nil, false
				}
			}
		}
	}
	side := make([]bool, g.N())
	for v, c := range color {
		side[v] = c == 1
	}
	return side, true
}

// FromGraph reinterprets a bipartite general graph as a Bipartite by
// 2-coloring it. Vertices keep their relative order within each side. It
// returns the bipartite graph plus maps from original vertex id to
// (isLeft, side index). It fails if g is not bipartite.
func FromGraph(g *Graph) (*Bipartite, []bool, []int, error) {
	side, ok := IsBipartition(g)
	if !ok {
		return nil, nil, nil, fmt.Errorf("graph: not bipartite (odd cycle)")
	}
	idx := make([]int, g.N())
	nl, nr := 0, 0
	for v := 0; v < g.N(); v++ {
		if side[v] {
			idx[v] = nl
			nl++
		} else {
			idx[v] = nr
			nr++
		}
	}
	b := NewBipartite(nl, nr)
	for _, e := range g.Edges() {
		if side[e.U] {
			b.AddEdge(idx[e.U], idx[e.V])
		} else {
			b.AddEdge(idx[e.V], idx[e.U])
		}
	}
	return b, side, idx, nil
}

// CompleteBipartite returns K_{k,l} with edges in the boustrophedon order
// used by Lemma 3.2's perfect pebbling.
func CompleteBipartite(k, l int) *Bipartite {
	b := NewBipartite(k, l)
	for i := 0; i < k; i++ {
		for j := 0; j < l; j++ {
			b.AddEdge(i, j)
		}
	}
	return b
}

// Matching returns a perfect matching with m edges (Lemma 2.4's family).
func Matching(m int) *Bipartite {
	b := NewBipartite(m, m)
	for i := 0; i < m; i++ {
		b.AddEdge(i, i)
	}
	return b
}

// PathBipartite returns a path with m edges, alternating sides.
func PathBipartite(m int) *Bipartite {
	nl := (m + 2) / 2
	nr := (m + 1) / 2
	b := NewBipartite(nl, nr)
	for i := 0; i < m; i++ {
		b.AddEdge((i+1)/2, i/2)
	}
	return b
}

// CycleBipartite returns an even cycle with m edges (m must be even, >= 4).
func CycleBipartite(m int) *Bipartite {
	if m < 4 || m%2 != 0 {
		panic("graph: bipartite cycle needs even m >= 4")
	}
	n := m / 2
	b := NewBipartite(n, n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, i)
		b.AddEdge((i+1)%n, i)
	}
	return b
}

// GridBipartite returns the rows x cols grid graph (always bipartite).
func GridBipartite(rows, cols int) *Bipartite {
	g := New(rows * cols)
	at := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddEdge(at(r, c), at(r, c+1))
			}
			if r+1 < rows {
				g.AddEdge(at(r, c), at(r+1, c))
			}
		}
	}
	b, _, _, err := FromGraph(g)
	if err != nil {
		panic("graph: grid must be bipartite: " + err.Error())
	}
	return b
}
