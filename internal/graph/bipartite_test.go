package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBipartiteNumbering(t *testing.T) {
	b := NewBipartite(2, 3)
	if b.LeftVertex(1) != 1 || b.RightVertex(0) != 2 || b.RightVertex(2) != 4 {
		t.Fatal("vertex numbering broken")
	}
	if !b.Side(1) || b.Side(2) {
		t.Fatal("Side broken")
	}
	b.AddEdge(1, 2)
	l, r := b.EdgeAt(0)
	if l != 1 || r != 2 {
		t.Fatalf("EdgeAt got (%d,%d)", l, r)
	}
	if !b.HasEdge(1, 2) || b.HasEdge(0, 0) {
		t.Fatal("HasEdge broken")
	}
}

func TestBipartiteDegrees(t *testing.T) {
	b := NewBipartite(2, 2)
	b.AddEdge(0, 0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 1)
	if b.LeftDegree(0) != 2 || b.LeftDegree(1) != 1 {
		t.Fatal("left degrees")
	}
	if b.RightDegree(0) != 1 || b.RightDegree(1) != 2 {
		t.Fatal("right degrees")
	}
}

func TestIsBipartitionRejectsOddCycle(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	if _, ok := IsBipartition(g); ok {
		t.Fatal("triangle should not be bipartite")
	}
}

func TestIsBipartitionAcceptsEvenCycle(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 0)
	side, ok := IsBipartition(g)
	if !ok {
		t.Fatal("C4 is bipartite")
	}
	for _, e := range g.Edges() {
		if side[e.U] == side[e.V] {
			t.Fatal("2-coloring puts edge inside one side")
		}
	}
}

func TestFromGraphRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		b := RandomConnectedBipartite(rng, 4, 5, 12)
		b2, _, _, err := FromGraph(b.Graph())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if b2.M() != b.M() {
			t.Fatalf("trial %d: m=%d want %d", trial, b2.M(), b.M())
		}
		// Side sizes may swap (2-coloring is symmetric) but the total and
		// the degree multiset must agree.
		if b2.NLeft()+b2.NRight() != b.NLeft()+b.NRight() {
			t.Fatalf("trial %d: vertex count changed", trial)
		}
		ds1 := b.Graph().DegreeSequence()
		ds2 := b2.Graph().DegreeSequence()
		for i := range ds1 {
			if ds1[i] != ds2[i] {
				t.Fatalf("trial %d: degree sequences differ", trial)
			}
		}
	}
}

func TestCompleteBipartite(t *testing.T) {
	b := CompleteBipartite(3, 4)
	if b.M() != 12 {
		t.Fatalf("K_{3,4} has %d edges", b.M())
	}
	if !b.Graph().Connected() {
		t.Fatal("K_{3,4} should be connected")
	}
	for l := 0; l < 3; l++ {
		if b.LeftDegree(l) != 4 {
			t.Fatal("left degree in complete bipartite")
		}
	}
}

func TestMatchingStructure(t *testing.T) {
	b := Matching(5)
	if b.M() != 5 {
		t.Fatal("matching size")
	}
	if b.Graph().ComponentCount() != 5 {
		t.Fatal("matching should have one component per edge")
	}
	if b.Graph().MaxDegree() != 1 {
		t.Fatal("matching max degree")
	}
}

func TestPathBipartite(t *testing.T) {
	for m := 1; m <= 9; m++ {
		b := PathBipartite(m)
		if b.M() != m {
			t.Fatalf("m=%d: got %d edges", m, b.M())
		}
		g, _ := b.Graph().WithoutIsolated()
		if !g.Connected() {
			t.Fatalf("m=%d: path disconnected", m)
		}
		// A path has exactly two degree-1 vertices (or one edge case m=1).
		deg1 := 0
		for v := 0; v < g.N(); v++ {
			if g.Degree(v) == 1 {
				deg1++
			}
			if g.Degree(v) > 2 {
				t.Fatalf("m=%d: degree >2 in path", m)
			}
		}
		if deg1 != 2 {
			t.Fatalf("m=%d: %d endpoints", m, deg1)
		}
	}
}

func TestCycleBipartite(t *testing.T) {
	for _, m := range []int{4, 6, 10} {
		b := CycleBipartite(m)
		if b.M() != m {
			t.Fatalf("m=%d: edges=%d", m, b.M())
		}
		g := b.Graph()
		if !g.Connected() {
			t.Fatal("cycle disconnected")
		}
		for v := 0; v < g.N(); v++ {
			if g.Degree(v) != 2 {
				t.Fatalf("cycle vertex degree %d", g.Degree(v))
			}
		}
	}
}

func TestCycleBipartiteRejectsOdd(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd cycle must panic")
		}
	}()
	CycleBipartite(5)
}

func TestGridBipartite(t *testing.T) {
	b := GridBipartite(3, 4)
	wantM := 3*3 + 2*4 // horizontal + vertical
	if b.M() != wantM {
		t.Fatalf("grid edges=%d want %d", b.M(), wantM)
	}
	if !b.Graph().Connected() {
		t.Fatal("grid disconnected")
	}
}

func TestRandomConnectedBipartiteProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := &quick.Config{MaxCount: 40, Rand: rng}
	err := quick.Check(func(seedRaw int64, nlRaw, nrRaw, extraRaw uint8) bool {
		nl := int(nlRaw%5) + 2
		nr := int(nrRaw%5) + 2
		minM := nl + nr - 1
		maxM := nl * nr
		m := minM + int(extraRaw)%(maxM-minM+1)
		b := RandomConnectedBipartite(rand.New(rand.NewSource(seedRaw)), nl, nr, m)
		if b.M() != m {
			return false
		}
		if !b.Graph().Connected() {
			return false
		}
		if _, ok := IsBipartition(b.Graph()); !ok {
			return false
		}
		return true
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRandomBipartiteDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	b := RandomBipartite(rng, 50, 50, 0.5)
	if b.M() < 900 || b.M() > 1600 {
		t.Fatalf("p=0.5 on 2500 pairs gave m=%d, far from expectation", b.M())
	}
	if RandomBipartite(rng, 10, 10, 0).M() != 0 {
		t.Fatal("p=0 must give no edges")
	}
	if RandomBipartite(rng, 10, 10, 1).M() != 100 {
		t.Fatal("p=1 must give all edges")
	}
}

func TestBipartiteEqualClone(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := RandomConnectedBipartite(rng, 3, 3, 6)
	c := b.Clone()
	if !b.Equal(c) {
		t.Fatal("clone should be Equal")
	}
	c.AddEdge(0, 0)
	if c.M() == b.M() && b.Equal(c) {
		t.Fatal("clone shares storage")
	}
}
