package graph

// Adjacency is a read-only neighborhood oracle over vertices 0..N()-1 —
// the minimal interface the structural algorithms (the Theorem 3.1 DFS
// partition, claw search, small Hamiltonian searches) need. *Graph
// implements it directly; LineGraphView implements it for L(G) without
// materializing the line graph.
type Adjacency interface {
	// N returns the number of vertices.
	N() int
	// Degree returns the number of neighbors of v.
	Degree(v int) int
	// HasEdge reports whether u and v are adjacent.
	HasEdge(u, v int) bool
	// AppendNeighbors appends the neighbors of v to buf and returns the
	// extended slice. Neighbors are distinct and never include v itself.
	AppendNeighbors(buf []int, v int) []int
}

// AppendNeighbors implements Adjacency by appending the adjacency list.
func (g *Graph) AppendNeighbors(buf []int, v int) []int {
	g.checkVertex(v)
	return append(buf, g.adj[v]...)
}

// LineGraphView is an implicit adjacency view of L(G): vertex i of the
// view is edge i of the base graph, and two view vertices are adjacent
// iff the underlying edges share an endpoint (§2.2). Unlike LineGraph it
// never materializes the O(Σ deg²) edge set — adjacency tests are O(1)
// endpoint comparisons and neighborhoods are walked directly off the
// base graph's incident-edge spans — which is what makes the Theorem 3.1
// construction affordable on dense instances (complete bipartite
// components, the G_n family) where |E(L(G))| dwarfs |E(G)|.
//
// The view holds the base graph's compact index, so the base must not be
// mutated while the view is in use.
type LineGraphView struct {
	g *Graph
	c *csr
}

// NewLineGraphView returns the implicit line-graph view of g, building
// g's compact index if needed.
func NewLineGraphView(g *Graph) *LineGraphView {
	return &LineGraphView{g: g, c: g.ensureCSR()}
}

// Base returns the underlying graph.
func (lv *LineGraphView) Base() *Graph { return lv.g }

// N implements Adjacency: L(G) has one vertex per edge of G.
func (lv *LineGraphView) N() int { return len(lv.g.edges) }

// Degree implements Adjacency: deg(u) + deg(v) − 2 for base edge {u,v}.
func (lv *LineGraphView) Degree(i int) int {
	e := lv.g.edges[i]
	c := lv.c
	return (c.start[e.U+1] - c.start[e.U]) + (c.start[e.V+1] - c.start[e.V]) - 2
}

// HasEdge implements Adjacency: view vertices are adjacent iff the
// underlying edges are distinct and share an endpoint.
func (lv *LineGraphView) HasEdge(i, j int) bool {
	if i == j || i < 0 || j < 0 || i >= len(lv.g.edges) || j >= len(lv.g.edges) {
		return false
	}
	return lv.g.edges[i].SharesEndpoint(lv.g.edges[j])
}

// AppendNeighbors implements Adjacency: the incident edges of both
// endpoints of base edge i, excluding i itself. The two spans are
// disjoint apart from i — a base edge sharing both endpoints with edge i
// would equal it — so no deduplication is needed.
func (lv *LineGraphView) AppendNeighbors(buf []int, i int) []int {
	e := lv.g.edges[i]
	c := lv.c
	for _, f := range c.edge[c.start[e.U]:c.start[e.U+1]] {
		if f != i {
			buf = append(buf, f)
		}
	}
	for _, f := range c.edge[c.start[e.V]:c.start[e.V+1]] {
		if f != i {
			buf = append(buf, f)
		}
	}
	return buf
}
