package graph

import (
	"math/rand"
	"strings"
	"testing"
)

func TestGraphRoundTrip(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	var sb strings.Builder
	if err := WriteGraph(&sb, g); err != nil {
		t.Fatal(err)
	}
	v, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	h, ok := v.(*Graph)
	if !ok {
		t.Fatalf("got %T", v)
	}
	if !g.Equal(h) {
		t.Fatal("round trip changed graph")
	}
}

func TestBipartiteRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	b := RandomConnectedBipartite(rng, 4, 3, 9)
	var sb strings.Builder
	if err := WriteBipartite(&sb, b); err != nil {
		t.Fatal(err)
	}
	c, err := ReadBipartite(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !b.Equal(c) {
		t.Fatal("round trip changed bipartite graph")
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	in := "# a comment\n\nbipartite 2 2\n e 0 0 \n# another\ne 1 1\n"
	b, err := ReadBipartite(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if b.M() != 2 || !b.HasEdge(0, 0) || !b.HasEdge(1, 1) {
		t.Fatalf("parsed %v", b)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"",                   // empty
		"e 0 1\n",            // edge before header
		"graph 2\ngraph 2\n", // duplicate header
		"graph x\n",          // bad count
		"graph 2\ne 0\n",     // short edge
		"bogus 1\n",          // unknown record
		"bipartite 2\n",      // missing side
		"graph 2\ne 0 5\n",   // vertex out of range (panics -> not here)
	}
	for _, in := range cases[:7] {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("input %q: want error", in)
		}
	}
}

func TestReadGeneralAsBipartite(t *testing.T) {
	in := "graph 4\ne 0 1\ne 1 2\ne 2 3\n"
	b, err := ReadBipartite(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if b.M() != 3 {
		t.Fatalf("m=%d", b.M())
	}
	in = "graph 3\ne 0 1\ne 1 2\ne 2 0\n"
	if _, err := ReadBipartite(strings.NewReader(in)); err == nil {
		t.Fatal("triangle must fail bipartite read")
	}
}
