package graph

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"joinpebble/internal/faultinject"
)

// testSpider mirrors family.Spider (which cannot be imported here
// without a cycle): center c joined to n middles, each middle to one
// leaf. Its line graph is K_n plus a pendant per clique vertex —
// claw-free, the hard case the bench series pins.
func testSpider(n int) *Graph {
	g := New(1 + 2*n)
	for i := 0; i < n; i++ {
		g.AddEdge(0, 1+i)     // center – middle_i
		g.AddEdge(1+i, 1+n+i) // middle_i – leaf_i
	}
	return g
}

// star returns K_{1,k}: the smallest claw carrier for k >= 3.
func star(k int) *Graph {
	g := New(k + 1)
	for i := 1; i <= k; i++ {
		g.AddEdge(0, i)
	}
	return g
}

// clawDiffCases builds the differential corpus: spiders, random
// bipartite and general graphs, and their line graphs (claw-free side).
func clawDiffCases(rng *rand.Rand) []*Graph {
	cases := []*Graph{
		New(0),
		New(1),
		star(3),
		star(7),
		testSpider(5),
		testSpider(40),
		LineGraph(testSpider(40)),
	}
	for i := 0; i < 8; i++ {
		nl, nr := 6+rng.Intn(8), 5+rng.Intn(6)
		lo, hi := nl+nr-1, nl*nr
		b := RandomConnectedBipartite(rng, nl, nr, lo+rng.Intn(hi-lo+1))
		cases = append(cases, b.Graph(), LineGraph(b.Graph()))
	}
	for i := 0; i < 8; i++ {
		n := 8 + rng.Intn(12)
		g := RandomConnectedGraph(rng, n, n-1+rng.Intn(12), 0)
		cases = append(cases, g, LineGraph(g))
	}
	return cases
}

// checkKernelsAgree asserts the bitset kernel (through s, which may be
// nil) and the scalar oracle return identical results on a.
func checkKernelsAgree(t *testing.T, a Adjacency, s *ClawScratch) {
	t.Helper()
	wc, wl, wok := FindClawScalar(a, nil)
	gc, gl, gok, err := FindClawContext(context.Background(), a, s)
	if err != nil {
		t.Fatalf("FindClawContext: %v", err)
	}
	if gok != wok || gc != wc || gl != wl {
		t.Fatalf("kernels disagree: bitset (%d, %v, %v) vs scalar (%d, %v, %v)",
			gc, gl, gok, wc, wl, wok)
	}
	if wok {
		// The claw must actually be a claw, not just agreed upon.
		l := wl
		if !a.HasEdge(wc, l[0]) || !a.HasEdge(wc, l[1]) || !a.HasEdge(wc, l[2]) {
			t.Fatalf("center %d not adjacent to all of %v", wc, l)
		}
		if a.HasEdge(l[0], l[1]) || a.HasEdge(l[0], l[2]) || a.HasEdge(l[1], l[2]) {
			t.Fatalf("leaves %v not pairwise non-adjacent", l)
		}
	}
}

func TestClawKernelDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for i, g := range clawDiffCases(rng) {
		g.Optimize()
		checkKernelsAgree(t, g, nil)
		// And over the implicit line-graph view, the production shape.
		checkKernelsAgree(t, NewLineGraphView(g), nil)
		_ = i
	}
}

func TestClawScratchReuseAcrossScans(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s := NewClawScratch()
	// Interleave graphs of very different sizes so Reset exercises both
	// the stale-row sweep and the geometry-change re-zero.
	for i, g := range clawDiffCases(rng) {
		g.Optimize()
		checkKernelsAgree(t, g, s)
		if i%3 == 0 {
			checkKernelsAgree(t, NewLineGraphView(g), s)
		}
	}
	// Same graph twice through one scratch: the second scan hits warm rows.
	lg := LineGraph(testSpider(60))
	checkKernelsAgree(t, lg, s)
	checkKernelsAgree(t, lg, s)
}

func TestClawFreeLineGraphScratch(t *testing.T) {
	s := NewClawScratch()
	for _, n := range []int{1, 4, 33, 80} {
		g := testSpider(n)
		if !ClawFreeLineGraphScratch(g, s) {
			t.Fatalf("spider(%d) line graph must be claw-free", n)
		}
	}
	if ClawFreeLineGraphScratch(star(3), s) != ClawFreeLineGraph(star(3)) {
		t.Fatal("scratch and scratchless results differ")
	}
}

// withWorkers runs f with the claw-scan parallelism hook pinned to w.
func withWorkers(w int, f func()) {
	prev := ClawScanWorkers
	ClawScanWorkers = func() int { return w }
	defer func() { ClawScanWorkers = prev }()
	f()
}

func TestClawParallelDeterministic(t *testing.T) {
	// Large enough (n >= clawParallelMinN) that the parallel path engages.
	rng := rand.New(rand.NewSource(43))
	cases := []Adjacency{
		NewLineGraphView(testSpider(400)),                                // n=800, claw-free
		star(700).Optimize(),                                             // claw at 0 immediately
		RandomConnectedBipartite(rng, 400, 300, 2100).Graph().Optimize(), // claws likely, mid-scan
		LineGraph(RandomConnectedBipartite(rng, 300, 300, 900).Graph()),  // claw-free, n=900
	}
	for ci, a := range cases {
		wantC, wantL, wantOK, err := FindClawContext(context.Background(), a, nil)
		if err != nil {
			t.Fatalf("case %d sequential: %v", ci, err)
		}
		for _, w := range []int{1, 2, 8} {
			withWorkers(w, func() {
				s := NewClawScratch()
				c, l, ok, err := FindClawContext(context.Background(), a, s)
				if err != nil {
					t.Fatalf("case %d workers=%d: %v", ci, w, err)
				}
				if ok != wantOK || c != wantC || l != wantL {
					t.Fatalf("case %d workers=%d: got (%d, %v, %v), want (%d, %v, %v)",
						ci, w, c, l, ok, wantC, wantL, wantOK)
				}
				// A parallel scan leaves the scratch warm; a sequential
				// rescan through it must agree.
				withWorkers(1, func() {
					c2, l2, ok2, err := FindClawContext(context.Background(), a, s)
					if err != nil || ok2 != wantOK || c2 != wantC || l2 != wantL {
						t.Fatalf("case %d warm rescan after workers=%d: got (%d, %v, %v, %v)",
							ci, w, c2, l2, ok2, err)
					}
				})
			})
		}
	}
}

func TestClawRowBudgetFallback(t *testing.T) {
	prev := clawRowBudgetWords
	clawRowBudgetWords = 1 // force every non-trivial scan onto the scalar path
	defer func() { clawRowBudgetWords = prev }()
	rng := rand.New(rand.NewSource(44))
	for _, g := range clawDiffCases(rng) {
		g.Optimize()
		checkKernelsAgree(t, g, nil)
	}
}

func TestClawScanCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	a := NewLineGraphView(testSpider(200))
	if _, _, _, err := FindClawContext(ctx, a, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("sequential: err = %v, want context.Canceled", err)
	}
	withWorkers(4, func() {
		if _, _, _, err := FindClawContext(ctx, a, nil); !errors.Is(err, context.Canceled) {
			t.Fatalf("parallel: err = %v, want context.Canceled", err)
		}
	})
}

func TestClawScanFaultInjection(t *testing.T) {
	defer faultinject.Reset()
	injected := errors.New("injected claw-scan fault")
	a := NewLineGraphView(testSpider(600)) // n=1200: checkpoints at v=0 and v=1024

	faultinject.Arm(SiteClawScan, faultinject.Fault{Err: injected})
	if _, _, _, err := FindClawContext(context.Background(), a, nil); !errors.Is(err, injected) {
		t.Fatalf("sequential: err = %v, want injected", err)
	}
	withWorkers(4, func() {
		// The error must outrank any claw a worker may have found.
		if _, _, _, err := FindClawContext(context.Background(), a, nil); !errors.Is(err, injected) {
			t.Fatalf("parallel: err = %v, want injected", err)
		}
	})
	faultinject.Reset()

	// A later armed firing (Skip past the first checkpoint) aborts a scan
	// mid-flight; the scratch must still be reusable afterwards.
	s := NewClawScratch()
	faultinject.Arm(SiteClawScan, faultinject.Fault{Err: injected, Skip: 1, Times: 1})
	if _, _, _, err := FindClawContext(context.Background(), a, s); !errors.Is(err, injected) {
		t.Fatalf("mid-scan: err = %v, want injected", err)
	}
	faultinject.Reset()
	checkKernelsAgree(t, a, s)
}

func TestFindClawInScratchPanicsOnInjectedFault(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Arm(SiteClawScan, faultinject.Fault{Err: errors.New("boom")})
	defer func() {
		if recover() == nil {
			t.Fatal("FindClawIn with an armed fault should panic")
		}
	}()
	FindClawIn(NewLineGraphView(testSpider(10)))
}

// FuzzClawKernels drives the bitset kernel against the scalar oracle on
// seed-derived random graphs, both raw (clawful) and as line graphs
// (claw-free), with and without scratch reuse.
func FuzzClawKernels(f *testing.F) {
	f.Add(int64(1), uint8(10), uint8(20), false)
	f.Add(int64(7), uint8(30), uint8(60), true)
	f.Add(int64(99), uint8(3), uint8(2), false)
	f.Fuzz(func(t *testing.T, seed int64, n, m uint8, asLineGraph bool) {
		nv := 2 + int(n)%40
		ne := nv - 1 + int(m)
		if max := nv * (nv - 1) / 2; ne > max {
			ne = max
		}
		rng := rand.New(rand.NewSource(seed))
		g := RandomConnectedGraph(rng, nv, ne, 0)
		if asLineGraph {
			g = LineGraph(g)
		}
		g.Optimize()
		checkKernelsAgree(t, g, nil)
		checkKernelsAgree(t, g, NewClawScratch())
	})
}
