package graph

import (
	"math/rand"
	"testing"
)

func TestEdgeNormalize(t *testing.T) {
	e := Edge{U: 5, V: 2}.Normalize()
	if e.U != 2 || e.V != 5 {
		t.Fatalf("Normalize: got %v", e)
	}
	if f := (Edge{U: 1, V: 3}).Normalize(); f.U != 1 || f.V != 3 {
		t.Fatalf("Normalize should keep ordered edge: got %v", f)
	}
}

func TestEdgeOther(t *testing.T) {
	e := Edge{U: 1, V: 2}
	if e.Other(1) != 2 || e.Other(2) != 1 {
		t.Fatal("Other returned wrong endpoint")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Other on non-endpoint should panic")
		}
	}()
	e.Other(3)
}

func TestEdgeSharesEndpoint(t *testing.T) {
	a := Edge{U: 0, V: 1}
	cases := []struct {
		b    Edge
		want bool
	}{
		{Edge{U: 1, V: 2}, true},
		{Edge{U: 0, V: 2}, true},
		{Edge{U: 2, V: 3}, false},
		{Edge{U: 0, V: 1}, true},
	}
	for _, c := range cases {
		if got := a.SharesEndpoint(c.b); got != c.want {
			t.Errorf("SharesEndpoint(%v,%v)=%v want %v", a, c.b, got, c.want)
		}
	}
}

func TestAddEdgeDedup(t *testing.T) {
	g := New(3)
	i := g.AddEdge(0, 1)
	j := g.AddEdge(1, 0)
	if i != j {
		t.Fatalf("duplicate edge got distinct indices %d, %d", i, j)
	}
	if g.M() != 1 {
		t.Fatalf("M=%d want 1", g.M())
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 {
		t.Fatal("duplicate insert changed degrees")
	}
}

func TestSelfLoopPanics(t *testing.T) {
	g := New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("self-loop should panic")
		}
	}()
	g.AddEdge(1, 1)
}

func TestAddVertex(t *testing.T) {
	g := New(1)
	v := g.AddVertex()
	if v != 1 || g.N() != 2 {
		t.Fatalf("AddVertex: v=%d n=%d", v, g.N())
	}
	g.AddEdge(0, v)
	if !g.HasEdge(0, 1) {
		t.Fatal("edge to new vertex missing")
	}
}

func TestIncidentEdges(t *testing.T) {
	g := New(4)
	e01 := g.AddEdge(0, 1)
	e02 := g.AddEdge(0, 2)
	e23 := g.AddEdge(2, 3)
	inc := g.IncidentEdges(0)
	if len(inc) != 2 || inc[0] != e01 || inc[1] != e02 {
		t.Fatalf("IncidentEdges(0)=%v", inc)
	}
	if inc := g.IncidentEdges(3); len(inc) != 1 || inc[0] != e23 {
		t.Fatalf("IncidentEdges(3)=%v", inc)
	}
}

func TestWithoutIsolated(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 2)
	g.AddEdge(2, 4)
	h, remap := g.WithoutIsolated()
	if h.N() != 3 || h.M() != 2 {
		t.Fatalf("got n=%d m=%d", h.N(), h.M())
	}
	if remap[1] != -1 || remap[3] != -1 {
		t.Fatal("isolated vertices should map to -1")
	}
	if remap[0] != 0 || remap[2] != 1 || remap[4] != 2 {
		t.Fatalf("remap=%v", remap)
	}
	if !h.HasEdge(0, 1) || !h.HasEdge(1, 2) {
		t.Fatal("edges not preserved under renumbering")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	g.AddEdge(4, 0)
	h, remap := g.InducedSubgraph([]int{1, 2, 3})
	if h.N() != 3 || h.M() != 2 {
		t.Fatalf("induced: n=%d m=%d", h.N(), h.M())
	}
	if !h.HasEdge(0, 1) || !h.HasEdge(1, 2) || h.HasEdge(0, 2) {
		t.Fatal("induced edges wrong")
	}
	if remap[0] != -1 || remap[1] != 0 {
		t.Fatalf("remap=%v", remap)
	}
}

func TestEqualIgnoresOrder(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	h := New(3)
	h.AddEdge(2, 1)
	h.AddEdge(1, 0)
	if !g.Equal(h) {
		t.Fatal("graphs with same edge set should be Equal")
	}
	h.AddEdge(0, 2)
	if g.Equal(h) {
		t.Fatal("different edge sets should not be Equal")
	}
}

func TestComponents(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("components=%v", comps)
	}
	want := [][]int{{0, 1, 2}, {3, 4}, {5}}
	for i := range want {
		if len(comps[i]) != len(want[i]) {
			t.Fatalf("component %d = %v want %v", i, comps[i], want[i])
		}
		for j := range want[i] {
			if comps[i][j] != want[i][j] {
				t.Fatalf("component %d = %v want %v", i, comps[i], want[i])
			}
		}
	}
	if g.ComponentCount() != 3 {
		t.Fatal("ComponentCount mismatch")
	}
}

func TestConnected(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	if g.Connected() {
		t.Fatal("isolated vertex 2 should break connectivity")
	}
	g.AddEdge(1, 2)
	if !g.Connected() {
		t.Fatal("path should be connected")
	}
	if !New(0).Connected() || !New(1).Connected() {
		t.Fatal("empty and singleton graphs are connected by convention")
	}
}

func TestDFSTreeBasics(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 4)
	tr := g.DFSFrom(0)
	if tr.Parent[0] != -1 {
		t.Fatal("root parent should be -1")
	}
	for v := 1; v < 5; v++ {
		if tr.Parent[v] < 0 {
			t.Fatalf("vertex %d unreached: parent=%d", v, tr.Parent[v])
		}
	}
	if len(tr.Order) != 5 || tr.Order[0] != 0 {
		t.Fatalf("preorder=%v", tr.Order)
	}
	sizes := tr.SubtreeSize()
	if sizes[0] != 5 {
		t.Fatalf("root subtree size=%d", sizes[0])
	}
}

func TestDFSTreeNoCrossEdges(t *testing.T) {
	// In a DFS tree of an undirected graph, every non-tree edge connects
	// an ancestor/descendant pair — so children of a common parent are
	// never adjacent. Theorem 3.1 relies on this; verify on random graphs.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		g := RandomConnectedGraph(rng, 12, 20, 0)
		tr := g.DFSFrom(0)
		for v := 0; v < g.N(); v++ {
			ch := tr.Children[v]
			for i := 0; i < len(ch); i++ {
				for j := i + 1; j < len(ch); j++ {
					if g.HasEdge(ch[i], ch[j]) {
						t.Fatalf("trial %d: children %d,%d of %d adjacent", trial, ch[i], ch[j], v)
					}
				}
			}
		}
	}
}

func TestDFSSubtreeVertices(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(1, 3)
	g.AddEdge(3, 4)
	g.AddEdge(0, 5)
	tr := g.DFSFrom(0)
	sub := tr.SubtreeVertices(1)
	sizes := tr.SubtreeSize()
	if len(sub) != sizes[1] {
		t.Fatalf("subtree vertices %v vs size %d", sub, sizes[1])
	}
	if sub[0] != 1 {
		t.Fatal("subtree should start at its root")
	}
}

func TestDFSDeepPathNoStackOverflow(t *testing.T) {
	const n = 200000
	g := New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(v-1, v)
	}
	tr := g.DFSFrom(0)
	if len(tr.Order) != n {
		t.Fatalf("visited %d of %d", len(tr.Order), n)
	}
}

func TestBFSDistances(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	d := g.BFSDistances(0)
	want := []int{0, 1, 2, 3, -1}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("dist=%v want %v", d, want)
		}
	}
}

func TestDisjointUnion(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1)
	h := New(3)
	h.AddEdge(0, 2)
	u := DisjointUnion(g, h)
	if u.N() != 5 || u.M() != 2 {
		t.Fatalf("union n=%d m=%d", u.N(), u.M())
	}
	if !u.HasEdge(0, 1) || !u.HasEdge(2, 4) {
		t.Fatal("union edges misplaced")
	}
	if u.ComponentCount() != 3 {
		t.Fatalf("union components=%d", u.ComponentCount())
	}
}

func TestDegreeSequence(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	ds := g.DegreeSequence()
	want := []int{3, 1, 1, 1}
	for i := range want {
		if ds[i] != want[i] {
			t.Fatalf("degree sequence %v want %v", ds, want)
		}
	}
	if g.MaxDegree() != 3 {
		t.Fatal("MaxDegree")
	}
}

func TestEdgeIndexLookup(t *testing.T) {
	g := New(3)
	want := g.AddEdge(0, 1)
	if idx, ok := g.EdgeIndex(1, 0); !ok || idx != want {
		t.Fatalf("EdgeIndex(1,0)=%d,%v", idx, ok)
	}
	if _, ok := g.EdgeIndex(0, 2); ok {
		t.Fatal("non-edge should miss")
	}
	if _, ok := g.EdgeIndex(-1, 9); ok {
		t.Fatal("out-of-range should miss, not panic")
	}
}

func TestIsolatedVertices(t *testing.T) {
	g := New(4)
	g.AddEdge(1, 2)
	iso := g.IsolatedVertices()
	if len(iso) != 2 || iso[0] != 0 || iso[1] != 3 {
		t.Fatalf("isolated=%v", iso)
	}
}

func TestStringRenderings(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1)
	if got := g.String(); got != "graph{n=2 m=1 [0-1]}" {
		t.Fatalf("graph string %q", got)
	}
	b := NewBipartite(1, 1)
	b.AddEdge(0, 0)
	if got := b.String(); got != "bipartite{1x1 m=1 [0-0]}" {
		t.Fatalf("bipartite string %q", got)
	}
}

func TestVertexRangePanics(t *testing.T) {
	g := New(2)
	for _, fn := range []func(){
		func() { g.AddEdge(0, 5) },
		func() { g.Neighbors(-1) },
		func() { New(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
	b := NewBipartite(1, 1)
	for _, fn := range []func(){
		func() { b.AddEdge(1, 0) },
		func() { b.AddEdge(0, 1) },
		func() { NewBipartite(-1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected bipartite panic")
				}
			}()
			fn()
		}()
	}
}

func TestCloneIndependence(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	h := g.Clone()
	h.AddEdge(1, 2)
	if g.M() != 1 || h.M() != 2 {
		t.Fatal("clone shares storage with original")
	}
}
