package graph

import (
	"fmt"
	"math/bits"
	"slices"
)

// csr is the compact adjacency representation behind Freeze: flat
// prefix-offset arrays in the style of compressed sparse rows. It turns
// HasEdge/EdgeIndex into a binary search over the sorted neighbor span of
// the lower-degree endpoint and IncidentEdges/Neighbors into zero-copy
// subslices, replacing the map[Edge]int hash per adjacency test and the
// per-call slice allocation of the mutable representation.
type csr struct {
	start      []int // n+1 prefix offsets; vertex v owns slots start[v]:start[v+1]
	vert       []int // neighbor vertex per slot, in edge-insertion order
	edge       []int // incident edge index per slot, parallel to vert
	sortedVert []int // neighbor vertex per slot, sorted ascending within each vertex span
	sortedEdge []int // edge index per slot, parallel to sortedVert
}

// buildCSR constructs the compact representation from an edge list. The
// insertion-order spans (vert/edge) reproduce the adjacency-list order
// exactly: a vertex's neighbors appear in increasing edge-index order,
// which is how AddEdge grows adj.
func buildCSR(n int, edges []Edge) *csr {
	c := &csr{start: make([]int, n+1)}
	for _, e := range edges {
		c.start[e.U+1]++
		c.start[e.V+1]++
	}
	for v := 0; v < n; v++ {
		c.start[v+1] += c.start[v]
	}
	slots := 2 * len(edges)
	c.vert = make([]int, slots)
	c.edge = make([]int, slots)
	cur := make([]int, n)
	copy(cur, c.start[:n])
	for i, e := range edges {
		c.vert[cur[e.U]], c.edge[cur[e.U]] = e.V, i
		cur[e.U]++
		c.vert[cur[e.V]], c.edge[cur[e.V]] = e.U, i
		cur[e.V]++
	}
	c.sortedVert = append([]int(nil), c.vert...)
	c.sortedEdge = append([]int(nil), c.edge...)
	for v := 0; v < n; v++ {
		lo, hi := c.start[v], c.start[v+1]
		if hi-lo > 1 {
			sortSpan(c.sortedVert[lo:hi], c.sortedEdge[lo:hi])
		}
	}
	return c
}

// sortSpan sorts verts ascending, permuting edges in lockstep. Spans are
// neighbor lists, so small ones dominate; insertion sort covers those.
// Long spans pack vert<<32|edge into the vert slots and run the generic
// slices.Sort over plain ints in place — no spanSorter interface boxing,
// no scratch allocation. The packed key is unambiguous because a span
// never repeats a neighbor (simple graph), and the low edge bits ride
// along for free. Packing needs both ids to fit 32 bits; the (never
// taken in practice) fallback is the same insertion sort.
func sortSpan(verts, edges []int) {
	if len(verts) > 24 && packable(verts, edges) {
		for i := range verts {
			verts[i] = int(uint64(verts[i])<<32 | uint64(edges[i]))
		}
		slices.Sort(verts)
		for i := range verts {
			edges[i] = int(uint64(verts[i]) & 0xFFFFFFFF)
			verts[i] >>= 32
		}
		return
	}
	for i := 1; i < len(verts); i++ {
		v, e := verts[i], edges[i]
		j := i - 1
		for j >= 0 && verts[j] > v {
			verts[j+1], edges[j+1] = verts[j], edges[j]
			j--
		}
		verts[j+1], edges[j+1] = v, e
	}
}

// packable reports whether every (vert, edge) pair fits the 32/32 packing
// sortSpan uses, which also requires a 64-bit int.
func packable(verts, edges []int) bool {
	if bits.UintSize != 64 {
		return false
	}
	for i := range verts {
		if uint64(verts[i]) >= 1<<31 || uint64(edges[i]) >= 1<<32 {
			return false
		}
	}
	return true
}

// lookup returns the edge index of {u,v} by binary search over the sorted
// neighbor span of the lower-degree endpoint.
//
//joinpebble:hotpath
func (c *csr) lookup(u, v int) (int, bool) {
	if c.start[u+1]-c.start[u] > c.start[v+1]-c.start[v] {
		u, v = v, u
	}
	lo, hi := c.start[u], c.start[u+1]
	// Short spans: a linear scan beats the branch mispredictions of a
	// binary search.
	if hi-lo <= 8 {
		for k := lo; k < hi; k++ {
			if c.sortedVert[k] == v {
				return c.sortedEdge[k], true
			}
		}
		return 0, false
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if c.sortedVert[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < c.start[u+1] && c.sortedVert[lo] == v {
		return c.sortedEdge[lo], true
	}
	return 0, false
}

// ensureCSR returns the compact representation, building it on first use.
// The build is guarded by a mutex so concurrent readers of an already-
// frozen graph are safe; mutating an unfrozen graph concurrently with
// reads remains undefined, as for every other Graph method.
func (g *Graph) ensureCSR() *csr {
	g.csrMu.Lock()
	c := g.csr
	if c == nil {
		c = buildCSR(g.n, g.edges)
		g.csr = c
	}
	g.csrMu.Unlock()
	return c
}

// Freeze builds the compact sorted-adjacency representation and marks the
// graph immutable: any later AddEdge or AddVertex panics. After Freeze,
// HasEdge and EdgeIndex are allocation-free binary searches, Neighbors and
// IncidentEdges return zero-copy views, and the graph is safe for
// concurrent readers. Freeze is idempotent and returns g for chaining.
func (g *Graph) Freeze() *Graph {
	g.ensureCSR()
	g.frozen = true
	return g
}

// Frozen reports whether Freeze has been called.
func (g *Graph) Frozen() bool { return g.frozen }

// Optimize builds the same compact index Freeze uses but keeps the graph
// mutable: a later AddEdge or AddVertex simply discards the index. Bulk
// read-mostly operations (solving, simulation, line-graph walks) call it
// to amortize one O(m log m) build across many adjacency tests.
func (g *Graph) Optimize() *Graph {
	g.ensureCSR()
	return g
}

// invalidateCSR drops the compact index after a mutation; it panics if
// the graph was frozen.
func (g *Graph) invalidateCSR(op string) {
	if g.frozen {
		panic(fmt.Sprintf("graph: %s on frozen graph", op))
	}
	if g.csr != nil {
		g.csr = nil
	}
}
