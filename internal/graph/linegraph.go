package graph

import (
	"context"

	"joinpebble/internal/obs"
)

// LineGraph returns L(G): one vertex per edge of g (vertex i of L(G)
// corresponds to edge index i of g), with two vertices adjacent iff the
// underlying edges share an endpoint (§2.2). Pebbling schemes for g
// correspond to walks over L(G)'s vertices; perfect schemes are
// Hamiltonian paths (Proposition 2.1).
//
// The result is returned frozen: edge counts and adjacency spans are
// precomputed from g's compact index, so construction is a single pass
// with no hashing or incremental reallocation. Edge and neighbor order
// are identical to LineGraphReference. Callers that only need to walk
// L(G) neighborhoods should prefer NewLineGraphView, which skips
// materialization entirely.
func LineGraph(g *Graph) *Graph {
	c := g.ensureCSR()
	m := g.M()
	// deg_L(i) = deg(u) + deg(v) − 2 for edge i = {u,v}; duplicates are
	// impossible because two distinct simple edges share at most one
	// endpoint, so each L-edge is generated exactly once (at the shared
	// endpoint).
	degL := make([]int, m)
	total := 0
	for i := 0; i < m; i++ {
		e := g.edges[i]
		d := (c.start[e.U+1] - c.start[e.U]) + (c.start[e.V+1] - c.start[e.V]) - 2
		degL[i] = d
		total += d
	}
	total /= 2
	lg := &Graph{
		n:     m,
		edges: make([]Edge, 0, total),
		adj:   make([][]int, m),
	}
	// Carve all adjacency lists out of one backing array; the capacities
	// are exact, so the appends below never reallocate or overlap.
	flat := make([]int, 2*total)
	off := 0
	for i := 0; i < m; i++ {
		lg.adj[i] = flat[off : off : off+degL[i]]
		off += degL[i]
	}
	// For each vertex, all incident edges are pairwise adjacent in L(G);
	// iterate per vertex to get O(sum deg^2) without an edge-pair scan.
	for v := 0; v < g.n; v++ {
		span := c.edge[c.start[v]:c.start[v+1]]
		for x := 0; x < len(span); x++ {
			a := span[x]
			for y := x + 1; y < len(span); y++ {
				b := span[y]
				lg.edges = append(lg.edges, Edge{U: a, V: b}.Normalize())
				lg.adj[a] = append(lg.adj[a], b)
				lg.adj[b] = append(lg.adj[b], a)
			}
		}
	}
	lg.csr = buildCSR(lg.n, lg.edges)
	lg.frozen = true
	return lg
}

// LineGraphReference is the straightforward map-backed line-graph
// construction. It is the oracle the differential tests compare LineGraph
// and LineGraphView against, and the legacy arm of cmd/bench's
// before/after measurements; production code should use LineGraph or
// NewLineGraphView.
func LineGraphReference(g *Graph) *Graph {
	m := g.M()
	lg := New(m)
	for v := 0; v < g.N(); v++ {
		inc := g.IncidentEdges(v)
		for i := 0; i < len(inc); i++ {
			for j := i + 1; j < len(inc); j++ {
				lg.AddEdge(inc[i], inc[j])
			}
		}
	}
	return lg
}

// IncidenceGraph returns the bipartite incidence graph B = (X, Y, E') of
// g used in Theorem 4.4's L-reduction: X = V(g) on the left, Y = E(g) on
// the right, with x joined to e iff x is an endpoint of e.
func IncidenceGraph(g *Graph) *Bipartite {
	b := NewBipartite(g.N(), g.M())
	for i, e := range g.Edges() {
		b.AddEdge(e.U, i)
		b.AddEdge(e.V, i)
	}
	return b
}

// FindClaw searches g for an induced K_{1,3} (a claw): a center vertex
// with three pairwise non-adjacent neighbors. It returns the center and
// the three leaves, or ok=false if g is claw-free. Line graphs are always
// claw-free (Harary), which Theorem 3.1's DFS construction depends on.
func FindClaw(g *Graph) (center int, leaves [3]int, ok bool) {
	g.ensureCSR() // adjacency tests below become binary searches
	return FindClawIn(g)
}

// Claw-detection accounting: one timer observation and one check counter
// per search, a found counter per claw — the "claw count" quantity
// DESIGN.md maps to Theorem 3.1's claw-freeness precondition. The vars
// are scope-aware: FindClawContext records into the obs.Scope on its
// context when one is present, and the context-free wrappers (which pass
// context.Background()) land in the global registry as before.
var (
	cClawChecks    = obs.ScopedCounter("graph/claw/checks")
	cClawsFound    = obs.ScopedCounter("graph/claw/found")
	tClawDetection = obs.ScopedTimer("graph/phase/claw_detection")
)

// FindClawIn is FindClaw over any Adjacency — in particular a
// LineGraphView, which lets claw checks walk L(G) without materializing
// it. It allocates fresh scan scratch; callers running repeated scans
// should hold a ClawScratch and use FindClawInScratch.
func FindClawIn(a Adjacency) (center int, leaves [3]int, ok bool) {
	return FindClawInScratch(a, nil)
}

// FindClawInScratch is FindClawIn with caller-owned scratch: the bitset
// adjacency rows, masks, and neighbor buffers live in s and are reused
// across scans instead of growing fresh slices per call. s may be nil
// (allocate per scan) and must not be shared between concurrent scans.
func FindClawInScratch(a Adjacency, s *ClawScratch) (center int, leaves [3]int, ok bool) {
	var err error
	center, leaves, ok, err = FindClawContext(context.Background(), a, s)
	if err != nil {
		// The background context cannot be canceled, so only an armed
		// SiteClawScan fault reaches here; the context-free wrappers
		// have no error path, and a silent "no claw" would be wrong.
		panic(err)
	}
	return center, leaves, ok
}

// ClawFree reports whether g contains no induced K_{1,3}.
func ClawFree(g *Graph) bool {
	_, _, ok := FindClaw(g)
	return !ok
}

// ClawFreeLineGraph reports whether L(g) is claw-free, walking the
// implicit view instead of materializing the line graph.
func ClawFreeLineGraph(g *Graph) bool {
	return ClawFreeLineGraphScratch(g, nil)
}

// ClawFreeLineGraphScratch is ClawFreeLineGraph with caller-owned scan
// scratch (see FindClawInScratch).
func ClawFreeLineGraphScratch(g *Graph, s *ClawScratch) bool {
	_, _, ok := FindClawInScratch(NewLineGraphView(g), s)
	return !ok
}

// HamiltonianPath searches g for a Hamiltonian path by depth-first
// backtracking with degree-based pruning and returns one if it exists.
// Exponential in the worst case; intended for the small gadget and
// line-graph instances the paper's exact arguments concern (Prop 2.1,
// Fig 2 analysis). Returns nil, false when no path exists.
func HamiltonianPath(g *Graph) ([]int, bool) {
	n := g.N()
	if n == 0 {
		return nil, true
	}
	if n == 1 {
		return []int{0}, true
	}
	if !g.Connected() {
		return nil, false
	}
	// Degree-1 vertices must be path endpoints, so more than two of them
	// rules a Hamiltonian path out immediately.
	var deg1 []int
	for v := 0; v < n; v++ {
		if g.Degree(v) == 1 {
			deg1 = append(deg1, v)
		}
	}
	if len(deg1) > 2 {
		return nil, false
	}

	used := make([]bool, n)
	path := make([]int, 0, n)
	var try func(v int) bool
	try = func(v int) bool {
		used[v] = true
		path = append(path, v)
		if len(path) == n {
			return true
		}
		for _, w := range g.Neighbors(v) {
			if !used[w] {
				if try(w) {
					return true
				}
			}
		}
		used[v] = false
		path = path[:len(path)-1]
		return false
	}
	starts := startCandidates(g, deg1)
	for _, s := range starts {
		if try(s) {
			return path, true
		}
	}
	return nil, false
}

// HamiltonianPathBetween searches for a Hamiltonian path with the given
// endpoints. Used to validate the diamond gadget of Fig 2, where a
// Hamiltonian path exists between any two corner vertices.
func HamiltonianPathBetween(g *Graph, from, to int) ([]int, bool) {
	n := g.N()
	if from == to {
		if n == 1 && from == 0 {
			return []int{0}, true
		}
		return nil, false
	}
	used := make([]bool, n)
	path := make([]int, 0, n)
	var try func(v int) bool
	try = func(v int) bool {
		used[v] = true
		path = append(path, v)
		if len(path) == n {
			if v == to {
				return true
			}
			used[v] = false
			path = path[:len(path)-1]
			return false
		}
		if v == to { // target reached too early
			used[v] = false
			path = path[:len(path)-1]
			return false
		}
		for _, w := range g.Neighbors(v) {
			if !used[w] {
				if try(w) {
					return true
				}
			}
		}
		used[v] = false
		path = path[:len(path)-1]
		return false
	}
	if try(from) {
		return path, true
	}
	return nil, false
}

// AllHamiltonianPaths enumerates every Hamiltonian path of g (each
// returned once per direction). Exponential; only for gadget-sized graphs.
func AllHamiltonianPaths(g *Graph) [][]int {
	n := g.N()
	var out [][]int
	if n == 0 {
		return out
	}
	used := make([]bool, n)
	path := make([]int, 0, n)
	var try func(v int)
	try = func(v int) {
		used[v] = true
		path = append(path, v)
		if len(path) == n {
			cp := make([]int, n)
			copy(cp, path)
			out = append(out, cp)
		} else {
			for _, w := range g.Neighbors(v) {
				if !used[w] {
					try(w)
				}
			}
		}
		used[v] = false
		path = path[:len(path)-1]
	}
	for s := 0; s < n; s++ {
		try(s)
	}
	return out
}

func startCandidates(g *Graph, deg1 []int) []int {
	if len(deg1) > 0 {
		return deg1[:1] // a degree-1 vertex must be an endpoint; start there
	}
	starts := make([]int, g.N())
	for i := range starts {
		starts[i] = i
	}
	return starts
}
