package graph

import (
	"strings"
	"testing"
)

// FuzzRead checks the text-format parser never panics and that anything
// it accepts re-serializes to something it accepts again with the same
// shape.
func FuzzRead(f *testing.F) {
	f.Add("graph 3\ne 0 1\ne 1 2\n")
	f.Add("bipartite 2 2\ne 0 0\ne 1 1\n")
	f.Add("# comment\n\nbipartite 1 1\ne 0 0\n")
	f.Add("graph x\n")
	f.Add("e 1 2\n")
	f.Add("bipartite 2 2\ne 0 9\n")
	f.Fuzz(func(t *testing.T, input string) {
		v, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		switch g := v.(type) {
		case *Graph:
			var sb strings.Builder
			if err := WriteGraph(&sb, g); err != nil {
				t.Fatal(err)
			}
			back, err := Read(strings.NewReader(sb.String()))
			if err != nil {
				t.Fatalf("round trip rejected: %v", err)
			}
			if !back.(*Graph).Equal(g) {
				t.Fatal("round trip changed the graph")
			}
		case *Bipartite:
			var sb strings.Builder
			if err := WriteBipartite(&sb, g); err != nil {
				t.Fatal(err)
			}
			back, err := ReadBipartite(strings.NewReader(sb.String()))
			if err != nil {
				t.Fatalf("round trip rejected: %v", err)
			}
			if !back.Equal(g) {
				t.Fatal("round trip changed the bipartite graph")
			}
		}
	})
}
