package graph

import (
	"strings"
	"testing"
)

// FuzzCSRDifferential feeds arbitrary edge lists to a map-backed graph
// and its compact-index twin and requires identical answers from every
// read accessor. Bytes are consumed pairwise as endpoints modulo n.
func FuzzCSRDifferential(f *testing.F) {
	f.Add(uint8(4), []byte{0, 1, 1, 2, 2, 3})
	f.Add(uint8(1), []byte{})
	f.Add(uint8(6), []byte{0, 1, 0, 2, 0, 3, 0, 4, 0, 5, 1, 2})
	f.Fuzz(func(t *testing.T, n uint8, data []byte) {
		if n == 0 || n > 32 || len(data) > 256 {
			return
		}
		plain := New(int(n))
		for i := 0; i+1 < len(data); i += 2 {
			u, v := int(data[i])%int(n), int(data[i+1])%int(n)
			if u == v || plain.HasEdge(u, v) {
				continue
			}
			plain.AddEdge(u, v)
		}
		idx := plain.Clone().Freeze()
		for u := 0; u < plain.N(); u++ {
			if idx.Degree(u) != plain.Degree(u) {
				t.Fatalf("Degree(%d): csr %d, map %d", u, idx.Degree(u), plain.Degree(u))
			}
			if !equalInts(idx.Neighbors(u), plain.Neighbors(u)) {
				t.Fatalf("Neighbors(%d): csr %v, map %v", u, idx.Neighbors(u), plain.Neighbors(u))
			}
			if !equalInts(idx.IncidentEdges(u), plain.IncidentEdges(u)) {
				t.Fatalf("IncidentEdges(%d): csr %v, map %v", u, idx.IncidentEdges(u), plain.IncidentEdges(u))
			}
			for v := 0; v < plain.N(); v++ {
				gi, gok := idx.EdgeIndex(u, v)
				wi, wok := plain.EdgeIndex(u, v)
				if gi != wi || gok != wok {
					t.Fatalf("EdgeIndex(%d,%d): csr %d,%v, map %d,%v", u, v, gi, gok, wi, wok)
				}
				if idx.HasEdge(u, v) != plain.HasEdge(u, v) {
					t.Fatalf("HasEdge(%d,%d) disagrees", u, v)
				}
			}
		}
	})
}

// FuzzRead checks the text-format parser never panics and that anything
// it accepts re-serializes to something it accepts again with the same
// shape.
func FuzzRead(f *testing.F) {
	f.Add("graph 3\ne 0 1\ne 1 2\n")
	f.Add("bipartite 2 2\ne 0 0\ne 1 1\n")
	f.Add("# comment\n\nbipartite 1 1\ne 0 0\n")
	f.Add("graph x\n")
	f.Add("e 1 2\n")
	f.Add("bipartite 2 2\ne 0 9\n")
	f.Fuzz(func(t *testing.T, input string) {
		v, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		switch g := v.(type) {
		case *Graph:
			var sb strings.Builder
			if err := WriteGraph(&sb, g); err != nil {
				t.Fatal(err)
			}
			back, err := Read(strings.NewReader(sb.String()))
			if err != nil {
				t.Fatalf("round trip rejected: %v", err)
			}
			if !back.(*Graph).Equal(g) {
				t.Fatal("round trip changed the graph")
			}
		case *Bipartite:
			var sb strings.Builder
			if err := WriteBipartite(&sb, g); err != nil {
				t.Fatal(err)
			}
			back, err := ReadBipartite(strings.NewReader(sb.String()))
			if err != nil {
				t.Fatalf("round trip rejected: %v", err)
			}
			if !back.Equal(g) {
				t.Fatal("round trip changed the bipartite graph")
			}
		}
	})
}
