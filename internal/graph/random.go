package graph

import "math/rand"

// RandomBipartite returns an Erdős–Rényi bipartite graph on nLeft x nRight
// vertices where each of the nLeft*nRight candidate edges is present with
// probability p. Deterministic for a given rng state.
func RandomBipartite(rng *rand.Rand, nLeft, nRight int, p float64) *Bipartite {
	b := NewBipartite(nLeft, nRight)
	for l := 0; l < nLeft; l++ {
		for r := 0; r < nRight; r++ {
			if rng.Float64() < p {
				b.AddEdge(l, r)
			}
		}
	}
	return b
}

// RandomConnectedBipartite returns a connected bipartite graph on
// nLeft x nRight vertices with exactly m edges. It first threads a random
// spanning tree through all vertices (alternating sides), then adds random
// extra edges. Requires m >= nLeft+nRight-1 and m <= nLeft*nRight.
func RandomConnectedBipartite(rng *rand.Rand, nLeft, nRight, m int) *Bipartite {
	n := nLeft + nRight
	if m < n-1 {
		panic("graph: too few edges to connect")
	}
	if m > nLeft*nRight {
		panic("graph: too many edges for bipartite sides")
	}
	b := NewBipartite(nLeft, nRight)
	// Random spanning tree: attach each vertex (in shuffled order, after a
	// seed pair) to a uniformly random already-attached vertex of the
	// opposite side.
	lefts := rng.Perm(nLeft)
	rights := rng.Perm(nRight)
	attachedL := []int{lefts[0]}
	attachedR := []int{}
	li, ri := 1, 0
	// First edge must bring in a right vertex.
	for len(attachedL) < nLeft || len(attachedR) < nRight {
		takeLeft := li < nLeft && (ri >= nRight || rng.Intn(2) == 0)
		if len(attachedR) == 0 {
			takeLeft = false
		}
		if takeLeft {
			l := lefts[li]
			li++
			b.AddEdge(l, attachedR[rng.Intn(len(attachedR))])
			attachedL = append(attachedL, l)
		} else {
			r := rights[ri]
			ri++
			b.AddEdge(attachedL[rng.Intn(len(attachedL))], r)
			attachedR = append(attachedR, r)
		}
	}
	// Top up with random extra edges until m.
	for b.M() < m {
		b.AddEdge(rng.Intn(nLeft), rng.Intn(nRight))
	}
	return b
}

// RandomTree returns a uniform-ish random tree on n vertices built by
// attaching vertex i to a random earlier vertex.
func RandomTree(rng *rand.Rand, n int) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(v, rng.Intn(v))
	}
	return g
}

// RandomConnectedGraph returns a connected graph on n vertices with m
// edges (random tree plus random extras) and maximum degree at most
// maxDeg (0 means unbounded). Used to generate TSP-k(1,2) instances for
// the Section 4 reductions. It panics if the constraints are infeasible
// after a bounded number of attempts.
func RandomConnectedGraph(rng *rand.Rand, n, m, maxDeg int) *Graph {
	if m < n-1 {
		panic("graph: too few edges to connect")
	}
	if m > n*(n-1)/2 {
		panic("graph: more edges than vertex pairs")
	}
	if maxDeg > 0 && 2*m > n*maxDeg {
		panic("graph: edge count incompatible with degree bound")
	}
	for attempt := 0; attempt < 1000; attempt++ {
		g := tryRandomConnected(rng, n, m, maxDeg)
		if g != nil {
			return g
		}
	}
	panic("graph: could not satisfy degree bound; relax parameters")
}

func tryRandomConnected(rng *rand.Rand, n, m, maxDeg int) *Graph {
	g := New(n)
	ok := func(v int) bool { return maxDeg == 0 || g.Degree(v) < maxDeg }
	order := rng.Perm(n)
	for i := 1; i < n; i++ {
		v := order[i]
		// Attach to a random earlier vertex with spare degree.
		var cands []int
		for j := 0; j < i; j++ {
			if ok(order[j]) {
				cands = append(cands, order[j])
			}
		}
		if len(cands) == 0 {
			return nil
		}
		g.AddEdge(v, cands[rng.Intn(len(cands))])
	}
	for tries := 0; g.M() < m && tries < 100*m+100; tries++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v && !g.HasEdge(u, v) && ok(u) && ok(v) {
			g.AddEdge(u, v)
		}
	}
	// Random top-up can stall on dense targets; finish systematically.
	for u := 0; u < n && g.M() < m; u++ {
		for v := u + 1; v < n && g.M() < m; v++ {
			if !g.HasEdge(u, v) && ok(u) && ok(v) {
				g.AddEdge(u, v)
			}
		}
	}
	if g.M() != m {
		return nil
	}
	return g
}
