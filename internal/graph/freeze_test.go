package graph

import (
	"math/rand"
	"sort"
	"testing"
)

// randomGraphs returns a deterministic mix of shapes that exercise the
// compact index: paths, stars, dense blobs, multi-component unions.
func randomGraphs(t *testing.T) []*Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	var gs []*Graph
	gs = append(gs, New(0), New(1), New(5)) // edgeless
	star := New(9)
	for v := 1; v < 9; v++ {
		star.AddEdge(0, v)
	}
	gs = append(gs, star)
	for i := 0; i < 8; i++ {
		n := 2 + rng.Intn(20)
		maxM := n * (n - 1) / 2
		m := n - 1 + rng.Intn(maxM-n+2)
		if m > maxM {
			m = maxM
		}
		gs = append(gs, RandomConnectedGraph(rng, n, m, 0))
	}
	sparse := func(n int) *Graph {
		m := n - 1 + rng.Intn(3)
		if max := n * (n - 1) / 2; m > max {
			m = max
		}
		return RandomConnectedGraph(rng, n, m, 0)
	}
	for i := 0; i < 4; i++ {
		gs = append(gs, DisjointUnion(sparse(3+rng.Intn(8)), sparse(3+rng.Intn(8))))
	}
	return gs
}

func TestFrozenMutationPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s on frozen graph did not panic", name)
			}
		}()
		fn()
	}
	g := New(3)
	g.AddEdge(0, 1)
	g.Freeze()
	if !g.Frozen() {
		t.Fatal("Freeze did not mark the graph frozen")
	}
	mustPanic("AddEdge", func() { g.AddEdge(1, 2) })
	mustPanic("AddVertex", func() { g.AddVertex() })
	// Reads must still work after the attempted mutations.
	if !g.HasEdge(0, 1) || g.M() != 1 {
		t.Fatal("frozen graph corrupted by rejected mutation")
	}
}

func TestOptimizeAllowsFurtherMutation(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.Optimize()
	if g.Frozen() {
		t.Fatal("Optimize must not freeze")
	}
	g.AddEdge(1, 2) // must invalidate, not panic
	if !g.HasEdge(1, 2) {
		t.Fatal("edge added after Optimize not visible")
	}
	if i, ok := g.EdgeIndex(1, 2); !ok || i != 1 {
		t.Fatalf("EdgeIndex(1,2) = %d,%v after Optimize+AddEdge, want 1,true", i, ok)
	}
}

// TestCSRMatchesMap is the core differential: every read accessor must
// answer identically (including slice order) before and after the compact
// index is built.
func TestCSRMatchesMap(t *testing.T) {
	for gi, g := range randomGraphs(t) {
		plain := g.Clone() // map-backed
		cold := g.Clone()
		frozen := cold.Clone().Freeze()
		cold.Optimize()
		for _, idx := range []*Graph{cold, frozen} {
			for u := 0; u < g.N(); u++ {
				if got, want := idx.Degree(u), plain.Degree(u); got != want {
					t.Fatalf("graph %d: Degree(%d) = %d, want %d", gi, u, got, want)
				}
				if got, want := idx.Neighbors(u), plain.Neighbors(u); !equalInts(got, want) {
					t.Fatalf("graph %d: Neighbors(%d) = %v, want %v", gi, u, got, want)
				}
				if got, want := idx.IncidentEdges(u), plain.IncidentEdges(u); !equalInts(got, want) {
					t.Fatalf("graph %d: IncidentEdges(%d) = %v, want %v", gi, u, got, want)
				}
				for v := 0; v < g.N(); v++ {
					if got, want := idx.HasEdge(u, v), plain.HasEdge(u, v); got != want {
						t.Fatalf("graph %d: HasEdge(%d,%d) = %v, want %v", gi, u, v, got, want)
					}
					gotI, gotOK := idx.EdgeIndex(u, v)
					wantI, wantOK := plain.EdgeIndex(u, v)
					if gotI != wantI || gotOK != wantOK {
						t.Fatalf("graph %d: EdgeIndex(%d,%d) = %d,%v, want %d,%v", gi, u, v, gotI, gotOK, wantI, wantOK)
					}
				}
			}
		}
	}
}

// TestLineGraphMatchesReference pins the fast builder to the map-backed
// original: identical vertex count, edge multiset, and edge order (the
// solver's determinism depends on the order).
func TestLineGraphMatchesReference(t *testing.T) {
	for gi, g := range randomGraphs(t) {
		fast := LineGraph(g.Clone())
		ref := LineGraphReference(g.Clone())
		if fast.N() != ref.N() || fast.M() != ref.M() {
			t.Fatalf("graph %d: fast L(G) is %dv/%de, reference %dv/%de", gi, fast.N(), fast.M(), ref.N(), ref.M())
		}
		for i := range ref.Edges() {
			if fast.EdgeAt(i) != ref.EdgeAt(i) {
				t.Fatalf("graph %d: L(G) edge %d = %v, reference %v", gi, i, fast.EdgeAt(i), ref.EdgeAt(i))
			}
		}
		for v := 0; v < ref.N(); v++ {
			if !equalInts(fast.Neighbors(v), ref.Neighbors(v)) {
				t.Fatalf("graph %d: L(G) adjacency of %d differs: %v vs %v", gi, v, fast.Neighbors(v), ref.Neighbors(v))
			}
		}
		if !fast.Equal(ref) {
			t.Fatalf("graph %d: fast L(G) not Equal to reference", gi)
		}
	}
}

// TestLineGraphViewMatchesMaterialized checks the implicit view answers
// every Adjacency query exactly like a materialized line graph.
func TestLineGraphViewMatchesMaterialized(t *testing.T) {
	for gi, g := range randomGraphs(t) {
		view := NewLineGraphView(g.Clone())
		ref := LineGraphReference(g.Clone())
		if view.N() != ref.N() {
			t.Fatalf("graph %d: view has %d vertices, reference %d", gi, view.N(), ref.N())
		}
		var buf []int
		for i := 0; i < ref.N(); i++ {
			if got, want := view.Degree(i), ref.Degree(i); got != want {
				t.Fatalf("graph %d: view Degree(%d) = %d, want %d", gi, i, got, want)
			}
			buf = view.AppendNeighbors(buf[:0], i)
			if !sameSet(buf, ref.Neighbors(i)) {
				t.Fatalf("graph %d: view neighbors of %d = %v, want set %v", gi, i, buf, ref.Neighbors(i))
			}
			for j := 0; j < ref.N(); j++ {
				if got, want := view.HasEdge(i, j), ref.HasEdge(i, j); got != want {
					t.Fatalf("graph %d: view HasEdge(%d,%d) = %v, want %v", gi, i, j, got, want)
				}
			}
		}
	}
}

// TestFindClawAgreement: claw detection through the view must agree with
// detection on the materialized line graph.
func TestFindClawAgreement(t *testing.T) {
	for gi, g := range randomGraphs(t) {
		_, _, matClaw := FindClaw(LineGraphReference(g.Clone()))
		viewFree := ClawFreeLineGraph(g.Clone())
		if viewFree != !matClaw {
			t.Fatalf("graph %d: view says claw-free=%v, materialized says claw present=%v", gi, viewFree, matClaw)
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]int(nil), a...)
	bs := append([]int(nil), b...)
	sort.Ints(as)
	sort.Ints(bs)
	return equalInts(as, bs)
}
