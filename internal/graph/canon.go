package graph

// Canonical labeling and fingerprinting over the frozen CSR index.
//
// The scheme cache keys on graph isomorphism classes: a pebbling scheme
// depends only on the join graph's shape, so two requests with the same
// shape under different vertex numberings must hash to the same key.
// Canonicalize computes that key in three passes:
//
//  1. iterated WL-style color refinement to a fixed point — initial
//     colors are (degree, component order, component size) ranks, each
//     round replaces a vertex's color with a hash of (own color, sorted
//     neighbor colors) and re-ranks, stopping when the number of
//     distinct colors stops growing;
//  2. a deterministic canonical relabeling: a greedy frontier order
//     that always assigns the minimum of (on-frontier, color,
//     assigned-neighborhood hash, id) next. A vertex is on the frontier
//     once a neighbor has a canonical id, and the hash term is an
//     order-independent combination of those assigned ids — so every
//     choice propagates into the keys of later candidates, and the
//     frontier rule keeps the order contiguous within a component, which
//     confines raw id tie-breaks to positions where the tied vertices
//     are interchangeable for the families the repo generates (spiders,
//     complete bipartite graphs, cycles, paths, matchings, and their
//     line graphs — see the package test corpus);
//  3. a 128-bit hash of the sorted canonical edge list (plus n and m).
//
// Soundness is unconditional: equal canonical edge lists exhibit an
// isomorphism, so non-isomorphic graphs can only collide by hash
// accident (~2^-128), and the engine re-verifies every cached scheme
// against the simulator anyway. Completeness (isomorphic graphs always
// colliding) holds when every raw id tie-break lands on vertices that
// are automorphic given the assigned prefix — guaranteed for the
// structured families above and pinned by the permutation-invariance
// fuzz test. An arbitrary graph with WL-equivalent but non-automorphic
// vertices (rare outside adversarial constructions) may fingerprint
// differently under relabeling, which costs a cache miss, never a wrong
// hit.
//
// The refinement and hashing kernels carry the //joinpebble:hotpath
// contract and run entirely on CanonScratch buffers, in the arena style
// of the claw-scan kernels: one scratch reused across calls means the
// steady-state per-fingerprint allocation is the returned labeling
// alone.

import (
	"fmt"
	"slices"
)

// Fingerprint is a 128-bit canonical graph fingerprint: equal for
// isomorphic graphs of the generated families, distinct for
// non-isomorphic graphs up to hash collision.
type Fingerprint struct {
	Hi, Lo uint64
}

// String renders the fingerprint as 32 hex digits.
func (f Fingerprint) String() string {
	return fmt.Sprintf("%016x%016x", f.Hi, f.Lo)
}

// Mix folds extra words — a family kind hash, guarantee bits — into the
// fingerprint, so structurally identical graphs presented under
// different predicate families key separately. Callers pass literal
// word lists, which escape analysis keeps on the stack.
//
//joinpebble:hotpath
func (f Fingerprint) Mix(words ...uint64) Fingerprint {
	for _, w := range words {
		f.Hi = mix64(f.Hi, w)
		f.Lo = mix64(f.Lo, w^0xA5A5A5A5A5A5A5A5)
	}
	return f
}

// CanonScratch holds the reusable buffers Canonicalize works in. One
// scratch serves any number of sequential calls on graphs of any size;
// buffers grow monotonically and are never returned to the allocator.
// Not safe for concurrent use — pool scratches per goroutine.
type CanonScratch struct {
	color  []uint32   // current color (dense rank) per vertex
	sig    []uint64   // signature hash per vertex, input to re-ranking
	sorted []uint64   // sort/dedupe buffer for rank assignment
	queue  []int32    // component-labeling BFS queue
	perm   []int32    // vertex -> canonical id
	comp   []int32    // vertex -> component id
	cinfo  []uint64   // per-component (order, size) packed
	nbr    []uint64   // per-vertex neighbor color buffer (max degree)
	ekeys  []uint64   // canonical edge keys
	sigAdj []uint64   // assigned-neighborhood hash per unassigned vertex
	ver    []uint32   // sigAdj version per vertex, for lazy heap deletion
	heap   []canonEnt // candidate min-heap with stale entries
}

// canonEnt is one candidate in the greedy-order heap. Entries are
// immutable; a vertex whose key changed is re-pushed with a bumped
// version and stale entries are dropped at pop time.
type canonEnt struct {
	color uint32
	sig   uint64
	id    int32
	ver   uint32
}

// less orders candidates by (color, assigned-neighborhood hash, id) —
// every component isomorphism-invariant except the final id, which only
// breaks ties between vertices the first two could not separate.
//
//joinpebble:hotpath
func (e canonEnt) less(o canonEnt) bool {
	// Frontier first: a vertex adjacent to the assigned prefix
	// (ver > 0) always beats an untouched one, keeping the order
	// contiguous within a component. Without this, a color class whose
	// members are still untouched could be popped after earlier
	// assignments broke its symmetry, and the id tie-break below would
	// become label-dependent. Untouched ties then only arise when the
	// frontier is empty — at the start of a fresh component, where the
	// candidates really are interchangeable.
	et, ot := e.ver > 0, o.ver > 0
	if et != ot {
		return et
	}
	if e.color != o.color {
		return e.color < o.color
	}
	if e.sig != o.sig {
		return e.sig < o.sig
	}
	return e.id < o.id
}

// NewCanonScratch returns an empty scratch; buffers are sized on first
// use.
func NewCanonScratch() *CanonScratch { return &CanonScratch{} }

// grow sizes every buffer for an n-vertex, m-edge graph with maximum
// degree maxDeg.
func (sc *CanonScratch) grow(n, m, maxDeg int) {
	if cap(sc.color) < n {
		sc.color = make([]uint32, n)
		sc.sig = make([]uint64, n)
		sc.sorted = make([]uint64, n)
		sc.queue = make([]int32, n)
		sc.perm = make([]int32, n)
		sc.comp = make([]int32, n)
		sc.cinfo = make([]uint64, n)
		sc.sigAdj = make([]uint64, n)
		sc.ver = make([]uint32, n)
	}
	// Heap peak: one initial entry per vertex plus at most one re-push
	// per edge (a push happens only when an assigned endpoint touches a
	// still-unassigned one).
	if cap(sc.heap) < n+m+1 {
		sc.heap = make([]canonEnt, n+m+1)
	}
	if cap(sc.nbr) < maxDeg {
		sc.nbr = make([]uint64, maxDeg)
	}
	if cap(sc.ekeys) < m {
		sc.ekeys = make([]uint64, m)
	}
	sc.color = sc.color[:n]
	sc.sig = sc.sig[:n]
	sc.sorted = sc.sorted[:n]
	sc.queue = sc.queue[:n]
	sc.perm = sc.perm[:n]
	sc.comp = sc.comp[:n]
	sc.cinfo = sc.cinfo[:n]
	sc.sigAdj = sc.sigAdj[:n]
	sc.ver = sc.ver[:n]
	sc.nbr = sc.nbr[:maxDeg]
	sc.ekeys = sc.ekeys[:m]
}

// Canonicalize computes the canonical labeling of g — perm[v] is the
// canonical id of vertex v — and the structural Fingerprint of the
// canonical edge list. The returned slice is freshly allocated (callers
// keep it to translate cached schemes); everything else runs in sc.
// Passing a nil scratch allocates a private one.
func Canonicalize(g *Graph, sc *CanonScratch) ([]int32, Fingerprint) {
	if sc == nil {
		sc = NewCanonScratch()
	}
	n, m := g.N(), g.M()
	if n == 0 {
		return nil, Fingerprint{Hi: mix64(canonSeedHi, 0), Lo: mix64(canonSeedLo, 0)}
	}
	c := g.ensureCSR()
	maxDeg := 0
	for v := 0; v < n; v++ {
		if d := c.start[v+1] - c.start[v]; d > maxDeg {
			maxDeg = d
		}
	}
	sc.grow(n, m, maxDeg)

	// Initial colors: (degree, component order, component size) ranks.
	// The component terms separate same-degree vertices of structurally
	// different components up front (C4 ⊔ C6 is all degree 2), so the
	// BFS below never has to choose a root across non-isomorphic
	// components.
	labelComponents(c, n, sc)
	for v := 0; v < n; v++ {
		h := mix64(canonSeedHi, uint64(c.start[v+1]-c.start[v]))
		sc.sig[v] = mix64(h, sc.cinfo[sc.comp[v]])
	}
	distinct := rankColors(sc, n)

	// Iterated refinement to a fixed point: the distinct-color count is
	// strictly monotone until it stabilizes, so this runs at most n
	// rounds (2-3 in practice for the generated families).
	for {
		refinePass(c, sc, n)
		next := rankColors(sc, n)
		if next == distinct {
			break
		}
		distinct = next
	}

	canonicalOrder(c, sc, n)
	fp := edgeListFingerprint(g, sc, n, m)
	perm := make([]int32, n)
	copy(perm, sc.perm)
	return perm, fp
}

// CanonicalFingerprint is Canonicalize without keeping the labeling.
func CanonicalFingerprint(g *Graph, sc *CanonScratch) Fingerprint {
	_, fp := Canonicalize(g, sc)
	return fp
}

const (
	canonSeedHi = 0x9E3779B97F4A7C15
	canonSeedLo = 0xC2B2AE3D27D4EB4F
)

// mix64 folds x into the running hash h (splitmix64 finalizer).
//
//joinpebble:hotpath
func mix64(h, x uint64) uint64 {
	h ^= x + 0x9E3779B97F4A7C15 + (h << 6) + (h >> 2)
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 29
	h *= 0x94D049BB133111EB
	h ^= h >> 32
	return h
}

// labelComponents fills sc.comp with a component id per vertex and
// sc.cinfo[ci] with a hash of the component's (order, size), returning
// the component count. Plain BFS on the scratch queue.
//
//joinpebble:hotpath
func labelComponents(c *csr, n int, sc *CanonScratch) int {
	for v := 0; v < n; v++ {
		sc.comp[v] = -1
	}
	nc := 0
	for root := 0; root < n; root++ {
		if sc.comp[root] >= 0 {
			continue
		}
		ci := int32(nc)
		nc++
		order, slots := 0, 0
		head, tail := 0, 0
		sc.comp[root] = ci
		sc.queue[tail] = int32(root)
		tail++
		for head < tail {
			u := int(sc.queue[head])
			head++
			order++
			slots += c.start[u+1] - c.start[u]
			for i := c.start[u]; i < c.start[u+1]; i++ {
				w := c.vert[i]
				if sc.comp[w] < 0 {
					sc.comp[w] = ci
					sc.queue[tail] = int32(w)
					tail++
				}
			}
		}
		// slots double-counts edges (one slot per endpoint).
		sc.cinfo[ci] = mix64(mix64(canonSeedLo, uint64(order)), uint64(slots/2))
	}
	return nc
}

// refinePass computes each vertex's next signature from its current
// color and the sorted multiset of its neighbors' colors.
//
//joinpebble:hotpath
func refinePass(c *csr, sc *CanonScratch, n int) {
	for v := 0; v < n; v++ {
		lo, hi := c.start[v], c.start[v+1]
		k := 0
		for i := lo; i < hi; i++ {
			sc.nbr[k] = uint64(sc.color[c.vert[i]])
			k++
		}
		sortU64(sc.nbr[:k])
		h := mix64(canonSeedHi, uint64(sc.color[v]))
		for i := 0; i < k; i++ {
			h = mix64(h, sc.nbr[i])
		}
		sc.sig[v] = h
	}
}

// rankColors replaces sc.sig's hash values with dense ranks in sc.color
// and returns the number of distinct values. Ranks are assigned by
// sorted hash order, which is label-independent, so the refinement
// stays isomorphism-invariant.
//
//joinpebble:hotpath
func rankColors(sc *CanonScratch, n int) int {
	copy(sc.sorted[:n], sc.sig[:n])
	slices.Sort(sc.sorted[:n])
	k := 0
	for i := 0; i < n; i++ {
		if i == 0 || sc.sorted[i] != sc.sorted[k-1] {
			sc.sorted[k] = sc.sorted[i]
			k++
		}
	}
	ranks := sc.sorted[:k]
	for v := 0; v < n; v++ {
		lo, hi := 0, k
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if ranks[mid] < sc.sig[v] {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		sc.color[v] = uint32(lo)
	}
	return k
}

// sortU64 sorts small spans by insertion (neighbor lists are short for
// most families) and defers long ones to the generic sort.
//
//joinpebble:hotpath
func sortU64(a []uint64) {
	if len(a) > 24 {
		slices.Sort(a)
		return
	}
	for i := 1; i < len(a); i++ {
		x := a[i]
		j := i - 1
		for j >= 0 && a[j] > x {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = x
	}
}

// canonicalOrder assigns canonical ids in sc.perm, one vertex at a
// time: always the minimum (color, assigned-neighborhood hash, id)
// candidate next. Assigning a vertex folds its fresh canonical id into
// every unassigned neighbor's hash (xor of per-id mixes, so the value
// is independent of assignment order within the set) and re-pushes the
// neighbor; the heap drops stale versions at pop time. Ties that reach
// the final id component are between vertices with identical color and
// identical assigned neighborhoods — automorphic in the generated
// families, so the id choice cannot change the canonical edge list.
//
//joinpebble:hotpath
func canonicalOrder(c *csr, sc *CanonScratch, n int) {
	hn := 0
	for v := 0; v < n; v++ {
		sc.perm[v] = -1
		sc.sigAdj[v] = 0
		sc.ver[v] = 0
		hn = heapPush(sc.heap, hn, canonEnt{color: sc.color[v], id: int32(v)})
	}
	next := int32(0)
	for hn > 0 {
		var e canonEnt
		e, hn = heapPop(sc.heap, hn)
		v := int(e.id)
		if sc.perm[v] >= 0 || sc.ver[v] != e.ver {
			continue
		}
		sc.perm[v] = next
		id := uint64(next)
		next++
		for i := c.start[v]; i < c.start[v+1]; i++ {
			w := c.vert[i]
			if sc.perm[w] >= 0 {
				continue
			}
			sc.sigAdj[w] ^= mix64(canonSeedLo, id+1)
			sc.ver[w]++
			hn = heapPush(sc.heap, hn, canonEnt{color: sc.color[w], sig: sc.sigAdj[w], id: int32(w), ver: sc.ver[w]})
		}
	}
}

// heapPush inserts e into the first hn slots of h (a binary min-heap
// under canonEnt.less) and returns the new length. Capacity is
// preallocated by grow; no append.
//
//joinpebble:hotpath
func heapPush(h []canonEnt, hn int, e canonEnt) int {
	i := hn
	h[i] = e
	for i > 0 {
		p := (i - 1) / 2
		if !h[i].less(h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	return hn + 1
}

// heapPop removes and returns the minimum entry, with the new length.
//
//joinpebble:hotpath
func heapPop(h []canonEnt, hn int) (canonEnt, int) {
	top := h[0]
	hn--
	h[0] = h[hn]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < hn && h[l].less(h[s]) {
			s = l
		}
		if r < hn && h[r].less(h[s]) {
			s = r
		}
		if s == i {
			break
		}
		h[i], h[s] = h[s], h[i]
		i = s
	}
	return top, hn
}

// edgeListFingerprint hashes the sorted canonical edge list plus the
// graph's order and size into 128 bits.
//
//joinpebble:hotpath
func edgeListFingerprint(g *Graph, sc *CanonScratch, n, m int) Fingerprint {
	for i := 0; i < m; i++ {
		e := g.edges[i]
		a, b := sc.perm[e.U], sc.perm[e.V]
		if a > b {
			a, b = b, a
		}
		sc.ekeys[i] = uint64(a)<<32 | uint64(b)
	}
	slices.Sort(sc.ekeys[:m])
	hi := mix64(canonSeedHi, uint64(n))
	lo := mix64(canonSeedLo, uint64(n))
	hi = mix64(hi, uint64(m))
	lo = mix64(lo, uint64(m))
	for i := 0; i < m; i++ {
		hi = mix64(hi, sc.ekeys[i])
		lo = mix64(lo, sc.ekeys[i]^0x5BF0_3635_DEAD_BEEF)
	}
	return Fingerprint{Hi: hi, Lo: lo}
}
