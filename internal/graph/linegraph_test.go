package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLineGraphOfPath(t *testing.T) {
	// L(path with m edges) = path with m-1 edges.
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	lg := LineGraph(g)
	if lg.N() != 3 || lg.M() != 2 {
		t.Fatalf("L(P4): n=%d m=%d", lg.N(), lg.M())
	}
	if !lg.HasEdge(0, 1) || !lg.HasEdge(1, 2) || lg.HasEdge(0, 2) {
		t.Fatal("L(P4) edges wrong")
	}
}

func TestLineGraphOfStar(t *testing.T) {
	// L(K_{1,n}) = K_n: all star edges share the center.
	g := New(5)
	for v := 1; v < 5; v++ {
		g.AddEdge(0, v)
	}
	lg := LineGraph(g)
	if lg.N() != 4 || lg.M() != 6 {
		t.Fatalf("L(K_{1,4}): n=%d m=%d", lg.N(), lg.M())
	}
}

func TestLineGraphEdgeCount(t *testing.T) {
	// |E(L(G))| = sum over v of C(deg v, 2).
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		b := RandomConnectedBipartite(rng, 4, 4, 10)
		g := b.Graph()
		lg := LineGraph(g)
		want := 0
		for v := 0; v < g.N(); v++ {
			d := g.Degree(v)
			want += d * (d - 1) / 2
		}
		if lg.M() != want {
			t.Fatalf("trial %d: |E(L)|=%d want %d", trial, lg.M(), want)
		}
	}
}

func TestLineGraphClawFree(t *testing.T) {
	// Harary: line graphs never contain an induced K_{1,3}. This is the
	// structural fact behind Theorem 3.1's DFS construction.
	rng := rand.New(rand.NewSource(5))
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nl, nr := 3+r.Intn(4), 3+r.Intn(4)
		minM, maxM := nl+nr-1, nl*nr
		m := minM + r.Intn(maxM-minM+1)
		b := RandomConnectedBipartite(r, nl, nr, m)
		return ClawFree(LineGraph(b.Graph()))
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

func TestFindClawOnStar(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	center, leaves, ok := FindClaw(g)
	if !ok || center != 0 {
		t.Fatalf("K_{1,3} should contain a claw at 0, got ok=%v center=%d", ok, center)
	}
	for _, l := range leaves {
		if !g.HasEdge(0, l) {
			t.Fatal("claw leaf not adjacent to center")
		}
	}
}

func TestLineGraphConnectedWhenGraphConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		b := RandomConnectedBipartite(rng, 3, 4, 8)
		if !LineGraph(b.Graph()).Connected() {
			t.Fatalf("trial %d: L(G) disconnected for connected G", trial)
		}
	}
}

func TestIncidenceGraph(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	b := IncidenceGraph(g)
	if b.NLeft() != 3 || b.NRight() != 2 {
		t.Fatalf("incidence sides: %dx%d", b.NLeft(), b.NRight())
	}
	if b.M() != 2*g.M() {
		t.Fatal("each edge contributes two incidences")
	}
	// Every right vertex (edge of g) must have degree exactly 2.
	for e := 0; e < b.NRight(); e++ {
		if b.RightDegree(e) != 2 {
			t.Fatalf("edge vertex %d degree %d", e, b.RightDegree(e))
		}
	}
}

func TestIncidenceLineGraphStructure(t *testing.T) {
	// Theorem 4.4: L(IncidenceGraph(G)) is G with each degree-i vertex
	// blown up into an i-clique, one clique vertex per incident edge.
	// Check vertex/edge counts: |V| = 2m(G) (incidences), and edges =
	// sum C(deg,2) (cliques) + m(G) (the two incidences of each g-edge
	// share that edge vertex).
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		g := RandomConnectedGraph(rng, 7, 9, 3)
		lb := LineGraph(IncidenceGraph(g).Graph())
		if lb.N() != 2*g.M() {
			t.Fatalf("trial %d: |V(L(B))|=%d want %d", trial, lb.N(), 2*g.M())
		}
		want := g.M()
		for v := 0; v < g.N(); v++ {
			d := g.Degree(v)
			want += d * (d - 1) / 2
		}
		if lb.M() != want {
			t.Fatalf("trial %d: |E(L(B))|=%d want %d", trial, lb.M(), want)
		}
	}
}

func TestHamiltonianPathOnPathAndCycle(t *testing.T) {
	p := New(4)
	p.AddEdge(0, 1)
	p.AddEdge(1, 2)
	p.AddEdge(2, 3)
	if path, ok := HamiltonianPath(p); !ok || len(path) != 4 {
		t.Fatal("path graph must have a Hamiltonian path")
	}
	c := New(4)
	c.AddEdge(0, 1)
	c.AddEdge(1, 2)
	c.AddEdge(2, 3)
	c.AddEdge(3, 0)
	if _, ok := HamiltonianPath(c); !ok {
		t.Fatal("cycle must have a Hamiltonian path")
	}
}

func TestHamiltonianPathRejectsStar(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	if _, ok := HamiltonianPath(g); ok {
		t.Fatal("K_{1,3} has no Hamiltonian path")
	}
}

func TestHamiltonianPathRejectsNet(t *testing.T) {
	// The "net" (triangle with three pendants) is the classic claw-free
	// graph without a Hamiltonian path.
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(0, 3)
	g.AddEdge(1, 4)
	g.AddEdge(2, 5)
	if _, ok := HamiltonianPath(g); ok {
		t.Fatal("the net has no Hamiltonian path")
	}
}

func TestHamiltonianPathValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		g := RandomConnectedGraph(rng, 7, 12, 0)
		path, ok := HamiltonianPath(g)
		if !ok {
			continue
		}
		if len(path) != g.N() {
			t.Fatalf("trial %d: path visits %d of %d", trial, len(path), g.N())
		}
		seen := make([]bool, g.N())
		for i, v := range path {
			if seen[v] {
				t.Fatalf("trial %d: vertex %d repeated", trial, v)
			}
			seen[v] = true
			if i > 0 && !g.HasEdge(path[i-1], v) {
				t.Fatalf("trial %d: non-edge in path", trial)
			}
		}
	}
}

func TestHamiltonianPathBetween(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	if path, ok := HamiltonianPathBetween(g, 0, 3); !ok || path[0] != 0 || path[3] != 3 {
		t.Fatal("endpoints of P4 must admit a Hamiltonian path")
	}
	if _, ok := HamiltonianPathBetween(g, 1, 2); ok {
		t.Fatal("internal vertices of P4 cannot both be endpoints")
	}
}

func TestAllHamiltonianPathsOnTriangle(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	paths := AllHamiltonianPaths(g)
	if len(paths) != 6 { // 3! orderings, all valid on K3
		t.Fatalf("K3 has %d Hamiltonian paths, want 6", len(paths))
	}
}

func TestHamiltonianPathEmptyAndSingle(t *testing.T) {
	if _, ok := HamiltonianPath(New(0)); !ok {
		t.Fatal("empty graph trivially has one")
	}
	if p, ok := HamiltonianPath(New(1)); !ok || len(p) != 1 {
		t.Fatal("singleton graph")
	}
	if _, ok := HamiltonianPath(New(2)); ok {
		t.Fatal("two isolated vertices have no Hamiltonian path")
	}
}
