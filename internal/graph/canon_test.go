package graph_test

import (
	"math/rand"
	"testing"

	"joinpebble/internal/graph"
)

// buildSpider returns the spider S_k join graph the repo's family
// package generates: a center vertex, k middle vertices, k leaves —
// inner edges center–middle, outer edges middle–leaf.
func buildSpider(k int) *graph.Graph {
	g := graph.New(1 + 2*k)
	for i := 0; i < k; i++ {
		g.AddEdge(0, 1+2*i)
		g.AddEdge(1+2*i, 2+2*i)
	}
	return g
}

// permuted rebuilds g under a random vertex relabeling with shuffled
// edge-insertion order, so both the labeling and the edge indexing
// differ from the original.
func permuted(rng *rand.Rand, g *graph.Graph) *graph.Graph {
	n := g.N()
	pi := rng.Perm(n)
	h := graph.New(n)
	order := rng.Perm(g.M())
	for _, i := range order {
		e := g.EdgeAt(i)
		h.AddEdge(pi[e.U], pi[e.V])
	}
	return h
}

// corpus returns the generator sweep the cache targets: spiders,
// complete/random bipartite graphs, cycles, paths, and line graphs.
func corpus(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	return map[string]*graph.Graph{
		"spider-5":      buildSpider(5),
		"spider-40":     buildSpider(40),
		"complete-3x7":  graph.CompleteBipartite(3, 7).Graph(),
		"complete-5x5":  graph.CompleteBipartite(5, 5).Graph(),
		"cycle-12":      graph.CycleBipartite(12).Graph(),
		"path-9":        graph.PathBipartite(9).Graph(),
		"matching-6":    graph.Matching(6).Graph(),
		"random-8x6":    graph.RandomConnectedBipartite(rng, 8, 6, 20).Graph(),
		"random-12x9":   graph.RandomConnectedBipartite(rng, 12, 9, 30).Graph(),
		"line-spider-7": graph.LineGraph(buildSpider(7)),
		"line-cycle-10": graph.LineGraph(graph.CycleBipartite(10).Graph()),
		"empty":         graph.New(4),
	}
}

// TestFingerprintPermutationInvariance: for every corpus graph, random
// relabelings (with shuffled edge order) fingerprint identically to the
// original — the completeness half of the cache-key contract.
func TestFingerprintPermutationInvariance(t *testing.T) {
	sc := graph.NewCanonScratch()
	for name, g := range corpus(t) {
		_, want := graph.Canonicalize(g, sc)
		rng := rand.New(rand.NewSource(11))
		for trial := 0; trial < 8; trial++ {
			h := permuted(rng, g)
			_, got := graph.Canonicalize(h, sc)
			if got != want {
				t.Errorf("%s trial %d: permuted fingerprint %v != original %v", name, trial, got, want)
			}
		}
	}
}

// TestCanonicalEdgeListsAgree: the canonical labelings of a graph and
// its permutation map both edge lists onto the same canonical edge set,
// which is the property scheme translation rests on.
func TestCanonicalEdgeListsAgree(t *testing.T) {
	for name, g := range corpus(t) {
		rng := rand.New(rand.NewSource(23))
		h := permuted(rng, g)
		pg, _ := graph.Canonicalize(g, nil)
		ph, _ := graph.Canonicalize(h, nil)
		canon := func(g *graph.Graph, perm []int32) map[graph.Edge]bool {
			out := make(map[graph.Edge]bool, g.M())
			for i := 0; i < g.M(); i++ {
				e := g.EdgeAt(i)
				out[graph.Edge{U: int(perm[e.U]), V: int(perm[e.V])}.Normalize()] = true
			}
			return out
		}
		cg, ch := canon(g, pg), canon(h, ph)
		if len(cg) != len(ch) {
			t.Fatalf("%s: canonical edge counts differ: %d vs %d", name, len(cg), len(ch))
		}
		for e := range cg {
			if !ch[e] {
				t.Errorf("%s: canonical edge %v missing from permuted labeling", name, e)
			}
		}
	}
}

// TestCanonicalizePermIsBijection: the labeling is a permutation of
// 0..n-1.
func TestCanonicalizePermIsBijection(t *testing.T) {
	for name, g := range corpus(t) {
		perm, _ := graph.Canonicalize(g, nil)
		if len(perm) != g.N() {
			t.Fatalf("%s: perm length %d, want %d", name, len(perm), g.N())
		}
		seen := make([]bool, g.N())
		for v, id := range perm {
			if id < 0 || int(id) >= g.N() || seen[id] {
				t.Fatalf("%s: perm[%d] = %d is not a fresh id in range", name, v, id)
			}
			seen[id] = true
		}
	}
}

// nearMissPairs are non-isomorphic pairs with identical degree
// sequences — the inputs a degree-histogram hash would conflate.
func nearMissPairs() map[string][2]*graph.Graph {
	// C6 vs two triangles: all vertices degree 2.
	c6 := graph.New(6)
	for i := 0; i < 6; i++ {
		c6.AddEdge(i, (i+1)%6)
	}
	twoC3 := graph.New(6)
	twoC3.AddEdge(0, 1)
	twoC3.AddEdge(1, 2)
	twoC3.AddEdge(2, 0)
	twoC3.AddEdge(3, 4)
	twoC3.AddEdge(4, 5)
	twoC3.AddEdge(5, 3)

	// Two trees with degree sequence [3,2,2,2,1,1,1]: the subdivided
	// claw (diameter 4) vs a caterpillar (diameter 5).
	claw2 := graph.New(7)
	claw2.AddEdge(0, 1)
	claw2.AddEdge(1, 2)
	claw2.AddEdge(0, 3)
	claw2.AddEdge(3, 4)
	claw2.AddEdge(0, 5)
	claw2.AddEdge(5, 6)
	caterpillar := graph.New(7)
	caterpillar.AddEdge(0, 1)
	caterpillar.AddEdge(1, 2)
	caterpillar.AddEdge(2, 3)
	caterpillar.AddEdge(3, 4)
	caterpillar.AddEdge(4, 5)
	caterpillar.AddEdge(1, 6)

	// C8 vs C4 ⊔ C4: degree-2 everywhere, different component shape.
	c8 := graph.New(8)
	for i := 0; i < 8; i++ {
		c8.AddEdge(i, (i+1)%8)
	}
	twoC4 := graph.New(8)
	for base := 0; base < 8; base += 4 {
		for i := 0; i < 4; i++ {
			twoC4.AddEdge(base+i, base+(i+1)%4)
		}
	}
	return map[string][2]*graph.Graph{
		"c6-vs-2c3":          {c6, twoC3},
		"claw2-vs-caterpill": {claw2, caterpillar},
		"c8-vs-2c4":          {c8, twoC4},
	}
}

// TestFingerprintNearMissDistinct: same degree sequence, different
// structure, distinct fingerprints — and stably so under relabeling of
// either side.
func TestFingerprintNearMissDistinct(t *testing.T) {
	sc := graph.NewCanonScratch()
	for name, pair := range nearMissPairs() {
		a, b := pair[0], pair[1]
		da, db := a.DegreeSequence(), b.DegreeSequence()
		if len(da) != len(db) {
			t.Fatalf("%s: test bug — degree sequences differ in length", name)
		}
		for i := range da {
			if da[i] != db[i] {
				t.Fatalf("%s: test bug — degree sequences differ, not a near-miss pair", name)
			}
		}
		fa := graph.CanonicalFingerprint(a, sc)
		fb := graph.CanonicalFingerprint(b, sc)
		if fa == fb {
			t.Errorf("%s: non-isomorphic graphs share fingerprint %v", name, fa)
		}
		rng := rand.New(rand.NewSource(3))
		if got := graph.CanonicalFingerprint(permuted(rng, b), sc); got != fb {
			t.Errorf("%s: relabeled second graph fingerprints %v, want %v", name, got, fb)
		}
	}
}

// TestFingerprintMixSeparates: the same structure under different
// family salts keys differently, and Mix is deterministic.
func TestFingerprintMixSeparates(t *testing.T) {
	fp := graph.CanonicalFingerprint(buildSpider(4), nil)
	a := fp.Mix(1, 2)
	b := fp.Mix(1, 3)
	if a == b {
		t.Fatalf("different salts must separate: %v", a)
	}
	if a != fp.Mix(1, 2) {
		t.Fatalf("Mix must be deterministic")
	}
	if a == fp {
		t.Fatalf("Mix must change the fingerprint")
	}
}

// TestCanonScratchReuse: one scratch reused across differently-sized
// graphs reproduces fresh-scratch results exactly.
func TestCanonScratchReuse(t *testing.T) {
	sc := graph.NewCanonScratch()
	graphs := corpus(t)
	for round := 0; round < 3; round++ {
		for name, g := range graphs {
			_, reused := graph.Canonicalize(g, sc)
			_, fresh := graph.Canonicalize(g, graph.NewCanonScratch())
			if reused != fresh {
				t.Fatalf("%s round %d: reused scratch %v != fresh %v", name, round, reused, fresh)
			}
		}
	}
}

// FuzzCanonPermutation drives the fingerprint contract over generated
// instances. For the structured families the cache targets (spiders,
// complete bipartite, cycles/paths, line graphs) a random relabeling
// must fingerprint identically — the completeness half. Arbitrary
// random bipartite graphs are included for soundness coverage only:
// the labeling must stay a bijection, the canonical edge lists of a
// graph and its permutation must agree whenever the fingerprints do,
// and repeated calls must be deterministic — but two relabelings may
// fingerprint apart (a cache miss, never a wrong hit), because 1-WL
// refinement plus assigned-neighborhood tie-breaking does not resolve
// every WL-equivalent non-automorphic tie in arbitrary graphs.
func FuzzCanonPermutation(f *testing.F) {
	f.Add(uint8(0), uint8(5), uint8(4), int64(1))
	f.Add(uint8(1), uint8(3), uint8(7), int64(2))
	f.Add(uint8(2), uint8(8), uint8(6), int64(3))
	f.Add(uint8(3), uint8(6), uint8(0), int64(4))
	f.Add(uint8(4), uint8(9), uint8(2), int64(5))
	f.Add(uint8(5), uint8(4), uint8(4), int64(6))
	f.Fuzz(func(t *testing.T, kind, a, b uint8, seed int64) {
		na := 2 + int(a)%10
		nb := 2 + int(b)%10
		rng := rand.New(rand.NewSource(seed))
		var g *graph.Graph
		structured := true
		switch kind % 6 {
		case 0:
			g = buildSpider(na)
		case 1:
			g = graph.CompleteBipartite(na, nb).Graph()
		case 2:
			lo, hi := na+nb-1, na*nb
			m := lo + int(uint64(seed)%uint64(hi-lo+1))
			g = graph.RandomConnectedBipartite(rng, na, nb, m).Graph()
			structured = false
		case 3:
			g = graph.LineGraph(graph.CycleBipartite(2 * (na + 2)).Graph())
		case 4:
			g = graph.PathBipartite(na + nb).Graph()
		case 5:
			g = graph.Matching(na).Graph()
		}
		permG, want := graph.Canonicalize(g, nil)
		if _, again := graph.Canonicalize(g, nil); again != want {
			t.Fatalf("kind %d: fingerprint not deterministic: %v then %v", kind%6, want, again)
		}
		h := permuted(rng, g)
		permH, got := graph.Canonicalize(h, nil)
		checkBijection(t, permG, g.N())
		checkBijection(t, permH, h.N())
		if structured && got != want {
			t.Fatalf("kind %d n=(%d,%d) seed %d: permuted fingerprint %v != %v", kind%6, na, nb, seed, got, want)
		}
		if got == want {
			// Equal fingerprints must mean equal canonical edge sets —
			// the soundness half, for every kind.
			eg := canonEdges(g, permG)
			eh := canonEdges(h, permH)
			if len(eg) != len(eh) {
				t.Fatalf("kind %d: fingerprints equal but edge counts differ", kind%6)
			}
			for e := range eg {
				if !eh[e] {
					t.Fatalf("kind %d: fingerprints equal but canonical edge %v differs", kind%6, e)
				}
			}
		}
	})
}

func checkBijection(t *testing.T, perm []int32, n int) {
	t.Helper()
	if len(perm) != n {
		t.Fatalf("perm length %d, want %d", len(perm), n)
	}
	seen := make([]bool, n)
	for v, id := range perm {
		if id < 0 || int(id) >= n || seen[id] {
			t.Fatalf("perm[%d] = %d is not a fresh id in range", v, id)
		}
		seen[id] = true
	}
}

func canonEdges(g *graph.Graph, perm []int32) map[graph.Edge]bool {
	out := make(map[graph.Edge]bool, g.M())
	for i := 0; i < g.M(); i++ {
		e := g.EdgeAt(i)
		out[graph.Edge{U: int(perm[e.U]), V: int(perm[e.V])}.Normalize()] = true
	}
	return out
}
