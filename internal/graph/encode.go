package graph

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// The text format used by the CLIs is one record per line:
//
//	bipartite <nLeft> <nRight>   or   graph <n>
//	e <u> <v>                    (one line per edge, in order)
//
// Blank lines and lines starting with '#' are ignored. For bipartite
// graphs u is a left index and v a right index.

// WriteGraph serializes g in the text format.
func WriteGraph(w io.Writer, g *Graph) error {
	if _, err := fmt.Fprintf(w, "graph %d\n", g.N()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(w, "e %d %d\n", e.U, e.V); err != nil {
			return err
		}
	}
	return nil
}

// WriteBipartite serializes b in the text format.
func WriteBipartite(w io.Writer, b *Bipartite) error {
	if _, err := fmt.Fprintf(w, "bipartite %d %d\n", b.NLeft(), b.NRight()); err != nil {
		return err
	}
	for i := 0; i < b.M(); i++ {
		l, r := b.EdgeAt(i)
		if _, err := fmt.Fprintf(w, "e %d %d\n", l, r); err != nil {
			return err
		}
	}
	return nil
}

// Read parses the text format and returns either a *Graph or a
// *Bipartite depending on the header line.
func Read(r io.Reader) (any, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var g *Graph
	var b *Bipartite
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "graph":
			if g != nil || b != nil {
				return nil, fmt.Errorf("graph: line %d: duplicate header", line)
			}
			var n int
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph: line %d: want 'graph <n>'", line)
			}
			if _, err := fmt.Sscanf(fields[1], "%d", &n); err != nil {
				return nil, fmt.Errorf("graph: line %d: bad vertex count: %w", line, err)
			}
			g = New(n)
		case "bipartite":
			if g != nil || b != nil {
				return nil, fmt.Errorf("graph: line %d: duplicate header", line)
			}
			var nl, nr int
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: want 'bipartite <nLeft> <nRight>'", line)
			}
			if _, err := fmt.Sscanf(fields[1]+" "+fields[2], "%d %d", &nl, &nr); err != nil {
				return nil, fmt.Errorf("graph: line %d: bad side sizes: %w", line, err)
			}
			b = NewBipartite(nl, nr)
		case "e":
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: want 'e <u> <v>'", line)
			}
			var u, v int
			if _, err := fmt.Sscanf(fields[1]+" "+fields[2], "%d %d", &u, &v); err != nil {
				return nil, fmt.Errorf("graph: line %d: bad edge: %w", line, err)
			}
			switch {
			case g != nil:
				if u < 0 || v < 0 || u >= g.N() || v >= g.N() || u == v {
					return nil, fmt.Errorf("graph: line %d: edge %d-%d invalid for %d vertices", line, u, v, g.N())
				}
				g.AddEdge(u, v)
			case b != nil:
				if u < 0 || v < 0 || u >= b.NLeft() || v >= b.NRight() {
					return nil, fmt.Errorf("graph: line %d: edge %d-%d outside %dx%d sides", line, u, v, b.NLeft(), b.NRight())
				}
				b.AddEdge(u, v)
			default:
				return nil, fmt.Errorf("graph: line %d: edge before header", line)
			}
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	switch {
	case g != nil:
		return g, nil
	case b != nil:
		return b, nil
	default:
		return nil, fmt.Errorf("graph: empty input")
	}
}

// ReadBipartite parses the text format and requires a bipartite graph. A
// general-graph input is accepted if it 2-colors cleanly.
func ReadBipartite(r io.Reader) (*Bipartite, error) {
	v, err := Read(r)
	if err != nil {
		return nil, err
	}
	switch t := v.(type) {
	case *Bipartite:
		return t, nil
	case *Graph:
		b, _, _, err := FromGraph(t)
		return b, err
	}
	return nil, fmt.Errorf("graph: unexpected input type")
}
