package graph

import (
	"context"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"joinpebble/internal/bitset"
	"joinpebble/internal/faultinject"
	"joinpebble/internal/obs"
)

// This file is the bitset claw-scan kernel behind FindClaw/FindClawIn —
// the Theorem 3.1 precondition check that dominated the bench trajectory
// (clawfree-linegraph/spider-1000-m2000) before this rewrite.
//
// The scalar kernel tests neighbor triples with per-pair HasEdge probes:
// O(Δ²) binary searches per center just to find one non-adjacent pair.
// The bitset kernel instead materializes adjacency *rows* — one dense
// bitset.Bitset over vertex ids per vertex, built lazily the first time a
// vertex appears as a candidate leaf and cached for the rest of the scan
// — and turns the "three pairwise non-adjacent neighbors" test into two
// chained complement intersections:
//
//	cand  = N(v) &^ row(l1)   // leaves non-adjacent to l1
//	cand2 = cand &^ row(l2)   // ... and to l2; any survivor is l3
//
// 64 pair tests per word operation instead of one per binary search.
// Rows are shared across centers (the clique rows of a spider's line
// graph are probed by every clique vertex), so the total build cost is
// bounded by Σ deg(v) = 2|E| per scan, not per center.
//
// Both kernels enumerate triples in the same canonical order — ascending
// vertex id, lexicographic (l1, l2, l3) — so they return identical claws
// and the parallel scan below can define its winner without reference to
// scheduling.

// SiteClawScan fires every clawCheckpointStride centers in the scan
// loops (sequential and per-worker): inject a Delay to hold a scan
// mid-flight or an error to abort it (registry in DESIGN.md).
const SiteClawScan = "graph/clawscan"

// clawCheckpointMask guards the cancellation checkpoints of the scan
// loops: stride 1024, well under ctxloop's provable bound.
const clawCheckpointMask = 0x3FF

// ClawScanWorkers, when non-nil, supplies the worker count for parallel
// claw scans, following the solver.Parallelism convention (<= 0 means
// GOMAXPROCS). internal/solver registers its Parallelism knob here at
// init, so one setting governs both the component pool and the claw
// scan; with no registration scans run sequentially.
var ClawScanWorkers func() int

// clawRowBudgetWords caps the row-cache slab at n rows × n/64 words.
// Beyond it (n ≈ 23k at the default 64 MiB) FindClawIn falls back to
// the scalar kernel, trading speed for O(Δ) memory. A var so tests can
// force the fallback on small instances.
var clawRowBudgetWords = 8 << 20

// clawParallelMinN is the smallest vertex count worth fanning workers
// out over; below it the row prebuild barrier costs more than it saves.
const clawParallelMinN = 512

// ClawScratch is the reusable state of a bitset claw scan: the adjacency
// row slab with its built-row index, plus the per-probe masks. A scratch
// may be reused across scans of different graphs — Reset re-sizes and
// invalidates cached rows — which is what callers running repeated claw
// checks (the bench suite, solver-ladder structure probes) thread
// through ClawFreeLineGraphScratch to stop re-growing fresh slices.
//
// A scratch is single-goroutine state; the parallel scan hands each
// worker its own probe block and shares only the (pre-built, read-only)
// row slab.
type ClawScratch struct {
	n     int // vertex count of the current scan
	words int // words per row
	rows  []uint64
	built bitset.Bitset
	rowNb []int // neighbor buffer for lazy row builds

	probe clawProbe // sequential probe state
}

// clawProbe is the per-goroutine portion of a scan: the neighbor list of
// the current center and the three masks of the triple enumeration.
type clawProbe struct {
	nb     []int
	nbMask bitset.Bitset
	cand   bitset.Bitset
	cand2  bitset.Bitset
}

// NewClawScratch returns an empty scratch; Reset (called by every scan
// entry point) sizes it to the graph at hand.
func NewClawScratch() *ClawScratch { return &ClawScratch{} }

// Reset prepares the scratch for a scan over n vertices: grows the row
// slab and masks if needed and invalidates previously built rows. Only
// rows actually built by the prior scan are re-zeroed, so a scratch that
// found a claw early stays cheap to reset.
func (s *ClawScratch) Reset(n int) {
	words := (n + 63) >> 6
	if cap(s.rows) < n*words {
		s.rows = make([]uint64, n*words)
		s.built = bitset.New(n)
		s.probe.size(n, words)
		s.n, s.words = n, words
		return
	}
	s.rows = s.rows[:n*words]
	// Zero the stale rows of the previous scan before invalidating them.
	for u := s.built.NextSet(0); u >= 0; u = s.built.NextSet(u + 1) {
		if (u+1)*s.words <= len(s.rows) {
			row := bitset.Bitset(s.rows[u*s.words : (u+1)*s.words])
			row.ClearAll()
		}
	}
	if len(s.built) < (n+63)>>6 {
		s.built = bitset.New(n)
	} else {
		s.built.ClearAll()
	}
	// A geometry change leaves reused words in rows that belonged to
	// other rows' regions zeroed above only if built tracked them; a
	// dimension switch therefore re-zeroes wholesale.
	if words != s.words || n != s.n {
		for i := range s.rows {
			s.rows[i] = 0
		}
		s.built.ClearAll()
	}
	s.probe.size(n, words)
	s.n, s.words = n, words
}

func (p *clawProbe) size(n, words int) {
	if len(p.nbMask) < words {
		p.nbMask = bitset.New(n)
		p.cand = bitset.New(n)
		p.cand2 = bitset.New(n)
		return
	}
	p.nbMask = p.nbMask[:words]
	p.cand = p.cand[:words]
	p.cand2 = p.cand2[:words]
	p.nbMask.ClearAll()
}

// row returns the adjacency row of u, building it on first use.
func (s *ClawScratch) row(a Adjacency, u int) bitset.Bitset {
	r := bitset.Bitset(s.rows[u*s.words : (u+1)*s.words])
	if !s.built.Test(u) {
		s.rowNb = a.AppendNeighbors(s.rowNb[:0], u)
		for _, w := range s.rowNb {
			r.Set(w)
		}
		s.built.Set(u)
	}
	return r
}

// probeCenter tests one center for the canonical lowest claw: the
// lexicographically first (l1, l2, l3) in ascending vertex id with all
// three pairwise non-adjacent. With lazyRows set, missing adjacency rows
// are built on first use (sequential scans); parallel workers pass false
// and read the phase-1 slab as immutable, because the lazy path mutates
// scratch state (rowNb, built) that is not safe to share.
func (p *clawProbe) probeCenter(a Adjacency, s *ClawScratch, v int, lazyRows bool) (leaves [3]int, ok bool) {
	p.nb = a.AppendNeighbors(p.nb[:0], v)
	for _, u := range p.nb {
		p.nbMask.Set(u)
	}
	row := func(u int) bitset.Bitset {
		if lazyRows {
			return s.row(a, u)
		}
		return bitset.Bitset(s.rows[u*s.words : (u+1)*s.words])
	}
	for l1 := p.nbMask.NextSet(0); l1 >= 0 && !ok; l1 = p.nbMask.NextSet(l1 + 1) {
		p.cand.AndNot(p.nbMask, row(l1))
		p.cand.ClearThrough(l1)
		for l2 := p.cand.NextSet(0); l2 >= 0; l2 = p.cand.NextSet(l2 + 1) {
			p.cand2.AndNot(p.cand, row(l2))
			p.cand2.ClearThrough(l2)
			if l3 := p.cand2.NextSet(0); l3 >= 0 {
				leaves, ok = [3]int{l1, l2, l3}, true
				break
			}
		}
	}
	// The mask is cleared neighbor-by-neighbor (O(Δ), not O(n/64)) so
	// the next center starts clean without a full sweep.
	for _, u := range p.nb {
		p.nbMask.Clear(u)
	}
	return leaves, ok
}

// FindClawContext is the full claw search: bitset kernel with row-cache
// reuse through s (nil allocates a fresh scratch), a parallel vertex
// scan when the registered parallelism knob asks for one, cancellation
// checkpoints every 1024 centers, and a scalar fallback when the row
// slab would exceed its memory budget. It returns the claw with the
// lowest center, with the canonical leaf triple for that center —
// deterministic at every worker count. err is non-nil only on ctx
// cancellation or an injected SiteClawScan fault.
func FindClawContext(ctx context.Context, a Adjacency, s *ClawScratch) (center int, leaves [3]int, ok bool, err error) {
	start := obs.Now()
	defer func() {
		tClawDetection.Observe(ctx, obs.Since(start))
		cClawChecks.Inc(ctx)
		if ok {
			cClawsFound.Inc(ctx)
		}
	}()
	n := a.N()
	words := (n + 63) >> 6
	if n*words > clawRowBudgetWords {
		return scalarClawScan(ctx, a, nil)
	}
	if s == nil {
		s = NewClawScratch()
	}
	s.Reset(n)
	if w := clawScanWorkerCount(n); w > 1 {
		return findClawParallel(ctx, a, s, w)
	}
	for v := 0; v < n; v++ {
		if v&clawCheckpointMask == 0 {
			if err := faultinject.Fire(SiteClawScan); err != nil {
				return 0, [3]int{}, false, err
			}
			if err := ctx.Err(); err != nil {
				return 0, [3]int{}, false, err
			}
		}
		if a.Degree(v) < 3 {
			continue
		}
		if l, found := s.probe.probeCenter(a, s, v, true); found {
			return v, l, true, nil
		}
	}
	return 0, [3]int{}, false, nil
}

func clawScanWorkerCount(n int) int {
	if ClawScanWorkers == nil || n < clawParallelMinN {
		return 1
	}
	w := ClawScanWorkers()
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if max := (n + clawParallelMinN - 1) / clawParallelMinN; w > max {
		w = max
	}
	return w
}

// findClawParallel fans the vertex loop out over w workers. Two phases:
//
//  1. Row prebuild — workers claim disjoint vertex ranges off an atomic
//     cursor and build their rows into disjoint slab regions, so the
//     scan phase reads the slab with no synchronization at all.
//  2. Scan — workers claim chunks of centers off a second cursor and
//     keep a shared atomic "best center found". A worker scans its
//     chunks in ascending order, so its first find is its lowest; it
//     then stops, because every chunk it could still claim lies above
//     its find. A center is skipped only when it exceeds the current
//     best, and the best only decreases, so every center below the
//     final minimum is provably scanned by someone — which makes the
//     returned claw (minimum center across workers, canonical triple
//     within it) identical to the sequential scan's at any w.
func findClawParallel(ctx context.Context, a Adjacency, s *ClawScratch, w int) (center int, leaves [3]int, ok bool, err error) {
	n := s.n
	const chunk = 256
	var buildNext, scanNext atomic.Int64
	best := atomic.Int64{}
	best.Store(int64(n)) // sentinel above every real center

	type result struct {
		center int
		leaves [3]int
		err    error
	}
	results := make([]result, w)
	for i := range results {
		results[i].center = -1
	}

	var wg, buildWg sync.WaitGroup
	buildWg.Add(w)
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			// Phase 1: build rows for disjoint vertex ranges. Rows are
			// written into disjoint slab regions, and the barrier below
			// publishes them before any worker starts probing, so the
			// scan phase reads the slab lock-free.
			var nb []int
			for ctx.Err() == nil {
				lo := int(buildNext.Add(chunk)) - chunk
				if lo >= n {
					break
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				for u := lo; u < hi; u++ {
					row := bitset.Bitset(s.rows[u*s.words : (u+1)*s.words])
					nb = a.AppendNeighbors(nb[:0], u)
					for _, x := range nb {
						row.Set(x)
					}
					// Chunks are 256-aligned, so each worker touches a
					// disjoint range of built's words: no synchronization
					// needed beyond the barrier below.
					s.built.Set(u)
				}
			}
			buildWg.Done()
			buildWg.Wait()
			if err := ctx.Err(); err != nil {
				results[wi].err = err // rows may be incomplete; abort
				return
			}
			// Phase 2: scan chunks of centers.
			probe := clawProbe{nb: nb}
			probe.size(n, s.words)
			for {
				lo := int(scanNext.Add(chunk)) - chunk
				if lo >= n || int64(lo) > best.Load() {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				for v := lo; v < hi; v++ {
					if v&clawCheckpointMask == 0 {
						if err := faultinject.Fire(SiteClawScan); err != nil {
							results[wi].err = err
							return
						}
						if err := ctx.Err(); err != nil {
							results[wi].err = err
							return
						}
					}
					if int64(v) > best.Load() {
						return // everything this worker can still reach is higher
					}
					if a.Degree(v) < 3 {
						continue
					}
					if l, found := probe.probeCenter(a, s, v, false); found {
						results[wi] = result{center: v, leaves: l}
						// Lower the shared bound; losing a race only
						// means the other worker's center was lower.
						for {
							cur := best.Load()
							if int64(v) >= cur || best.CompareAndSwap(cur, int64(v)) {
								break
							}
						}
						return
					}
				}
			}
		}(k)
	}
	wg.Wait()
	minC := -1
	for _, r := range results {
		if r.err != nil && err == nil {
			err = r.err
		}
		if r.center >= 0 && (minC < 0 || r.center < minC) {
			minC, leaves = r.center, r.leaves
		}
	}
	// An aborted worker may have left centers below minC unscanned, so
	// a claw found elsewhere is not provably the lowest: the error wins.
	// (built already reflects exactly the rows phase 1 managed to write,
	// so an aborted scratch stays reusable.)
	if err != nil {
		return 0, [3]int{}, false, err
	}
	if minC >= 0 {
		return minC, leaves, true, nil
	}
	return 0, [3]int{}, false, nil
}

// scalarClawScan is the reference kernel: per-pair HasEdge probes over
// neighbor triples, in the same canonical ascending-id order as the
// bitset kernel. It is the differential oracle, the legacy arm of
// cmd/bench, and the fallback above the row-cache memory budget. nb is
// neighbor scratch reused across centers (nil is fine).
//
//joinpebble:hotpath
func scalarClawScan(ctx context.Context, a Adjacency, nb []int) (center int, leaves [3]int, ok bool, err error) {
	for v := 0; v < a.N(); v++ {
		if v&clawCheckpointMask == 0 {
			if err := faultinject.Fire(SiteClawScan); err != nil {
				return 0, [3]int{}, false, err
			}
			if err := ctx.Err(); err != nil {
				return 0, [3]int{}, false, err
			}
		}
		if a.Degree(v) < 3 {
			continue
		}
		nb = a.AppendNeighbors(nb[:0], v)
		slices.Sort(nb) // canonical ascending-id order, shared with the bitset kernel
		for i := 0; i < len(nb); i++ {
			for j := i + 1; j < len(nb); j++ {
				if a.HasEdge(nb[i], nb[j]) {
					continue
				}
				for k := j + 1; k < len(nb); k++ {
					if !a.HasEdge(nb[i], nb[k]) && !a.HasEdge(nb[j], nb[k]) {
						return v, [3]int{nb[i], nb[j], nb[k]}, true, nil
					}
				}
			}
		}
	}
	return 0, [3]int{}, false, nil
}

// FindClawScalar runs the scalar reference kernel without cancellation —
// the oracle the differential and fuzz tests compare the bitset kernel
// against, and the "before" arm of the claw-detection bench series.
func FindClawScalar(a Adjacency, nb []int) (center int, leaves [3]int, ok bool) {
	c, l, ok, err := scalarClawScan(context.Background(), a, nb)
	if err != nil {
		panic(err) // only an armed SiteClawScan fault can produce this
	}
	return c, l, ok
}
