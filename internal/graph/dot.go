package graph

import (
	"fmt"
	"io"
)

// WriteDOT renders g in Graphviz DOT format for visualization.
func WriteDOT(w io.Writer, g *Graph, name string) error {
	if name == "" {
		name = "G"
	}
	if _, err := fmt.Fprintf(w, "graph %s {\n", name); err != nil {
		return err
	}
	for v := 0; v < g.N(); v++ {
		if _, err := fmt.Fprintf(w, "  %d;\n", v); err != nil {
			return err
		}
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(w, "  %d -- %d;\n", e.U, e.V); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// WriteDOTBipartite renders a join graph in DOT with the two sides
// ranked left and right and labeled r<i>/s<j>.
func WriteDOTBipartite(w io.Writer, b *Bipartite, name string) error {
	if name == "" {
		name = "JoinGraph"
	}
	if _, err := fmt.Fprintf(w, "graph %s {\n  rankdir=LR;\n", name); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  { rank=same;"); err != nil {
		return err
	}
	for i := 0; i < b.NLeft(); i++ {
		if _, err := fmt.Fprintf(w, " r%d;", i); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, " }"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  { rank=same;"); err != nil {
		return err
	}
	for j := 0; j < b.NRight(); j++ {
		if _, err := fmt.Fprintf(w, " s%d;", j); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, " }"); err != nil {
		return err
	}
	for e := 0; e < b.M(); e++ {
		l, r := b.EdgeAt(e)
		if _, err := fmt.Fprintf(w, "  r%d -- s%d;\n", l, r); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
