package graph

import (
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	var sb strings.Builder
	if err := WriteDOT(&sb, g, "Demo"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"graph Demo {", "0 -- 1;", "1 -- 2;", "}"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestWriteDOTDefaultsName(t *testing.T) {
	var sb strings.Builder
	if err := WriteDOT(&sb, New(1), ""); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "graph G {") {
		t.Fatalf("got %q", sb.String())
	}
}

func TestWriteDOTBipartite(t *testing.T) {
	b := NewBipartite(2, 2)
	b.AddEdge(0, 1)
	var sb strings.Builder
	if err := WriteDOTBipartite(&sb, b, ""); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"rankdir=LR", "r0 -- s1;", "rank=same"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}
