package faultinject

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDisarmedFireIsNil(t *testing.T) {
	if err := Fire("nowhere"); err != nil {
		t.Fatalf("disarmed Fire returned %v", err)
	}
	if Armed() {
		t.Fatal("Armed() true with nothing armed")
	}
}

func TestErrorInjection(t *testing.T) {
	defer Reset()
	sentinel := errors.New("sentinel")
	Arm("site/a", Fault{Err: fmt.Errorf("%w: injected", sentinel)})
	err := Fire("site/a")
	if !errors.Is(err, sentinel) {
		t.Fatalf("injected error %v does not match sentinel", err)
	}
	// Another site stays clean.
	if err := Fire("site/b"); err != nil {
		t.Fatalf("unarmed sibling site returned %v", err)
	}
	Disarm("site/a")
	if err := Fire("site/a"); err != nil {
		t.Fatalf("disarmed site returned %v", err)
	}
	if Armed() {
		t.Fatal("Armed() true after Disarm")
	}
}

func TestPanicInjection(t *testing.T) {
	defer Reset()
	Arm("site/panic", Fault{Panic: "boom"})
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	Fire("site/panic")
	t.Fatal("Fire did not panic")
}

func TestDelayInjection(t *testing.T) {
	defer Reset()
	Arm("site/slow", Fault{Delay: 30 * time.Millisecond})
	start := time.Now()
	if err := Fire("site/slow"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("Fire returned after %v, want >= 30ms", d)
	}
}

// TestSkipAndTimes pins the deterministic activation schedule: Skip
// suppresses the leading hits, Times caps the activations after that.
func TestSkipAndTimes(t *testing.T) {
	defer Reset()
	sentinel := errors.New("sentinel")
	Arm("site/sched", Fault{Err: sentinel, Skip: 2, Times: 2})
	var got []bool
	for i := 0; i < 6; i++ {
		got = append(got, Fire("site/sched") != nil)
	}
	want := []bool{false, false, true, true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hit %d fired=%v, want %v (schedule %v)", i, got[i], want[i], got)
		}
	}
	if h := Hits("site/sched"); h != 6 {
		t.Fatalf("Hits = %d, want 6", h)
	}
	if f := Fired("site/sched"); f != 2 {
		t.Fatalf("Fired = %d, want 2", f)
	}
}

// TestZeroFaultCountsHits: an inert fault is a pure probe asserting the
// site is reached.
func TestZeroFaultCountsHits(t *testing.T) {
	defer Reset()
	Arm("site/probe", Fault{})
	for i := 0; i < 3; i++ {
		if err := Fire("site/probe"); err != nil {
			t.Fatal(err)
		}
	}
	if h := Hits("site/probe"); h != 3 {
		t.Fatalf("Hits = %d, want 3", h)
	}
}

// TestConcurrentFire hammers an armed site from many goroutines under
// -race: the schedule arithmetic must stay consistent (exactly Times
// activations) no matter the interleaving.
func TestConcurrentFire(t *testing.T) {
	defer Reset()
	sentinel := errors.New("sentinel")
	Arm("site/conc", Fault{Err: sentinel, Times: 5})
	var wg sync.WaitGroup
	var fired atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if Fire("site/conc") != nil {
					fired.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if n := fired.Load(); n != 5 {
		t.Fatalf("%d activations fired, want exactly 5", n)
	}
	if h := Hits("site/conc"); h != 800 {
		t.Fatalf("Hits = %d, want 800", h)
	}
}

// BenchmarkDisarmedFire measures the cost every hot-path site pays in
// production: one atomic load. The bench harness pins this as the
// faultinject/disarmed-fire series.
func BenchmarkDisarmedFire(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := Fire("solver/component"); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDelaySelectsOnContext(t *testing.T) {
	defer Reset()
	// An injected delay far longer than the test budget must be cut
	// short the moment the request context is cancelled: the regression
	// this pins is a Delay fault holding a cancelled request's handler
	// for the full injected duration.
	Arm("site/delay", Fault{Delay: time.Minute})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- FireContext(ctx, "site/delay") }()
	time.Sleep(10 * time.Millisecond) // let the goroutine enter the delay
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled FireContext returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("FireContext still blocked long after cancellation; delay is not selecting on ctx")
	}
	if got := Fired("site/delay"); got != 1 {
		t.Fatalf("Fired = %d, want 1", got)
	}
}

func TestDelayCompletesUnderLiveContext(t *testing.T) {
	defer Reset()
	Arm("site/delay", Fault{Delay: time.Millisecond, Err: errors.New("after delay")})
	if err := FireContext(context.Background(), "site/delay"); err == nil || err.Error() != "after delay" {
		t.Fatalf("FireContext = %v, want the armed error after the delay", err)
	}
}

func TestFireContextDisarmedIsNil(t *testing.T) {
	if err := FireContext(context.Background(), "nowhere"); err != nil {
		t.Fatalf("disarmed FireContext returned %v", err)
	}
}
