// Package faultinject provides deterministic, test-scoped failure points
// for the solver and engine hot paths. Production code registers *sites*
// — named places where a failure can be injected — by calling Fire; tests
// arm a site with a Fault (an error to return, a value to panic with, a
// delay to sleep) and every degradation path in the engine can be driven
// end to end without constructing a pathological workload.
//
// Disarmed cost. Fire is a no-op guarded by a single atomic load while
// nothing is armed anywhere, so sites are safe to leave in hot paths;
// the bench harness's faultinject/disarmed-fire series keeps that claim
// honest against the regression baseline. The per-site bookkeeping
// (mutex, hit counts, Skip/Times arithmetic) is only paid while at least
// one fault is armed — i.e. inside tests.
//
// Determinism. Arming is keyed by site name; activation order at a site
// follows its hit order under a mutex, so Skip/Times schedules are exact.
// Tests that need a precise hit ordering across goroutines should pin
// solver.Parallelism to 1 or target single-component instances.
//
// The canonical site-name registry lives in DESIGN.md ("Degradation
// ladder and fault injection"); site names are package/path-style
// strings such as "solver/component" owned by the package that fires
// them.
package faultinject

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"joinpebble/internal/obs"
)

func init() {
	// Let obs.Scope flag requests during which any site fired without
	// obs importing this package (obs stays dependency-free; the wiring
	// points the other way).
	obs.FaultFiredTotal = FiredTotal
}

// Fault describes what happens when an armed site fires. Effects apply
// in order: Delay (sleep), then Panic, then Err. The zero Fault is
// inert — arming it still counts hits, which makes {Skip:0, Times:0}
// a pure hit-counter probe for asserting a site is reached.
type Fault struct {
	// Err, when non-nil, is returned from Fire. Arm with a wrapped
	// sentinel (e.g. fmt.Errorf("%w: injected", solver.ErrBudgetExceeded))
	// to drive the caller's errors.Is matching.
	Err error
	// Panic, when non-nil, is passed to panic() — the forced-panic
	// injection the solver's recovery paths are tested with.
	Panic any
	// Delay, when non-zero, blocks Fire for the duration before the
	// other effects, so a deadline can be forced to expire mid-solve.
	Delay time.Duration
	// Skip suppresses the first Skip activations of the site, so a
	// fault can target e.g. only the third component solved.
	Skip int
	// Times caps how many activations actually fire after Skip;
	// 0 means every one.
	Times int
}

// site is the armed state at one name.
type site struct {
	fault Fault
	hits  int64 // Fire calls observed while armed
	fired int64 // activations that applied the fault's effects
}

var (
	// armedCount gates Fire: zero means nothing is armed anywhere and
	// Fire returns after one atomic load. It counts armed sites.
	armedCount atomic.Int64

	// firedTotal counts fault activations process-wide, across all sites
	// and surviving Reset, so a sampler (obs.Scope) can detect "a fault
	// fired while I was open" from two loads.
	firedTotal atomic.Int64

	//joinlint:lockrank faultinject-sites 80
	mu    sync.Mutex
	sites = map[string]*site{}
)

// FiredTotal returns the process-wide number of fault activations that
// applied their effects, across all sites since process start (Reset
// does not rewind it).
func FiredTotal() int64 { return firedTotal.Load() }

// Arm installs f at the named site, replacing any previous fault there.
// The site's hit and fired counts restart at zero.
func Arm(name string, f Fault) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := sites[name]; !ok {
		armedCount.Add(1)
	}
	sites[name] = &site{fault: f}
}

// Disarm removes the fault at the named site, if any.
func Disarm(name string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := sites[name]; ok {
		delete(sites, name)
		armedCount.Add(-1)
	}
}

// Reset disarms every site. Tests that arm faults must defer a Reset so
// no fault leaks into later tests.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	armedCount.Add(-int64(len(sites)))
	sites = map[string]*site{}
}

// Armed reports whether any site is armed.
func Armed() bool { return armedCount.Load() > 0 }

// Hits returns how many times the named site fired while armed (hits
// while disarmed are not observable — Fire returns before any
// bookkeeping). Zero for unarmed sites.
func Hits(name string) int64 {
	mu.Lock()
	defer mu.Unlock()
	if s, ok := sites[name]; ok {
		return s.hits
	}
	return 0
}

// Fired returns how many activations at the named site applied their
// fault's effects (hits minus those suppressed by Skip/Times).
func Fired(name string) int64 {
	mu.Lock()
	defer mu.Unlock()
	if s, ok := sites[name]; ok {
		return s.fired
	}
	return 0
}

// Fire is the production-side hook: call it at a named site; it applies
// the armed fault's effects, if any. While nothing is armed anywhere it
// is a no-op after one atomic load, so it is safe in hot paths. Sites
// with a request context in hand should prefer FireContext so an
// injected Delay cannot outlive a cancelled request.
//
//joinpebble:hotpath
func Fire(name string) error {
	if armedCount.Load() == 0 {
		return nil
	}
	return fire(context.Background(), name)
}

// FireContext is Fire bound to a request context: an armed Delay sleeps
// under ctx, returning ctx.Err() the moment the request is cancelled
// instead of holding the handler for the full injected duration. Err and
// Panic effects are unchanged. Same disarmed fast path as Fire.
//
//joinpebble:hotpath
func FireContext(ctx context.Context, name string) error {
	if armedCount.Load() == 0 {
		return nil
	}
	return fire(ctx, name)
}

// fire is the slow path, split out so Fire/FireContext stay inlinable.
func fire(ctx context.Context, name string) error {
	mu.Lock()
	s, ok := sites[name]
	if !ok {
		mu.Unlock()
		return nil
	}
	s.hits++
	f := s.fault
	active := s.hits > int64(f.Skip) &&
		(f.Times == 0 || s.fired < int64(f.Times))
	if active {
		s.fired++
		firedTotal.Add(1)
	}
	mu.Unlock()
	if !active {
		return nil
	}
	// Effects run outside the lock so a Delay at one site never blocks
	// arming, disarming, or other sites firing. The sleep selects on the
	// caller's context (Background for plain Fire — its Done channel is
	// nil, so the timer always wins there), so a cancelled request gets
	// its cancellation back instead of the remainder of the delay.
	if f.Delay > 0 {
		t := time.NewTimer(f.Delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
	if f.Panic != nil {
		panic(f.Panic)
	}
	return f.Err
}
