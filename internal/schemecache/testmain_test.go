package schemecache

import (
	"os"
	"testing"

	"joinpebble/internal/testutil/leakcheck"
)

// TestMain gates the suite on goroutine hygiene: the sharded cache is
// all mutexes and no goroutines, so anything still running after the
// tests (a stray eviction helper, a leaked stress-test worker) is a
// bug (the dynamic side of the golife analyzer's static rule).
func TestMain(m *testing.M) {
	os.Exit(leakcheck.Main(m))
}
