// Package schemecache is a sharded, bounded, concurrency-safe cache of
// verified pebbling schemes keyed by canonical graph fingerprint.
//
// Schemes are structural: they depend only on the join graph's
// isomorphism class and the predicate family, never on relation
// contents, so a scheme solved for one request can be replayed for any
// later request with the same shape. The cache stores schemes in
// *canonical* vertex labels — the labeling graph.Canonicalize computes —
// and the ToCanonical/FromCanonical helpers translate between a
// request's labeling and the cached form using the request's own
// canonical mapping. A cached scheme is therefore meaningful for every
// instance that fingerprints to the same key, not just the one that
// inserted it.
//
// Sharding and eviction. Entries are spread over a power-of-two number
// of shards selected by the fingerprint's high bits, each guarded by
// its own mutex, so concurrent planners contend only when they hash to
// the same shard. Capacity is accounted in bytes (configurations plus
// per-entry overhead) and split evenly across shards; each shard evicts
// with the CLOCK second-chance policy — a hit sets the entry's
// reference bit, the sweeping hand clears it once before reclaiming, so
// one sweep's worth of recency survives without per-access list
// surgery.
//
// Trust model. The cache is an optimization, never an authority: the
// engine re-verifies every translated scheme against the simulator
// before using it, so a corrupt or stale entry costs a re-solve, not a
// wrong answer. The faultinject sites let tests drive exactly those
// paths: "schemecache/lookup" forces misses, "schemecache/corrupt"
// hands back a deliberately invalid copy that verification must catch.
package schemecache

import (
	"errors"
	"sync"

	"joinpebble/internal/core"
	"joinpebble/internal/faultinject"
	"joinpebble/internal/graph"
)

// Fault-injection sites (registered in DESIGN.md's site table).
const (
	// SiteLookup fires on every Get; an armed error forces a miss even
	// when the entry is present, driving the cold path under traffic.
	SiteLookup = "schemecache/lookup"
	// SiteCorrupt fires on every hit; an armed error corrupts the
	// returned copy, driving the engine's verify-on-hit rejection path.
	SiteCorrupt = "schemecache/corrupt"
)

// ErrMiss is returned by Get when no entry is cached under the
// fingerprint (or a lookup fault forced the miss path).
var ErrMiss = errors.New("schemecache: miss")

// Entry is one cached scheme. Scheme is in canonical vertex labels; N
// and M pin the shape so a fingerprint collision across different sizes
// (or a stale entry) is rejected before translation.
type Entry struct {
	Scheme core.Scheme // configurations in canonical labels
	N, M   int         // vertex and edge counts of the canonical graph
	Cost   int         // verified π̂ of the scheme
	Solver string      // name of the solver that produced it
}

// Stats is a point-in-time aggregate across all shards.
type Stats struct {
	Hits      int64
	Misses    int64
	Inserts   int64
	Evictions int64
	Entries   int
	Bytes     int64
	Capacity  int64
	Shards    int
}

// entryOverhead approximates the per-entry bookkeeping cost (slot,
// index map cell, Entry header) charged against capacity on top of the
// configuration payload.
const entryOverhead = 96

// bytesFor is the capacity charge for an entry: 16 bytes per
// configuration (two ints) plus the solver-name string and overhead.
func bytesFor(ent Entry) int64 {
	return int64(len(ent.Scheme))*16 + int64(len(ent.Solver)) + entryOverhead
}

// slot is one CLOCK ring position.
type slot struct {
	fp   graph.Fingerprint
	ent  Entry
	cost int64 // byte charge, fixed at insert
	ref  bool  // second-chance bit, set on hit
	live bool
}

type shard struct {
	//joinlint:lockrank schemecache-shard 50
	mu       sync.Mutex
	idx      map[graph.Fingerprint]int
	slots    []slot
	free     []int
	hand     int
	bytes    int64
	capacity int64

	hits, misses, inserts, evictions int64
}

// Cache is the sharded scheme cache. The zero value is not usable; use
// New. All methods are safe for concurrent use.
type Cache struct {
	shards []shard
	shift  uint // fp.Hi >> shift selects the shard
}

// DefaultShards is the shard count New uses when given zero.
const DefaultShards = 8

// New returns a cache bounded at capacityBytes, split over the given
// number of shards (rounded up to a power of two; DefaultShards when
// zero or negative). A capacityBytes too small for a single entry
// degenerates to a cache that stores nothing, which is safe.
func New(capacityBytes int64, shards int) *Cache {
	if shards <= 0 {
		shards = DefaultShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	c := &Cache{shards: make([]shard, n)}
	c.shift = 64
	for n > 1 {
		c.shift--
		n >>= 1
	}
	per := capacityBytes / int64(len(c.shards))
	for i := range c.shards {
		c.shards[i].capacity = per
		c.shards[i].idx = make(map[graph.Fingerprint]int)
	}
	return c
}

func (c *Cache) shardFor(fp graph.Fingerprint) *shard {
	if c.shift >= 64 {
		return &c.shards[0]
	}
	return &c.shards[fp.Hi>>c.shift]
}

// Get returns a copy of the entry cached under fp, or ErrMiss. The
// returned scheme is a private copy: callers translate and mutate it
// freely without racing other readers of the same entry.
func (c *Cache) Get(fp graph.Fingerprint) (Entry, error) {
	s := c.shardFor(fp)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := faultinject.Fire(SiteLookup); err != nil {
		s.misses++
		return Entry{}, ErrMiss
	}
	i, ok := s.idx[fp]
	if !ok {
		s.misses++
		return Entry{}, ErrMiss
	}
	s.slots[i].ref = true
	s.hits++
	ent := s.slots[i].ent
	ent.Scheme = append(core.Scheme(nil), ent.Scheme...)
	if err := faultinject.Fire(SiteCorrupt); err != nil && len(ent.Scheme) > 0 {
		// Deterministic corruption: an always-out-of-range pebble, so
		// the engine's verify-on-hit must reject the entry.
		ent.Scheme[0].A = -1 - ent.Scheme[0].A
	}
	return ent, nil
}

// Insert stores ent under fp, evicting second-chance victims as needed,
// and returns how many entries were evicted. An entry larger than the
// shard capacity is rejected (returns 0, stores nothing); re-inserting
// an existing fingerprint replaces the entry in place. The cache keeps
// its own copy of the scheme.
func (c *Cache) Insert(fp graph.Fingerprint, ent Entry) int {
	ent.Scheme = append(core.Scheme(nil), ent.Scheme...)
	need := bytesFor(ent)
	s := c.shardFor(fp)
	s.mu.Lock()
	defer s.mu.Unlock()
	if i, ok := s.idx[fp]; ok {
		// Replacement is remove-then-insert (the removal is not an
		// eviction), so the size check and sweep below apply uniformly.
		s.bytes -= s.slots[i].cost
		delete(s.idx, fp)
		s.slots[i] = slot{}
		s.free = append(s.free, i)
	}
	if need > s.capacity {
		return 0
	}
	evicted := s.evictUntil(s.capacity - need)
	var i int
	if n := len(s.free); n > 0 {
		i = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		i = len(s.slots)
		s.slots = append(s.slots, slot{})
	}
	s.slots[i] = slot{fp: fp, ent: ent, cost: need, ref: true, live: true}
	s.idx[fp] = i
	s.bytes += need
	s.inserts++
	return evicted
}

// evictUntil runs the CLOCK hand until the shard's bytes fit within
// limit. Caller holds s.mu.
func (s *shard) evictUntil(limit int64) int {
	evicted := 0
	// Each live entry's reference bit grants one full-circle reprieve,
	// so the hand terminates within two sweeps of the ring.
	for s.bytes > limit && len(s.idx) > 0 {
		i := s.hand
		s.hand = (s.hand + 1) % len(s.slots)
		if !s.slots[i].live {
			continue
		}
		if s.slots[i].ref {
			s.slots[i].ref = false
			continue
		}
		s.bytes -= s.slots[i].cost
		delete(s.idx, s.slots[i].fp)
		s.slots[i] = slot{}
		s.free = append(s.free, i)
		s.evictions++
		evicted++
	}
	return evicted
}

// Stats aggregates counters and occupancy across all shards.
func (c *Cache) Stats() Stats {
	var st Stats
	st.Shards = len(c.shards)
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Inserts += s.inserts
		st.Evictions += s.evictions
		st.Entries += len(s.idx)
		st.Bytes += s.bytes
		st.Capacity += s.capacity
		s.mu.Unlock()
	}
	return st
}

// ToCanonical returns a copy of s with every pebble position mapped
// through perm (instance label → canonical label), the form entries are
// stored in.
func ToCanonical(s core.Scheme, perm []int32) core.Scheme {
	out := make(core.Scheme, len(s))
	for i, cfg := range s {
		out[i] = core.Config{A: int(perm[cfg.A]), B: int(perm[cfg.B])}
	}
	return out
}

// FromCanonical maps a canonical-labeled scheme back onto the request's
// labeling: perm is the request's instance→canonical mapping from
// graph.Canonicalize, and the translation applies its inverse. A pebble
// position outside the canonical label range — a corrupt entry — passes
// through untranslated, so the caller's verification rejects it instead
// of the translation panicking.
func FromCanonical(s core.Scheme, perm []int32) core.Scheme {
	inv := make([]int32, len(perm))
	for v, id := range perm {
		inv[id] = int32(v)
	}
	out := make(core.Scheme, len(s))
	for i, cfg := range s {
		out[i] = core.Config{A: throughInv(inv, cfg.A), B: throughInv(inv, cfg.B)}
	}
	return out
}

func throughInv(inv []int32, v int) int {
	if v < 0 || v >= len(inv) {
		return v
	}
	return int(inv[v])
}
