package schemecache

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"joinpebble/internal/core"
	"joinpebble/internal/faultinject"
	"joinpebble/internal/graph"
)

func fpOf(hi, lo uint64) graph.Fingerprint { return graph.Fingerprint{Hi: hi, Lo: lo} }

func entryOf(k int) Entry {
	s := make(core.Scheme, k)
	for i := range s {
		s[i] = core.Config{A: i, B: i + 1}
	}
	return Entry{Scheme: s, N: k + 1, M: k, Cost: s.Cost(), Solver: "exact"}
}

func TestGetMissThenHit(t *testing.T) {
	c := New(1<<20, 4)
	fp := fpOf(1, 2)
	if _, err := c.Get(fp); !errors.Is(err, ErrMiss) {
		t.Fatalf("empty cache Get = %v, want ErrMiss", err)
	}
	want := entryOf(5)
	c.Insert(fp, want)
	got, err := c.Get(fp)
	if err != nil {
		t.Fatalf("Get after Insert: %v", err)
	}
	if got.N != want.N || got.M != want.M || got.Cost != want.Cost || got.Solver != want.Solver {
		t.Fatalf("entry metadata mismatch: got %+v want %+v", got, want)
	}
	if len(got.Scheme) != len(want.Scheme) {
		t.Fatalf("scheme length %d, want %d", len(got.Scheme), len(want.Scheme))
	}
	for i := range got.Scheme {
		if got.Scheme[i] != want.Scheme[i] {
			t.Fatalf("config %d: %v != %v", i, got.Scheme[i], want.Scheme[i])
		}
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Inserts != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v, want 1 hit / 1 miss / 1 insert / 1 entry", st)
	}
}

func TestGetReturnsPrivateCopy(t *testing.T) {
	c := New(1<<20, 1)
	fp := fpOf(3, 4)
	c.Insert(fp, entryOf(4))
	a, _ := c.Get(fp)
	a.Scheme[0] = core.Config{A: 99, B: 99}
	b, _ := c.Get(fp)
	if b.Scheme[0] == (core.Config{A: 99, B: 99}) {
		t.Fatal("mutating a returned scheme leaked into the cache")
	}
}

func TestInsertCopiesCallerScheme(t *testing.T) {
	c := New(1<<20, 1)
	fp := fpOf(5, 6)
	ent := entryOf(4)
	c.Insert(fp, ent)
	ent.Scheme[0] = core.Config{A: 77, B: 77}
	got, _ := c.Get(fp)
	if got.Scheme[0] == (core.Config{A: 77, B: 77}) {
		t.Fatal("mutating the caller's scheme after Insert leaked into the cache")
	}
}

func TestReplaceInPlace(t *testing.T) {
	c := New(1<<20, 1)
	fp := fpOf(7, 8)
	c.Insert(fp, entryOf(3))
	repl := entryOf(9)
	repl.Solver = "approx-1.25"
	c.Insert(fp, repl)
	got, err := c.Get(fp)
	if err != nil {
		t.Fatalf("Get after replace: %v", err)
	}
	if got.Solver != "approx-1.25" || len(got.Scheme) != 9 {
		t.Fatalf("replacement not visible: %+v", got)
	}
	st := c.Stats()
	if st.Entries != 1 || st.Evictions != 0 {
		t.Fatalf("replace must not change entry count or evict: %+v", st)
	}
}

func TestOversizedEntryRejected(t *testing.T) {
	// Capacity of one shard is total/shards; a scheme bigger than that
	// must be rejected without disturbing existing entries.
	c := New(512, 1)
	fp := fpOf(9, 10)
	c.Insert(fp, entryOf(2))
	big := entryOf(1000)
	if ev := c.Insert(fpOf(11, 12), big); ev != 0 {
		t.Fatalf("oversized insert evicted %d entries", ev)
	}
	if _, err := c.Get(fpOf(11, 12)); !errors.Is(err, ErrMiss) {
		t.Fatal("oversized entry was stored")
	}
	if _, err := c.Get(fp); err != nil {
		t.Fatalf("small entry lost after oversized insert: %v", err)
	}
}

func TestClockEviction(t *testing.T) {
	// One shard sized for roughly four small entries. Insert four, keep
	// one hot via Get, then push new entries: the hot entry's reference
	// bit must save it from the first sweep while cold ones go.
	ent := entryOf(2)
	per := bytesFor(ent)
	c := New(per*4, 1)
	for i := 0; i < 4; i++ {
		c.Insert(fpOf(uint64(i), 0), ent)
	}
	if st := c.Stats(); st.Entries != 4 || st.Evictions != 0 {
		t.Fatalf("warmup stats %+v, want 4 entries, 0 evictions", st)
	}
	hot := fpOf(2, 0)
	if _, err := c.Get(hot); err != nil {
		t.Fatalf("hot get: %v", err)
	}
	// Two new inserts force two evictions; the hot entry survives.
	c.Insert(fpOf(10, 0), ent)
	c.Insert(fpOf(11, 0), ent)
	st := c.Stats()
	if st.Evictions != 2 || st.Entries != 4 {
		t.Fatalf("stats after pressure %+v, want 2 evictions / 4 entries", st)
	}
	if st.Bytes > st.Capacity {
		t.Fatalf("bytes %d exceed capacity %d", st.Bytes, st.Capacity)
	}
	if _, err := c.Get(hot); err != nil {
		t.Fatal("second-chance bit did not protect the recently used entry")
	}
}

func TestByteAccountingAcrossChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	c := New(8192, 2)
	for i := 0; i < 500; i++ {
		k := 1 + rng.Intn(30)
		c.Insert(fpOf(uint64(rng.Intn(40)), uint64(i)), entryOf(k))
		if rng.Intn(3) == 0 {
			c.Get(fpOf(uint64(rng.Intn(40)), uint64(rng.Intn(i+1))))
		}
		st := c.Stats()
		if st.Bytes > st.Capacity {
			t.Fatalf("iteration %d: bytes %d exceed capacity %d", i, st.Bytes, st.Capacity)
		}
	}
	// Recount from scratch: stats bytes must equal the sum of live
	// entries' charges.
	st := c.Stats()
	var sum int64
	for si := range c.shards {
		s := &c.shards[si]
		s.mu.Lock()
		for _, i := range s.idx {
			sum += s.slots[i].cost
		}
		s.mu.Unlock()
	}
	if sum != st.Bytes {
		t.Fatalf("byte accounting drifted: recount %d, stats %d", sum, st.Bytes)
	}
}

func TestShardSelectionSpreads(t *testing.T) {
	c := New(1<<20, 8)
	if len(c.shards) != 8 {
		t.Fatalf("shard count %d, want 8", len(c.shards))
	}
	// High bits select the shard: fingerprints differing only in low
	// bits land together, differing in high bits spread out.
	a := c.shardFor(fpOf(0, 1))
	b := c.shardFor(fpOf(0, 2))
	if a != b {
		t.Fatal("low-bit variation must not change the shard")
	}
	seen := map[*shard]bool{}
	for i := 0; i < 8; i++ {
		seen[c.shardFor(fpOf(uint64(i)<<61, 0))] = true
	}
	if len(seen) != 8 {
		t.Fatalf("high-bit variation hit %d shards, want 8", len(seen))
	}
}

func TestConcurrentMixedLoad(t *testing.T) {
	c := New(1<<16, 8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 2000; i++ {
				fp := fpOf(rng.Uint64(), rng.Uint64())
				if rng.Intn(2) == 0 {
					c.Insert(fp, entryOf(1+rng.Intn(8)))
				} else {
					c.Get(fp)
				}
				if i%500 == 0 {
					c.Stats()
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Bytes > st.Capacity {
		t.Fatalf("bytes %d exceed capacity %d after concurrent churn", st.Bytes, st.Capacity)
	}
}

func TestLookupFaultForcesMiss(t *testing.T) {
	defer faultinject.Reset()
	c := New(1<<20, 1)
	fp := fpOf(20, 0)
	c.Insert(fp, entryOf(3))
	faultinject.Arm(SiteLookup, faultinject.Fault{Err: errors.New("injected")})
	if _, err := c.Get(fp); !errors.Is(err, ErrMiss) {
		t.Fatalf("armed lookup fault: Get = %v, want ErrMiss", err)
	}
	faultinject.Reset()
	if _, err := c.Get(fp); err != nil {
		t.Fatalf("disarmed: Get = %v, want hit", err)
	}
}

func TestCorruptFaultInvalidatesScheme(t *testing.T) {
	defer faultinject.Reset()
	c := New(1<<20, 1)
	fp := fpOf(21, 0)
	c.Insert(fp, entryOf(3))
	faultinject.Arm(SiteCorrupt, faultinject.Fault{Err: errors.New("injected")})
	got, err := c.Get(fp)
	if err != nil {
		t.Fatalf("corrupt fault must still return a hit: %v", err)
	}
	if got.Scheme[0].A >= 0 {
		t.Fatalf("corrupt copy has in-range pebble %v; verification could accept it", got.Scheme[0])
	}
	// The stored entry is untouched.
	faultinject.Reset()
	clean, _ := c.Get(fp)
	if clean.Scheme[0].A < 0 {
		t.Fatal("corruption leaked into the stored entry")
	}
}

// TestTranslationRoundTrip: ToCanonical then FromCanonical under the
// same mapping is the identity, and a canonical-labeled scheme solved
// on one labeling verifies on a permuted labeling after translation.
func TestTranslationRoundTrip(t *testing.T) {
	g := graph.PathBipartite(6).Graph()
	perm, _ := graph.Canonicalize(g, nil)
	s := core.Scheme{{A: 0, B: 1}, {A: 2, B: 1}, {A: 2, B: 3}}
	round := FromCanonical(ToCanonical(s, perm), perm)
	for i := range s {
		if round[i] != s[i] {
			t.Fatalf("roundtrip config %d: %v != %v", i, round[i], s[i])
		}
	}
}

func TestStatsCapacityAndShards(t *testing.T) {
	c := New(1<<20, 5) // rounds up to 8
	st := c.Stats()
	if st.Shards != 8 {
		t.Fatalf("shards %d, want 8 (rounded up)", st.Shards)
	}
	if st.Capacity != (1<<20)/8*8 {
		t.Fatalf("capacity %d, want %d", st.Capacity, (1<<20)/8*8)
	}
}

func TestManyFingerprintsStress(t *testing.T) {
	ent := entryOf(2)
	c := New(bytesFor(ent)*64, 4)
	for i := 0; i < 1000; i++ {
		c.Insert(fpOf(uint64(i)*0x9E3779B97F4A7C15, uint64(i)), ent)
	}
	st := c.Stats()
	if st.Entries == 0 || st.Entries > 64 {
		t.Fatalf("entries %d outside (0, 64]", st.Entries)
	}
	if st.Bytes > st.Capacity {
		t.Fatalf("bytes %d exceed capacity %d", st.Bytes, st.Capacity)
	}
	if st.Evictions == 0 {
		t.Fatal("stress load must evict")
	}
	// Whatever survived must still be retrievable and intact.
	found := 0
	for i := 0; i < 1000; i++ {
		if got, err := c.Get(fpOf(uint64(i)*0x9E3779B97F4A7C15, uint64(i))); err == nil {
			found++
			if len(got.Scheme) != 2 {
				t.Fatalf("surviving entry %d corrupted: %+v", i, got)
			}
		}
	}
	if found != st.Entries {
		t.Fatalf("found %d entries, stats say %d", found, st.Entries)
	}
}

func ExampleCache() {
	cache := New(1<<20, 4)
	fp := graph.Fingerprint{Hi: 42, Lo: 7}
	cache.Insert(fp, Entry{Scheme: core.Scheme{{A: 0, B: 1}}, N: 2, M: 1, Cost: 2, Solver: "exact"})
	ent, err := cache.Get(fp)
	fmt.Println(err, ent.Solver, ent.Cost)
	// Output: <nil> exact 2
}
