package sets

import "joinpebble/internal/graph"

// ContainmentInstance is an instance of the set-containment join problem:
// pairs (r, s) with r ∈ R, s ∈ S join iff r ⊆ s.
type ContainmentInstance struct {
	R []Set
	S []Set
}

// RealizeBipartite implements Lemma 3.3's universality construction:
// given any bipartite graph G = (R, S, E), it builds a set-containment
// instance whose join graph is exactly G. Tuple r_i is the singleton {i}
// and tuple s_j is { i : (r_i, s_j) ∈ E }, so r_i ⊆ s_j iff the edge
// exists. The realization is exact: r_i is never empty (it is always the
// singleton {i}), so even isolated vertices round-trip correctly.
func RealizeBipartite(b *graph.Bipartite) *ContainmentInstance {
	inst := &ContainmentInstance{
		R: make([]Set, b.NLeft()),
		S: make([]Set, b.NRight()),
	}
	for i := 0; i < b.NLeft(); i++ {
		inst.R[i] = New(uint32(i))
	}
	adj := make([][]uint32, b.NRight())
	for e := 0; e < b.M(); e++ {
		l, r := b.EdgeAt(e)
		adj[r] = append(adj[r], uint32(l))
	}
	for j := 0; j < b.NRight(); j++ {
		inst.S[j] = New(adj[j]...)
	}
	return inst
}

// JoinGraph evaluates the containment predicate over all pairs and
// returns the resulting join graph (§2's model). Quadratic by design: it
// is the reference the join algorithms and the universality round-trip
// tests compare against.
func (inst *ContainmentInstance) JoinGraph() *graph.Bipartite {
	b := graph.NewBipartite(len(inst.R), len(inst.S))
	for i, r := range inst.R {
		for j, s := range inst.S {
			if r.SubsetOf(s) {
				b.AddEdge(i, j)
			}
		}
	}
	return b
}
