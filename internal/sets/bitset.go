package sets

import "joinpebble/internal/bitset"

// Bitset is the dense uint64-word bitset primitive. The implementation
// lives in internal/bitset — a leaf package with no joinpebble imports —
// so that internal/graph's claw-scan kernel can use it without creating
// an import cycle through this package (sets depends on graph for the
// Lemma 3.3 universality construction). The alias keeps the primitive
// available alongside the sorted-set type for set-family call sites.
type Bitset = bitset.Bitset

// NewBitset returns a zeroed Bitset able to hold bits 0..n-1.
func NewBitset(n int) Bitset { return bitset.New(n) }
