package sets

import "testing"

// FuzzParse checks the set-literal parser never panics and round-trips
// what it accepts.
func FuzzParse(f *testing.F) {
	f.Add("{}")
	f.Add("{1}")
	f.Add("{3, 1, 4, 1, 5}")
	f.Add("{4294967295}")
	f.Add("1,2")
	f.Add("{x}")
	f.Add("{")
	f.Fuzz(func(t *testing.T, input string) {
		s, err := Parse(input)
		if err != nil {
			return
		}
		back, err := Parse(s.String())
		if err != nil {
			t.Fatalf("round trip rejected %q (from %q): %v", s.String(), input, err)
		}
		if !back.Equal(s) {
			t.Fatalf("round trip changed set: %v vs %v", back, s)
		}
		// Invariant: elements strictly increasing.
		es := s.Elems()
		for i := 1; i < len(es); i++ {
			if es[i-1] >= es[i] {
				t.Fatalf("parsed set not strictly sorted: %v", es)
			}
		}
	})
}
