// Package sets implements the set-valued attribute domain of §3.2:
// set values, the subset predicate behind set-containment joins, compact
// signatures for prefiltering, an inverted index, and the universality
// construction of Lemma 3.3 showing every bipartite graph is the join
// graph of some set-containment join.
package sets

import (
	"fmt"
	"sort"
	"strings"
)

// Set is a set of uint32 elements stored as a sorted, deduplicated slice.
// The zero value is the empty set.
type Set struct {
	elems []uint32
}

// New builds a set from the given elements (duplicates collapse).
func New(elems ...uint32) Set {
	if len(elems) == 0 {
		return Set{}
	}
	s := make([]uint32, len(elems))
	copy(s, elems)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := s[:1]
	for _, e := range s[1:] {
		if e != out[len(out)-1] {
			out = append(out, e)
		}
	}
	return Set{elems: out}
}

// FromSorted wraps an already sorted, deduplicated slice without copying.
// It panics if the input violates the invariant; use New for untrusted
// input.
func FromSorted(elems []uint32) Set {
	for i := 1; i < len(elems); i++ {
		if elems[i-1] >= elems[i] {
			panic(fmt.Sprintf("sets: FromSorted input not strictly increasing at %d", i))
		}
	}
	return Set{elems: elems}
}

// Len returns the cardinality.
func (s Set) Len() int { return len(s.elems) }

// Empty reports whether s has no elements.
func (s Set) Empty() bool { return len(s.elems) == 0 }

// Elems returns the elements in ascending order. The slice is owned by
// the set and must not be mutated.
func (s Set) Elems() []uint32 { return s.elems }

// Contains reports whether e is an element of s.
func (s Set) Contains(e uint32) bool {
	i := sort.Search(len(s.elems), func(i int) bool { return s.elems[i] >= e })
	return i < len(s.elems) && s.elems[i] == e
}

// SubsetOf reports whether every element of s is in t — the join
// predicate r.A ⊆ s.B of §3.2. Linear merge over the two sorted slices.
func (s Set) SubsetOf(t Set) bool {
	if len(s.elems) > len(t.elems) {
		return false
	}
	j := 0
	for _, e := range s.elems {
		for j < len(t.elems) && t.elems[j] < e {
			j++
		}
		if j == len(t.elems) || t.elems[j] != e {
			return false
		}
		j++
	}
	return true
}

// Equal reports set equality.
func (s Set) Equal(t Set) bool {
	if len(s.elems) != len(t.elems) {
		return false
	}
	for i := range s.elems {
		if s.elems[i] != t.elems[i] {
			return false
		}
	}
	return true
}

// Union returns s ∪ t.
func (s Set) Union(t Set) Set {
	out := make([]uint32, 0, len(s.elems)+len(t.elems))
	i, j := 0, 0
	for i < len(s.elems) && j < len(t.elems) {
		switch {
		case s.elems[i] < t.elems[j]:
			out = append(out, s.elems[i])
			i++
		case s.elems[i] > t.elems[j]:
			out = append(out, t.elems[j])
			j++
		default:
			out = append(out, s.elems[i])
			i++
			j++
		}
	}
	out = append(out, s.elems[i:]...)
	out = append(out, t.elems[j:]...)
	return Set{elems: out}
}

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set {
	var out []uint32
	i, j := 0, 0
	for i < len(s.elems) && j < len(t.elems) {
		switch {
		case s.elems[i] < t.elems[j]:
			i++
		case s.elems[i] > t.elems[j]:
			j++
		default:
			out = append(out, s.elems[i])
			i++
			j++
		}
	}
	return Set{elems: out}
}

// String renders "{1,2,3}".
func (s Set) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, e := range s.elems {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d", e)
	}
	sb.WriteByte('}')
	return sb.String()
}

// Parse reads the String format (whitespace tolerated, empty set "{}").
func Parse(text string) (Set, error) {
	text = strings.TrimSpace(text)
	if len(text) < 2 || text[0] != '{' || text[len(text)-1] != '}' {
		return Set{}, fmt.Errorf("sets: %q is not a braced set literal", text)
	}
	inner := strings.TrimSpace(text[1 : len(text)-1])
	if inner == "" {
		return Set{}, nil
	}
	parts := strings.Split(inner, ",")
	elems := make([]uint32, 0, len(parts))
	for _, p := range parts {
		var e uint32
		if _, err := fmt.Sscanf(strings.TrimSpace(p), "%d", &e); err != nil {
			return Set{}, fmt.Errorf("sets: bad element %q: %w", p, err)
		}
		elems = append(elems, e)
	}
	return New(elems...), nil
}

// Signature is a 64-bit superimposed signature: bit hash(e)%64 is set for
// every element. If sig(r) has a bit outside sig(s), r cannot be a subset
// of s — the standard prefilter in signature-based set joins
// (Helmer & Moerkotte, VLDB '97, cited as [5] in the paper).
type Signature uint64

// SignatureOf computes the signature of s.
func SignatureOf(s Set) Signature {
	var sig Signature
	for _, e := range s.elems {
		sig |= 1 << (hash32(e) % 64)
	}
	return sig
}

// MaySubset reports whether the signatures permit r ⊆ s. False means
// definitely not a subset; true means the sets must be compared.
func (r Signature) MaySubset(s Signature) bool { return r&^s == 0 }

// hash32 is a Fibonacci-style multiplicative hash.
func hash32(x uint32) uint32 { return x * 2654435761 }

// InvertedIndex maps elements to the ids of the indexed sets containing
// them. Used by the containment join: the sets containing all elements of
// a probe set r are the intersection of r's posting lists.
type InvertedIndex struct {
	postings map[uint32][]int
	size     int
}

// BuildInvertedIndex indexes the given sets by element; the i-th set gets
// id i.
func BuildInvertedIndex(setsToIndex []Set) *InvertedIndex {
	idx := &InvertedIndex{postings: make(map[uint32][]int), size: len(setsToIndex)}
	for id, s := range setsToIndex {
		for _, e := range s.Elems() {
			idx.postings[e] = append(idx.postings[e], id)
		}
	}
	return idx
}

// Postings returns the ids of indexed sets containing e, in ascending id
// order. The slice is owned by the index.
func (idx *InvertedIndex) Postings(e uint32) []int { return idx.postings[e] }

// Size returns the number of indexed sets.
func (idx *InvertedIndex) Size() int { return idx.size }

// Supersets returns the ids of indexed sets that are supersets of probe,
// in ascending id order, by intersecting posting lists. An empty probe
// matches every indexed set.
func (idx *InvertedIndex) Supersets(probe Set) []int {
	if probe.Empty() {
		all := make([]int, idx.size)
		for i := range all {
			all[i] = i
		}
		return all
	}
	elems := probe.Elems()
	// Start from the shortest posting list to keep intersections small.
	start := 0
	for i, e := range elems {
		if len(idx.postings[e]) < len(idx.postings[elems[start]]) {
			start = i
		}
	}
	cur := idx.postings[elems[start]]
	result := make([]int, len(cur))
	copy(result, cur)
	for i, e := range elems {
		if i == start || len(result) == 0 {
			continue
		}
		result = intersectSorted(result, idx.postings[e])
	}
	return result
}

func intersectSorted(a, b []int) []int {
	out := a[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
