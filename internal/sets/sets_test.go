package sets

import (
	"math/rand"
	"testing"
	"testing/quick"

	"joinpebble/internal/graph"
)

func TestNewDedupSort(t *testing.T) {
	s := New(3, 1, 2, 3, 1)
	if s.Len() != 3 {
		t.Fatalf("len=%d", s.Len())
	}
	want := []uint32{1, 2, 3}
	for i, e := range s.Elems() {
		if e != want[i] {
			t.Fatalf("elems=%v", s.Elems())
		}
	}
}

func TestEmptySet(t *testing.T) {
	var s Set
	if !s.Empty() || s.Len() != 0 || s.Contains(0) {
		t.Fatal("zero value should be empty")
	}
	if !s.SubsetOf(New(1, 2)) || !s.SubsetOf(Set{}) {
		t.Fatal("empty set is a subset of everything")
	}
}

func TestFromSortedPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted input must panic")
		}
	}()
	FromSorted([]uint32{2, 1})
}

func TestContains(t *testing.T) {
	s := New(2, 4, 6, 8)
	for _, e := range []uint32{2, 4, 6, 8} {
		if !s.Contains(e) {
			t.Fatalf("missing %d", e)
		}
	}
	for _, e := range []uint32{0, 1, 3, 5, 7, 9} {
		if s.Contains(e) {
			t.Fatalf("spurious %d", e)
		}
	}
}

func TestSubsetOf(t *testing.T) {
	cases := []struct {
		a, b Set
		want bool
	}{
		{New(1, 2), New(1, 2, 3), true},
		{New(1, 2, 3), New(1, 2), false},
		{New(1, 4), New(1, 2, 3), false},
		{New(1, 2), New(1, 2), true},
		{New(), New(), true},
		{New(5), New(), false},
	}
	for _, c := range cases {
		if got := c.a.SubsetOf(c.b); got != c.want {
			t.Errorf("%v ⊆ %v = %v want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSubsetOfAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	err := quick.Check(func(aBits, bBits uint16) bool {
		var ae, be []uint32
		for i := uint32(0); i < 16; i++ {
			if aBits&(1<<i) != 0 {
				ae = append(ae, i)
			}
			if bBits&(1<<i) != 0 {
				be = append(be, i)
			}
		}
		a, b := New(ae...), New(be...)
		return a.SubsetOf(b) == (aBits&^bBits == 0)
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

func TestUnionIntersect(t *testing.T) {
	a, b := New(1, 3, 5), New(3, 4, 5, 6)
	if u := a.Union(b); !u.Equal(New(1, 3, 4, 5, 6)) {
		t.Fatalf("union=%v", u)
	}
	if x := a.Intersect(b); !x.Equal(New(3, 5)) {
		t.Fatalf("intersect=%v", x)
	}
}

func TestUnionIntersectLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := &quick.Config{MaxCount: 100, Rand: rng}
	err := quick.Check(func(aBits, bBits uint16) bool {
		a, b := fromBits(aBits), fromBits(bBits)
		u, x := a.Union(b), a.Intersect(b)
		// |A∪B| + |A∩B| = |A| + |B|; A∩B ⊆ A ⊆ A∪B.
		return u.Len()+x.Len() == a.Len()+b.Len() &&
			x.SubsetOf(a) && a.SubsetOf(u) &&
			u.Equal(b.Union(a)) && x.Equal(b.Intersect(a))
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

func fromBits(bits uint16) Set {
	var es []uint32
	for i := uint32(0); i < 16; i++ {
		if bits&(1<<i) != 0 {
			es = append(es, i)
		}
	}
	return New(es...)
}

func TestStringParseRoundTrip(t *testing.T) {
	for _, s := range []Set{New(), New(7), New(1, 2, 9)} {
		back, err := Parse(s.String())
		if err != nil {
			t.Fatal(err)
		}
		if !back.Equal(s) {
			t.Fatalf("round trip %v -> %v", s, back)
		}
	}
	if _, err := Parse("1,2"); err == nil {
		t.Fatal("missing braces must fail")
	}
	if _, err := Parse("{1,x}"); err == nil {
		t.Fatal("bad element must fail")
	}
}

func TestSignatureNoFalseNegatives(t *testing.T) {
	// If r ⊆ s then the signatures must allow it — the filter may only
	// produce false positives.
	rng := rand.New(rand.NewSource(3))
	cfg := &quick.Config{MaxCount: 300, Rand: rng}
	err := quick.Check(func(aBits, extra uint16) bool {
		a := fromBits(aBits)
		s := a.Union(fromBits(extra)) // guaranteed superset
		return SignatureOf(a).MaySubset(SignatureOf(s))
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSignatureFiltersSome(t *testing.T) {
	// Sanity: disjoint sets over distinct hash buckets must be filtered.
	a := New(1)
	b := New(2)
	if SignatureOf(a).MaySubset(SignatureOf(b)) && SignatureOf(b).MaySubset(SignatureOf(a)) {
		// Both directions passing would mean hash collision for 1 and 2 —
		// check explicitly rather than assume.
		if hash32(1)%64 != hash32(2)%64 {
			t.Fatal("signature filter let disjoint singletons through both ways")
		}
	}
}

func TestInvertedIndexSupersets(t *testing.T) {
	data := []Set{
		New(1, 2, 3),
		New(2, 3),
		New(3),
		New(1, 3, 5),
	}
	idx := BuildInvertedIndex(data)
	if idx.Size() != 4 {
		t.Fatal("size")
	}
	got := idx.Supersets(New(2, 3))
	want := []int{0, 1}
	if len(got) != len(want) || got[0] != 0 || got[1] != 1 {
		t.Fatalf("supersets of {2,3} = %v want %v", got, want)
	}
	if got := idx.Supersets(New(9)); len(got) != 0 {
		t.Fatalf("supersets of {9} = %v", got)
	}
	if got := idx.Supersets(Set{}); len(got) != 4 {
		t.Fatalf("empty probe must match all, got %v", got)
	}
}

func TestInvertedIndexAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		data := make([]Set, 20)
		for i := range data {
			data[i] = randomSet(rng, 8, 12)
		}
		idx := BuildInvertedIndex(data)
		probe := randomSet(rng, 4, 12)
		got := idx.Supersets(probe)
		var want []int
		for i, s := range data {
			if probe.SubsetOf(s) {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %v want %v", trial, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: got %v want %v", trial, got, want)
			}
		}
	}
}

func randomSet(rng *rand.Rand, maxLen, universe int) Set {
	n := rng.Intn(maxLen + 1)
	es := make([]uint32, n)
	for i := range es {
		es[i] = uint32(rng.Intn(universe))
	}
	return New(es...)
}

func TestRealizeBipartiteRoundTrip(t *testing.T) {
	// Lemma 3.3: instance's join graph must equal the input graph exactly
	// (no isolated left vertices in the generator's output by
	// construction of connectivity).
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		nl, nr := 2+rng.Intn(5), 2+rng.Intn(5)
		m := nl + nr - 1 + rng.Intn(nl*nr-(nl+nr-1)+1)
		b := graph.RandomConnectedBipartite(rng, nl, nr, m)
		inst := RealizeBipartite(b)
		back := inst.JoinGraph()
		if !back.Equal(b) {
			t.Fatalf("trial %d: round trip changed the graph:\n in  %v\n out %v", trial, b, back)
		}
	}
}

func TestRealizeBipartiteIsolatedVertices(t *testing.T) {
	// r_i is always the singleton {i}, so isolated vertices on either
	// side round-trip exactly rather than becoming universal empty sets.
	b := graph.NewBipartite(2, 2)
	b.AddEdge(0, 0) // left 1 and right 1 isolated
	inst := RealizeBipartite(b)
	back := inst.JoinGraph()
	if !back.Equal(b) {
		t.Fatalf("round trip with isolated vertices: got %v want %v", back, b)
	}
}

func TestRealizeSpiderFamily(t *testing.T) {
	// The Theorem 3.3 worst-case family is realizable as a set
	// containment join (the paper's §3.2 closing remark).
	for n := 1; n <= 6; n++ {
		b := spider(n)
		inst := RealizeBipartite(b)
		if !inst.JoinGraph().Equal(b) {
			t.Fatalf("n=%d: spider not realized", n)
		}
	}
}

// spider mirrors family.Spider, inlined to keep this package's test
// dependencies to the graph substrate only.
func spider(n int) *graph.Bipartite {
	b := graph.NewBipartite(n+1, n)
	for i := 0; i < n; i++ {
		b.AddEdge(0, i)
		b.AddEdge(1+i, i)
	}
	return b
}
