package reduction

import (
	"fmt"

	"joinpebble/internal/core"
	"joinpebble/internal/graph"
	"joinpebble/internal/tsp"
)

// TSPToPebble is the Theorem 4.4 L-reduction from TSP-3(1,2) to PEBBLE:
// f(G) is the incidence graph B = (V, E, incidence), a bipartite graph
// whose pebbling problem is the TSP on L(B) — and L(B) is G with every
// degree-i vertex blown into an i-clique (one clique vertex per incident
// edge), preserving tour structure.
type TSPToPebble struct {
	// G is the input TSP-3(1,2) good-edge graph.
	G *graph.Graph
	// B is the bipartite incidence graph: left = vertices of G, right =
	// edges of G.
	B *graph.Bipartite
}

// NewTSPToPebble builds f(G). It fails if G has a vertex of degree > 3.
func NewTSPToPebble(g *graph.Graph) (*TSPToPebble, error) {
	if d := g.MaxDegree(); d > 3 {
		return nil, fmt.Errorf("reduction: max degree %d > 3", d)
	}
	return &TSPToPebble{G: g, B: graph.IncidenceGraph(g)}, nil
}

// incidenceEdgeIndex returns the index of B's edge (vertex v, G-edge ei)
// within B's underlying graph. IncidenceGraph inserts, for each G edge i,
// the incidence of its U endpoint then its V endpoint, so the index is
// 2i or 2i+1.
func (r *TSPToPebble) incidenceEdgeIndex(v, ei int) int {
	e := r.G.EdgeAt(ei)
	switch v {
	case e.U:
		return 2 * ei
	case e.V:
		return 2*ei + 1
	}
	panic("reduction: vertex not an endpoint of edge")
}

// ForwardScheme lifts a tour of G to a pebbling scheme for B with the
// same number of jumps: visiting vertex v covers all of v's incidences
// (a clique in L(B), so free moves), finishing with the incidence of the
// edge leading to the tour's next vertex when that step is good. This
// witnesses π̂(B) <= 2m(G) + J(t) + 1.
func (r *TSPToPebble) ForwardScheme(t tsp.Tour) (core.Scheme, error) {
	gin := tsp.NewInstance(r.G)
	if err := gin.Validate(t); err != nil {
		return nil, err
	}
	bg := r.B.Graph()
	order := make([]int, 0, bg.M())
	for i, v := range t {
		// The incidence to end on: the edge to the next tour vertex, if
		// it is a good step.
		endEdge := -1
		if i < len(t)-1 {
			if ei, ok := r.G.EdgeIndex(v, t[i+1]); ok {
				endEdge = ei
			}
		}
		// And the one to start from: the edge from the previous vertex.
		startEdge := -1
		if i > 0 {
			if ei, ok := r.G.EdgeIndex(t[i-1], v); ok {
				startEdge = ei
			}
		}
		var mid []int
		for _, ei := range r.G.IncidentEdges(v) {
			if ei != endEdge && ei != startEdge {
				mid = append(mid, ei)
			}
		}
		seq := make([]int, 0, 3)
		if startEdge >= 0 {
			seq = append(seq, startEdge)
		}
		seq = append(seq, mid...)
		if endEdge >= 0 && endEdge != startEdge {
			seq = append(seq, endEdge)
		}
		for _, ei := range seq {
			order = append(order, r.incidenceEdgeIndex(v, ei))
		}
	}
	return core.SchemeFromEdgeOrder(bg, order)
}

// BackTour is the g of the L-reduction: a pebbling scheme for B induces
// an edge order (a tour of L(B)); projecting incidences (v, e) to v by
// first visit gives a tour of G.
func (r *TSPToPebble) BackTour(s core.Scheme) (tsp.Tour, error) {
	bg := r.B.Graph()
	order, err := core.EdgeOrderFromScheme(bg, s)
	if err != nil {
		return nil, err
	}
	seen := make([]bool, r.G.N())
	var out tsp.Tour
	for _, bi := range order {
		// B edge bi = incidence (vertex, G-edge): the left endpoint is
		// the G vertex.
		l, _ := r.B.EdgeAt(bi)
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	if len(out) != r.G.N() {
		return nil, fmt.Errorf("reduction: projection covered %d of %d vertices (isolated vertex in G?)", len(out), r.G.N())
	}
	return out, nil
}

// PebbleCostFromTourCost converts an optimal G tour cost c = n−1+J into
// the corresponding pebbling cost of B: every incidence must be visited
// (2m configurations), jumps carry over, and the scheme pays one startup:
// π̂(B) = 2m + J + 1 when the reduction is tight. The E12 experiment
// verifies this equality against the exact solvers.
func (r *TSPToPebble) PebbleCostFromTourCost(tourCost int) int {
	n := r.G.N()
	j := tourCost - (n - 1)
	return 2*r.G.M() + j + 1
}
