// Package reduction implements the Section 4 hardness machinery:
// the diamond gadget of Figure 2, the TSP-4(1,2) → TSP-3(1,2) L-reduction
// of Theorem 4.3, the TSP-3(1,2) → PEBBLE incidence-graph L-reduction of
// Theorem 4.4, and checkers that verify the L-reduction inequalities
// (Definition 4.2) empirically against the exact solvers.
package reduction

import "joinpebble/internal/graph"

// GadgetSize is the number of vertices in the diamond gadget.
const GadgetSize = 10

// Gadget vertex roles. Corners receive one external edge each in the
// Theorem 4.3 construction; rim and hub vertices are internal.
const (
	CornerA = 0
	CornerB = 1
	CornerC = 2
	CornerD = 3
	rimX    = 4
	rimY    = 5
	rimZ    = 6
	rimW    = 7
	hubE    = 8
	hubF    = 9
)

// Corners lists the gadget's corner vertices.
var Corners = [4]int{CornerA, CornerB, CornerC, CornerD}

// NewGadget returns the diamond gadget standing in for Figure 2: an
// 8-cycle alternating corners and rim vertices, with a two-vertex hub
// attached to the rim:
//
//	    a
//	  w   x
//	d   |   b      cycle a-x-b-y-c-z-d-w-a
//	  z   y        hub: e-x, e-y, f-z, f-w, e-f
//	    c
//
// The exact Figure 2 drawing is not recoverable from the paper text, so
// this gadget was found by search and verified exhaustively (see the
// package tests) to satisfy the properties Theorem 4.3 uses:
//
//   - corners have internal degree 2 (so one external edge keeps the
//     TSP-3(1,2) degree bound) and all other vertices degree 3;
//   - a Hamiltonian path of the gadget exists between every pair of
//     corners;
//   - no Hamiltonian path ends at a rim vertex.
//
// One documented deviation from the paper's stated gadget: Hamiltonian
// paths may end at the two hub vertices (paired with a corner). A tour
// has only two ends, so this slack is O(1) per tour; the L-reduction
// inequalities of Definition 4.2 are verified empirically in the E11
// experiment rather than inherited from [10].
func NewGadget() *graph.Graph {
	g := graph.New(GadgetSize)
	cycle := []int{CornerA, rimX, CornerB, rimY, CornerC, rimZ, CornerD, rimW}
	for i := range cycle {
		g.AddEdge(cycle[i], cycle[(i+1)%len(cycle)])
	}
	g.AddEdge(hubE, rimX)
	g.AddEdge(hubE, rimY)
	g.AddEdge(hubF, rimZ)
	g.AddEdge(hubF, rimW)
	g.AddEdge(hubE, hubF)
	return g
}

// gadgetCornerPaths holds one Hamiltonian path of the gadget per corner
// pair, computed once.
var gadgetCornerPaths = buildCornerPaths()

func buildCornerPaths() map[[2]int][]int {
	g := NewGadget()
	out := make(map[[2]int][]int, 12)
	for _, from := range Corners {
		for _, to := range Corners {
			if from == to {
				continue
			}
			path, ok := graph.HamiltonianPathBetween(g, from, to)
			if !ok {
				panic("reduction: gadget lost a corner-pair Hamiltonian path")
			}
			out[[2]int{from, to}] = path
		}
	}
	return out
}

// CornerPath returns a Hamiltonian path of the gadget from one corner to
// another (distinct) corner.
func CornerPath(from, to int) []int {
	p, ok := gadgetCornerPaths[[2]int{from, to}]
	if !ok {
		panic("reduction: CornerPath needs two distinct corners")
	}
	return p
}
