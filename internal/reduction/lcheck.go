package reduction

import (
	"fmt"

	"joinpebble/internal/core"
	"joinpebble/internal/graph"
	"joinpebble/internal/tsp"
)

// LCheck is the outcome of verifying the Definition 4.2 L-reduction
// properties on one instance pair.
type LCheck struct {
	// OptA and OptB are the optimal costs of the source instance and its
	// image.
	OptA, OptB int
	// Alpha is the observed ratio OPT(f(x)) / OPT(x) (property 1 demands
	// it stay below a constant α).
	Alpha float64
	// MaxBetaViolation is the largest observed
	// (cost(g(s)) − OPT(x)) − β·(cost(s) − OPT(f(x))) over the sampled
	// feasible solutions s, for β = 1. <= 0 means property 2 held with
	// β = 1 on every sample.
	MaxBetaViolation int
	// Samples is the number of feasible solutions tested.
	Samples int
}

// CheckDegree4To3 verifies both L-reduction properties for one
// TSP-4(1,2) instance: exact optima on both sides, the forward witness,
// and property 2 over the provided H tours (plus the optimal H tour).
func CheckDegree4To3(r *Degree4To3, hTours []tsp.Tour) (*LCheck, error) {
	gin, hin := r.Instances()
	_, optG := tsp.Solve(gin)
	optTourG, _ := tsp.Solve(gin)
	_, optH := tsp.Solve(hin)

	// Property 1 witness: lifting the optimal G tour must cost at least
	// OPT(H) (by optimality) and bounds it from above.
	lifted, err := r.ForwardTour(optTourG)
	if err != nil {
		return nil, err
	}
	if c := hin.Cost(lifted); c < optH {
		return nil, fmt.Errorf("reduction: lifted tour cost %d below OPT(H)=%d — solver bug", c, optH)
	}

	check := &LCheck{OptA: optG, OptB: optH}
	if optG > 0 {
		check.Alpha = float64(optH) / float64(optG)
	}

	optTourH, _ := tsp.Solve(hin)
	tours := append([]tsp.Tour{optTourH}, hTours...)
	for _, t := range tours {
		back, err := r.BackTour(t)
		if err != nil {
			return nil, err
		}
		lhs := gin.Cost(back) - optG
		rhs := hin.Cost(t) - optH
		if v := lhs - rhs; v > check.MaxBetaViolation {
			check.MaxBetaViolation = v
		}
		check.Samples++
	}
	return check, nil
}

// CheckIncidence verifies the Theorem 4.4 reduction on one TSP-3(1,2)
// instance: both optima are computed exactly, the forward scheme realizes
// π̂(B) = 2m + J* + 1, and the back-mapped tours (from the optimal scheme
// plus the given extra schemes) satisfy property 2 with β = 1.
func CheckIncidence(r *TSPToPebble, extraSchemes []core.Scheme) (*LCheck, error) {
	gin := tsp.NewInstance(r.G)
	optTourG, optG := tsp.Solve(gin)
	bg := r.B.Graph()

	optB, err := solverOptimalCost(bg)
	if err != nil {
		return nil, err
	}
	// Forward witness: the lifted scheme must be valid and match the
	// predicted cost exactly when it is optimal.
	lifted, err := r.ForwardScheme(optTourG)
	if err != nil {
		return nil, err
	}
	liftedCost, err := core.Verify(bg, lifted)
	if err != nil {
		return nil, err
	}
	if want := r.PebbleCostFromTourCost(optG); liftedCost != want {
		return nil, fmt.Errorf("reduction: lifted scheme costs %d, predicted %d", liftedCost, want)
	}
	if liftedCost < optB {
		return nil, fmt.Errorf("reduction: lifted scheme cost %d below optimum %d — solver bug", liftedCost, optB)
	}

	check := &LCheck{OptA: optG, OptB: optB}
	if optG > 0 {
		check.Alpha = float64(optB) / float64(optG)
	}
	schemes := append([]core.Scheme{lifted}, extraSchemes...)
	for _, s := range schemes {
		cost, err := core.Verify(bg, s)
		if err != nil {
			return nil, err
		}
		back, err := r.BackTour(s)
		if err != nil {
			return nil, err
		}
		lhs := gin.Cost(back) - optG
		rhs := cost - optB
		if v := lhs - rhs; v > check.MaxBetaViolation {
			check.MaxBetaViolation = v
		}
		check.Samples++
	}
	return check, nil
}

// solverOptimalCost computes π̂ exactly via the line-graph TSP, kept
// local to avoid importing the solver package (which would be a cycle if
// solver ever grows reduction-aware heuristics).
func solverOptimalCost(g *graph.Graph) (int, error) {
	total := 0
	for _, comp := range g.Components() {
		if len(comp) < 2 {
			continue
		}
		cg, _ := g.InducedSubgraph(comp)
		_, cost, err := tsp.Exact(tsp.NewInstance(graph.LineGraph(cg)))
		if err != nil {
			return 0, err
		}
		total += cost + 2 // tour cost + initial placements
	}
	return total, nil
}
