package reduction

import (
	"math/rand"
	"testing"

	"joinpebble/internal/core"
	"joinpebble/internal/graph"
	"joinpebble/internal/tsp"
)

func TestGadgetDegrees(t *testing.T) {
	g := NewGadget()
	if g.N() != GadgetSize {
		t.Fatalf("gadget has %d vertices", g.N())
	}
	for _, c := range Corners {
		if g.Degree(c) != 2 {
			t.Fatalf("corner %d degree %d, want 2 (room for one external edge)", c, g.Degree(c))
		}
	}
	for v := 4; v < GadgetSize; v++ {
		if g.Degree(v) != 3 {
			t.Fatalf("internal %d degree %d, want 3", v, g.Degree(v))
		}
	}
}

func TestGadgetAllCornerPairsHamiltonian(t *testing.T) {
	// Figure 2 property 1: a Hamiltonian path exists between any two
	// corner nodes. Verified both by search and via the cached paths.
	g := NewGadget()
	for _, a := range Corners {
		for _, b := range Corners {
			if a == b {
				continue
			}
			path := CornerPath(a, b)
			if len(path) != GadgetSize || path[0] != a || path[len(path)-1] != b {
				t.Fatalf("corner path %d->%d malformed: %v", a, b, path)
			}
			for i := 1; i < len(path); i++ {
				if !g.HasEdge(path[i-1], path[i]) {
					t.Fatalf("corner path %d->%d uses non-edge", a, b)
				}
			}
		}
	}
}

func TestGadgetEndpointStructureExhaustive(t *testing.T) {
	// Enumerate every Hamiltonian path of the gadget and classify the
	// endpoint pairs: all corner pairs must occur; rim vertices must
	// never be endpoints; the documented deviation is that hub vertices
	// may pair with a corner (see NewGadget's doc comment).
	g := NewGadget()
	pairs := make(map[[2]int]bool)
	for _, p := range graph.AllHamiltonianPaths(g) {
		a, b := p[0], p[len(p)-1]
		if a > b {
			a, b = b, a
		}
		pairs[[2]int{a, b}] = true
	}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if !pairs[[2]int{i, j}] {
				t.Fatalf("missing corner endpoint pair (%d,%d)", i, j)
			}
		}
	}
	for p := range pairs {
		for _, v := range []int{p[0], p[1]} {
			if v >= rimX && v <= rimW {
				t.Fatalf("rim vertex %d is a Hamiltonian path endpoint (pair %v)", v, p)
			}
		}
		if p[0] >= hubE && p[1] >= hubE {
			t.Fatalf("two hub endpoints %v — stronger violation than documented", p)
		}
	}
}

func TestGadgetCornerPathsCoverAllPairsDeterministically(t *testing.T) {
	seen := make(map[[2]int]bool)
	for _, a := range Corners {
		for _, b := range Corners {
			if a != b {
				seen[[2]int{a, b}] = len(CornerPath(a, b)) == GadgetSize
			}
		}
	}
	if len(seen) != 12 {
		t.Fatalf("expected 12 ordered corner pairs, got %d", len(seen))
	}
}

// randDeg3Graph returns a random connected graph with max degree 3 and a
// feasible random edge count.
func randDeg3Graph(rng *rand.Rand, n int) *graph.Graph {
	maxM := n * (n - 1) / 2
	if cap := 3 * n / 2; cap < maxM {
		maxM = cap
	}
	m := n - 1 + rng.Intn(maxM-(n-1)+1)
	return graph.RandomConnectedGraph(rng, n, m, 3)
}

// randDeg4Graph returns a random connected graph with max degree 4 and at
// least one degree-4 vertex when possible.
func randDeg4Graph(rng *rand.Rand, n int) *graph.Graph {
	maxM := n * (n - 1) / 2
	if cap := 2 * n; cap < maxM { // 2m <= 4n
		maxM = cap
	}
	m := n - 1 + rng.Intn(maxM-(n-1)+1)
	return graph.RandomConnectedGraph(rng, n, m, 4)
}

func TestDegree4To3StructuralProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		g := randDeg4Graph(rng, 5+rng.Intn(4))
		r, err := NewDegree4To3(g)
		if err != nil {
			t.Fatal(err)
		}
		if d := r.H.MaxDegree(); d > 3 {
			t.Fatalf("trial %d: H has degree %d > 3", trial, d)
		}
		// Vertex count: plain vertices 1:1, degree-4 vertices 10:1.
		want := 0
		for v := 0; v < g.N(); v++ {
			if g.Degree(v) == 4 {
				want += GadgetSize
			} else {
				want++
			}
		}
		if r.H.N() != want {
			t.Fatalf("trial %d: |V(H)|=%d want %d", trial, r.H.N(), want)
		}
		if r.H.N() > GadgetSize*g.N() {
			t.Fatalf("trial %d: H larger than the alpha=%d bound", trial, GadgetSize)
		}
	}
}

func TestDegree4To3RejectsDegree5(t *testing.T) {
	g := graph.New(6)
	for v := 1; v < 6; v++ {
		g.AddEdge(0, v)
	}
	if _, err := NewDegree4To3(g); err == nil {
		t.Fatal("degree-5 vertex must be rejected")
	}
}

func TestDegree4To3ForwardPreservesJumps(t *testing.T) {
	// The lifted tour must have exactly the same number of jumps as the
	// input tour (the property-1 construction).
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		g := randDeg4Graph(rng, 6)
		r, err := NewDegree4To3(g)
		if err != nil {
			t.Fatal(err)
		}
		gin, hin := r.Instances()
		tour := tsp.Tour(rng.Perm(g.N()))
		lifted, err := r.ForwardTour(tour)
		if err != nil {
			t.Fatal(err)
		}
		if err := hin.Validate(lifted); err != nil {
			t.Fatalf("trial %d: lifted tour invalid: %v", trial, err)
		}
		if gj, hj := gin.Jumps(tour), hin.Jumps(lifted); hj != gj {
			t.Fatalf("trial %d: jumps %d -> %d (must be preserved)", trial, gj, hj)
		}
	}
}

func TestDegree4To3LReduction(t *testing.T) {
	// Empirical Definition 4.2 check with exact optima: alpha bounded by
	// the gadget size, beta = 1 over optimal plus random H tours.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 8; trial++ {
		g := randDeg4Graph(rng, 5)
		r, err := NewDegree4To3(g)
		if err != nil {
			t.Fatal(err)
		}
		if r.H.N() > tsp.MaxExactCities {
			continue // exact check infeasible; covered by jump-preservation test
		}
		var hTours []tsp.Tour
		for k := 0; k < 5; k++ {
			hTours = append(hTours, tsp.Tour(rng.Perm(r.H.N())))
		}
		check, err := CheckDegree4To3(r, hTours)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if check.Alpha > GadgetSize {
			t.Fatalf("trial %d: alpha=%.2f exceeds gadget bound %d", trial, check.Alpha, GadgetSize)
		}
		if check.MaxBetaViolation > 0 {
			t.Fatalf("trial %d: beta=1 violated by %d", trial, check.MaxBetaViolation)
		}
	}
}

func TestDegree4To3LReductionWithGadget(t *testing.T) {
	// Instances guaranteed to deploy a gadget (vertex 0 has degree 4,
	// everyone else stays below 4) — the case where the diamond actually
	// matters, checked with exact optima on both sides.
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 6; trial++ {
		n := 6 + trial%3
		var g *graph.Graph
		for {
			g = graph.New(n)
			for v := 1; v <= 4; v++ {
				g.AddEdge(0, v)
			}
			for tries := 0; tries < 40 && g.M() < n+1; tries++ {
				u, v := 1+rng.Intn(n-1), 1+rng.Intn(n-1)
				if u != v && !g.HasEdge(u, v) && g.Degree(u) < 3 && g.Degree(v) < 3 {
					g.AddEdge(u, v)
				}
			}
			if g.Connected() {
				break
			}
		}
		r, err := NewDegree4To3(g)
		if err != nil {
			t.Fatal(err)
		}
		if r.H.N() != GadgetSize+n-1 {
			t.Fatalf("trial %d: expected exactly one gadget, |V(H)|=%d", trial, r.H.N())
		}
		var hTours []tsp.Tour
		for k := 0; k < 6; k++ {
			hTours = append(hTours, tsp.Tour(rng.Perm(r.H.N())))
		}
		check, err := CheckDegree4To3(r, hTours)
		if err != nil {
			t.Fatal(err)
		}
		if check.MaxBetaViolation > 0 {
			t.Fatalf("trial %d: beta=1 violated by %d on gadget-bearing instance",
				trial, check.MaxBetaViolation)
		}
		if float64(check.OptB) > float64(GadgetSize)*float64(check.OptA) {
			t.Fatalf("trial %d: alpha bound broken: OPT(H)=%d OPT(G)=%d",
				trial, check.OptB, check.OptA)
		}
	}
}

func TestNiceifyProducesContiguousGadgets(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 15; trial++ {
		g := randDeg4Graph(rng, 6)
		r, err := NewDegree4To3(g)
		if err != nil {
			t.Fatal(err)
		}
		tour := tsp.Tour(rng.Perm(r.H.N()))
		nice := r.Niceify(tour)
		// Every gadget's vertices must be consecutive and the tour must
		// remain a permutation.
		hin := tsp.NewInstance(r.H)
		if err := hin.Validate(nice); err != nil {
			t.Fatalf("trial %d: niceified tour invalid: %v", trial, err)
		}
		for v := 0; v < g.N(); v++ {
			base := r.gadgetBase[v]
			if base < 0 {
				continue
			}
			first, last := -1, -1
			for i, hv := range nice {
				if hv >= base && hv < base+GadgetSize {
					if first == -1 {
						first = i
					}
					last = i
				}
			}
			if last-first+1 != GadgetSize {
				t.Fatalf("trial %d: gadget %d spans %d..%d", trial, v, first, last)
			}
		}
	}
}

func TestIncidenceReductionStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		g := graph.RandomConnectedGraph(rng, 6, 7, 3)
		r, err := NewTSPToPebble(g)
		if err != nil {
			t.Fatal(err)
		}
		if r.B.NLeft() != g.N() || r.B.NRight() != g.M() || r.B.M() != 2*g.M() {
			t.Fatalf("trial %d: incidence graph malformed", trial)
		}
	}
	star := graph.New(5)
	for v := 1; v < 5; v++ {
		star.AddEdge(0, v)
	}
	if _, err := NewTSPToPebble(star); err == nil {
		t.Fatal("degree-4 input must be rejected by the 4.4 reduction")
	}
}

func TestIncidenceForwardSchemeCost(t *testing.T) {
	// π̂ of the lifted scheme = 2m + J(t) + 1 for any tour t.
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		g := randDeg3Graph(rng, 5+rng.Intn(3))
		r, err := NewTSPToPebble(g)
		if err != nil {
			t.Fatal(err)
		}
		gin := tsp.NewInstance(g)
		tour := tsp.Tour(rng.Perm(g.N()))
		scheme, err := r.ForwardScheme(tour)
		if err != nil {
			t.Fatal(err)
		}
		cost, err := core.Verify(r.B.Graph(), scheme)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if want := 2*g.M() + gin.Jumps(tour) + 1; cost != want {
			t.Fatalf("trial %d: scheme cost %d want %d", trial, cost, want)
		}
	}
}

func TestIncidenceOptimaMatch(t *testing.T) {
	// The tight relation behind Theorems 4.2/4.4: π̂(B) = 2m + J* + 1
	// where J* is the optimal jump count of the TSP-3(1,2) instance.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 12; trial++ {
		g := graph.RandomConnectedGraph(rng, 5, 4+rng.Intn(4), 3)
		if 2*g.M() > tsp.MaxExactCities {
			continue
		}
		r, err := NewTSPToPebble(g)
		if err != nil {
			t.Fatal(err)
		}
		_, optG := tsp.Solve(tsp.NewInstance(g))
		optB, err := solverOptimalCost(r.B.Graph())
		if err != nil {
			t.Fatal(err)
		}
		if want := r.PebbleCostFromTourCost(optG); optB != want {
			t.Fatalf("trial %d: π̂(B)=%d, predicted from OPT(G): %d (G=%v)", trial, optB, want, g)
		}
	}
}

func TestIncidenceLReduction(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 8; trial++ {
		g := graph.RandomConnectedGraph(rng, 5, 4+rng.Intn(3), 3)
		if 2*g.M() > tsp.MaxExactCities {
			continue
		}
		r, err := NewTSPToPebble(g)
		if err != nil {
			t.Fatal(err)
		}
		// Extra feasible schemes: lifted random tours.
		var extras []core.Scheme
		for k := 0; k < 4; k++ {
			s, err := r.ForwardScheme(tsp.Tour(rng.Perm(g.N())))
			if err != nil {
				t.Fatal(err)
			}
			extras = append(extras, s)
		}
		check, err := CheckIncidence(r, extras)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if check.Alpha > 3.5 { // paper: alpha = 3 asymptotically
			t.Fatalf("trial %d: alpha=%.2f", trial, check.Alpha)
		}
		if check.MaxBetaViolation > 0 {
			t.Fatalf("trial %d: beta=1 violated by %d", trial, check.MaxBetaViolation)
		}
	}
}

func TestHamPathDecisionViaPebbling(t *testing.T) {
	// Theorem 4.2 in action: G (degree <= 3) has a Hamiltonian path iff
	// π̂(IncidenceGraph(G)) == 2m + 1 (no jumps needed).
	cases := []struct {
		build func() *graph.Graph
		ham   bool
	}{
		{func() *graph.Graph { // path: trivially Hamiltonian
			g := graph.New(5)
			for v := 1; v < 5; v++ {
				g.AddEdge(v-1, v)
			}
			return g
		}, true},
		{func() *graph.Graph { // the net: claw-free non-traceable
			g := graph.New(6)
			g.AddEdge(0, 1)
			g.AddEdge(1, 2)
			g.AddEdge(2, 0)
			g.AddEdge(0, 3)
			g.AddEdge(1, 4)
			g.AddEdge(2, 5)
			return g
		}, false},
		{func() *graph.Graph { // K_{1,3}: star, no Hamiltonian path
			g := graph.New(4)
			g.AddEdge(0, 1)
			g.AddEdge(0, 2)
			g.AddEdge(0, 3)
			return g
		}, false},
	}
	for i, c := range cases {
		g := c.build()
		r, err := NewTSPToPebble(g)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := solverOptimalCost(r.B.Graph())
		if err != nil {
			t.Fatal(err)
		}
		gotHam := opt == 2*g.M()+1
		if gotHam != c.ham {
			t.Fatalf("case %d: pebbling says ham=%v want %v (π̂=%d, 2m+1=%d)", i, gotHam, c.ham, opt, 2*g.M()+1)
		}
	}
}
