package reduction

import (
	"fmt"

	"joinpebble/internal/graph"
	"joinpebble/internal/tsp"
)

// Degree4To3 is the Theorem 4.3 L-reduction from TSP-4(1,2) to
// TSP-3(1,2): every degree-4 vertex of G is replaced by a diamond gadget
// whose four corners absorb the four incident edges; vertices of degree
// at most 3 are kept as-is.
type Degree4To3 struct {
	// G is the input instance's good-edge graph (max degree 4).
	G *graph.Graph
	// H is the output instance's good-edge graph (max degree 3).
	H *graph.Graph
	// NodeOf maps every H vertex to the G vertex it represents.
	NodeOf []int

	plainOf    []int // G vertex -> H vertex for kept vertices, -1 for gadgets
	gadgetBase []int // G vertex -> first H vertex of its gadget, -1 for plain
	cornerOf   map[cornerKey]int
}

type cornerKey struct {
	v    int // G vertex (a gadget vertex)
	edge int // G edge index incident to v
}

// NewDegree4To3 builds f(G). It fails if G has a vertex of degree > 4.
func NewDegree4To3(g *graph.Graph) (*Degree4To3, error) {
	if d := g.MaxDegree(); d > 4 {
		return nil, fmt.Errorf("reduction: max degree %d > 4", d)
	}
	r := &Degree4To3{
		G:          g,
		plainOf:    make([]int, g.N()),
		gadgetBase: make([]int, g.N()),
		cornerOf:   make(map[cornerKey]int),
	}
	// Count H vertices.
	total := 0
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) == 4 {
			r.plainOf[v] = -1
			r.gadgetBase[v] = total
			total += GadgetSize
		} else {
			r.plainOf[v] = total
			r.gadgetBase[v] = -1
			total++
		}
	}
	r.H = graph.New(total)
	r.NodeOf = make([]int, total)
	gadget := NewGadget()
	for v := 0; v < g.N(); v++ {
		if r.gadgetBase[v] >= 0 {
			base := r.gadgetBase[v]
			for i := 0; i < GadgetSize; i++ {
				r.NodeOf[base+i] = v
			}
			for _, e := range gadget.Edges() {
				r.H.AddEdge(base+e.U, base+e.V)
			}
			// Assign the four incident edges to the four corners, in
			// incidence order.
			for k, ei := range g.IncidentEdges(v) {
				r.cornerOf[cornerKey{v: v, edge: ei}] = base + Corners[k]
			}
		} else {
			r.NodeOf[r.plainOf[v]] = v
		}
	}
	// Original edges connect corners/plain endpoints.
	for ei, e := range g.Edges() {
		r.H.AddEdge(r.endpointInH(e.U, ei), r.endpointInH(e.V, ei))
	}
	return r, nil
}

// endpointInH returns the H vertex where G edge ei attaches at G vertex v.
func (r *Degree4To3) endpointInH(v, ei int) int {
	if r.plainOf[v] >= 0 {
		return r.plainOf[v]
	}
	c, ok := r.cornerOf[cornerKey{v: v, edge: ei}]
	if !ok {
		panic("reduction: edge not assigned to a corner")
	}
	return c
}

// Instances returns the two TSP(1,2) instances.
func (r *Degree4To3) Instances() (g4, h3 *tsp.Instance) {
	return tsp.NewInstance(r.G), tsp.NewInstance(r.H)
}

// ForwardTour lifts a tour of G to a tour of H with the same number of
// jumps: each gadget vertex is expanded to a corner-to-corner Hamiltonian
// path of its diamond, entering/leaving at the corners that carry the
// tour's incident G edges (the construction in Theorem 4.3's property-1
// argument). This witnesses OPT(H) <= cost over H of the lifted optimal
// G tour.
func (r *Degree4To3) ForwardTour(t tsp.Tour) (tsp.Tour, error) {
	gin := tsp.NewInstance(r.G)
	if err := gin.Validate(t); err != nil {
		return nil, err
	}
	var out tsp.Tour
	for i, v := range t {
		if r.plainOf[v] >= 0 {
			out = append(out, r.plainOf[v])
			continue
		}
		base := r.gadgetBase[v]
		entry, exit := -1, -1
		if i > 0 {
			if ei, ok := r.G.EdgeIndex(t[i-1], v); ok {
				entry = r.cornerOf[cornerKey{v: v, edge: ei}] - base
			}
		}
		if i < len(t)-1 {
			if ei, ok := r.G.EdgeIndex(v, t[i+1]); ok {
				exit = r.cornerOf[cornerKey{v: v, edge: ei}] - base
			}
		}
		entry, exit = pickDistinctCorners(entry, exit)
		for _, x := range CornerPath(entry, exit) {
			out = append(out, base+x)
		}
	}
	return out, nil
}

// pickDistinctCorners fills in free corner choices (-1) so the two are
// distinct corners.
func pickDistinctCorners(entry, exit int) (int, int) {
	if entry == -1 {
		for _, c := range Corners {
			if c != exit {
				entry = c
				break
			}
		}
	}
	if exit == -1 {
		for _, c := range Corners {
			if c != entry {
				exit = c
				break
			}
		}
	}
	return entry, exit
}

// BackTour is the g of the L-reduction: it maps any tour of H to a tour
// of G by first-visit projection, after first making the tour "nice"
// (each diamond visited contiguously) per Theorem 4.3's conversion. Both
// the raw and niceified projections are polished with 2-opt — still
// polynomial, and it absorbs the O(1) slack the substituted gadget's
// hub-endpoint tours can introduce — and the cheaper tour is returned.
func (r *Degree4To3) BackTour(t tsp.Tour) (tsp.Tour, error) {
	hin := tsp.NewInstance(r.H)
	if err := hin.Validate(t); err != nil {
		return nil, err
	}
	gin := tsp.NewInstance(r.G)
	raw, rawCost := tsp.TwoOptImprove(gin, r.project(t))
	nice, niceCost := tsp.TwoOptImprove(gin, r.project(r.Niceify(t)))
	if niceCost <= rawCost {
		return nice, nil
	}
	return raw, nil
}

// project collapses an H tour to a G tour by order of first visit.
func (r *Degree4To3) project(t tsp.Tour) tsp.Tour {
	seen := make([]bool, r.G.N())
	var out tsp.Tour
	for _, hv := range t {
		gv := r.NodeOf[hv]
		if !seen[gv] {
			seen[gv] = true
			out = append(out, gv)
		}
	}
	return out
}

// Niceify rewrites an H tour so that every diamond's vertices appear
// consecutively: per gadget, one segment (a maximal run of the gadget's
// vertices, preferring one whose boundary steps are good) is replaced by
// a corner-to-corner Hamiltonian path of the gadget, and all other
// segments of that gadget are bypassed — the conversion in Theorem 4.3's
// property-2 argument.
func (r *Degree4To3) Niceify(t tsp.Tour) tsp.Tour {
	cur := append(tsp.Tour(nil), t...)
	for v := 0; v < r.G.N(); v++ {
		if r.gadgetBase[v] >= 0 {
			cur = r.niceifyOne(cur, v)
		}
	}
	return cur
}

func (r *Degree4To3) niceifyOne(t tsp.Tour, v int) tsp.Tour {
	base := r.gadgetBase[v]
	inGadget := func(hv int) bool { return hv >= base && hv < base+GadgetSize }

	// Locate maximal segments [start,end] of gadget-v vertices.
	type segment struct{ start, end int }
	var segs []segment
	for i := 0; i < len(t); {
		if !inGadget(t[i]) {
			i++
			continue
		}
		j := i
		for j+1 < len(t) && inGadget(t[j+1]) {
			j++
		}
		segs = append(segs, segment{start: i, end: j})
		i = j + 1
	}
	if len(segs) == 1 && segs[0].end-segs[0].start+1 == GadgetSize {
		return t // already nice for this gadget
	}

	// Choose the segment to keep: prefer one entered and left via good
	// edges (the "perfect segment" preference in the paper's procedure).
	keep := 0
	for k, s := range segs {
		if r.segmentBoundaryGood(t, s.start, s.end) {
			keep = k
			break
		}
	}

	// Entry/exit corners: preserve corner endpoints of the kept segment
	// when they are corners, else pick free ones.
	entry, exit := -1, -1
	if c := t[segs[keep].start] - base; isCorner(c) {
		entry = c
	}
	if c := t[segs[keep].end] - base; isCorner(c) && c != entry {
		exit = c
	}
	entry, exit = pickDistinctCorners(entry, exit)
	replacement := make([]int, 0, GadgetSize)
	for _, x := range CornerPath(entry, exit) {
		replacement = append(replacement, base+x)
	}

	// Rebuild: kept segment -> full gadget path, other segments dropped.
	var out tsp.Tour
	for i := 0; i < len(t); {
		if !inGadget(t[i]) {
			out = append(out, t[i])
			i++
			continue
		}
		j := i
		for j+1 < len(t) && inGadget(t[j+1]) {
			j++
		}
		if i == segs[keep].start {
			out = append(out, replacement...)
		}
		i = j + 1
	}
	return out
}

// segmentBoundaryGood reports whether the tour enters and leaves the
// segment via weight-1 edges (tour ends count as good boundaries).
func (r *Degree4To3) segmentBoundaryGood(t tsp.Tour, start, end int) bool {
	if start > 0 && !r.H.HasEdge(t[start-1], t[start]) {
		return false
	}
	if end < len(t)-1 && !r.H.HasEdge(t[end], t[end+1]) {
		return false
	}
	return true
}

func isCorner(c int) bool { return c >= 0 && c < 4 }
