package leakcheck

import (
	"strings"
	"testing"
	"time"
)

// TestCatchesDeliberateLeak spawns a goroutine that blocks forever and
// checks that verification reports it — through a recorder TB, so the
// real test does not fail.
func TestCatchesDeliberateLeak(t *testing.T) {
	block := make(chan struct{})
	//joinlint:ignore golife deliberately leaked to prove the checker sees it; released at test end
	go func() {
		<-block
	}()

	rec := &recorder{}
	verify(rec, nil, Deadline(50*time.Millisecond))
	if len(rec.errs) == 0 {
		t.Fatal("deliberately leaked goroutine was not reported")
	}
	found := false
	for _, e := range rec.errs {
		if strings.Contains(e, "leaked goroutine") && strings.Contains(e, "TestCatchesDeliberateLeak") {
			found = true
		}
	}
	if !found {
		t.Fatalf("leak report does not name the leaking goroutine: %q", rec.errs)
	}
	close(block)
}

// TestBaselineExcludesPreexisting proves Check-style verification only
// counts goroutines started after the snapshot.
func TestBaselineExcludesPreexisting(t *testing.T) {
	block := make(chan struct{})
	//joinlint:ignore golife deliberate daemon for the duration of the test; released at test end
	go func() {
		<-block
	}()
	time.Sleep(10 * time.Millisecond) // let it get onto the scheduler

	baseline := map[string]bool{}
	for _, g := range interestingGoroutines(nil) {
		baseline[g.id] = true
	}
	rec := &recorder{}
	verify(rec, baseline, Deadline(50*time.Millisecond))
	if len(rec.errs) != 0 {
		t.Fatalf("pre-existing goroutine counted as leak: %q", rec.errs)
	}
	close(block)
}

// TestCleanPasses: a joined goroutine leaves nothing behind.
func TestCleanPasses(t *testing.T) {
	done := make(chan struct{})
	go func() {
		close(done)
	}()
	<-done

	rec := &recorder{}
	verify(rec, nil, Deadline(500*time.Millisecond))
	if len(rec.errs) != 0 {
		t.Fatalf("clean state reported as leak: %q", rec.errs)
	}
}

// TestIgnoreOption: an ignored pattern suppresses the report.
func TestIgnoreOption(t *testing.T) {
	block := make(chan struct{})
	//joinlint:ignore golife deliberately leaked to exercise the Ignore option; released at test end
	go func() {
		leakMarkerForIgnoreTest(block)
	}()

	rec := &recorder{}
	verify(rec, nil, Deadline(50*time.Millisecond), Ignore("leakMarkerForIgnoreTest"))
	if len(rec.errs) != 0 {
		t.Fatalf("ignored goroutine still reported: %q", rec.errs)
	}
	close(block)
}

func leakMarkerForIgnoreTest(ch chan struct{}) {
	<-ch
}
