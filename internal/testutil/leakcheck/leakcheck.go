// Package leakcheck verifies at test end that no goroutines leaked,
// cross-checking the static golife lint dynamically. It is a small
// goleak: snapshot the live goroutines, run the test, then retry with
// backoff until every goroutine that is neither in the snapshot nor on
// the allowlist has exited.
//
// Two entry points:
//
//   - Check(t) at the top of a test snapshots the current goroutines
//     and registers a cleanup that fails the test if *new* goroutines
//     survive it. Because only goroutines started after the snapshot
//     count, suites whose TestMain or sibling tests keep daemons alive
//     can still use it.
//   - Main(m) in TestMain verifies the whole package: after m.Run()
//     returns cleanly it fails the run if anything beyond the baseline
//     captured at startup is still alive.
//
// The allowlist covers the runtime/testing machinery that legitimately
// outlives tests. Test-specific exceptions use Ignore:
//
//	defer leakcheck.Check(t, leakcheck.Ignore("obshttp.(*Server).serve"))
package leakcheck

import (
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"time"
)

// TB is the subset of testing.TB leakcheck needs; taking the interface
// keeps the package out of test binaries' public API and lets the
// self-test substitute a recorder.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Cleanup(func())
}

// Option adjusts one verification.
type Option func(*config)

type config struct {
	ignores  []string
	deadline time.Duration
}

// Ignore tolerates goroutines whose stack contains substr (typically a
// function name like "pkg.(*Type).method").
func Ignore(substr string) Option {
	return func(c *config) { c.ignores = append(c.ignores, substr) }
}

// Deadline overrides how long verification retries before failing
// (default 2s — generous because -race schedules exits late).
func Deadline(d time.Duration) Option {
	return func(c *config) { c.deadline = d }
}

// allowlist matches goroutines owned by the runtime and test machinery.
var allowlist = []string{
	"testing.Main(",
	"testing.tRunner(",
	"testing.(*T).Run(",
	"testing.(*M).",
	"testing.runTests",
	"testing.RunTests",
	"runtime.goexit",
	"runtime.MHeap_Scavenger",
	"runtime.gc",
	"runtime/trace",
	"signal.signal_recv",
	"sigterm.handler",
	"os/signal.loop",
	"os/signal.NotifyContext",
	"runtime.ensureSigM",
	"interestingGoroutines", // our own collector
	"created by runtime",
	"net/http.(*persistConn)", // reaped via CloseIdleConnections before verify
	"net/http.setupRewindBody",
}

// Check snapshots the current goroutines and registers a cleanup that
// fails t if goroutines created after this point are still running when
// the test (and any cleanups registered after it) finish.
func Check(t TB, opts ...Option) {
	t.Helper()
	baseline := liveGoroutineIDs()
	t.Cleanup(func() {
		verify(t, baseline, opts...)
	})
}

// VerifyNone fails t immediately (after retries) if any goroutine
// outside the allowlist is running. Use it where a true zero-baseline
// holds, e.g. at the end of TestMain.
func VerifyNone(t TB, opts ...Option) {
	t.Helper()
	verify(t, nil, opts...)
}

// Main wraps testing.M.Run for TestMain functions:
//
//	func TestMain(m *testing.M) { leakcheck.Main(m) }
//
// Goroutines alive before any test runs (package init daemons) form the
// baseline; a non-zero exit from the tests is passed through unchanged
// without leak checking (the failure is already being reported).
func Main(m interface{ Run() int }, opts ...Option) int {
	baseline := liveGoroutineIDs()
	code := m.Run()
	if code != 0 {
		return code
	}
	rec := &recorder{}
	verify(rec, baseline, opts...)
	if len(rec.errs) > 0 {
		for _, e := range rec.errs {
			fmt.Println(e)
		}
		return 1
	}
	return 0
}

// recorder is the minimal TB used by Main (and the self-test).
type recorder struct{ errs []string }

func (r *recorder) Helper()        {}
func (r *recorder) Cleanup(func()) {}
func (r *recorder) Errorf(format string, args ...any) {
	r.errs = append(r.errs, fmt.Sprintf(format, args...))
}

func verify(t TB, baseline map[string]bool, opts ...Option) {
	t.Helper()
	cfg := &config{deadline: 2 * time.Second}
	for _, o := range opts {
		o(cfg)
	}
	// Idle HTTP keep-alive connections hold goroutines that are not
	// leaks; reap them before judging.
	http.DefaultClient.CloseIdleConnections()
	if tr, ok := http.DefaultTransport.(*http.Transport); ok {
		tr.CloseIdleConnections()
	}

	var leaked []goroutine
	//joinlint:ignore forbidden the retry deadline races real goroutine exits; an injected clock would defeat the backoff
	deadline := time.Now().Add(cfg.deadline)
	for delay := 1 * time.Millisecond; ; delay *= 2 {
		leaked = leaked[:0]
		for _, g := range interestingGoroutines(cfg.ignores) {
			if baseline == nil || !baseline[g.id] {
				leaked = append(leaked, g)
			}
		}
		if len(leaked) == 0 {
			return
		}
		//joinlint:ignore forbidden see the deadline note above: wall-clock by design
		if time.Now().After(deadline) {
			break
		}
		if delay > 100*time.Millisecond {
			delay = 100 * time.Millisecond
		}
		time.Sleep(delay)
	}
	for _, g := range leaked {
		t.Errorf("leaked goroutine: %s", g.stack)
	}
}

// goroutine is one parsed entry of a full runtime stack dump.
type goroutine struct {
	id    string // "goroutine 12 [chan receive]" header — stable per goroutine
	stack string
}

// liveGoroutineIDs snapshots the IDs of every goroutine currently
// alive, with no filtering. Baselines must be unfiltered: a goroutine
// that is brand-new at snapshot time tracebacks as runtime.goexit
// (which the allowlist matches) yet shows its real frames once running,
// so a filtered baseline would later misreport it as a leak.
func liveGoroutineIDs() map[string]bool {
	ids := map[string]bool{}
	for _, g := range allGoroutines() {
		ids[g.id] = true
	}
	return ids
}

// allGoroutines dumps and parses every goroutine stack except the
// calling goroutine's.
func allGoroutines() []goroutine {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var out []goroutine
	for i, dump := range strings.Split(string(buf), "\n\n") {
		if i == 0 {
			continue // first entry is the calling goroutine
		}
		dump = strings.TrimSpace(dump)
		if dump == "" {
			continue
		}
		header, _, _ := strings.Cut(dump, "\n")
		out = append(out, goroutine{id: strings.Fields(header)[1], stack: dump})
	}
	return out
}

// interestingGoroutines returns the live goroutines not matched by the
// allowlist or extra ignore patterns, excluding the calling goroutine.
func interestingGoroutines(ignores []string) []goroutine {
	var out []goroutine
	for _, g := range allGoroutines() {
		if skip(g.stack) || skipAny(g.stack, ignores) {
			continue
		}
		out = append(out, g)
	}
	return out
}

func skip(dump string) bool { return skipAny(dump, allowlist) }
func skipAny(dump string, pats []string) bool {
	for _, p := range pats {
		if strings.Contains(dump, p) {
			return true
		}
	}
	return false
}
