package family

import (
	"testing"

	"joinpebble/internal/core"
	"joinpebble/internal/graph"
	"joinpebble/internal/tsp"
)

func TestSpiderStructure(t *testing.T) {
	for n := 1; n <= 8; n++ {
		b := Spider(n)
		if b.M() != 2*n {
			t.Fatalf("n=%d: m=%d want 2n", n, b.M())
		}
		g := b.Graph()
		if !g.Connected() {
			t.Fatalf("n=%d: spider disconnected", n)
		}
		// Center has degree n, middles degree 2, leaves degree 1.
		if g.Degree(b.LeftVertex(0)) != n {
			t.Fatalf("n=%d: center degree %d", n, g.Degree(b.LeftVertex(0)))
		}
		for i := 0; i < n; i++ {
			if g.Degree(b.RightVertex(i)) != 2 {
				t.Fatalf("n=%d: middle %d degree != 2", n, i)
			}
			if g.Degree(b.LeftVertex(1+i)) != 1 {
				t.Fatalf("n=%d: leaf %d degree != 1", n, i)
			}
		}
	}
}

func TestSpiderEdgeIndexHelpers(t *testing.T) {
	n := 4
	b := Spider(n)
	for i := 0; i < n; i++ {
		l, r := b.EdgeAt(SpiderInnerEdge(i))
		if l != 0 || r != i {
			t.Fatalf("inner edge %d is (%d,%d)", i, l, r)
		}
		l, r = b.EdgeAt(SpiderOuterEdge(i))
		if l != 1+i || r != i {
			t.Fatalf("outer edge %d is (%d,%d)", i, l, r)
		}
	}
}

func TestSpiderLineGraphIsCliquePlusPendants(t *testing.T) {
	// Figure 1b: L(G_n) is K_n with n pendant degree-1 vertices.
	for n := 2; n <= 7; n++ {
		lg := graph.LineGraph(Spider(n).Graph())
		if lg.N() != 2*n {
			t.Fatalf("n=%d: |V(L)|=%d", n, lg.N())
		}
		wantEdges := n*(n-1)/2 + n
		if lg.M() != wantEdges {
			t.Fatalf("n=%d: |E(L)|=%d want %d", n, lg.M(), wantEdges)
		}
		deg1 := 0
		for v := 0; v < lg.N(); v++ {
			if lg.Degree(v) == 1 {
				deg1++
			}
		}
		if deg1 != n {
			t.Fatalf("n=%d: %d pendants want n", n, deg1)
		}
		// Inner edges pairwise adjacent (the clique).
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if !lg.HasEdge(SpiderInnerEdge(i), SpiderInnerEdge(j)) {
					t.Fatalf("n=%d: inner edges %d,%d not adjacent in L", n, i, j)
				}
			}
		}
	}
}

func TestSpiderOptimalCostAgainstExactTSP(t *testing.T) {
	// Proposition 2.2: π(G) = optimal tour cost of L(G) + 1. Check the
	// closed form against Held–Karp for every n the solver can reach.
	for n := 1; n <= 9; n++ {
		lg := graph.LineGraph(Spider(n).Graph())
		_, cost, err := tsp.Exact(tsp.NewInstance(lg))
		if err != nil {
			t.Fatal(err)
		}
		if got, want := cost+1, SpiderOptimalEffectiveCost(n); got != want {
			t.Fatalf("n=%d: exact π=%d closed form %d", n, got, want)
		}
	}
}

func TestSpiderMatchesPaperBoundEvenN(t *testing.T) {
	// Theorem 3.3: for the family, π = 1.25m − 1; exact for even n.
	for n := 2; n <= 10; n += 2 {
		m := 2 * n
		if got, want := SpiderOptimalEffectiveCost(n), 5*m/4-1; got != want {
			t.Fatalf("n=%d: π=%d want 1.25m-1=%d", n, got, want)
		}
	}
}

func TestSpiderNoHamiltonianPathInLineGraphForN3(t *testing.T) {
	// L(G_3) is the net — the smallest claw-free graph without a
	// Hamiltonian path — so G_3 cannot be pebbled perfectly (Prop 2.1).
	lg := graph.LineGraph(Spider(3).Graph())
	if _, ok := graph.HamiltonianPath(lg); ok {
		t.Fatal("L(G_3) must not have a Hamiltonian path")
	}
}

func TestSpiderOptimalSchemeRealizesClosedForm(t *testing.T) {
	// The explicit pairing scheme must be a valid, complete pebbling with
	// effective cost exactly the closed form — at sizes far beyond the
	// exact solver, this is the constructive proof of the upper bound
	// half of Theorem 3.3 (the lower bound is the B+/B− count).
	for _, n := range []int{1, 2, 3, 4, 5, 8, 13, 64, 501} {
		b := Spider(n)
		g := b.Graph()
		order, err := SpiderOptimalScheme(n)
		if err != nil {
			t.Fatal(err)
		}
		scheme, err := core.SchemeFromEdgeOrder(g, order)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		cost, err := core.Verify(g, scheme)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if want := SpiderOptimalEffectiveCost(n) + 1; cost != want {
			t.Fatalf("n=%d: pairing scheme π̂=%d want %d", n, cost, want)
		}
	}
}

func TestBuildFamilies(t *testing.T) {
	for _, name := range All() {
		b, err := Build(name, 4)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if b.M() == 0 {
			t.Fatalf("%s: empty graph", name)
		}
	}
	if _, err := Build("nope", 3); err == nil {
		t.Fatal("unknown family must error")
	}
}

func TestBuildCycleRoundsUp(t *testing.T) {
	b, err := Build(NameCycle, 5)
	if err != nil {
		t.Fatal(err)
	}
	if b.M() != 6 {
		t.Fatalf("cycle(5) should round up to 6 edges, got %d", b.M())
	}
	b, err = Build(NameCycle, 2)
	if err != nil {
		t.Fatal(err)
	}
	if b.M() != 4 {
		t.Fatalf("cycle(2) should clamp to 4 edges, got %d", b.M())
	}
}

func TestSpiderRejectsZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Spider(0) must panic")
		}
	}()
	Spider(0)
}
