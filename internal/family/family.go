// Package family constructs the named graph families the paper's
// combinatorial bounds are proved on: the G_n spiders of Theorem 3.3
// (Figure 1a), whose line graphs are K_n with n pendant vertices
// (Figure 1b), plus the matching, complete-bipartite, path, cycle and
// grid families used as controls in the experiments.
package family

import (
	"fmt"

	"joinpebble/internal/graph"
)

// Spider returns G_n from Figure 1a: a star K_{1,n} with every edge
// subdivided once. Vertices: center c, middles u_1..u_n, leaves l_1..l_n;
// edges c–u_i ("inner") and u_i–l_i ("outer"), m = 2n in total. Its line
// graph is K_n (the inner edges all share c) with n pendant vertices (each
// outer edge touches only its own inner edge) — exactly L(G_5) as drawn in
// Figure 1b. Theorem 3.3 shows π(G_n) = 1.25m − 1 asymptotically: any TSP
// tour of L(G_n) needs J >= m/4 − 1 jumps.
//
// The graph is returned as a Bipartite: the center and the leaves form
// one side, the middles the other.
func Spider(n int) *graph.Bipartite {
	if n < 1 {
		panic("family: spider needs n >= 1")
	}
	// Left: 0 = center, 1..n = leaves. Right: 0..n-1 = middles.
	b := graph.NewBipartite(n+1, n)
	for i := 0; i < n; i++ {
		b.AddEdge(0, i)   // inner edge c–u_i: even index 2i
		b.AddEdge(1+i, i) // outer edge l_i–u_i: odd index 2i+1
	}
	return b
}

// SpiderInnerEdge returns the edge index of the i-th inner edge c–u_i of
// Spider(n).
func SpiderInnerEdge(i int) int { return 2 * i }

// SpiderOuterEdge returns the edge index of the i-th outer edge u_i–l_i of
// Spider(n).
func SpiderOuterEdge(i int) int { return 2*i + 1 }

// SpiderOptimalEffectiveCost returns the exact optimal effective pebbling
// cost of Spider(n). In L(G_n) the n pendant leaves each have a single
// good edge, so any tour needs J >= ceil((n−2)/2) jumps (the B+/B−
// counting in Theorem 3.3's proof), and the pairing tour
// p1 k1 k2 p2 | p3 k3 k4 p4 | ... achieves it. With m = 2n this gives
// π(G_n) = m + floor((n−1)/2), which equals the paper's 1.25m − 1 exactly
// when n is even (Theorem 3.3's family is stated asymptotically).
// Verified against the exact solver in the family and experiment tests.
func SpiderOptimalEffectiveCost(n int) int {
	return 2*n + (n-1)/2
}

// SpiderOptimalScheme constructs an optimal pebbling scheme for
// Spider(n) explicitly, realizing SpiderOptimalEffectiveCost(n) at any
// size (the exact solver can only confirm it for small n). The deletion
// order is the pairing tour of L(G_n): consecutive inner edges are
// bridged through the clique while their outer pendants are picked up at
// segment ends, one jump per pair of inner edges:
//
//	outer_1 inner_1 inner_2 outer_2 | outer_3 inner_3 inner_4 outer_4 | ...
//
// Each four-edge segment is jump-free (outer_i shares u_i with inner_i;
// inner_i shares the center with inner_{i+1}); segments are separated by
// one jump, giving J = ceil((n−2)/2) — matching the B+/B− lower bound of
// Theorem 3.3's proof, so the scheme is optimal.
func SpiderOptimalScheme(n int) ([]int, error) {
	var order []int
	for i := 0; i+1 < n; i += 2 {
		order = append(order,
			SpiderOuterEdge(i), SpiderInnerEdge(i),
			SpiderInnerEdge(i+1), SpiderOuterEdge(i+1))
	}
	if n%2 == 1 {
		order = append(order, SpiderInnerEdge(n-1), SpiderOuterEdge(n-1))
	}
	if len(order) != 2*n {
		return nil, fmt.Errorf("family: pairing order covers %d of %d edges", len(order), 2*n)
	}
	return order, nil
}

// Name labels the standard families for experiment tables.
type Name string

const (
	NameSpider   Name = "spider"
	NameMatching Name = "matching"
	NameComplete Name = "complete-bipartite"
	NamePath     Name = "path"
	NameCycle    Name = "cycle"
	NameGrid     Name = "grid"
)

// Build constructs a family member by name and size parameter. The size
// maps to: spider n, matching m, K_{n,n}, path m, cycle m (rounded up to
// even), grid n x n.
func Build(name Name, size int) (*graph.Bipartite, error) {
	switch name {
	case NameSpider:
		return Spider(size), nil
	case NameMatching:
		return graph.Matching(size), nil
	case NameComplete:
		return graph.CompleteBipartite(size, size), nil
	case NamePath:
		return graph.PathBipartite(size), nil
	case NameCycle:
		if size%2 == 1 {
			size++
		}
		if size < 4 {
			size = 4
		}
		return graph.CycleBipartite(size), nil
	case NameGrid:
		return graph.GridBipartite(size, size), nil
	}
	return nil, fmt.Errorf("family: unknown family %q", name)
}

// All lists the standard family names.
func All() []Name {
	return []Name{NameSpider, NameMatching, NameComplete, NamePath, NameCycle, NameGrid}
}
