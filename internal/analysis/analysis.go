// Package analysis is a small first-party analogue of
// golang.org/x/tools/go/analysis: named analyzers running over
// typechecked packages, reporting position-tagged diagnostics, and
// exchanging package-level facts for whole-program checks.
//
// It exists because the repo pins project-specific invariants — the
// hot-path allocation contract, constant obs metric names, the
// fault-site registry, sentinel wrapping discipline, cancellation
// cadence in search loops — that no generic linter knows about, and the
// container this repo builds in has no module proxy, so the real
// x/tools framework cannot be vendored. The API mirrors the upstream
// shape (Analyzer/Pass/Diagnostic) closely enough that porting the
// passes onto x/tools later is mechanical.
//
// Differences from upstream, deliberate:
//
//   - Facts are package-scoped values aggregated by the driver and
//     handed to an analyzer's Finish hook after every package ran, so
//     global-uniqueness checks (duplicate metric names, duplicate fault
//     sites) see the whole analyzed set, not just the import cone.
//   - Suppression is built into the driver: a line comment
//     `//joinlint:ignore <analyzer>[,<analyzer>] reason` on the
//     offending line or the line above it drops the diagnostic. The
//     reason is mandatory by convention (DESIGN.md).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one finding: the analyzer that produced it, where, and
// why. Positions resolve against the driver's shared FileSet.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// PackageFact is a fact one package's Run exported, tagged with the
// package's import path for Finish-time aggregation.
type PackageFact struct {
	Path string
	Fact any
}

// Pass carries one package's syntax and types into an analyzer's Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
	export func(any)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Analyzer: p.Analyzer.Name, Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ExportFact publishes a fact for this package; the driver hands every
// exported fact to the analyzer's Finish hook once all packages ran.
func (p *Pass) ExportFact(fact any) { p.export(fact) }

// FinishPass carries the aggregated facts of every analyzed package
// into an analyzer's Finish hook.
type FinishPass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Facts    []PackageFact

	report func(Diagnostic)
}

// Reportf records a whole-program diagnostic at pos.
func (f *FinishPass) Reportf(pos token.Pos, format string, args ...any) {
	f.report(Diagnostic{Analyzer: f.Analyzer.Name, Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Analyzer is one invariant checker. Run executes per package; Finish,
// when non-nil, executes once afterwards over all exported facts.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
	// Finish runs after every package's Run completed, for checks that
	// need the whole analyzed set (cross-package duplicates).
	Finish func(*FinishPass) error
}

// Unit is one typechecked package the driver runs analyzers over.
type Unit struct {
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Run executes every analyzer over every unit, then the Finish hooks,
// and returns the surviving diagnostics sorted by position. Diagnostics
// on a line carrying (or directly below) a matching joinlint:ignore
// directive are dropped.
func Run(fset *token.FileSet, units []Unit, analyzers []*Analyzer) ([]Diagnostic, error) {
	var (
		diags []Diagnostic
		facts = map[*Analyzer][]PackageFact{}
	)
	collect := func(d Diagnostic) { diags = append(diags, d) }
	for _, a := range analyzers {
		for _, u := range units {
			pass := &Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     u.Files,
				Pkg:       u.Pkg,
				TypesInfo: u.Info,
				report:    collect,
			}
			path := u.Pkg.Path()
			pass.export = func(fact any) {
				facts[a] = append(facts[a], PackageFact{Path: path, Fact: fact})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, path, err)
			}
		}
	}
	for _, a := range analyzers {
		if a.Finish == nil {
			continue
		}
		fp := &FinishPass{Analyzer: a, Fset: fset, Facts: facts[a], report: collect}
		if err := a.Finish(fp); err != nil {
			return nil, fmt.Errorf("analyzer %s finish: %w", a.Name, err)
		}
	}
	diags = filterIgnored(fset, units, diags)
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		if diags[i].Analyzer != diags[j].Analyzer {
			return diags[i].Analyzer < diags[j].Analyzer
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}

var ignoreRE = regexp.MustCompile(`^//joinlint:ignore\s+([a-z0-9_,]+)\s+\S`)

// filterIgnored drops diagnostics suppressed by joinlint:ignore
// directives. A directive suppresses the named analyzers on its own
// line and on the line directly below (the usual "comment above the
// statement" placement).
func filterIgnored(fset *token.FileSet, units []Unit, diags []Diagnostic) []Diagnostic {
	type key struct {
		file string
		line int
	}
	ignored := map[key]map[string]bool{}
	for _, u := range units {
		for _, f := range u.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := ignoreRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := fset.Position(c.Pos())
					for _, name := range strings.Split(m[1], ",") {
						for _, line := range []int{pos.Line, pos.Line + 1} {
							k := key{pos.Filename, line}
							if ignored[k] == nil {
								ignored[k] = map[string]bool{}
							}
							ignored[k][name] = true
						}
					}
				}
			}
		}
	}
	if len(ignored) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if ignored[key{pos.Filename, pos.Line}][d.Analyzer] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
