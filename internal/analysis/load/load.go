// Package load turns `go list` package patterns into typechecked
// syntax for the analysis driver, with no dependency outside the
// standard library.
//
// The matched packages themselves are parsed and typechecked from
// source (analyzers need their syntax); everything they import —
// standard library and module packages alike — is imported from the
// compiler export data `go list -export` leaves in the build cache.
// That keeps a joinlint run at one `go list` invocation plus one
// typecheck per analyzed package, works fully offline, and gives the
// analyzers the compiler's own view of dependency types.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"sync"
)

// Package is one analyzed package: its syntax plus type information.
type Package struct {
	ImportPath string
	Dir        string
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
}

// ExportData maps import paths to compiler export-data files via
// `go list -export`, with on-demand fallback for paths outside the
// preloaded dependency closure. Safe for concurrent Lookup.
type ExportData struct {
	dir string

	//joinlint:lockrank load-exportdata 90
	mu sync.Mutex
	m  map[string]string
}

// NewExportData returns an empty map resolving against the module
// containing dir ("" = current directory).
func NewExportData(dir string) *ExportData {
	return &ExportData{dir: dir, m: map[string]string{}}
}

// Preload runs `go list -deps -export` on patterns and records every
// export-data file it reports.
func (e *ExportData) Preload(patterns ...string) error {
	pkgs, err := goList(e.dir, patterns)
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, p := range pkgs {
		if p.Export != "" {
			e.m[p.ImportPath] = p.Export
		}
	}
	return nil
}

// Lookup opens the export data for path, listing it on demand if the
// preloaded closure misses it. It is the lookup function handed to the
// gc importer.
func (e *ExportData) Lookup(path string) (io.ReadCloser, error) {
	e.mu.Lock()
	f, ok := e.m[path]
	e.mu.Unlock()
	if !ok {
		if err := e.Preload(path); err != nil {
			return nil, fmt.Errorf("load: no export data for %q: %w", path, err)
		}
		e.mu.Lock()
		f, ok = e.m[path]
		e.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("load: go list produced no export data for %q", path)
		}
	}
	return os.Open(f)
}

// goList runs `go list -deps -export -json` in dir over patterns.
func goList(dir string, patterns []string) ([]listPkg, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,Export,DepOnly", "--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %w\n%s", patterns, err, stderr.Bytes())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %w", patterns, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// NewInfo returns a types.Info with every map analyzers consume.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Instances:  map[*ast.Ident]types.Instance{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// ParsePackage parses the named files (absolute paths or relative to
// dir) with comments.
func ParsePackage(fset *token.FileSet, dir string, files []string) ([]*ast.File, error) {
	var out []*ast.File
	for _, name := range files {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// Load lists patterns in dir, then parses and typechecks every matched
// package (dependencies are imported from export data, not analyzed).
// Packages come back sorted by import path.
func Load(dir string, fset *token.FileSet, patterns []string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := NewExportData(dir)
	exports.mu.Lock()
	for _, p := range listed {
		if p.Export != "" {
			exports.m[p.ImportPath] = p.Export
		}
	}
	exports.mu.Unlock()
	imp := importer.ForCompiler(fset, "gc", exports.Lookup)

	var out []*Package
	for _, p := range listed {
		if p.DepOnly || len(p.GoFiles) == 0 {
			continue
		}
		files, err := ParsePackage(fset, p.Dir, p.GoFiles)
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", p.ImportPath, err)
		}
		info := NewInfo()
		conf := types.Config{Importer: imp}
		pkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", p.ImportPath, err)
		}
		out = append(out, &Package{
			ImportPath: p.ImportPath,
			Dir:        p.Dir,
			Files:      files,
			Pkg:        pkg,
			Info:       info,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}
