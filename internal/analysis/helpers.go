package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// WithStack walks root calling fn with each node and the stack of its
// ancestors (outermost first, not including n itself). Returning false
// prunes the subtree under n.
func WithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// CalleeFunc resolves the function or method a call expression invokes,
// or nil for builtins, conversions, and calls through function values.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[fun.Sel] // package-qualified call
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// FuncIs reports whether fn is the package-level function pkgPath.name
// (recv == "") or the method recv.name of a type in pkgPath. Pointer
// receivers match their base type name.
func FuncIs(fn *types.Func, pkgPath, recv, name string) bool {
	if fn == nil || fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if recv == "" {
		return sig.Recv() == nil
	}
	r := sig.Recv()
	if r == nil {
		return false
	}
	t := r.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == recv
}

// ConstString returns the compile-time constant string value of expr,
// if it has one (literals, named constants, constant concatenations).
func ConstString(info *types.Info, expr ast.Expr) (string, bool) {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// ConstInt returns the compile-time constant integer value of expr.
func ConstInt(info *types.Info, expr ast.Expr) (int64, bool) {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	v, exact := constant.Int64Val(tv.Value)
	return v, exact
}

// UsedObject resolves an identifier or package-qualified selector to
// the object it uses, or nil.
func UsedObject(info *types.Info, expr ast.Expr) types.Object {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		if _, ok := info.Selections[e]; ok {
			return nil // field or method selection, not a plain object use
		}
		return info.Uses[e.Sel]
	}
	return nil
}

// IsPackageLevel reports whether obj is declared at its package's
// top-level scope.
func IsPackageLevel(obj types.Object) bool {
	return obj != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}

// EnclosingFunc returns the innermost function declaration or literal
// in stack (the ancestor list from WithStack), or nil.
func EnclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// FuncBody returns the body of a *ast.FuncDecl or *ast.FuncLit.
func FuncBody(fn ast.Node) *ast.BlockStmt {
	switch f := fn.(type) {
	case *ast.FuncDecl:
		return f.Body
	case *ast.FuncLit:
		return f.Body
	}
	return nil
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
