package analysis_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"joinpebble/internal/analysis"
)

// TestDiagnosticOrdering pins the driver's output contract: diagnostics
// come back sorted by (file, line, column, analyzer, message) no matter
// what order analyzers produced them in. The synthetic analyzers below
// deliberately report out of a map — randomized iteration order — and
// the test runs many rounds so a regression to insertion order cannot
// hide behind a lucky shuffle.
func TestDiagnosticOrdering(t *testing.T) {
	const srcA = `package ordertest

func a() {}
func b() {}
func c() {}
`
	const srcB = `package ordertest

func d() {}
func e() {}
`
	for round := 0; round < 20; round++ {
		fset := token.NewFileSet()
		fileA, err := parser.ParseFile(fset, "a_fixture.go", srcA, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		fileB, err := parser.ParseFile(fset, "b_fixture.go", srcB, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		unit := analysis.Unit{
			Files: []*ast.File{fileA, fileB},
			Pkg:   types.NewPackage("ordertest", "ordertest"),
			Info:  &types.Info{},
		}

		// Each function declaration becomes several report sites. Feeding
		// them through a map scrambles emission order.
		sites := map[string]token.Pos{}
		for _, f := range unit.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok {
					sites[fd.Name.Name] = fd.Pos()
				}
			}
		}
		mkAnalyzer := func(name string) *analysis.Analyzer {
			a := &analysis.Analyzer{Name: name, Doc: "ordering probe"}
			a.Run = func(pass *analysis.Pass) error {
				for fn, pos := range sites {
					// Two messages per site per analyzer: same position,
					// same analyzer, ordering must fall to the message.
					pass.Reportf(pos, "probe-b %s", fn)
					pass.Reportf(pos, "probe-a %s", fn)
				}
				return nil
			}
			return a
		}
		// Registered in reverse-alphabetical order: the sort may not
		// lean on registration order either.
		diags, err := analysis.Run(fset, []analysis.Unit{unit}, []*analysis.Analyzer{
			mkAnalyzer("zeta"), mkAnalyzer("alpha"),
		})
		if err != nil {
			t.Fatal(err)
		}
		if want := 2 * 2 * len(sites); len(diags) != want {
			t.Fatalf("got %d diagnostics, want %d", len(diags), want)
		}
		for i := 1; i < len(diags); i++ {
			if !ordered(fset, diags[i-1], diags[i]) {
				t.Fatalf("round %d: diagnostics out of order at %d:\n  %s\n  %s",
					round, i, describe(fset, diags[i-1]), describe(fset, diags[i]))
			}
		}
	}
}

// ordered reports d1 <= d2 under the documented sort key.
func ordered(fset *token.FileSet, d1, d2 analysis.Diagnostic) bool {
	p1, p2 := fset.Position(d1.Pos), fset.Position(d2.Pos)
	switch {
	case p1.Filename != p2.Filename:
		return p1.Filename < p2.Filename
	case p1.Line != p2.Line:
		return p1.Line < p2.Line
	case p1.Column != p2.Column:
		return p1.Column < p2.Column
	case d1.Analyzer != d2.Analyzer:
		return d1.Analyzer < d2.Analyzer
	default:
		return d1.Message <= d2.Message
	}
}

func describe(fset *token.FileSet, d analysis.Diagnostic) string {
	p := fset.Position(d.Pos)
	return fmt.Sprintf("%s:%d:%d [%s] %s", p.Filename, p.Line, p.Column, d.Analyzer, d.Message)
}
