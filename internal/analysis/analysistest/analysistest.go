// Package analysistest runs an analyzer over fixture packages under a
// test's testdata directory and checks its diagnostics against
// `// want "regexp"` comments, mirroring the x/tools package of the
// same name.
//
// Layout is the upstream convention: testdata/src/<importpath>/*.go.
// Fixture packages may import each other (resolved inside testdata
// first) and any real package — standard library or joinpebble/... —
// which the loader imports from build-cache export data. Mirroring a
// real import path under testdata/src (e.g. joinpebble/internal/tsp)
// makes path-scoped analyzers treat the fixture as that package.
package analysistest

import (
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"joinpebble/internal/analysis"
	"joinpebble/internal/analysis/load"
)

// loader resolves fixture packages from testdata/src, falling back to
// export data for everything else.
type loader struct {
	t      *testing.T
	fset   *token.FileSet
	srcdir string
	gc     types.Importer
	cache  map[string]*load.Package
	order  []string // fixture load order, for deterministic unit lists
}

// Import implements types.Importer over the fixture tree.
func (l *loader) Import(path string) (*types.Package, error) {
	if p, ok := l.cache[path]; ok {
		return p.Pkg, nil
	}
	if dir := filepath.Join(l.srcdir, filepath.FromSlash(path)); hasGoFiles(dir) {
		p, err := l.loadFixture(path, dir)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	return l.gc.Import(path)
}

func (l *loader) loadFixture(path, dir string) (*load.Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysistest: no .go files in %s", dir)
	}
	files, err := load.ParsePackage(l.fset, dir, names)
	if err != nil {
		return nil, err
	}
	info := load.NewInfo()
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysistest: typechecking %s: %w", path, err)
	}
	p := &load.Package{ImportPath: path, Dir: dir, Files: files, Pkg: pkg, Info: info}
	l.cache[path] = p
	l.order = append(l.order, path)
	return p, nil
}

// hasGoFiles reports whether dir holds a fixture package (at least one
// .go file). Bare intermediate directories — testdata/src/a/b when only
// a/b/c is a fixture — don't shadow real packages on the same path.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// want is one expectation parsed from a `// want` comment.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)`)

// Run loads each fixture package under testdata/src, runs a over all
// of them (including one shared Finish pass, so cross-package fact
// checks are exercised), and matches diagnostics against the fixtures'
// `// want` comments.
func Run(t *testing.T, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	srcdir, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	exports := load.NewExportData("")
	if err := exports.Preload("joinpebble/..."); err != nil {
		t.Fatalf("preloading export data: %v", err)
	}
	l := &loader{
		t:      t,
		fset:   fset,
		srcdir: srcdir,
		gc:     importer.ForCompiler(fset, "gc", exports.Lookup),
		cache:  map[string]*load.Package{},
	}
	requested := map[string]bool{}
	for _, path := range pkgpaths {
		requested[path] = true
		dir := filepath.Join(srcdir, filepath.FromSlash(path))
		if !hasGoFiles(dir) {
			t.Fatalf("fixture package %s: no .go files in %s", path, dir)
		}
		if _, err := l.loadFixture(path, dir); err != nil {
			t.Fatal(err)
		}
	}

	// Every fixture package loaded (roots plus fixture-local imports)
	// is analyzed; want comments are honored wherever they appear.
	var units []analysis.Unit
	for _, path := range l.order {
		p := l.cache[path]
		units = append(units, analysis.Unit{Files: p.Files, Pkg: p.Pkg, Info: p.Info})
	}
	diags, err := analysis.Run(fset, units, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	var wants []*want
	for _, u := range units {
		for _, f := range u.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := fset.Position(c.Pos())
					for _, w := range parseWants(t, pos, m[1]) {
						wants = append(wants, w)
					}
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if w.used || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

// parseWants splits `"re1" "re2"` (double- or backquoted) into
// expectations anchored at pos.
func parseWants(t *testing.T, pos token.Position, s string) []*want {
	t.Helper()
	var out []*want
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out
		}
		quote := s[0]
		if quote != '"' && quote != '`' {
			t.Fatalf("%s: malformed want clause %q", pos, s)
		}
		end := 1
		for end < len(s) && (s[end] != quote || (quote == '"' && s[end-1] == '\\')) {
			end++
		}
		if end == len(s) {
			t.Fatalf("%s: unterminated want pattern %q", pos, s)
		}
		lit := s[:end+1]
		s = s[end+1:]
		text, err := strconv.Unquote(lit)
		if err != nil {
			t.Fatalf("%s: bad want pattern %s: %v", pos, lit, err)
		}
		re, err := regexp.Compile(text)
		if err != nil {
			t.Fatalf("%s: bad want regexp %q: %v", pos, text, err)
		}
		out = append(out, &want{file: pos.Filename, line: pos.Line, re: re})
	}
}
