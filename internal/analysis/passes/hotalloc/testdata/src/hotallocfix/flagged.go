package hotallocfix

import "fmt"

type ring struct {
	buf  []int
	head int
}

//joinpebble:hotpath
func pushAllocating(r *ring, v int) {
	r.buf = append(r.buf, v)  // want `append may grow and reallocate`
	fmt.Println(v)            // want `fmt\.Println allocates` `converting int to an interface allocates`
	scratch := make([]int, 8) // want `make allocates`
	_ = scratch
	m := map[int]int{} // want `map literal allocates`
	_ = m
	s := []int{v} // want `slice literal allocates`
	_ = s
	p := &ring{} // want `&composite literal allocates`
	_ = p
	var sink interface{} = v // want `converting int to an interface allocates`
	_ = sink
	go func() {}() // want `go statement allocates a goroutine`
}

//joinpebble:hotpath
func stringWork(name string, raw []byte) string {
	s := string(raw) // want `conversion \[\]byte -> string copies its operand`
	t := name + s    // want `non-constant string concatenation allocates`
	return t
}

//joinpebble:hotpath
func escapingClosure(r *ring) func() int {
	return func() int { return r.head } // want `closure captures r and escapes to the heap`
}
