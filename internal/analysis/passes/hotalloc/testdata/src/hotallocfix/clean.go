package hotallocfix

// pushClean writes by index into preallocated storage: the shape
// hotalloc wants hot paths to take.
//
//joinpebble:hotpath
func pushClean(r *ring, v int) bool {
	if r.head >= len(r.buf) {
		return false
	}
	r.buf[r.head] = v
	r.head++
	return true
}

// notAnnotated allocates freely; hotalloc must stay silent without the
// annotation.
func notAnnotated() []int {
	out := make([]int, 0, 4)
	return append(out, 1, 2, 3)
}

// pointerBoxing is fine: pointer-shaped values fit the interface word.
//
//joinpebble:hotpath
func pointerBoxing(r *ring) interface{} {
	var x interface{} = r
	return x
}

// constConcat stays constant-folded.
//
//joinpebble:hotpath
func constConcat() string {
	const prefix = "join/"
	return prefix + "hash"
}

// suppressed shows the escape hatch.
//
//joinpebble:hotpath
func suppressed(r *ring, v int) {
	//joinlint:ignore hotalloc grow-once warm-up path measured separately
	r.buf = append(r.buf, v)
}
