// Package hotalloc enforces the allocation-free contract of functions
// annotated `//joinpebble:hotpath` — the CSR adjacency lookup, the claw
// scan, the zigzag emission kernel, and the disarmed faultinject.Fire
// path, whose per-call costs the bench regression baselines pin.
//
// The check is intraprocedural: the annotated body itself must contain
// no allocating construct. Callees are not followed — a hot path that
// needs a helper must either annotate the helper too or accept that
// the helper's allocations are the helper's business (the bench
// harness still watches the end-to-end cost).
//
// Flagged constructs: calls into package fmt, the append/make/new
// builtins, map and slice composite literals, &T{...}, go statements,
// closures capturing local state, conversions that box a non-pointer
// value into an interface, non-constant string concatenation, and
// string<->[]byte/[]rune conversions.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"joinpebble/internal/analysis"
)

// Annotation marks a function whose body hotalloc checks.
const Annotation = "//joinpebble:hotpath"

// Analyzer is the hotalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "functions annotated " + Annotation + " must not allocate",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !annotated(fd) {
				continue
			}
			checkBody(pass, fd)
		}
	}
	return nil
}

func annotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, Annotation) {
			return true
		}
	}
	return false
}

func checkBody(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	name := fd.Name.Name
	analysis.WithStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, name, n)
		case *ast.CompositeLit:
			checkCompositeLit(pass, name, n, stack)
		case *ast.FuncLit:
			if obj := firstCapture(info, fd, n); obj != nil {
				pass.Reportf(n.Pos(), "hotpath %s: closure captures %s and escapes to the heap", name, obj.Name())
			}
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "hotpath %s: go statement allocates a goroutine", name)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(info.TypeOf(n)) {
				if tv, ok := info.Types[n]; !ok || tv.Value == nil {
					pass.Reportf(n.Pos(), "hotpath %s: non-constant string concatenation allocates", name)
				}
			}
		}
		checkInterfaceConversions(pass, name, n)
		return true
	})
}

func checkCall(pass *analysis.Pass, name string, call *ast.CallExpr) {
	info := pass.TypesInfo
	// Builtins and conversions appear as calls.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				pass.Reportf(call.Pos(), "hotpath %s: append may grow and reallocate; preallocate outside the hot path and index instead", name)
			case "make", "new":
				pass.Reportf(call.Pos(), "hotpath %s: %s allocates", name, b.Name())
			}
			return
		}
	}
	if tv, ok := info.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() {
		// A conversion. Boxing into interfaces is handled by
		// checkInterfaceConversions; here catch string<->bytes copies.
		dst := tv.Type
		if len(call.Args) == 1 {
			src := info.TypeOf(call.Args[0])
			if allocatingStringConversion(dst, src) {
				pass.Reportf(call.Pos(), "hotpath %s: conversion %s -> %s copies its operand", name, types.TypeString(src, types.RelativeTo(pass.Pkg)), types.TypeString(dst, types.RelativeTo(pass.Pkg)))
			}
		}
		return
	}
	if fn := analysis.CalleeFunc(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "hotpath %s: fmt.%s allocates (formatting state and boxed operands)", name, fn.Name())
	}
}

func checkCompositeLit(pass *analysis.Pass, name string, lit *ast.CompositeLit, stack []ast.Node) {
	t := pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Map:
		pass.Reportf(lit.Pos(), "hotpath %s: map literal allocates", name)
		return
	case *types.Slice:
		pass.Reportf(lit.Pos(), "hotpath %s: slice literal allocates", name)
		return
	}
	// &T{...}: the value escapes through the pointer.
	if len(stack) > 0 {
		if u, ok := stack[len(stack)-1].(*ast.UnaryExpr); ok && u.Op == token.AND && ast.Unparen(u.X) == lit {
			pass.Reportf(u.Pos(), "hotpath %s: &composite literal allocates", name)
		}
	}
}

// checkInterfaceConversions flags places where a non-pointer-shaped
// concrete value is converted (explicitly or by assignment, return, or
// argument passing) to an interface type — the conversions that box.
func checkInterfaceConversions(pass *analysis.Pass, name string, n ast.Node) {
	info := pass.TypesInfo
	flag := func(pos token.Pos, src types.Type) {
		pass.Reportf(pos, "hotpath %s: converting %s to an interface allocates", name, types.TypeString(src, types.RelativeTo(pass.Pkg)))
	}
	check := func(pos token.Pos, dst types.Type, val ast.Expr) {
		if dst == nil || val == nil || !types.IsInterface(dst) {
			return
		}
		src := info.TypeOf(val)
		if src == nil || types.IsInterface(src) || boxesForFree(src) {
			return
		}
		if tv, ok := info.Types[val]; ok && tv.Value != nil {
			return // constants stay in rodata or the small-value cache
		}
		flag(pos, src)
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		if len(n.Lhs) == len(n.Rhs) {
			for i := range n.Lhs {
				check(n.Rhs[i].Pos(), info.TypeOf(n.Lhs[i]), n.Rhs[i])
			}
		}
	case *ast.ValueSpec:
		if n.Type != nil && len(n.Names) == len(n.Values) {
			dst := info.TypeOf(n.Type)
			for i := range n.Names {
				check(n.Values[i].Pos(), dst, n.Values[i])
			}
		}
	case *ast.CallExpr:
		if tv, ok := info.Types[ast.Unparen(n.Fun)]; ok && tv.IsType() {
			if len(n.Args) == 1 {
				check(n.Pos(), tv.Type, n.Args[0])
			}
			return
		}
		sig, ok := info.TypeOf(n.Fun).(*types.Signature)
		if !ok {
			return
		}
		for i, arg := range n.Args {
			var pt types.Type
			switch {
			case sig.Variadic() && i >= sig.Params().Len()-1:
				if n.Ellipsis.IsValid() {
					continue // forwarded slice, no element boxing here
				}
				pt = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
			case i < sig.Params().Len():
				pt = sig.Params().At(i).Type()
			}
			check(arg.Pos(), pt, arg)
		}
	case *ast.ReturnStmt:
		// Handled conservatively: only single-result direct returns.
		// Multi-value returns into interface results are rare in hot
		// paths and the assignment form above covers the common case.
	}
}

// boxesForFree reports whether values of t fit an interface word
// without a heap copy (pointer-shaped types).
func boxesForFree(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return true
	}
	return false
}

func allocatingStringConversion(dst, src types.Type) bool {
	return (isString(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isString(src))
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune)
}

// firstCapture returns a variable the closure captures from its
// enclosing function, or nil if the closure is capture-free (static
// closures don't allocate).
func firstCapture(info *types.Info, outer *ast.FuncDecl, lit *ast.FuncLit) types.Object {
	var captured types.Object
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok || obj.IsField() || analysis.IsPackageLevel(obj) {
			return true
		}
		// Captured = declared in the outer function but outside the
		// literal itself.
		if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
			return true
		}
		if obj.Pos() >= outer.Pos() && obj.Pos() <= outer.End() {
			captured = obj
			return false
		}
		return true
	})
	return captured
}
