package hotalloc_test

import (
	"testing"

	"joinpebble/internal/analysis/analysistest"
	"joinpebble/internal/analysis/passes/hotalloc"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, hotalloc.Analyzer, "hotallocfix")
}
