// Package sitereg enforces the fault-injection site discipline: every
// name handed to faultinject.Fire or faultinject.Arm must be a named
// package-level string constant (so sites are greppable and tests can
// import the constant instead of retyping the string), every site value
// may be declared by only one constant repo-wide, and every value must
// appear in the site registry table DESIGN.md maintains.
//
// The DESIGN.md table is compiled in via registry_gen.go, which
// `joinlint -gensites` regenerates; TestRegistryGenerated keeps the two
// from drifting. Adding a site is therefore a three-line change: the
// constant, the DESIGN.md row, and a `joinlint -gensites` run.
package sitereg

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/format"
	"go/token"
	"go/types"
	"os"
	"regexp"
	"sort"
	"strings"

	"joinpebble/internal/analysis"
)

// Analyzer is the sitereg pass.
var Analyzer = &analysis.Analyzer{
	Name:   "sitereg",
	Doc:    "faultinject sites must be named package-level constants, unique, and registered in DESIGN.md",
	Run:    run,
	Finish: finish,
}

const faultinjectPath = "joinpebble/internal/faultinject"

// siteUse is one Fire/Arm call on a registered constant, exported as a
// fact for the global uniqueness check.
type siteUse struct {
	Value string // the site string
	Const string // defining constant, as pkgpath.Name
	Pos   token.Pos
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo
	var uses []siteUse
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.CalleeFunc(info, call)
			// The site name is argument 0 for Fire/Arm and argument 1 for
			// FireContext (the context comes first there).
			verb, nameArg := "", 0
			switch {
			case analysis.FuncIs(fn, faultinjectPath, "", "Fire"):
				verb = "Fire"
			case analysis.FuncIs(fn, faultinjectPath, "", "FireContext"):
				verb, nameArg = "FireContext", 1
			case analysis.FuncIs(fn, faultinjectPath, "", "Arm"):
				verb = "Arm"
			}
			if verb == "" || len(call.Args) <= nameArg {
				return true
			}
			arg := ast.Unparen(call.Args[nameArg])
			obj, _ := analysis.UsedObject(info, arg).(*types.Const)
			if obj == nil || !analysis.IsPackageLevel(obj) {
				pass.Reportf(arg.Pos(), "faultinject.%s site must be a named package-level constant, not an inline value", verb)
				return true
			}
			value, ok := analysis.ConstString(info, arg)
			if !ok {
				pass.Reportf(arg.Pos(), "faultinject.%s site constant %s must be a string", verb, obj.Name())
				return true
			}
			if !Registry[value] {
				pass.Reportf(arg.Pos(), "faultinject site %q is not in DESIGN.md's site registry; add a row to the table and run `joinlint -gensites`", value)
			}
			uses = append(uses, siteUse{
				Value: value,
				Const: obj.Pkg().Path() + "." + obj.Name(),
				Pos:   arg.Pos(),
			})
			return true
		})
	}
	if len(uses) > 0 {
		pass.ExportFact(uses)
	}
	return nil
}

// finish reports site values claimed by more than one constant.
func finish(fp *analysis.FinishPass) error {
	type claim struct {
		constName string
		pos       token.Pos
	}
	byValue := map[string][]claim{}
	for _, f := range fp.Facts {
		for _, u := range f.Fact.([]siteUse) {
			byValue[u.Value] = append(byValue[u.Value], claim{u.Const, u.Pos})
		}
	}
	values := make([]string, 0, len(byValue))
	for v := range byValue {
		values = append(values, v)
	}
	sort.Strings(values)
	for _, v := range values {
		claims := byValue[v]
		consts := map[string]bool{}
		for _, c := range claims {
			consts[c.constName] = true
		}
		if len(consts) < 2 {
			continue
		}
		for _, c := range claims {
			others := make([]string, 0, len(consts)-1)
			for name := range consts {
				if name != c.constName {
					others = append(others, name)
				}
			}
			sort.Strings(others)
			fp.Reportf(c.pos, "fault site %q is also declared by %s; site values must be unique", v, strings.Join(others, ", "))
		}
	}
	return nil
}

var (
	registryMarker = "**Fault-injection site registry**"
	siteRowRE      = regexp.MustCompile("^\\|\\s*`([^`]+)`\\s*\\|")
)

// ParseDesign extracts the site names from DESIGN.md's fault-injection
// registry table: the backticked first column of every row between the
// registry marker and the next section heading.
func ParseDesign(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var (
		sites  []string
		seen   = map[string]bool{}
		inside bool
	)
	for _, line := range strings.Split(string(data), "\n") {
		switch {
		case strings.Contains(line, registryMarker):
			inside = true
		case inside && strings.HasPrefix(line, "## "):
			inside = false
		case inside:
			if m := siteRowRE.FindStringSubmatch(line); m != nil {
				if !seen[m[1]] {
					seen[m[1]] = true
					sites = append(sites, m[1])
				}
			}
		}
	}
	if len(sites) == 0 {
		return nil, fmt.Errorf("sitereg: no site rows found under %q in %s", registryMarker, path)
	}
	sort.Strings(sites)
	return sites, nil
}

// GenSource renders registry_gen.go for the given site list.
func GenSource(sites []string) []byte {
	var buf bytes.Buffer
	buf.WriteString("// Code generated by joinlint -gensites from DESIGN.md; DO NOT EDIT.\n\n")
	buf.WriteString("package sitereg\n\n")
	buf.WriteString("// Registry holds every fault-injection site DESIGN.md documents.\n")
	buf.WriteString("var Registry = map[string]bool{\n")
	sorted := append([]string(nil), sites...)
	sort.Strings(sorted)
	for _, s := range sorted {
		fmt.Fprintf(&buf, "\t%q: true,\n", s)
	}
	buf.WriteString("}\n")
	src, err := format.Source(buf.Bytes())
	if err != nil {
		// The template above always parses; fall back to the raw bytes.
		return buf.Bytes()
	}
	return src
}
