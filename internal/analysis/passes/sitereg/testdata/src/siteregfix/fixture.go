// Package siteregfix exercises every sitereg rule.
package siteregfix

import (
	"context"

	"joinpebble/internal/faultinject"
)

const (
	// SiteGood reuses a registered site value; in the fixture set it is
	// declared exactly once, so only the real tree's owner would clash.
	SiteGood = "engine/rung"
	// SiteUnregistered is a well-formed constant missing from DESIGN.md.
	SiteUnregistered = "fixture/unregistered"
	// SiteDupA and SiteDupB claim the same value from two constants.
	SiteDupA = "solver/component"
	SiteDupB = "solver/component"
)

func fireGood() error {
	return faultinject.Fire(SiteGood)
}

func fireLiteral() error {
	return faultinject.Fire("fixture/inline") // want `faultinject\.Fire site must be a named package-level constant`
}

func fireLocal() error {
	const site = "fixture/local"
	return faultinject.Fire(site) // want `faultinject\.Fire site must be a named package-level constant`
}

func fireUnregistered() error {
	return faultinject.Fire(SiteUnregistered) // want `faultinject site "fixture/unregistered" is not in DESIGN\.md's site registry`
}

func fireDups() {
	_ = faultinject.Fire(SiteDupA) // want `fault site "solver/component" is also declared by siteregfix\.SiteDupB`
	_ = faultinject.Fire(SiteDupB) // want `fault site "solver/component" is also declared by siteregfix\.SiteDupA`
}

func armLiteral() {
	faultinject.Arm("fixture/armed", faultinject.Fault{}) // want `faultinject\.Arm site must be a named package-level constant`
}

func fireContextGood(ctx context.Context) error {
	return faultinject.FireContext(ctx, SiteGood)
}

func fireContextLiteral(ctx context.Context) error {
	return faultinject.FireContext(ctx, "fixture/ctx-inline") // want `faultinject\.FireContext site must be a named package-level constant`
}

func fireContextUnregistered(ctx context.Context) error {
	return faultinject.FireContext(ctx, SiteUnregistered) // want `faultinject site "fixture/unregistered" is not in DESIGN\.md's site registry`
}
