package sitereg

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestRegistryGenerated pins registry_gen.go to DESIGN.md: if the site
// table changes, `joinlint -gensites` must be rerun.
func TestRegistryGenerated(t *testing.T) {
	sites, err := ParseDesign(filepath.Join("..", "..", "..", "..", "DESIGN.md"))
	if err != nil {
		t.Fatal(err)
	}
	want := GenSource(sites)
	got, err := os.ReadFile("registry_gen.go")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("registry_gen.go is stale; run `go run ./cmd/joinlint -gensites`\n--- want ---\n%s--- got ---\n%s", want, got)
	}
	for _, s := range sites {
		if !Registry[s] {
			t.Errorf("site %q parsed from DESIGN.md missing from compiled Registry", s)
		}
	}
}
