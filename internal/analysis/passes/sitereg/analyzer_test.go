package sitereg_test

import (
	"testing"

	"joinpebble/internal/analysis/analysistest"
	"joinpebble/internal/analysis/passes/sitereg"
)

func TestSitereg(t *testing.T) {
	analysistest.Run(t, sitereg.Analyzer, "siteregfix")
}
