package golife_test

import (
	"testing"

	"joinpebble/internal/analysis/analysistest"
	"joinpebble/internal/analysis/passes/golife"
)

func TestGolife(t *testing.T) {
	analysistest.Run(t, golife.Analyzer, "golifea")
}
