// Package golife enforces bounded goroutine lifetimes: every `go`
// statement must carry a static proof that the spawned goroutine
// terminates or is cancellable. Accepted proofs:
//
//   - WaitGroup join: the goroutine calls Done on a sync.WaitGroup and
//     the spawning function calls Wait on the same variable.
//   - Channel join: the goroutine sends on a channel the spawning
//     function receives from (result-gathering).
//   - Cancellation: the goroutine's body observes a context.Context
//     (ctx.Done() / ctx.Err()) or receives from a channel (done/quit
//     channels, `for range ch` worker loops).
//   - Named callees in the same package are inspected one level deep
//     for the same cancellation evidence; any callee handed a
//     context.Context argument is assumed to honor it (that contract is
//     the callee's package's problem, enforced where its body lives).
//
// Everything else is a fire-and-forget goroutine whose lifetime nothing
// bounds — a leak when the spawn site is hot, a shutdown hang when it
// blocks. The few deliberate daemons (HTTP accept loops, the flight
// recorder) carry `//joinlint:ignore golife <reason>` instead, so every
// unbounded goroutine in the tree is individually justified. The
// internal/testutil/leakcheck harness cross-checks this rule
// dynamically at test time.
package golife

import (
	"go/ast"
	"go/token"
	"go/types"

	"joinpebble/internal/analysis"
)

// Analyzer is the golife pass.
var Analyzer = &analysis.Analyzer{
	Name: "golife",
	Doc:  "go statements must spawn goroutines with provably bounded lifetimes (join, result channel, or context/done cancellation)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		analysis.WithStack(file, func(n ast.Node, stack []ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			encl := analysis.EnclosingFunc(stack)
			if encl == nil {
				return true
			}
			if bounded(pass, gs, encl) {
				return true
			}
			pass.Reportf(gs.Pos(), "goroutine lifetime is unbounded: not joined in %s (WaitGroup.Wait or result-channel receive) and its body observes no context or done channel", funcName(encl))
			return true
		})
	}
	return nil
}

func funcName(encl ast.Node) string {
	if fd, ok := encl.(*ast.FuncDecl); ok {
		return fd.Name.Name
	}
	return "the enclosing function literal"
}

// bounded reports whether the go statement carries any accepted
// lifetime proof.
func bounded(pass *analysis.Pass, gs *ast.GoStmt, encl ast.Node) bool {
	info := pass.TypesInfo
	call := gs.Call

	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		if observesCancellation(info, lit.Body) {
			return true
		}
		// Join proofs: Done/send inside the goroutine paired with
		// Wait/receive in the spawning function.
		wgs, sends := joinCandidates(info, lit.Body)
		return joinedByEnclosing(info, encl, gs, wgs, sends)
	}

	// Named call: a context argument is proof by contract.
	for _, arg := range call.Args {
		if tv, ok := info.Types[arg]; ok && analysis.IsContextType(tv.Type) {
			return true
		}
	}
	// A WaitGroup argument joined by the spawner is a join proof.
	var wgArgs []types.Object
	for _, arg := range call.Args {
		if obj := rootObj(info, arg); obj != nil && isWaitGroupType(obj.Type()) {
			wgArgs = append(wgArgs, obj)
		}
	}
	if len(wgArgs) > 0 && joinedByEnclosing(info, encl, gs, wgArgs, nil) {
		return true
	}
	// One level into same-package callees: cancellation evidence in the
	// body counts.
	if fn := analysis.CalleeFunc(info, call); fn != nil && fn.Pkg() == pass.Pkg {
		if body := funcDeclBody(pass, fn); body != nil && observesCancellation(info, body) {
			return true
		}
	}
	// Method value on the receiver: `go s.run()` where run's body
	// selects on s.done is covered above (same package). Anything else
	// is unproven.
	return false
}

// observesCancellation reports whether body contains evidence the
// goroutine can notice shutdown: a context.Context Done/Err use, or a
// channel receive (done/quit channels, `for range jobs` worker loops,
// result waits).
func observesCancellation(info *types.Info, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if n.Sel.Name == "Done" || n.Sel.Name == "Err" {
				if tv, ok := info.Types[n.X]; ok && analysis.IsContextType(tv.Type) {
					found = true
					return false
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
				return false
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// joinCandidates collects, from the goroutine body, the WaitGroup
// variables it calls Done on and the channel variables it sends on.
func joinCandidates(info *types.Info, body ast.Node) (wgs, sends []types.Object) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := analysis.CalleeFunc(info, n)
			if analysis.FuncIs(fn, "sync", "WaitGroup", "Done") {
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
					if obj := rootObj(info, sel.X); obj != nil {
						wgs = append(wgs, obj)
					}
				}
			}
		case *ast.SendStmt:
			if obj := rootObj(info, n.Chan); obj != nil {
				sends = append(sends, obj)
			}
		}
		return true
	})
	return wgs, sends
}

// joinedByEnclosing reports whether the spawning function, outside the
// go statement itself, calls Wait on one of wgs or receives from one of
// sends.
func joinedByEnclosing(info *types.Info, encl ast.Node, gs *ast.GoStmt, wgs, sends []types.Object) bool {
	body := analysis.FuncBody(encl)
	if body == nil {
		return false
	}
	match := func(obj types.Object, set []types.Object) bool {
		for _, o := range set {
			if o == obj {
				return true
			}
		}
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if n == gs {
			return false // the goroutine's own body proves nothing here
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := analysis.CalleeFunc(info, n)
			if analysis.FuncIs(fn, "sync", "WaitGroup", "Wait") {
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
					if obj := rootObj(info, sel.X); obj != nil && match(obj, wgs) {
						found = true
						return false
					}
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if obj := rootObj(info, n.X); obj != nil && match(obj, sends) {
					found = true
					return false
				}
			}
		case *ast.RangeStmt:
			if obj := rootObj(info, n.X); obj != nil && match(obj, sends) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// rootObj resolves an expression to the variable it names: a plain
// identifier, a field selection (s.wg — the field var is stable across
// the methods of one receiver), or the address of either.
func rootObj(info *types.Info, expr ast.Expr) types.Object {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			return sel.Obj()
		}
		return info.Uses[e.Sel]
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return rootObj(info, e.X)
		}
	}
	return nil
}

func isWaitGroupType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// funcDeclBody finds the syntax body of a function object declared in
// the package under analysis.
func funcDeclBody(pass *analysis.Pass, fn *types.Func) *ast.BlockStmt {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if pass.TypesInfo.Defs[fd.Name] == fn {
				return fd.Body
			}
		}
	}
	return nil
}
