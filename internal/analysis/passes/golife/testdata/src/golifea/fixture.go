// Package golifea exercises the golife analyzer: every accepted
// lifetime proof (WaitGroup join, result-channel join, context
// observation, done-channel receive, range-over-channel worker, named
// same-package callee, context argument by contract) plus the flagged
// fire-and-forget shapes and the ignore escape hatch for deliberate
// daemons.
package golifea

import (
	"context"
	"net/http"
	"sync"
)

// Fire-and-forget closure: nothing joins it, nothing cancels it.
func naked() {
	go func() { // want `goroutine lifetime is unbounded: not joined in naked`
		for {
			work()
		}
	}()
}

// WaitGroup join: Done in the goroutine, Wait in the spawner.
func wgJoined() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// WaitGroup as a struct field: the field variable is the same object in
// the closure and at the Wait site.
type pool struct {
	wg sync.WaitGroup
}

func (p *pool) run() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		work()
	}()
	p.wg.Wait()
}

// Done on a WaitGroup nothing Waits on proves nothing.
func wgNeverWaited() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want `goroutine lifetime is unbounded: not joined in wgNeverWaited`
		defer wg.Done()
		work()
	}()
}

// Result-channel join: the spawner receives what the goroutine sends.
func chanJoined() int {
	ch := make(chan int, 1)
	go func() {
		ch <- compute()
	}()
	return <-ch
}

// Send into a channel nobody in this function receives from proves
// nothing.
func chanNeverReceived(ch chan int) {
	go func() { // want `goroutine lifetime is unbounded: not joined in chanNeverReceived`
		ch <- compute()
	}()
}

// Context observation inside the goroutine body.
func ctxSelect(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				work()
			}
		}
	}()
}

// ctx.Err polling counts the same as Done.
func ctxErrPoll(ctx context.Context) {
	go func() {
		for ctx.Err() == nil {
			work()
		}
	}()
}

// Done-channel receive inside the goroutine body.
func doneChan(done chan struct{}) {
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				work()
			}
		}
	}()
}

// Worker draining a job channel terminates when the channel closes.
func rangeWorker(jobs chan int) {
	go func() {
		for j := range jobs {
			use(j)
		}
	}()
}

// Named same-package callee inspected one level deep: loop observes its
// done channel.
type server struct {
	done chan struct{}
}

func (s *server) loop() {
	for {
		select {
		case <-s.done:
			return
		default:
			work()
		}
	}
}

func (s *server) start() {
	go s.loop()
}

// A context argument to a named callee is proof by contract, even
// cross-package.
func ctxArg(ctx context.Context, srv *http.Server) {
	go shutdownWhenDone(ctx, srv)
}

func shutdownWhenDone(ctx context.Context, srv *http.Server) {
	<-ctx.Done()
	srv.Close()
}

// Cross-package named call with no context and no join: the accept-loop
// daemon shape. Flagged, and the deliberate instance carries an ignore.
func daemonFlagged(srv *http.Server) {
	go srv.ListenAndServe() // want `goroutine lifetime is unbounded: not joined in daemonFlagged`
}

func daemonSanctioned(srv *http.Server) {
	//joinlint:ignore golife accept loop runs until Shutdown closes the listener
	go srv.ListenAndServe()
}

func work()        {}
func compute() int { return 0 }
func use(int)      {}
