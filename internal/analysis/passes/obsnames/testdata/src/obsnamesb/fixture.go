// Package obsnamesb holds the other half of the cross-package
// duplicate metric.
package obsnamesb

import "joinpebble/internal/obs"

var cDup = obs.Default.Counter("fixture/dup/ops") // want `metric name "fixture/dup/ops" is also registered by obsnamesa`

var hSizes = obs.Default.Histogram("fixture/b/sizes", obs.Pow2Buckets(8))
