// Package obsnamesa exercises the per-package obsnames rules plus one
// half of a cross-package duplicate.
package obsnamesa

import "joinpebble/internal/obs"

const goodName = "fixture/a/ops"

var (
	cGood = obs.Default.Counter(goodName)
	cDup  = obs.Default.Counter("fixture/dup/ops") // want `metric name "fixture/dup/ops" is also registered by obsnamesb`
	cBad  = obs.Default.Counter("Fixture.Ops")     // want `obs counter name "Fixture\.Ops" must match`
)

func dynamicName(alg string) *obs.Counter {
	return obs.Default.Counter("fixture/" + alg + "/ops") // want `obs counter name must be a compile-time constant string`
}

// spanName is the solvePerComponent pattern: the name parameter of an
// unexported function is validated at its call sites instead.
func spanName(name string) *obs.Span {
	return obs.StartSpan(name)
}

func useSpans() {
	sp := spanName("greedy+2opt") // display names with + and - are legal span names
	sp.End()
	bad := spanName("Greedy 2opt") // want `obs span name "Greedy 2opt" must match`
	bad.End()
}

func forwardTwice(name string) {
	sp := spanName(name) // want `obs span name passed to spanName must be a compile-time constant string`
	sp.End()
}

func timers() *obs.Timer {
	return obs.Default.Timer("fixture/a/latency")
}
