// Package obsnamesa exercises the per-package obsnames rules plus one
// half of a cross-package duplicate.
package obsnamesa

import (
	"context"

	"joinpebble/internal/obs"
)

const goodName = "fixture/a/ops"

var (
	cGood = obs.Default.Counter(goodName)
	cDup  = obs.Default.Counter("fixture/dup/ops") // want `metric name "fixture/dup/ops" is also registered by obsnamesb`
	cBad  = obs.Default.Counter("Fixture.Ops")     // want `obs counter name "Fixture\.Ops" must match`
)

func dynamicName(alg string) *obs.Counter {
	return obs.Default.Counter("fixture/" + alg + "/ops") // want `obs counter name must be a compile-time constant string`
}

// spanName is the solvePerComponent pattern: the name parameter of an
// unexported function is validated at its call sites instead.
func spanName(name string) *obs.Span {
	return obs.StartSpan(name)
}

func useSpans() {
	sp := spanName("greedy+2opt") // display names with + and - are legal span names
	sp.End()
	bad := spanName("Greedy 2opt") // want `obs span name "Greedy 2opt" must match`
	bad.End()
}

func forwardTwice(name string) {
	sp := spanName(name) // want `obs span name passed to spanName must be a compile-time constant string`
	sp.End()
}

func timers() *obs.Timer {
	return obs.Default.Timer("fixture/a/latency")
}

// The scope-aware surface: forwarder vars register global names at
// declaration, scope and context spans follow the span grammar.
var (
	cScoped   = obs.ScopedCounter("fixture/a/scoped_ops")
	cScopedNo = obs.ScopedCounter("Scoped.Ops") // want `obs counter name "Scoped\.Ops" must match`
	tScoped   = obs.ScopedTimer("fixture/a/scoped_latency")
	hScoped   = obs.ScopedHistogram("fixture/a/scoped_sizes", obs.Pow2Buckets(8))
)

func scopedDynamic(alg string) *obs.CounterVar {
	return obs.ScopedCounter("fixture/" + alg + "/ops") // want `obs counter name must be a compile-time constant string`
}

func useScopes(ctx context.Context) {
	sc := obs.NewScope("fixture/solve")
	bad := obs.NewScope("Fixture Solve") // want `obs span name "Fixture Solve" must match`
	bad.Close()
	sp := obs.StartSpanCtx(ctx, "fixture/ctx_span")
	sp.End()
	worse := obs.StartSpanCtx(ctx, "Fixture Ctx Span") // want `obs span name "Fixture Ctx Span" must match`
	worse.End()
	child := sc.StartSpan("fixture/child")
	child.End()
	ugly := sc.StartSpan("Fixture Child") // want `obs span name "Fixture Child" must match`
	ugly.End()
	sc.Close()
}
