package obsnames_test

import (
	"testing"

	"joinpebble/internal/analysis/analysistest"
	"joinpebble/internal/analysis/passes/obsnames"
)

func TestObsnames(t *testing.T) {
	analysistest.Run(t, obsnames.Analyzer, "obsnamesa", "obsnamesb")
}
