// Package obsnames pins the observability naming contract: every
// counter, histogram, timer, and span name handed to internal/obs must
// be a compile-time constant (so the metric surface is greppable and
// the exporter schema is static), must match the repo's name grammar,
// and metric names must be globally unique across packages.
//
// Grammar: metric names match ^[a-z0-9_/]+$ (DESIGN.md "Metric
// naming"). Span names additionally allow '+', '-', '.', '(' and ')'
// because solver display names like "greedy+2opt" and
// "approx-1.25(no-twin-elim)" double as root span names.
//
// One level of constant propagation is built in: when a name argument
// is a parameter of an unexported function (the solvePerComponent
// pattern), the analyzer validates the argument at every in-package
// call site instead.
//
// Cross-package uniqueness runs over analysis facts: each package
// exports the metric names it registers, and the Finish hook reports
// any name claimed by more than one package.
package obsnames

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"

	"joinpebble/internal/analysis"
)

// Analyzer is the obsnames pass.
var Analyzer = &analysis.Analyzer{
	Name:   "obsnames",
	Doc:    "obs metric and span names must be constant, well-formed, and (for metrics) globally unique",
	Run:    run,
	Finish: finish,
}

var (
	// MetricNameRE is the grammar for counter/histogram/timer names.
	MetricNameRE = regexp.MustCompile(`^[a-z0-9_/]+$`)
	// SpanNameRE is the grammar for span names; the extra characters
	// admit the solver display names ("greedy+2opt", "exact-bnb",
	// "approx-1.25(no-twin-elim)") that double as root spans.
	SpanNameRE = regexp.MustCompile(`^[a-z0-9_/+\-.()]+$`)
)

const obsPath = "joinpebble/internal/obs"

// nameSink describes one obs entry point taking a name in arg position
// arg (StartSpanCtx takes its context first, so its name is arg 1).
type nameSink struct {
	recv, name string
	kind       string // "counter", "histogram", "timer", "span"
	arg        int
}

var sinks = []nameSink{
	{"Registry", "Counter", "counter", 0},
	{"Registry", "Histogram", "histogram", 0},
	{"Registry", "Timer", "timer", 0},
	{"Tracer", "Start", "span", 0},
	{"Span", "Start", "span", 0},
	{"", "StartSpan", "span", 0},
	// The scope surface: scope-aware metric forwarders register their
	// (global) names at var-decl time, scope names double as span-style
	// identifiers, and context spans take the name after the ctx.
	{"", "ScopedCounter", "counter", 0},
	{"", "ScopedTimer", "timer", 0},
	{"", "ScopedHistogram", "histogram", 0},
	{"", "NewScope", "span", 0},
	{"", "StartSpanCtx", "span", 1},
	{"Scope", "StartSpan", "span", 0},
}

func sinkFor(fn *types.Func) (nameSink, bool) {
	for _, s := range sinks {
		if analysis.FuncIs(fn, obsPath, s.recv, s.name) {
			return s, true
		}
	}
	return nameSink{}, false
}

// metricDef is one registered metric, exported as a fact for the
// global uniqueness check.
type metricDef struct {
	Name string
	Kind string
	Pos  token.Pos
}

// forwarder is an unexported function whose parameter flows into an
// obs name sink; call sites must pass constants.
type forwarder struct {
	param int
	kind  string
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() == obsPath {
		// The obs package is the instrument implementation; its own
		// plumbing (StartSpan -> Tracer.Start -> newSpan) forwards
		// names by construction.
		return nil
	}
	info := pass.TypesInfo
	var defs []metricDef
	forwarders := map[*types.Func]forwarder{}

	validate := func(arg ast.Expr, kind string) {
		name, ok := analysis.ConstString(info, arg)
		if !ok {
			return // classified by the caller
		}
		re := MetricNameRE
		if kind == "span" {
			re = SpanNameRE
		}
		if !re.MatchString(name) {
			pass.Reportf(arg.Pos(), "obs %s name %q must match %s", kind, name, re)
			return
		}
		if kind != "span" {
			defs = append(defs, metricDef{Name: name, Kind: kind, Pos: arg.Pos()})
		}
	}

	// Sweep 1: direct sink calls. Constant names validate in place; a
	// name that is a parameter of an unexported function registers that
	// function as a forwarder for sweep 2; anything else is a
	// violation.
	for _, file := range pass.Files {
		analysis.WithStack(file, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sink, ok := sinkFor(analysis.CalleeFunc(info, call))
			if !ok || len(call.Args) <= sink.arg {
				return true
			}
			arg := ast.Unparen(call.Args[sink.arg])
			if _, isConst := analysis.ConstString(info, arg); isConst {
				validate(arg, sink.kind)
				return true
			}
			if fn, idx := enclosingParam(info, stack, arg); fn != nil {
				forwarders[fn] = forwarder{param: idx, kind: sink.kind}
				return true
			}
			pass.Reportf(arg.Pos(), "obs %s name must be a compile-time constant string (or a parameter of an unexported function, checked at its call sites)", sink.kind)
			return true
		})
	}

	// Sweep 2: call sites of forwarders. One level only — a forwarded
	// argument that is itself non-constant is a violation here.
	if len(forwarders) > 0 {
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := analysis.CalleeFunc(info, call)
				fwd, ok := forwarders[fn]
				if !ok || fwd.param >= len(call.Args) {
					return true
				}
				arg := call.Args[fwd.param]
				if _, isConst := analysis.ConstString(info, arg); !isConst {
					pass.Reportf(arg.Pos(), "obs %s name passed to %s must be a compile-time constant string (names propagate one call level, no further)", fwd.kind, fn.Name())
					return true
				}
				validate(arg, fwd.kind)
				return true
			})
		}
	}

	if len(defs) > 0 {
		pass.ExportFact(defs)
	}
	return nil
}

// enclosingParam reports whether expr is a use of a parameter of the
// innermost enclosing function declaration, when that function is
// unexported; it returns the function object and the parameter index.
func enclosingParam(info *types.Info, stack []ast.Node, expr ast.Expr) (*types.Func, int) {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return nil, 0
	}
	obj, ok := info.Uses[id].(*types.Var)
	if !ok {
		return nil, 0
	}
	fd, ok := analysis.EnclosingFunc(stack).(*ast.FuncDecl)
	if !ok || fd.Name.IsExported() {
		return nil, 0
	}
	fn, ok := info.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil, 0
	}
	sig := fn.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == obj {
			return fn, i
		}
	}
	return nil, 0
}

// finish reports metric names registered by more than one package.
func finish(fp *analysis.FinishPass) error {
	type site struct {
		pkg  string
		kind string
		pos  token.Pos
	}
	byName := map[string][]site{}
	for _, f := range fp.Facts {
		for _, d := range f.Fact.([]metricDef) {
			byName[d.Name] = append(byName[d.Name], site{pkg: f.Path, kind: d.Kind, pos: d.Pos})
		}
	}
	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sites := byName[name]
		pkgs := map[string]bool{}
		for _, s := range sites {
			pkgs[s.pkg] = true
		}
		if len(pkgs) < 2 {
			continue
		}
		for _, s := range sites {
			others := make([]string, 0, len(pkgs)-1)
			for p := range pkgs {
				if p != s.pkg {
					others = append(others, p)
				}
			}
			sort.Strings(others)
			fp.Reportf(s.pos, "metric name %q is also registered by %s; metric names must be globally unique", name, joinAnd(others))
		}
	}
	return nil
}

func joinAnd(items []string) string {
	switch len(items) {
	case 0:
		return ""
	case 1:
		return items[0]
	}
	out := items[0]
	for _, it := range items[1 : len(items)-1] {
		out += ", " + it
	}
	return out + " and " + items[len(items)-1]
}
